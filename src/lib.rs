//! Umbrella crate for the OC-Bcast reproduction workspace.
//!
//! Re-exports the public crates so examples and integration tests can use
//! one coherent namespace. See the individual crates for the substance:
//!
//! * [`scc_hal`] — topology, units, the `Rma` interface
//! * [`scc_model`] — the LogP-based analytical model (paper Sections 3 & 5)
//! * [`scc_sim`] — discrete-event SCC simulator
//! * [`scc_rt`] — real-thread shared-memory backend
//! * [`scc_rcce`] — RCCE-style layer: flags, send/recv, barrier
//! * [`oc_bcast`] — OC-Bcast and the baseline broadcasts (paper Section 4)
//! * [`scc_mpi`] — MPI-flavoured facade over the collective stack (paper Section 7)

pub use oc_bcast;
pub use scc_hal;
pub use scc_model;
pub use scc_mpi;
pub use scc_rcce;
pub use scc_rt;
pub use scc_sim;
