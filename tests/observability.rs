//! Cross-crate checks of the observability layer (DESIGN.md
//! "Observability"): the critical-path extractor against the paper's
//! analytical model, the per-resource stats breakdowns against their
//! aggregates, and the Chrome-trace exporter on a real broadcast.

use oc_bcast::{Algorithm, Broadcaster, OcConfig};
use scc_hal::{
    delivering, spanned, tagged, CoreId, FlagValue, MemRange, MpbAddr, MsgId, Phase, Rma, RmaExt,
    RmaResult, Span, Time,
};
use scc_model::{ModelParams, P2p};
use scc_obs::{
    chrome_trace_json, critical_path, kinds_present, validate_json, CostClass, DiffReport,
    JourneyBook, ObsEvent, OpKind, PhaseProfile, RunHistograms, SegmentKind,
};
use scc_rcce::MpbAllocator;
use scc_sim::{run_spmd, SimConfig, SimParams, SimReport};

fn record_bcast(p: usize, alg: Algorithm, lines: usize) -> SimReport<RmaResult<()>> {
    let bytes = lines * 32;
    let cfg = SimConfig {
        num_cores: p,
        mem_bytes: 1 << 20,
        trace: true,
        record: true,
        ..SimConfig::default()
    };
    run_spmd(&cfg, move |c| -> RmaResult<()> {
        let mut alloc = MpbAllocator::new();
        let mut b = Broadcaster::new(&mut alloc, alg, p).expect("MPB layout");
        let r = MemRange::new(0, bytes);
        if c.core().index() == 0 {
            c.mem_write(0, &vec![0xA5u8; bytes])?;
        }
        b.bcast(c, CoreId(0), r)
    })
    .expect("simulation")
}

/// Satellite: the critical path of an uncontended two-core exchange
/// equals the hand-computed model time. Core 0 `put`s `m` lines into
/// core 1's MPB and raises a flag; core 1 polls, parks, and re-polls on
/// the wake. The extracted path must be exactly
/// `C^mem_put(m, d_mem, d) + C^mpb_put(1, d) + C^mpb_r(1)` with
/// Table-1 parameters, and must cover the makespan with contiguous,
/// non-overlapping segments.
#[test]
fn critical_path_matches_logp_model_on_uncontended_exchange() {
    let m = 8usize;
    let flag_line = m;
    let cfg = SimConfig { num_cores: 2, mem_bytes: 4096, record: true, ..SimConfig::default() };
    let rep = run_spmd(&cfg, move |c| -> RmaResult<()> {
        if c.core().index() == 0 {
            c.mem_write(0, &vec![0x3Cu8; m * 32])?;
            c.put_from_mem(MemRange::new(0, m * 32), MpbAddr::new(CoreId(1), 0))?;
            c.flag_put(MpbAddr::new(CoreId(1), flag_line), FlagValue(1))?;
        } else {
            c.flag_wait_eq(flag_line, FlagValue(1))?;
        }
        Ok(())
    })
    .expect("simulation");
    let events = rep.events.as_deref().expect("recording enabled");
    let cp = critical_path(events).expect("non-empty stream");

    // Coverage: contiguous, non-overlapping, the whole run.
    assert_eq!(cp.start, Time::ZERO);
    assert_eq!(cp.end, rep.makespan);
    let mut cursor = cp.start;
    for s in &cp.segments {
        assert_eq!(s.start, cursor, "segments must be contiguous: {cp:?}");
        assert!(s.end > s.start, "segments must have positive length");
        cursor = s.end;
    }
    assert_eq!(cursor, cp.end);
    assert_eq!(cp.breakdown().total(), cp.total(), "breakdown must sum to the path");

    // The path is: C0's bulk put, C0's flag put, C1's wake re-poll.
    let kinds: Vec<(u8, SegmentKind)> = cp.segments.iter().map(|s| (s.core.0, s.kind)).collect();
    assert_eq!(
        kinds,
        vec![
            (0, SegmentKind::Op(OpKind::PutFromMem)),
            (0, SegmentKind::Op(OpKind::FlagPut)),
            (1, SegmentKind::Op(OpKind::FlagRead)),
        ],
        "{cp:?}"
    );

    // Hand-computed LogP time from the paper's formulas (Table 1).
    let model = P2p::new(ModelParams::paper());
    let d = CoreId(0).mpb_distance(CoreId(1));
    let d_mem = CoreId(0).mem_distance();
    let expect = model.c_put_mem(m, d_mem, d) + model.c_put_mpb(1, d) + model.c_mpb_r(1);
    assert!(
        (cp.total().as_us_f64() - expect).abs() < 1e-6,
        "critical path {} must equal the model's {expect:.6} us",
        cp.total()
    );
    // Per-segment agreement, too: each leg is the corresponding formula.
    let legs = [model.c_put_mem(m, d_mem, d), model.c_put_mpb(1, d), model.c_mpb_r(1)];
    for (s, leg) in cp.segments.iter().zip(legs) {
        assert!(
            (s.duration().as_us_f64() - leg).abs() < 1e-6,
            "segment {s:?} must take {leg:.6} us"
        );
    }
    // Uncontended: no queueing anywhere on the path.
    let b = cp.breakdown();
    assert_eq!(b.port_wait + b.router_wait + b.mc_wait, Time::ZERO);
    assert_eq!(b.idle, Time::ZERO);
}

/// Satellite: the per-tile / per-controller SimStats vectors partition
/// their aggregates exactly, on a contended full-chip broadcast.
#[test]
fn per_resource_stats_sum_to_aggregates() {
    let rep = record_bcast(48, Algorithm::OcBcast(OcConfig::with_k(7)), 96);
    for r in &rep.results {
        r.as_ref().unwrap();
    }
    let s = &rep.stats;
    let sum = |v: &[Time]| v.iter().fold(Time::ZERO, |a, &b| a + b);
    assert_eq!(s.port_wait_by_tile.len(), 24);
    assert_eq!(s.router_wait_by_tile.len(), 24);
    assert_eq!(s.mc_wait_by_ctrl.len(), 4);
    assert_eq!(sum(&s.port_wait_by_tile), s.port_wait, "port wait must partition");
    assert_eq!(sum(&s.port_busy_by_tile), s.port_busy, "port busy must partition");
    assert_eq!(sum(&s.router_wait_by_tile), s.router_wait, "router wait must partition");
    assert_eq!(sum(&s.router_busy_by_tile), s.router_busy, "router busy must partition");
    assert_eq!(sum(&s.mc_wait_by_ctrl), s.mc_wait, "mc wait must partition");
    assert_eq!(sum(&s.mc_busy_by_ctrl), s.mc_busy, "mc busy must partition");
    // The guard is only meaningful if the run actually contended.
    assert!(s.port_wait > Time::ZERO, "48-core k=7 broadcast must queue at ports");
    // And the recorded Wait events agree with the aggregate wait, class
    // by class (the chip books both from the same reservation).
    let events = rep.events.as_deref().unwrap();
    let mut by_class = [Time::ZERO; 3];
    for ev in events {
        if let ObsEvent::Wait { resource, arrival, start, .. } = *ev {
            let i = match resource.class() {
                "port" => 0,
                "router" => 1,
                _ => 2,
            };
            by_class[i] += start - arrival;
        }
    }
    assert_eq!(by_class[0], s.port_wait);
    assert_eq!(by_class[1], s.router_wait);
    assert_eq!(by_class[2], s.mc_wait);
}

/// Satellite: phase latency histograms on an uncontended two-core
/// exchange. Core 0 repeats the same `m`-line bulk put five times, each
/// wrapped in a `Dissemination` span; the simulator is deterministic
/// and nothing queues, so all five samples are identical —
/// p50 == p99 == max — and each equals the paper's `C^mem_put` formula.
#[test]
fn histogram_quantiles_collapse_to_the_model_on_uncontended_exchange() {
    let m = 8usize;
    let rounds = 5u32;
    let cfg = SimConfig { num_cores: 2, mem_bytes: 4096, record: true, ..SimConfig::default() };
    let rep = run_spmd(&cfg, move |c| -> RmaResult<()> {
        if c.core().index() == 0 {
            c.mem_write(0, &vec![0x3Cu8; m * 32])?;
            for i in 0..rounds {
                spanned(c, Span::new(Phase::Dissemination, i), |c| {
                    c.put_from_mem(MemRange::new(0, m * 32), MpbAddr::new(CoreId(1), 0))
                })?;
            }
        }
        Ok(())
    })
    .expect("simulation");
    let events = rep.events.as_deref().expect("recording enabled");
    let mut hg = RunHistograms::build(events);

    let h = hg.phases.get_mut("disseminate").expect("span samples recorded");
    assert_eq!(h.count(), rounds as usize);
    let (p50, p99) = (h.quantile(0.50).unwrap(), h.quantile(0.99).unwrap());
    assert_eq!(p50, p99, "deterministic uncontended samples must be identical");
    assert_eq!(p50, h.max().unwrap());

    // Each sample is exactly one bulk put: the LogP-style model formula.
    let model = P2p::new(ModelParams::paper());
    let d = CoreId(0).mpb_distance(CoreId(1));
    let d_mem = CoreId(0).mem_distance();
    let expect = model.c_put_mem(m, d_mem, d);
    assert!(
        (p50.as_us_f64() - expect).abs() < 1e-6,
        "phase p50 {} must equal the model's {expect:.6} us",
        p50
    );
    // Uncontended: whatever wait series exist, they never queued.
    for (class, h) in hg.waits.iter_mut() {
        assert_eq!(h.max(), Some(Time::ZERO), "{class} queued on an uncontended run");
    }
}

/// Tentpole invariant on real contended runs: a differential critical
/// path between the nominal flat-tree broadcast and the same scenario
/// with MPB port service scaled 1.5x must conserve the makespan delta
/// *exactly* — every picosecond of slowdown is attributed to some
/// (phase × resource) cell, none smoothed or dropped — and the dominant
/// cell must blame the ports.
#[test]
fn differential_critical_path_conserves_makespan_exactly() {
    let sc = scc_bench::representative_scenario("fig4"); // k=47, 48 cores, 96 CL
    let nominal = SimParams::default();
    let slowed = nominal.scaled(CostClass::PortService, 1.5);
    let (base_ev, base_mk) = scc_bench::record_run(&sc, nominal).expect("nominal run");
    let (cand_ev, cand_mk) = scc_bench::record_run(&sc, slowed).expect("slowed run");

    let base = PhaseProfile::build(&base_ev).expect("profile");
    let cand = PhaseProfile::build(&cand_ev).expect("profile");
    // Each profile's cells partition its own makespan...
    assert_eq!(base.cell_total(), base_mk);
    assert_eq!(cand.cell_total(), cand_mk);
    assert!(cand_mk > base_mk, "slowing the ports must slow a port-bound broadcast");

    // ...so the diff conserves the delta exactly, in integer ps.
    let diff = DiffReport::between(&base, &cand);
    assert_eq!(diff.cell_delta_sum_ps(), diff.delta_makespan_ps(), "conservation law");
    assert_eq!(diff.delta_makespan_ps(), cand_mk.as_ps() as i64 - base_mk.as_ps() as i64);

    // The explanation must point at the cause we injected: the largest
    // mover is port time (queueing for the root's port or the service
    // of the ops themselves, both scale with the port cost).
    let dom = diff.dominant().expect("a 1.5x port scale must move cells");
    assert!(
        dom.dimension == "port-wait" || dom.dimension == "op-service",
        "dominant cell {dom:?} should reflect the injected port slowdown"
    );
    assert!(dom.delta_ps() > 0);
    let md = diff.render_markdown();
    assert!(md.contains("conservative attribution"), "{md}");
}

/// Tentpole conservation law on a real contended run: reconstructing
/// journeys from a 48-core flat-tree OC-Bcast (the port-saturating
/// extreme), every journey's leg dwells must sum *exactly* to its
/// delivery latency in integer picoseconds, the last delivery close
/// must equal the broadcast makespan, and every non-root destination
/// must have received tagged transfers inside its window.
#[test]
fn journey_legs_conserve_delivery_latency_on_contended_broadcast() {
    let rep = record_bcast(48, Algorithm::OcBcast(OcConfig::with_k(47)), 96);
    for r in &rep.results {
        r.as_ref().unwrap();
    }
    let events = rep.events.as_deref().expect("recording enabled");
    let book = JourneyBook::from_events(events);
    assert_eq!(book.journeys.len(), 48, "one journey per participating core");
    assert_eq!(book.makespan, rep.makespan);
    for j in &book.journeys {
        assert_eq!(
            j.legs_total(),
            j.latency(),
            "C{} epoch {}: legs must tile the delivery window exactly",
            j.core.index(),
            j.epoch
        );
        if j.core != CoreId(0) {
            assert!(j.transfers > 0, "C{} received no tagged transfers", j.core.index());
            assert!(j.lines >= 96, "C{} journeys must carry the payload", j.core.index());
        }
    }
    let last = book.journeys.iter().map(|j| j.end).max().unwrap();
    assert_eq!(last, rep.makespan, "the last delivery close is the makespan");
    // Contention actually showed up in the attribution: somebody spent
    // time queueing for the saturated root port.
    let port_wait: Time = book.journeys.iter().map(|j| j.leg(scc_obs::LegKind::PortWait)).sum();
    assert!(port_wait > Time::ZERO, "flat tree at 48 cores must queue at the root port");
}

/// Satellite: on an uncontended two-core exchange the receiver's
/// delivery latency equals the hand-computed LogP-model time
/// `C^mem_put(m, d_mem, d) + C^mpb_put(1, d) + C^mpb_r(1)` — the same
/// formula the critical-path test pins, now read off a journey.
#[test]
fn delivery_latency_matches_logp_model_on_uncontended_exchange() {
    let m = 8usize;
    let flag_line = m;
    let cfg = SimConfig { num_cores: 2, mem_bytes: 4096, record: true, ..SimConfig::default() };
    let rep = run_spmd(&cfg, move |c| -> RmaResult<()> {
        if c.core().index() == 0 {
            c.mem_write(0, &vec![0x3Cu8; m * 32])?;
            tagged(c, MsgId::new(0, CoreId(0), CoreId(1), 0), |c| {
                c.put_from_mem(MemRange::new(0, m * 32), MpbAddr::new(CoreId(1), 0))
            })?;
            c.flag_put(MpbAddr::new(CoreId(1), flag_line), FlagValue(1))?;
        } else {
            delivering(c, 0, |c| c.flag_wait_eq(flag_line, FlagValue(1)))?;
        }
        Ok(())
    })
    .expect("simulation");
    let events = rep.events.as_deref().expect("recording enabled");
    let book = JourneyBook::from_events(events);
    assert_eq!(book.journeys.len(), 1, "only the receiver opened a window");
    let j = &book.journeys[0];
    assert_eq!(j.core, CoreId(1));
    assert_eq!(j.begin, Time::ZERO);
    assert_eq!(j.end, rep.makespan, "the receiver's delivery closes the run");
    assert_eq!(j.legs_total(), j.latency());
    assert_eq!((j.transfers, j.lines), (1, m), "the tagged bulk put lands in the window");

    let model = P2p::new(ModelParams::paper());
    let d = CoreId(0).mpb_distance(CoreId(1));
    let d_mem = CoreId(0).mem_distance();
    let expect = model.c_put_mem(m, d_mem, d) + model.c_put_mpb(1, d) + model.c_mpb_r(1);
    assert!(
        (j.latency().as_us_f64() - expect).abs() < 1e-6,
        "delivery latency {} must equal the model's {expect:.6} us",
        j.latency()
    );
    // Uncontended: the whole wait is flag-notify (poll + park), with no
    // queueing legs at all.
    assert_eq!(j.leg(scc_obs::LegKind::PortWait), Time::ZERO);
    assert_eq!(j.leg(scc_obs::LegKind::RouterWait), Time::ZERO);
    assert!(j.leg(scc_obs::LegKind::FlagNotify) > Time::ZERO);
}

/// The Chrome exporter produces valid JSON with per-core tracks, phase
/// spans from the collective, and tracks for the contended resources.
#[test]
fn chrome_trace_is_valid_and_carries_phases() {
    let rep = record_bcast(12, Algorithm::OcBcast(OcConfig::with_k(3)), 96);
    let events = rep.events.as_deref().unwrap();
    let json = chrome_trace_json(events);
    validate_json(&json).expect("exporter must emit valid JSON");
    assert!(!kinds_present(events).is_empty());
    for needle in [
        "\"traceEvents\"",
        "\"disseminate", // phase spans from OcBcast
        "\"notify-wait",
        "\"cat\":\"op\"",
        "\"cat\":\"phase\"",
    ] {
        assert!(json.contains(needle), "chrome trace missing {needle}");
    }
    // Spans recorded by the collective made it into the stream.
    assert!(events.iter().any(|e| matches!(e, ObsEvent::SpanBegin { .. })));
}
