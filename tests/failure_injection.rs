//! Failure injection: protocol misuse must surface as typed errors
//! (deadlock reports, allocation failures, bounds errors), never as
//! silent corruption or hangs.

use oc_bcast::{Algorithm, Broadcaster, OcConfig};
use scc_hal::{CoreId, FlagValue, MemRange, Rma, RmaError, RmaResult};
use scc_rcce::{MpbAllocator, RcceComm};
use scc_sim::{run_spmd, SimConfig, SimError};

fn cfg(p: usize) -> SimConfig {
    SimConfig { num_cores: p, mem_bytes: 1 << 16, ..Default::default() }
}

#[test]
fn mismatched_collective_roots_deadlock_cleanly() {
    // Core 3 disagrees about who the root is: some cores wait for
    // notifications that never come. The engine must detect it and name
    // the parked cores instead of hanging.
    let err = run_spmd(&cfg(6), |c| -> RmaResult<()> {
        let mut alloc = MpbAllocator::new();
        let mut b = Broadcaster::new(&mut alloc, Algorithm::oc_default(), 6).expect("ctx");
        let root = if c.core().index() == 3 { CoreId(1) } else { CoreId(0) };
        let r = MemRange::new(0, 64);
        if c.core() == root {
            c.mem_write(0, &[1u8; 64])?;
        }
        b.bcast(c, root, r)
    })
    .unwrap_err();
    match err {
        SimError::Deadlock { parked } => assert!(!parked.is_empty()),
        other => panic!("expected deadlock, got {other}"),
    }
}

#[test]
fn missing_sender_deadlocks_with_line_info() {
    let err = run_spmd(&cfg(2), |c| -> RmaResult<()> {
        let mut alloc = MpbAllocator::new();
        let comm = RcceComm::new(&mut alloc, 2).expect("ctx");
        if c.core().index() == 1 {
            // Receive from a core that never sends.
            comm.recv(c, CoreId(0), MemRange::new(0, 128))?;
        }
        Ok(())
    })
    .unwrap_err();
    let SimError::Deadlock { parked } = err else { panic!("expected deadlock") };
    assert_eq!(parked.len(), 1);
    assert_eq!(parked[0].0, CoreId(1));
}

#[test]
fn deadlocked_core_receives_a_typed_error() {
    // The parked core itself observes RmaError::Deadlock and can clean
    // up; the run still reports the failure.
    let err = run_spmd(&cfg(2), |c| -> RmaResult<&'static str> {
        if c.core().index() == 1 {
            match c.flag_wait_local(5, &mut |v| v == FlagValue(9)) {
                Err(RmaError::Deadlock { core, line }) => {
                    assert_eq!(core, CoreId(1));
                    assert_eq!(line, 5);
                    return Ok("recovered");
                }
                other => panic!("expected deadlock error, got {other:?}"),
            }
        }
        Ok("idle")
    })
    .unwrap_err();
    assert!(matches!(err, SimError::Deadlock { .. }));
}

#[test]
fn oversized_context_fails_at_allocation_not_at_runtime() {
    let mut alloc = MpbAllocator::new();
    // k = 63 fits exactly (1 + 63 + 192 = 256)…
    assert!(oc_bcast::OcBcast::new(&mut alloc, OcConfig { k: 63, ..Default::default() }).is_ok());
    // …and the MPB is now full: nothing else fits.
    assert!(alloc.alloc(1).is_err());

    let mut alloc = MpbAllocator::new();
    let err = oc_bcast::OcBcast::new(&mut alloc, OcConfig { k: 64, ..Default::default() });
    assert!(err.is_err(), "k = 64 with 96-line double buffers must not fit");
}

#[test]
fn rma_bounds_errors_are_reported_not_fatal() {
    let rep = run_spmd(&cfg(2), |c| -> RmaResult<u32> {
        let mut hits = 0;
        if c.get_to_mem(scc_hal::MpbAddr::new(CoreId(1), 200), MemRange::new(0, 100 * 32)).is_err()
        {
            hits += 1;
        }
        if c.mem_read(1 << 20, &mut [0u8; 4]).is_err() {
            hits += 1;
        }
        if c.put_from_mpb(0, scc_hal::MpbAddr::new(CoreId(1), 0), 0).is_err() {
            hits += 1;
        }
        // The core is still healthy after rejected ops.
        c.flag_put(scc_hal::MpbAddr::new(c.core(), 0), FlagValue(3))?;
        let v = c.flag_read_local(0)?;
        assert_eq!(v, FlagValue(3));
        Ok(hits)
    })
    .expect("run survives rejected ops");
    assert_eq!(rep.results[0].as_ref().unwrap(), &3);
}

#[test]
fn broadcast_to_absent_core_is_rejected() {
    // Run with 4 cores, address core 7: the op-level validation fires.
    let rep = run_spmd(&cfg(4), |c| -> RmaResult<bool> {
        let e = c.flag_put(scc_hal::MpbAddr::new(CoreId(7), 0), FlagValue(1));
        Ok(matches!(e, Err(RmaError::Engine(_))))
    })
    .expect("run");
    assert!(rep.results.into_iter().all(|r| r.unwrap()));
}

#[test]
fn allocator_misuse_is_loud() {
    let mut alloc = MpbAllocator::new();
    let r = alloc.alloc(10).expect("alloc");
    alloc.free(r);
    let result = std::panic::catch_unwind(move || alloc.free(r));
    assert!(result.is_err(), "double free must panic");
}

#[test]
fn mismatched_message_sizes_detected_as_deadlock_or_error() {
    // Cores disagree on the chunk count: sequence numbers diverge and
    // someone waits forever. The engine must not hang.
    let err = run_spmd(&cfg(4), |c| -> RmaResult<()> {
        let mut alloc = MpbAllocator::new();
        let mut b = Broadcaster::new(&mut alloc, Algorithm::oc_default(), 4).expect("ctx");
        let len = if c.core().index() == 2 { 96 * 32 } else { 3 * 96 * 32 };
        let r = MemRange::new(0, len);
        if c.core().index() == 0 {
            c.mem_write(0, &vec![5u8; len])?;
        }
        b.bcast(c, CoreId(0), r)?;
        // A second collective makes the divergence fatal even if the
        // first one squeaked through.
        b.bcast(c, CoreId(0), r)
    })
    .unwrap_err();
    assert!(matches!(err, SimError::Deadlock { .. }), "got {err}");
}

#[test]
fn rt_backend_surfaces_bounds_errors_too() {
    let rep = scc_rt::run_spmd(&scc_rt::RtConfig { num_cores: 2, mem_bytes: 256 }, |c| {
        let a = c.mem_write(250, &[1u8; 10]).unwrap_err();
        let b = c.get_to_mpb(scc_hal::MpbAddr::new(CoreId(1), 250), 0, 10).unwrap_err();
        (matches!(a, RmaError::MemOutOfRange { .. }), matches!(b, RmaError::MpbOutOfRange { .. }))
    })
    .expect("rt");
    for r in rep.results {
        assert_eq!(r, (true, true));
    }
}

#[test]
fn zero_length_collectives_are_noops_everywhere() {
    let rep = run_spmd(&cfg(4), |c| -> RmaResult<scc_hal::Time> {
        let mut alloc = MpbAllocator::new();
        let mut b = Broadcaster::new(&mut alloc, Algorithm::oc_default(), 4).expect("ctx");
        b.bcast(c, CoreId(0), MemRange::new(0, 0))?;
        Ok(c.now())
    })
    .expect("run");
    for r in rep.results {
        assert_eq!(r.unwrap(), scc_hal::Time::ZERO);
    }
}

#[test]
fn panic_in_one_core_propagates() {
    let result = std::panic::catch_unwind(|| {
        let _ = run_spmd(&cfg(3), |c| {
            if c.core().index() == 1 {
                panic!("injected core failure");
            }
            c.flag_wait_local(0, &mut |v| v == FlagValue(1)).ok();
        });
    });
    assert!(result.is_err(), "the injected panic must propagate to the caller");
}

#[test]
fn rt_panic_in_one_core_poisons_waiters_instead_of_hanging() {
    // A panicking core must not leave its peers spinning forever on
    // flags it will never write: the poison flag aborts their waits,
    // and the original panic propagates to the caller.
    let result = std::panic::catch_unwind(|| {
        let _ = scc_rt::run_spmd(&scc_rt::RtConfig { num_cores: 3, mem_bytes: 4096 }, |c| {
            if c.core().index() == 1 {
                panic!("injected rt core failure");
            }
            // These cores wait on a flag only core 1 could write.
            let r = c.flag_wait_local(0, &mut |v| v == FlagValue(1));
            assert!(matches!(r, Err(RmaError::Engine(_))), "wait must abort: {r:?}");
        });
    });
    assert!(result.is_err(), "the injected panic must propagate");
}
