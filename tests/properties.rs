//! Property-based tests over the public API: random configurations of
//! the collectives must always deliver, the trees must always be
//! well-formed, and the simulator must stay deterministic.

use oc_bcast::{Algorithm, Broadcaster, KaryTree, OcConfig};
use proptest::prelude::*;
use scc_hal::{CoreId, MemRange, Rma, RmaExt, RmaResult};
use scc_rcce::MpbAllocator;
use scc_sim::{run_spmd, SimConfig};

fn bcast_on_sim(p: usize, alg: Algorithm, root: u8, msg: Vec<u8>) -> Vec<Vec<u8>> {
    let cfg = SimConfig { num_cores: p, mem_bytes: 1 << 18, ..Default::default() };
    let rep = run_spmd(&cfg, move |c| -> RmaResult<Vec<u8>> {
        let mut alloc = MpbAllocator::new();
        let mut b = Broadcaster::new(&mut alloc, alg, c.num_cores()).expect("ctx");
        let r = MemRange::new(0, msg.len());
        if c.core() == CoreId(root) {
            c.mem_write(0, &msg)?;
        }
        b.bcast(c, CoreId(root), r)?;
        c.mem_to_vec(r)
    })
    .expect("sim run");
    rep.results.into_iter().map(|r| r.expect("core")).collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    /// OC-Bcast delivers arbitrary payloads for arbitrary geometry.
    #[test]
    fn oc_bcast_delivers(
        p in 2usize..16,
        k in 1usize..12,
        root in 0u8..16,
        msg in proptest::collection::vec(any::<u8>(), 1..8000),
    ) {
        let root = root % p as u8;
        let got = bcast_on_sim(p, Algorithm::OcBcast(OcConfig::with_k(k)), root, msg.clone());
        for (i, g) in got.iter().enumerate() {
            prop_assert_eq!(g, &msg, "core {}", i);
        }
    }

    /// The two-sided baselines deliver under the same geometry.
    #[test]
    fn baselines_deliver(
        p in 2usize..12,
        root in 0u8..12,
        msg in proptest::collection::vec(any::<u8>(), 1..4000),
        binomial in any::<bool>(),
    ) {
        let root = root % p as u8;
        let alg = if binomial { Algorithm::Binomial } else { Algorithm::ScatterAllgather };
        let got = bcast_on_sim(p, alg, root, msg.clone());
        for (i, g) in got.iter().enumerate() {
            prop_assert_eq!(g, &msg, "core {}", i);
        }
    }

    /// Tree invariants: every non-root appears exactly once as a child,
    /// parent/child agree, depth bounded by ceil(log_k) levels.
    #[test]
    fn kary_tree_invariants(p in 1usize..49, k in 1usize..48, root in 0usize..48) {
        let root = root % p;
        let tree = KaryTree::new(p, k, CoreId(root as u8));
        let mut seen = vec![0u32; p];
        seen[root] += 1;
        for c in (0..p).map(|i| CoreId(i as u8)) {
            for ch in tree.children(c) {
                seen[ch.index()] += 1;
                prop_assert_eq!(tree.parent(ch), Some(c));
            }
        }
        prop_assert!(seen.iter().all(|&s| s == 1));
        for c in (0..p).map(|i| CoreId(i as u8)) {
            prop_assert!(tree.depth_of(c) <= tree.depth());
        }
    }

    /// Chunk accounting: number of chunks and MPB context sizing never
    /// disagree with the payload length.
    #[test]
    fn chunk_accounting(len in 1usize..200_000, chunk_lines in 1usize..128) {
        let mut alloc = MpbAllocator::new();
        let cfg = OcConfig { k: 2, chunk_lines, ..OcConfig::default() };
        if let Ok(oc) = oc_bcast::OcBcast::new(&mut alloc, cfg) {
            let chunks = oc.chunks_for(len);
            let lines = scc_hal::bytes_to_lines(len);
            prop_assert_eq!(chunks, lines.div_ceil(chunk_lines).max(1));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, .. ProptestConfig::default() })]

    /// Determinism: the same program produces the identical report.
    #[test]
    fn simulator_is_deterministic(
        p in 2usize..10,
        k in 1usize..8,
        len in 1usize..3000,
    ) {
        let run = || {
            let cfg = SimConfig { num_cores: p, mem_bytes: 1 << 16, ..Default::default() };
            let rep = run_spmd(&cfg, move |c| -> RmaResult<scc_hal::Time> {
                let mut alloc = MpbAllocator::new();
                let mut b = Broadcaster::new(
                    &mut alloc,
                    Algorithm::OcBcast(OcConfig::with_k(k)),
                    c.num_cores(),
                )
                .expect("ctx");
                let r = MemRange::new(0, len);
                if c.core().index() == 0 {
                    c.mem_write(0, &vec![9u8; len])?;
                }
                b.bcast(c, CoreId(0), r)?;
                Ok(c.now())
            })
            .expect("sim");
            (rep.results.into_iter().map(|r| r.expect("t")).collect::<Vec<_>>(), rep.stats)
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.0, b.0);
        prop_assert_eq!(a.1, b.1);
    }
}
