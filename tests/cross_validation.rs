//! Model ↔ simulator cross-validation: the paper's Section 3.2 loop
//! ("our model precisely estimates the communication performance")
//! plus coarse agreement between the analytical broadcast models and
//! measured broadcast behaviour.

use oc_bcast::Algorithm;
use scc_bench::{measure_bcast, paper_chip};
use scc_hal::{core_at_mpb_distance, core_with_mem_distance, CoreId};
use scc_model::bcast::FullModelCfg;
use scc_model::{ModelParams, P2p};
use scc_sim::{measure_p2p, P2pKind};

#[test]
fn p2p_ops_match_the_model_exactly() {
    // Contention-free put/get completion on the simulator equals
    // Formulas (7)–(12) with Table-1 parameters, at every distance and
    // for every size of Figure 3.
    let cfg = paper_chip();
    let model = P2p::new(ModelParams::paper());
    for m in [1usize, 4, 8, 16] {
        for d in 1..=9u32 {
            let exp = measure_p2p(&cfg, P2pKind::GetMpb, m, d, 1).expect("sim").as_us_f64();
            assert!((exp - model.c_get_mpb(m, d)).abs() < 1e-6, "get m={m} d={d}");
            let exp = measure_p2p(&cfg, P2pKind::PutMpb, m, d, 1).expect("sim").as_us_f64();
            assert!((exp - model.c_put_mpb(m, d)).abs() < 1e-6, "put m={m} d={d}");
        }
        for d in 1..=4u32 {
            let exp = measure_p2p(&cfg, P2pKind::GetMem, m, d, 1).expect("sim").as_us_f64();
            assert!((exp - model.c_get_mem(m, 1, d)).abs() < 1e-6, "get_mem m={m} d={d}");
            let exp = measure_p2p(&cfg, P2pKind::PutMem, m, d, 1).expect("sim").as_us_f64();
            assert!((exp - model.c_put_mem(m, d, 1)).abs() < 1e-6, "put_mem m={m} d={d}");
        }
    }
}

#[test]
fn distance_helpers_cover_the_chip() {
    for d in 1..=9 {
        assert!(core_at_mpb_distance(CoreId(0), d, 48).is_some());
    }
    for d in 1..=4 {
        assert!(core_with_mem_distance(d, 48).is_some());
    }
}

#[test]
fn measured_broadcast_sits_between_simplified_and_generous_model_bounds() {
    // The complete analytical model ignores MPB-distance spread
    // (assumes d = 1) and queueing, so it lower-bounds the simulator;
    // a generous multiple bounds it from above. This mirrors the
    // paper's Section 6.3 ("expected performance based on the model is
    // slightly better than the results we obtain").
    let cfg = paper_chip();
    let params = ModelParams::paper();
    let mcfg = FullModelCfg::default();
    for (m, k) in [(1usize, 7usize), (32, 7), (96, 2), (96, 47)] {
        let measured = measure_bcast(&cfg, Algorithm::oc_with_k(k), CoreId(0), m * 32, 1, 2)
            .expect("sim")
            .latency_us;
        let modeled = scc_model::oc_latency_full(&params, &mcfg, 48, m, k);
        assert!(
            measured >= modeled * 0.95,
            "m={m} k={k}: sim {measured:.2} must not beat the d=1 model {modeled:.2}"
        );
        assert!(
            measured <= modeled * 2.0,
            "m={m} k={k}: sim {measured:.2} too far above model {modeled:.2}"
        );
    }
}

#[test]
fn throughput_ratio_matches_table2_shape() {
    let cfg = paper_chip();
    let bytes = 48 * 96 * 32;
    let oc = measure_bcast(&cfg, Algorithm::oc_with_k(7), CoreId(0), bytes, 0, 1)
        .expect("sim")
        .throughput_mb_s;
    let sag = measure_bcast(&cfg, Algorithm::ScatterAllgather, CoreId(0), bytes, 0, 1)
        .expect("sim")
        .throughput_mb_s;
    // Paper Table 2 / Figure 8b: OC ~34-36 MB/s, s-ag ~13 MB/s, ~3x.
    assert!((25.0..45.0).contains(&oc), "OC throughput {oc:.1} MB/s out of band");
    assert!((9.0..17.0).contains(&sag), "s-ag throughput {sag:.1} MB/s out of band");
    let ratio = oc / sag;
    assert!((2.0..3.6).contains(&ratio), "OC/s-ag ratio {ratio:.2} out of band");
}

#[test]
fn latency_improvement_headline_holds() {
    let cfg = paper_chip();
    let oc =
        measure_bcast(&cfg, Algorithm::oc_with_k(7), CoreId(0), 32, 1, 2).expect("sim").latency_us;
    let bin =
        measure_bcast(&cfg, Algorithm::Binomial, CoreId(0), 32, 1, 2).expect("sim").latency_us;
    assert!(
        oc < bin * 0.73,
        "OC-Bcast must improve 1-CL latency by at least 27%: {oc:.2} vs {bin:.2}"
    );
}
