//! Cross-crate integration matrix: every broadcast algorithm × both
//! execution engines × message sizes × core counts × sources, always
//! verifying payload content at every core.

use oc_bcast::{Algorithm, Broadcaster};
use scc_hal::{CoreId, MemRange, Rma, RmaExt, RmaResult};
use scc_rcce::MpbAllocator;

fn pattern(len: usize, seed: u8) -> Vec<u8> {
    (0..len).map(|i| (i as u8).wrapping_mul(131).wrapping_add(seed)).collect()
}

/// The SPMD body shared by both engines.
fn body<R: Rma>(c: &mut R, alg: Algorithm, root: u8, msg: &[u8]) -> RmaResult<Vec<u8>> {
    let mut alloc = MpbAllocator::new();
    let mut b = Broadcaster::new(&mut alloc, alg, c.num_cores())
        .map_err(|e| scc_hal::RmaError::Engine(e.to_string()))?;
    let r = MemRange::new(0, msg.len());
    if c.core() == CoreId(root) {
        c.mem_write(0, msg)?;
    }
    b.bcast(c, CoreId(root), r)?;
    c.mem_to_vec(r)
}

fn algorithms() -> Vec<Algorithm> {
    vec![
        Algorithm::oc_default(),
        Algorithm::oc_with_k(2),
        Algorithm::oc_with_k(47),
        Algorithm::Binomial,
        Algorithm::ScatterAllgather,
    ]
}

fn check_sim(p: usize, alg: Algorithm, root: u8, len: usize) {
    let msg = pattern(len, root.wrapping_add(p as u8));
    let expect = msg.clone();
    let cfg = scc_sim::SimConfig { num_cores: p, mem_bytes: 1 << 20, ..Default::default() };
    let rep = scc_sim::run_spmd(&cfg, move |c| body(c, alg, root, &msg))
        .unwrap_or_else(|e| panic!("sim p={p} {} root={root} len={len}: {e}", alg.label()));
    for (i, r) in rep.results.iter().enumerate() {
        assert_eq!(
            r.as_ref().expect("core result"),
            &expect,
            "sim core {i}: p={p} {} root={root} len={len}",
            alg.label()
        );
    }
}

fn check_rt(p: usize, alg: Algorithm, root: u8, len: usize) {
    let msg = pattern(len, root.wrapping_mul(3));
    let expect = msg.clone();
    let cfg = scc_rt::RtConfig { num_cores: p, mem_bytes: 1 << 20 };
    let rep = scc_rt::run_spmd(&cfg, move |c| body(c, alg, root, &msg)).expect("rt run");
    for (i, r) in rep.results.iter().enumerate() {
        assert_eq!(
            r.as_ref().expect("core result"),
            &expect,
            "rt core {i}: p={p} {} root={root} len={len}",
            alg.label()
        );
    }
}

#[test]
fn sim_all_algorithms_all_sizes() {
    for alg in algorithms() {
        for len in [1usize, 31, 32, 33, 96 * 32, 97 * 32, 3 * 96 * 32 + 5] {
            check_sim(12, alg, 0, len);
        }
    }
}

#[test]
fn sim_full_chip() {
    for alg in algorithms() {
        check_sim(48, alg, 0, 2500);
    }
}

#[test]
fn sim_various_core_counts() {
    for p in [2usize, 3, 5, 8, 17, 31, 48] {
        for alg in [Algorithm::oc_default(), Algorithm::Binomial, Algorithm::ScatterAllgather] {
            check_sim(p, alg, 0, 777);
        }
    }
}

#[test]
fn sim_various_roots() {
    for root in [1u8, 5, 11] {
        for alg in algorithms() {
            check_sim(12, alg, root, 900);
        }
    }
}

#[test]
fn sim_one_megabyte_oc() {
    // The largest message of Figure 8b.
    check_sim(12, Algorithm::oc_default(), 0, 1 << 20);
}

#[test]
fn rt_all_algorithms() {
    for alg in algorithms() {
        check_rt(6, alg, 0, 5000);
    }
}

#[test]
fn rt_non_zero_root_and_odd_p() {
    check_rt(5, Algorithm::oc_default(), 3, 1234);
    check_rt(3, Algorithm::ScatterAllgather, 2, 4096);
    check_rt(7, Algorithm::Binomial, 6, 64);
}

#[test]
fn rt_repeated_broadcasts_rotating_roots() {
    let cfg = scc_rt::RtConfig { num_cores: 4, mem_bytes: 1 << 16 };
    let rep = scc_rt::run_spmd(&cfg, |c| -> RmaResult<bool> {
        let mut alloc = MpbAllocator::new();
        let mut b = Broadcaster::new(&mut alloc, Algorithm::oc_default(), 4).expect("ctx");
        let mut ok = true;
        for round in 0..16u8 {
            let root = CoreId(round % 4);
            let msg = pattern(100 + round as usize * 37, round);
            let r = MemRange::new(0, msg.len());
            if c.core() == root {
                c.mem_write(0, &msg)?;
            }
            b.bcast(c, root, r)?;
            ok &= c.mem_to_vec(r)? == msg;
        }
        Ok(ok)
    })
    .expect("rt");
    assert!(rep.results.into_iter().all(|r| r.expect("core")));
}
