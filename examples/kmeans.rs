//! SPMD k-means on the simulated SCC — the classic broadcast-heavy
//! iteration the paper's introduction motivates: every round the root
//! broadcasts the centroid table (a *large* message) and the cores
//! reduce their partial sums back.
//!
//! The example runs the identical computation twice, once with
//! OC-Bcast and once with the two-sided scatter-allgather broadcast,
//! and reports the end-to-end virtual time of each: the broadcast is a
//! large share of the iteration, so the ~2.5× broadcast-throughput gap
//! translates directly into iteration time.
//!
//! Run: `cargo run --release --example kmeans`

use oc_bcast::collectives::{OcReduce, ReduceOp};
use oc_bcast::{Algorithm, Broadcaster};
use scc_hal::{CoreId, MemRange, Rma, RmaResult, Time};
use scc_rcce::MpbAllocator;
use scc_sim::{run_spmd, SimConfig};

const P: usize = 48;
const K: usize = 64; // centroids
const D: usize = 16; // dimensions
const POINTS_PER_CORE: usize = 256;
const ITERS: usize = 8;
/// Fixed-point scale: coordinates are u64 millis, so partial sums can
/// ride the u64 Sum reduction.
const SCALE: i64 = 1000;

/// Deterministic per-core point cloud around K true cluster centres.
fn local_points(core: usize) -> Vec<[i64; D]> {
    let mut state = (core as u64 + 1) * 0x9E37_79B9_7F4A_7C15;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..POINTS_PER_CORE)
        .map(|_| {
            let cluster = (next() % K as u64) as i64;
            let mut p = [0i64; D];
            for (d, v) in p.iter_mut().enumerate() {
                let centre = cluster * 10 * SCALE + d as i64 * SCALE;
                let noise = (next() % (2 * SCALE as u64)) as i64 - SCALE;
                *v = centre + noise;
            }
            p
        })
        .collect()
}

/// One full k-means run; returns (makespan, final inertia at root).
fn run(alg: Algorithm) -> (Time, u64) {
    let centroid_bytes = K * D * 8;
    // Memory layout per core: [0, cb) centroids, then the reduce vector
    // of K*(D+1) u64 (sums per dim + count), then scratch.
    let sums_off = centroid_bytes.next_multiple_of(32);
    let sums_len = K * (D + 1) * 8;

    let cfg = SimConfig { num_cores: P, mem_bytes: 1 << 20, ..SimConfig::default() };
    let rep = run_spmd(&cfg, move |c| -> RmaResult<u64> {
        let mut alloc = MpbAllocator::new();
        // The reduce context first (small, fixed slots) so both
        // broadcaster variants leave it identical room.
        let mut red = OcReduce::with_slot_lines(&mut alloc, 7, 4).expect("reduce ctx");
        let mut bc = Broadcaster::new(&mut alloc, alg, P).expect("bcast ctx");
        bc_scope(c, &mut bc, &mut red, sums_off, sums_len, centroid_bytes)
    })
    .expect("simulation");
    let inertia = *rep.results[0].as_ref().expect("root result");
    (rep.makespan, inertia)
}

#[allow(clippy::too_many_arguments)]
fn bc_scope<R: Rma>(
    c: &mut R,
    bc: &mut Broadcaster,
    red: &mut OcReduce,
    sums_off: usize,
    sums_len: usize,
    centroid_bytes: usize,
) -> RmaResult<u64> {
    let points = local_points(c.core().index());
    let centroid_range = MemRange::new(0, centroid_bytes);
    let sums_range = MemRange::new(sums_off, sums_len);

    let mut inertia = 0u64;

    // Root seeds centroids with the first K points it owns.
    if c.core().index() == 0 {
        let mut init = Vec::with_capacity(centroid_bytes);
        for k in 0..K {
            for &coord in &points[k % points.len()] {
                init.extend_from_slice(&(coord as u64).to_le_bytes());
            }
        }
        c.mem_write(0, &init)?;
    }

    for _iter in 0..ITERS {
        // 1. Broadcast the centroid table.
        bc.bcast(c, CoreId(0), centroid_range)?;

        // 2. Local assignment + partial sums (host computation charged
        //    as compute time: ~40 ns per point-centroid pair on a P54C
        //    class core).
        let mut raw = vec![0u8; centroid_bytes];
        c.mem_read(0, &mut raw)?;
        let centroids: Vec<u64> =
            raw.chunks_exact(8).map(|b| u64::from_le_bytes(b.try_into().expect("8B"))).collect();
        let mut sums = vec![0u64; K * (D + 1)];
        inertia = 0;
        for p in &points {
            let mut best = (u64::MAX, 0usize);
            for k in 0..K {
                let mut dist = 0u64;
                for (d, &coord) in p.iter().enumerate() {
                    let diff = coord - centroids[k * D + d] as i64;
                    dist += (diff * diff) as u64;
                }
                if dist < best.0 {
                    best = (dist, k);
                }
            }
            inertia += best.0;
            let k = best.1;
            for d in 0..D {
                sums[k * (D + 1) + d] += p[d] as u64;
            }
            sums[k * (D + 1) + D] += 1;
        }
        c.compute(Time::from_ns(40 * (points.len() * K) as u64));

        // 3. Reduce partial sums to the root.
        let bytes: Vec<u8> = sums.iter().flat_map(|v| v.to_le_bytes()).collect();
        c.mem_write(sums_off, &bytes)?;
        red.reduce(c, CoreId(0), sums_range, ReduceOp::Sum)?;

        // 4. Root recomputes centroids.
        if c.core().index() == 0 {
            let mut raw = vec![0u8; sums_len];
            c.mem_read(sums_off, &mut raw)?;
            let totals: Vec<u64> = raw
                .chunks_exact(8)
                .map(|b| u64::from_le_bytes(b.try_into().expect("8B")))
                .collect();
            let mut new_centroids = Vec::with_capacity(centroid_bytes);
            let old: Vec<u64> = (0..K * D).map(|i| centroids[i]).collect();
            for k in 0..K {
                let count = totals[k * (D + 1) + D].max(1);
                for d in 0..D {
                    let mean = if totals[k * (D + 1) + D] == 0 {
                        old[k * D + d]
                    } else {
                        totals[k * (D + 1) + d] / count
                    };
                    new_centroids.extend_from_slice(&mean.to_le_bytes());
                }
            }
            c.mem_write(0, &new_centroids)?;
            c.compute(Time::from_ns(2 * (K * D) as u64));
        }
    }
    Ok(inertia)
}

fn main() {
    println!(
        "SPMD k-means on the simulated SCC: P={P}, K={K}, D={D}, {POINTS_PER_CORE} points/core, {ITERS} iterations"
    );
    println!("centroid broadcast per iteration: {} cache lines\n", K * D * 8 / 32);

    let (t_oc, inertia_oc) = run(Algorithm::oc_default());
    let (t_sag, inertia_sag) = run(Algorithm::ScatterAllgather);

    println!("OC-Bcast (k=7)      total virtual time: {t_oc}");
    println!("scatter-allgather   total virtual time: {t_sag}");
    println!("speedup from the RMA broadcast alone: {:.2}x", t_sag.as_ns_f64() / t_oc.as_ns_f64());
    assert_eq!(inertia_oc, inertia_sag, "both variants must compute identical results");
    println!("final local inertia at root (identical for both): {inertia_oc}");
    assert!(t_oc < t_sag, "OC-Bcast must win the broadcast-heavy workload");
}
