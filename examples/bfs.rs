//! Level-synchronous parallel BFS on the simulated SCC — the
//! irregular-communication pattern that stresses a different collective
//! mix than the dense kernels: each level the cores expand their local
//! frontier slice, OR-merge the next frontier bitmap through rotating
//! OC-Bcast rounds, and allreduce the termination flag.
//!
//! Run: `cargo run --release --example bfs`

use oc_bcast::collectives::{OcReduce, ReduceOp};
use oc_bcast::{OcBcast, OcConfig};
use scc_hal::{CoreId, MemRange, Rma, RmaResult, Time};
use scc_rcce::MpbAllocator;
use scc_sim::{run_spmd, SimConfig};

const P: usize = 16;
const VERTS_PER_CORE: usize = 256;
const N: usize = P * VERTS_PER_CORE;
const DEGREE: usize = 6;

/// Memory layout: frontier exchange area, then the termination word.
const BITMAP_BYTES: usize = N / 8;
const FRONTIER_OFF: usize = 0;
const TERM_OFF: usize = BITMAP_BYTES.next_multiple_of(32);

/// Deterministic pseudo-random regular digraph: neighbours of v.
fn neighbours(v: usize) -> impl Iterator<Item = usize> {
    (0..DEGREE).map(move |j| {
        let mut x = (v as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (j as u64) << 17;
        x ^= x >> 31;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 29;
        (x % N as u64) as usize
    })
}

fn get_bit(bm: &[u8], v: usize) -> bool {
    bm[v / 8] & (1 << (v % 8)) != 0
}

fn set_bit(bm: &mut [u8], v: usize) {
    bm[v / 8] |= 1 << (v % 8);
}

fn main() {
    let cfg = SimConfig { num_cores: P, mem_bytes: 1 << 18, ..SimConfig::default() };
    let report = run_spmd(&cfg, |c| -> RmaResult<(u32, usize)> {
        let me = c.core().index();
        let mut alloc = MpbAllocator::new();
        let mut bc = OcBcast::new(&mut alloc, OcConfig { chunk_lines: 48, ..Default::default() })
            .expect("bcast ctx");
        let mut red = OcReduce::with_slot_lines(&mut alloc, 7, 2).expect("reduce ctx");

        // My vertex range.
        let lo = me * VERTS_PER_CORE;
        let hi = lo + VERTS_PER_CORE;

        let mut visited = vec![0u8; BITMAP_BYTES];
        let mut frontier = vec![0u8; BITMAP_BYTES];
        set_bit(&mut visited, 0);
        set_bit(&mut frontier, 0);

        let mut level = 0u32;
        let mut reached = 1usize;
        loop {
            // Expand the local slice of the frontier.
            let mut next = vec![0u8; BITMAP_BYTES];
            let mut work = 0u64;
            for v in lo..hi {
                if get_bit(&frontier, v) {
                    for w in neighbours(v) {
                        if !get_bit(&visited, w) {
                            set_bit(&mut next, w);
                        }
                        work += 1;
                    }
                }
            }
            c.compute(Time::from_ns(20 * work.max(1)));

            // Frontier candidates can target ANY vertex, so per-core
            // contributions must be OR-merged (an allgather of disjoint
            // slices cannot express that). Each core broadcasts its
            // candidate bitmap in turn and everyone ORs them together —
            // P pipelined OC-Bcast rounds of N/8 bytes each.
            let mut merged = vec![0u8; BITMAP_BYTES];
            for root in 0..P {
                if root == me {
                    c.mem_write(FRONTIER_OFF, &next)?;
                }
                bc.bcast(c, CoreId(root as u8), MemRange::new(FRONTIER_OFF, BITMAP_BYTES))?;
                let mut got = vec![0u8; BITMAP_BYTES];
                c.mem_read(FRONTIER_OFF, &mut got)?;
                for (m, g) in merged.iter_mut().zip(&got) {
                    *m |= g;
                }
            }
            // Next frontier = merged candidates minus already-visited.
            let mut newly = 0usize;
            frontier = vec![0u8; BITMAP_BYTES];
            for v in 0..N {
                if get_bit(&merged, v) && !get_bit(&visited, v) {
                    set_bit(&mut visited, v);
                    set_bit(&mut frontier, v);
                    newly += 1;
                }
            }
            c.compute(Time::from_ns((N / 4) as u64));
            reached += newly;

            // Termination: allreduce of the newly-discovered count.
            c.mem_write(TERM_OFF, &(newly as u64).to_le_bytes())?;
            red.reduce(c, CoreId(0), MemRange::new(TERM_OFF, 8), ReduceOp::Max)?;
            bc.bcast(c, CoreId(0), MemRange::new(TERM_OFF, 8))?;
            let mut b = [0u8; 8];
            c.mem_read(TERM_OFF, &mut b)?;
            if u64::from_le_bytes(b) == 0 {
                break;
            }
            level += 1;
            if level > 64 {
                break; // safety net
            }
        }
        Ok((level, reached))
    })
    .expect("simulation");

    let (levels, reached) = *report.results[0].as_ref().expect("core 0");
    for (i, r) in report.results.iter().enumerate() {
        assert_eq!(*r.as_ref().expect("core"), (levels, reached), "core {i} diverged");
    }
    println!("BFS over {N} vertices (degree {DEGREE}): {reached} reached in {levels} levels");
    println!("virtual makespan: {}", report.makespan);
    assert!(reached > N / 2, "the random digraph's giant component should dominate");
}
