//! Quickstart: broadcast a message across the 48 simulated SCC cores
//! with OC-Bcast, verify delivery, and print the measured latency.
//!
//! Run: `cargo run --release --example quickstart`

use oc_bcast::{Algorithm, Broadcaster};
use scc_hal::{CoreId, MemRange, Rma, RmaExt, RmaResult, Time};
use scc_rcce::MpbAllocator;
use scc_sim::{run_spmd, SimConfig};

fn main() {
    let message = b"Hello from core 0, via the on-chip message passing buffers!";
    let cfg = SimConfig { num_cores: 48, mem_bytes: 1 << 16, ..SimConfig::default() };

    let report = run_spmd(&cfg, |core| -> RmaResult<(Vec<u8>, Time)> {
        // Symmetric setup: every core reserves the same MPB lines.
        let mut alloc = MpbAllocator::new();
        let mut bcast = Broadcaster::new(&mut alloc, Algorithm::oc_default(), core.num_cores())
            .expect("MPB layout");

        let range = MemRange::new(0, message.len());
        if core.core() == CoreId(0) {
            core.mem_write(0, message)?;
        }
        bcast.bcast(core, CoreId(0), range)?;
        Ok((core.mem_to_vec(range)?, core.now()))
    })
    .expect("simulation");

    let mut last = Time::ZERO;
    for (i, r) in report.results.iter().enumerate() {
        let (bytes, done) = r.as_ref().expect("core result");
        assert_eq!(bytes.as_slice(), message, "core {i} received a corrupted message");
        last = last.max(*done);
    }
    println!("all 48 cores received {:?}", String::from_utf8_lossy(message));
    println!("broadcast latency (call to last return): {last}");
    println!(
        "simulator processed {} events, moved {} cache lines",
        report.stats.events, report.stats.lines_moved
    );
}
