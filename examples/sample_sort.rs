//! Parallel sample sort on the simulated SCC — the classic
//! all-to-all-heavy SPMD kernel, exercising the one-sided personalized
//! collectives (`OnesidedGroup`) together with OC-Bcast:
//!
//! 1. every core sorts its local keys and contributes samples
//!    (gather to core 0);
//! 2. core 0 selects `P − 1` splitters and OC-broadcasts them;
//! 3. cores partition their keys and exchange buckets with the
//!    one-sided all-to-all;
//! 4. cores merge their received buckets; core 0 verifies the global
//!    order with a final gather of per-core summaries.
//!
//! Run: `cargo run --release --example sample_sort`

use oc_bcast::alltoall::OnesidedGroup;
use oc_bcast::scatter_allgather::slice_range;
use oc_bcast::{OcBcast, OcConfig};
use scc_hal::{CoreId, MemRange, Rma, RmaResult, Time};
use scc_rcce::MpbAllocator;
use scc_sim::{run_spmd, SimConfig};

const P: usize = 16;
const KEYS_PER_CORE: usize = 512;
const SAMPLES_PER_CORE: usize = 8;
/// Bucket capacity in keys (4× the expected share, comfortably above
/// the w.h.p. bound for uniform keys).
const BUCKET_CAP: usize = 4 * KEYS_PER_CORE / P;

/// Per-slice byte layout: an 8-byte count then `BUCKET_CAP` keys,
/// rounded up to cache lines.
const SLICE_BYTES: usize = (8 + BUCKET_CAP * 8).div_ceil(32) * 32;

// Private-memory layout (all 32-aligned).
const SAMPLES_OFF: usize = 0; // P * SAMPLES_PER_CORE * 8 gathered here
const SPLITTERS_OFF: usize = 8192;
const SEND_OFF: usize = 16384;
const RECV_OFF: usize = SEND_OFF + P * SLICE_BYTES + 64 * 32;
const SUMMARY_OFF: usize = RECV_OFF + P * SLICE_BYTES + 64 * 32;

fn keys_for(core: usize) -> Vec<u64> {
    let mut state = (core as u64 + 7) * 0x2545_F491_4F6C_DD1D;
    (0..KEYS_PER_CORE)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        })
        .collect()
}

fn main() {
    let cfg = SimConfig { num_cores: P, mem_bytes: 1 << 20, ..SimConfig::default() };
    let report = run_spmd(&cfg, |c| -> RmaResult<(u64, u64, u64)> {
        let me = c.core().index();
        let mut alloc = MpbAllocator::new();
        let mut group = OnesidedGroup::new(&mut alloc, P, 80).expect("group ctx");
        let mut bcast =
            OcBcast::new(&mut alloc, OcConfig { chunk_lines: 20, ..OcConfig::default() })
                .expect("bcast ctx");

        // 1. Local sort + samples.
        let mut keys = keys_for(me);
        keys.sort_unstable();
        c.compute(Time::from_ns(30 * KEYS_PER_CORE as u64)); // ~n log n fixed-cost sort

        let sample_area = MemRange::new(SAMPLES_OFF, P * SAMPLES_PER_CORE * 8);
        let mine = slice_range(sample_area, P, me);
        let samples: Vec<u8> = (0..SAMPLES_PER_CORE)
            .flat_map(|i| {
                keys[i * KEYS_PER_CORE / SAMPLES_PER_CORE + KEYS_PER_CORE / (2 * SAMPLES_PER_CORE)]
                    .to_le_bytes()
            })
            .collect();
        c.mem_write(mine.offset, &samples[..mine.len.min(samples.len())])?;
        group.gather(c, CoreId(0), sample_area)?;

        // 2. Core 0 picks splitters, broadcast.
        if me == 0 {
            let mut all = vec![0u8; sample_area.len];
            c.mem_read(SAMPLES_OFF, &mut all)?;
            let mut vals: Vec<u64> = all
                .chunks_exact(8)
                .map(|b| u64::from_le_bytes(b.try_into().expect("8B")))
                .collect();
            vals.sort_unstable();
            let splitters: Vec<u8> =
                (1..P).flat_map(|j| vals[j * vals.len() / P].to_le_bytes()).collect();
            c.mem_write(SPLITTERS_OFF, &splitters)?;
            c.compute(Time::from_ns(vals.len() as u64 * 25));
        }
        let splitter_range = MemRange::new(SPLITTERS_OFF, (P - 1) * 8);
        bcast.bcast(c, CoreId(0), splitter_range)?;
        let mut raw = vec![0u8; (P - 1) * 8];
        c.mem_read(SPLITTERS_OFF, &mut raw)?;
        let splitters: Vec<u64> =
            raw.chunks_exact(8).map(|b| u64::from_le_bytes(b.try_into().expect("8B"))).collect();

        // 3. Partition into buckets and pack send slices.
        let mut buckets: Vec<Vec<u64>> = vec![Vec::new(); P];
        for &k in &keys {
            let b = splitters.partition_point(|&s| s <= k);
            buckets[b].push(k);
        }
        c.compute(Time::from_ns(12 * KEYS_PER_CORE as u64));
        let send = MemRange::new(SEND_OFF, P * SLICE_BYTES);
        let recv = MemRange::new(RECV_OFF, P * SLICE_BYTES);
        for (j, bucket) in buckets.iter().enumerate() {
            assert!(bucket.len() <= BUCKET_CAP, "bucket overflow: {}", bucket.len());
            let s = slice_range(send, P, j);
            let mut blob = Vec::with_capacity(SLICE_BYTES);
            blob.extend_from_slice(&(bucket.len() as u64).to_le_bytes());
            for k in bucket {
                blob.extend_from_slice(&k.to_le_bytes());
            }
            c.mem_write(s.offset, &blob)?;
        }
        group.alltoall(c, send, recv)?;

        // 4. Unpack + merge.
        let mut merged = Vec::new();
        for j in 0..P {
            let s = slice_range(recv, P, j);
            let mut head = [0u8; 8];
            c.mem_read(s.offset, &mut head)?;
            let count = u64::from_le_bytes(head) as usize;
            let mut body = vec![0u8; count * 8];
            c.mem_read(s.offset + 8, &mut body)?;
            merged.extend(
                body.chunks_exact(8).map(|b| u64::from_le_bytes(b.try_into().expect("8B"))),
            );
        }
        merged.sort_unstable();
        c.compute(Time::from_ns(30 * merged.len().max(1) as u64));
        assert!(merged.windows(2).all(|w| w[0] <= w[1]));

        // 5. Summary gather for global verification at core 0.
        let summary = MemRange::new(SUMMARY_OFF, P * 32);
        let s = slice_range(summary, P, me);
        let (lo, hi) =
            (merged.first().copied().unwrap_or(u64::MAX), merged.last().copied().unwrap_or(0));
        let mut blob = [0u8; 32];
        blob[..8].copy_from_slice(&lo.to_le_bytes());
        blob[8..16].copy_from_slice(&hi.to_le_bytes());
        blob[16..24].copy_from_slice(&(merged.len() as u64).to_le_bytes());
        c.mem_write(s.offset, &blob)?;
        group.gather(c, CoreId(0), summary)?;

        if me == 0 {
            let mut all = vec![0u8; summary.len];
            c.mem_read(SUMMARY_OFF, &mut all)?;
            let mut total = 0u64;
            let mut prev_hi = 0u64;
            for j in 0..P {
                let rec = &all[j * 32..];
                let lo = u64::from_le_bytes(rec[..8].try_into().expect("8B"));
                let hi = u64::from_le_bytes(rec[8..16].try_into().expect("8B"));
                let n = u64::from_le_bytes(rec[16..24].try_into().expect("8B"));
                if n > 0 {
                    assert!(lo >= prev_hi, "partitions out of order at core {j}");
                    prev_hi = hi;
                }
                total += n;
            }
            assert_eq!(total as usize, P * KEYS_PER_CORE, "keys lost or duplicated");
        }
        Ok((lo, hi, merged.len() as u64))
    })
    .expect("simulation");

    let counts: Vec<u64> = report.results.iter().map(|r| r.as_ref().expect("core").2).collect();
    println!(
        "sample sort of {} keys across {P} cores: globally ordered, counts {:?}",
        P * KEYS_PER_CORE,
        counts
    );
    println!("virtual makespan: {}", report.makespan);
}
