//! Monte-Carlo π with the MPI-flavoured facade (`scc-mpi`) on the
//! simulated chip — the paper's Section 7 end state: applications
//! programmed against familiar verbs, collectives running on RMA.
//!
//! Rank 0 broadcasts the experiment configuration, every rank samples
//! its share of points, an allreduce sums the hits, and everyone
//! computes the same estimate.
//!
//! Run: `cargo run --release --example mpi_pi`

use scc_hal::{MemRange, Rma, RmaResult, Time};
use scc_mpi::{Communicator, ReduceOp};
use scc_sim::{run_spmd, SimConfig};

const P: usize = 48;
const SAMPLES_PER_RANK: u64 = 20_000;

fn main() {
    let cfg = SimConfig { num_cores: P, mem_bytes: 1 << 16, ..SimConfig::default() };
    let report = run_spmd(&cfg, |c| -> RmaResult<f64> {
        let mut comm = Communicator::new(P).expect("MPB layout");
        let me = comm.rank(c);

        // Rank 0 decides the run configuration (seed + samples).
        if me == 0 {
            let mut blob = [0u8; 16];
            blob[..8].copy_from_slice(&0xC0FFEE_u64.to_le_bytes());
            blob[8..].copy_from_slice(&SAMPLES_PER_RANK.to_le_bytes());
            c.mem_write(0, &blob)?;
        }
        comm.bcast(c, 0, MemRange::new(0, 16))?;
        let mut blob = [0u8; 16];
        c.mem_read(0, &mut blob)?;
        let seed = u64::from_le_bytes(blob[..8].try_into().expect("8B"));
        let samples = u64::from_le_bytes(blob[8..].try_into().expect("8B"));

        // Local sampling (xorshift; charged as compute time).
        let mut state = seed ^ ((me as u64 + 1) * 0x9E37_79B9_7F4A_7C15);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut hits = 0u64;
        for _ in 0..samples {
            let x = (next() >> 11) as f64 / (1u64 << 53) as f64;
            let y = (next() >> 11) as f64 / (1u64 << 53) as f64;
            if x * x + y * y <= 1.0 {
                hits += 1;
            }
        }
        c.compute(Time::from_ns(20 * samples));

        // Global sum, visible everywhere.
        c.mem_write(32, &hits.to_le_bytes())?;
        comm.allreduce(c, MemRange::new(32, 8), ReduceOp::Sum)?;
        let mut b = [0u8; 8];
        c.mem_read(32, &mut b)?;
        let total_hits = u64::from_le_bytes(b);
        Ok(4.0 * total_hits as f64 / (samples * P as u64) as f64)
    })
    .expect("simulation");

    let estimates: Vec<f64> = report.results.into_iter().map(|r| r.expect("rank")).collect();
    let pi = estimates[0];
    assert!(
        estimates.iter().all(|e| (e - pi).abs() < 1e-12),
        "allreduce must give every rank the same estimate"
    );
    println!(
        "π ≈ {pi:.5} from {} samples across {P} ranks (error {:+.5})",
        SAMPLES_PER_RANK * P as u64,
        pi - std::f64::consts::PI
    );
    println!("virtual makespan: {}", report.makespan);
    assert!((pi - std::f64::consts::PI).abs() < 0.01);
}
