//! Tune the tree degree `k` for hypothetical future many-core chips
//! with the analytical model — the paper's motivating scenario
//! ("chips with hundreds if not thousands of cores will be available",
//! Section 1), applied beyond the 48-core SCC.
//!
//! For each chip size the example prints the latency-optimal `k` for a
//! small and a medium message, the tree depth it induces, and the
//! latency landscape around the optimum.
//!
//! Run: `cargo run --release --example tune_k`

use scc_model::bcast::{oc_latency_full, tree_depth, FullModelCfg};
use scc_model::series::best_k;
use scc_model::ModelParams;

fn main() {
    let params = ModelParams::paper();
    let cfg = FullModelCfg::default();

    println!("latency-optimal OC-Bcast tree degree (Table-1 parameters, contention-free model)");
    println!("{:>6} {:>10} {:>8} {:>7} {:>12}", "P", "msg (CL)", "best k", "depth", "latency (µs)");
    for p in [48usize, 128, 256, 512, 1024] {
        for m in [1usize, 96] {
            let (k, lat) = best_k(&params, &cfg, p, m).expect("p >= 2");
            println!("{p:>6} {m:>10} {k:>8} {:>7} {lat:>12.2}", tree_depth(p, k));
        }
    }
    println!();

    // The landscape for the paper's chip: why k = 7 is a good choice.
    println!("latency landscape at P = 48 (µs):");
    println!("{:>6} {:>10} {:>10} {:>8}", "k", "1 CL", "96 CL", "depth");
    for k in [2usize, 3, 4, 5, 6, 7, 8, 12, 16, 24, 47] {
        let l1 = oc_latency_full(&params, &cfg, 48, 1, k);
        let l96 = oc_latency_full(&params, &cfg, 48, 96, k);
        println!("{k:>6} {l1:>10.2} {l96:>10.2} {:>8}", tree_depth(48, k));
    }
    println!();
    println!("note: the model is contention-free; the paper caps useful k at ~24");
    println!("concurrent MPB accessors (Section 3.3) and picks k = 7 as the");
    println!("latency/throughput/contention trade-off.");
}
