//! The same OC-Bcast code on the **real-thread backend**: actual OS
//! threads, shared atomic MPBs, acquire/release flags and wall-clock
//! time — the shared-memory emulation path of this reproduction.
//!
//! Run: `cargo run --release --example threads_demo`

use oc_bcast::collectives::{OcReduce, ReduceOp};
use oc_bcast::{Algorithm, Broadcaster};
use scc_hal::{CoreId, MemRange, Rma, RmaExt, RmaResult};
use scc_rcce::{Barrier, MpbAllocator};
use scc_rt::{run_spmd, RtConfig};

fn main() {
    // Keep the thread count modest: this backend yields in every spin
    // wait, so it works even on a single hardware thread, but more
    // threads only add scheduler churn there.
    let p = 4;
    let message: Vec<u8> = (0..4096u32).map(|i| (i % 251) as u8).collect();
    let expected = message.clone();
    let rounds = 20u64;

    let cfg = RtConfig { num_cores: p, mem_bytes: 1 << 16 };
    let report = run_spmd(&cfg, move |core| -> RmaResult<(bool, u64)> {
        let mut alloc = MpbAllocator::new();
        let mut red = OcReduce::with_slot_lines(&mut alloc, 3, 4).expect("reduce ctx");
        let mut bar = Barrier::new(&mut alloc, core.num_cores()).expect("barrier");
        let mut bcast =
            Broadcaster::new(&mut alloc, Algorithm::oc_default(), core.num_cores()).expect("ctx");

        let range = MemRange::new(0, message.len());
        let mut all_ok = true;
        for round in 0..rounds {
            // Rotate the source across cores each round.
            let root = CoreId((round % core.num_cores() as u64) as u8);
            if core.core() == root {
                core.mem_write(0, &message)?;
            }
            bar.wait(core)?;
            bcast.bcast(core, root, range)?;
            all_ok &= core.mem_to_vec(range)? == message;
        }

        // Finish with a sum reduction of per-core contributions.
        let contribution = (core.core().index() as u64 + 1) * 100;
        core.mem_write(8192, &contribution.to_le_bytes())?;
        red.reduce(core, CoreId(0), MemRange::new(8192, 8), ReduceOp::Sum)?;
        let mut buf = [0u8; 8];
        core.mem_read(8192, &mut buf)?;
        Ok((all_ok, u64::from_le_bytes(buf)))
    })
    .expect("thread run");

    for (i, r) in report.results.iter().enumerate() {
        let (ok, _) = r.as_ref().expect("core result");
        assert!(ok, "core {i} saw a corrupted broadcast");
    }
    let total = report.results[0].as_ref().expect("root").1;
    let expect_total: u64 = (1..=p as u64).map(|i| i * 100).sum();
    assert_eq!(total, expect_total, "reduction must sum all contributions");

    println!(
        "{rounds} rotating-root broadcasts of {} B across {p} threads: all verified",
        expected.len()
    );
    println!("final sum reduction at core 0: {total}");
    println!("wall-clock makespan: {}", report.makespan);
}
