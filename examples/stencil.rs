//! 1-D heat-diffusion stencil on the simulated SCC — the
//! latency-sensitive counterpart to the `kmeans` example: every time
//! step the boundary controller (core 0) broadcasts a *one-cache-line*
//! control record (current boundary drive + step scaling), and
//! neighbouring cores exchange one-cell halos over two-sided
//! send/receive.
//!
//! With hundreds of steps, the small-message broadcast latency is on
//! the critical path, so OC-Bcast's ≥27% latency win over the binomial
//! tree (paper Section 6.2.1) shows up directly in total run time.
//!
//! Run: `cargo run --release --example stencil`

use oc_bcast::{binomial_bcast, OcBcast, OcConfig};
use scc_hal::{CoreId, MemRange, Rma, RmaResult, Time};
use scc_rcce::{MpbAllocator, RcceComm};
use scc_sim::{run_spmd, SimConfig};

const P: usize = 48;
const CELLS: usize = 128; // cells per core (i64 fixed-point temperature)
const STEPS: usize = 200;
const SCALE: i64 = 1 << 16;

/// Memory layout (bytes): control record, own cells, then separate
/// send/receive halo buffers (receives must not clobber values still
/// waiting to be sent) — all 32-byte aligned.
const CTRL_OFF: usize = 0;
const CELLS_OFF: usize = 32;
const SEND_L_OFF: usize = CELLS_OFF + CELLS * 8;
const SEND_R_OFF: usize = SEND_L_OFF + 32;
const RECV_L_OFF: usize = SEND_R_OFF + 32;
const RECV_R_OFF: usize = RECV_L_OFF + 32;

enum Bcast {
    Oc(OcBcast),
    Binomial(RcceComm),
}

fn step_broadcast<R: Rma>(c: &mut R, b: &mut Bcast, range: MemRange) -> RmaResult<()> {
    match b {
        Bcast::Oc(oc) => oc.bcast(c, CoreId(0), range),
        Bcast::Binomial(comm) => binomial_bcast(c, comm, CoreId(0), range),
    }
}

fn run(use_oc: bool) -> (Time, i64) {
    let cfg = SimConfig { num_cores: P, mem_bytes: 1 << 16, ..SimConfig::default() };
    let rep = run_spmd(&cfg, move |c| -> RmaResult<i64> {
        let me = c.core().index();
        let mut alloc = MpbAllocator::new();
        // Small dedicated channel for halo exchange.
        let halo = RcceComm::with_payload_lines(&mut alloc, P, 4).expect("halo ctx");
        let mut bc = if use_oc {
            Bcast::Oc(OcBcast::new(&mut alloc, OcConfig::default()).expect("oc ctx"))
        } else {
            Bcast::Binomial(RcceComm::with_payload_lines(&mut alloc, P, 4).expect("bcast ctx"))
        };

        // Initial temperature: a ramp per core.
        let mut cells: Vec<i64> = (0..CELLS).map(|i| (i as i64) * SCALE / CELLS as i64).collect();
        let ctrl = MemRange::new(CTRL_OFF, 16);

        for step in 0..STEPS {
            // 1. Core 0 publishes the control record: the oscillating
            //    boundary drive and the diffusion coefficient.
            if me == 0 {
                let drive = ((step as i64 * 7919) % (2 * SCALE)) - SCALE;
                let alpha = SCALE / 4 + ((step as i64 * 31) % (SCALE / 8));
                let mut rec = [0u8; 16];
                rec[..8].copy_from_slice(&drive.to_le_bytes());
                rec[8..].copy_from_slice(&alpha.to_le_bytes());
                c.mem_write(CTRL_OFF, &rec)?;
            }
            step_broadcast(c, &mut bc, ctrl)?;
            let mut rec = [0u8; 16];
            c.mem_read(CTRL_OFF, &mut rec)?;
            let drive = i64::from_le_bytes(rec[..8].try_into().expect("8B"));
            let alpha = i64::from_le_bytes(rec[8..].try_into().expect("8B"));

            // 2. Halo exchange with mesh neighbours (edge cores clamp
            //    to the broadcast boundary drive).
            c.mem_write(SEND_L_OFF, &cells[0].to_le_bytes())?;
            c.mem_write(SEND_R_OFF, &cells[CELLS - 1].to_le_bytes())?;
            // Parity-scheduled ring exchange of boundary cells.
            let left = if me > 0 { Some(CoreId((me - 1) as u8)) } else { None };
            let right = if me + 1 < P { Some(CoreId((me + 1) as u8)) } else { None };
            let send_first = me % 2 == 1;
            for phase in 0..2 {
                if (phase == 0) == send_first {
                    if let Some(l) = left {
                        halo.send(c, l, MemRange::new(SEND_L_OFF, 8))?;
                    }
                    if let Some(r) = right {
                        halo.send(c, r, MemRange::new(SEND_R_OFF, 8))?;
                    }
                } else {
                    if let Some(r) = right {
                        halo.recv(c, r, MemRange::new(RECV_R_OFF, 8))?;
                    }
                    if let Some(l) = left {
                        halo.recv(c, l, MemRange::new(RECV_L_OFF, 8))?;
                    }
                }
            }
            let mut buf = [0u8; 8];
            c.mem_read(RECV_L_OFF, &mut buf)?;
            let halo_l = if left.is_some() { i64::from_le_bytes(buf) } else { drive };
            c.mem_read(RECV_R_OFF, &mut buf)?;
            let halo_r = if right.is_some() { i64::from_le_bytes(buf) } else { drive };

            // 3. Local Jacobi update (host math, charged as compute).
            let mut next = cells.clone();
            for i in 0..CELLS {
                let l = if i == 0 { halo_l } else { cells[i - 1] };
                let r = if i == CELLS - 1 { halo_r } else { cells[i + 1] };
                next[i] = cells[i] + alpha * (l + r - 2 * cells[i]) / (2 * SCALE);
            }
            cells = next;
            c.compute(Time::from_ns(4 * CELLS as u64));
        }
        Ok(cells.iter().sum())
    })
    .expect("simulation");
    let checksum: i64 =
        rep.results.iter().map(|r| *r.as_ref().expect("core")).fold(0i64, i64::wrapping_add);
    (rep.makespan, checksum)
}

fn main() {
    println!("1-D heat stencil on the simulated SCC: P={P}, {CELLS} cells/core, {STEPS} steps");
    println!("per-step broadcast: 16 bytes (1 cache line)\n");

    let (t_oc, sum_oc) = run(true);
    let (t_bin, sum_bin) = run(false);

    println!("OC-Bcast (k=7) total virtual time: {t_oc}");
    println!("binomial tree  total virtual time: {t_bin}");
    println!("speedup from the RMA broadcast alone: {:.2}x", t_bin.as_ns_f64() / t_oc.as_ns_f64());
    assert_eq!(sum_oc, sum_bin, "both variants must compute the same field");
    println!("field checksum (identical for both): {sum_oc}");
    assert!(t_oc < t_bin, "OC-Bcast must win the latency-bound workload");
}
