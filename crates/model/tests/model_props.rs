//! Property-based tests of the analytical model.

use proptest::prelude::*;
use scc_model::bcast::FullModelCfg;
use scc_model::fit::linear_fit;
use scc_model::{
    binomial_latency_full, fit_params, oc_latency_full, oc_throughput_full, sag_throughput_full,
    FitSamples, ModelError, ModelParams, P2p,
};

proptest! {
    /// Latency is monotone in message size for every algorithm.
    #[test]
    fn latencies_monotone_in_size(
        m in 1usize..500,
        k in 2usize..48,
        p in 2usize..49,
    ) {
        let params = ModelParams::paper();
        let cfg = FullModelCfg::default();
        let l1 = oc_latency_full(&params, &cfg, p, m, k);
        let l2 = oc_latency_full(&params, &cfg, p, m + 1, k);
        prop_assert!(l2 >= l1, "OC latency decreased: {l1} -> {l2}");
        let b1 = binomial_latency_full(&params, &cfg, p, m);
        let b2 = binomial_latency_full(&params, &cfg, p, m + 1);
        prop_assert!(b2 >= b1);
        prop_assert!(l1 > 0.0 && b1 > 0.0);
    }

    /// More cores never make a broadcast faster.
    #[test]
    fn latency_monotone_in_cores(m in 1usize..200, k in 2usize..24, p in 2usize..48) {
        let params = ModelParams::paper();
        let cfg = FullModelCfg::default();
        let a = oc_latency_full(&params, &cfg, p, m, k);
        let b = oc_latency_full(&params, &cfg, p + 1, m, k);
        prop_assert!(b >= a - 1e-9, "p={p}: {a} -> {b}");
    }

    /// Throughputs are positive, finite, and OC dominates s-ag for all
    /// plausible parameters scaled around Table 1.
    #[test]
    fn oc_dominates_sag_for_scaled_parameters(scale in 0.5f64..2.0, k in 2usize..48) {
        let t1 = ModelParams::paper();
        let params = ModelParams {
            l_hop: t1.l_hop * scale,
            o_mpb: t1.o_mpb * scale,
            o_mem_w: t1.o_mem_w * scale,
            o_mem_r: t1.o_mem_r * scale,
            o_mpb_put: t1.o_mpb_put * scale,
            o_mpb_get: t1.o_mpb_get * scale,
            o_mem_put: t1.o_mem_put * scale,
            o_mem_get: t1.o_mem_get * scale,
        };
        let cfg = FullModelCfg::default();
        let oc = oc_throughput_full(&params, &cfg, 48, k);
        let sag = sag_throughput_full(&params, &cfg, 48);
        prop_assert!(oc.is_finite() && oc > 0.0);
        prop_assert!(sag.is_finite() && sag > 0.0);
        prop_assert!(oc > sag, "scale {scale}: {oc} <= {sag}");
    }

    /// Parameter fitting recovers scaled ground truths exactly from
    /// noise-free samples (the model is linear in its parameters).
    #[test]
    fn fit_recovers_scaled_parameters(scale in 0.25f64..4.0) {
        let t1 = ModelParams::paper();
        let truth = ModelParams {
            l_hop: t1.l_hop * scale,
            o_mpb: t1.o_mpb * scale,
            o_mem_w: t1.o_mem_w * scale,
            o_mem_r: t1.o_mem_r * scale,
            o_mpb_put: t1.o_mpb_put * scale,
            o_mpb_get: t1.o_mpb_get * scale,
            o_mem_put: t1.o_mem_put * scale,
            o_mem_get: t1.o_mem_get * scale,
        };
        let t = P2p::new(truth);
        let mut s = FitSamples::default();
        for d in 1..=9 {
            s.mpb_read.push((d, t.c_mpb_r(d)));
        }
        for d in 1..=4 {
            s.mem_read.push((d, t.c_mem_r(d)));
            s.mem_write.push((d, t.c_mem_w(d)));
        }
        for m in [1usize, 8] {
            for d in [1u32, 5] {
                s.put_mpb.push((m, d, t.c_put_mpb(m, d)));
                s.get_mpb.push((m, d, t.c_get_mpb(m, d)));
            }
            s.put_mem.push((m, 2, 1, t.c_put_mem(m, 2, 1)));
            s.get_mem.push((m, 1, 2, t.c_get_mem(m, 1, 2)));
        }
        let (fitted, rms) = match fit_params(&s) {
            Ok(v) => v,
            Err(e) => return Err(TestCaseError::fail(format!("fit failed: {e}"))),
        };
        prop_assert!(rms < 1e-9);
        prop_assert!((fitted.l_hop - truth.l_hop).abs() < 1e-9);
        prop_assert!((fitted.o_mpb_get - truth.o_mpb_get).abs() < 1e-9);
        prop_assert!((fitted.o_mem_w - truth.o_mem_w).abs() < 1e-9);
    }

    /// Degenerate fit inputs produce typed errors, never NaN: any
    /// number of samples sharing one x value has zero x-variance, and
    /// fewer than two samples is underdetermined.
    #[test]
    fn degenerate_fits_error_instead_of_nan(
        x in 0.0f64..100.0,
        ys in proptest::collection::vec(0.0f64..1000.0, 2..20),
    ) {
        let samples: Vec<(f64, f64)> = ys.iter().map(|&y| (x, y)).collect();
        prop_assert_eq!(linear_fit(&samples), Err(ModelError::ZeroXVariance));
        prop_assert_eq!(linear_fit(&samples[..1]), Err(ModelError::TooFewSamples { have: 1 }));
        prop_assert_eq!(linear_fit(&[]), Err(ModelError::TooFewSamples { have: 0 }));
    }

    /// Well-separated x values always fit, and the result is finite —
    /// the NaN path is closed for good inputs too.
    #[test]
    fn nondegenerate_fits_are_finite(
        x0 in 0.0f64..10.0,
        dx in 0.5f64..10.0,
        slope in -100.0f64..100.0,
        intercept in -100.0f64..100.0,
    ) {
        let samples: Vec<(f64, f64)> =
            (0..5).map(|i| {
                let x = x0 + i as f64 * dx;
                (x, intercept + slope * x)
            }).collect();
        let f = match linear_fit(&samples) {
            Ok(f) => f,
            Err(e) => return Err(TestCaseError::fail(format!("fit failed: {e}"))),
        };
        prop_assert!(f.slope.is_finite() && f.intercept.is_finite() && f.rms.is_finite());
        prop_assert!((f.slope - slope).abs() < 1e-6, "slope {} != {slope}", f.slope);
        prop_assert!((f.intercept - intercept).abs() < 1e-6);
    }
}
