//! Broadcast-level models: Formulas (13)–(16) of the paper (Figure 7)
//! plus the *complete* models including notification-tree, flag and
//! pipelining costs.
//!
//! The extended abstract only prints simplified critical-path formulas
//! and defers the complete ones to the full version of the paper. We
//! therefore re-derive complete models here from the algorithm
//! description in Section 4 (the derivation is documented on each
//! function); the simplified formulas are kept verbatim for comparison
//! and the tests check that the complete models degrade to them when
//! flag costs are zero.

use crate::p2p::P2p;
use crate::params::ModelParams;

/// Costs of the two flag primitives used by the notification machinery.
#[derive(Clone, Copy, Debug)]
pub struct NotifyCosts {
    /// Completion time of a 1-line flag put to a remote MPB.
    pub flag_put: f64,
    /// Cost of the local poll read that observes a freshly set flag.
    pub poll: f64,
}

impl NotifyCosts {
    /// Derive from the point-to-point model at MPB distance `d`.
    pub fn from_p2p(m: &P2p, d: u32) -> NotifyCosts {
        NotifyCosts { flag_put: m.c_put_mpb(1, d), poll: m.c_mpb_r(1) }
    }

    /// Zero-cost notification (turns the complete models into the
    /// simplified critical-path formulas; used in tests).
    pub fn free() -> NotifyCosts {
        NotifyCosts { flag_put: 0.0, poll: 0.0 }
    }
}

/// Number of levels **below the root** of the k-ary propagation tree for
/// `p` cores (`O(log_k P)` in the paper, computed exactly).
///
/// Ranks form a k-ary heap: children of rank `r` are `kr+1 ..= kr+k`.
/// `tree_depth(48, 7) == 2` (root, 7 children, 40 grandchildren) and
/// `tree_depth(48, 47) == 1` (a star).
pub fn tree_depth(p: usize, k: usize) -> usize {
    assert!(k >= 1, "tree degree must be at least 1");
    if p <= 1 {
        return 0;
    }
    let mut covered = 1usize; // nodes in levels 0..=depth
    let mut level_width = 1usize;
    let mut depth = 0usize;
    while covered < p {
        level_width = level_width.saturating_mul(k);
        covered = covered.saturating_add(level_width);
        depth += 1;
    }
    depth
}

/// Worst-case delay for a notification to reach the last of `children`
/// group members through the binary notification tree (Figure 5).
///
/// The group is laid out as a binary heap with the parent at index 0 and
/// the children at 1..=children. A node forwards to index `2i+1` and
/// then `2i+2` *sequentially* (two flag puts back to back); a child
/// observes the flag one poll read after the put completes.
///
/// The paper chooses a binary tree because "it can be shown analytically
/// that a binary tree provides the lowest notification latency" — the
/// test `binary_tree_is_optimal_fanout` reproduces that claim with this
/// function generalized over the fan-out.
pub fn worst_notify_delay(children: usize, c: &NotifyCosts) -> f64 {
    worst_notify_delay_fanout(children, 2, c)
}

/// Same as [`worst_notify_delay`] but with a configurable notification
/// fan-out `f` (the paper's claim is that `f = 2` is optimal).
pub fn worst_notify_delay_fanout(children: usize, f: usize, c: &NotifyCosts) -> f64 {
    assert!(f >= 1);
    if children == 0 {
        return 0.0;
    }
    // arrival[i]: time the group member at heap index i has observed the
    // notification, relative to the moment the parent starts notifying.
    let mut arrival = vec![0.0f64; children + 1];
    let mut worst = 0.0f64;
    for i in 1..=children {
        let parent = (i - 1) / f;
        let sibling_order = ((i - 1) % f + 1) as f64; // 1st, 2nd, ... put issued by the parent
        arrival[i] = arrival[parent] + sibling_order * c.flag_put + c.poll;
        worst = worst.max(arrival[i]);
    }
    worst
}

// ---------------------------------------------------------------------
// Simplified formulas (Figure 7, verbatim)
// ---------------------------------------------------------------------

/// Formula (13): simplified OC-Bcast latency for a message of `m` cache
/// lines (`m ≤ M_oc`), ignoring notification costs. Distances are 1 as
/// in Section 5.1.
pub fn oc_latency_simplified(params: &ModelParams, p: usize, m: usize, k: usize) -> f64 {
    let t = P2p::new(*params);
    let depth = tree_depth(p, k);
    t.c_put_mem(m, 1, 1) + depth as f64 * t.c_get_mpb(m, 1) + t.c_get_mem(m, 1, 1)
}

/// Formula (14): simplified binomial-tree latency. Each of the
/// `⌈log₂ P⌉` levels forwards the whole message with a put whose source
/// read is approximated as free (the message is hot in L1 after the
/// first reception) followed by a `get` to off-chip memory.
pub fn binomial_latency_simplified(params: &ModelParams, p: usize, m: usize) -> f64 {
    let t = P2p::new(*params);
    let levels = (p as f64).log2().ceil();
    levels * (m as f64 * t.c_mpb_w(1) + t.c_get_mem(m, 1, 1))
}

/// Formula (15): simplified OC-Bcast peak throughput in MB/s (= bytes
/// per microsecond), independent of `k`: the pipeline bottleneck is a
/// non-root node copying each chunk MPB→MPB and then MPB→memory.
pub fn oc_throughput_simplified(params: &ModelParams, m_oc: usize) -> f64 {
    let t = P2p::new(*params);
    let per_chunk = t.c_get_mpb(m_oc, 1) + t.c_get_mem(m_oc, 1, 1);
    (m_oc * 32) as f64 / per_chunk
}

/// Formula (16): simplified scatter-allgather throughput in MB/s for a
/// message of `P · M_oc` cache lines split into `P` slices.
pub fn sag_throughput_simplified(params: &ModelParams, p: usize, m_oc: usize) -> f64 {
    let t = P2p::new(*params);
    let full_pairs = p as f64 * (t.c_put_mem(m_oc, 1, 1) + t.c_get_mem(m_oc, 1, 1));
    let cached_pairs = (2 * p - 3) as f64 * (m_oc as f64 * t.c_mpb_w(1) + t.c_get_mem(m_oc, 1, 1));
    (p * m_oc * 32) as f64 / (full_pairs + cached_pairs)
}

// ---------------------------------------------------------------------
// Complete models
// ---------------------------------------------------------------------

/// Configuration shared by the complete models.
#[derive(Clone, Copy, Debug)]
pub struct FullModelCfg {
    /// Payload chunk size in cache lines (`M_oc = 96`, Section 5.1).
    pub m_oc: usize,
    /// Average MPB-to-MPB distance (the paper uses 1).
    pub d_mpb: u32,
    /// Average core-to-memory-controller distance (the paper uses 1).
    pub d_mem: u32,
}

impl Default for FullModelCfg {
    fn default() -> Self {
        FullModelCfg { m_oc: 96, d_mpb: 1, d_mem: 1 }
    }
}

/// Complete OC-Bcast latency model, including the binary notification
/// tree, done-flag writes, chunking and double buffering.
///
/// Derivation. The message is cut into `n = ⌈m / M_oc⌉` chunks that
/// stream through the tree. For chunk `c` (0-based) define
///
/// * `put[c]`  — completion of the root's put of chunk `c` into its MPB;
/// * `got[l][c]` — worst-case completion, among level-`l` nodes, of the
///   MPB→MPB get of chunk `c`;
/// * `end[l][c]` — completion of the chunk's copy to private memory at
///   level `l` (a node processes chunks strictly sequentially).
///
/// Recurrences (per Section 4.1's step order — forward notify, get to
/// MPB, done flag, notify own children, get to memory):
///
/// ```text
/// put[c]    = max(put[c-1], got[1][c-2] + flag_put) + C_put_mem   (double buffering:
///             the root reuses a buffer once its k children report done for the
///             chunk that previously occupied it)
/// got[l][c] = max(parent_data + N_k, end[l][c-1], got[l+1][c-2] + flag_put)
///             + C_get_mpb
/// end[l][c] = got[l][c] + flag_put_done (+ 2·flag_put if the node notifies
///             its own children) + C_get_mem
/// ```
///
/// where `parent_data` is `put[c]` for level 1 and `got[l-1][c]` below,
/// and `N_k` is [`worst_notify_delay`]. The overall latency is the
/// worst `end[l][n-1]`, plus — for the root — the final polling of its
/// `k` done flags before the call returns.
pub fn oc_latency_full(
    params: &ModelParams,
    cfg: &FullModelCfg,
    p: usize,
    m: usize,
    k: usize,
) -> f64 {
    assert!(m >= 1, "latency of an empty broadcast is undefined");
    assert!(k >= 1);
    let t = P2p::new(*params);
    let nc = NotifyCosts::from_p2p(&t, cfg.d_mpb);
    if p <= 1 {
        // Degenerate broadcast: nothing moves.
        return 0.0;
    }
    let depth = tree_depth(p, k);
    let n = m.div_ceil(cfg.m_oc);
    let size = |c: usize| -> usize {
        if c + 1 == n {
            m - (n - 1) * cfg.m_oc
        } else {
            cfg.m_oc
        }
    };
    let n_k = worst_notify_delay(k.min(p - 1), &nc);

    let mut put = vec![0.0f64; n];
    // got[l][c] for l in 1..=depth
    let mut got = vec![vec![0.0f64; n]; depth + 2]; // +2: sentinel level below leaves
    let mut end = vec![vec![0.0f64; n]; depth + 1];

    for c in 0..n {
        let prev_put = if c > 0 { put[c - 1] } else { 0.0 };
        let buf_free = if c >= 2 { got[1][c - 2] + nc.flag_put } else { 0.0 };
        put[c] = prev_put.max(buf_free) + t.c_put_mem(size(c), cfg.d_mem, cfg.d_mpb);

        for l in 1..=depth {
            let parent_data = if l == 1 { put[c] } else { got[l - 1][c] };
            let node_free = if c > 0 { end[l][c - 1] } else { 0.0 };
            let child_done =
                if c >= 2 && l < depth { got[l + 1][c - 2] + nc.flag_put } else { 0.0 };
            got[l][c] = (parent_data + n_k).max(node_free).max(child_done)
                + t.c_get_mpb(size(c), cfg.d_mpb);
            let own_notify = if l < depth { 2.0 * nc.flag_put } else { 0.0 };
            end[l][c] =
                got[l][c] + nc.flag_put + own_notify + t.c_get_mem(size(c), cfg.d_mpb, cfg.d_mem);
        }
    }

    // Last receiver to finish.
    let worst_receiver = (1..=depth).map(|l| end[l][n - 1]).fold(0.0f64, f64::max);
    // The root returns after all k done flags of the last chunk arrive;
    // it polls them sequentially (the k = 47 effect in Figure 6b).
    let k_eff = k.min(p - 1);
    let root_done = got[1][n - 1] + nc.flag_put + k_eff as f64 * nc.poll;
    worst_receiver.max(root_done)
}

/// Complete binomial-tree latency model, including the two-sided
/// handshake of the RCCE send/receive protocol.
///
/// Each level of the `⌈log₂ P⌉`-deep tree forwards the whole message,
/// chunked by the RCCE payload buffer (`M_rcce = 251` lines). Per chunk
/// the pair performs: receiver sets the sender's *ready* flag, sender
/// polls it, puts the chunk (source read from L1 after first reception,
/// from memory at the root), sets the receiver's *sent* flag, receiver
/// polls and gets the chunk to off-chip memory.
pub fn binomial_latency_full(params: &ModelParams, cfg: &FullModelCfg, p: usize, m: usize) -> f64 {
    assert!(m >= 1);
    if p <= 1 {
        return 0.0;
    }
    let t = P2p::new(*params);
    let nc = NotifyCosts::from_p2p(&t, cfg.d_mpb);
    const M_RCCE: usize = 251;
    let levels = (p as f64).log2().ceil() as usize;
    let mut total = 0.0;
    for level in 0..levels {
        let mut remaining = m;
        while remaining > 0 {
            let chunk = remaining.min(M_RCCE);
            // Sender-side put: level 0 reads from off-chip memory, later
            // levels hit the L1 cache (paper's Section 5.2.2 assumption),
            // modelled as an MPB-sourced put minus the local read.
            let put = if level == 0 {
                t.c_put_mem(chunk, cfg.d_mem, cfg.d_mpb)
            } else {
                params.o_mem_put + chunk as f64 * t.c_mpb_w(cfg.d_mpb)
            };
            let handshake = 2.0 * (nc.flag_put + nc.poll);
            total += handshake + put + t.c_get_mem(chunk, cfg.d_mpb, cfg.d_mem);
            remaining -= chunk;
        }
    }
    total
}

/// Complete OC-Bcast peak throughput in MB/s: the steady-state pipeline
/// rate is set by the slowest per-chunk stage.
///
/// * root: buffer-free wait is off the critical path in steady state, so
///   its stage is `C_put_mem + 2·flag_put` (notify) `+ k·poll`
///   (collecting done flags for the buffer being recycled);
/// * interior node (the usual bottleneck): forward ≤2 notifications,
///   get chunk to MPB, done flag, notify own ≤2 children, get chunk to
///   memory, plus the poll that detected the chunk.
pub fn oc_throughput_full(params: &ModelParams, cfg: &FullModelCfg, p: usize, k: usize) -> f64 {
    let t = P2p::new(*params);
    let nc = NotifyCosts::from_p2p(&t, cfg.d_mpb);
    let k_eff = k.min(p.saturating_sub(1)).max(1);
    let root_stage =
        t.c_put_mem(cfg.m_oc, cfg.d_mem, cfg.d_mpb) + 2.0 * nc.flag_put + k_eff as f64 * nc.poll;
    let node_stage = nc.poll
        + 2.0 * nc.flag_put // forward notifications in the parent's group
        + t.c_get_mpb(cfg.m_oc, cfg.d_mpb)
        + nc.flag_put // done flag
        + 2.0 * nc.flag_put // notify own children
        + t.c_get_mem(cfg.m_oc, cfg.d_mpb, cfg.d_mem);
    (cfg.m_oc * 32) as f64 / root_stage.max(node_stage)
}

/// Complete scatter-allgather throughput in MB/s, adding the per-pair
/// two-sided handshake to Formula (16).
pub fn sag_throughput_full(params: &ModelParams, cfg: &FullModelCfg, p: usize) -> f64 {
    let t = P2p::new(*params);
    let nc = NotifyCosts::from_p2p(&t, cfg.d_mpb);
    let handshake = 2.0 * (nc.flag_put + nc.poll);
    let full_pairs = p as f64
        * (t.c_put_mem(cfg.m_oc, cfg.d_mem, cfg.d_mpb)
            + t.c_get_mem(cfg.m_oc, cfg.d_mpb, cfg.d_mem));
    let cached_pairs = (2 * p - 3) as f64
        * (cfg.m_oc as f64 * t.c_mpb_w(cfg.d_mpb) + t.c_get_mem(cfg.m_oc, cfg.d_mpb, cfg.d_mem));
    let handshakes = (3 * p - 3) as f64 * handshake;
    (p * cfg.m_oc * 32) as f64 / (full_pairs + cached_pairs + handshakes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper() -> ModelParams {
        ModelParams::paper()
    }

    #[test]
    fn depth_matches_figure5_and_section52() {
        // P = 12, k = 7 (Figure 5): root, 7 children, 4 grandchildren.
        assert_eq!(tree_depth(12, 7), 2);
        // P = 48: "the same tree depth is reached already with k = 7"
        // as with larger k in {8..46}; k = 47 gives a star.
        assert_eq!(tree_depth(48, 7), 2);
        assert_eq!(tree_depth(48, 24), 2);
        assert_eq!(tree_depth(48, 47), 1);
        assert_eq!(tree_depth(48, 2), 5);
        assert_eq!(tree_depth(1, 7), 0);
        assert_eq!(tree_depth(2, 7), 1);
        // Chain tree.
        assert_eq!(tree_depth(5, 1), 4);
    }

    #[test]
    fn notify_delay_zero_for_leaf() {
        let nc = NotifyCosts { flag_put: 1.0, poll: 0.1 };
        assert_eq!(worst_notify_delay(0, &nc), 0.0);
    }

    #[test]
    fn notify_delay_grows_logarithmically() {
        let nc = NotifyCosts { flag_put: 1.0, poll: 0.0 };
        // 1 child: one put. 2 children: two sequential puts.
        assert_eq!(worst_notify_delay(1, &nc), 1.0);
        assert_eq!(worst_notify_delay(2, &nc), 2.0);
        // 7 children (Figure 5): worst is index 6 (= second child of
        // index 2, which is the second child of the parent): 2 + 2 = 4.
        assert_eq!(worst_notify_delay(7, &nc), 4.0);
        let d47 = worst_notify_delay(47, &nc);
        assert!(d47 <= 12.0, "binary tree must reach 47 members in O(log) puts, got {d47}");
        assert!(d47 >= 6.0);
    }

    #[test]
    fn binary_tree_is_near_optimal_fanout() {
        // Section 4.1 claims a binary notification tree gives the lowest
        // latency among higher output degrees. Under the literal Table-1
        // costs, ternary heaps occasionally *tie* binary (both schedules
        // bottom out on the same last flag put), so we assert the
        // defensible version: binary is never beaten by more than one
        // poll read, and it decisively beats sequential notification —
        // which is the design point the paper argues against.
        let nc = NotifyCosts::from_p2p(&P2p::new(paper()), 1);
        for children in [7usize, 15, 24, 47] {
            let binary = worst_notify_delay_fanout(children, 2, &nc);
            let best = (2..=children)
                .map(|f| worst_notify_delay_fanout(children, f, &nc))
                .fold(f64::INFINITY, f64::min);
            // Binary is optimal or within ~10% of the best heap shape
            // (ternary edges it out slightly for very large groups such
            // as k = 47, where the paper itself no longer recommends
            // operating).
            assert!(
                binary <= best * 1.10 + 1e-9,
                "binary {binary} too far from best {best} for {children} children"
            );
            let sequential = worst_notify_delay_fanout(children, children, &nc);
            if children > 4 {
                assert!(
                    binary < sequential,
                    "binary {binary} must beat sequential {sequential} for {children} children"
                );
            }
        }
    }

    #[test]
    fn simplified_oc_latency_hand_value() {
        // m = 1, k = 7, P = 48, all distances 1:
        // C_put_mem(1) = 0.19 + 0.218 + 0.136 = 0.544
        // C_get_mpb(1) = 0.33 + 0.136 + 0.136 = 0.602
        // C_get_mem(1) = 0.095 + 0.136 + 0.471 = 0.702
        // depth = 2 ⇒ L = 0.544 + 2·0.602 + 0.702 = 2.45
        let l = oc_latency_simplified(&paper(), 48, 1, 7);
        assert!((l - 2.45).abs() < 1e-9, "got {l}");
    }

    #[test]
    fn table2_throughputs() {
        // Paper Table 2: OC-Bcast ≈ 34.3–35.9 MB/s; scatter-allgather 13.38 MB/s.
        let p = paper();
        let b_oc = oc_throughput_simplified(&p, 96);
        assert!((b_oc - 36.2).abs() < 0.5, "simplified OC throughput: {b_oc}");
        let b_sag = sag_throughput_simplified(&p, 48, 96);
        assert!((b_sag - 13.38).abs() < 0.35, "scatter-allgather throughput: {b_sag}");
        // Complete model lands in the published 34-36 MB/s band.
        for k in [2usize, 7, 47] {
            let b = oc_throughput_full(&p, &FullModelCfg::default(), 48, k);
            assert!((30.0..38.0).contains(&b), "full OC throughput k={k}: {b}");
        }
        // Headline: almost 3x better throughput.
        let ratio = oc_throughput_full(&p, &FullModelCfg::default(), 48, 7)
            / sag_throughput_full(&p, &FullModelCfg::default(), 48);
        assert!(ratio > 2.3 && ratio < 3.6, "throughput ratio: {ratio}");
    }

    #[test]
    fn full_latency_reduces_to_simplified_when_flags_are_free() {
        // We cannot literally zero o_mpb without breaking the payload
        // costs, so compare against the recurrence's own building
        // blocks instead: full >= simplified always, and the difference
        // is bounded by the notification terms.
        let p = paper();
        for (m, k) in [(1usize, 7usize), (50, 2), (96, 47)] {
            let full = oc_latency_full(&p, &FullModelCfg::default(), 48, m, k);
            let simpl = oc_latency_simplified(&p, 48, m, k);
            assert!(full > simpl, "full model must include notification cost");
            let t = P2p::new(p);
            let nc = NotifyCosts::from_p2p(&t, 1);
            let depth = tree_depth(48, k);
            let bound = depth as f64 * (worst_notify_delay(k.min(47), &nc) + 3.0 * nc.flag_put)
                + nc.flag_put
                + 47.0 * nc.poll
                + 3.0 * nc.flag_put;
            assert!(
                full - simpl <= bound + 1e-9,
                "overhead {} exceeds notification bound {bound} (m={m}, k={k})",
                full - simpl
            );
        }
    }

    #[test]
    fn full_latency_monotone_in_message_size() {
        let p = paper();
        let cfg = FullModelCfg::default();
        for k in [2usize, 7, 47] {
            let mut prev = 0.0;
            for m in (1..=400).step_by(7) {
                let l = oc_latency_full(&p, &cfg, 48, m, k);
                assert!(l >= prev, "latency decreased at m={m}, k={k}");
                prev = l;
            }
        }
    }

    #[test]
    fn oc_beats_binomial_and_gap_grows_with_size() {
        // Figure 6: OC-Bcast (k = 7) below the binomial curve, and the
        // difference increases with the message size.
        let p = paper();
        let cfg = FullModelCfg::default();
        let gap_small =
            binomial_latency_full(&p, &cfg, 48, 1) - oc_latency_full(&p, &cfg, 48, 1, 7);
        let gap_large =
            binomial_latency_full(&p, &cfg, 48, 180) - oc_latency_full(&p, &cfg, 48, 180, 7);
        assert!(gap_small > 0.0, "OC-Bcast must win at 1 CL (gap {gap_small})");
        assert!(gap_large > gap_small, "gap must grow with size");
        // Headline: at least 27% latency improvement at 1 cache line.
        let improvement = gap_small / binomial_latency_full(&p, &cfg, 48, 1);
        assert!(improvement >= 0.27, "improvement {improvement} below paper's 27%");
    }

    #[test]
    fn k47_worst_for_tiny_messages_among_oc_variants() {
        // Figure 6b: "OC-Bcast-47 is the slowest for very small message
        // [...] the root has 47 flags to poll".
        let p = paper();
        let cfg = FullModelCfg::default();
        let l2 = oc_latency_full(&p, &cfg, 48, 1, 2);
        let l7 = oc_latency_full(&p, &cfg, 48, 1, 7);
        let l47 = oc_latency_full(&p, &cfg, 48, 1, 47);
        assert!(l47 > l7, "k=47 ({l47}) must be slower than k=7 ({l7}) at 1 CL");
        assert!(l2 > l7, "k=2 ({l2}) must be slower than k=7 ({l7}) at 1 CL: deeper tree");
    }

    #[test]
    fn k7_beats_k2_for_medium_messages() {
        // Section 6.2.1: "for message size between 96 and 192 cache
        // lines, the latency of OC-Bcast with k = 7 is around 25% better
        // than with k = 2".
        let p = paper();
        let cfg = FullModelCfg::default();
        for m in [96usize, 144, 192] {
            let l2 = oc_latency_full(&p, &cfg, 48, m, 2);
            let l7 = oc_latency_full(&p, &cfg, 48, m, 7);
            let gain = (l2 - l7) / l2;
            assert!(gain > 0.10, "k=7 should clearly beat k=2 at {m} CL, gain {gain}");
        }
    }

    #[test]
    fn slope_changes_past_chunk_boundary() {
        // Figure 6a: the latency slope changes for messages larger than
        // M_oc = 96 cache lines (pipelining kicks in: additional chunks
        // cost a pipeline stage, not a full traversal).
        let p = paper();
        let cfg = FullModelCfg::default();
        let l = |m: usize| oc_latency_full(&p, &cfg, 48, m, 7);
        let slope_before = (l(90) - l(60)) / 30.0;
        let slope_after = (l(300) - l(270)) / 30.0;
        assert!(
            slope_after < slope_before,
            "pipelined slope {slope_after} must be flatter than single-chunk slope {slope_before}"
        );
    }

    #[test]
    fn p1_degenerates_to_zero() {
        let p = paper();
        assert_eq!(oc_latency_full(&p, &FullModelCfg::default(), 1, 10, 7), 0.0);
        assert_eq!(binomial_latency_full(&p, &FullModelCfg::default(), 1, 10), 0.0);
    }
}
