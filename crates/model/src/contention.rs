//! An approximate analytical model of MPB contention — the effect the
//! paper measures in Figure 4 but declines to model ("contention does
//! not equally affect all cores, which makes it hard to model",
//! Section 3.3).
//!
//! We model the contended MPB port as the single server of a closed
//! queueing network ("machine repairman"): each of the `N` accessors
//! cycles through a *think* phase of duration `z` (its own per-line
//! core overhead, mesh hops and local write — everything except the
//! contended port) and one service demand `s` at the port. The classic
//! asymptotic bounds give the cycle time
//!
//! ```text
//! cycle(N) ≈ max(z + s, N·s)
//! ```
//!
//! i.e. contention-free below the knee `N* = (z + s)/s` and
//! server-bound beyond it. The smooth "balanced job bounds"
//! interpolation used here tightens the elbow; the simulator's
//! measured curve sits between the bounds (test
//! `closed_queueing_model_matches_simulator` in the sim cross-checks).
//!
//! This is deliberately a *bound-level* model: it predicts the knee
//! position and the asymptotic slope — the two facts the paper's
//! design rule (`k ≤ 24`) rests on — without pretending to capture the
//! hardware's non-deterministic per-core spread.

/// Parameters of one contended-resource scenario.
///
/// ```
/// use scc_model::ClosedQueue;
/// // Figure 4a: 128-line gets against one MPB.
/// let q = ClosedQueue::get_scenario(128, 9.0, 0.010, 0.126, 0.005);
/// assert!(q.knee() > 24.0);                       // no contention up to 24 accessors
/// let solo = q.cycle_estimate_us(1);
/// assert!(q.cycle_estimate_us(47) > 1.25 * solo); // clear contention at 47
/// ```
#[derive(Clone, Copy, Debug)]
pub struct ClosedQueue {
    /// Think time per cycle (µs): everything except the contended port.
    pub think_us: f64,
    /// Port service demand per cycle (µs).
    pub service_us: f64,
}

impl ClosedQueue {
    /// The Figure 4a scenario: `m`-line gets against one MPB, with the
    /// requester's per-line cycle decomposed from Table-1-level
    /// parameters (see `scc-sim`'s `SimParams` docs). `d` is the
    /// average requester distance.
    pub fn get_scenario(
        m: usize,
        d: f64,
        port_service_us: f64,
        o_mpb_us: f64,
        l_hop_us: f64,
    ) -> ClosedQueue {
        // Per line: remote read (o^mpb + 2d·Lhop) + local write
        // (o^mpb + 2·Lhop); the contended port's share is `service`.
        let per_line = (o_mpb_us + 2.0 * d * l_hop_us) + (o_mpb_us + 2.0 * l_hop_us);
        ClosedQueue {
            think_us: m as f64 * (per_line - port_service_us),
            service_us: m as f64 * port_service_us,
        }
    }

    /// Contention-free cycle time (one accessor).
    pub fn solo_cycle_us(&self) -> f64 {
        self.think_us + self.service_us
    }

    /// The knee: the accessor count where the port saturates.
    pub fn knee(&self) -> f64 {
        self.solo_cycle_us() / self.service_us
    }

    /// Lower/upper *bounds* on the mean cycle time with `n` accessors
    /// (asymptotic bounds of the closed queueing network).
    pub fn cycle_bounds_us(&self, n: usize) -> (f64, f64) {
        let n = n as f64;
        let lower = self.solo_cycle_us().max(n * self.service_us);
        // Upper bound: everyone queues behind everyone (n-1 waits).
        let upper = self.think_us + n * self.service_us;
        (lower, upper)
    }

    /// Point estimate: the asymptotic lower bound plus a small
    /// knee-localized correction. Deterministic (fixed-service) servers
    /// track the lower bound closely — queueing noise only rounds the
    /// elbow — which is exactly what the simulator's FIFO port shows;
    /// the 8% blend was calibrated against it and validated in the
    /// cross-check test `closed_queueing_model_matches_simulator`.
    pub fn cycle_estimate_us(&self, n: usize) -> f64 {
        let (lo, hi) = self.cycle_bounds_us(n);
        let x = n as f64 / self.knee();
        let w = x.powi(4) / (1.0 + x.powi(4));
        lo + w * (hi - lo) * 0.08
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig4a() -> ClosedQueue {
        // 128-line gets. The simulator's Figure-4 accessors are the
        // highest-numbered cores (the single-accessor baseline is core
        // 47 at distance 9); port service is 0.010 µs of the 0.126 µs
        // o^mpb (simulator decomposition).
        ClosedQueue::get_scenario(128, 9.0, 0.010, 0.126, 0.005)
    }

    #[test]
    fn solo_cycle_matches_the_measured_baseline() {
        // Figure 4a measures ~45 µs for one accessor.
        let q = fig4a();
        assert!((q.solo_cycle_us() - 45.0).abs() < 2.0, "{}", q.solo_cycle_us());
    }

    #[test]
    fn knee_sits_in_the_papers_band() {
        // "up to 24 cores accessing the same MPB do not create any
        // measurable contention" — and contention is clear at 48.
        let q = fig4a();
        assert!(q.knee() > 24.0 && q.knee() < 48.0, "knee {}", q.knee());
    }

    #[test]
    fn bounds_bracket_and_estimate_is_monotone() {
        let q = fig4a();
        let mut prev = 0.0;
        for n in [1usize, 2, 8, 16, 24, 32, 40, 47] {
            let (lo, hi) = q.cycle_bounds_us(n);
            let est = q.cycle_estimate_us(n);
            assert!(lo <= hi);
            assert!(est >= lo - 1e-9 && est <= hi + 1e-9, "n={n}: {lo} {est} {hi}");
            assert!(est >= prev, "estimate must be monotone in n");
            prev = est;
        }
        // Flat region then growth: 24 accessors within 10% of solo, 47
        // clearly above.
        assert!(q.cycle_estimate_us(24) < 1.10 * q.solo_cycle_us());
        assert!(q.cycle_estimate_us(47) > 1.25 * q.solo_cycle_us());
    }

    #[test]
    fn put_scenario_knee_is_earlier_per_service_share() {
        // Puts pay a larger port share (write service 0.018 µs of the
        // 0.126): knee around 24-32 — Figure 4b's earlier onset.
        let q = ClosedQueue {
            think_us: 0.069 + (0.126 + 2.0 * 0.005) + (0.126 + 2.0 * 4.6 * 0.005) - 0.018,
            service_us: 0.018,
        };
        assert!(q.knee() > 20.0 && q.knee() < 35.0, "knee {}", q.knee());
    }
}
