//! # scc-model — the paper's LogP-based analytical model
//!
//! Implements Sections 3 and 5 of *"High-Performance RMA-Based Broadcast
//! on the Intel SCC"* (Petrović et al., SPAA 2012):
//!
//! * [`params`] — the eight model parameters of Table 1;
//! * [`p2p`] — Formulas (1)–(12): latency and completion time of MPB and
//!   off-chip read/write and of the `put`/`get` primitives;
//! * [`bcast`] — Formulas (13)–(16): simplified critical-path latency
//!   and throughput of OC-Bcast, the binomial tree and scatter-allgather,
//!   plus the *complete* models (with notification-tree and flag costs)
//!   that the extended abstract delegates to the full version;
//! * [`contention`] — a closed-queueing bound model of MPB contention
//!   (the effect Figure 4 measures and Section 3.3 calls hard to model);
//! * [`fit`] — least-squares extraction of Table-1 parameters from
//!   microbenchmark samples (used to close the model ↔ simulator loop);
//! * [`series`] — data series for Figure 6 and Table 2;
//! * [`predict`] — a unified [`Predictor`] facade the `observatory`
//!   harness uses to pair every simulator measurement with the model's
//!   prediction for the same point;
//! * [`error`] — typed [`ModelError`]s for the fallible entry points
//!   (degenerate fits, empty sweeps).
//!
//! All times are `f64` microseconds, matching the paper's presentation;
//! conversion helpers to [`scc_hal::Time`] are provided.

pub mod bcast;
pub mod contention;
pub mod error;
pub mod fit;
pub mod p2p;
pub mod params;
pub mod predict;
pub mod series;

pub use bcast::{
    binomial_latency_full, binomial_latency_simplified, oc_latency_full, oc_latency_simplified,
    oc_throughput_full, oc_throughput_simplified, sag_throughput_full, sag_throughput_simplified,
    tree_depth, worst_notify_delay, NotifyCosts,
};
pub use contention::ClosedQueue;
pub use error::ModelError;
pub use fit::{fit_params, FitSamples, LinearFit};
pub use p2p::P2p;
pub use params::ModelParams;
pub use predict::{Predictor, RmaOp};
