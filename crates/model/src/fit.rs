//! Extraction of Table-1 parameters from microbenchmark measurements.
//!
//! The paper validates its model by fitting the eight parameters to
//! `put`/`get` timings (Section 3.2, Figure 3, Table 1). We reproduce
//! that step: the `table1` binary in `scc-bench` runs the same
//! microbenchmarks on the simulator and feeds the samples to
//! [`fit_params`], which recovers the parameters by ordinary least
//! squares on the model's (linear!) structure:
//!
//! * `C^mpb_r(d) = o^mpb + 2·Lhop·d` — a line in `d`;
//! * `C^mem_r(d)`, `C^mem_w(d)` — lines in `d`;
//! * `C_put/get(m, d)` — once the primitives above are known, the op
//!   overheads `o_put`/`o_get` are the mean residual.

use crate::error::ModelError;
use crate::params::ModelParams;

/// Simple ordinary-least-squares fit of `y = intercept + slope·x`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinearFit {
    pub intercept: f64,
    pub slope: f64,
    /// Root-mean-square residual of the fit, for quality reporting.
    pub rms: f64,
}

/// Fit a straight line through `(x, y)` samples.
///
/// Degenerate inputs — fewer than two samples, or zero x-variance (all
/// x coincide, so the slope is underdetermined and naive division would
/// produce NaN) — return a typed error instead.
pub fn linear_fit(samples: &[(f64, f64)]) -> Result<LinearFit, ModelError> {
    if samples.len() < 2 {
        return Err(ModelError::TooFewSamples { have: samples.len() });
    }
    let n = samples.len() as f64;
    let sx: f64 = samples.iter().map(|s| s.0).sum();
    let sy: f64 = samples.iter().map(|s| s.1).sum();
    let sxx: f64 = samples.iter().map(|s| s.0 * s.0).sum();
    let sxy: f64 = samples.iter().map(|s| s.0 * s.1).sum();
    let det = n * sxx - sx * sx;
    // Relative threshold: with identical x values the two products agree
    // to within a few ulps but rarely cancel exactly, so compare against
    // the magnitude of the terms rather than an absolute epsilon.
    if det.abs() <= 1e-9 * n * sxx {
        return Err(ModelError::ZeroXVariance);
    }
    let slope = (n * sxy - sx * sy) / det;
    let intercept = (sy - slope * sx) / n;
    let rms = (samples
        .iter()
        .map(|&(x, y)| {
            let e = y - (intercept + slope * x);
            e * e
        })
        .sum::<f64>()
        / n)
        .sqrt();
    Ok(LinearFit { intercept, slope, rms })
}

/// Microbenchmark samples used to recover the model parameters.
///
/// Completion times in microseconds.
#[derive(Clone, Debug, Default)]
pub struct FitSamples {
    /// `(d, C)` — 1-line MPB read (remote) at distance `d`.
    pub mpb_read: Vec<(u32, f64)>,
    /// `(d, C)` — 1-line off-chip read at controller distance `d`.
    pub mem_read: Vec<(u32, f64)>,
    /// `(d, C)` — 1-line off-chip write at controller distance `d`.
    pub mem_write: Vec<(u32, f64)>,
    /// `(m, d_dst, C)` — MPB→MPB put completions.
    pub put_mpb: Vec<(usize, u32, f64)>,
    /// `(m, d_src, C)` — MPB→MPB get completions.
    pub get_mpb: Vec<(usize, u32, f64)>,
    /// `(m, d_src, d_dst, C)` — memory→MPB put completions.
    pub put_mem: Vec<(usize, u32, u32, f64)>,
    /// `(m, d_src, d_dst, C)` — MPB→memory get completions.
    pub get_mem: Vec<(usize, u32, u32, f64)>,
}

/// Recover a full [`ModelParams`] from microbenchmark samples.
///
/// Returns the fitted parameters plus the worst RMS residual across the
/// primitive fits, so callers can report fit quality like the paper's
/// "our model precisely estimates the communication performance".
/// Errors if any sample category is too small or degenerate to fit.
pub fn fit_params(s: &FitSamples) -> Result<(ModelParams, f64), ModelError> {
    // C^mpb_r(d) = o_mpb + 2 Lhop d
    let r = linear_fit(&to_f64(&s.mpb_read))?;
    let l_hop = r.slope / 2.0;
    let o_mpb = r.intercept;

    // C^mem_r/w(d) = o_mem_{r,w} + 2 Lhop d — reuse the mesh slope; fit
    // only the intercept (mean of y - 2 Lhop d), like the paper which
    // uses a single Lhop for all operations.
    let o_mem_r = mean_intercept(&to_f64(&s.mem_read), 2.0 * l_hop, "mem_read")?;
    let o_mem_w = mean_intercept(&to_f64(&s.mem_write), 2.0 * l_hop, "mem_write")?;

    let c_mpb_r = |d: u32| o_mpb + 2.0 * l_hop * d as f64;
    let c_mpb_w = |d: u32| o_mpb + 2.0 * l_hop * d as f64;
    let c_mem_r = |d: u32| o_mem_r + 2.0 * l_hop * d as f64;
    let c_mem_w = |d: u32| o_mem_w + 2.0 * l_hop * d as f64;

    // Op overheads: mean residual over the op samples.
    let o_mpb_put = mean(
        s.put_mpb.iter().map(|&(m, d, c)| c - m as f64 * (c_mpb_r(1) + c_mpb_w(d))),
        "put_mpb",
    )?;
    let o_mpb_get = mean(
        s.get_mpb.iter().map(|&(m, d, c)| c - m as f64 * (c_mpb_r(d) + c_mpb_w(1))),
        "get_mpb",
    )?;
    let o_mem_put = mean(
        s.put_mem.iter().map(|&(m, ds, dd, c)| c - m as f64 * (c_mem_r(ds) + c_mpb_w(dd))),
        "put_mem",
    )?;
    let o_mem_get = mean(
        s.get_mem.iter().map(|&(m, ds, dd, c)| c - m as f64 * (c_mpb_r(ds) + c_mem_w(dd))),
        "get_mem",
    )?;

    let params =
        ModelParams { l_hop, o_mpb, o_mem_w, o_mem_r, o_mpb_put, o_mpb_get, o_mem_put, o_mem_get };
    Ok((params, r.rms))
}

fn to_f64(v: &[(u32, f64)]) -> Vec<(f64, f64)> {
    v.iter().map(|&(d, c)| (d as f64, c)).collect()
}

fn mean_intercept(
    samples: &[(f64, f64)],
    slope: f64,
    what: &'static str,
) -> Result<f64, ModelError> {
    mean(samples.iter().map(|&(x, y)| y - slope * x), what)
}

fn mean(it: impl Iterator<Item = f64>, what: &'static str) -> Result<f64, ModelError> {
    let mut n = 0usize;
    let mut sum = 0.0;
    for v in it {
        sum += v;
        n += 1;
    }
    if n == 0 {
        return Err(ModelError::NoSamples { what });
    }
    Ok(sum / n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::p2p::P2p;

    #[test]
    fn linear_fit_exact_line() {
        let f = linear_fit(&[(1.0, 3.0), (2.0, 5.0), (3.0, 7.0)]).unwrap();
        assert!((f.slope - 2.0).abs() < 1e-12);
        assert!((f.intercept - 1.0).abs() < 1e-12);
        assert!(f.rms < 1e-12);
    }

    #[test]
    fn linear_fit_noisy_line() {
        let f = linear_fit(&[(0.0, 0.1), (1.0, 0.9), (2.0, 2.1), (3.0, 2.9)]).unwrap();
        assert!((f.slope - 0.98).abs() < 0.1);
        assert!(f.rms < 0.2);
    }

    #[test]
    fn degenerate_fits_yield_typed_errors() {
        // Identical x values: the slope divides by zero variance.
        assert_eq!(linear_fit(&[(1.0, 1.0), (1.0, 2.0)]), Err(ModelError::ZeroXVariance));
        // Too few samples.
        assert_eq!(linear_fit(&[]), Err(ModelError::TooFewSamples { have: 0 }));
        assert_eq!(linear_fit(&[(1.0, 1.0)]), Err(ModelError::TooFewSamples { have: 1 }));
        // The whole-parameter fit propagates: empty sample sets error
        // instead of asserting.
        assert_eq!(fit_params(&FitSamples::default()), Err(ModelError::TooFewSamples { have: 0 }));
        let mut s = FitSamples::default();
        for d in 1..=9 {
            s.mpb_read.push((d, P2p::new(ModelParams::paper()).c_mpb_r(d)));
            s.mem_read.push((d.min(4), 0.3));
            s.mem_write.push((d.min(4), 0.5));
        }
        // All primitive categories filled, op categories still empty.
        assert_eq!(fit_params(&s), Err(ModelError::NoSamples { what: "put_mpb" }));
    }

    /// Generating samples from the paper parameters and fitting must
    /// recover them exactly (the model is linear, so zero noise ⇒ zero
    /// error). This is the round-trip the table1 experiment relies on.
    #[test]
    fn round_trip_recovers_table1() {
        let truth = ModelParams::paper();
        let t = P2p::new(truth);
        let mut s = FitSamples::default();
        for d in 1..=9 {
            s.mpb_read.push((d, t.c_mpb_r(d)));
        }
        for d in 1..=4 {
            s.mem_read.push((d, t.c_mem_r(d)));
            s.mem_write.push((d, t.c_mem_w(d)));
        }
        for m in [1usize, 4, 8, 16] {
            for d in [1u32, 3, 5, 9] {
                s.put_mpb.push((m, d, t.c_put_mpb(m, d)));
                s.get_mpb.push((m, d, t.c_get_mpb(m, d)));
            }
            for d in [1u32, 2, 4] {
                s.put_mem.push((m, d, d, t.c_put_mem(m, d, d)));
                s.get_mem.push((m, d, d, t.c_get_mem(m, d, d)));
            }
        }
        let (fitted, rms) = fit_params(&s).unwrap();
        assert!(rms < 1e-9);
        for (a, b, name) in [
            (fitted.l_hop, truth.l_hop, "l_hop"),
            (fitted.o_mpb, truth.o_mpb, "o_mpb"),
            (fitted.o_mem_r, truth.o_mem_r, "o_mem_r"),
            (fitted.o_mem_w, truth.o_mem_w, "o_mem_w"),
            (fitted.o_mpb_put, truth.o_mpb_put, "o_mpb_put"),
            (fitted.o_mpb_get, truth.o_mpb_get, "o_mpb_get"),
            (fitted.o_mem_put, truth.o_mem_put, "o_mem_put"),
            (fitted.o_mem_get, truth.o_mem_get, "o_mem_get"),
        ] {
            assert!((a - b).abs() < 1e-9, "{name}: fitted {a}, truth {b}");
        }
        assert!(fitted.is_plausible());
    }
}
