//! One front door to the model for experiment harnesses.
//!
//! The `observatory` harness in `scc-bench` pairs every simulator
//! measurement with the analytical model's prediction for the same
//! point; [`Predictor`] collects those predictions behind a single
//! value so the harness does not assemble `P2p`/`FullModelCfg`/
//! `ClosedQueue` piecemeal (and so the pairing logic has one obvious
//! place to live).
//!
//! Operations are named by the model-side [`RmaOp`] — the model crate
//! sits below the simulator, so it cannot use `scc_sim::P2pKind`;
//! harnesses map between the two one-to-one.

use crate::bcast::{
    binomial_latency_full, oc_latency_full, oc_throughput_full, sag_throughput_full, FullModelCfg,
};
use crate::contention::ClosedQueue;
use crate::error::ModelError;
use crate::p2p::P2p;
use crate::params::ModelParams;
use crate::series;

/// The four timed RMA primitives of Figure 2, model-side.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RmaOp {
    /// `put` local MPB → remote MPB (Formula 7).
    PutMpb,
    /// `get` remote MPB → local MPB (Formula 11).
    GetMpb,
    /// `put` private memory → remote MPB (Formula 8).
    PutMem,
    /// `get` remote MPB → private memory (Formula 12).
    GetMem,
}

impl RmaOp {
    pub const ALL: [RmaOp; 4] = [RmaOp::PutMpb, RmaOp::GetMpb, RmaOp::PutMem, RmaOp::GetMem];

    pub fn short(self) -> &'static str {
        match self {
            RmaOp::PutMpb => "put_mpb",
            RmaOp::GetMpb => "get_mpb",
            RmaOp::PutMem => "put_mem",
            RmaOp::GetMem => "get_mem",
        }
    }
}

/// Model predictions bound to one parameter set.
#[derive(Clone, Copy, Debug)]
pub struct Predictor {
    params: ModelParams,
    cfg: FullModelCfg,
}

impl Predictor {
    /// Predictions from the paper's Table-1 parameters — what every
    /// experiment compares the simulator against by default.
    pub fn paper() -> Predictor {
        Predictor::with_params(ModelParams::paper())
    }

    /// Predictions from custom (e.g. freshly fitted) parameters.
    pub fn with_params(params: ModelParams) -> Predictor {
        Predictor { params, cfg: FullModelCfg::default() }
    }

    pub fn params(&self) -> &ModelParams {
        &self.params
    }

    fn p2p(&self) -> P2p {
        P2p::new(self.params)
    }

    /// Completion time (µs) of one RMA primitive of `lines` cache
    /// lines. `d_src`/`d_dst` are router distances; MPB-local ends
    /// (the caller's own buffer) are distance 1 per the paper and the
    /// unused distance of the pure-MPB ops is ignored.
    pub fn p2p_completion_us(&self, op: RmaOp, lines: usize, d_src: u32, d_dst: u32) -> f64 {
        let m = self.p2p();
        match op {
            RmaOp::PutMpb => m.c_put_mpb(lines, d_dst),
            RmaOp::GetMpb => m.c_get_mpb(lines, d_src),
            RmaOp::PutMem => m.c_put_mem(lines, d_src, d_dst),
            RmaOp::GetMem => m.c_get_mem(lines, d_src, d_dst),
        }
    }

    /// Full-model OC-Bcast latency (µs) at `p` cores, `lines` cache
    /// lines, tree degree `k`.
    pub fn oc_latency_us(&self, p: usize, lines: usize, k: usize) -> f64 {
        oc_latency_full(&self.params, &self.cfg, p, lines, k)
    }

    /// Full-model binomial-tree latency (µs).
    pub fn binomial_latency_us(&self, p: usize, lines: usize) -> f64 {
        binomial_latency_full(&self.params, &self.cfg, p, lines)
    }

    /// Full-model OC-Bcast peak throughput (MB/s).
    pub fn oc_peak_throughput_mb_s(&self, p: usize, k: usize) -> f64 {
        oc_throughput_full(&self.params, &self.cfg, p, k)
    }

    /// Full-model scatter-allgather peak throughput (MB/s).
    pub fn sag_peak_throughput_mb_s(&self, p: usize) -> f64 {
        sag_throughput_full(&self.params, &self.cfg, p)
    }

    /// Latency-optimal tree degree for `(p, lines)`.
    pub fn best_k(&self, p: usize, lines: usize) -> Result<(usize, f64), ModelError> {
        series::best_k(&self.params, &self.cfg, p, lines)
    }

    /// Closed-queue estimate of the mean per-accessor cycle (µs) when
    /// `n` cores issue `lines`-line gets against one MPB at mean
    /// distance `d` — the Figure 4a scenario. `port_service_us` is the
    /// port's share of the per-line overhead (the simulator's
    /// decomposition of `o_mpb`).
    pub fn contended_get_cycle_us(
        &self,
        lines: usize,
        n: usize,
        d: f64,
        port_service_us: f64,
    ) -> f64 {
        ClosedQueue::get_scenario(lines, d, port_service_us, self.params.o_mpb, self.params.l_hop)
            .cycle_estimate_us(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p2p_predictions_match_the_formulas() {
        let pr = Predictor::paper();
        let m = P2p::new(ModelParams::paper());
        assert_eq!(pr.p2p_completion_us(RmaOp::GetMpb, 4, 5, 1), m.c_get_mpb(4, 5));
        assert_eq!(pr.p2p_completion_us(RmaOp::PutMpb, 4, 1, 5), m.c_put_mpb(4, 5));
        assert_eq!(pr.p2p_completion_us(RmaOp::GetMem, 96, 1, 2), m.c_get_mem(96, 1, 2));
        assert_eq!(pr.p2p_completion_us(RmaOp::PutMem, 96, 2, 1), m.c_put_mem(96, 2, 1));
    }

    #[test]
    fn bcast_predictions_are_consistent_with_series() {
        let pr = Predictor::paper();
        let rows = series::table2_rows(pr.params(), &FullModelCfg::default(), 48, &[7]).unwrap();
        assert_eq!(rows[0].1, pr.oc_peak_throughput_mb_s(48, 7));
        assert_eq!(rows[1].1, pr.sag_peak_throughput_mb_s(48));
        assert!(pr.oc_latency_us(48, 96, 7) > pr.oc_latency_us(48, 1, 7));
        assert!(pr.binomial_latency_us(48, 1) > pr.oc_latency_us(48, 1, 7));
        assert_eq!(
            pr.best_k(48, 1).unwrap(),
            series::best_k(pr.params(), &FullModelCfg::default(), 48, 1).unwrap()
        );
    }

    #[test]
    fn contention_estimate_has_the_figure4_knee() {
        let pr = Predictor::paper();
        let solo = pr.contended_get_cycle_us(128, 1, 9.0, 0.010);
        assert!(pr.contended_get_cycle_us(128, 24, 9.0, 0.010) < 1.10 * solo);
        assert!(pr.contended_get_cycle_us(128, 47, 9.0, 0.010) > 1.25 * solo);
    }

    #[test]
    fn op_names_are_distinct() {
        let mut names: Vec<_> = RmaOp::ALL.iter().map(|o| o.short()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 4);
    }
}
