//! Ready-made data series for the analytical figures and tables of the
//! paper (consumed by the `fig6` / `table2` binaries in `scc-bench` and
//! by the `tune_k` example).

use crate::bcast::{
    binomial_latency_full, oc_latency_full, oc_throughput_full, sag_throughput_full, tree_depth,
    FullModelCfg,
};
use crate::error::ModelError;
use crate::params::ModelParams;

/// One analytical latency curve: `(message size in cache lines, µs)`.
#[derive(Clone, Debug, PartialEq)]
pub struct LatencyCurve {
    pub label: String,
    pub points: Vec<(usize, f64)>,
}

/// Figure 6: modeled broadcast latency vs message size for OC-Bcast with
/// each `k` in `ks`, plus the binomial tree, at `P` cores.
///
/// Errors on an empty size sweep or fewer than two cores; an empty `ks`
/// is allowed (the binomial curve alone remains).
pub fn fig6_curves(
    params: &ModelParams,
    cfg: &FullModelCfg,
    p: usize,
    ks: &[usize],
    sizes: &[usize],
) -> Result<Vec<LatencyCurve>, ModelError> {
    if sizes.is_empty() {
        return Err(ModelError::EmptySizeSweep);
    }
    if p < 2 {
        return Err(ModelError::TooFewCores { p });
    }
    let mut out = Vec::with_capacity(ks.len() + 1);
    for &k in ks {
        out.push(LatencyCurve {
            label: format!("k={k}"),
            points: sizes.iter().map(|&m| (m, oc_latency_full(params, cfg, p, m, k))).collect(),
        });
    }
    out.push(LatencyCurve {
        label: "binomial".to_string(),
        points: sizes.iter().map(|&m| (m, binomial_latency_full(params, cfg, p, m))).collect(),
    });
    Ok(out)
}

/// Table 2: modeled peak throughput (MB/s) for OC-Bcast with each `k`
/// plus scatter-allgather.
///
/// Errors on an empty degree sweep or fewer than two cores (the
/// scatter-allgather row alone would silently misrepresent the table).
pub fn table2_rows(
    params: &ModelParams,
    cfg: &FullModelCfg,
    p: usize,
    ks: &[usize],
) -> Result<Vec<(String, f64)>, ModelError> {
    if ks.is_empty() {
        return Err(ModelError::EmptyDegreeSweep);
    }
    if p < 2 {
        return Err(ModelError::TooFewCores { p });
    }
    let mut rows: Vec<(String, f64)> = ks
        .iter()
        .map(|&k| (format!("OC-Bcast, k={k}"), oc_throughput_full(params, cfg, p, k)))
        .collect();
    rows.push(("scatter-allgather".to_string(), sag_throughput_full(params, cfg, p)));
    Ok(rows)
}

/// Pick the tree degree `k` minimizing the modeled latency for a given
/// core count and message size — the paper's "best trade-off" analysis
/// (it selects k = 7 for P = 48), applicable to hypothetical larger
/// chips (`tune_k` example). Errors on fewer than two cores.
pub fn best_k(
    params: &ModelParams,
    cfg: &FullModelCfg,
    p: usize,
    m: usize,
) -> Result<(usize, f64), ModelError> {
    if p < 2 {
        return Err(ModelError::TooFewCores { p });
    }
    let mut best = (2usize, f64::INFINITY);
    for k in 2..p {
        let l = oc_latency_full(params, cfg, p, m, k);
        if l < best.1 {
            best = (k, l);
        }
        // Beyond the star there is nothing new.
        if tree_depth(p, k) == 1 {
            break;
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_has_all_curves_and_sane_ordering() {
        let sizes: Vec<usize> = (1..=180).step_by(10).collect();
        let curves =
            fig6_curves(&ModelParams::paper(), &FullModelCfg::default(), 48, &[2, 7, 47], &sizes)
                .unwrap();
        assert_eq!(curves.len(), 4);
        assert_eq!(curves[3].label, "binomial");
        // The binomial curve dominates OC k=7 everywhere (Figure 6a).
        let k7 = &curves[1];
        let binom = &curves[3];
        for (a, b) in k7.points.iter().zip(&binom.points) {
            assert!(a.1 < b.1, "OC-Bcast k=7 must stay below binomial at {} CL", a.0);
        }
    }

    #[test]
    fn degenerate_sweeps_yield_typed_errors() {
        let p = ModelParams::paper();
        let cfg = FullModelCfg::default();
        // The empty size sweep used to panic on `rows.last().unwrap()`
        // downstream; now it is a typed, recoverable error.
        assert_eq!(fig6_curves(&p, &cfg, 48, &[2, 7], &[]), Err(ModelError::EmptySizeSweep));
        assert_eq!(table2_rows(&p, &cfg, 48, &[]), Err(ModelError::EmptyDegreeSweep));
        assert_eq!(fig6_curves(&p, &cfg, 1, &[2], &[4]), Err(ModelError::TooFewCores { p: 1 }));
        assert_eq!(table2_rows(&p, &cfg, 0, &[2]), Err(ModelError::TooFewCores { p: 0 }));
        assert_eq!(best_k(&p, &cfg, 1, 4), Err(ModelError::TooFewCores { p: 1 }));
        // Errors render as readable messages.
        assert_eq!(ModelError::EmptySizeSweep.to_string(), "empty message-size sweep");
    }

    #[test]
    fn table2_shape() {
        let rows =
            table2_rows(&ModelParams::paper(), &FullModelCfg::default(), 48, &[2, 7, 47]).unwrap();
        assert_eq!(rows.len(), 4);
        let sag = rows.last().unwrap().1;
        for (label, v) in &rows[..3] {
            assert!(
                v / sag > 2.3,
                "{label}: expected ~3x over scatter-allgather, got {}x",
                v / sag
            );
        }
    }

    #[test]
    fn best_k_for_tiny_messages_is_moderate() {
        // For 1-cache-line messages the root's k sequential done-flag
        // polls penalize the star (Figure 6b: "OC-Bcast-47 is the
        // slowest for very small message"), so the pure-latency optimum
        // sits between the chain and the star. For larger messages the
        // contention-free model favours large k (Figure 6a shows k = 47
        // lowest past ~30 CL) — the paper picks k = 7 as a trade-off
        // *including* the MPB-contention effects the model omits.
        let (k, _) = best_k(&ModelParams::paper(), &FullModelCfg::default(), 48, 1).unwrap();
        assert!((3..=24).contains(&k), "optimal k = {k} out of plausible band");
    }

    #[test]
    fn more_cores_never_reduce_best_latency() {
        let cfg = FullModelCfg::default();
        let p = ModelParams::paper();
        let (_, l48) = best_k(&p, &cfg, 48, 12).unwrap();
        let (k1024, l1024) = best_k(&p, &cfg, 1024, 12).unwrap();
        assert!(l1024 >= l48, "1024 cores cannot be faster than 48");
        // Even at 1024 cores a well-chosen k keeps the tree shallow.
        assert!(crate::bcast::tree_depth(1024, k1024) <= 5);
    }
}
