//! The eight parameters of the communication model (Table 1 of the
//! paper), in microseconds.
//!
//! The LogP model is adapted to the SCC in three ways (Section 3.1):
//! latency becomes a function of the router distance `d` (`Lhop` per
//! router), message size is counted in 32-byte cache lines, and the gap
//! parameter `g` disappears because a P54C core performs one memory
//! transaction at a time — transferring `m` lines costs `m` times one
//! line.

use scc_hal::Time;

/// Model parameters, Table 1. All values in microseconds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ModelParams {
    /// Time for one packet to traverse one router (`L_hop`).
    pub l_hop: f64,
    /// Core overhead of reading or writing one cache line on an MPB (`o^mpb`).
    pub o_mpb: f64,
    /// Overhead of writing one cache line to off-chip memory (`o^mem_w`),
    /// including the memory-controller time (Section 3.1.2).
    pub o_mem_w: f64,
    /// Overhead of reading one cache line from off-chip memory (`o^mem_r`).
    pub o_mem_r: f64,
    /// Fixed software overhead of a `put` between MPBs (`o^mpb_put`).
    pub o_mpb_put: f64,
    /// Fixed software overhead of a `get` between MPBs (`o^mpb_get`).
    pub o_mpb_get: f64,
    /// Fixed software overhead of a `put` whose source is off-chip memory.
    pub o_mem_put: f64,
    /// Fixed software overhead of a `get` whose destination is off-chip memory.
    pub o_mem_get: f64,
}

impl Default for ModelParams {
    /// The values measured on the SCC by the authors (Table 1).
    fn default() -> Self {
        ModelParams {
            l_hop: 0.005,
            o_mpb: 0.126,
            o_mem_w: 0.461,
            o_mem_r: 0.208,
            o_mpb_put: 0.069,
            o_mpb_get: 0.33,
            o_mem_put: 0.19,
            o_mem_get: 0.095,
        }
    }
}

impl ModelParams {
    /// Table 1 as published.
    pub fn paper() -> Self {
        Self::default()
    }

    /// Sanity predicate used by tests and by [`crate::fit`]: every
    /// parameter must be positive and finite.
    pub fn is_plausible(&self) -> bool {
        [
            self.l_hop,
            self.o_mpb,
            self.o_mem_w,
            self.o_mem_r,
            self.o_mpb_put,
            self.o_mpb_get,
            self.o_mem_put,
            self.o_mem_get,
        ]
        .iter()
        .all(|v| v.is_finite() && *v > 0.0)
    }

    /// Convert a model time in microseconds into the `Time` unit used by
    /// the engines.
    pub fn us(t: f64) -> Time {
        Time::from_us_f64(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values() {
        let p = ModelParams::paper();
        assert_eq!(p.l_hop, 0.005);
        assert_eq!(p.o_mpb, 0.126);
        assert_eq!(p.o_mem_w, 0.461);
        assert_eq!(p.o_mem_r, 0.208);
        assert_eq!(p.o_mpb_put, 0.069);
        assert_eq!(p.o_mpb_get, 0.33);
        assert_eq!(p.o_mem_put, 0.19);
        assert_eq!(p.o_mem_get, 0.095);
        assert!(p.is_plausible());
    }

    #[test]
    fn implausible_params_detected() {
        let mut p = ModelParams::paper();
        p.l_hop = 0.0;
        assert!(!p.is_plausible());
        p.l_hop = f64::NAN;
        assert!(!p.is_plausible());
    }
}
