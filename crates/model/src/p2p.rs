//! Formulas (1)–(12): point-to-point model of MPB / off-chip read and
//! write and of the `put` / `get` primitives (Figure 2 of the paper).
//!
//! For each operation the paper models the **completion time** `C` (time
//! for the operation to return to the caller) and the **latency** `L`
//! (time until the data is visible at the destination). Completion of a
//! write includes the acknowledgment hop back; latency does not.
//!
//! `d` counts routers traversed; `m` counts cache lines.

use crate::params::ModelParams;

/// Point-to-point cost evaluator bound to a parameter set.
///
/// ```
/// use scc_model::{ModelParams, P2p};
/// let m = P2p::new(ModelParams::paper());
/// // One-cache-line MPB read at one hop: o^mpb + 2·Lhop = 0.136 µs.
/// assert!((m.c_mpb_r(1) - 0.136).abs() < 1e-12);
/// // A 96-line get into off-chip memory (the OC-Bcast leaf step).
/// assert!(m.c_get_mem(96, 1, 1) > 50.0);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct P2p {
    pub p: ModelParams,
}

impl P2p {
    pub fn new(p: ModelParams) -> P2p {
        P2p { p }
    }

    // ---- single-cache-line primitives --------------------------------

    /// (1) `L^mpb_w(d) = o^mpb + d·Lhop` — latency of writing one line
    /// to an MPB at distance `d`.
    pub fn l_mpb_w(&self, d: u32) -> f64 {
        self.p.o_mpb + d as f64 * self.p.l_hop
    }

    /// (2) `C^mpb_w(d) = o^mpb + 2d·Lhop` — the write completes when the
    /// MPB's acknowledgment has travelled back.
    pub fn c_mpb_w(&self, d: u32) -> f64 {
        self.p.o_mpb + 2.0 * d as f64 * self.p.l_hop
    }

    /// (3) `L^mpb_r(d) = C^mpb_r(d) = o^mpb + 2d·Lhop` — a read sends a
    /// request and receives the line, so latency equals completion.
    pub fn c_mpb_r(&self, d: u32) -> f64 {
        self.p.o_mpb + 2.0 * d as f64 * self.p.l_hop
    }

    /// (4) `L^mem_w(d) = o^mem_w + d·Lhop`.
    pub fn l_mem_w(&self, d: u32) -> f64 {
        self.p.o_mem_w + d as f64 * self.p.l_hop
    }

    /// (5) `C^mem_w(d) = o^mem_w + 2d·Lhop`.
    pub fn c_mem_w(&self, d: u32) -> f64 {
        self.p.o_mem_w + 2.0 * d as f64 * self.p.l_hop
    }

    /// (6) `L^mem_r(d) = C^mem_r(d) = o^mem_r + 2d·Lhop`.
    pub fn c_mem_r(&self, d: u32) -> f64 {
        self.p.o_mem_r + 2.0 * d as f64 * self.p.l_hop
    }

    // ---- put ----------------------------------------------------------

    /// (7) completion of `put` from the caller's **local MPB** (`d_src = 1`)
    /// to an MPB at distance `d_dst`, `m` cache lines:
    /// `C^mpb_put = o^mpb_put + m·C^mpb_r(1) + m·C^mpb_w(d_dst)`.
    pub fn c_put_mpb(&self, m: usize, d_dst: u32) -> f64 {
        self.p.o_mpb_put + m as f64 * (self.c_mpb_r(1) + self.c_mpb_w(d_dst))
    }

    /// (8) completion of `put` from **private off-chip memory** at
    /// distance `d_src` (to the caller's memory controller) to an MPB at
    /// distance `d_dst`.
    pub fn c_put_mem(&self, m: usize, d_src: u32, d_dst: u32) -> f64 {
        self.p.o_mem_put + m as f64 * (self.c_mem_r(d_src) + self.c_mpb_w(d_dst))
    }

    /// (9) latency of the MPB-sourced put: the last line does not wait
    /// for its acknowledgment.
    pub fn l_put_mpb(&self, m: usize, d_dst: u32) -> f64 {
        assert!(m >= 1, "latency of an empty put is undefined");
        self.p.o_mpb_put
            + m as f64 * self.c_mpb_r(1)
            + (m as f64 - 1.0) * self.c_mpb_w(d_dst)
            + self.l_mpb_w(d_dst)
    }

    /// (10) latency of the memory-sourced put.
    pub fn l_put_mem(&self, m: usize, d_src: u32, d_dst: u32) -> f64 {
        assert!(m >= 1, "latency of an empty put is undefined");
        self.p.o_mem_put
            + m as f64 * self.c_mem_r(d_src)
            + (m as f64 - 1.0) * self.c_mpb_w(d_dst)
            + self.l_mpb_w(d_dst)
    }

    // ---- get ----------------------------------------------------------

    /// (11) `get` from an MPB at distance `d_src` into the caller's local
    /// MPB (`d_dst = 1`); latency and completion coincide.
    pub fn c_get_mpb(&self, m: usize, d_src: u32) -> f64 {
        self.p.o_mpb_get + m as f64 * (self.c_mpb_r(d_src) + self.c_mpb_w(1))
    }

    /// (12) `get` from an MPB at distance `d_src` into private off-chip
    /// memory at distance `d_dst`; latency and completion coincide.
    pub fn c_get_mem(&self, m: usize, d_src: u32, d_dst: u32) -> f64 {
        self.p.o_mem_get + m as f64 * (self.c_mpb_r(d_src) + self.c_mem_w(d_dst))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p2p() -> P2p {
        P2p::new(ModelParams::paper())
    }

    #[test]
    fn single_line_primitives_at_table1_values() {
        let m = p2p();
        // d = 1: hand-computed from Table 1.
        assert!((m.l_mpb_w(1) - 0.131).abs() < 1e-12);
        assert!((m.c_mpb_w(1) - 0.136).abs() < 1e-12);
        assert!((m.c_mpb_r(1) - 0.136).abs() < 1e-12);
        assert!((m.c_mem_w(1) - 0.471).abs() < 1e-12);
        assert!((m.c_mem_r(1) - 0.218).abs() < 1e-12);
        // d = 9 (maximum on the mesh).
        assert!((m.c_mpb_r(9) - (0.126 + 0.09)).abs() < 1e-12);
    }

    #[test]
    fn one_hop_vs_nine_hop_gap_is_about_thirty_percent() {
        // Section 3.2: "the performance difference between the 1-hop
        // distance and the 9-hop distance is only 30%" for a given size.
        let m = p2p();
        for lines in [1usize, 4, 8, 16] {
            let near = m.c_get_mpb(lines, 1);
            let far = m.c_get_mpb(lines, 9);
            let ratio = far / near;
            assert!(
                ratio > 1.05 && ratio < 1.35,
                "distance penalty for {lines} CL out of range: {ratio}"
            );
        }
    }

    #[test]
    fn completion_dominates_latency_for_puts() {
        let m = p2p();
        for lines in [1usize, 4, 96] {
            for d in [1u32, 5, 9] {
                assert!(m.c_put_mpb(lines, d) >= m.l_put_mpb(lines, d));
                assert!(m.c_put_mem(lines, d.min(4), d) >= m.l_put_mem(lines, d.min(4), d));
                // The gap is exactly the last acknowledgment hop.
                let gap = m.c_put_mpb(lines, d) - m.l_put_mpb(lines, d);
                assert!((gap - d as f64 * m.p.l_hop).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn put_get_scale_linearly_in_lines() {
        let m = p2p();
        let c1 = m.c_get_mpb(1, 4);
        let c2 = m.c_get_mpb(2, 4);
        let c3 = m.c_get_mpb(3, 4);
        assert!((2.0 * c2 - c1 - c3).abs() < 1e-9, "per-line cost must be constant");
    }

    #[test]
    fn throughput_denominators_match_paper_table2_scale() {
        // Reconstructing the OC-Bcast peak-throughput figure from the
        // building blocks: 96-line chunk, d = 1 everywhere (Section 5.1).
        let m = p2p();
        let per_chunk = m.c_get_mpb(96, 1) + m.c_get_mem(96, 1, 1);
        let mb_per_s = 96.0 * 32.0 / per_chunk; // B/us == MB/s
        assert!((mb_per_s - 35.0).abs() < 2.5, "expected ~35 MB/s as in Table 2, got {mb_per_s}");
    }
}
