//! Typed errors for the analytical model's fallible entry points.
//!
//! The model formulas themselves are total, but the series / fitting
//! helpers have real preconditions (non-empty sweeps, enough distinct
//! samples to determine a line). Those used to be `assert!`s; harness
//! code — which assembles sweeps from CLI flags and quick-mode
//! filtering — gets a recoverable error instead of a panic.

use std::fmt;

/// Why a model computation could not be carried out.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ModelError {
    /// A figure/table series was requested over an empty size sweep.
    EmptySizeSweep,
    /// A figure/table series was requested over an empty degree sweep.
    EmptyDegreeSweep,
    /// A broadcast needs at least two cores.
    TooFewCores { p: usize },
    /// A linear fit needs at least two samples.
    TooFewSamples { have: usize },
    /// All x values coincide: the slope is underdetermined.
    ZeroXVariance,
    /// An average over zero samples was requested (an op-overhead
    /// sample category was empty).
    NoSamples { what: &'static str },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::EmptySizeSweep => write!(f, "empty message-size sweep"),
            ModelError::EmptyDegreeSweep => write!(f, "empty tree-degree sweep"),
            ModelError::TooFewCores { p } => {
                write!(f, "broadcast needs at least two cores, got {p}")
            }
            ModelError::TooFewSamples { have } => {
                write!(f, "linear fit needs at least two samples, got {have}")
            }
            ModelError::ZeroXVariance => {
                write!(f, "all x values identical; cannot fit a slope")
            }
            ModelError::NoSamples { what } => {
                write!(f, "no {what} samples; cannot average")
            }
        }
    }
}

impl std::error::Error for ModelError {}
