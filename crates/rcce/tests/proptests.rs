//! Property-based tests of the communication layer: arbitrary message
//! sizes, chunkings and schedules must always deliver intact payloads.

use proptest::prelude::*;
use scc_hal::{CoreId, MemRange, Rma, RmaExt, RmaResult};
use scc_rcce::{Barrier, MpbAllocator, Pipe, RcceComm};
use scc_sim::{run_spmd, SimConfig};

fn cfg(n: usize) -> SimConfig {
    SimConfig { num_cores: n, mem_bytes: 1 << 18, ..SimConfig::default() }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    /// send/recv round-trips arbitrary payloads, chunked arbitrarily.
    #[test]
    fn sendrecv_roundtrip(msg in proptest::collection::vec(any::<u8>(), 1..20_000)) {
        let expect = msg.clone();
        let rep = run_spmd(&cfg(2), move |c| -> RmaResult<Option<Vec<u8>>> {
            let mut alloc = MpbAllocator::new();
            let comm = RcceComm::new(&mut alloc, 2).unwrap();
            let r = MemRange::new(0, msg.len());
            if c.core().index() == 0 {
                c.mem_write(0, &msg)?;
                comm.send(c, CoreId(1), r)?;
                Ok(None)
            } else {
                comm.recv(c, CoreId(0), r)?;
                Ok(Some(c.mem_to_vec(r)?))
            }
        }).unwrap();
        prop_assert_eq!(rep.results[1].as_ref().unwrap().as_ref().unwrap(), &expect);
    }

    /// The pipelined pipe agrees with send/recv for any half size.
    #[test]
    fn pipe_roundtrip(
        msg in proptest::collection::vec(any::<u8>(), 1..20_000),
        half in 1usize..120,
    ) {
        let expect = msg.clone();
        let rep = run_spmd(&cfg(2), move |c| -> RmaResult<Option<Vec<u8>>> {
            let mut alloc = MpbAllocator::new();
            let mut pipe = Pipe::between(&mut alloc, CoreId(0), CoreId(1), half).unwrap();
            let r = MemRange::new(0, msg.len());
            if c.core().index() == 0 {
                c.mem_write(0, &msg)?;
                pipe.send(c, r)?;
                Ok(None)
            } else {
                pipe.recv(c, r)?;
                Ok(Some(c.mem_to_vec(r)?))
            }
        }).unwrap();
        prop_assert_eq!(rep.results[1].as_ref().unwrap().as_ref().unwrap(), &expect);
    }

    /// A chain of sends with randomized per-hop staging buffers
    /// preserves the payload across multiple hops.
    #[test]
    fn multi_hop_relay(
        msg in proptest::collection::vec(any::<u8>(), 1..5_000),
        hops in 2usize..6,
    ) {
        let expect = msg.clone();
        let rep = run_spmd(&cfg(hops), move |c| -> RmaResult<Option<Vec<u8>>> {
            let mut alloc = MpbAllocator::new();
            let comm = RcceComm::new(&mut alloc, c.num_cores()).unwrap();
            let r = MemRange::new(0, msg.len());
            let me = c.core().index();
            let last = c.num_cores() - 1;
            if me == 0 {
                c.mem_write(0, &msg)?;
                comm.send(c, CoreId(1), r)?;
                Ok(None)
            } else {
                comm.recv(c, CoreId((me - 1) as u8), r)?;
                if me < last {
                    comm.send_cached(c, CoreId((me + 1) as u8), r)?;
                    Ok(None)
                } else {
                    Ok(Some(c.mem_to_vec(r)?))
                }
            }
        }).unwrap();
        let last = rep.results.len() - 1;
        prop_assert_eq!(rep.results[last].as_ref().unwrap().as_ref().unwrap(), &expect);
    }

    /// Barriers stay correct under arbitrary skew: after a barrier, all
    /// cores have observed every pre-barrier flag write.
    #[test]
    fn barrier_orders_flag_writes(skews in proptest::collection::vec(0u64..10_000, 6)) {
        let rep = run_spmd(&cfg(6), move |c| -> RmaResult<bool> {
            let mut alloc = MpbAllocator::new();
            let mark = alloc.alloc(6).unwrap();
            let mut bar = Barrier::new(&mut alloc, 6).unwrap();
            let me = c.core().index();
            c.compute(scc_hal::Time::from_ns(skews[me]));
            // Publish my mark to every peer, then barrier, then verify
            // I can see everyone's mark locally.
            for peer in 0..6 {
                c.flag_put(
                    scc_hal::MpbAddr::new(CoreId(peer as u8), mark.line(me)),
                    scc_hal::FlagValue(me as u32 + 1),
                )?;
            }
            bar.wait(c)?;
            let mut ok = true;
            for writer in 0..6 {
                ok &= c.flag_read_local(mark.line(writer))?.0 == writer as u32 + 1;
            }
            Ok(ok)
        }).unwrap();
        prop_assert!(rep.results.into_iter().all(|r| r.unwrap()));
    }
}
