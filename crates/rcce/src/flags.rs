//! Synchronization flags on top of raw MPB lines.
//!
//! Two idioms cover everything in this suite:
//!
//! * [`BinFlag`] — RCCE-style binary flag (SET/UNSET) with an explicit
//!   local reset, used by the two-sided send/receive handshake;
//! * [`SeqFlag`] — monotone sequence flag, used by OC-Bcast and the
//!   dissemination barrier. Sequence values let repeated collectives
//!   share a line with no reset protocol at all: a waiter always knows
//!   the value it expects next, and stale values from earlier rounds
//!   are simply smaller.

use scc_hal::{CoreId, FlagValue, MpbAddr, Rma, RmaResult, Time};

/// A binary flag living at the same MPB line on every core.
#[derive(Clone, Copy, Debug)]
pub struct BinFlag {
    pub line: usize,
}

impl BinFlag {
    pub const SET: FlagValue = FlagValue(1);
    pub const UNSET: FlagValue = FlagValue(0);

    /// Set the flag in `owner`'s MPB (remote put).
    pub fn set<R: Rma>(&self, c: &mut R, owner: CoreId) -> RmaResult<()> {
        c.flag_put(MpbAddr::new(owner, self.line), Self::SET)
    }

    /// Reset one's own copy (local put — RCCE resets flags locally
    /// after consuming them).
    pub fn reset_local<R: Rma>(&self, c: &mut R) -> RmaResult<()> {
        let me = c.core();
        c.flag_put(MpbAddr::new(me, self.line), Self::UNSET)
    }

    /// Spin until one's own copy is SET.
    pub fn wait_set<R: Rma>(&self, c: &mut R) -> RmaResult<()> {
        c.flag_wait_local(self.line, &mut |v| v == Self::SET)?;
        Ok(())
    }

    /// Deadline-aware [`BinFlag::wait_set`]: surfaces
    /// [`scc_hal::RmaError::Timeout`] instead of waiting forever when
    /// the set was lost.
    pub fn wait_set_until<R: Rma>(&self, c: &mut R, deadline: Time) -> RmaResult<()> {
        c.flag_wait_local_until(self.line, &mut |v| v == Self::SET, deadline)?;
        Ok(())
    }
}

/// A monotone sequence flag living at the same MPB line on every core.
#[derive(Clone, Copy, Debug)]
pub struct SeqFlag {
    pub line: usize,
}

impl SeqFlag {
    /// Publish sequence number `seq` into `owner`'s MPB.
    pub fn signal<R: Rma>(&self, c: &mut R, owner: CoreId, seq: u32) -> RmaResult<()> {
        c.flag_put(MpbAddr::new(owner, self.line), FlagValue(seq))
    }

    /// Wait until one's own copy reaches at least `seq`; returns the
    /// observed value (which may be newer).
    pub fn wait_ge<R: Rma>(&self, c: &mut R, seq: u32) -> RmaResult<u32> {
        let v = c.flag_wait_local(self.line, &mut |v| v.0 >= seq)?;
        Ok(v.0)
    }

    /// Deadline-aware [`SeqFlag::wait_ge`]: surfaces
    /// [`scc_hal::RmaError::Timeout`] instead of waiting forever when
    /// the signal was lost.
    pub fn wait_ge_until<R: Rma>(&self, c: &mut R, seq: u32, deadline: Time) -> RmaResult<u32> {
        let v = c.flag_wait_local_until(self.line, &mut |v| v.0 >= seq, deadline)?;
        Ok(v.0)
    }

    /// Non-blocking read of one's own copy.
    pub fn read<R: Rma>(&self, c: &mut R) -> RmaResult<u32> {
        Ok(c.flag_read_local(self.line)?.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scc_sim::{run_spmd, SimConfig};

    fn cfg(n: usize) -> SimConfig {
        SimConfig { num_cores: n, mem_bytes: 4096, ..SimConfig::default() }
    }

    #[test]
    fn bin_flag_ping_pong() {
        let rep = run_spmd(&cfg(2), |c| -> RmaResult<u32> {
            let ping = BinFlag { line: 0 };
            let pong = BinFlag { line: 1 };
            let me = c.core().index();
            let peer = CoreId(1 - me as u8);
            let mut rounds = 0;
            for _ in 0..10 {
                if me == 0 {
                    ping.set(c, peer)?;
                    pong.wait_set(c)?;
                    pong.reset_local(c)?;
                } else {
                    ping.wait_set(c)?;
                    ping.reset_local(c)?;
                    pong.set(c, peer)?;
                }
                rounds += 1;
            }
            Ok(rounds)
        })
        .unwrap();
        for r in rep.results {
            assert_eq!(r.unwrap(), 10);
        }
    }

    #[test]
    fn seq_flag_needs_no_reset_across_rounds() {
        // A chain: core i signals core i+1 with the round number; many
        // rounds reuse the same line with no reset anywhere.
        let n = 5;
        let rep = run_spmd(&cfg(n), move |c| -> RmaResult<u32> {
            let token = SeqFlag { line: 2 };
            let me = c.core().index();
            let mut last = 0;
            for round in 1..=20u32 {
                if me == 0 {
                    token.signal(c, CoreId(1), round)?;
                    last = round;
                } else {
                    last = token.wait_ge(c, round)?;
                    if me + 1 < n {
                        token.signal(c, CoreId((me + 1) as u8), round)?;
                    }
                }
            }
            Ok(last)
        })
        .unwrap();
        for r in rep.results {
            assert!(r.unwrap() >= 20);
        }
    }

    #[test]
    fn seq_flag_read_is_nonblocking() {
        let rep = run_spmd(&cfg(1), |c| -> RmaResult<u32> {
            let f = SeqFlag { line: 9 };
            assert_eq!(f.read(c)?, 0);
            let me = c.core();
            f.signal(c, me, 33)?;
            f.read(c)
        })
        .unwrap();
        assert_eq!(rep.results[0].as_ref().unwrap(), &33);
    }
}
