//! # scc-rcce — RCCE-style communication layer over one-sided RMA
//!
//! The paper's baseline broadcasts (binomial tree, scatter-allgather)
//! come from the RCCE_comm library, which layers two-sided send/receive
//! over the SCC's one-sided put/get. This crate rebuilds that stack on
//! the [`scc_hal::Rma`] interface so the baselines pay the same
//! structural costs as on the real chip:
//!
//! * [`alloc`] — symmetric MPB line allocation (RCCE_malloc-style);
//! * [`flags`] — binary and sequence-valued one-line flags;
//! * [`sendrecv`] — blocking, chunked two-sided send/receive with the
//!   RCCE ready/sent handshake;
//! * [`barrier`] — dissemination barrier.

//! * [`pipe`] — iRCCE-style pipelined point-to-point transfer between
//!   a fixed pair of cores (the double-buffering blueprint the paper
//!   borrows in Section 4.2).

pub mod alloc;
pub mod barrier;
pub mod flags;
pub mod pipe;
pub mod sendrecv;

pub use alloc::{MpbAllocator, MpbExhausted, MpbRegion};
pub use barrier::Barrier;
pub use flags::{BinFlag, SeqFlag};
pub use pipe::Pipe;
pub use sendrecv::RcceComm;
