//! Symmetric MPB line allocator.
//!
//! Collectives and the send/receive layer reserve MPB lines for flags
//! and payload buffers. Like RCCE's `RCCE_malloc`, allocation is
//! *symmetric*: every core makes the same sequence of calls, so the
//! same lines are assigned on every core and a peer's flag or buffer
//! can be addressed remotely with the local handle's line number.
//!
//! First-fit with explicit free: contexts (e.g. an OC-Bcast context and
//! later a scatter-allgather context in the same program) can release
//! their lines for the next protocol, which matters because the 256
//! lines per core cannot hold two full contexts at once.

use scc_hal::MPB_LINES_PER_CORE;
use std::fmt;

/// A reserved, contiguous range of MPB lines (identical on all cores).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MpbRegion {
    pub first_line: usize,
    pub lines: usize,
}

impl MpbRegion {
    /// The line `i` within the region.
    #[inline]
    pub fn line(&self, i: usize) -> usize {
        assert!(i < self.lines, "line {i} outside region of {} lines", self.lines);
        self.first_line + i
    }
}

/// Allocation failure: the MPB is full (or too fragmented).
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct MpbExhausted {
    pub requested: usize,
    pub largest_free: usize,
}

impl fmt::Debug for MpbExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "MPB exhausted: requested {} lines, largest free block is {}",
            self.requested, self.largest_free
        )
    }
}

impl fmt::Display for MpbExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl std::error::Error for MpbExhausted {}

/// First-fit allocator over the 256 MPB lines of each core.
///
/// ```
/// use scc_rcce::MpbAllocator;
/// let mut alloc = MpbAllocator::new();
/// let flags = alloc.alloc(8).unwrap();      // lines 0..8
/// let payload = alloc.alloc(96).unwrap();   // lines 8..104
/// assert_eq!(payload.first_line, 8);
/// alloc.free(flags);
/// assert_eq!(alloc.alloc(4).unwrap().first_line, 0); // first fit reuses the gap
/// ```
#[derive(Clone, Debug)]
pub struct MpbAllocator {
    /// Allocated regions, sorted by first line.
    taken: Vec<MpbRegion>,
}

impl Default for MpbAllocator {
    fn default() -> Self {
        Self::new()
    }
}

impl MpbAllocator {
    pub fn new() -> MpbAllocator {
        MpbAllocator { taken: Vec::new() }
    }

    /// Reserve `lines` contiguous MPB lines.
    pub fn alloc(&mut self, lines: usize) -> Result<MpbRegion, MpbExhausted> {
        assert!(lines > 0, "cannot allocate zero lines");
        let mut cursor = 0usize;
        let mut insert_at = 0usize;
        let mut largest = 0usize;
        for (i, r) in self.taken.iter().enumerate() {
            let gap = r.first_line - cursor;
            if gap >= lines {
                break;
            }
            largest = largest.max(gap);
            cursor = r.first_line + r.lines;
            insert_at = i + 1;
        }
        if cursor + lines > MPB_LINES_PER_CORE {
            return Err(MpbExhausted {
                requested: lines,
                largest_free: largest.max(MPB_LINES_PER_CORE.saturating_sub(cursor)),
            });
        }
        let region = MpbRegion { first_line: cursor, lines };
        self.taken.insert(insert_at, region);
        Ok(region)
    }

    /// Release a region previously returned by [`MpbAllocator::alloc`].
    /// Panics if the region is not currently allocated (a double free
    /// is a protocol bug worth failing loudly on).
    pub fn free(&mut self, region: MpbRegion) {
        let idx = self
            .taken
            .iter()
            .position(|r| *r == region)
            .unwrap_or_else(|| panic!("freeing unallocated region {region:?}"));
        self.taken.remove(idx);
    }

    /// Lines still available (total, ignoring fragmentation).
    pub fn lines_free(&self) -> usize {
        MPB_LINES_PER_CORE - self.taken.iter().map(|r| r.lines).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_allocation_is_contiguous() {
        let mut a = MpbAllocator::new();
        let r1 = a.alloc(10).unwrap();
        let r2 = a.alloc(5).unwrap();
        assert_eq!(r1.first_line, 0);
        assert_eq!(r2.first_line, 10);
        assert_eq!(a.lines_free(), 256 - 15);
        assert_eq!(r1.line(3), 3);
        assert_eq!(r2.line(0), 10);
    }

    #[test]
    fn free_then_first_fit_reuses_gap() {
        let mut a = MpbAllocator::new();
        let r1 = a.alloc(10).unwrap();
        let _r2 = a.alloc(20).unwrap();
        a.free(r1);
        // A smaller request fits in the gap left by r1.
        let r3 = a.alloc(8).unwrap();
        assert_eq!(r3.first_line, 0);
        // A larger one goes after r2.
        let r4 = a.alloc(12).unwrap();
        assert_eq!(r4.first_line, 30);
    }

    #[test]
    fn exhaustion_reports_largest_block() {
        let mut a = MpbAllocator::new();
        let _ = a.alloc(250).unwrap();
        let e = a.alloc(10).unwrap_err();
        assert_eq!(e.requested, 10);
        assert_eq!(e.largest_free, 6);
    }

    #[test]
    fn two_full_contexts_do_not_fit_but_sequential_do() {
        // An OC-Bcast context (k = 47: 1 + 47 + 192 = 240 lines) and an
        // RCCE send/recv context (253 lines) cannot coexist...
        let mut a = MpbAllocator::new();
        let oc = a.alloc(240).unwrap();
        assert!(a.alloc(253).is_err());
        // ...but after freeing the first, the second fits.
        a.free(oc);
        assert!(a.alloc(253).is_ok());
    }

    #[test]
    #[should_panic(expected = "unallocated")]
    fn double_free_panics() {
        let mut a = MpbAllocator::new();
        let r = a.alloc(4).unwrap();
        a.free(r);
        a.free(r);
    }

    #[test]
    fn line_accessor_bounds() {
        let mut a = MpbAllocator::new();
        let r = a.alloc(4).unwrap();
        assert_eq!(r.line(3), 3);
        let result = std::panic::catch_unwind(|| r.line(4));
        assert!(result.is_err());
    }
}
