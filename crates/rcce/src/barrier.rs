//! Dissemination barrier over MPB flags.
//!
//! RCCE_comm's collectives synchronize with a barrier; we provide the
//! classic dissemination barrier (⌈log₂ P⌉ rounds, one remote flag put
//! and one local wait per round) using sequence-valued flags, so
//! consecutive barriers reuse the same lines with no reset traffic.

use crate::alloc::{MpbAllocator, MpbExhausted, MpbRegion};
use crate::flags::SeqFlag;
use scc_hal::{CoreId, Rma, RmaResult};

/// A reusable barrier for all `P` cores of the run.
#[derive(Clone, Debug)]
pub struct Barrier {
    region: MpbRegion,
    rounds: usize,
    epoch: u32,
}

impl Barrier {
    /// Reserve `⌈log₂ P⌉` flag lines (identically on every core).
    pub fn new(alloc: &mut MpbAllocator, num_cores: usize) -> Result<Barrier, MpbExhausted> {
        assert!(num_cores >= 1);
        let rounds = usize::BITS as usize - (num_cores - 1).leading_zeros() as usize;
        let region = alloc.alloc(rounds.max(1))?;
        Ok(Barrier { region, rounds, epoch: 0 })
    }

    /// Release the barrier's lines.
    pub fn release(self, alloc: &mut MpbAllocator) {
        alloc.free(self.region);
    }

    /// Block until every core of the run has entered this barrier.
    ///
    /// Every core must call `wait` the same number of times (the usual
    /// SPMD barrier contract); the internal epoch enforces matching.
    pub fn wait<R: Rma>(&mut self, c: &mut R) -> RmaResult<()> {
        let p = c.num_cores();
        if p == 1 {
            return Ok(());
        }
        self.epoch += 1;
        let me = c.core().index();
        for r in 0..self.rounds {
            let partner = CoreId(((me + (1 << r)) % p) as u8);
            let flag = SeqFlag { line: self.region.line(r) };
            flag.signal(c, partner, self.epoch)?;
            flag.wait_ge(c, self.epoch)?;
        }
        Ok(())
    }

    /// Number of completed barrier episodes (diagnostics).
    pub fn epoch(&self) -> u32 {
        self.epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scc_hal::Time;
    use scc_sim::{run_spmd, SimConfig};

    fn cfg(n: usize) -> SimConfig {
        SimConfig { num_cores: n, mem_bytes: 4096, ..SimConfig::default() }
    }

    #[test]
    fn barrier_actually_synchronizes() {
        // Each core computes for a different amount of time, then hits
        // the barrier; everyone must leave at (or after) the slowest
        // core's arrival.
        let n = 7;
        let rep = run_spmd(&cfg(n), move |c| -> RmaResult<(Time, Time)> {
            let mut alloc = MpbAllocator::new();
            let mut bar = Barrier::new(&mut alloc, c.num_cores()).unwrap();
            let me = c.core().index() as u64;
            c.compute(Time::from_ns(1_000 * me * me));
            let before = c.now();
            bar.wait(c)?;
            Ok((before, c.now()))
        })
        .unwrap();
        let results: Vec<_> = rep.results.into_iter().map(|r| r.unwrap()).collect();
        let slowest_arrival = results.iter().map(|(b, _)| *b).max().unwrap();
        for (i, (_, after)) in results.iter().enumerate() {
            assert!(
                *after >= slowest_arrival,
                "core {i} left the barrier at {after} before the last arrival {slowest_arrival}"
            );
        }
    }

    #[test]
    fn repeated_barriers_do_not_interfere() {
        let n = 8;
        let rep = run_spmd(&cfg(n), move |c| -> RmaResult<u32> {
            let mut alloc = MpbAllocator::new();
            let mut bar = Barrier::new(&mut alloc, c.num_cores()).unwrap();
            for round in 0..25 {
                // Stagger arrivals differently each round.
                let me = c.core().index() as u64;
                c.compute(Time::from_ns(100 * ((me + round) % 5)));
                bar.wait(c)?;
            }
            Ok(bar.epoch())
        })
        .unwrap();
        for r in rep.results {
            assert_eq!(r.unwrap(), 25);
        }
    }

    #[test]
    fn single_core_barrier_is_a_noop() {
        let rep = run_spmd(&cfg(1), |c| -> RmaResult<Time> {
            let mut alloc = MpbAllocator::new();
            let mut bar = Barrier::new(&mut alloc, 1).unwrap();
            bar.wait(c)?;
            Ok(c.now())
        })
        .unwrap();
        assert_eq!(rep.results[0].as_ref().unwrap(), &Time::ZERO);
    }

    #[test]
    fn round_count_is_log2() {
        let mut alloc = MpbAllocator::new();
        assert_eq!(Barrier::new(&mut alloc, 48).unwrap().rounds, 6);
        assert_eq!(Barrier::new(&mut alloc, 2).unwrap().rounds, 1);
        assert_eq!(Barrier::new(&mut alloc, 3).unwrap().rounds, 2);
        assert_eq!(Barrier::new(&mut alloc, 33).unwrap().rounds, 6);
    }
}
