//! Two-sided send/receive built on one-sided RMA, following the RCCE
//! protocol the paper's baselines use (Section 1.1: "The RCCE library
//! provides efficient one-sided put/get operations and uses them to
//! implement two-sided send/receive communication").
//!
//! Layout per core: `P` per-peer `ready` flags (one line each — line
//! granularity keeps every flag write atomic on the SCC, where only
//! whole-cache-line writes are atomic), a single `sent` flag, and a
//! payload buffer filling the rest of the MPB. Real RCCE packs its
//! per-peer flags as bits to leave 251 payload lines (`M_rcce` in the
//! paper); bit flags need read-modify-write cycles that are unsafe
//! under concurrent line-granularity writers, so we spend the lines and
//! keep a 207-line payload for 48 cores — the difference is one extra
//! handshake per ~6.6 KB, negligible against a 150 µs payload copy
//! (recorded as a deviation in DESIGN.md).
//!
//! Per chunk:
//!
//! ```text
//! receiver: set sender's READY[me] ─┐     ┌─ wait own SENT, reset it
//! sender:   wait own READY[dst], reset it, put chunk into receiver's
//!           MPB, set receiver's SENT ─────┘ receiver: get chunk to mem
//! ```
//!
//! Per-peer `ready` makes arbitrary concurrent matchings safe: a
//! receiver's pre-posted ready can never be swallowed by another
//! receiver's, and `sent` has exactly one matched writer at a time.
//!
//! The sender's `put` reads application data from off-chip memory
//! (`C^mem_put`) — or from L1 for a message that was just received and
//! is being forwarded (`send_cached`, the Section 5.2.2 assumption) —
//! and the receiver's `get` lands in off-chip memory (`C^mem_get`):
//! exactly the per-pair critical path that Formulas (14) and (16)
//! charge.

use crate::alloc::{MpbAllocator, MpbExhausted, MpbRegion};
use crate::flags::BinFlag;
use scc_hal::{bytes_to_lines, CoreId, MemRange, MpbAddr, Rma, RmaResult, Time, CACHE_LINE_BYTES};

/// The payload lines RCCE proper would have (bit-packed flags); kept as
/// the reference constant for the analytical model.
pub const M_RCCE_PAPER: usize = 251;

/// Symmetric two-sided communication context.
#[derive(Clone, Copy, Debug)]
pub struct RcceComm {
    /// `ready.line(peer)` — "peer is ready to receive from me".
    ready: MpbRegion,
    sent: BinFlag,
    payload: MpbRegion,
    num_cores: usize,
}

impl RcceComm {
    /// Reserve the context's MPB lines (identically on every core of a
    /// `num_cores` run). Grabs all remaining lines for the payload.
    pub fn new(alloc: &mut MpbAllocator, num_cores: usize) -> Result<RcceComm, MpbExhausted> {
        let ready = alloc.alloc(num_cores)?;
        let sent_region = alloc.alloc(1)?;
        let payload_lines = alloc.lines_free();
        let payload = alloc.alloc(payload_lines.max(1))?;
        Ok(RcceComm { ready, sent: BinFlag { line: sent_region.first_line }, payload, num_cores })
    }

    /// Like [`RcceComm::new`] but with an explicit payload size, so the
    /// context can share the MPB with other protocol contexts (e.g. an
    /// OC-Bcast context plus a small send/receive channel for
    /// point-to-point traffic). Smaller payload ⇒ more handshake
    /// chunks per message; semantics are unchanged.
    pub fn with_payload_lines(
        alloc: &mut MpbAllocator,
        num_cores: usize,
        payload_lines: usize,
    ) -> Result<RcceComm, MpbExhausted> {
        assert!(payload_lines >= 1);
        let ready = alloc.alloc(num_cores)?;
        let sent_region = alloc.alloc(1)?;
        let payload = alloc.alloc(payload_lines)?;
        Ok(RcceComm { ready, sent: BinFlag { line: sent_region.first_line }, payload, num_cores })
    }

    /// Release the context's lines.
    pub fn release(self, alloc: &mut MpbAllocator) {
        alloc.free(self.ready);
        alloc.free(MpbRegion { first_line: self.sent.line, lines: 1 });
        alloc.free(self.payload);
    }

    /// Payload lines per handshake chunk.
    pub fn chunk_lines(&self) -> usize {
        self.payload.lines
    }

    /// Blocking send of `src` (from private memory) to core `dst`.
    /// Must be matched by a [`RcceComm::recv`] on `dst`.
    pub fn send<R: Rma>(&self, c: &mut R, dst: CoreId, src: MemRange) -> RmaResult<()> {
        self.send_impl(c, dst, src, false, None)
    }

    /// Like [`RcceComm::send`], but the message is known to be hot in
    /// the sender's cache (a just-received message being forwarded, as
    /// in every non-root level of the baselines' trees).
    pub fn send_cached<R: Rma>(&self, c: &mut R, dst: CoreId, src: MemRange) -> RmaResult<()> {
        self.send_impl(c, dst, src, true, None)
    }

    /// Deadline-aware [`RcceComm::send`]: each per-chunk wait on the
    /// receiver's ready flag gets its own deadline of `now + patience`;
    /// a wait that exceeds it surfaces [`scc_hal::RmaError::Timeout`]
    /// instead of spinning forever on an unmatched (or dead) receiver.
    pub fn send_deadline<R: Rma>(
        &self,
        c: &mut R,
        dst: CoreId,
        src: MemRange,
        patience: Time,
    ) -> RmaResult<()> {
        self.send_impl(c, dst, src, false, Some(patience))
    }

    fn send_impl<R: Rma>(
        &self,
        c: &mut R,
        dst: CoreId,
        src: MemRange,
        cached: bool,
        patience: Option<Time>,
    ) -> RmaResult<()> {
        assert!(dst.index() < self.num_cores && dst != c.core(), "bad send target {dst}");
        let ready_line = self.ready.line(dst.index());
        let me = c.core();
        let mut sent_bytes = 0usize;
        loop {
            let chunk = (src.len - sent_bytes).min(self.payload.lines * CACHE_LINE_BYTES);
            match patience {
                None => c.flag_wait_local(ready_line, &mut |v| v == BinFlag::SET)?,
                Some(p) => {
                    let dl = c.now() + p;
                    c.flag_wait_local_until(ready_line, &mut |v| v == BinFlag::SET, dl)?
                }
            };
            c.flag_put(MpbAddr::new(me, ready_line), BinFlag::UNSET)?;
            if chunk > 0 {
                let part = src.slice(sent_bytes, chunk);
                let dst_addr = MpbAddr::new(dst, self.payload.first_line);
                if cached {
                    c.put_from_mem_cached(part, dst_addr)?;
                } else {
                    c.put_from_mem(part, dst_addr)?;
                }
            }
            self.sent.set(c, dst)?;
            sent_bytes += chunk;
            if sent_bytes >= src.len {
                return Ok(());
            }
        }
    }

    /// Blocking receive from core `src` into `dst` (private memory).
    pub fn recv<R: Rma>(&self, c: &mut R, src: CoreId, dst: MemRange) -> RmaResult<()> {
        self.recv_impl(c, src, dst, None)
    }

    /// Deadline-aware [`RcceComm::recv`]: each per-chunk wait on the
    /// sent flag gets its own deadline of `now + patience`; a wait
    /// that exceeds it surfaces [`scc_hal::RmaError::Timeout`] instead
    /// of spinning forever on a lost notification.
    pub fn recv_deadline<R: Rma>(
        &self,
        c: &mut R,
        src: CoreId,
        dst: MemRange,
        patience: Time,
    ) -> RmaResult<()> {
        self.recv_impl(c, src, dst, Some(patience))
    }

    fn recv_impl<R: Rma>(
        &self,
        c: &mut R,
        src: CoreId,
        dst: MemRange,
        patience: Option<Time>,
    ) -> RmaResult<()> {
        assert!(src.index() < self.num_cores && src != c.core(), "bad recv source {src}");
        let me = c.core();
        let my_ready_on_sender = self.ready.line(me.index());
        let mut recv_bytes = 0usize;
        loop {
            let chunk = (dst.len - recv_bytes).min(self.payload.lines * CACHE_LINE_BYTES);
            c.flag_put(MpbAddr::new(src, my_ready_on_sender), BinFlag::SET)?;
            match patience {
                None => self.sent.wait_set(c)?,
                Some(p) => {
                    let dl = c.now() + p;
                    self.sent.wait_set_until(c, dl)?;
                }
            }
            self.sent.reset_local(c)?;
            if chunk > 0 {
                c.get_to_mem(
                    MpbAddr::new(me, self.payload.first_line),
                    dst.slice(recv_bytes, chunk),
                )?;
            }
            recv_bytes += chunk;
            if recv_bytes >= dst.len {
                return Ok(());
            }
        }
    }

    /// Number of handshake chunks a message of `bytes` needs with this
    /// context (at least one: zero-byte messages still synchronize).
    pub fn chunks_for(&self, bytes: usize) -> usize {
        bytes_to_lines(bytes).div_ceil(self.payload.lines).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scc_hal::RmaExt;
    use scc_sim::{run_spmd, SimConfig};

    fn cfg(n: usize) -> SimConfig {
        SimConfig { num_cores: n, mem_bytes: 256 * 1024, ..SimConfig::default() }
    }

    fn payload(len: usize, seed: u8) -> Vec<u8> {
        (0..len).map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed)).collect()
    }

    fn comm_for<R: Rma>(c: &R) -> RcceComm {
        let mut alloc = MpbAllocator::new();
        RcceComm::new(&mut alloc, c.num_cores()).unwrap()
    }

    fn round_trip(len: usize) {
        let msg = payload(len, 7);
        let expect = msg.clone();
        let rep = run_spmd(&cfg(2), move |c| -> RmaResult<Option<Vec<u8>>> {
            let comm = comm_for(c);
            if c.core().index() == 0 {
                c.mem_write(0, &msg)?;
                comm.send(c, CoreId(1), MemRange::new(0, msg.len()))?;
                Ok(None)
            } else {
                comm.recv(c, CoreId(0), MemRange::new(0, msg.len()))?;
                Ok(Some(c.mem_to_vec(MemRange::new(0, msg.len()))?))
            }
        })
        .unwrap();
        let got = rep.results[1].as_ref().unwrap().as_ref().unwrap();
        assert_eq!(got, &expect, "len {len}");
    }

    #[test]
    fn small_message() {
        round_trip(1);
        round_trip(32);
        round_trip(100);
    }

    #[test]
    fn exactly_one_chunk_and_multi_chunk() {
        // chunk size for a 2-core run: 256 - 2 - 1 = 253 lines.
        round_trip(253 * CACHE_LINE_BYTES);
        round_trip(253 * CACHE_LINE_BYTES + 1);
        round_trip(3 * 253 * CACHE_LINE_BYTES + 77);
    }

    #[test]
    fn chunk_count() {
        let mut alloc = MpbAllocator::new();
        let comm = RcceComm::new(&mut alloc, 48).unwrap();
        assert_eq!(comm.chunk_lines(), 256 - 48 - 1);
        assert_eq!(comm.chunks_for(0), 1);
        assert_eq!(comm.chunks_for(1), 1);
        assert_eq!(comm.chunks_for(comm.chunk_lines() * 32), 1);
        assert_eq!(comm.chunks_for(comm.chunk_lines() * 32 + 1), 2);
    }

    #[test]
    fn relay_through_middle_core() {
        // 0 -> 1 -> 2, with core 1 forwarding from cache: the pattern of
        // every internal node of the binomial tree.
        let msg = payload(5000, 3);
        let expect = msg.clone();
        let rep = run_spmd(&cfg(3), move |c| -> RmaResult<Option<Vec<u8>>> {
            let comm = comm_for(c);
            let r = MemRange::new(0, msg.len());
            match c.core().index() {
                0 => {
                    c.mem_write(0, &msg)?;
                    comm.send(c, CoreId(1), r)?;
                    Ok(None)
                }
                1 => {
                    comm.recv(c, CoreId(0), r)?;
                    comm.send_cached(c, CoreId(2), r)?;
                    Ok(None)
                }
                _ => {
                    comm.recv(c, CoreId(1), r)?;
                    Ok(Some(c.mem_to_vec(r)?))
                }
            }
        })
        .unwrap();
        assert_eq!(rep.results[2].as_ref().unwrap().as_ref().unwrap(), &expect);
    }

    #[test]
    fn two_receivers_preposting_to_one_sender_do_not_deadlock() {
        // The hazard that forces per-peer ready flags: cores 1 and 2
        // both pre-post their recv before core 0's first send.
        let msg = payload(600, 9);
        let expect = msg.clone();
        let rep = run_spmd(&cfg(3), move |c| -> RmaResult<Option<Vec<u8>>> {
            let comm = comm_for(c);
            let r = MemRange::new(0, msg.len());
            if c.core().index() == 0 {
                c.mem_write(0, &msg)?;
                // Give both receivers time to pre-post their ready flags.
                c.compute(scc_hal::Time::from_us_f64(50.0));
                comm.send(c, CoreId(1), r)?;
                comm.send(c, CoreId(2), r)?;
                Ok(None)
            } else {
                comm.recv(c, CoreId(0), r)?;
                Ok(Some(c.mem_to_vec(r)?))
            }
        })
        .unwrap();
        for i in [1usize, 2] {
            assert_eq!(rep.results[i].as_ref().unwrap().as_ref().unwrap(), &expect);
        }
    }

    #[test]
    fn cached_send_is_faster_on_the_simulator() {
        let msg = payload(8000, 1);
        let run = |cached: bool| -> scc_hal::Time {
            let msg = msg.clone();
            let rep = run_spmd(&cfg(2), move |c| -> RmaResult<()> {
                let comm = comm_for(c);
                let r = MemRange::new(0, msg.len());
                if c.core().index() == 0 {
                    c.mem_write(0, &msg)?;
                    if cached {
                        comm.send_cached(c, CoreId(1), r)?;
                    } else {
                        comm.send(c, CoreId(1), r)?;
                    }
                } else {
                    comm.recv(c, CoreId(0), r)?;
                }
                Ok(())
            })
            .unwrap();
            rep.makespan
        };
        let hot = run(true);
        let cold = run(false);
        assert!(hot < cold, "cached send must be faster: {hot} vs {cold}");
    }

    #[test]
    fn zero_length_message_still_synchronizes() {
        let rep = run_spmd(&cfg(2), |c| -> RmaResult<scc_hal::Time> {
            let comm = comm_for(c);
            if c.core().index() == 0 {
                comm.send(c, CoreId(1), MemRange::new(0, 0))?;
            } else {
                comm.recv(c, CoreId(0), MemRange::new(0, 0))?;
            }
            Ok(c.now())
        })
        .unwrap();
        // Both sides went through the flag handshake: time advanced.
        assert!(rep.results[1].as_ref().unwrap().as_ps() > 0);
    }

    #[test]
    fn release_returns_all_lines() {
        let mut alloc = MpbAllocator::new();
        let comm = RcceComm::new(&mut alloc, 48).unwrap();
        assert_eq!(alloc.lines_free(), 0);
        comm.release(&mut alloc);
        assert_eq!(alloc.lines_free(), 256);
    }
}
