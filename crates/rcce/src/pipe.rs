//! iRCCE-style pipelined point-to-point transfer (Clauss et al., the
//! library the paper credits for the double-buffering idea,
//! Section 4.2).
//!
//! A [`Pipe`] is a dedicated channel between **two fixed cores**. Its
//! payload area is split into two halves; the sender fills half
//! `i mod 2` with chunk `i` while the receiver drains chunk `i − 1`
//! from the other half, so for large messages the `put` and `get`
//! overlap and the transfer time approaches `max(put, get)` per chunk
//! instead of their sum.
//!
//! Flags carry absolute sequence numbers (like OC-Bcast), so repeated
//! messages through the same pipe need no resets; the fixed-pair
//! binding is what makes the sequence arithmetic sound (both ends
//! advance the same counter).

use crate::alloc::{MpbAllocator, MpbExhausted, MpbRegion};
use scc_hal::{
    bytes_to_lines, CoreId, FlagValue, MemRange, MpbAddr, Rma, RmaResult, Time, CACHE_LINE_BYTES,
};

/// A dedicated, pipelined channel between cores `a` and `b`.
///
/// Like all MPB contexts it must be constructed symmetrically on every
/// core, but only the two endpoints may call [`Pipe::send`] /
/// [`Pipe::recv`].
#[derive(Clone, Copy, Debug)]
pub struct Pipe {
    a: CoreId,
    b: CoreId,
    /// Two payload halves (in the *receiver's* MPB region; both ends
    /// reserve the same lines, each uses its own copy when receiving).
    halves: [MpbRegion; 2],
    /// Per-half "chunk available" flags, polled by the receiver.
    sent: [usize; 2],
    /// Per-half "chunk consumed" flags, polled by the sender.
    ready: [usize; 2],
    /// Sequence of the last chunk of the previous message.
    seq: u32,
}

impl Pipe {
    /// Reserve `2 × half_lines` payload lines plus four flag lines.
    pub fn between(
        alloc: &mut MpbAllocator,
        a: CoreId,
        b: CoreId,
        half_lines: usize,
    ) -> Result<Pipe, MpbExhausted> {
        assert!(a != b, "a pipe needs two distinct endpoints");
        assert!(half_lines >= 1);
        let flags = alloc.alloc(4)?;
        let h0 = alloc.alloc(half_lines)?;
        let h1 = alloc.alloc(half_lines)?;
        Ok(Pipe {
            a,
            b,
            halves: [h0, h1],
            sent: [flags.line(0), flags.line(1)],
            ready: [flags.line(2), flags.line(3)],
            seq: 0,
        })
    }

    /// Release the pipe's MPB lines.
    pub fn release(self, alloc: &mut MpbAllocator) {
        alloc.free(MpbRegion { first_line: self.sent[0], lines: 4 });
        alloc.free(self.halves[0]);
        alloc.free(self.halves[1]);
    }

    /// Bytes carried per pipeline chunk.
    pub fn chunk_bytes(&self) -> usize {
        self.halves[0].lines * CACHE_LINE_BYTES
    }

    fn other(&self, me: CoreId) -> CoreId {
        assert!(me == self.a || me == self.b, "{me} is not an endpoint of this pipe");
        if me == self.a {
            self.b
        } else {
            self.a
        }
    }

    /// Pipelined blocking send of `src` to the other endpoint; must be
    /// matched by exactly one [`Pipe::recv`] there with the same length.
    pub fn send<R: Rma>(&mut self, c: &mut R, src: MemRange) -> RmaResult<()> {
        self.send_impl(c, src, None)
    }

    /// Deadline-aware [`Pipe::send`]: each per-chunk wait on the
    /// consumed flag gets its own deadline of `now + patience`; a wait
    /// that exceeds it surfaces [`scc_hal::RmaError::Timeout`] instead
    /// of spinning forever on a stalled receiver.
    pub fn send_deadline<R: Rma>(
        &mut self,
        c: &mut R,
        src: MemRange,
        patience: Time,
    ) -> RmaResult<()> {
        self.send_impl(c, src, Some(patience))
    }

    fn send_impl<R: Rma>(
        &mut self,
        c: &mut R,
        src: MemRange,
        patience: Option<Time>,
    ) -> RmaResult<()> {
        let me = c.core();
        let peer = self.other(me);
        let chunk_bytes = self.chunk_bytes();
        let n = bytes_to_lines(src.len).div_ceil(self.halves[0].lines).max(1);
        let base = self.seq;
        self.seq += n as u32;
        let mut off = 0usize;
        for i in 0..n {
            let seq = base + i as u32 + 1;
            let h = i % 2;
            // Double buffering: half `h` may be refilled once the chunk
            // that previously occupied it (i − 2) was consumed.
            if i >= 2 {
                match patience {
                    None => {
                        c.flag_wait_local(self.ready[h], &mut |v| v.0 >= seq - 2)?;
                    }
                    Some(p) => {
                        let dl = c.now() + p;
                        c.flag_wait_local_until(self.ready[h], &mut |v| v.0 >= seq - 2, dl)?;
                    }
                }
            }
            let len = (src.len - off).min(chunk_bytes);
            if len > 0 {
                c.put_from_mem(src.slice(off, len), MpbAddr::new(peer, self.halves[h].first_line))?;
            }
            c.flag_put(MpbAddr::new(peer, self.sent[h]), FlagValue(seq))?;
            off += len;
        }
        Ok(())
    }

    /// Pipelined blocking receive into `dst` from the other endpoint.
    pub fn recv<R: Rma>(&mut self, c: &mut R, dst: MemRange) -> RmaResult<()> {
        self.recv_impl(c, dst, None)
    }

    /// Deadline-aware [`Pipe::recv`]: each per-chunk wait on the sent
    /// flag gets its own deadline of `now + patience`; a wait that
    /// exceeds it surfaces [`scc_hal::RmaError::Timeout`] instead of
    /// spinning forever on a lost notification.
    pub fn recv_deadline<R: Rma>(
        &mut self,
        c: &mut R,
        dst: MemRange,
        patience: Time,
    ) -> RmaResult<()> {
        self.recv_impl(c, dst, Some(patience))
    }

    fn recv_impl<R: Rma>(
        &mut self,
        c: &mut R,
        dst: MemRange,
        patience: Option<Time>,
    ) -> RmaResult<()> {
        let me = c.core();
        let peer = self.other(me);
        let chunk_bytes = self.chunk_bytes();
        let n = bytes_to_lines(dst.len).div_ceil(self.halves[0].lines).max(1);
        let base = self.seq;
        self.seq += n as u32;
        let mut off = 0usize;
        for i in 0..n {
            let seq = base + i as u32 + 1;
            let h = i % 2;
            match patience {
                None => {
                    c.flag_wait_local(self.sent[h], &mut |v| v.0 >= seq)?;
                }
                Some(p) => {
                    let dl = c.now() + p;
                    c.flag_wait_local_until(self.sent[h], &mut |v| v.0 >= seq, dl)?;
                }
            }
            let len = (dst.len - off).min(chunk_bytes);
            if len > 0 {
                c.get_to_mem(MpbAddr::new(me, self.halves[h].first_line), dst.slice(off, len))?;
            }
            c.flag_put(MpbAddr::new(peer, self.ready[h]), FlagValue(seq))?;
            off += len;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sendrecv::RcceComm;
    use scc_hal::{RmaExt, Time};
    use scc_sim::{run_spmd, SimConfig};

    fn cfg(n: usize) -> SimConfig {
        SimConfig { num_cores: n, mem_bytes: 1 << 20, ..SimConfig::default() }
    }

    fn payload(len: usize) -> Vec<u8> {
        (0..len).map(|i| (i as u8).wrapping_mul(59).wrapping_add(11)).collect()
    }

    fn round_trip(len: usize, half_lines: usize) {
        let msg = payload(len);
        let expect = msg.clone();
        let rep = run_spmd(&cfg(2), move |c| -> RmaResult<Option<Vec<u8>>> {
            let mut alloc = MpbAllocator::new();
            let mut pipe = Pipe::between(&mut alloc, CoreId(0), CoreId(1), half_lines).unwrap();
            let r = MemRange::new(0, msg.len());
            if c.core().index() == 0 {
                c.mem_write(0, &msg)?;
                pipe.send(c, r)?;
                Ok(None)
            } else {
                pipe.recv(c, r)?;
                Ok(Some(c.mem_to_vec(r)?))
            }
        })
        .unwrap();
        assert_eq!(rep.results[1].as_ref().unwrap().as_ref().unwrap(), &expect);
    }

    #[test]
    fn small_and_odd_sizes() {
        round_trip(1, 96);
        round_trip(96 * 32, 96);
        round_trip(96 * 32 + 1, 96);
        round_trip(10_000, 96);
        round_trip(777, 3);
    }

    #[test]
    fn repeated_messages_share_the_pipe() {
        let rep = run_spmd(&cfg(2), |c| -> RmaResult<bool> {
            let mut alloc = MpbAllocator::new();
            let mut pipe = Pipe::between(&mut alloc, CoreId(0), CoreId(1), 16).unwrap();
            let mut ok = true;
            for round in 0..6u8 {
                let len = 100 + round as usize * 997;
                let msg: Vec<u8> = (0..len).map(|i| (i as u8) ^ round).collect();
                let r = MemRange::new(0, len);
                if c.core().index() == round as usize % 2 {
                    c.mem_write(0, &msg)?;
                    pipe.send(c, r)?;
                } else {
                    pipe.recv(c, r)?;
                    ok &= c.mem_to_vec(r)? == msg;
                }
            }
            Ok(ok)
        })
        .unwrap();
        assert!(rep.results.into_iter().all(|r| r.unwrap()));
    }

    /// The point of the pipe: for large transfers it clearly beats the
    /// blocking RCCE send/receive because put and get overlap.
    #[test]
    fn pipelining_beats_blocking_sendrecv() {
        let len = 40 * 96 * 32;
        let time_with = |pipelined: bool| -> Time {
            let rep = run_spmd(&cfg(2), move |c| -> RmaResult<()> {
                let mut alloc = MpbAllocator::new();
                let r = MemRange::new(0, len);
                if pipelined {
                    let mut pipe = Pipe::between(&mut alloc, CoreId(0), CoreId(1), 96).unwrap();
                    if c.core().index() == 0 {
                        c.mem_write(0, &payload(len))?;
                        pipe.send(c, r)?;
                    } else {
                        pipe.recv(c, r)?;
                    }
                } else {
                    let comm = RcceComm::new(&mut alloc, 2).unwrap();
                    if c.core().index() == 0 {
                        c.mem_write(0, &payload(len))?;
                        comm.send(c, CoreId(1), r)?;
                    } else {
                        comm.recv(c, CoreId(0), r)?;
                    }
                }
                Ok(())
            })
            .unwrap();
            rep.makespan
        };
        let piped = time_with(true);
        let blocking = time_with(false);
        assert!(
            piped.as_ns_f64() < 0.75 * blocking.as_ns_f64(),
            "pipelined {piped} must clearly beat blocking {blocking}"
        );
    }

    #[test]
    fn endpoints_are_enforced() {
        let rep = run_spmd(&cfg(3), |c| -> RmaResult<bool> {
            let mut alloc = MpbAllocator::new();
            let mut pipe = Pipe::between(&mut alloc, CoreId(0), CoreId(1), 8).unwrap();
            if c.core().index() == 2 {
                let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let _ = pipe.send(c, MemRange::new(0, 8));
                }));
                return Ok(r.is_err());
            }
            Ok(true)
        })
        .unwrap();
        assert!(rep.results.into_iter().all(|r| r.unwrap()));
    }
}
