//! Micro-architecture parameters of the simulated chip.
//!
//! The analytical model of the paper (Table 1) describes *end-to-end*
//! costs; the simulator decomposes them into micro-parameters so that
//! contention can emerge mechanically from resource occupancy:
//!
//! ```text
//! C^mpb_r(d) = o_core_mpb_read  + d·Lhop + mpb_port_read  + d·Lhop
//! C^mpb_w(d) = o_core_mpb_write + d·Lhop + mpb_port_write + d·Lhop
//! C^mem_r(d) = o_core_mem_read  + d·Lhop + mc_read        + d·Lhop
//! C^mem_w(d) = o_core_mem_write + d·Lhop + mc_write       + d·Lhop
//! ```
//!
//! The defaults are chosen so a contention-free run reproduces Table 1
//! exactly (`o_core_* + service = o_*`), while the *service* components
//! make the shared resources (MPB ports, mesh routers, memory
//! controllers) saturate at realistic offered loads:
//!
//! * MPB port read service of 6 ns ⇒ with a per-line read cycle of
//!   ~0.17 µs a single MPB sustains ~28 concurrent getters before
//!   queueing — the paper's Figure 4a shows no measurable contention up
//!   to 24 accessors and clear contention at 48;
//! * port write service of 12 ns ⇒ the same knee for 1-line puts sits
//!   around 32 writers (Figure 4b);
//! * router occupancy of 1 ns ⇒ the mesh never saturates under
//!   core-driven load (Section 3.3: "the network cannot be a source of
//!   contention"), yet the mechanism exists and is measured;
//! * controller service of 8 ns ⇒ 12 cores per controller stay well
//!   under saturation ("no measurable performance degradation even when
//!   the 48 cores are accessing their private portion ... at the same
//!   time").

use scc_hal::Time;
use scc_obs::CostClass;

/// Timing parameters of the simulated SCC. All fields are per cache
/// line except the four per-operation software overheads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SimParams {
    /// Time for a packet head to traverse one router (`L_hop`).
    pub l_hop: Time,
    /// How long a packet occupies a router before the next one may
    /// follow (virtual cut-through pipelining).
    pub router_occupancy: Time,

    /// MPB port service time for a line read (request + response turn).
    pub mpb_port_read: Time,
    /// MPB port service time for a line write (deposit + acknowledge).
    pub mpb_port_write: Time,
    /// Memory-controller service per line read.
    pub mc_read: Time,
    /// Memory-controller service per line write.
    pub mc_write: Time,

    /// Core-side per-line overhead of an MPB read (word-by-word copy
    /// into registers through the L1 miss path; see paper footnote 3).
    pub o_core_mpb_read: Time,
    /// Core-side per-line overhead of an MPB write.
    pub o_core_mpb_write: Time,
    /// Core-side per-line overhead of an off-chip read.
    pub o_core_mem_read: Time,
    /// Core-side per-line overhead of an off-chip write.
    pub o_core_mem_write: Time,

    /// Fixed software overhead of `put` between MPBs (`o^mpb_put`).
    pub o_put_mpb: Time,
    /// Fixed software overhead of `get` between MPBs (`o^mpb_get`).
    pub o_get_mpb: Time,
    /// Fixed software overhead of `put` sourced from off-chip memory.
    pub o_put_mem: Time,
    /// Fixed software overhead of `get` destined to off-chip memory.
    pub o_get_mem: Time,
}

impl Default for SimParams {
    fn default() -> Self {
        let ns = Time::from_ns;
        SimParams {
            l_hop: ns(5),
            router_occupancy: ns(1),
            mpb_port_read: ns(10),
            mpb_port_write: ns(18),
            mc_read: ns(8),
            mc_write: ns(8),
            // o^mpb = 0.126 µs split between core and port.
            o_core_mpb_read: ns(116),
            o_core_mpb_write: ns(108),
            // o^mem_r = 0.208 µs, o^mem_w = 0.461 µs.
            o_core_mem_read: ns(200),
            o_core_mem_write: ns(453),
            // Table 1 op overheads, verbatim.
            o_put_mpb: ns(69),
            o_get_mpb: ns(330),
            o_put_mem: ns(190),
            o_get_mem: ns(95),
        }
    }
}

impl SimParams {
    /// The end-to-end `o^mpb` this parameter set induces for reads
    /// (must equal Table 1's 0.126 µs with defaults).
    pub fn o_mpb_read_total(&self) -> Time {
        self.o_core_mpb_read + self.mpb_port_read
    }

    /// End-to-end `o^mpb` for writes.
    pub fn o_mpb_write_total(&self) -> Time {
        self.o_core_mpb_write + self.mpb_port_write
    }

    /// End-to-end `o^mem_r`.
    pub fn o_mem_read_total(&self) -> Time {
        self.o_core_mem_read + self.mc_read
    }

    /// End-to-end `o^mem_w`.
    pub fn o_mem_write_total(&self) -> Time {
        self.o_core_mem_write + self.mc_write
    }

    /// A copy of these parameters with one [`CostClass`] uniformly
    /// scaled by `factor` — the simulator-side hook of the causal
    /// what-if profiler (`scc_obs::whatif`). Scaling is applied to
    /// every micro-parameter in the class and rounded to the nearest
    /// picosecond, so `scaled(c, 1.0)` is the identity and results stay
    /// exactly reproducible.
    pub fn scaled(&self, class: CostClass, factor: f64) -> SimParams {
        assert!(factor.is_finite() && factor >= 0.0, "scale factor must be finite and >= 0");
        let s = |t: Time| Time::from_ps((t.as_ps() as f64 * factor).round() as u64);
        let mut p = *self;
        match class {
            CostClass::PortService => {
                p.mpb_port_read = s(p.mpb_port_read);
                p.mpb_port_write = s(p.mpb_port_write);
            }
            CostClass::RouterHop => p.l_hop = s(p.l_hop),
            CostClass::McService => {
                p.mc_read = s(p.mc_read);
                p.mc_write = s(p.mc_write);
            }
            CostClass::CoreOverhead => {
                p.o_core_mpb_read = s(p.o_core_mpb_read);
                p.o_core_mpb_write = s(p.o_core_mpb_write);
                p.o_core_mem_read = s(p.o_core_mem_read);
                p.o_core_mem_write = s(p.o_core_mem_write);
                p.o_put_mpb = s(p.o_put_mpb);
                p.o_get_mpb = s(p.o_get_mpb);
                p.o_put_mem = s(p.o_put_mem);
                p.o_get_mem = s(p.o_get_mem);
            }
            CostClass::LinkBandwidth => p.router_occupancy = s(p.router_occupancy),
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_recompose_table1() {
        let p = SimParams::default();
        assert_eq!(p.o_mpb_read_total(), Time::from_ns(126));
        assert_eq!(p.o_mpb_write_total(), Time::from_ns(126));
        assert_eq!(p.o_mem_read_total(), Time::from_ns(208));
        assert_eq!(p.o_mem_write_total(), Time::from_ns(461));
        assert_eq!(p.l_hop, Time::from_ns(5));
    }

    #[test]
    fn port_knee_sits_between_24_and_48_getters() {
        // Closed-loop utilization argument from the module docs: the
        // 128-CL concurrent-get experiment must saturate the port
        // somewhere past 24 but before 48 concurrent accessors. The
        // per-line cycle of a getter is C^mpb_r(d) + C^mpb_w(1) at an
        // average distance of d ≈ 5 hops; each such cycle presents one
        // read to the contended port.
        let p = SimParams::default();
        let cycle = p.o_core_mpb_read + p.mpb_port_read + p.l_hop * 10 // C_r(5)
            + p.o_core_mpb_write + p.mpb_port_write + p.l_hop * 2; // C_w(1)
        let knee = cycle.as_ns_f64() / p.mpb_port_read.as_ns_f64();
        assert!(
            (24.0..48.0).contains(&knee),
            "contention knee at {knee} concurrent getters is outside the Fig.4 band"
        );
    }

    #[test]
    fn scaled_touches_exactly_its_class() {
        let p = SimParams::default();
        // Identity at factor 1.0 for every class.
        for c in CostClass::ALL {
            assert_eq!(p.scaled(c, 1.0), p, "{c}");
        }
        let port = p.scaled(CostClass::PortService, 1.5);
        assert_eq!(port.mpb_port_read, Time::from_ns(15));
        assert_eq!(port.mpb_port_write, Time::from_ns(27));
        assert_eq!(
            SimParams { mpb_port_read: p.mpb_port_read, mpb_port_write: p.mpb_port_write, ..port },
            p
        );

        let hop = p.scaled(CostClass::RouterHop, 0.5);
        assert_eq!(hop.l_hop, Time::from_ns(2) + Time::from_ps(500));
        assert_eq!(SimParams { l_hop: p.l_hop, ..hop }, p);

        let mc = p.scaled(CostClass::McService, 2.0);
        assert_eq!(mc.mc_read, Time::from_ns(16));
        assert_eq!(SimParams { mc_read: p.mc_read, mc_write: p.mc_write, ..mc }, p);

        let bw = p.scaled(CostClass::LinkBandwidth, 3.0);
        assert_eq!(bw.router_occupancy, Time::from_ns(3));
        assert_eq!(SimParams { router_occupancy: p.router_occupancy, ..bw }, p);

        // Core overhead scales software costs but no hardware service.
        let o = p.scaled(CostClass::CoreOverhead, 1.1);
        assert_eq!(o.o_put_mpb, Time::from_ps(75_900));
        assert_eq!(o.mpb_port_read, p.mpb_port_read);
        assert_eq!(o.l_hop, p.l_hop);
        assert!(o.o_core_mem_write > p.o_core_mem_write);
    }

    #[test]
    fn put_knee_sits_between_20_and_48_writers() {
        // Same argument for the 1-CL concurrent-put experiment (Fig 4b):
        // per put the writer spends o_put + C_r(1) + C_w(d) and presents
        // one write to the contended port.
        let p = SimParams::default();
        let cycle = p.o_put_mpb
            + p.o_core_mpb_read + p.mpb_port_read + p.l_hop * 2 // C_r(1)
            + p.o_core_mpb_write + p.mpb_port_write + p.l_hop * 10; // C_w(5)
        let knee = cycle.as_ns_f64() / p.mpb_port_write.as_ns_f64();
        assert!(
            (20.0..48.0).contains(&knee),
            "put contention knee at {knee} concurrent writers is outside the Fig.4 band"
        );
    }
}
