//! Low-overhead thread handoff primitives for the engine: a one-value
//! rendezvous [`Slot`] replacing the `std::sync::mpsc` channels, and a
//! process-wide pool of reusable core threads replacing per-run
//! spawning.
//!
//! The engine's communication pattern is strict alternation — exactly
//! one of {scheduler, core *i*} is runnable at any instant, and each
//! side produces at most one message before blocking on the other — so
//! a single-value slot per direction is a complete channel. Compared
//! with `mpsc` it has no internal queue, no per-message allocation, and
//! an explicit close state that poisons both directions on teardown.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};

/// Error returned by slot operations after [`Slot::close`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Closed;

struct SlotState<T> {
    value: Option<T>,
    closed: bool,
}

/// A single-value rendezvous cell: `put` parks while full, `take`
/// parks while empty. `close` refuses every later `put` but lets
/// `take` drain an already-deposited value first — the same semantics
/// as dropping a channel sender, which matters on teardown: a core's
/// final `Finish` request must survive the core closing its slot a
/// moment later.
pub struct Slot<T> {
    state: Mutex<SlotState<T>>,
    cv: Condvar,
}

impl<T> Default for Slot<T> {
    fn default() -> Self {
        Slot { state: Mutex::new(SlotState { value: None, closed: false }), cv: Condvar::new() }
    }
}

impl<T> Slot<T> {
    pub fn new() -> Slot<T> {
        Slot::default()
    }

    fn lock(&self) -> MutexGuard<'_, SlotState<T>> {
        // A panic cannot happen while the state lock is held (no user
        // code runs under it), but recover instead of cascading anyway.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Deposit a value, waiting for the slot to drain first if needed
    /// (never happens under the engine's alternation protocol).
    pub fn put(&self, value: T) -> Result<(), Closed> {
        let mut g = self.lock();
        loop {
            if g.closed {
                return Err(Closed);
            }
            if g.value.is_none() {
                g.value = Some(value);
                self.cv.notify_all();
                return Ok(());
            }
            g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Deposit a value only if the slot is empty and open; never
    /// blocks. Used on fire-and-forget paths (core finish) where the
    /// peer may be gone.
    pub fn try_put(&self, value: T) -> bool {
        let mut g = self.lock();
        if !g.closed && g.value.is_none() {
            g.value = Some(value);
            self.cv.notify_all();
            true
        } else {
            false
        }
    }

    /// Remove the value, blocking until one arrives or the slot closes.
    /// A value deposited before the close is still delivered.
    pub fn take(&self) -> Result<T, Closed> {
        let mut g = self.lock();
        loop {
            if let Some(v) = g.value.take() {
                self.cv.notify_all();
                return Ok(v);
            }
            if g.closed {
                return Err(Closed);
            }
            g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Shut the slot: every current and future `put` fails, and `take`
    /// fails once the (at most one) already-deposited value is drained.
    pub fn close(&self) {
        self.lock().closed = true;
        self.cv.notify_all();
    }
}

// ---- the park-based fast rendezvous ------------------------------------

struct ParkState<T> {
    value: Option<T>,
    closed: bool,
    waiter: Option<std::thread::Thread>,
}

/// A single-value rendezvous like [`Slot`], but the consumer blocks in
/// `thread::park` instead of a condvar wait — the same mechanism
/// `std::sync::mpsc` uses, and measurably cheaper per wake on this
/// engine's hot path (one grant handoff per cross-core baton transfer).
///
/// Unlike [`Slot`], `put` never blocks: the engine's strict alternation
/// guarantees at most one outstanding value, so a full cell is a
/// protocol violation (debug-asserted). Close semantics match `Slot`:
/// a value deposited before `close` is still drained by `take`.
pub struct ParkCell<T> {
    state: Mutex<ParkState<T>>,
}

impl<T> Default for ParkCell<T> {
    fn default() -> Self {
        ParkCell { state: Mutex::new(ParkState { value: None, closed: false, waiter: None }) }
    }
}

impl<T> ParkCell<T> {
    pub fn new() -> ParkCell<T> {
        ParkCell::default()
    }

    fn lock(&self) -> MutexGuard<'_, ParkState<T>> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Deposit a value and wake the (at most one) parked consumer.
    pub fn put(&self, value: T) -> Result<(), Closed> {
        let waiter = {
            let mut g = self.lock();
            if g.closed {
                return Err(Closed);
            }
            debug_assert!(g.value.is_none(), "rendezvous protocol violated: cell already full");
            g.value = Some(value);
            g.waiter.take()
        };
        if let Some(w) = waiter {
            w.unpark();
        }
        Ok(())
    }

    /// Remove the value, parking until one arrives or the cell closes.
    /// A value deposited before the close is still delivered.
    pub fn take(&self) -> Result<T, Closed> {
        loop {
            {
                let mut g = self.lock();
                if let Some(v) = g.value.take() {
                    return Ok(v);
                }
                if g.closed {
                    return Err(Closed);
                }
                g.waiter = Some(std::thread::current());
            }
            // A stale unpark token makes this return immediately; the
            // loop re-checks under the lock, so that is merely spurious.
            std::thread::park();
        }
    }

    /// Shut the cell: every later `put` fails; `take` fails once the
    /// already-deposited value (if any) is drained.
    pub fn close(&self) {
        let waiter = {
            let mut g = self.lock();
            g.closed = true;
            g.waiter.take()
        };
        if let Some(w) = waiter {
            w.unpark();
        }
    }
}

// ---- the core-thread pool ----------------------------------------------

/// A unit of work shipped to a pooled thread. Lifetime-erased: the
/// submitter guarantees (by waiting on [`PooledWorker::wait`]) that
/// every borrow inside outlives the execution.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// Payload of a panic that escaped a job.
pub type PanicPayload = Box<dyn std::any::Any + Send + 'static>;

/// Handle to one parked OS thread. Obtained from [`checkout`]; must be
/// returned with [`checkin`] (or dropped, retiring the thread).
pub struct PooledWorker {
    job: Arc<ParkCell<Job>>,
    done: Arc<ParkCell<Result<(), PanicPayload>>>,
}

static SPAWNED: AtomicU64 = AtomicU64::new(0);
static REUSED: AtomicU64 = AtomicU64::new(0);
static RETIRED: AtomicU64 = AtomicU64::new(0);
static PEAK_POOLED: AtomicU64 = AtomicU64::new(0);

impl PooledWorker {
    fn spawn() -> PooledWorker {
        SPAWNED.fetch_add(1, Ordering::Relaxed);
        let job = Arc::new(ParkCell::<Job>::new());
        let done = Arc::new(ParkCell::new());
        let (jobs, dones) = (Arc::clone(&job), Arc::clone(&done));
        std::thread::Builder::new()
            .name("scc-sim-core".into())
            .spawn(move || {
                while let Ok(job) = jobs.take() {
                    let outcome = catch_unwind(AssertUnwindSafe(job));
                    if dones.put(outcome).is_err() {
                        break;
                    }
                }
            })
            .expect("spawn pooled sim core thread");
        PooledWorker { job, done }
    }

    /// Hand the worker a job. It runs immediately; await completion
    /// with [`wait`](Self::wait) before invalidating any borrow the job
    /// captured.
    pub fn submit(&self, job: Job) {
        self.job.put(job).expect("pooled worker retired while pool handle live");
    }

    /// Block until the submitted job finishes; a panic inside the job
    /// is returned for the caller to resume.
    pub fn wait(&self) -> Result<(), PanicPayload> {
        self.done.take().expect("pooled worker retired while pool handle live")
    }
}

impl Drop for PooledWorker {
    fn drop(&mut self) {
        // Retire the thread instead of leaking a parked one forever.
        self.job.close();
    }
}

fn free_list() -> &'static Mutex<Vec<PooledWorker>> {
    static POOL: OnceLock<Mutex<Vec<PooledWorker>>> = OnceLock::new();
    POOL.get_or_init(|| Mutex::new(Vec::new()))
}

/// Maximum idle workers kept parked between runs. One full-chip run
/// plus one concurrent half-chip run stay warm; anything beyond that —
/// the transient high-water mark of a wide parallel sweep — is retired
/// at checkin rather than parked forever. Override with
/// `SCC_SIM_POOL_CAP` (0 disables pooling entirely).
pub fn pool_cap() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| {
        std::env::var("SCC_SIM_POOL_CAP").ok().and_then(|v| v.parse().ok()).unwrap_or(72)
    })
}

/// Take `n` idle workers from the process-wide pool, spawning only the
/// shortfall. Concurrent checkouts receive disjoint workers.
pub fn checkout(n: usize) -> Vec<PooledWorker> {
    let mut workers = {
        let mut free = free_list().lock().unwrap_or_else(|e| e.into_inner());
        let keep = free.len().saturating_sub(n);
        free.split_off(keep)
    };
    REUSED.fetch_add(workers.len() as u64, Ordering::Relaxed);
    while workers.len() < n {
        workers.push(PooledWorker::spawn());
    }
    workers
}

/// Return workers to the pool for the next `run_spmd`. The free list is
/// capped at [`pool_cap`]; surplus workers are retired (their threads
/// exit) so a burst of concurrent sims does not pin threads for the
/// rest of the process lifetime.
pub fn checkin(mut workers: Vec<PooledWorker>) {
    let surplus = {
        let mut free = free_list().lock().unwrap_or_else(|e| e.into_inner());
        let room = pool_cap().saturating_sub(free.len());
        let surplus = workers.split_off(workers.len().min(room));
        free.append(&mut workers);
        PEAK_POOLED.fetch_max(free.len() as u64, Ordering::Relaxed);
        surplus
    };
    RETIRED.fetch_add(surplus.len() as u64, Ordering::Relaxed);
    drop(surplus); // each Drop closes the job cell; the thread exits
}

/// Total worker threads ever spawned (counts pool misses; a sweep of
/// hundreds of runs should stay at ~48).
pub fn workers_spawned() -> u64 {
    SPAWNED.load(Ordering::Relaxed)
}

/// Lifetime pool counters, reported in `BENCH_engine.json`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads ever spawned (pool misses).
    pub spawned: u64,
    /// Checkout requests satisfied from the free list.
    pub reused: u64,
    /// Workers retired at checkin because the free list was at cap.
    pub retired: u64,
    /// High-water mark of parked idle workers.
    pub peak_pooled: u64,
    /// The free-list cap in effect ([`pool_cap`]).
    pub cap: u64,
}

/// Read the current pool counters.
pub fn pool_stats() -> PoolStats {
    PoolStats {
        spawned: SPAWNED.load(Ordering::Relaxed),
        reused: REUSED.load(Ordering::Relaxed),
        retired: RETIRED.load(Ordering::Relaxed),
        peak_pooled: PEAK_POOLED.load(Ordering::Relaxed),
        cap: pool_cap() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn slot_roundtrip_and_close() {
        let s: Slot<u32> = Slot::new();
        assert!(s.put(7).is_ok());
        assert_eq!(s.take(), Ok(7));
        s.close();
        assert_eq!(s.put(8), Err(Closed));
        assert_eq!(s.take(), Err(Closed));
        assert!(!s.try_put(9));
    }

    #[test]
    fn close_drains_a_deposited_value_first() {
        let s: Slot<u32> = Slot::new();
        assert!(s.put(7).is_ok());
        s.close();
        assert_eq!(s.take(), Ok(7), "value deposited before close must survive it");
        assert_eq!(s.take(), Err(Closed));
    }

    #[test]
    fn try_put_never_blocks_on_full() {
        let s: Slot<u32> = Slot::new();
        assert!(s.try_put(1));
        assert!(!s.try_put(2));
        assert_eq!(s.take(), Ok(1));
    }

    #[test]
    fn slot_hands_off_across_threads() {
        let s = Arc::new(Slot::<u64>::new());
        let s2 = Arc::clone(&s);
        let t = std::thread::spawn(move || {
            let mut sum = 0;
            for _ in 0..100 {
                sum += s2.take().unwrap();
            }
            sum
        });
        for i in 0..100u64 {
            s.put(i).unwrap();
        }
        assert_eq!(t.join().unwrap(), (0..100).sum());
    }

    #[test]
    fn parkcell_roundtrip_close_and_drain() {
        let c: ParkCell<u32> = ParkCell::new();
        assert!(c.put(7).is_ok());
        assert_eq!(c.take(), Ok(7));
        assert!(c.put(8).is_ok());
        c.close();
        assert_eq!(c.take(), Ok(8), "value deposited before close must survive it");
        assert_eq!(c.take(), Err(Closed));
        assert_eq!(c.put(9), Err(Closed));
    }

    #[test]
    fn parkcell_hands_off_across_threads() {
        let a = Arc::new(ParkCell::<u64>::new());
        let b = Arc::new(ParkCell::<u64>::new());
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t = std::thread::spawn(move || {
            let mut sum = 0;
            for _ in 0..100 {
                sum += a2.take().unwrap();
                b2.put(1).unwrap();
            }
            sum
        });
        for i in 0..100u64 {
            a.put(i).unwrap();
            b.take().unwrap();
        }
        assert_eq!(t.join().unwrap(), (0..100).sum());
    }

    #[test]
    fn pool_reuses_workers_and_propagates_panics() {
        static RUNS: AtomicUsize = AtomicUsize::new(0);
        let before = workers_spawned();
        for round in 0..3 {
            let ws = checkout(2);
            for w in &ws {
                w.submit(Box::new(|| {
                    RUNS.fetch_add(1, Ordering::Relaxed);
                }));
            }
            for w in &ws {
                w.wait().unwrap();
            }
            checkin(ws);
            if round == 0 {
                // Later rounds must not spawn beyond what the first took
                // (other tests may legitimately grow the pool in parallel,
                // so only assert on our own reuse via the run counter).
            }
        }
        assert_eq!(RUNS.load(Ordering::Relaxed), 6);
        assert!(workers_spawned() >= before);

        // A panicking job surfaces through wait() and the worker survives.
        let ws = checkout(1);
        ws[0].submit(Box::new(|| panic!("job boom")));
        let p = ws[0].wait().expect_err("panic must propagate");
        let msg = p.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "job boom");
        ws[0].submit(Box::new(|| ()));
        ws[0].wait().unwrap();
        checkin(ws);
    }

    #[test]
    fn checkin_retires_workers_beyond_the_cap() {
        let cap = pool_cap();
        let before = pool_stats();
        // A burst wider than the cap: however full the free list is
        // (other tests run in parallel), room ≤ cap, so at least the
        // overshoot must be retired rather than parked.
        let ws = checkout(cap + 4);
        for w in &ws {
            w.submit(Box::new(|| ()));
        }
        for w in &ws {
            w.wait().unwrap();
        }
        checkin(ws);
        let after = pool_stats();
        assert!(
            after.retired >= before.retired + 4,
            "checkin of cap+4 workers must retire ≥ 4 (retired {} -> {})",
            before.retired,
            after.retired
        );
        assert!(after.peak_pooled <= cap as u64, "free list may never exceed the cap");
        assert_eq!(after.cap, cap as u64);
    }
}
