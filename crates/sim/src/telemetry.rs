//! Process-wide cumulative engine counters.
//!
//! Every successful [`crate::run_spmd`] adds its [`SimStats`] engine
//! counters to a set of global atomics (one relaxed add per *run*, not
//! per event — invisible next to the run itself). Harnesses that drive
//! many simulations through helpers which do not surface per-run stats
//! (`measure_bcast`, `measure_p2p`, …) can still attribute host-side
//! engine work to each of their phases by snapshotting before and
//! after: the `observatory` binary uses this for its per-experiment
//! self-metrics (events retired, heap operations, events/sec).
//!
//! Virtual-time results are unaffected — these counters observe the
//! engine, they never feed back into it.

use crate::chip::SimStats;
use std::sync::atomic::{AtomicU64, Ordering};

static RUNS: AtomicU64 = AtomicU64::new(0);
static EVENTS: AtomicU64 = AtomicU64::new(0);
static OPS: AtomicU64 = AtomicU64::new(0);
static HEAP_PUSHES: AtomicU64 = AtomicU64::new(0);
static COALESCED_STEPS: AtomicU64 = AtomicU64::new(0);
static HANDOFFS: AtomicU64 = AtomicU64::new(0);

/// Totals accumulated since process start (or the difference of two
/// snapshots, see [`EngineTotals::since`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineTotals {
    /// Completed `run_spmd` invocations.
    pub runs: u64,
    /// Events retired (popped + coalesced), summed over runs.
    pub events: u64,
    /// Timed RMA operations simulated.
    pub ops: u64,
    /// Events pushed onto the scheduler heap.
    pub heap_pushes: u64,
    /// Heap round-trips elided by the coalesced fast path.
    pub coalesced_steps: u64,
    /// Real thread switches (baton handoffs).
    pub handoffs: u64,
}

impl EngineTotals {
    /// Counter deltas between an `earlier` snapshot and this one.
    pub fn since(&self, earlier: &EngineTotals) -> EngineTotals {
        EngineTotals {
            runs: self.runs - earlier.runs,
            events: self.events - earlier.events,
            ops: self.ops - earlier.ops,
            heap_pushes: self.heap_pushes - earlier.heap_pushes,
            coalesced_steps: self.coalesced_steps - earlier.coalesced_steps,
            handoffs: self.handoffs - earlier.handoffs,
        }
    }
}

/// Read the current process-wide totals.
pub fn snapshot() -> EngineTotals {
    EngineTotals {
        runs: RUNS.load(Ordering::Relaxed),
        events: EVENTS.load(Ordering::Relaxed),
        ops: OPS.load(Ordering::Relaxed),
        heap_pushes: HEAP_PUSHES.load(Ordering::Relaxed),
        coalesced_steps: COALESCED_STEPS.load(Ordering::Relaxed),
        handoffs: HANDOFFS.load(Ordering::Relaxed),
    }
}

/// Fold one successful run's counters into the totals.
pub(crate) fn add_run(stats: &SimStats) {
    RUNS.fetch_add(1, Ordering::Relaxed);
    EVENTS.fetch_add(stats.events, Ordering::Relaxed);
    OPS.fetch_add(stats.ops, Ordering::Relaxed);
    HEAP_PUSHES.fetch_add(stats.heap_pushes, Ordering::Relaxed);
    COALESCED_STEPS.fetch_add(stats.coalesced_steps, Ordering::Relaxed);
    HANDOFFS.fetch_add(stats.handoffs, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_deltas_track_a_run() {
        let before = snapshot();
        let cfg = crate::SimConfig { num_cores: 2, mem_bytes: 4096, ..Default::default() };
        let rep = crate::run_spmd(&cfg, |c| {
            use scc_hal::{MpbAddr, Rma};
            if c.core().index() == 0 {
                c.put_from_mpb(0, MpbAddr::new(scc_hal::CoreId(1), 0), 4).unwrap();
            }
        })
        .unwrap();
        let delta = snapshot().since(&before);
        assert!(delta.runs >= 1);
        assert!(delta.events >= rep.stats.events);
        assert!(delta.ops >= rep.stats.ops);
    }
}
