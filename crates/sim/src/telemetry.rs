//! Engine counters: process-wide cumulative totals plus a per-thread
//! attribution scope.
//!
//! Every successful [`crate::run_spmd`] adds its [`SimStats`] engine
//! counters to a set of global atomics (one relaxed add per *run*, not
//! per event — invisible next to the run itself) **and** to a
//! thread-local accumulator owned by the calling thread.
//!
//! The global atomics are *process totals*: they observe everything the
//! process simulated, whoever drove it, and are what `engine_perf`
//! reports. They are useless for attribution the moment two harness
//! threads run simulations concurrently — a before/after snapshot then
//! charges one thread with the other's events. Harnesses that need
//! per-phase attribution (the `observatory`'s per-experiment
//! self-metrics) use the thread-local scope instead: call
//! [`take_thread`] to drain the calling thread's accumulated totals,
//! run the phase, call [`take_thread`] again — the delta is exactly the
//! engine work of the runs *this thread* completed, regardless of what
//! any other thread did in the meantime. `run_spmd` blocks its caller
//! for the whole run and folds the stats in before returning, so a
//! run's work is always charged to the thread that asked for it.
//!
//! The module also keeps an in-flight gauge: how many `run_spmd` calls
//! are currently executing, and the high-water mark since the last
//! [`reset_peak_in_flight`] — the "peak concurrent simulations" number
//! the parallel sweep runner reports.
//!
//! Virtual-time results are unaffected — these counters observe the
//! engine, they never feed back into it.

use crate::chip::SimStats;
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

static RUNS: AtomicU64 = AtomicU64::new(0);
static EVENTS: AtomicU64 = AtomicU64::new(0);
static OPS: AtomicU64 = AtomicU64::new(0);
static HEAP_PUSHES: AtomicU64 = AtomicU64::new(0);
static COALESCED_STEPS: AtomicU64 = AtomicU64::new(0);
static HANDOFFS: AtomicU64 = AtomicU64::new(0);

static IN_FLIGHT: AtomicU64 = AtomicU64::new(0);
static PEAK_IN_FLIGHT: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static THREAD_TOTALS: Cell<EngineTotals> = const { Cell::new(EngineTotals::ZERO) };
}

/// Totals accumulated since process start (or the difference of two
/// snapshots, see [`EngineTotals::since`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineTotals {
    /// Completed `run_spmd` invocations.
    pub runs: u64,
    /// Events retired (popped + coalesced), summed over runs.
    pub events: u64,
    /// Timed RMA operations simulated.
    pub ops: u64,
    /// Events pushed onto the scheduler heap.
    pub heap_pushes: u64,
    /// Heap round-trips elided by the coalesced fast path.
    pub coalesced_steps: u64,
    /// Real thread switches (baton handoffs).
    pub handoffs: u64,
}

impl EngineTotals {
    pub const ZERO: EngineTotals = EngineTotals {
        runs: 0,
        events: 0,
        ops: 0,
        heap_pushes: 0,
        coalesced_steps: 0,
        handoffs: 0,
    };

    /// Counter deltas between an `earlier` snapshot and this one.
    pub fn since(&self, earlier: &EngineTotals) -> EngineTotals {
        EngineTotals {
            runs: self.runs - earlier.runs,
            events: self.events - earlier.events,
            ops: self.ops - earlier.ops,
            heap_pushes: self.heap_pushes - earlier.heap_pushes,
            coalesced_steps: self.coalesced_steps - earlier.coalesced_steps,
            handoffs: self.handoffs - earlier.handoffs,
        }
    }

    /// Element-wise sum of two totals.
    pub fn plus(&self, other: &EngineTotals) -> EngineTotals {
        EngineTotals {
            runs: self.runs + other.runs,
            events: self.events + other.events,
            ops: self.ops + other.ops,
            heap_pushes: self.heap_pushes + other.heap_pushes,
            coalesced_steps: self.coalesced_steps + other.coalesced_steps,
            handoffs: self.handoffs + other.handoffs,
        }
    }

    fn of_run(stats: &SimStats) -> EngineTotals {
        EngineTotals {
            runs: 1,
            events: stats.events,
            ops: stats.ops,
            heap_pushes: stats.heap_pushes,
            coalesced_steps: stats.coalesced_steps,
            handoffs: stats.handoffs,
        }
    }
}

/// Read the current process-wide totals.
pub fn snapshot() -> EngineTotals {
    EngineTotals {
        runs: RUNS.load(Ordering::Relaxed),
        events: EVENTS.load(Ordering::Relaxed),
        ops: OPS.load(Ordering::Relaxed),
        heap_pushes: HEAP_PUSHES.load(Ordering::Relaxed),
        coalesced_steps: COALESCED_STEPS.load(Ordering::Relaxed),
        handoffs: HANDOFFS.load(Ordering::Relaxed),
    }
}

/// Drain the calling thread's accumulated totals: returns everything
/// the thread's completed `run_spmd` calls added since the previous
/// `take_thread` on this thread (or thread start) and resets the
/// accumulator to zero. Attribution-safe under any number of
/// concurrently simulating threads.
pub fn take_thread() -> EngineTotals {
    THREAD_TOTALS.with(|t| t.replace(EngineTotals::ZERO))
}

/// Fold one successful run's counters into the process totals and the
/// calling thread's attribution scope.
pub(crate) fn add_run(stats: &SimStats) {
    RUNS.fetch_add(1, Ordering::Relaxed);
    EVENTS.fetch_add(stats.events, Ordering::Relaxed);
    OPS.fetch_add(stats.ops, Ordering::Relaxed);
    HEAP_PUSHES.fetch_add(stats.heap_pushes, Ordering::Relaxed);
    COALESCED_STEPS.fetch_add(stats.coalesced_steps, Ordering::Relaxed);
    HANDOFFS.fetch_add(stats.handoffs, Ordering::Relaxed);
    THREAD_TOTALS.with(|t| t.set(t.get().plus(&EngineTotals::of_run(stats))));
}

/// RAII guard around one in-flight `run_spmd`; created at run start,
/// dropped on every exit path (success, error, panic unwind).
pub(crate) struct InFlightGuard;

impl InFlightGuard {
    pub(crate) fn enter() -> InFlightGuard {
        let now = IN_FLIGHT.fetch_add(1, Ordering::Relaxed) + 1;
        PEAK_IN_FLIGHT.fetch_max(now, Ordering::Relaxed);
        InFlightGuard
    }
}

impl Drop for InFlightGuard {
    fn drop(&mut self) {
        IN_FLIGHT.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Simulations executing right now.
pub fn in_flight() -> u64 {
    IN_FLIGHT.load(Ordering::Relaxed)
}

/// High-water mark of concurrently executing simulations since the
/// last [`reset_peak_in_flight`].
pub fn peak_in_flight() -> u64 {
    PEAK_IN_FLIGHT.load(Ordering::Relaxed)
}

/// Restart the peak gauge (e.g. at the start of a sweep) at the
/// current in-flight level.
pub fn reset_peak_in_flight() {
    PEAK_IN_FLIGHT.store(IN_FLIGHT.load(Ordering::Relaxed), Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_deltas_track_a_run() {
        let before = snapshot();
        let cfg = crate::SimConfig { num_cores: 2, mem_bytes: 4096, ..Default::default() };
        let rep = crate::run_spmd(&cfg, |c| {
            use scc_hal::{MpbAddr, Rma};
            if c.core().index() == 0 {
                c.put_from_mpb(0, MpbAddr::new(scc_hal::CoreId(1), 0), 4).unwrap();
            }
        })
        .unwrap();
        let delta = snapshot().since(&before);
        assert!(delta.runs >= 1);
        assert!(delta.events >= rep.stats.events);
        assert!(delta.ops >= rep.stats.ops);
    }

    #[test]
    fn thread_scope_charges_exactly_the_callers_runs() {
        let cfg = crate::SimConfig { num_cores: 2, mem_bytes: 4096, ..Default::default() };
        let prog = |c: &mut crate::SimCore| {
            use scc_hal::{MpbAddr, Rma};
            if c.core().index() == 0 {
                c.put_from_mpb(0, MpbAddr::new(scc_hal::CoreId(1), 0), 8).unwrap();
            }
        };
        let _ = take_thread();
        let rep = crate::run_spmd(&cfg, prog).unwrap();
        let mine = take_thread();
        assert_eq!(mine.runs, 1);
        assert_eq!(mine.events, rep.stats.events);
        assert_eq!(mine.ops, rep.stats.ops);
        assert_eq!(mine.heap_pushes, rep.stats.heap_pushes);
        // Drained: a second take sees nothing.
        assert_eq!(take_thread(), EngineTotals::ZERO);
    }

    #[test]
    fn peak_in_flight_tracks_at_least_one_run() {
        reset_peak_in_flight();
        let cfg = crate::SimConfig { num_cores: 1, mem_bytes: 4096, ..Default::default() };
        crate::run_spmd(&cfg, |_| ()).unwrap();
        assert!(peak_in_flight() >= 1);
    }
}
