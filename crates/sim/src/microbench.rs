//! Microbenchmarks on the simulated chip: the measurements behind
//! Table 1 and Figures 3 and 4 of the paper.
//!
//! Each function runs a small SPMD program on the simulator and returns
//! per-operation completion times measured with the virtual clock —
//! exactly how the authors measured the real chip with its global
//! counters, minus the noise (the simulator is deterministic).

use crate::engine::{run_spmd, SimConfig, SimError};
use scc_hal::{
    core_at_mpb_distance, core_with_mem_distance, CoreId, FlagValue, MemRange, MpbAddr, Rma,
    RmaExt, Time, CACHE_LINE_BYTES,
};

/// Which point-to-point operation a microbenchmark measures (the four
/// panels of Figure 3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum P2pKind {
    /// MPB → MPB `get` (distance = source MPB).
    GetMpb,
    /// MPB → MPB `put` (distance = destination MPB).
    PutMpb,
    /// MPB → private memory `get` (distance = memory controller).
    GetMem,
    /// private memory → MPB `put` (distance = memory controller).
    PutMem,
}

/// Completion time of one point-to-point operation of `lines` cache
/// lines at router distance `d`, measured contention-free on the
/// simulator (averaged over `reps` back-to-back repetitions).
pub fn measure_p2p(
    cfg: &SimConfig,
    kind: P2pKind,
    lines: usize,
    d: u32,
    reps: u32,
) -> Result<Time, SimError> {
    assert!(reps >= 1 && lines >= 1);
    let issuer = match kind {
        P2pKind::GetMpb | P2pKind::PutMpb => CoreId(0),
        // For memory ops the issuer determines the distance.
        P2pKind::GetMem | P2pKind::PutMem => core_with_mem_distance(d, cfg.num_cores)
            .unwrap_or_else(|| panic!("no core with memory distance {d}")),
    };
    let peer = match kind {
        P2pKind::GetMpb | P2pKind::PutMpb => core_at_mpb_distance(CoreId(0), d, cfg.num_cores)
            .unwrap_or_else(|| panic!("no core at MPB distance {d}")),
        // Memory panels keep the MPB side local (own MPB, d = 1).
        P2pKind::GetMem | P2pKind::PutMem => issuer,
    };
    let rep = run_spmd(cfg, move |c| -> Time {
        if c.core() != issuer {
            return Time::ZERO;
        }
        let t0 = c.now();
        for _ in 0..reps {
            match kind {
                P2pKind::GetMpb => c.get_to_mpb(MpbAddr::new(peer, 0), 0, lines).unwrap(),
                P2pKind::PutMpb => c.put_from_mpb(0, MpbAddr::new(peer, 0), lines).unwrap(),
                P2pKind::GetMem => c
                    .get_to_mem(MpbAddr::new(peer, 0), MemRange::new(0, lines * CACHE_LINE_BYTES))
                    .unwrap(),
                P2pKind::PutMem => c
                    .put_from_mem(MemRange::new(0, lines * CACHE_LINE_BYTES), MpbAddr::new(peer, 0))
                    .unwrap(),
            }
        }
        (c.now() - t0) / reps as u64
    })?;
    Ok(rep.results[issuer.index()])
}

/// Per-core completion times of the MPB-contention experiment of
/// Figure 4: `accessors` cores concurrently target core 0's MPB.
///
/// With `puts = false` every accessor repeatedly `get`s `lines` cache
/// lines from core 0's MPB (Fig. 4a uses 128); with `puts = true` every
/// accessor repeatedly `put`s `lines` cache lines into a private slot
/// of core 0's MPB (Fig. 4b uses 1). Returns the average per-op
/// completion time of each accessor.
pub fn measure_contention(
    cfg: &SimConfig,
    accessors: usize,
    lines: usize,
    puts: bool,
    reps: u32,
) -> Result<Vec<Time>, SimError> {
    assert!(accessors >= 1 && accessors < cfg.num_cores.max(2));
    // Accessors are the highest-numbered cores, so core 0 is never an
    // accessor of itself and tile 0's port serves only remote traffic.
    let first = cfg.num_cores - accessors;
    let rep = run_spmd(cfg, move |c| -> Option<Time> {
        let me = c.core().index();
        if me < first {
            // Victim and idle cores: core 0 just waits for a "finished"
            // count — no, it simply returns; its MPB needs no owner
            // cooperation for RMA.
            return None;
        }
        let slot = 1 + (me - first); // distinct line per putter
        let t0 = c.now();
        for _ in 0..reps {
            if puts {
                c.put_from_mpb(0, MpbAddr::new(CoreId(0), slot), lines).unwrap();
            } else {
                c.get_to_mpb(MpbAddr::new(CoreId(0), 0), 0, lines).unwrap();
            }
        }
        Some((c.now() - t0) / reps as u64)
    })?;
    Ok(rep.results.into_iter().flatten().collect())
}

/// The Section 3.3 link-stress experiment: all cores outside tiles
/// (2,2) and (3,2) repeatedly get `lines` cache lines across the mesh
/// so every packet crosses the (2,2)–(3,2) link, while a probe on tile
/// (2,2) measures a get from tile (3,2).
///
/// Returns `(loaded_probe, idle_probe)` — the probe's per-op completion
/// with and without background load. The paper found no measurable
/// difference.
pub fn measure_link_stress(
    cfg: &SimConfig,
    lines: usize,
    reps: u32,
) -> Result<(Time, Time), SimError> {
    let probe_core = probe_on_tile(2, 2);
    let target_core = probe_on_tile(3, 2);

    let probe_once = |background: bool| -> Result<Time, SimError> {
        let rep = run_spmd(cfg, move |c| -> Option<Time> {
            let me = c.core();
            let my_tile = me.tile();
            if me == probe_core {
                let t0 = c.now();
                for _ in 0..reps {
                    c.get_to_mpb(MpbAddr::new(target_core, 0), 0, lines).unwrap();
                }
                return Some((c.now() - t0) / reps as u64);
            }
            if !background || my_tile.y == 2 && (my_tile.x == 2 || my_tile.x == 3) {
                return None;
            }
            // Pull data from the opposite side of the mesh in row 2, so
            // X-Y routing drives every packet through (2,2)-(3,2).
            let opposite_x = if my_tile.x >= 3 { 0 } else { 5 };
            let victim = scc_hal::Tile::new(opposite_x, 2).cores()[0];
            for _ in 0..3 * reps {
                c.get_to_mpb(MpbAddr::new(victim, 0), 0, 128).unwrap();
            }
            None
        })?;
        Ok(rep.results[probe_core.index()].expect("probe must measure"))
    };

    let loaded = probe_once(true)?;
    let idle = probe_once(false)?;
    Ok((loaded, idle))
}

fn probe_on_tile(x: u8, y: u8) -> CoreId {
    scc_hal::Tile::new(x, y).cores()[0]
}

/// A tiny end-to-end smoke program used in tests and the quickstart:
/// core 0 stages a message and every other core pulls it directly
/// (star, no tree) — not the paper's algorithm, just a harness check.
pub fn naive_star_broadcast(cfg: &SimConfig, payload: &[u8]) -> Result<Vec<Vec<u8>>, SimError> {
    let len = payload.len();
    assert!(len > 0 && len <= 192 * CACHE_LINE_BYTES);
    let msg = payload.to_vec();
    let rep = run_spmd(cfg, move |c| -> Vec<u8> {
        if c.core().index() == 0 {
            c.mem_write(0, &msg).unwrap();
            c.put_from_mem(MemRange::new(0, len), MpbAddr::new(CoreId(0), 1)).unwrap();
            for peer in 1..c.num_cores() {
                c.flag_put(MpbAddr::new(CoreId(peer as u8), 0), FlagValue(1)).unwrap();
            }
            msg.clone()
        } else {
            c.flag_wait_eq(0, FlagValue(1)).unwrap();
            c.get_to_mem(MpbAddr::new(CoreId(0), 1), MemRange::new(0, len)).unwrap();
            c.mem_to_vec(MemRange::new(0, len)).unwrap()
        }
    })?;
    Ok(rep.results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::SimParams;

    fn cfg() -> SimConfig {
        SimConfig {
            num_cores: 48,
            mem_bytes: 64 * 1024,
            params: SimParams::default(),
            ..SimConfig::default()
        }
    }

    #[test]
    fn p2p_sweep_is_linear_in_distance() {
        let cfg = cfg();
        let c1 = measure_p2p(&cfg, P2pKind::GetMpb, 4, 1, 3).unwrap();
        let c5 = measure_p2p(&cfg, P2pKind::GetMpb, 4, 5, 3).unwrap();
        let c9 = measure_p2p(&cfg, P2pKind::GetMpb, 4, 9, 3).unwrap();
        // Equal spacing: the model is linear in d.
        assert_eq!(c5 - c1, c9 - c5);
        assert!(c9 > c1);
        // 30%-ish penalty from 1 to 9 hops for small transfers.
        let ratio = c9.as_ns_f64() / c1.as_ns_f64();
        assert!(ratio < 1.4, "distance penalty too large: {ratio}");
    }

    #[test]
    fn p2p_matches_closed_form_for_put_mem() {
        let cfg = cfg();
        // d = 2: core with memory distance 2 exists.
        let c = measure_p2p(&cfg, P2pKind::PutMem, 8, 2, 1).unwrap();
        // o_put_mem + 8·(C_mem_r(2) + C_mpb_w(1))
        let expect = 190 + 8 * ((208 + 20) + (126 + 10));
        assert_eq!(c, Time::from_ns(expect));
    }

    #[test]
    fn contention_appears_past_the_knee() {
        let cfg = cfg();
        let few = measure_contention(&cfg, 8, 128, false, 2).unwrap();
        let many = measure_contention(&cfg, 47, 128, false, 2).unwrap();
        let avg = |v: &[Time]| v.iter().map(|t| t.as_ns_f64()).sum::<f64>() / v.len() as f64;
        let (a_few, a_many) = (avg(&few), avg(&many));
        assert!(
            a_many > a_few * 1.25,
            "47 concurrent getters must be visibly slower: {a_few} vs {a_many}"
        );
        // And below the knee the slowdown is negligible (paper: up to 24
        // accessors show no measurable contention).
        let t24 = avg(&measure_contention(&cfg, 24, 128, false, 2).unwrap());
        assert!(
            t24 < a_few * 1.10,
            "24 accessors should be virtually contention-free: {a_few} vs {t24}"
        );
    }

    #[test]
    fn link_stress_shows_no_measurable_mesh_contention() {
        let cfg = cfg();
        let (loaded, idle) = measure_link_stress(&cfg, 16, 2).unwrap();
        let ratio = loaded.as_ns_f64() / idle.as_ns_f64();
        assert!(
            ratio < 1.05,
            "mesh must not be a source of contention (Section 3.3): ratio {ratio}"
        );
    }

    #[test]
    fn star_broadcast_delivers_payload_everywhere() {
        let cfg = SimConfig {
            num_cores: 8,
            mem_bytes: 16 * 1024,
            params: SimParams::default(),
            ..SimConfig::default()
        };
        let payload: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        let results = naive_star_broadcast(&cfg, &payload).unwrap();
        assert_eq!(results.len(), 8);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r, &payload, "core {i} got corrupted payload");
        }
    }
}
