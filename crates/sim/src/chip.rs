//! Shared state of the simulated chip: MPB and private-memory contents,
//! and the occupancy state of every contended resource (mesh routers,
//! MPB ports, memory controllers).
//!
//! Resource use follows a reservation discipline: each line transfer is
//! simulated at its start event in global time order and books capacity
//! on the routers, the target MPB port and (for off-chip transfers) the
//! memory controller it touches. Resources keep a short calendar of
//! outstanding reservations (see [`Calendar`]) so that packets arriving
//! in an idle gap are served there instead of queueing behind a
//! reservation made for a later instant.

use crate::params::SimParams;
use scc_hal::{CoreId, LinkDir, MemController, Tile, Time, MPB_BYTES_PER_CORE, NUM_LINK_DIRS};
use scc_obs::{ObsEvent, Recorder, ResourceId};

/// Reservation calendar of a single-server resource.
///
/// A scalar "next free" timestamp is not enough here: a multi-stage
/// operation simulated at event time `t` reserves resources at several
/// instants *after* `t`, and another operation simulated next — at the
/// same event time — may arrive at one of those resources *earlier*
/// than an existing reservation. The calendar keeps the outstanding
/// reservations as disjoint, start-sorted intervals and places each new
/// request into the earliest idle gap at or after its arrival, which is
/// exactly what the hardware's FIFO would have done.
#[derive(Debug, Default, Clone)]
pub struct Calendar {
    /// Disjoint, start-sorted intervals; the live ones are
    /// `slots[head..]`. Pruning advances `head` instead of shifting the
    /// vector; the dead prefix is compacted away once it grows past a
    /// small bound, so storage stays flat (no ring-buffer index math in
    /// the hot path) and amortized O(1) per reservation.
    slots: Vec<(Time, Time)>,
    head: usize,
}

impl Calendar {
    /// Reserve `service` time starting no earlier than `arrival`;
    /// returns the service start. `prune_before` must be a lower bound
    /// on every future arrival (the scheduler's current event time), so
    /// intervals ending before it can be dropped.
    #[inline]
    pub fn reserve(&mut self, arrival: Time, service: Time, prune_before: Time) -> Time {
        let mut head = self.head;
        while let Some(&(_, end)) = self.slots.get(head) {
            if end > prune_before {
                break;
            }
            head += 1;
        }
        self.head = head;
        // Events are processed in nondecreasing virtual time, so most
        // arrivals land at or after every outstanding reservation:
        // appending is the hot path, O(1).
        if let Some(&(_, last_end)) = self.slots.last() {
            if arrival < last_end && head < self.slots.len() {
                return self.reserve_in_gap(arrival, service);
            }
        }
        if head == self.slots.len() {
            self.slots.clear();
            self.head = 0;
        } else if head >= 64 {
            self.slots.drain(..head);
            self.head = 0;
        }
        self.slots.push((arrival, arrival + service));
        arrival
    }

    /// Slow path of [`reserve`](Self::reserve): the arrival conflicts
    /// with outstanding reservations; find the earliest idle gap at or
    /// after it. Intervals are disjoint and start-sorted (hence also
    /// end-sorted). Conflicts cluster at the tail — a packet's return
    /// trip books the same routers its forward trip just did — so scan
    /// backwards from the end; this is one or two well-predicted steps
    /// in practice, where a binary search would mispredict every probe.
    fn reserve_in_gap(&mut self, arrival: Time, service: Time) -> Time {
        // First interval that ends after the arrival; everything before
        // it is already over and cannot conflict.
        let mut first = self.slots.len();
        while first > self.head && self.slots[first - 1].1 > arrival {
            first -= 1;
        }
        let mut t0 = arrival;
        let mut idx = first;
        while let Some(&(s, e)) = self.slots.get(idx) {
            if s >= t0 + service {
                break; // fits entirely in the gap before this slot
            }
            if e > t0 {
                t0 = e;
            }
            idx += 1;
        }
        self.slots.insert(idx, (t0, t0 + service));
        t0
    }

    #[cfg(test)]
    fn len(&self) -> usize {
        self.slots.len() - self.head
    }
}

/// Aggregate counters exposed in the run report.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Events popped from the queue.
    pub events: u64,
    /// Timed RMA operations simulated.
    pub ops: u64,
    /// Cache lines moved by all operations.
    pub lines_moved: u64,
    /// Total time spent queueing at MPB ports (summed over packets).
    pub port_wait: Time,
    /// Total time spent queueing inside mesh routers.
    pub router_wait: Time,
    /// Total time spent queueing at memory controllers.
    pub mc_wait: Time,
    /// Flag park/wake cycles.
    pub parks: u64,
    /// Total MPB-port service time booked (for utilization reports).
    pub port_busy: Time,
    /// Total router occupancy booked.
    pub router_busy: Time,
    /// Total memory-controller service time booked.
    pub mc_busy: Time,
    /// Events pushed onto the scheduler heap (engine-internal; elided
    /// pushes from the coalesced fast path are *not* counted here).
    pub heap_pushes: u64,
    /// Line steps taken on the coalesced fast path, i.e. heap
    /// round-trips elided. `events == heap_pushes + coalesced_steps`
    /// on every successful run.
    pub coalesced_steps: u64,
    /// Grants delivered to a core other than the current baton holder
    /// — each one is a real thread switch. Grants returned inline to
    /// the requesting core are free and not counted.
    pub handoffs: u64,
    /// Per-tile breakdown of [`port_wait`](SimStats::port_wait)
    /// (24 entries; `sum == port_wait` on every run).
    pub port_wait_by_tile: Vec<Time>,
    /// Per-tile breakdown of [`port_busy`](SimStats::port_busy).
    pub port_busy_by_tile: Vec<Time>,
    /// Per-tile breakdown of [`router_wait`](SimStats::router_wait).
    pub router_wait_by_tile: Vec<Time>,
    /// Per-tile breakdown of [`router_busy`](SimStats::router_busy).
    pub router_busy_by_tile: Vec<Time>,
    /// Per-controller breakdown of [`mc_wait`](SimStats::mc_wait)
    /// (4 entries).
    pub mc_wait_by_ctrl: Vec<Time>,
    /// Per-controller breakdown of [`mc_busy`](SimStats::mc_busy).
    pub mc_busy_by_ctrl: Vec<Time>,
    /// Per-directed-mesh-link breakdown of
    /// [`router_wait`](SimStats::router_wait): entry
    /// `tile * NUM_LINK_DIRS + dir` is the queueing attributed to
    /// packets that left `tile`'s router on output `dir`
    /// ([`LinkDir::Eject`] = delivered into the tile). For every tile
    /// the five entries sum exactly to
    /// [`router_wait_by_tile`](SimStats::router_wait_by_tile) — the
    /// link counters *partition* the per-tile router aggregates.
    pub link_wait: Vec<Time>,
    /// Per-directed-link breakdown of
    /// [`router_busy`](SimStats::router_busy); same layout and same
    /// partition invariant as [`link_wait`](SimStats::link_wait).
    pub link_busy: Vec<Time>,
    /// Faults injected by the run's [`crate::fault::FaultPlan`]
    /// (always zero with an empty plan).
    pub faults: u64,
    /// Virtual time the injected faults cost their ops directly (delay
    /// and slowdown faults; a lost notification's cost is the recovery
    /// traffic, which is ordinary op time).
    pub fault_lost: Time,
}

impl SimStats {
    /// Stats with the per-resource vectors sized for the chip (24 tile
    /// ports, 24 routers, 4 memory controllers).
    pub fn sized() -> SimStats {
        SimStats {
            port_wait_by_tile: vec![Time::ZERO; 24],
            port_busy_by_tile: vec![Time::ZERO; 24],
            router_wait_by_tile: vec![Time::ZERO; 24],
            router_busy_by_tile: vec![Time::ZERO; 24],
            mc_wait_by_ctrl: vec![Time::ZERO; 4],
            mc_busy_by_ctrl: vec![Time::ZERO; 4],
            link_wait: vec![Time::ZERO; 24 * NUM_LINK_DIRS],
            link_busy: vec![Time::ZERO; 24 * NUM_LINK_DIRS],
            ..SimStats::default()
        }
    }
}

/// Mutable chip state owned by the scheduler thread.
pub struct Chip {
    pub params: SimParams,
    pub num_cores: usize,
    mem_bytes: usize,
    /// MPB contents, `num_cores * 8 KB`, indexed by core then byte.
    mpb: Vec<u8>,
    /// Private off-chip memory of each core, grown lazily: logically
    /// `mem_bytes` of zeroes, but backed only up to the highest byte a
    /// run has actually touched (a 48-core chip would otherwise zero
    /// 48 x `mem_bytes` on every `run_spmd`).
    private: Vec<Vec<u8>>,
    /// Reservation calendar per mesh router (one per tile, 24 entries).
    routers: Vec<Calendar>,
    /// Calendar per tile MPB port (the two cores of a tile share the
    /// physical MPB, hence the port).
    ports: Vec<Calendar>,
    /// Calendar per memory controller.
    mcs: Vec<Calendar>,
    /// Lower bound on all future arrivals, advanced by the scheduler;
    /// lets the calendars prune expired reservations.
    prune_before: Time,
    pub stats: SimStats,
    /// Structured event sink. `None` (the default) keeps the hot path
    /// at a single never-taken branch per booking — see the
    /// `obs_equivalence` test for the zero-cost guarantee.
    pub recorder: Option<Box<dyn Recorder>>,
}

impl Chip {
    pub fn new(params: SimParams, num_cores: usize, mem_bytes: usize) -> Chip {
        assert!((1..=scc_hal::NUM_CORES).contains(&num_cores));
        Chip {
            params,
            num_cores,
            mem_bytes,
            mpb: vec![0u8; num_cores * MPB_BYTES_PER_CORE],
            private: (0..num_cores).map(|_| Vec::new()).collect(),
            routers: vec![Calendar::default(); 24],
            ports: vec![Calendar::default(); 24],
            mcs: vec![Calendar::default(); 4],
            prune_before: Time::ZERO,
            stats: SimStats::sized(),
            recorder: None,
        }
    }

    /// Advance the pruning horizon (called by the scheduler with its
    /// event clock; all future arrivals are at or after it).
    pub fn set_prune_horizon(&mut self, now: Time) {
        self.prune_before = now;
    }

    pub fn mem_bytes(&self) -> usize {
        self.mem_bytes
    }

    // ---- byte storage -------------------------------------------------

    pub fn mpb_slice(&self, core: CoreId, byte_off: usize, len: usize) -> &[u8] {
        let base = core.index() * MPB_BYTES_PER_CORE + byte_off;
        &self.mpb[base..base + len]
    }

    pub fn mpb_slice_mut(&mut self, core: CoreId, byte_off: usize, len: usize) -> &mut [u8] {
        let base = core.index() * MPB_BYTES_PER_CORE + byte_off;
        &mut self.mpb[base..base + len]
    }

    /// Materialize `core`'s private memory up to `len` bytes (4 KB
    /// granularity, zero-filled — untouched memory reads as zeroes).
    fn private_grow(&mut self, core: CoreId, len: usize) {
        debug_assert!(len <= self.mem_bytes);
        let mem = &mut self.private[core.index()];
        if mem.len() < len {
            mem.resize(len.next_multiple_of(4096).min(self.mem_bytes), 0);
        }
    }

    pub fn private_slice(&mut self, core: CoreId, off: usize, len: usize) -> &[u8] {
        self.private_grow(core, off + len);
        &self.private[core.index()][off..off + len]
    }

    pub fn private_slice_mut(&mut self, core: CoreId, off: usize, len: usize) -> &mut [u8] {
        self.private_grow(core, off + len);
        &mut self.private[core.index()][off..off + len]
    }

    /// Copy between an MPB region and a private-memory region in either
    /// direction without aliasing issues (the two storages are disjoint).
    pub fn copy_mpb_to_private(
        &mut self,
        src: CoreId,
        src_byte: usize,
        dst: CoreId,
        dst_off: usize,
        len: usize,
    ) {
        self.private_grow(dst, dst_off + len);
        let base = src.index() * MPB_BYTES_PER_CORE + src_byte;
        let (mpb, private) = (&self.mpb, &mut self.private);
        private[dst.index()][dst_off..dst_off + len].copy_from_slice(&mpb[base..base + len]);
    }

    pub fn copy_private_to_mpb(
        &mut self,
        src: CoreId,
        src_off: usize,
        dst: CoreId,
        dst_byte: usize,
        len: usize,
    ) {
        self.private_grow(src, src_off + len);
        let base = dst.index() * MPB_BYTES_PER_CORE + dst_byte;
        let (mpb, private) = (&mut self.mpb, &self.private);
        mpb[base..base + len].copy_from_slice(&private[src.index()][src_off..src_off + len]);
    }

    pub fn copy_mpb_to_mpb(
        &mut self,
        src: CoreId,
        src_byte: usize,
        dst: CoreId,
        dst_byte: usize,
        len: usize,
    ) {
        let s = src.index() * MPB_BYTES_PER_CORE + src_byte;
        let d = dst.index() * MPB_BYTES_PER_CORE + dst_byte;
        if s == d {
            return;
        }
        // Regions may belong to the same vector and may overlap;
        // copy_within has memmove semantics and allocates nothing.
        self.mpb.copy_within(s..s + len, d);
    }

    // ---- timed resources ----------------------------------------------

    /// Send one packet of `issuer` from tile `from` to tile `to`
    /// starting at `t`; returns the arrival time at the destination
    /// router. Charges `L_hop` per router traversed and reserves each
    /// router for `router_occupancy` (virtual cut-through pipelining).
    pub fn traverse(&mut self, issuer: CoreId, t: Time, from: Tile, to: Tile) -> Time {
        let occupancy = self.params.router_occupancy;
        let l_hop = self.params.l_hop;
        let mut t = t;
        let mut route = from.xy_route(to).peekable();
        while let Some(tile) = route.next() {
            // The output link this router forwards the packet on: the
            // next tile of the X-Y route, or local ejection at the
            // destination. Attributing the router's booking to its
            // output link makes the five per-link counters of each tile
            // an exact partition of the per-tile router aggregates.
            let dir = match route.peek() {
                Some(&next) => tile.dir_to(next),
                None => LinkDir::Eject,
            };
            let start = self.routers[tile.index()].reserve(t, occupancy, self.prune_before);
            let wait = start - t;
            self.stats.router_wait += wait;
            self.stats.router_busy += occupancy;
            self.stats.router_wait_by_tile[tile.index()] += wait;
            self.stats.router_busy_by_tile[tile.index()] += occupancy;
            let link = tile.index() * NUM_LINK_DIRS + dir.index();
            self.stats.link_wait[link] += wait;
            self.stats.link_busy[link] += occupancy;
            if let Some(r) = self.recorder.as_mut() {
                r.record(ObsEvent::Wait {
                    core: issuer,
                    resource: ResourceId::Router(tile.index() as u8),
                    arrival: t,
                    start,
                    end: start + occupancy,
                    link: Some(dir),
                });
            }
            t = start + l_hop;
        }
        t
    }

    /// Occupy the MPB port of `tile` for a read on behalf of `issuer`;
    /// returns the service completion time.
    pub fn port_read(&mut self, issuer: CoreId, t: Time, tile: Tile) -> Time {
        let service = self.params.mpb_port_read;
        self.use_port(issuer, t, tile, service)
    }

    /// Occupy the MPB port of `tile` for a write.
    pub fn port_write(&mut self, issuer: CoreId, t: Time, tile: Tile) -> Time {
        let service = self.params.mpb_port_write;
        self.use_port(issuer, t, tile, service)
    }

    fn use_port(&mut self, issuer: CoreId, t: Time, tile: Tile, service: Time) -> Time {
        let start = self.ports[tile.index()].reserve(t, service, self.prune_before);
        let wait = start - t;
        self.stats.port_wait += wait;
        self.stats.port_busy += service;
        self.stats.port_wait_by_tile[tile.index()] += wait;
        self.stats.port_busy_by_tile[tile.index()] += service;
        if let Some(r) = self.recorder.as_mut() {
            r.record(ObsEvent::Wait {
                core: issuer,
                resource: ResourceId::Port(tile.index() as u8),
                arrival: t,
                start,
                end: start + service,
                link: None,
            });
        }
        start + service
    }

    /// Occupy a memory controller for one line read/write.
    pub fn mc_service(&mut self, issuer: CoreId, t: Time, mc: MemController, write: bool) -> Time {
        let service = if write { self.params.mc_write } else { self.params.mc_read };
        let start = self.mcs[mc.index()].reserve(t, service, self.prune_before);
        let wait = start - t;
        self.stats.mc_wait += wait;
        self.stats.mc_busy += service;
        self.stats.mc_wait_by_ctrl[mc.index()] += wait;
        self.stats.mc_busy_by_ctrl[mc.index()] += service;
        if let Some(r) = self.recorder.as_mut() {
            r.record(ObsEvent::Wait {
                core: issuer,
                resource: ResourceId::Mc(mc.index() as u8),
                arrival: t,
                start,
                end: start + service,
                link: None,
            });
        }
        start + service
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chip() -> Chip {
        Chip::new(SimParams::default(), 48, 4096)
    }

    #[test]
    fn calendar_fills_gaps_and_prunes() {
        let mut cal = Calendar::default();
        let ns = Time::from_ns;
        // First reservation: starts at arrival.
        assert_eq!(cal.reserve(ns(100), ns(10), Time::ZERO), ns(100));
        // A later reservation far in the future.
        assert_eq!(cal.reserve(ns(500), ns(10), Time::ZERO), ns(500));
        // An "earlier" arrival (same event time) slips into the idle gap
        // between the two instead of queueing behind the 500ns slot.
        assert_eq!(cal.reserve(ns(105), ns(10), Time::ZERO), ns(110));
        // No gap big enough before 500: a 400ns-long request must wait.
        assert_eq!(cal.reserve(ns(105), ns(400), Time::ZERO), ns(510));
        // Pruning drops expired slots.
        assert_eq!(cal.len(), 4);
        let _ = cal.reserve(ns(2000), ns(1), ns(1500));
        assert_eq!(cal.len(), 1);
    }

    #[test]
    fn calendar_back_to_back_same_arrival() {
        let mut cal = Calendar::default();
        let ns = Time::from_ns;
        assert_eq!(cal.reserve(ns(0), ns(7), Time::ZERO), ns(0));
        assert_eq!(cal.reserve(ns(0), ns(7), Time::ZERO), ns(7));
        assert_eq!(cal.reserve(ns(0), ns(7), Time::ZERO), ns(14));
    }

    #[test]
    fn traverse_uncontended_charges_d_lhop() {
        let mut c = chip();
        let from = Tile::new(0, 0);
        let to = Tile::new(3, 2);
        let d = from.routing_distance(to) as u64;
        let t1 = c.traverse(CoreId(0), Time::ZERO, from, to);
        assert_eq!(t1, c.params.l_hop * d);
        assert_eq!(c.stats.router_wait, Time::ZERO);
    }

    #[test]
    fn traverse_same_tile_is_one_router() {
        let mut c = chip();
        let t = c.traverse(CoreId(0), Time::ZERO, Tile::new(2, 2), Tile::new(2, 2));
        assert_eq!(t, c.params.l_hop);
    }

    #[test]
    fn back_to_back_packets_queue_on_router() {
        let mut c = chip();
        let tile = Tile::new(1, 1);
        let a = c.traverse(CoreId(0), Time::ZERO, tile, tile);
        assert_eq!(a, c.params.l_hop);
        // Second packet issued at the same instant waits occupancy.
        let b = c.traverse(CoreId(0), Time::ZERO, tile, tile);
        assert_eq!(b, c.params.router_occupancy + c.params.l_hop);
        assert_eq!(c.stats.router_wait, c.params.router_occupancy);
    }

    #[test]
    fn port_serializes_concurrent_accesses() {
        let mut c = chip();
        let tile = Tile::new(0, 0);
        let a = c.port_read(CoreId(0), Time::ZERO, tile);
        let b = c.port_read(CoreId(0), Time::ZERO, tile);
        let s = c.params.mpb_port_read;
        assert_eq!(a, s);
        assert_eq!(b, s * 2);
        assert_eq!(c.stats.port_wait, s);
    }

    #[test]
    fn mc_serializes_and_distinguishes_read_write() {
        let mut c = chip();
        let mc = MemController::SouthWest;
        let a = c.mc_service(CoreId(0), Time::ZERO, mc, false);
        let b = c.mc_service(CoreId(0), Time::ZERO, mc, true);
        assert_eq!(a, c.params.mc_read);
        assert_eq!(b, c.params.mc_read + c.params.mc_write);
        // Other controllers are independent.
        let x = c.mc_service(CoreId(0), Time::ZERO, MemController::NorthEast, false);
        assert_eq!(x, c.params.mc_read);
    }

    #[test]
    fn storage_is_isolated_per_core() {
        let mut c = chip();
        c.mpb_slice_mut(CoreId(0), 0, 4).copy_from_slice(&[1, 2, 3, 4]);
        assert_eq!(c.mpb_slice(CoreId(0), 0, 4), &[1, 2, 3, 4]);
        assert_eq!(c.mpb_slice(CoreId(1), 0, 4), &[0, 0, 0, 0]);

        c.private_slice_mut(CoreId(5), 32, 2).copy_from_slice(&[9, 9]);
        assert_eq!(c.private_slice(CoreId(5), 32, 2), &[9, 9]);
        assert_eq!(c.private_slice(CoreId(6), 32, 2), &[0, 0]);
    }

    #[test]
    fn cross_space_copies() {
        let mut c = chip();
        c.private_slice_mut(CoreId(2), 0, 3).copy_from_slice(b"abc");
        c.copy_private_to_mpb(CoreId(2), 0, CoreId(7), 64, 3);
        assert_eq!(c.mpb_slice(CoreId(7), 64, 3), b"abc");
        c.copy_mpb_to_mpb(CoreId(7), 64, CoreId(3), 0, 3);
        assert_eq!(c.mpb_slice(CoreId(3), 0, 3), b"abc");
        c.copy_mpb_to_private(CoreId(3), 0, CoreId(3), 96, 3);
        assert_eq!(c.private_slice(CoreId(3), 96, 3), b"abc");
    }
}
