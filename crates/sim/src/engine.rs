//! The conservative sequential discrete-event engine.
//!
//! Each simulated core runs the user's SPMD closure on its own OS
//! thread (leased from a process-wide pool, see [`crate::handoff`]),
//! but exactly one simulated core is *runnable* at any instant; events
//! are ordered by `(virtual time, sequence number)`, so runs are
//! bit-for-bit deterministic regardless of OS scheduling.
//!
//! ## Baton-passing: the engine runs on the cores' threads
//!
//! There is no scheduler thread. The engine state (chip, event heap,
//! pending ops) lives behind one mutex — the *baton* — and the event
//! loop is executed by whichever core thread is currently runnable:
//! when a core issues a timed request it keeps processing events
//! inline until either its own grant is produced (it simply returns —
//! zero thread switches, the common case for back-to-back operations
//! of one core) or a grant for another core comes up, in which case it
//! deposits the grant in that core's rendezvous [`ParkCell`], wakes it
//! (one thread switch, where the old channel-based design needed two
//! via the scheduler thread), and parks until its own grant arrives.
//! The mutex is never contended in steady state — only the baton
//! holder touches it — and the strict grant→request alternation per
//! core is what makes the event order independent of the OS.
//!
//! Operations are *simulated* (resources reserved, completion time
//! computed) at issue and their memory effects applied at completion —
//! the completion time is each op's linearization point, which keeps
//! reads, writes and flag parking globally time-ordered.
//!
//! ## The coalesced fast path
//!
//! A multi-line op is stepped one cache line per event. Pushing and
//! popping the heap once per line is pure bookkeeping whenever the
//! pending op is the only thing happening on the chip — the next
//! line-completion event would come straight back as the heap minimum.
//! The stepper therefore peeks the heap: while the just-simulated line
//! completes strictly before the earliest queued event, it advances
//! the clock and steps the next line directly. The `(time, seq)` order
//! is preserved exactly — a queued event at the same instant has a
//! smaller sequence number and would run first, so the fast path only
//! triggers on *strictly earlier* completions — and each elided heap
//! round-trip still counts in `SimStats::events`, keeping counters,
//! traces and end times bit-identical to a run with coalescing
//! disabled (see `SimConfig::coalesce`).

use crate::chip::{Chip, SimStats};
use crate::fault::{FaultPlan, FaultState};
use crate::handoff::{self, ParkCell, Slot};
use crate::ops::{self, Effect, Op};
use crate::params::SimParams;
use crate::trace::OpTrace;
use scc_hal::{
    CoreId, FlagValue, MemRange, MpbAddr, MsgId, Rma, RmaError, RmaResult, Span, Time, NUM_CORES,
};
use scc_obs::{EventLog, FaultKind, FlightRecorder, ObsEvent};
use std::cell::{Cell, RefCell};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;
use std::panic::resume_unwind;
use std::sync::{Arc, Mutex, MutexGuard};

/// Configuration of a simulator run.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Number of participating cores (`P ≤ 48`).
    pub num_cores: usize,
    /// Private off-chip memory per core, in bytes.
    pub mem_bytes: usize,
    /// Chip timing parameters.
    pub params: SimParams,
    /// Record an [`OpTrace`] entry per timed operation (costs memory
    /// proportional to the op count; off by default).
    pub trace: bool,
    /// Step op lines in a tight loop while no other event can
    /// intervene (default on). Virtual-time behaviour is identical
    /// either way; the knob exists so tests can regress-check that
    /// claim and to help bisect engine bugs.
    pub coalesce: bool,
    /// Record the full structured event stream (ops, queue waits with
    /// resource ids, park/wake, handoffs, protocol-phase spans) into
    /// [`SimReport::events`] for the `scc-obs` exporters. Off by
    /// default; virtual times and [`SimStats`] are identical either
    /// way (see the `obs_equivalence` test).
    pub record: bool,
    /// Flight-recorder capacity: when non-zero (and [`record`] is
    /// off), the run records into a bounded ring that retains only the
    /// last `flight` events at fixed memory cost, and
    /// [`SimReport::events`] holds that window — byte-identical to the
    /// tail of a full recording (see `obs_equivalence`). Virtual times
    /// and [`SimStats`] are unaffected, exactly as with [`record`].
    /// A full recording subsumes any window, so [`record`] wins when
    /// both are set.
    ///
    /// [`record`]: SimConfig::record
    pub flight: usize,
    /// Deterministic fault schedule (see [`crate::fault`]). The
    /// default plan is empty: no faults, no RNG, and — guarded by the
    /// `fault_plan_empty_is_identity` test — bit-identical stats and
    /// virtual times to builds that predate the field.
    pub faults: FaultPlan,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            num_cores: NUM_CORES,
            mem_bytes: 4 << 20,
            params: SimParams::default(),
            trace: false,
            coalesce: true,
            record: false,
            flight: 0,
            faults: FaultPlan::default(),
        }
    }
}

impl SimConfig {
    pub fn with_cores(num_cores: usize) -> SimConfig {
        SimConfig { num_cores, ..SimConfig::default() }
    }

    /// Default config with the flight recorder on: retain the last
    /// `capacity` events in a bounded ring (see [`SimConfig::flight`]).
    pub fn flight(capacity: usize) -> SimConfig {
        SimConfig { flight: capacity, ..SimConfig::default() }
    }
}

/// Whole-run failure of a simulation.
#[derive(Clone, Debug)]
pub enum SimError {
    /// Every unfinished core was parked on a flag nobody can write.
    Deadlock { parked: Vec<(CoreId, usize)> },
    /// A core thread disconnected (panicked) or the engine wedged.
    Engine(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock { parked } => {
                write!(f, "simulation deadlock; parked: ")?;
                for (c, l) in parked {
                    write!(f, "{c}@line{l} ")?;
                }
                Ok(())
            }
            SimError::Engine(m) => write!(f, "engine failure: {m}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Result of a successful run.
#[derive(Debug)]
pub struct SimReport<R> {
    /// Per-core return values of the SPMD closure.
    pub results: Vec<R>,
    /// Virtual time at which each core finished.
    pub end_times: Vec<Time>,
    /// Virtual time at which the last core finished.
    pub makespan: Time,
    /// Engine counters.
    pub stats: SimStats,
    /// Op-level trace, when enabled in the config.
    pub trace: Option<Vec<OpTrace>>,
    /// Structured event stream, when [`SimConfig::record`] was set.
    pub events: Option<Vec<ObsEvent>>,
}

// ---- messages ----------------------------------------------------------

enum Request {
    /// A timed operation; `msg` is the message tag active on the
    /// issuing core (always `None` when recording is off).
    Op {
        op: Op,
        msg: Option<MsgId>,
    },
    Park {
        line: usize,
        /// With a deadline, the engine schedules a timer that unparks
        /// the core when it fires first; the waiter then re-reads the
        /// flag and surfaces [`RmaError::Timeout`] itself.
        deadline: Option<Time>,
    },
    Compute(Time),
    /// Untimed private-memory write; `buf` is the core's reusable
    /// scratch buffer carrying the payload, returned in the grant.
    MemWrite {
        offset: usize,
        buf: Vec<u8>,
    },
    /// Untimed private-memory read; the engine fills `buf` in place.
    MemRead {
        offset: usize,
        len: usize,
        buf: Vec<u8>,
    },
}

enum Grant {
    Go {
        now: Time,
    },
    /// Completion of a MemRead/MemWrite: hands the scratch buffer back.
    Buf {
        now: Time,
        buf: Vec<u8>,
    },
    Flag {
        now: Time,
        value: FlagValue,
    },
    /// Validation failure; returns the scratch buffer when the request
    /// carried one, so rejection does not leak the core's buffer.
    Rejected {
        err: RmaError,
        buf: Option<Vec<u8>>,
    },
    Deadlock,
}

// ---- event queue ---------------------------------------------------------

#[derive(PartialEq, Eq)]
struct Event {
    at: Time,
    seq: u64,
    kind: EventKind,
}

#[derive(PartialEq, Eq)]
enum EventKind {
    /// Wake a core with a plain `Go` (start, compute done, park wake)
    /// — or with `Deadlock` if the core was deadlock-notified.
    Resume(usize),
    /// Advance the core's pending op by one cache line, or — once all
    /// lines are done — apply its effects and resume the core.
    Step(usize),
    /// A park deadline fired for the core. The token is the park
    /// generation it was armed for: a timer whose token no longer
    /// matches (the core was woken, or re-parked since) is stale and
    /// ignored.
    Timeout(usize, u64),
}

struct PendingOp {
    op: Op,
    remaining: usize,
    issued: Time,
    msg: Option<MsgId>,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

// ---- the engine ----------------------------------------------------------

/// What one turn of the event loop produced.
enum Advanced {
    /// Core `.0` becomes runnable and receives grant `.1`.
    Granted(usize, Grant),
    /// Every core finished; the run result can be assembled.
    RunComplete,
    /// The engine wedged; the run must be aborted.
    Fatal(String),
}

enum Submitted {
    /// The request completed immediately (untimed or rejected); the
    /// submitting core stays runnable.
    Ready(Grant),
    /// The request scheduled future events; the submitter must drive
    /// the event loop.
    Blocked,
}

/// All mutable engine state, owned by the baton mutex in [`Shared`].
struct Engine {
    chip: Chip,
    coalesce: bool,
    queue: BinaryHeap<Reverse<Event>>,
    seq: u64,
    now: Time,
    pending: Vec<Option<PendingOp>>,
    parked: Vec<Option<usize>>,
    /// Park generation per core; a deadline timer captures the value
    /// at arming time and fires only if it still matches.
    park_seq: Vec<u64>,
    /// Fault-injection state; `None` for an empty plan, so the default
    /// path pays a single never-taken branch per hook.
    faults: Option<FaultState>,
    /// Cores whose next `Resume` must deliver `Grant::Deadlock`.
    deadlock_notified: Vec<bool>,
    finished: Vec<bool>,
    end_times: Vec<Time>,
    done: usize,
    n: usize,
    deadlocks: Vec<(CoreId, usize)>,
    deadlock_rounds: u32,
    trace: Option<Vec<OpTrace>>,
    /// Set once the run is being torn down; every later submit fails.
    fatal: bool,
}

impl Engine {
    fn new(cfg: &SimConfig) -> Engine {
        let n = cfg.num_cores;
        let mut chip = Chip::new(cfg.params, n, cfg.mem_bytes);
        if cfg.record {
            chip.recorder = Some(Box::new(EventLog::new()));
        } else if cfg.flight > 0 {
            chip.recorder = Some(Box::new(FlightRecorder::new(cfg.flight)));
        }
        let mut e = Engine {
            chip,
            coalesce: cfg.coalesce,
            queue: BinaryHeap::with_capacity(2 * n + 8),
            seq: 0,
            now: Time::ZERO,
            pending: (0..n).map(|_| None).collect(),
            parked: vec![None; n],
            park_seq: vec![0; n],
            faults: (!cfg.faults.is_empty()).then(|| FaultState::new(cfg.faults.clone())),
            deadlock_notified: vec![false; n],
            finished: vec![false; n],
            end_times: vec![Time::ZERO; n],
            done: 0,
            n,
            deadlocks: Vec::new(),
            deadlock_rounds: 0,
            trace: cfg.trace.then(Vec::new),
            fatal: false,
        };
        for i in 0..n {
            e.push(Time::ZERO, EventKind::Resume(i));
        }
        e
    }

    fn push(&mut self, at: Time, kind: EventKind) {
        self.chip.stats.heap_pushes += 1;
        self.queue.push(Reverse(Event { at, seq: self.seq, kind }));
        self.seq += 1;
    }

    /// Record one structured event; a single never-taken branch when
    /// recording is off.
    #[inline]
    fn record(&mut self, ev: ObsEvent) {
        if let Some(r) = self.chip.recorder.as_mut() {
            r.record(ev);
        }
    }

    fn granted(&mut self, core: usize, grant: Grant) -> Advanced {
        Advanced::Granted(core, grant)
    }

    fn ready(&mut self, g: Grant) -> Result<Submitted, SimError> {
        Ok(Submitted::Ready(g))
    }

    /// Feed one request of `core` into the engine. `Ready` responses
    /// leave the core runnable; `Blocked` means the core must drive
    /// [`advance`](Self::advance) until a grant emerges.
    fn submit(&mut self, core: usize, req: Request) -> Result<Submitted, SimError> {
        if self.fatal {
            return Err(SimError::Engine("engine torn down".into()));
        }
        match req {
            Request::Compute(t) => {
                let at = self.now + t;
                self.record(ObsEvent::Compute {
                    core: CoreId(core as u8),
                    start: self.now,
                    end: at,
                });
                self.push(at, EventKind::Resume(core));
                Ok(Submitted::Blocked)
            }
            Request::Park { line, deadline } => {
                if line >= scc_hal::MPB_LINES_PER_CORE {
                    return self.ready(Grant::Rejected {
                        err: RmaError::MpbOutOfRange {
                            addr: MpbAddr::new(CoreId(core as u8), 0),
                            lines: line,
                        },
                        buf: None,
                    });
                }
                self.chip.stats.parks += 1;
                self.record(ObsEvent::Park { core: CoreId(core as u8), line, at: self.now });
                self.parked[core] = Some(line);
                self.park_seq[core] += 1;
                if let Some(dl) = deadline {
                    // The timer keeps the queue non-empty, so a core
                    // waiting with a deadline can never trip the
                    // deadlock detector — it wakes and recovers.
                    let token = self.park_seq[core];
                    self.push(dl.max(self.now), EventKind::Timeout(core, token));
                }
                Ok(Submitted::Blocked)
            }
            Request::MemRead { offset, len, mut buf } => {
                let g = if offset + len <= self.chip.mem_bytes() {
                    buf.clear();
                    buf.extend_from_slice(self.chip.private_slice(CoreId(core as u8), offset, len));
                    Grant::Buf { now: self.now, buf }
                } else {
                    Grant::Rejected {
                        err: RmaError::MemOutOfRange {
                            offset,
                            len,
                            mem_len: self.chip.mem_bytes(),
                        },
                        buf: Some(buf),
                    }
                };
                self.ready(g)
            }
            Request::MemWrite { offset, buf } => {
                let g = if offset + buf.len() <= self.chip.mem_bytes() {
                    self.chip
                        .private_slice_mut(CoreId(core as u8), offset, buf.len())
                        .copy_from_slice(&buf);
                    Grant::Buf { now: self.now, buf }
                } else {
                    Grant::Rejected {
                        err: RmaError::MemOutOfRange {
                            offset,
                            len: buf.len(),
                            mem_len: self.chip.mem_bytes(),
                        },
                        buf: Some(buf),
                    }
                };
                self.ready(g)
            }
            Request::Op { op, msg } => {
                if let Err(e) = ops::validate(&self.chip, CoreId(core as u8), &op) {
                    return self.ready(Grant::Rejected { err: e, buf: None });
                }
                self.chip.stats.ops += 1;
                let mut overhead = ops::op_overhead(&self.chip, &op);
                if self.faults.is_some() {
                    let extra = self
                        .faults
                        .as_ref()
                        .map_or(Time::ZERO, |f| f.slow_extra(CoreId(core as u8), self.now));
                    if extra > Time::ZERO {
                        self.chip.stats.faults += 1;
                        self.chip.stats.fault_lost += extra;
                        self.record(ObsEvent::Fault {
                            core: CoreId(core as u8),
                            kind: FaultKind::CoreSlow,
                            at: self.now,
                            lost: extra,
                        });
                        overhead += extra;
                    }
                }
                let remaining = ops::total_lines(&op);
                self.pending[core] = Some(PendingOp { op, remaining, issued: self.now, msg });
                self.push(self.now + overhead, EventKind::Step(core));
                Ok(Submitted::Blocked)
            }
        }
    }

    /// Record that `core` finished. The caller must then drive
    /// [`advance`](Self::advance) to pass the baton on (or complete the
    /// run).
    fn submit_finish(&mut self, core: usize) {
        self.finished[core] = true;
        self.end_times[core] = self.now;
        self.record(ObsEvent::Finish { core: CoreId(core as u8), at: self.now });
        self.done += 1;
    }

    /// Run the event loop until a core becomes runnable, the run
    /// completes, or the engine wedges.
    fn advance(&mut self) -> Advanced {
        loop {
            if self.done == self.n {
                return Advanced::RunComplete;
            }
            let Some(Reverse(ev)) = self.queue.pop() else {
                if let Some(fatal) = self.handle_deadlock() {
                    return Advanced::Fatal(fatal);
                }
                continue;
            };
            self.chip.stats.events += 1;
            debug_assert!(ev.at >= self.now, "time went backwards");
            self.now = ev.at;
            self.chip.set_prune_horizon(self.now);
            match ev.kind {
                EventKind::Resume(i) => {
                    let g = if std::mem::take(&mut self.deadlock_notified[i]) {
                        Grant::Deadlock
                    } else {
                        Grant::Go { now: self.now }
                    };
                    return self.granted(i, g);
                }
                EventKind::Step(i) => {
                    if let Some(g) = self.step(i) {
                        return self.granted(i, g);
                    }
                }
                EventKind::Timeout(i, token) => {
                    if self.park_seq[i] == token {
                        if let Some(line) = self.parked[i].take() {
                            // Timer-driven wake: the waiter re-reads
                            // the flag and reports the timeout itself.
                            // Close the park interval with a self-wake
                            // so leg accounting stays tiled.
                            self.record(ObsEvent::Wake {
                                core: CoreId(i as u8),
                                line,
                                at: self.now,
                                writer: CoreId(i as u8),
                            });
                            return self.granted(i, Grant::Go { now: self.now });
                        }
                    }
                    // Stale timer: a write woke the core first (or it
                    // re-parked since). Nothing to do.
                }
            }
        }
    }

    /// Process a `Step` event for core `i`, coalescing subsequent line
    /// steps while no other queued event can precede them. Returns the
    /// grant once the whole op completed, `None` if the next line went
    /// back to the heap.
    ///
    /// Invariant: a coalesced step is taken only when the just-computed
    /// line completion is *strictly earlier* than the heap minimum. The
    /// event the slow path would have pushed carries a fresh (maximal)
    /// sequence number, so at equal times the queued event wins — which
    /// is exactly what popping from the heap would have done. Elided
    /// pops still increment `stats.events`; only `stats.heap_pushes`
    /// and `stats.coalesced_steps` reveal which path executed.
    fn step(&mut self, i: usize) -> Option<Grant> {
        loop {
            let p = self.pending[i].as_mut().expect("Step without a pending op");
            if p.remaining == 0 {
                let done = self.pending[i].take().expect("pending vanished");
                if let Some(tr) = self.trace.as_mut() {
                    tr.push(OpTrace {
                        core: CoreId(i as u8),
                        kind: ops::op_kind(&done.op),
                        lines: ops::total_lines(&done.op),
                        start: done.issued,
                        end: self.now,
                        msg: done.msg,
                    });
                }
                self.record(ObsEvent::Op {
                    core: CoreId(i as u8),
                    kind: ops::op_kind(&done.op),
                    lines: ops::total_lines(&done.op),
                    start: done.issued,
                    end: self.now,
                    msg: done.msg,
                });
                return Some(self.apply_op(i, &done.op));
            }
            p.remaining -= 1;
            let mut line_done =
                ops::simulate_line(&mut self.chip, CoreId(i as u8), &p.op, self.now);
            if self.faults.is_some() {
                if let Some(d) = self.faults.as_mut().and_then(FaultState::line_delay) {
                    self.chip.stats.faults += 1;
                    self.chip.stats.fault_lost += d;
                    self.record(ObsEvent::Fault {
                        core: CoreId(i as u8),
                        kind: FaultKind::LinkDelay,
                        at: line_done,
                        lost: d,
                    });
                    // The delay is applied before the coalesce peek,
                    // so both scheduling paths see the same completion
                    // instant and the run stays deterministic.
                    line_done += d;
                }
            }
            let fast =
                self.coalesce && self.queue.peek().is_none_or(|Reverse(head)| line_done < head.at);
            if fast {
                // The elided event: count it as popped, advance the clock.
                self.chip.stats.events += 1;
                self.chip.stats.coalesced_steps += 1;
                self.now = line_done;
                self.chip.set_prune_horizon(line_done);
            } else {
                self.push(line_done, EventKind::Step(i));
                return None;
            }
        }
    }

    fn apply_op(&mut self, core: usize, op: &Op) -> Grant {
        if self.faults.is_some() {
            // Lost notification: only *remote* flag deposits traverse a
            // mesh link and can be dropped. The transfer's time was
            // already charged; the deposit simply never happens, so no
            // parked waiter wakes and no flag line changes.
            if let Op::FlagPut { dst, .. } = op {
                if dst.core.index() != core
                    && self.faults.as_mut().is_some_and(FaultState::drop_notification)
                {
                    self.chip.stats.faults += 1;
                    self.record(ObsEvent::Fault {
                        core: CoreId(core as u8),
                        kind: FaultKind::LostNotification,
                        at: self.now,
                        lost: Time::ZERO,
                    });
                    return Grant::Go { now: self.now };
                }
            }
        }
        match ops::apply(&mut self.chip, CoreId(core as u8), op) {
            Effect::None => Grant::Go { now: self.now },
            Effect::Flag(value) => {
                if let Op::ReadLine { line } = op {
                    self.record(ObsEvent::FlagSample {
                        core: CoreId(core as u8),
                        line: *line,
                        value: value.0,
                        at: self.now,
                    });
                }
                Grant::Flag { now: self.now, value }
            }
            Effect::Wrote(region) => {
                self.record(ObsEvent::MpbWrite {
                    owner: region.core,
                    line: region.first_line,
                    lines: region.lines,
                    writer: CoreId(core as u8),
                    value: if let Op::FlagPut { value, .. } = op { Some(value.0) } else { None },
                    at: self.now,
                });
                // Wake every core parked on a just-written line; the
                // wake carries the commit timestamp, and the waiter
                // re-reads the flag before trusting it.
                for w in 0..self.parked.len() {
                    if let Some(line) = self.parked[w] {
                        if region.covers(CoreId(w as u8), line) {
                            self.parked[w] = None;
                            self.record(ObsEvent::Wake {
                                core: CoreId(w as u8),
                                line,
                                at: self.now,
                                writer: CoreId(core as u8),
                            });
                            self.push(self.now, EventKind::Resume(w));
                        }
                    }
                }
                Grant::Go { now: self.now }
            }
        }
    }

    /// Queue empty but cores unfinished: everyone left is parked on a
    /// flag that no scheduled op will ever write. Notify them one at a
    /// time through ordinary `Resume` events so their subsequent
    /// requests keep a deterministic order. Returns a message if the
    /// engine is wedged beyond recovery.
    fn handle_deadlock(&mut self) -> Option<String> {
        self.deadlock_rounds += 1;
        if self.deadlock_rounds > 100 {
            return Some("livelock: cores keep re-parking after deadlock notification".into());
        }
        let victims: Vec<usize> =
            (0..self.parked.len()).filter(|&i| self.parked[i].is_some()).collect();
        if victims.is_empty() {
            return Some("engine stalled: queue empty, cores unfinished, none parked".into());
        }
        for v in victims {
            let line = self.parked[v].take().expect("victim must be parked");
            self.deadlocks.push((CoreId(v as u8), line));
            self.deadlock_notified[v] = true;
            self.push(self.now, EventKind::Resume(v));
        }
        None
    }

    fn make_result(&mut self) -> Result<RunOutput, SimError> {
        if self.deadlocks.is_empty() {
            Ok(RunOutput {
                end_times: std::mem::take(&mut self.end_times),
                trace: self.trace.take(),
                events: self.chip.recorder.as_mut().map(|r| r.drain()),
                stats: self.chip.stats.clone(),
            })
        } else {
            Err(SimError::Deadlock { parked: std::mem::take(&mut self.deadlocks) })
        }
    }
}

struct RunOutput {
    end_times: Vec<Time>,
    trace: Option<Vec<OpTrace>>,
    events: Option<Vec<ObsEvent>>,
    stats: SimStats,
}

/// Engine state shared by all core threads of one run.
struct Shared {
    engine: Mutex<Engine>,
    /// Per-core rendezvous for grants produced while the core was not
    /// the baton holder.
    grants: Vec<ParkCell<Grant>>,
    /// Signalled exactly once, when the last core finishes (or the run
    /// aborts); closed on teardown so the waiter never hangs.
    completion: Slot<Result<RunOutput, SimError>>,
}

impl Shared {
    fn lock_engine(&self) -> MutexGuard<'_, Engine> {
        // A panicking core thread may poison the baton; the abort path
        // still needs the state (to set `fatal`), so recover.
        self.engine.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Tear the run down: flag the engine fatal, deliver `err` to the
    /// completion waiter and unblock every parked core.
    fn abort(&self, err: SimError) {
        self.lock_engine().fatal = true;
        let _ = self.completion.try_put(Err(err));
        self.completion.close();
        for g in &self.grants {
            g.close();
        }
    }

    /// Deliver a grant to `core` and wake it. Failure means the run is
    /// aborting; the waiter is then woken by `close` instead.
    fn deposit(&self, core: usize, grant: Grant) {
        let _ = self.grants[core].put(grant);
    }
}

// ---- the per-core handle ---------------------------------------------------

/// The [`Rma`] endpoint handed to the SPMD closure for one simulated
/// core. Requests are fed straight into the shared engine; virtual
/// time advances only through timed operations.
pub struct SimCore {
    id: CoreId,
    num_cores: usize,
    mem_bytes: usize,
    /// Cached `SimConfig::record`, so span annotations cost one local
    /// branch (no engine lock) when recording is off.
    recording: bool,
    now: Cell<Time>,
    parked_line: Cell<usize>,
    /// Message tag applied to subsequent timed ops ([`Rma::msg_tag`]).
    /// Only ever set while recording, so untraced runs carry `None`
    /// with zero bookkeeping.
    cur_msg: Cell<Option<MsgId>>,
    /// Reusable payload buffer for untimed memory requests; it rides
    /// along in the request and comes back in the grant, so steady
    /// state does no allocation per call.
    scratch: RefCell<Vec<u8>>,
    shared: Arc<Shared>,
}

impl SimCore {
    /// Submit one request and run the engine until this core's grant is
    /// available — inline when possible, via a single thread handoff
    /// when another core must run first.
    fn rpc(&self, req: Request) -> RmaResult<Grant> {
        let me = self.id.index();
        let mut eng = self.shared.lock_engine();
        let grant = match eng.submit(me, req).map_err(|e| RmaError::Engine(e.to_string()))? {
            Submitted::Ready(g) => g,
            Submitted::Blocked => match eng.advance() {
                Advanced::Granted(core, g) if core == me => g,
                Advanced::Granted(core, g) => {
                    eng.chip.stats.handoffs += 1;
                    let at = eng.now;
                    eng.record(ObsEvent::Handoff { from: self.id, to: CoreId(core as u8), at });
                    drop(eng);
                    self.shared.deposit(core, g);
                    self.shared.grants[me]
                        .take()
                        .map_err(|_| RmaError::Engine("run aborted".into()))?
                }
                Advanced::RunComplete => {
                    // Unreachable: this core has not finished. Treat it
                    // as a wedge rather than trusting the impossible.
                    drop(eng);
                    self.shared.abort(SimError::Engine("run completed with a core mid-op".into()));
                    return Err(RmaError::Engine("engine wedged".into()));
                }
                Advanced::Fatal(msg) => {
                    drop(eng);
                    self.shared.abort(SimError::Engine(msg.clone()));
                    return Err(RmaError::Engine(msg));
                }
            },
        };
        match grant {
            Grant::Rejected { err, buf } => {
                if let Some(b) = buf {
                    self.scratch.replace(b);
                }
                Err(err)
            }
            Grant::Deadlock => {
                Err(RmaError::Deadlock { core: self.id, line: self.parked_line.get() })
            }
            g => {
                match &g {
                    Grant::Go { now } | Grant::Buf { now, .. } | Grant::Flag { now, .. } => {
                        self.now.set(*now)
                    }
                    _ => unreachable!(),
                }
                Ok(g)
            }
        }
    }

    fn op(&self, op: Op) -> RmaResult<Grant> {
        self.rpc(Request::Op { op, msg: self.cur_msg.get() })
    }

    fn wait_start(&self) -> RmaResult<()> {
        match self.shared.grants[self.id.index()].take() {
            Ok(Grant::Go { now }) => {
                self.now.set(now);
                Ok(())
            }
            _ => Err(RmaError::Engine("no start grant".into())),
        }
    }

    /// Retire this core: record its end time, then keep the event loop
    /// moving — hand the baton to the next runnable core, or complete
    /// the run if this was the last one.
    fn finish(&self) {
        let mut eng = self.shared.lock_engine();
        if eng.fatal {
            return;
        }
        eng.submit_finish(self.id.index());
        match eng.advance() {
            Advanced::RunComplete => {
                let result = eng.make_result();
                drop(eng);
                let _ = self.shared.completion.try_put(result);
            }
            Advanced::Granted(core, g) => {
                eng.chip.stats.handoffs += 1;
                let at = eng.now;
                eng.record(ObsEvent::Handoff { from: self.id, to: CoreId(core as u8), at });
                drop(eng);
                self.shared.deposit(core, g);
            }
            Advanced::Fatal(msg) => {
                drop(eng);
                self.shared.abort(SimError::Engine(msg));
            }
        }
    }

    /// Deposit a span event into the recorder. Spans carry no virtual
    /// time of their own — they are stamped with this core's current
    /// clock — so annotating a collective cannot perturb the run. Only
    /// reached when recording: the calling core holds the logical baton
    /// (it is the single runnable core), so the engine lock is
    /// uncontended.
    fn record_span(&self, begin: bool, span: Span) {
        let at = self.now.get();
        let ev = if begin {
            ObsEvent::SpanBegin { core: self.id, span, at }
        } else {
            ObsEvent::SpanEnd { core: self.id, span, at }
        };
        self.shared.lock_engine().record(ev);
    }

    /// Deposit a delivery-window boundary. Same discipline as
    /// [`record_span`](Self::record_span): untimed, stamped with this
    /// core's clock, only reached while recording.
    fn record_delivery(&self, begin: bool, epoch: u32) {
        let at = self.now.get();
        let ev = if begin {
            ObsEvent::DeliveryBegin { core: self.id, epoch, at }
        } else {
            ObsEvent::DeliveryEnd { core: self.id, epoch, at }
        };
        self.shared.lock_engine().record(ev);
    }
}

impl Rma for SimCore {
    fn core(&self) -> CoreId {
        self.id
    }

    fn num_cores(&self) -> usize {
        self.num_cores
    }

    fn now(&self) -> Time {
        self.now.get()
    }

    fn mem_len(&self) -> usize {
        self.mem_bytes
    }

    fn put_from_mem(&mut self, src: MemRange, dst: MpbAddr) -> RmaResult<()> {
        self.op(Op::PutFromMem { src, dst, cached: false }).map(drop)
    }

    fn put_from_mpb(&mut self, src_line: usize, dst: MpbAddr, lines: usize) -> RmaResult<()> {
        self.op(Op::PutFromMpb { src_line, dst, lines }).map(drop)
    }

    fn put_from_mem_cached(&mut self, src: MemRange, dst: MpbAddr) -> RmaResult<()> {
        self.op(Op::PutFromMem { src, dst, cached: true }).map(drop)
    }

    fn get_to_mem(&mut self, src: MpbAddr, dst: MemRange) -> RmaResult<()> {
        self.op(Op::GetToMem { src, dst }).map(drop)
    }

    fn get_to_mpb(&mut self, src: MpbAddr, dst_line: usize, lines: usize) -> RmaResult<()> {
        self.op(Op::GetToMpb { src, dst_line, lines }).map(drop)
    }

    fn flag_put(&mut self, dst: MpbAddr, value: FlagValue) -> RmaResult<()> {
        self.op(Op::FlagPut { dst, value }).map(drop)
    }

    fn flag_read_local(&mut self, line: usize) -> RmaResult<FlagValue> {
        match self.op(Op::ReadLine { line })? {
            Grant::Flag { value, .. } => Ok(value),
            _ => Err(RmaError::Engine("flag read returned no value".into())),
        }
    }

    fn flag_wait_local(
        &mut self,
        line: usize,
        pred: &mut dyn FnMut(FlagValue) -> bool,
    ) -> RmaResult<FlagValue> {
        loop {
            let v = self.flag_read_local(line)?;
            if pred(v) {
                return Ok(v);
            }
            self.parked_line.set(line);
            self.rpc(Request::Park { line, deadline: None })?;
        }
    }

    fn flag_wait_local_until(
        &mut self,
        line: usize,
        pred: &mut dyn FnMut(FlagValue) -> bool,
        deadline: Time,
    ) -> RmaResult<FlagValue> {
        loop {
            let v = self.flag_read_local(line)?;
            if pred(v) {
                return Ok(v);
            }
            if self.now() >= deadline {
                return Err(RmaError::Timeout { core: self.id, line, deadline });
            }
            self.parked_line.set(line);
            self.rpc(Request::Park { line, deadline: Some(deadline) })?;
        }
    }

    fn mem_write(&mut self, offset: usize, data: &[u8]) -> RmaResult<()> {
        let mut buf = self.scratch.take();
        buf.clear();
        buf.extend_from_slice(data);
        match self.rpc(Request::MemWrite { offset, buf })? {
            Grant::Buf { buf, .. } => {
                self.scratch.replace(buf);
                Ok(())
            }
            _ => Err(RmaError::Engine("memory write returned no buffer".into())),
        }
    }

    fn mem_read(&self, offset: usize, buf: &mut [u8]) -> RmaResult<()> {
        let scratch = self.scratch.take();
        match self.rpc(Request::MemRead { offset, len: buf.len(), buf: scratch })? {
            Grant::Buf { buf: filled, .. } => {
                buf.copy_from_slice(&filled);
                self.scratch.replace(filled);
                Ok(())
            }
            _ => Err(RmaError::Engine("memory read returned no bytes".into())),
        }
    }

    fn compute(&mut self, t: Time) {
        // Plain time passage cannot fail except on engine teardown,
        // where the error will surface on the next fallible call.
        let _ = self.rpc(Request::Compute(t));
    }

    fn span_begin(&mut self, span: Span) {
        if self.recording {
            self.record_span(true, span);
        }
    }

    fn span_end(&mut self, span: Span) {
        if self.recording {
            self.record_span(false, span);
        }
    }

    fn msg_tag(&mut self, msg: Option<MsgId>) {
        if self.recording {
            self.cur_msg.set(msg);
        }
    }

    fn delivery_begin(&mut self, epoch: u32) {
        if self.recording {
            self.record_delivery(true, epoch);
        }
    }

    fn delivery_end(&mut self, epoch: u32) {
        if self.recording {
            self.record_delivery(false, epoch);
        }
    }
}

/// Tears the whole run down if the SPMD closure panics, so the other
/// core threads and the completion waiter unblock instead of waiting
/// for a baton that will never be passed again.
struct AbortOnPanic<'a>(&'a Shared);

impl Drop for AbortOnPanic<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.abort(SimError::Engine("a core thread panicked".into()));
        }
    }
}

/// Run `f` as an SPMD program on the simulated chip: one invocation per
/// core, all starting at virtual time zero. Returns when every core's
/// closure has returned.
///
/// The run is fully deterministic: same config and same (per-core
/// deterministic) closure ⇒ identical report, independent of host
/// scheduling.
///
/// Core threads are leased from a process-wide pool, so back-to-back
/// runs (sweeps, benches) pay no thread spawn/join cost after the
/// first.
pub fn run_spmd<R, F>(cfg: &SimConfig, f: F) -> Result<SimReport<R>, SimError>
where
    R: Send,
    F: Fn(&mut SimCore) -> R + Send + Sync,
{
    let n = cfg.num_cores;
    assert!((1..=NUM_CORES).contains(&n), "num_cores must be in 1..=48");
    let _in_flight = crate::telemetry::InFlightGuard::enter();
    let shared = Arc::new(Shared {
        engine: Mutex::new(Engine::new(cfg)),
        grants: (0..n).map(|_| ParkCell::new()).collect(),
        completion: Slot::new(),
    });
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let mem_bytes = cfg.mem_bytes;
    let recording = cfg.record || cfg.flight > 0;
    let f = &f;

    let workers = handoff::checkout(n);
    for (i, worker) in workers.iter().enumerate() {
        let shared = Arc::clone(&shared);
        let result = &results[i];
        let job = move || {
            let _teardown_on_panic = AbortOnPanic(&shared);
            let mut core = SimCore {
                id: CoreId(i as u8),
                num_cores: n,
                mem_bytes,
                recording,
                now: Cell::new(Time::ZERO),
                parked_line: Cell::new(0),
                cur_msg: Cell::new(None),
                scratch: RefCell::new(Vec::new()),
                shared: Arc::clone(&shared),
            };
            if core.wait_start().is_ok() {
                let r = f(&mut core);
                core.finish();
                *result.lock().unwrap_or_else(|e| e.into_inner()) = Some(r);
            }
        };
        // SAFETY: the job borrows `f` and `results` from this stack
        // frame. Every worker is awaited below — on the success and
        // abort paths alike — before this frame returns, so the erased
        // lifetime never outlives its borrows.
        let job: Box<dyn FnOnce() + Send> = Box::new(job);
        let job: handoff::Job =
            unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send>, handoff::Job>(job) };
        worker.submit(job);
    }

    // Kick the run: deliver the first grant (core 0's start `Go`), then
    // wait for completion while the core threads pass the baton around.
    {
        let mut eng = shared.lock_engine();
        match eng.advance() {
            Advanced::Granted(core, g) => {
                eng.chip.stats.handoffs += 1;
                // The kick has no issuing core; record it as the baton
                // appearing at its first holder.
                let at = eng.now;
                eng.record(ObsEvent::Handoff {
                    from: CoreId(core as u8),
                    to: CoreId(core as u8),
                    at,
                });
                drop(eng);
                shared.deposit(core, g);
            }
            Advanced::RunComplete | Advanced::Fatal(_) => {
                drop(eng);
                shared.abort(SimError::Engine("engine wedged before any core started".into()));
            }
        }
    }
    let outcome =
        shared.completion.take().unwrap_or_else(|_| Err(SimError::Engine("run aborted".into())));

    // Wait for every worker before the borrowed stack may go away.
    let mut core_panic = None;
    for worker in &workers {
        if let Err(p) = worker.wait() {
            core_panic = Some(p);
        }
    }
    handoff::checkin(workers);
    if let Some(p) = core_panic {
        resume_unwind(p);
    }

    let out = outcome?;
    let mut collected = Vec::with_capacity(n);
    for slot in &results {
        if let Some(r) = slot.lock().unwrap_or_else(|e| e.into_inner()).take() {
            collected.push(r);
        }
    }
    if collected.len() != n {
        return Err(SimError::Engine("some cores never started".into()));
    }
    let makespan = out.end_times.iter().copied().fold(Time::ZERO, Time::max);
    crate::telemetry::add_run(&out.stats);
    Ok(SimReport {
        results: collected,
        end_times: out.end_times,
        makespan,
        stats: out.stats,
        trace: out.trace,
        events: out.events,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use scc_hal::RmaExt;

    #[test]
    fn trivial_run_finishes_at_time_zero() {
        let cfg = SimConfig { num_cores: 4, mem_bytes: 4096, ..SimConfig::default() };
        let rep = run_spmd(&cfg, |c| c.core().index()).unwrap();
        assert_eq!(rep.results, vec![0, 1, 2, 3]);
        assert_eq!(rep.makespan, Time::ZERO);
    }

    #[test]
    fn single_op_advances_virtual_time_exactly() {
        let cfg = SimConfig { num_cores: 2, mem_bytes: 4096, ..SimConfig::default() };
        let rep = run_spmd(&cfg, |c| {
            if c.core().index() == 0 {
                c.put_from_mpb(0, MpbAddr::new(CoreId(1), 0), 4).unwrap();
            }
            c.now()
        })
        .unwrap();
        // C_put_mpb(4, 1) = 0.069 + 4·(0.136 + 0.136) µs = 1.157 µs.
        assert_eq!(rep.results[0], Time::from_ns(69 + 4 * (136 + 136)));
        assert_eq!(rep.results[1], Time::ZERO);
    }

    #[test]
    fn flag_handoff_moves_data_between_cores() {
        let cfg = SimConfig { num_cores: 2, mem_bytes: 4096, ..SimConfig::default() };
        let msg = b"on-chip hello";
        let rep = run_spmd(&cfg, move |c| -> RmaResult<Vec<u8>> {
            if c.core().index() == 0 {
                c.mem_write(0, msg)?;
                // Stage into own MPB (line 1..), then signal core 1.
                c.put_from_mem(MemRange::new(0, msg.len()), MpbAddr::new(CoreId(0), 1))?;
                c.flag_put(MpbAddr::new(CoreId(1), 0), FlagValue(7))?;
                Ok(Vec::new())
            } else {
                c.flag_wait_eq(0, FlagValue(7))?;
                c.get_to_mem(MpbAddr::new(CoreId(0), 1), MemRange::new(64, msg.len()))?;
                c.mem_to_vec(MemRange::new(64, msg.len()))
            }
        })
        .unwrap();
        let got = rep.results[1].as_ref().unwrap();
        assert_eq!(got.as_slice(), msg);
        // The receiver must finish after the sender's data put started.
        assert!(rep.end_times[1] > rep.end_times[0].saturating_sub(Time::US));
    }

    #[test]
    fn deadlock_detected_and_reported() {
        let cfg = SimConfig { num_cores: 2, mem_bytes: 4096, ..SimConfig::default() };
        let err = run_spmd(&cfg, |c| -> RmaResult<()> {
            if c.core().index() == 1 {
                // Nobody ever writes this flag.
                c.flag_wait_eq(3, FlagValue(1))?;
            }
            Ok(())
        })
        .unwrap_err();
        match err {
            SimError::Deadlock { parked } => {
                assert_eq!(parked, vec![(CoreId(1), 3)]);
            }
            other => panic!("expected deadlock, got {other}"),
        }
    }

    #[test]
    fn rejected_op_reports_error_without_advancing_time() {
        let cfg = SimConfig { num_cores: 1, mem_bytes: 4096, ..SimConfig::default() };
        let rep = run_spmd(&cfg, |c| {
            let e = c.get_to_mpb(MpbAddr::new(CoreId(0), 250), 0, 20).unwrap_err();
            assert!(matches!(e, RmaError::MpbOutOfRange { .. }));
            c.now()
        })
        .unwrap();
        assert_eq!(rep.results[0], Time::ZERO);
    }

    #[test]
    fn compute_advances_time_without_touching_resources() {
        let cfg = SimConfig { num_cores: 1, mem_bytes: 4096, ..SimConfig::default() };
        let rep = run_spmd(&cfg, |c| {
            c.compute(Time::from_us_f64(2.5));
            c.now()
        })
        .unwrap();
        assert_eq!(rep.results[0], Time::from_us_f64(2.5));
        assert_eq!(rep.stats.ops, 0);
    }

    #[test]
    fn determinism_same_program_same_trace() {
        let cfg = SimConfig { num_cores: 8, mem_bytes: 4096, ..SimConfig::default() };
        let prog = |c: &mut SimCore| -> Time {
            let me = c.core().index();
            let next = CoreId(((me + 1) % 8) as u8);
            for round in 1..=5u32 {
                c.flag_put(MpbAddr::new(next, 1), FlagValue(round)).unwrap();
                c.flag_wait_ge(1, FlagValue(round)).unwrap();
            }
            c.now()
        };
        let a = run_spmd(&cfg, prog).unwrap();
        let b = run_spmd(&cfg, prog).unwrap();
        assert_eq!(a.results, b.results);
        assert_eq!(a.end_times, b.end_times);
        assert_eq!(a.stats, b.stats);
        assert!(a.makespan > Time::ZERO);
    }

    #[test]
    fn mem_rw_is_untimed_and_isolated() {
        let cfg = SimConfig { num_cores: 2, mem_bytes: 4096, ..SimConfig::default() };
        let rep = run_spmd(&cfg, |c| {
            c.mem_write(0, &[c.core().0 + 1; 8]).unwrap();
            let mut buf = [0u8; 8];
            c.mem_read(0, &mut buf).unwrap();
            (c.now(), buf)
        })
        .unwrap();
        assert_eq!(rep.results[0], (Time::ZERO, [1u8; 8]));
        assert_eq!(rep.results[1], (Time::ZERO, [2u8; 8]));
    }

    #[test]
    fn oversized_mem_access_rejected() {
        let cfg = SimConfig { num_cores: 1, mem_bytes: 64, ..SimConfig::default() };
        let rep = run_spmd(&cfg, |c| {
            let e = c.mem_write(60, &[0u8; 8]).unwrap_err();
            matches!(e, RmaError::MemOutOfRange { .. })
        })
        .unwrap();
        assert!(rep.results[0]);
    }

    #[test]
    fn mem_rw_reuses_the_scratch_buffer_across_rejections() {
        // A rejected access must hand the scratch buffer back so later
        // valid accesses still see correct data.
        let cfg = SimConfig { num_cores: 1, mem_bytes: 64, ..SimConfig::default() };
        let rep = run_spmd(&cfg, |c| {
            assert!(c.mem_write(60, &[1u8; 8]).is_err());
            c.mem_write(0, &[7u8; 8]).unwrap();
            let mut buf = [0u8; 8];
            assert!(c.mem_read(60, &mut buf).is_err());
            c.mem_read(0, &mut buf).unwrap();
            buf
        })
        .unwrap();
        assert_eq!(rep.results[0], [7u8; 8]);
    }

    #[test]
    fn coalescing_counts_elided_events() {
        // A single 32-line op on an otherwise idle chip coalesces every
        // line step after the first pop.
        let cfg = SimConfig { num_cores: 2, mem_bytes: 4096, ..SimConfig::default() };
        let rep = run_spmd(&cfg, |c| {
            if c.core().index() == 0 {
                c.put_from_mpb(0, MpbAddr::new(CoreId(1), 0), 32).unwrap();
            }
        })
        .unwrap();
        assert!(rep.stats.coalesced_steps >= 31, "stats: {:?}", rep.stats);
        assert_eq!(rep.stats.events, rep.stats.heap_pushes + rep.stats.coalesced_steps);
    }

    #[test]
    fn panicking_core_aborts_the_run() {
        let cfg = SimConfig { num_cores: 2, mem_bytes: 4096, ..SimConfig::default() };
        let outcome = std::panic::catch_unwind(|| {
            let _ = run_spmd(&cfg, |c| {
                if c.core().index() == 1 {
                    panic!("core exploded");
                }
                c.compute(Time::US);
            });
        });
        let p = outcome.expect_err("panic must propagate to the caller");
        let msg = p.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "core exploded");
    }
}
