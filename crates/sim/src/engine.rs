//! The conservative sequential discrete-event engine.
//!
//! Each simulated core runs the user's SPMD closure on its own OS
//! thread, but exactly one thread is runnable at any instant: the
//! scheduler wakes a core by sending it a grant and then blocks until
//! that core either issues its next timed request or finishes. Events
//! are ordered by `(virtual time, sequence number)`, so runs are
//! bit-for-bit deterministic regardless of OS scheduling.
//!
//! Operations are *simulated* (resources reserved, completion time
//! computed) at issue and their memory effects applied at completion —
//! the completion time is each op's linearization point, which keeps
//! reads, writes and flag parking globally time-ordered and makes the
//! wake-on-write machinery race-free.

use crate::chip::{Chip, SimStats};
use crate::ops::{self, Effect, Op};
use crate::params::SimParams;
use crate::trace::{OpKind, OpTrace};
use scc_hal::{CoreId, FlagValue, MemRange, MpbAddr, Rma, RmaError, RmaResult, Time, NUM_CORES};
use std::cell::Cell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;
use std::sync::mpsc::{channel, Receiver, Sender};

/// Configuration of a simulator run.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Number of participating cores (`P ≤ 48`).
    pub num_cores: usize,
    /// Private off-chip memory per core, in bytes.
    pub mem_bytes: usize,
    /// Chip timing parameters.
    pub params: SimParams,
    /// Record an [`OpTrace`] entry per timed operation (costs memory
    /// proportional to the op count; off by default).
    pub trace: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            num_cores: NUM_CORES,
            mem_bytes: 4 << 20,
            params: SimParams::default(),
            trace: false,
        }
    }
}

impl SimConfig {
    pub fn with_cores(num_cores: usize) -> SimConfig {
        SimConfig { num_cores, ..SimConfig::default() }
    }
}

/// Whole-run failure of a simulation.
#[derive(Clone, Debug)]
pub enum SimError {
    /// Every unfinished core was parked on a flag nobody can write.
    Deadlock { parked: Vec<(CoreId, usize)> },
    /// A core thread disconnected (panicked) or the engine wedged.
    Engine(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock { parked } => {
                write!(f, "simulation deadlock; parked: ")?;
                for (c, l) in parked {
                    write!(f, "{c}@line{l} ")?;
                }
                Ok(())
            }
            SimError::Engine(m) => write!(f, "engine failure: {m}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Result of a successful run.
#[derive(Debug)]
pub struct SimReport<R> {
    /// Per-core return values of the SPMD closure.
    pub results: Vec<R>,
    /// Virtual time at which each core finished.
    pub end_times: Vec<Time>,
    /// Virtual time at which the last core finished.
    pub makespan: Time,
    /// Engine counters.
    pub stats: SimStats,
    /// Op-level trace, when enabled in the config.
    pub trace: Option<Vec<OpTrace>>,
}

// ---- messages ----------------------------------------------------------

enum Request {
    Op(Op),
    Park { line: usize },
    Compute(Time),
    MemWrite { offset: usize, data: Vec<u8> },
    MemRead { offset: usize, len: usize },
    Finish,
}

enum Grant {
    Go { now: Time },
    Bytes { now: Time, data: Vec<u8> },
    Flag { now: Time, value: FlagValue },
    Rejected(RmaError),
    Deadlock,
}

// ---- event queue ---------------------------------------------------------

#[derive(PartialEq, Eq)]
struct Event {
    at: Time,
    seq: u64,
    kind: EventKind,
}

#[derive(PartialEq, Eq)]
enum EventKind {
    /// Wake a core with a plain `Go` (start, compute done, park wake).
    Resume(usize),
    /// Advance the core's pending op by one cache line, or — once all
    /// lines are done — apply its effects and resume the core.
    Step(usize),
}

struct PendingOp {
    op: Op,
    remaining: usize,
    issued: Time,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

// ---- scheduler -----------------------------------------------------------

struct Scheduler<'a> {
    chip: &'a mut Chip,
    grant_tx: Vec<Sender<Grant>>,
    req_rx: Vec<Receiver<Request>>,
    queue: BinaryHeap<Reverse<Event>>,
    seq: u64,
    now: Time,
    pending: Vec<Option<PendingOp>>,
    parked: Vec<Option<usize>>,
    finished: Vec<bool>,
    end_times: Vec<Time>,
    done: usize,
    deadlocks: Vec<(CoreId, usize)>,
    deadlock_rounds: u32,
    trace: Option<Vec<OpTrace>>,
}

impl<'a> Scheduler<'a> {
    fn new(
        chip: &'a mut Chip,
        grant_tx: Vec<Sender<Grant>>,
        req_rx: Vec<Receiver<Request>>,
        trace: bool,
    ) -> Self {
        let n = grant_tx.len();
        Scheduler {
            chip,
            grant_tx,
            req_rx,
            queue: BinaryHeap::new(),
            seq: 0,
            now: Time::ZERO,
            pending: (0..n).map(|_| None).collect(),
            parked: vec![None; n],
            finished: vec![false; n],
            end_times: vec![Time::ZERO; n],
            done: 0,
            deadlocks: Vec::new(),
            deadlock_rounds: 0,
            trace: trace.then(Vec::new),
        }
    }

    fn push(&mut self, at: Time, kind: EventKind) {
        self.queue.push(Reverse(Event { at, seq: self.seq, kind }));
        self.seq += 1;
    }

    fn send(&self, core: usize, grant: Grant) -> Result<(), SimError> {
        self.grant_tx[core]
            .send(grant)
            .map_err(|_| SimError::Engine(format!("core C{core} dropped its grant channel")))
    }

    fn run(mut self) -> Result<(Vec<Time>, Option<Vec<OpTrace>>), SimError> {
        let n = self.grant_tx.len();
        for i in 0..n {
            self.push(Time::ZERO, EventKind::Resume(i));
        }
        while self.done < n {
            let Some(Reverse(ev)) = self.queue.pop() else {
                self.handle_deadlock()?;
                continue;
            };
            self.chip.stats.events += 1;
            debug_assert!(ev.at >= self.now, "time went backwards");
            self.now = ev.at;
            self.chip.set_prune_horizon(self.now);
            match ev.kind {
                EventKind::Resume(i) => {
                    self.send(i, Grant::Go { now: self.now })?;
                    self.attend(i)?;
                }
                EventKind::Step(i) => {
                    let p = self.pending[i].as_mut().expect("Step without a pending op");
                    if p.remaining == 0 {
                        let done = self.pending[i].take().expect("pending vanished");
                        let op = done.op;
                        if let Some(tr) = self.trace.as_mut() {
                            tr.push(OpTrace {
                                core: CoreId(i as u8),
                                kind: OpKind::of(&op),
                                lines: ops::total_lines(&op),
                                start: done.issued,
                                end: self.now,
                            });
                        }
                        let grant = self.apply_and_grant(i, &op);
                        self.send(i, grant)?;
                        self.attend(i)?;
                    } else {
                        p.remaining -= 1;
                        let op = p.op.clone();
                        let done = ops::simulate_line(self.chip, CoreId(i as u8), &op, self.now);
                        self.push(done, EventKind::Step(i));
                    }
                }
            }
        }
        if self.deadlocks.is_empty() {
            Ok((self.end_times, self.trace))
        } else {
            Err(SimError::Deadlock { parked: std::mem::take(&mut self.deadlocks) })
        }
    }

    fn apply_and_grant(&mut self, core: usize, op: &Op) -> Grant {
        match ops::apply(self.chip, CoreId(core as u8), op) {
            Effect::None => Grant::Go { now: self.now },
            Effect::Flag(value) => Grant::Flag { now: self.now, value },
            Effect::Bytes(data) => Grant::Bytes { now: self.now, data },
            Effect::Wrote(region) => {
                // Wake every core parked on a just-written line; the
                // wake carries the commit timestamp, and the waiter
                // re-reads the flag before trusting it.
                for w in 0..self.parked.len() {
                    if let Some(line) = self.parked[w] {
                        if region.covers(CoreId(w as u8), line) {
                            self.parked[w] = None;
                            self.push(self.now, EventKind::Resume(w));
                        }
                    }
                }
                Grant::Go { now: self.now }
            }
        }
    }

    /// Serve a core's requests until it blocks on a timed operation,
    /// parks, or finishes.
    fn attend(&mut self, i: usize) -> Result<(), SimError> {
        loop {
            let req = self.req_rx[i].recv().map_err(|_| {
                SimError::Engine(format!("core C{i} disconnected mid-run (panicked?)"))
            })?;
            match req {
                Request::Finish => {
                    self.finished[i] = true;
                    self.end_times[i] = self.now;
                    self.done += 1;
                    return Ok(());
                }
                Request::Compute(t) => {
                    let at = self.now + t;
                    self.push(at, EventKind::Resume(i));
                    return Ok(());
                }
                Request::Park { line } => {
                    if line >= scc_hal::MPB_LINES_PER_CORE {
                        self.send(
                            i,
                            Grant::Rejected(RmaError::MpbOutOfRange {
                                addr: MpbAddr::new(CoreId(i as u8), 0),
                                lines: line,
                            }),
                        )?;
                        continue;
                    }
                    self.chip.stats.parks += 1;
                    self.parked[i] = Some(line);
                    return Ok(());
                }
                Request::MemRead { offset, len } => {
                    let grant = if offset + len <= self.chip.mem_bytes() {
                        let data = self.chip.private_slice(CoreId(i as u8), offset, len).to_vec();
                        Grant::Bytes { now: self.now, data }
                    } else {
                        Grant::Rejected(RmaError::MemOutOfRange {
                            offset,
                            len,
                            mem_len: self.chip.mem_bytes(),
                        })
                    };
                    self.send(i, grant)?;
                }
                Request::MemWrite { offset, data } => {
                    let grant = if offset + data.len() <= self.chip.mem_bytes() {
                        self.chip
                            .private_slice_mut(CoreId(i as u8), offset, data.len())
                            .copy_from_slice(&data);
                        Grant::Go { now: self.now }
                    } else {
                        Grant::Rejected(RmaError::MemOutOfRange {
                            offset,
                            len: data.len(),
                            mem_len: self.chip.mem_bytes(),
                        })
                    };
                    self.send(i, grant)?;
                }
                Request::Op(op) => {
                    if let Err(e) = ops::validate(self.chip, CoreId(i as u8), &op) {
                        self.send(i, Grant::Rejected(e))?;
                        continue;
                    }
                    self.chip.stats.ops += 1;
                    let overhead = ops::op_overhead(self.chip, &op);
                    let remaining = ops::total_lines(&op);
                    self.pending[i] = Some(PendingOp { op, remaining, issued: self.now });
                    self.push(self.now + overhead, EventKind::Step(i));
                    return Ok(());
                }
            }
        }
    }

    /// Queue empty but cores unfinished: everyone left is parked on a
    /// flag that no scheduled op will ever write. Abort their waits.
    fn handle_deadlock(&mut self) -> Result<(), SimError> {
        self.deadlock_rounds += 1;
        if self.deadlock_rounds > 100 {
            return Err(SimError::Engine(
                "livelock: cores keep re-parking after deadlock notification".into(),
            ));
        }
        let victims: Vec<usize> = (0..self.parked.len())
            .filter(|&i| self.parked[i].is_some())
            .collect();
        if victims.is_empty() {
            return Err(SimError::Engine(
                "scheduler stalled: queue empty, cores unfinished, none parked".into(),
            ));
        }
        for v in victims {
            let line = self.parked[v].take().expect("victim must be parked");
            self.deadlocks.push((CoreId(v as u8), line));
            self.send(v, Grant::Deadlock)?;
            self.attend(v)?;
        }
        Ok(())
    }
}

// ---- the per-core handle ---------------------------------------------------

/// The [`Rma`] endpoint handed to the SPMD closure for one simulated
/// core. All methods communicate with the scheduler thread; virtual
/// time advances only through timed operations.
pub struct SimCore {
    id: CoreId,
    num_cores: usize,
    mem_bytes: usize,
    now: Cell<Time>,
    parked_line: Cell<usize>,
    tx: Sender<Request>,
    rx: Receiver<Grant>,
}

impl SimCore {
    fn rpc(&self, req: Request) -> RmaResult<Grant> {
        self.tx
            .send(req)
            .map_err(|_| RmaError::Engine("scheduler gone".into()))?;
        match self.rx.recv() {
            Ok(Grant::Rejected(e)) => Err(e),
            Ok(Grant::Deadlock) => Err(RmaError::Deadlock {
                core: self.id,
                line: self.parked_line.get(),
            }),
            Ok(g) => {
                match &g {
                    Grant::Go { now } | Grant::Bytes { now, .. } | Grant::Flag { now, .. } => {
                        self.now.set(*now)
                    }
                    _ => unreachable!(),
                }
                Ok(g)
            }
            Err(_) => Err(RmaError::Engine("scheduler gone".into())),
        }
    }

    fn op(&self, op: Op) -> RmaResult<Grant> {
        self.rpc(Request::Op(op))
    }

    fn wait_start(&self) -> RmaResult<()> {
        match self.rx.recv() {
            Ok(Grant::Go { now }) => {
                self.now.set(now);
                Ok(())
            }
            _ => Err(RmaError::Engine("no start grant".into())),
        }
    }

    fn finish(&self) {
        // Ignore send failure: if the scheduler is gone the run already
        // failed and the error surfaced elsewhere.
        let _ = self.tx.send(Request::Finish);
    }
}

impl Rma for SimCore {
    fn core(&self) -> CoreId {
        self.id
    }

    fn num_cores(&self) -> usize {
        self.num_cores
    }

    fn now(&self) -> Time {
        self.now.get()
    }

    fn mem_len(&self) -> usize {
        self.mem_bytes
    }

    fn put_from_mem(&mut self, src: MemRange, dst: MpbAddr) -> RmaResult<()> {
        self.op(Op::PutFromMem { src, dst, cached: false }).map(drop)
    }

    fn put_from_mpb(&mut self, src_line: usize, dst: MpbAddr, lines: usize) -> RmaResult<()> {
        self.op(Op::PutFromMpb { src_line, dst, lines }).map(drop)
    }

    fn put_from_mem_cached(&mut self, src: MemRange, dst: MpbAddr) -> RmaResult<()> {
        self.op(Op::PutFromMem { src, dst, cached: true }).map(drop)
    }

    fn get_to_mem(&mut self, src: MpbAddr, dst: MemRange) -> RmaResult<()> {
        self.op(Op::GetToMem { src, dst }).map(drop)
    }

    fn get_to_mpb(&mut self, src: MpbAddr, dst_line: usize, lines: usize) -> RmaResult<()> {
        self.op(Op::GetToMpb { src, dst_line, lines }).map(drop)
    }

    fn flag_put(&mut self, dst: MpbAddr, value: FlagValue) -> RmaResult<()> {
        self.op(Op::FlagPut { dst, value }).map(drop)
    }

    fn flag_read_local(&mut self, line: usize) -> RmaResult<FlagValue> {
        match self.op(Op::ReadLine { line })? {
            Grant::Flag { value, .. } => Ok(value),
            _ => Err(RmaError::Engine("flag read returned no value".into())),
        }
    }

    fn flag_wait_local(
        &mut self,
        line: usize,
        pred: &mut dyn FnMut(FlagValue) -> bool,
    ) -> RmaResult<FlagValue> {
        loop {
            let v = self.flag_read_local(line)?;
            if pred(v) {
                return Ok(v);
            }
            self.parked_line.set(line);
            self.rpc(Request::Park { line })?;
        }
    }

    fn mem_write(&mut self, offset: usize, data: &[u8]) -> RmaResult<()> {
        self.rpc(Request::MemWrite { offset, data: data.to_vec() }).map(drop)
    }

    fn mem_read(&self, offset: usize, buf: &mut [u8]) -> RmaResult<()> {
        match self.rpc(Request::MemRead { offset, len: buf.len() })? {
            Grant::Bytes { data, .. } => {
                buf.copy_from_slice(&data);
                Ok(())
            }
            _ => Err(RmaError::Engine("memory read returned no bytes".into())),
        }
    }

    fn compute(&mut self, t: Time) {
        // Plain time passage cannot fail except on engine teardown,
        // where the error will surface on the next fallible call.
        let _ = self.rpc(Request::Compute(t));
    }
}

/// Run `f` as an SPMD program on the simulated chip: one invocation per
/// core, all starting at virtual time zero. Returns when every core's
/// closure has returned.
///
/// The run is fully deterministic: same config and same (per-core
/// deterministic) closure ⇒ identical report, independent of host
/// scheduling.
pub fn run_spmd<R, F>(cfg: &SimConfig, f: F) -> Result<SimReport<R>, SimError>
where
    R: Send,
    F: Fn(&mut SimCore) -> R + Send + Sync,
{
    let n = cfg.num_cores;
    assert!((1..=NUM_CORES).contains(&n), "num_cores must be in 1..=48");
    let mut chip = Chip::new(cfg.params, n, cfg.mem_bytes);
    let f = &f;
    std::thread::scope(|s| {
        let mut grant_txs = Vec::with_capacity(n);
        let mut req_rxs = Vec::with_capacity(n);
        let mut joins = Vec::with_capacity(n);
        for i in 0..n {
            let (gtx, grx) = channel::<Grant>();
            let (rtx, rrx) = channel::<Request>();
            grant_txs.push(gtx);
            req_rxs.push(rrx);
            let mem_bytes = cfg.mem_bytes;
            joins.push(s.spawn(move || -> Option<R> {
                let mut core = SimCore {
                    id: CoreId(i as u8),
                    num_cores: n,
                    mem_bytes,
                    now: Cell::new(Time::ZERO),
                    parked_line: Cell::new(0),
                    tx: rtx,
                    rx: grx,
                };
                core.wait_start().ok()?;
                let r = f(&mut core);
                core.finish();
                Some(r)
            }));
        }

        let sched_result = Scheduler::new(&mut chip, grant_txs, req_rxs, cfg.trace).run();

        let mut results = Vec::with_capacity(n);
        for j in joins {
            match j.join() {
                Ok(Some(r)) => results.push(r),
                Ok(None) => {}
                Err(p) => std::panic::resume_unwind(p),
            }
        }
        let (end_times, trace) = sched_result?;
        if results.len() != n {
            return Err(SimError::Engine("some cores never started".into()));
        }
        let makespan = end_times.iter().copied().fold(Time::ZERO, Time::max);
        Ok(SimReport { results, end_times, makespan, stats: chip.stats.clone(), trace })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use scc_hal::RmaExt;

    #[test]
    fn trivial_run_finishes_at_time_zero() {
        let cfg = SimConfig { num_cores: 4, mem_bytes: 4096, params: SimParams::default(), ..SimConfig::default() };
        let rep = run_spmd(&cfg, |c| c.core().index()).unwrap();
        assert_eq!(rep.results, vec![0, 1, 2, 3]);
        assert_eq!(rep.makespan, Time::ZERO);
    }

    #[test]
    fn single_op_advances_virtual_time_exactly() {
        let cfg = SimConfig { num_cores: 2, mem_bytes: 4096, params: SimParams::default(), ..SimConfig::default() };
        let rep = run_spmd(&cfg, |c| {
            if c.core().index() == 0 {
                c.put_from_mpb(0, MpbAddr::new(CoreId(1), 0), 4).unwrap();
            }
            c.now()
        })
        .unwrap();
        // C_put_mpb(4, 1) = 0.069 + 4·(0.136 + 0.136) µs = 1.157 µs.
        assert_eq!(rep.results[0], Time::from_ns(69 + 4 * (136 + 136)));
        assert_eq!(rep.results[1], Time::ZERO);
    }

    #[test]
    fn flag_handoff_moves_data_between_cores() {
        let cfg = SimConfig { num_cores: 2, mem_bytes: 4096, params: SimParams::default(), ..SimConfig::default() };
        let msg = b"on-chip hello";
        let rep = run_spmd(&cfg, move |c| -> RmaResult<Vec<u8>> {
            if c.core().index() == 0 {
                c.mem_write(0, msg)?;
                // Stage into own MPB (line 1..), then signal core 1.
                c.put_from_mem(MemRange::new(0, msg.len()), MpbAddr::new(CoreId(0), 1))?;
                c.flag_put(MpbAddr::new(CoreId(1), 0), FlagValue(7))?;
                Ok(Vec::new())
            } else {
                c.flag_wait_eq(0, FlagValue(7))?;
                c.get_to_mem(MpbAddr::new(CoreId(0), 1), MemRange::new(64, msg.len()))?;
                c.mem_to_vec(MemRange::new(64, msg.len()))
            }
        })
        .unwrap();
        let got = rep.results[1].as_ref().unwrap();
        assert_eq!(got.as_slice(), msg);
        // The receiver must finish after the sender's data put started.
        assert!(rep.end_times[1] > rep.end_times[0].saturating_sub(Time::US));
    }

    #[test]
    fn deadlock_detected_and_reported() {
        let cfg = SimConfig { num_cores: 2, mem_bytes: 4096, params: SimParams::default(), ..SimConfig::default() };
        let err = run_spmd(&cfg, |c| -> RmaResult<()> {
            if c.core().index() == 1 {
                // Nobody ever writes this flag.
                c.flag_wait_eq(3, FlagValue(1))?;
            }
            Ok(())
        })
        .unwrap_err();
        match err {
            SimError::Deadlock { parked } => {
                assert_eq!(parked, vec![(CoreId(1), 3)]);
            }
            other => panic!("expected deadlock, got {other}"),
        }
    }

    #[test]
    fn rejected_op_reports_error_without_advancing_time() {
        let cfg = SimConfig { num_cores: 1, mem_bytes: 4096, params: SimParams::default(), ..SimConfig::default() };
        let rep = run_spmd(&cfg, |c| {
            let e = c.get_to_mpb(MpbAddr::new(CoreId(0), 250), 0, 20).unwrap_err();
            assert!(matches!(e, RmaError::MpbOutOfRange { .. }));
            c.now()
        })
        .unwrap();
        assert_eq!(rep.results[0], Time::ZERO);
    }

    #[test]
    fn compute_advances_time_without_touching_resources() {
        let cfg = SimConfig { num_cores: 1, mem_bytes: 4096, params: SimParams::default(), ..SimConfig::default() };
        let rep = run_spmd(&cfg, |c| {
            c.compute(Time::from_us_f64(2.5));
            c.now()
        })
        .unwrap();
        assert_eq!(rep.results[0], Time::from_us_f64(2.5));
        assert_eq!(rep.stats.ops, 0);
    }

    #[test]
    fn determinism_same_program_same_trace() {
        let cfg = SimConfig { num_cores: 8, mem_bytes: 4096, params: SimParams::default(), ..SimConfig::default() };
        let prog = |c: &mut SimCore| -> Time {
            let me = c.core().index();
            let next = CoreId(((me + 1) % 8) as u8);
            for round in 1..=5u32 {
                c.flag_put(MpbAddr::new(next, 1), FlagValue(round)).unwrap();
                c.flag_wait_ge(1, FlagValue(round)).unwrap();
            }
            c.now()
        };
        let a = run_spmd(&cfg, prog).unwrap();
        let b = run_spmd(&cfg, prog).unwrap();
        assert_eq!(a.results, b.results);
        assert_eq!(a.end_times, b.end_times);
        assert_eq!(a.stats, b.stats);
        assert!(a.makespan > Time::ZERO);
    }

    #[test]
    fn mem_rw_is_untimed_and_isolated() {
        let cfg = SimConfig { num_cores: 2, mem_bytes: 4096, params: SimParams::default(), ..SimConfig::default() };
        let rep = run_spmd(&cfg, |c| {
            c.mem_write(0, &[c.core().0 + 1; 8]).unwrap();
            let mut buf = [0u8; 8];
            c.mem_read(0, &mut buf).unwrap();
            (c.now(), buf)
        })
        .unwrap();
        assert_eq!(rep.results[0], (Time::ZERO, [1u8; 8]));
        assert_eq!(rep.results[1], (Time::ZERO, [2u8; 8]));
    }

    #[test]
    fn oversized_mem_access_rejected() {
        let cfg = SimConfig { num_cores: 1, mem_bytes: 64, params: SimParams::default(), ..SimConfig::default() };
        let rep = run_spmd(&cfg, |c| {
            let e = c.mem_write(60, &[0u8; 8]).unwrap_err();
            matches!(e, RmaError::MemOutOfRange { .. })
        })
        .unwrap();
        assert!(rep.results[0]);
    }
}
