//! Timed RMA operations: validation, timing simulation against the
//! chip's resources, and (at completion time) application of their
//! memory effects.
//!
//! Timing decomposition per cache line follows Section 3.1 of the
//! paper: the issuing core pays its per-line overhead, the request
//! packet traverses `d` routers, the target resource (MPB port or
//! memory controller) services the line, and the response/acknowledge
//! packet traverses the `d` routers back. Since a P54C core executes a
//! single memory transaction at a time, the `m` lines of an operation
//! are strictly sequential.

use crate::chip::Chip;
use scc_hal::{
    CoreId, FlagValue, MemRange, MpbAddr, RmaError, RmaResult, Time, CACHE_LINE_BYTES,
    MPB_LINES_PER_CORE,
};
use scc_obs::OpKind;

/// A timed operation issued by a core.
#[derive(Clone, Debug)]
pub enum Op {
    /// put: private memory → some MPB. With `cached`, the source read
    /// is free (data hot in L1, Section 5.2.2 of the paper).
    PutFromMem { src: MemRange, dst: MpbAddr, cached: bool },
    /// put: own MPB → some MPB.
    PutFromMpb { src_line: usize, dst: MpbAddr, lines: usize },
    /// get: some MPB → private memory.
    GetToMem { src: MpbAddr, dst: MemRange },
    /// get: some MPB → own MPB.
    GetToMpb { src: MpbAddr, dst_line: usize, lines: usize },
    /// 1-line put of a flag value.
    FlagPut { dst: MpbAddr, value: FlagValue },
    /// 1-line local read of a flag in the issuer's own MPB.
    ReadLine { line: usize },
}

/// Region of an MPB written by an op (used to wake parked waiters).
#[derive(Clone, Copy, Debug)]
pub struct WrittenRegion {
    pub core: CoreId,
    pub first_line: usize,
    pub lines: usize,
}

impl WrittenRegion {
    pub fn covers(&self, core: CoreId, line: usize) -> bool {
        self.core == core && line >= self.first_line && line < self.first_line + self.lines
    }
}

/// Outcome of applying an op's effects at completion time.
pub enum Effect {
    None,
    Wrote(WrittenRegion),
    Flag(FlagValue),
}

fn check_mpb(addr: MpbAddr, lines: usize) -> RmaResult<()> {
    if lines == 0 {
        return Err(RmaError::EmptyTransfer);
    }
    if !addr.fits(lines) {
        return Err(RmaError::MpbOutOfRange { addr, lines });
    }
    Ok(())
}

fn check_own_lines(owner: CoreId, first: usize, lines: usize) -> RmaResult<()> {
    if lines == 0 {
        return Err(RmaError::EmptyTransfer);
    }
    if first + lines > MPB_LINES_PER_CORE {
        return Err(RmaError::MpbOutOfRange {
            addr: MpbAddr::new(owner, first.min(MPB_LINES_PER_CORE - 1)),
            lines,
        });
    }
    Ok(())
}

fn check_mem(range: MemRange, mem_len: usize) -> RmaResult<()> {
    if range.len == 0 {
        return Err(RmaError::EmptyTransfer);
    }
    if range.end() > mem_len {
        return Err(RmaError::MemOutOfRange { offset: range.offset, len: range.len, mem_len });
    }
    Ok(())
}

/// Validate an op before simulating it. `issuer` is the calling core.
pub fn validate(chip: &Chip, issuer: CoreId, op: &Op) -> RmaResult<()> {
    match op {
        Op::PutFromMem { src, dst, .. } => {
            check_mem(*src, chip.mem_bytes())?;
            check_mpb(*dst, src.lines())?;
            check_core(chip, dst.core)
        }
        Op::PutFromMpb { src_line, dst, lines } => {
            check_own_lines(issuer, *src_line, *lines)?;
            check_mpb(*dst, *lines)?;
            check_core(chip, dst.core)
        }
        Op::GetToMem { src, dst } => {
            check_mem(*dst, chip.mem_bytes())?;
            check_mpb(*src, dst.lines())?;
            check_core(chip, src.core)
        }
        Op::GetToMpb { src, dst_line, lines } => {
            check_mpb(*src, *lines)?;
            check_own_lines(issuer, *dst_line, *lines)?;
            check_core(chip, src.core)
        }
        Op::FlagPut { dst, .. } => {
            check_mpb(*dst, 1)?;
            check_core(chip, dst.core)
        }
        Op::ReadLine { line } => check_own_lines(issuer, *line, 1),
    }
}

fn check_core(chip: &Chip, core: CoreId) -> RmaResult<()> {
    if core.index() >= chip.num_cores {
        return Err(RmaError::Engine(format!(
            "{core} is not part of this {}-core run",
            chip.num_cores
        )));
    }
    Ok(())
}

// ---- per-line timed primitives ---------------------------------------

/// One cache-line read of `owner`'s MPB by `issuer`, starting at `t`.
fn mpb_read_line(chip: &mut Chip, t: Time, issuer: CoreId, owner: CoreId) -> Time {
    let t = t + chip.params.o_core_mpb_read;
    let t = chip.traverse(issuer, t, issuer.tile(), owner.tile());
    let t = chip.port_read(issuer, t, owner.tile());
    chip.traverse(issuer, t, owner.tile(), issuer.tile())
}

/// One cache-line write into `owner`'s MPB by `issuer` (completion
/// includes the acknowledgment's way back).
fn mpb_write_line(chip: &mut Chip, t: Time, issuer: CoreId, owner: CoreId) -> Time {
    let t = t + chip.params.o_core_mpb_write;
    let t = chip.traverse(issuer, t, issuer.tile(), owner.tile());
    let t = chip.port_write(issuer, t, owner.tile());
    chip.traverse(issuer, t, owner.tile(), issuer.tile())
}

/// One cache-line read from the issuer's private off-chip memory.
fn mem_read_line(chip: &mut Chip, t: Time, issuer: CoreId) -> Time {
    let mc = issuer.memory_controller();
    let t = t + chip.params.o_core_mem_read;
    let t = chip.traverse(issuer, t, issuer.tile(), mc.attach_tile());
    let t = chip.mc_service(issuer, t, mc, false);
    chip.traverse(issuer, t, mc.attach_tile(), issuer.tile())
}

/// One cache-line write into the issuer's private off-chip memory.
fn mem_write_line(chip: &mut Chip, t: Time, issuer: CoreId) -> Time {
    let mc = issuer.memory_controller();
    let t = t + chip.params.o_core_mem_write;
    let t = chip.traverse(issuer, t, issuer.tile(), mc.attach_tile());
    let t = chip.mc_service(issuer, t, mc, true);
    chip.traverse(issuer, t, mc.attach_tile(), issuer.tile())
}

/// Coarse classification of an op for traces and event streams.
pub fn op_kind(op: &Op) -> OpKind {
    match op {
        Op::PutFromMem { .. } => OpKind::PutFromMem,
        Op::PutFromMpb { .. } => OpKind::PutFromMpb,
        Op::GetToMem { .. } => OpKind::GetToMem,
        Op::GetToMpb { .. } => OpKind::GetToMpb,
        Op::FlagPut { .. } => OpKind::FlagPut,
        Op::ReadLine { .. } => OpKind::FlagRead,
    }
}

/// Number of cache lines the op transfers.
pub fn total_lines(op: &Op) -> usize {
    match op {
        Op::PutFromMem { src, .. } => src.lines(),
        Op::PutFromMpb { lines, .. } => *lines,
        Op::GetToMem { dst, .. } => dst.lines(),
        Op::GetToMpb { lines, .. } => *lines,
        Op::FlagPut { .. } | Op::ReadLine { .. } => 1,
    }
}

/// Fixed software overhead charged once, before the first line.
pub fn op_overhead(chip: &Chip, op: &Op) -> Time {
    match op {
        Op::PutFromMem { .. } => chip.params.o_put_mem,
        Op::PutFromMpb { .. } | Op::FlagPut { .. } => chip.params.o_put_mpb,
        Op::GetToMem { .. } => chip.params.o_get_mem,
        Op::GetToMpb { .. } => chip.params.o_get_mpb,
        Op::ReadLine { .. } => Time::ZERO,
    }
}

/// Simulate the transfer of **one** cache line of the op, starting at
/// `t`; reserves resource capacity and returns the line's completion
/// time.
///
/// Ops are stepped line by line from the event loop (a P54C has a
/// single outstanding transaction, so line `i+1` starts when line `i`
/// completes). Stepping — rather than reserving all `m` lines at issue
/// time — is what lets concurrent operations interleave at a contended
/// MPB port instead of serializing wholesale.
pub fn simulate_line(chip: &mut Chip, issuer: CoreId, op: &Op, t: Time) -> Time {
    chip.stats.lines_moved += 1;
    match op {
        Op::PutFromMem { dst, cached, .. } => {
            let t = if *cached { t } else { mem_read_line(chip, t, issuer) };
            mpb_write_line(chip, t, issuer, dst.core)
        }
        Op::PutFromMpb { dst, .. } => {
            let t = mpb_read_line(chip, t, issuer, issuer);
            mpb_write_line(chip, t, issuer, dst.core)
        }
        Op::GetToMem { src, .. } => {
            let t = mpb_read_line(chip, t, issuer, src.core);
            mem_write_line(chip, t, issuer)
        }
        Op::GetToMpb { src, .. } => {
            let t = mpb_read_line(chip, t, issuer, src.core);
            mpb_write_line(chip, t, issuer, issuer)
        }
        // A flag put is modelled like a 1-line put from the issuer's
        // MPB: value marshalling costs one local line read, the deposit
        // one remote line write (matches C^mpb_put(1, d)).
        Op::FlagPut { dst, .. } => {
            let t = mpb_read_line(chip, t, issuer, issuer);
            mpb_write_line(chip, t, issuer, dst.core)
        }
        Op::ReadLine { .. } => mpb_read_line(chip, t, issuer, issuer),
    }
}

/// Convenience for tests and microbenchmark cross-checks: full op
/// completion time in a contention-free chip (overhead plus all lines
/// back to back).
pub fn simulate_whole(chip: &mut Chip, issuer: CoreId, op: &Op, t: Time) -> Time {
    chip.stats.ops += 1;
    let mut t = t + op_overhead(chip, op);
    for _ in 0..total_lines(op) {
        t = simulate_line(chip, issuer, op, t);
    }
    t
}

/// Apply the memory effects of a completed op and produce the grant
/// payload. Linearization point of every op is its completion time;
/// the scheduler calls this exactly then.
pub fn apply(chip: &mut Chip, issuer: CoreId, op: &Op) -> Effect {
    match op {
        Op::PutFromMem { src, dst, .. } => {
            chip.copy_private_to_mpb(issuer, src.offset, dst.core, dst.byte_offset(), src.len);
            Effect::Wrote(WrittenRegion {
                core: dst.core,
                first_line: dst.line(),
                lines: src.lines(),
            })
        }
        Op::PutFromMpb { src_line, dst, lines } => {
            chip.copy_mpb_to_mpb(
                issuer,
                src_line * CACHE_LINE_BYTES,
                dst.core,
                dst.byte_offset(),
                lines * CACHE_LINE_BYTES,
            );
            Effect::Wrote(WrittenRegion { core: dst.core, first_line: dst.line(), lines: *lines })
        }
        Op::GetToMem { src, dst } => {
            chip.copy_mpb_to_private(src.core, src.byte_offset(), issuer, dst.offset, dst.len);
            Effect::None
        }
        Op::GetToMpb { src, dst_line, lines } => {
            chip.copy_mpb_to_mpb(
                src.core,
                src.byte_offset(),
                issuer,
                dst_line * CACHE_LINE_BYTES,
                lines * CACHE_LINE_BYTES,
            );
            Effect::Wrote(WrittenRegion { core: issuer, first_line: *dst_line, lines: *lines })
        }
        Op::FlagPut { dst, value } => {
            let line = value.encode();
            chip.mpb_slice_mut(dst.core, dst.byte_offset(), CACHE_LINE_BYTES)
                .copy_from_slice(&line);
            Effect::Wrote(WrittenRegion { core: dst.core, first_line: dst.line(), lines: 1 })
        }
        Op::ReadLine { line } => {
            let bytes = chip.mpb_slice(issuer, line * CACHE_LINE_BYTES, CACHE_LINE_BYTES);
            Effect::Flag(FlagValue::decode(bytes))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::SimParams;

    fn fixture() -> Chip {
        Chip::new(SimParams::default(), 48, 64 * 1024)
    }

    /// Contention-free op timings must reproduce the closed-form model
    /// (Formulas 7–12 with Table-1 parameters) exactly.
    #[test]
    fn timings_match_model_formulas() {
        let p = scc_model_params();
        let model = ModelLike::new(p);
        for (m, dst) in [(1usize, CoreId(1)), (4, CoreId(2)), (16, CoreId(47))] {
            let d = CoreId(0).mpb_distance(dst);

            let mut chip = fixture();
            let done = simulate_whole(
                &mut chip,
                CoreId(0),
                &Op::PutFromMpb { src_line: 0, dst: MpbAddr::new(dst, 0), lines: m },
                Time::ZERO,
            );
            assert_close(done, model.c_put_mpb(m, d), "put_mpb");

            let mut chip = fixture();
            let done = simulate_whole(
                &mut chip,
                CoreId(0),
                &Op::GetToMpb { src: MpbAddr::new(dst, 0), dst_line: 0, lines: m },
                Time::ZERO,
            );
            assert_close(done, model.c_get_mpb(m, d), "get_mpb");

            let dmem = CoreId(0).mem_distance();
            let mut chip = fixture();
            let done = simulate_whole(
                &mut chip,
                CoreId(0),
                &Op::PutFromMem {
                    src: MemRange::new(0, m * CACHE_LINE_BYTES),
                    dst: MpbAddr::new(dst, 0),
                    cached: false,
                },
                Time::ZERO,
            );
            assert_close(done, model.c_put_mem(m, dmem, d), "put_mem");

            let mut chip = fixture();
            let done = simulate_whole(
                &mut chip,
                CoreId(0),
                &Op::GetToMem {
                    src: MpbAddr::new(dst, 0),
                    dst: MemRange::new(0, m * CACHE_LINE_BYTES),
                },
                Time::ZERO,
            );
            assert_close(done, model.c_get_mem(m, d, dmem), "get_mem");
        }
    }

    /// Minimal re-statement of the model formulas in picoseconds so the
    /// sim crate does not depend on scc-model (which depends on nothing
    /// here; the cross-check with the real crate lives in integration
    /// tests).
    struct ModelLike {
        p: SimParams,
    }
    impl ModelLike {
        fn new(p: SimParams) -> Self {
            ModelLike { p }
        }
        fn c_mpb_r(&self, d: u32) -> u64 {
            (self.p.o_core_mpb_read + self.p.mpb_port_read).as_ps()
                + 2 * d as u64 * self.p.l_hop.as_ps()
        }
        fn c_mpb_w(&self, d: u32) -> u64 {
            (self.p.o_core_mpb_write + self.p.mpb_port_write).as_ps()
                + 2 * d as u64 * self.p.l_hop.as_ps()
        }
        fn c_mem_r(&self, d: u32) -> u64 {
            (self.p.o_core_mem_read + self.p.mc_read).as_ps() + 2 * d as u64 * self.p.l_hop.as_ps()
        }
        fn c_mem_w(&self, d: u32) -> u64 {
            (self.p.o_core_mem_write + self.p.mc_write).as_ps()
                + 2 * d as u64 * self.p.l_hop.as_ps()
        }
        fn c_put_mpb(&self, m: usize, d: u32) -> u64 {
            self.p.o_put_mpb.as_ps() + m as u64 * (self.c_mpb_r(1) + self.c_mpb_w(d))
        }
        fn c_get_mpb(&self, m: usize, d: u32) -> u64 {
            self.p.o_get_mpb.as_ps() + m as u64 * (self.c_mpb_r(d) + self.c_mpb_w(1))
        }
        fn c_put_mem(&self, m: usize, ds: u32, dd: u32) -> u64 {
            self.p.o_put_mem.as_ps() + m as u64 * (self.c_mem_r(ds) + self.c_mpb_w(dd))
        }
        fn c_get_mem(&self, m: usize, ds: u32, dd: u32) -> u64 {
            self.p.o_get_mem.as_ps() + m as u64 * (self.c_mpb_r(ds) + self.c_mem_w(dd))
        }
    }

    fn scc_model_params() -> SimParams {
        SimParams::default()
    }

    fn assert_close(actual: Time, expect_ps: u64, what: &str) {
        assert_eq!(actual.as_ps(), expect_ps, "{what}: sim {actual:?} vs model {expect_ps} ps");
    }

    #[test]
    fn flag_put_costs_one_line_put() {
        let mut chip = fixture();
        let done = simulate_whole(
            &mut chip,
            CoreId(0),
            &Op::FlagPut { dst: MpbAddr::new(CoreId(3), 7), value: FlagValue(1) },
            Time::ZERO,
        );
        let model = ModelLike::new(SimParams::default());
        let d = CoreId(0).mpb_distance(CoreId(3));
        assert_eq!(done.as_ps(), model.c_put_mpb(1, d));
    }

    #[test]
    fn validation_catches_bad_addresses() {
        let chip = fixture();
        let e = validate(
            &chip,
            CoreId(0),
            &Op::GetToMpb { src: MpbAddr::new(CoreId(1), 250), dst_line: 0, lines: 10 },
        );
        assert!(matches!(e, Err(RmaError::MpbOutOfRange { .. })));

        let e = validate(
            &chip,
            CoreId(0),
            &Op::PutFromMem {
                src: MemRange::new(0, 1 << 20),
                dst: MpbAddr::new(CoreId(1), 0),
                cached: false,
            },
        );
        assert!(matches!(e, Err(RmaError::MemOutOfRange { .. })));

        let e = validate(
            &chip,
            CoreId(0),
            &Op::PutFromMpb { src_line: 0, dst: MpbAddr::new(CoreId(1), 0), lines: 0 },
        );
        assert!(matches!(e, Err(RmaError::EmptyTransfer)));

        // Partial final line is fine.
        assert!(validate(
            &chip,
            CoreId(0),
            &Op::PutFromMem {
                src: MemRange::new(0, 33),
                dst: MpbAddr::new(CoreId(1), 0),
                cached: false
            },
        )
        .is_ok());
    }

    #[test]
    fn validation_rejects_cores_outside_run() {
        let chip = Chip::new(SimParams::default(), 4, 4096);
        let e = validate(
            &chip,
            CoreId(0),
            &Op::FlagPut { dst: MpbAddr::new(CoreId(7), 0), value: FlagValue(1) },
        );
        assert!(matches!(e, Err(RmaError::Engine(_))));
    }

    #[test]
    fn apply_moves_the_payload() {
        let mut chip = fixture();
        chip.private_slice_mut(CoreId(0), 0, 5).copy_from_slice(b"hello");
        let op = Op::PutFromMem {
            src: MemRange::new(0, 5),
            dst: MpbAddr::new(CoreId(2), 4),
            cached: false,
        };
        match apply(&mut chip, CoreId(0), &op) {
            Effect::Wrote(w) => {
                assert!(w.covers(CoreId(2), 4));
                assert!(!w.covers(CoreId(2), 5));
                assert!(!w.covers(CoreId(1), 4));
            }
            _ => panic!("expected write effect"),
        }
        assert_eq!(chip.mpb_slice(CoreId(2), 4 * 32, 5), b"hello");

        // Round-trip back into another core's private memory.
        let op = Op::GetToMem { src: MpbAddr::new(CoreId(2), 4), dst: MemRange::new(64, 5) };
        apply(&mut chip, CoreId(9), &op);
        assert_eq!(chip.private_slice(CoreId(9), 64, 5), b"hello");
    }

    #[test]
    fn read_line_decodes_flag() {
        let mut chip = fixture();
        let val = FlagValue(0xABCD);
        chip.mpb_slice_mut(CoreId(4), 6 * 32, 32).copy_from_slice(&val.encode());
        match apply(&mut chip, CoreId(4), &Op::ReadLine { line: 6 }) {
            Effect::Flag(v) => assert_eq!(v, val),
            _ => panic!("expected flag effect"),
        }
    }
}
