//! Deterministic fault injection.
//!
//! A [`FaultPlan`] describes which faults the engine injects into a
//! run: transient loss of remote doorbell/notification writes, extra
//! in-flight delay of individual transfer lines, and per-core slowdown
//! windows. Everything is driven by a seeded [splitmix64] counter that
//! the engine advances in deterministic event order, so a given plan
//! reproduces the *same* faults on every run, on every host, at any
//! `--jobs` — faulty runs are as replayable as clean ones.
//!
//! The plan is zero-cost when empty: the engine holds an
//! `Option<FaultState>` that is `None` for an empty plan, so the only
//! overhead on the default path is a never-taken branch per hook (the
//! `fault_plan_empty_is_identity` test pins virtual times and
//! [`crate::SimStats`] bit-identical to a run without the field).
//!
//! Faults model *transport* failures, not memory corruption:
//!
//! * **Lost notification** — a [`FlagPut`](crate::ops::Op::FlagPut)
//!   whose destination is a *remote* MPB spends its full transfer time
//!   but the deposit never lands; nobody parked on the line is woken.
//!   Local flag writes (a core publishing progress in its own MPB)
//!   never traverse a mesh link and are never dropped — which is what
//!   makes probe-based recovery in `scc-core`'s reliable collectives
//!   sound.
//! * **Link delay** — a simulated transfer line completes `delay`
//!   later than the contention model says; the data still arrives.
//! * **Core slowdown** — ops issued by a listed core inside a virtual
//!   time window pay extra per-op overhead, emulating a straggler.
//!
//! Each injected fault is counted in [`crate::SimStats::faults`],
//! its directly lost time accumulated in
//! [`crate::SimStats::fault_lost`], and (when recording is on)
//! reported as an [`scc_obs::ObsEvent::Fault`] so journeys and skew
//! reports can attribute the lost time.
//!
//! [splitmix64]: https://prng.di.unimi.it/splitmix64.c

use scc_hal::{CoreId, Time};

/// One deterministic per-core slowdown window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SlowWindow {
    /// The straggling core.
    pub core: CoreId,
    /// Window start (inclusive), in virtual time.
    pub from: Time,
    /// Window end (exclusive).
    pub until: Time,
    /// Extra overhead added to every timed op the core issues while
    /// the window covers the issue instant.
    pub extra: Time,
}

impl SlowWindow {
    pub fn covers(&self, core: CoreId, at: Time) -> bool {
        self.core == core && at >= self.from && at < self.until
    }
}

/// The full fault schedule of one simulated run.
///
/// Probabilities are expressed in parts per million so the draw is a
/// pure integer comparison — no floating point anywhere near the
/// deterministic path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed of the fault RNG. Runs with the same plan (seed included)
    /// inject identical faults.
    pub seed: u64,
    /// Probability (ppm) that a remote flag put's deposit is dropped.
    pub drop_notification_ppm: u32,
    /// Probability (ppm) that a transfer line is delayed by
    /// [`FaultPlan::delay`].
    pub delay_ppm: u32,
    /// The extra in-flight time when a line delay fires.
    pub delay: Time,
    /// Deterministic straggler windows (no randomness involved).
    pub slow: Vec<SlowWindow>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0x5cc_b0a5,
            drop_notification_ppm: 0,
            delay_ppm: 0,
            delay: Time::ZERO,
            slow: Vec::new(),
        }
    }
}

impl FaultPlan {
    /// An empty plan injects nothing and costs nothing: the engine
    /// does not even instantiate the RNG.
    pub fn is_empty(&self) -> bool {
        self.drop_notification_ppm == 0 && self.delay_ppm == 0 && self.slow.is_empty()
    }
}

/// Live injection state owned by the engine (only for non-empty plans).
pub(crate) struct FaultState {
    plan: FaultPlan,
    rng: u64,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan) -> FaultState {
        let rng = plan.seed;
        FaultState { plan, rng }
    }

    fn next(&mut self) -> u64 {
        // splitmix64: the full-period 64-bit mixer. Good enough for
        // fault scheduling, trivially reproducible everywhere.
        self.rng = self.rng.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Draws only when the class is enabled, so enabling one fault
    /// class never perturbs the schedule of another.
    fn hit(&mut self, ppm: u32) -> bool {
        ppm > 0 && self.next() % 1_000_000 < u64::from(ppm)
    }

    /// Should this remote flag deposit be dropped?
    pub(crate) fn drop_notification(&mut self) -> bool {
        self.hit(self.plan.drop_notification_ppm)
    }

    /// Extra in-flight time for the transfer line just simulated.
    pub(crate) fn line_delay(&mut self) -> Option<Time> {
        self.hit(self.plan.delay_ppm).then_some(self.plan.delay)
    }

    /// Extra per-op overhead for an op issued by `core` at `at`.
    pub(crate) fn slow_extra(&self, core: CoreId, at: Time) -> Time {
        self.plan.slow.iter().filter(|w| w.covers(core, at)).map(|w| w.extra).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_empty() {
        assert!(FaultPlan::default().is_empty());
        assert!(!FaultPlan { drop_notification_ppm: 1, ..FaultPlan::default() }.is_empty());
        assert!(!FaultPlan { delay_ppm: 1, ..FaultPlan::default() }.is_empty());
        let w = SlowWindow { core: CoreId(0), from: Time::ZERO, until: Time::US, extra: Time::US };
        assert!(!FaultPlan { slow: vec![w], ..FaultPlan::default() }.is_empty());
    }

    #[test]
    fn draws_are_reproducible() {
        let plan = FaultPlan { drop_notification_ppm: 250_000, ..FaultPlan::default() };
        let mut a = FaultState::new(plan.clone());
        let mut b = FaultState::new(plan);
        let da: Vec<bool> = (0..256).map(|_| a.drop_notification()).collect();
        let db: Vec<bool> = (0..256).map(|_| b.drop_notification()).collect();
        assert_eq!(da, db);
        let hits = da.iter().filter(|&&h| h).count();
        assert!((32..96).contains(&hits), "250000 ppm over 256 draws hit {hits} times");
    }

    #[test]
    fn disabled_class_never_draws() {
        let mut f = FaultState::new(FaultPlan { delay_ppm: 0, ..FaultPlan::default() });
        let before = f.rng;
        assert_eq!(f.line_delay(), None);
        assert!(!f.drop_notification());
        assert_eq!(f.rng, before, "disabled classes must not consume RNG state");
    }

    #[test]
    fn slow_windows_compose_and_bound() {
        let w = |core, from, until, extra| SlowWindow {
            core: CoreId(core),
            from: Time::from_ns(from),
            until: Time::from_ns(until),
            extra: Time::from_ns(extra),
        };
        let f = FaultState::new(FaultPlan {
            slow: vec![w(3, 100, 200, 7), w(3, 150, 300, 5), w(4, 0, 1000, 11)],
            ..FaultPlan::default()
        });
        assert_eq!(f.slow_extra(CoreId(3), Time::from_ns(99)), Time::ZERO);
        assert_eq!(f.slow_extra(CoreId(3), Time::from_ns(100)), Time::from_ns(7));
        assert_eq!(f.slow_extra(CoreId(3), Time::from_ns(175)), Time::from_ns(12));
        assert_eq!(f.slow_extra(CoreId(3), Time::from_ns(200)), Time::from_ns(5));
        assert_eq!(f.slow_extra(CoreId(3), Time::from_ns(300)), Time::ZERO);
        assert_eq!(f.slow_extra(CoreId(5), Time::from_ns(175)), Time::ZERO);
    }
}
