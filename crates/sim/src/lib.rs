//! # scc-sim — a deterministic discrete-event simulator of the Intel SCC
//!
//! The paper's experiments ran on real SCC silicon, which no longer
//! exists. This crate substitutes a packet-level simulator of the chip
//! (see DESIGN.md for the substitution argument):
//!
//! * 24 tiles in a 6×4 mesh, two cores per tile, X-Y virtual
//!   cut-through routing with per-router latency and occupancy;
//! * 8 KB MPB per core behind a per-tile port with distinct read/write
//!   service times — the resource whose saturation reproduces the MPB
//!   contention of Figure 4;
//! * four memory controllers serving one quadrant each;
//! * cores that execute a single memory transaction at a time.
//!
//! SPMD programs written against [`scc_hal::Rma`] run unchanged on the
//! engine ([`run_spmd`]); virtual time advances only through the
//! operations' modeled costs, so measurements are exact and runs are
//! bit-for-bit reproducible.

pub mod chip;
pub mod engine;
pub mod fault;
pub mod handoff;
pub mod microbench;
pub mod ops;
pub mod params;
pub mod telemetry;
pub mod trace;

pub use chip::SimStats;
pub use engine::{run_spmd, SimConfig, SimCore, SimError, SimReport};
pub use fault::{FaultPlan, SlowWindow};
pub use microbench::{measure_contention, measure_link_stress, measure_p2p, P2pKind};
pub use params::SimParams;
pub use telemetry::EngineTotals;
pub use trace::{render_gantt, summarize, OpKind, OpTrace, TraceSummary};
