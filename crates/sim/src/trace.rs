//! Optional op-level tracing: when enabled in [`crate::SimConfig`],
//! every timed RMA operation is recorded with its issue and completion
//! times, giving a per-core timeline of the collective — the tool used
//! to debug the protocols in this repository and to illustrate the
//! pipeline in the `gantt` binary.

use crate::ops::Op;
use scc_hal::{CoreId, Time};
use std::fmt;

/// Coarse classification of a traced operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OpKind {
    PutFromMem,
    PutFromMpb,
    GetToMem,
    GetToMpb,
    FlagPut,
    FlagRead,
}

impl OpKind {
    pub fn of(op: &Op) -> OpKind {
        match op {
            Op::PutFromMem { .. } => OpKind::PutFromMem,
            Op::PutFromMpb { .. } => OpKind::PutFromMpb,
            Op::GetToMem { .. } => OpKind::GetToMem,
            Op::GetToMpb { .. } => OpKind::GetToMpb,
            Op::FlagPut { .. } => OpKind::FlagPut,
            Op::ReadLine { .. } => OpKind::FlagRead,
        }
    }

    pub fn short(&self) -> &'static str {
        match self {
            OpKind::PutFromMem => "PUTm",
            OpKind::PutFromMpb => "PUTb",
            OpKind::GetToMem => "GETm",
            OpKind::GetToMpb => "GETb",
            OpKind::FlagPut => "FLAG",
            OpKind::FlagRead => "POLL",
        }
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short())
    }
}

/// One traced operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OpTrace {
    pub core: CoreId,
    pub kind: OpKind,
    pub lines: usize,
    pub start: Time,
    pub end: Time,
}

/// Per-core, per-kind aggregate of a trace.
#[derive(Clone, Debug, Default)]
pub struct TraceSummary {
    /// `(ops, lines, busy time)` per kind, indexed per core.
    pub per_core: Vec<CoreSummary>,
}

#[derive(Clone, Debug, Default)]
pub struct CoreSummary {
    pub ops: usize,
    pub lines: usize,
    pub busy: Time,
    pub polling: Time,
}

/// Aggregate a trace into per-core totals.
pub fn summarize(trace: &[OpTrace], num_cores: usize) -> TraceSummary {
    let mut per_core = vec![CoreSummary::default(); num_cores];
    for t in trace {
        let s = &mut per_core[t.core.index()];
        s.ops += 1;
        s.lines += t.lines;
        s.busy += t.end - t.start;
        if t.kind == OpKind::FlagRead {
            s.polling += t.end - t.start;
        }
    }
    TraceSummary { per_core }
}

/// Render a fixed-width text Gantt chart of the trace: one row per
/// core, `width` character cells spanning `[0, horizon]`, each cell
/// showing the op that was active (last-writer-wins within a cell).
pub fn render_gantt(trace: &[OpTrace], num_cores: usize, width: usize) -> String {
    assert!(width >= 10);
    let horizon = trace.iter().map(|t| t.end).fold(Time::ZERO, Time::max);
    if horizon == Time::ZERO {
        return String::from("(empty trace)\n");
    }
    let mut rows = vec![vec![b'.'; width]; num_cores];
    for t in trace {
        let a = (t.start.as_ps() as u128 * width as u128 / horizon.as_ps() as u128) as usize;
        let b = (t.end.as_ps() as u128 * width as u128 / horizon.as_ps() as u128) as usize;
        let glyph = match t.kind {
            OpKind::PutFromMem => b'P',
            OpKind::PutFromMpb => b'p',
            OpKind::GetToMem => b'G',
            OpKind::GetToMpb => b'g',
            OpKind::FlagPut => b'f',
            OpKind::FlagRead => b'.', // polls are idle time, keep quiet
        };
        if glyph == b'.' {
            continue;
        }
        for cell in rows[t.core.index()].iter_mut().take(b.max(a + 1).min(width)).skip(a) {
            *cell = glyph;
        }
    }
    let mut out = String::new();
    out.push_str(&format!(
        "time 0 .. {horizon}  (P=put mem→MPB, p=put MPB→MPB, G=get→mem, g=get→MPB, f=flag)\n"
    ));
    for (i, row) in rows.iter().enumerate() {
        out.push_str(&format!("C{i:<2} |{}|\n", String::from_utf8_lossy(row)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(core: u8, kind: OpKind, start: u64, end: u64) -> OpTrace {
        OpTrace {
            core: CoreId(core),
            kind,
            lines: 1,
            start: Time::from_ns(start),
            end: Time::from_ns(end),
        }
    }

    #[test]
    fn summary_totals() {
        let trace = vec![
            t(0, OpKind::PutFromMem, 0, 100),
            t(0, OpKind::FlagPut, 100, 120),
            t(1, OpKind::FlagRead, 0, 50),
            t(1, OpKind::GetToMpb, 50, 200),
        ];
        let s = summarize(&trace, 2);
        assert_eq!(s.per_core[0].ops, 2);
        assert_eq!(s.per_core[0].busy, Time::from_ns(120));
        assert_eq!(s.per_core[0].polling, Time::ZERO);
        assert_eq!(s.per_core[1].polling, Time::from_ns(50));
    }

    #[test]
    fn gantt_renders_rows_and_glyphs() {
        let trace = vec![t(0, OpKind::PutFromMem, 0, 500), t(1, OpKind::GetToMpb, 500, 1000)];
        let g = render_gantt(&trace, 2, 20);
        assert!(g.contains('P'), "{g}");
        assert!(g.contains('g'), "{g}");
        // Core 0 is busy in the first half only.
        let c0 = g.lines().find(|l| l.starts_with("C0")).unwrap();
        let cells = &c0[c0.find('|').unwrap() + 1..c0.rfind('|').unwrap()];
        assert_eq!(cells.len(), 20, "{g}");
        assert!(cells[..10].contains('P') && !cells[10..].contains('P'), "{g}");
    }

    #[test]
    fn empty_trace() {
        assert_eq!(render_gantt(&[], 4, 20), "(empty trace)\n");
    }
}
