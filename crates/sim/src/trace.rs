//! Optional op-level tracing: when enabled in [`crate::SimConfig`],
//! every timed RMA operation is recorded with its issue and completion
//! times, giving a per-core timeline of the collective — the quick-look
//! tool behind the `trace` binary's text Gantt. The full structured
//! event stream (queue waits, park/wake, phase spans) lives in
//! `scc-obs`; this module keeps the lightweight per-op view.

use scc_hal::{CoreId, MsgId, Time};

pub use scc_obs::OpKind;

/// One traced operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OpTrace {
    pub core: CoreId,
    pub kind: OpKind,
    pub lines: usize,
    pub start: Time,
    pub end: Time,
    /// Message fragment the op carried, when the collective tagged it
    /// (see [`scc_hal::msg`]). Not rendered by the Gantt view.
    pub msg: Option<MsgId>,
}

/// Per-core, per-kind aggregate of a trace.
#[derive(Clone, Debug, Default)]
pub struct TraceSummary {
    /// `(ops, lines, busy time)` per kind, indexed per core.
    pub per_core: Vec<CoreSummary>,
}

#[derive(Clone, Debug, Default)]
pub struct CoreSummary {
    pub ops: usize,
    pub lines: usize,
    pub busy: Time,
    pub polling: Time,
}

/// Aggregate a trace into per-core totals.
pub fn summarize(trace: &[OpTrace], num_cores: usize) -> TraceSummary {
    let mut per_core = vec![CoreSummary::default(); num_cores];
    for t in trace {
        let s = &mut per_core[t.core.index()];
        s.ops += 1;
        s.lines += t.lines;
        s.busy += t.end - t.start;
        if t.kind == OpKind::FlagRead {
            s.polling += t.end - t.start;
        }
    }
    TraceSummary { per_core }
}

/// The glyph legend, generated from [`OpKind::ALL`] so it cannot drift
/// from the renderer when op kinds are added (`FlagRead` renders as
/// idle and is left out).
fn legend() -> String {
    let mut parts = Vec::new();
    for k in OpKind::ALL {
        if k.glyph() != b'.' {
            parts.push(format!("{}={}", k.glyph() as char, k.short()));
        }
    }
    parts.join(", ")
}

/// Render a fixed-width text Gantt chart of the trace: one row per
/// core, `width` character cells spanning `[0, horizon]`, each cell
/// showing the op that was active (last-writer-wins within a cell).
///
/// A trace containing only polls (or only zero-length ops) renders as
/// all-idle rows, not as "(empty trace)": the run *did* something — it
/// waited — and the timeline should say so.
pub fn render_gantt(trace: &[OpTrace], num_cores: usize, width: usize) -> String {
    assert!(width >= 10);
    if trace.is_empty() {
        return String::from("(empty trace)\n");
    }
    let horizon = trace.iter().map(|t| t.end).fold(Time::ZERO, Time::max);
    let mut rows = vec![vec![b'.'; width]; num_cores];
    for t in trace {
        let glyph = t.kind.glyph();
        if glyph == b'.' || horizon == Time::ZERO {
            continue;
        }
        // Cell index of an instant: floor(t * width / horizon), so an
        // op ending exactly at the horizon maps to cell `width` — an
        // exclusive bound that must be clamped before indexing. The
        // start is clamped too (`a <= width - 1`), and every op paints
        // at least the cell it starts in.
        let cell = |x: Time| (x.as_ps() as u128 * width as u128 / horizon.as_ps() as u128) as usize;
        let a = cell(t.start).min(width - 1);
        let b = cell(t.end).max(a + 1).min(width);
        for c in &mut rows[t.core.index()][a..b] {
            *c = glyph;
        }
    }
    let mut out = String::new();
    out.push_str(&format!("time 0 .. {horizon}  ({})\n", legend()));
    for (i, row) in rows.iter().enumerate() {
        out.push_str(&format!("C{i:<2} |{}|\n", String::from_utf8_lossy(row)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(core: u8, kind: OpKind, start: u64, end: u64) -> OpTrace {
        OpTrace {
            core: CoreId(core),
            kind,
            lines: 1,
            start: Time::from_ns(start),
            end: Time::from_ns(end),
            msg: None,
        }
    }

    #[test]
    fn summary_totals() {
        let trace = vec![
            t(0, OpKind::PutFromMem, 0, 100),
            t(0, OpKind::FlagPut, 100, 120),
            t(1, OpKind::FlagRead, 0, 50),
            t(1, OpKind::GetToMpb, 50, 200),
        ];
        let s = summarize(&trace, 2);
        assert_eq!(s.per_core[0].ops, 2);
        assert_eq!(s.per_core[0].busy, Time::from_ns(120));
        assert_eq!(s.per_core[0].polling, Time::ZERO);
        assert_eq!(s.per_core[1].polling, Time::from_ns(50));
    }

    #[test]
    fn gantt_renders_rows_and_glyphs() {
        let trace = vec![t(0, OpKind::PutFromMem, 0, 500), t(1, OpKind::GetToMpb, 500, 1000)];
        let g = render_gantt(&trace, 2, 20);
        assert!(g.contains('P'), "{g}");
        assert!(g.contains('g'), "{g}");
        // Core 0 is busy in the first half only.
        let c0 = g.lines().find(|l| l.starts_with("C0")).unwrap();
        let cells = &c0[c0.find('|').unwrap() + 1..c0.rfind('|').unwrap()];
        assert_eq!(cells.len(), 20, "{g}");
        assert!(cells[..10].contains('P') && !cells[10..].contains('P'), "{g}");
    }

    #[test]
    fn empty_trace() {
        assert_eq!(render_gantt(&[], 4, 20), "(empty trace)\n");
    }

    /// An op ending exactly at the horizon maps to the exclusive cell
    /// bound `width`; the renderer must clamp, not index out of range,
    /// and the final cell must be painted.
    #[test]
    fn op_ending_at_horizon_paints_last_cell() {
        let trace = vec![
            t(0, OpKind::PutFromMem, 0, 1000),
            t(1, OpKind::FlagPut, 900, 1000), // starts in the last cell
        ];
        let g = render_gantt(&trace, 2, 10);
        let c0 = g.lines().find(|l| l.starts_with("C0")).unwrap();
        assert_eq!(&c0[c0.find('|').unwrap() + 1..c0.rfind('|').unwrap()], "PPPPPPPPPP", "{g}");
        let c1 = g.lines().find(|l| l.starts_with("C1")).unwrap();
        assert!(c1.ends_with("f|"), "{g}");
    }

    /// A poll-only trace is a real (if idle) timeline, not an empty one.
    #[test]
    fn flag_read_only_trace_renders_idle_rows() {
        let trace = vec![t(0, OpKind::FlagRead, 0, 700), t(1, OpKind::FlagRead, 0, 400)];
        let g = render_gantt(&trace, 2, 12);
        assert!(!g.contains("(empty trace)"), "{g}");
        assert!(g.contains("C0  |............|"), "{g}");
        assert!(g.contains("C1  |............|"), "{g}");
    }

    /// Degenerate but legal: every op instantaneous at t=0. No division
    /// by zero, all rows idle.
    #[test]
    fn zero_horizon_nonempty_trace() {
        let trace = vec![t(0, OpKind::FlagPut, 0, 0)];
        let g = render_gantt(&trace, 1, 10);
        assert!(g.contains("C0  |..........|"), "{g}");
    }

    /// The legend is generated from `OpKind::ALL`: every kind with a
    /// non-idle glyph appears.
    #[test]
    fn legend_tracks_op_kinds() {
        let g = render_gantt(&[t(0, OpKind::PutFromMem, 0, 10)], 1, 10);
        for k in OpKind::ALL {
            if k.glyph() != b'.' {
                let entry = format!("{}={}", k.glyph() as char, k.short());
                assert!(g.contains(&entry), "legend missing {entry}: {g}");
            }
        }
    }
}
