//! Per-link mesh accounting must *partition* the per-tile router
//! aggregates: every picosecond of router wait and busy time charged to
//! tile `t` is charged to exactly one of its five directed output links
//! (E/W/N/S/Eject), so the per-link sums reconstruct the per-tile
//! vectors exactly — not approximately. A contended 48-core OC-Bcast is
//! the stress case: every router and every link class (through-traffic
//! and ejection) is exercised.

use oc_bcast::{Algorithm, Broadcaster};
use scc_hal::{CoreId, LinkDir, MemRange, Rma, RmaResult, Tile, Time, NUM_LINK_DIRS};
use scc_rcce::{Barrier, MpbAllocator};
use scc_sim::{run_spmd, SimConfig, SimStats};

/// One contended 48-core broadcast (two rounds, barrier-separated).
fn contended_bcast(alg: Algorithm, bytes: usize) -> SimStats {
    let cfg = SimConfig { num_cores: 48, mem_bytes: 1 << 20, ..SimConfig::default() };
    let rep = run_spmd(&cfg, move |c| -> RmaResult<()> {
        let mut alloc = MpbAllocator::new();
        let mut bar = Barrier::new(&mut alloc, c.num_cores()).expect("barrier lines");
        let mut b = Broadcaster::new(&mut alloc, alg, c.num_cores()).expect("bcast lines");
        let r = MemRange::new(0, bytes);
        if c.core() == CoreId(0) {
            let payload: Vec<u8> = (0..bytes).map(|i| (i % 251) as u8).collect();
            c.mem_write(0, &payload)?;
        }
        for _ in 0..2 {
            bar.wait(c)?;
            b.bcast(c, CoreId(0), r)?;
        }
        Ok(())
    })
    .expect("broadcast must complete");
    for r in rep.results {
        r.expect("no core may fail");
    }
    rep.stats
}

fn assert_partition(stats: &SimStats) {
    assert_eq!(stats.link_wait.len(), 24 * NUM_LINK_DIRS);
    assert_eq!(stats.link_busy.len(), 24 * NUM_LINK_DIRS);
    for tile in 0..24 {
        let base = tile * NUM_LINK_DIRS;
        let wait_sum: Time =
            (0..NUM_LINK_DIRS).fold(Time::ZERO, |acc, d| acc + stats.link_wait[base + d]);
        let busy_sum: Time =
            (0..NUM_LINK_DIRS).fold(Time::ZERO, |acc, d| acc + stats.link_busy[base + d]);
        assert_eq!(
            wait_sum, stats.router_wait_by_tile[tile],
            "link waits do not partition tile {tile}'s router wait"
        );
        assert_eq!(
            busy_sum, stats.router_busy_by_tile[tile],
            "link busy does not partition tile {tile}'s router busy"
        );
    }
    // And the grand totals close the loop against the global counters.
    let total_wait: Time = stats.link_wait.iter().copied().fold(Time::ZERO, |a, b| a + b);
    let total_busy: Time = stats.link_busy.iter().copied().fold(Time::ZERO, |a, b| a + b);
    assert_eq!(total_wait, stats.router_wait);
    assert_eq!(total_busy, stats.router_busy);
}

#[test]
fn links_partition_router_aggregates_under_contended_oc_bcast() {
    // 16 KB from core 0: saturates source MPB ports and drives
    // through-traffic on interior routers (k=47 is the all-at-once
    // flat tree — worst-case port and mesh contention).
    for alg in [Algorithm::oc_default(), Algorithm::oc_with_k(47)] {
        let stats = contended_bcast(alg, 16 << 10);
        assert!(stats.router_wait > Time::ZERO, "workload must actually contend");
        assert_partition(&stats);
    }
}

#[test]
fn eject_link_carries_all_destination_traffic() {
    // Every route ends in an ejection at the destination tile, so the
    // Eject share of total busy time must be positive everywhere
    // traffic terminated, and a route of length 1 (same tile) is pure
    // ejection: tile-local traffic can never appear on a mesh link.
    let stats = contended_bcast(Algorithm::oc_default(), 4 << 10);
    let eject_total: Time = (0..24)
        .map(|t| stats.link_busy[t * NUM_LINK_DIRS + LinkDir::Eject.index()])
        .fold(Time::ZERO, |a, b| a + b);
    assert!(eject_total > Time::ZERO);

    // Boundary sanity: no westward traffic out of column 0, no
    // eastward traffic out of column 5 (X-Y routing cannot wrap).
    for y in 0..4u8 {
        let west_edge = Tile::new(0, y).index();
        let east_edge = Tile::new(5, y).index();
        assert_eq!(
            stats.link_busy[west_edge * NUM_LINK_DIRS + LinkDir::West.index()],
            Time::ZERO,
            "tile (0,{y}) cannot send West"
        );
        assert_eq!(
            stats.link_busy[east_edge * NUM_LINK_DIRS + LinkDir::East.index()],
            Time::ZERO,
            "tile (5,{y}) cannot send East"
        );
    }
}
