//! Cross-check: the closed-queueing contention model of `scc-model`
//! brackets the simulator's measured Figure-4 curve.

use scc_model::ClosedQueue;
use scc_sim::{measure_contention, SimConfig, SimParams};

#[test]
fn closed_queueing_model_matches_simulator() {
    let cfg = SimConfig {
        num_cores: 48,
        mem_bytes: 64 * 1024,
        params: SimParams::default(),
        ..SimConfig::default()
    };
    let q = ClosedQueue::get_scenario(128, 9.0, 0.010, 0.126, 0.005);
    for n in [1usize, 8, 16, 24, 32, 40, 47] {
        let v = measure_contention(&cfg, n, 128, false, 2).expect("sim");
        let avg = v.iter().map(|t| t.as_us_f64()).sum::<f64>() / v.len() as f64;
        let (lo, hi) = q.cycle_bounds_us(n);
        // The accessors sit at mixed distances (the model's d = 9 is
        // the single-accessor worst case), so allow the measured mean
        // to undershoot the lower bound by the distance spread (~12%).
        assert!(
            avg >= lo * 0.85 && avg <= hi * 1.05,
            "n={n}: measured {avg:.1} outside model bounds [{lo:.1}, {hi:.1}]"
        );
        // The point estimate tracks the measurement within 20%.
        let est = q.cycle_estimate_us(n);
        assert!((avg / est - 1.0).abs() < 0.20, "n={n}: measured {avg:.1} vs estimate {est:.1}");
    }
}
