//! Stress guard for the parallel observatory: many simultaneous
//! `run_spmd` calls from many host threads must each behave exactly as
//! if they ran alone. The engine keeps all run state in a per-run
//! `Shared`, so concurrent runs may only interact through the handoff
//! pool and the telemetry counters — this test pins down that neither
//! leaks between runs:
//!
//! * every concurrent run's virtual end times, makespan, and `SimStats`
//!   equal its isolated sequential baseline;
//! * the thread-local telemetry scope charges each host thread with
//!   exactly its own runs' counters;
//! * the handoff free list respects its cap even at the concurrency
//!   high-water mark.

use scc_hal::{CoreId, FlagValue, MemRange, MpbAddr, Rma, RmaExt, RmaResult, Time};
use scc_sim::engine::SimCore;
use scc_sim::{run_spmd, telemetry, SimConfig, SimStats};

/// One scenario = a distinct (P, payload-stride, fan-in) workload so
/// concurrent runs are genuinely different programs, not copies.
#[derive(Clone, Copy)]
struct Scenario {
    cores: usize,
    stride: usize,
}

const SCENARIOS: [Scenario; 6] = [
    Scenario { cores: 2, stride: 16 },
    Scenario { cores: 5, stride: 48 },
    Scenario { cores: 8, stride: 24 },
    Scenario { cores: 12, stride: 64 },
    Scenario { cores: 17, stride: 32 },
    Scenario { cores: 24, stride: 40 },
];

fn workload(s: Scenario) -> impl Fn(&mut SimCore) -> RmaResult<Time> + Send + Sync {
    move |c: &mut SimCore| {
        let me = c.core().index();
        let n = c.num_cores();
        let right = CoreId(((me + 1) % n) as u8);
        let payload = vec![(me * 7) as u8; s.stride + 8 * (me % 3)];
        c.mem_write(0, &payload)?;
        if me != 0 {
            // Fan-in on core 0's MPB port: contention that the engine
            // must serialize identically however the host schedules it.
            c.put_from_mem(MemRange::new(0, payload.len()), MpbAddr::new(CoreId(0), 2 + me % 4))?;
        }
        c.put_from_mem_cached(MemRange::new(0, payload.len()), MpbAddr::new(right, 8))?;
        c.flag_put(MpbAddr::new(right, 0), FlagValue(1))?;
        c.flag_wait_eq(0, FlagValue(1))?;
        c.compute(Time::from_ns(61 * (1 + me as u64 % 5)));
        c.get_to_mem(MpbAddr::new(right, 8), MemRange::new(256, 16))?;
        Ok(c.now())
    }
}

struct Baseline {
    end_times: Vec<Time>,
    makespan: Time,
    stats: SimStats,
    finish: Vec<Time>,
}

fn run_once(s: Scenario) -> Baseline {
    let cfg = SimConfig { num_cores: s.cores, mem_bytes: 4096, ..SimConfig::default() };
    let rep = run_spmd(&cfg, workload(s)).expect("workload must complete");
    Baseline {
        end_times: rep.end_times,
        makespan: rep.makespan,
        stats: rep.stats,
        finish: rep.results.into_iter().map(|r| r.unwrap()).collect(),
    }
}

#[test]
fn concurrent_runs_match_isolated_baselines() {
    // Isolated sequential baselines first, on this thread alone.
    let baselines: Vec<Baseline> = SCENARIOS.iter().map(|&s| run_once(s)).collect();

    // Now the storm: each of 8 host threads re-runs every scenario
    // several times, all overlapping. 8 threads × 24-core sims pushes
    // the aggregate leased-core count well past the pool cap.
    const HOST_THREADS: usize = 8;
    const ROUNDS: usize = 3;
    telemetry::reset_peak_in_flight();
    std::thread::scope(|scope| {
        let baselines = &baselines;
        for t in 0..HOST_THREADS {
            scope.spawn(move || {
                let _ = telemetry::take_thread();
                let mut expected = telemetry::EngineTotals::ZERO;
                for round in 0..ROUNDS {
                    for slot in 0..SCENARIOS.len() {
                        // Stagger the order per thread so checkouts of
                        // different widths interleave.
                        let i = (slot + t + round) % SCENARIOS.len();
                        let s = SCENARIOS[i];
                        let b = &baselines[i];
                        let got = run_once(s);
                        assert_eq!(
                            got.end_times, b.end_times,
                            "end_times diverged under concurrency (thread {t}, scenario {i})"
                        );
                        assert_eq!(got.makespan, b.makespan);
                        assert_eq!(
                            got.stats, b.stats,
                            "SimStats diverged under concurrency (thread {t}, scenario {i})"
                        );
                        assert_eq!(got.finish, b.finish);
                        expected = expected.plus(&telemetry::EngineTotals {
                            runs: 1,
                            events: b.stats.events,
                            ops: b.stats.ops,
                            heap_pushes: b.stats.heap_pushes,
                            coalesced_steps: b.stats.coalesced_steps,
                            handoffs: b.stats.handoffs,
                        });
                    }
                }
                // The thread-local scope must have charged this thread
                // with exactly its own runs, untouched by the other 7.
                let mine = telemetry::take_thread();
                assert_eq!(
                    mine, expected,
                    "thread-local telemetry misattributed work (thread {t})"
                );
            });
        }
    });

    assert!(
        telemetry::peak_in_flight() >= 2,
        "stress test never actually overlapped two sims (peak {})",
        telemetry::peak_in_flight()
    );
    let pool = scc_sim::handoff::pool_stats();
    assert!(pool.peak_pooled <= pool.cap, "free list exceeded its cap under the storm: {pool:?}");
}
