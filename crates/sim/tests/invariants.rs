//! Engine invariants under randomized programs.

use proptest::prelude::*;
use scc_hal::{CoreId, MemRange, MpbAddr, Rma, RmaResult, Time, CACHE_LINE_BYTES};
use scc_sim::{run_spmd, summarize, SimConfig};

fn cfg(n: usize, trace: bool) -> SimConfig {
    SimConfig { num_cores: n, mem_bytes: 1 << 16, trace, ..SimConfig::default() }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

    /// The trace accounts for every timed op, busy intervals are
    /// well-formed and bounded by the makespan, and the lines-moved
    /// counter matches the trace.
    #[test]
    fn trace_is_consistent(ops in proptest::collection::vec((0u8..4, 1usize..20), 1..30)) {
        let program = ops.clone();
        let rep = run_spmd(&cfg(2, true), move |c| -> RmaResult<()> {
            if c.core().index() != 0 {
                return Ok(());
            }
            for (kind, lines) in &program {
                let lines = *lines;
                match kind {
                    0 => c.put_from_mpb(0, MpbAddr::new(CoreId(1), 0), lines)?,
                    1 => c.get_to_mpb(MpbAddr::new(CoreId(1), 0), 0, lines)?,
                    2 => c.put_from_mem(
                        MemRange::new(0, lines * CACHE_LINE_BYTES),
                        MpbAddr::new(CoreId(1), 0),
                    )?,
                    _ => c.get_to_mem(
                        MpbAddr::new(CoreId(1), 0),
                        MemRange::new(0, lines * CACHE_LINE_BYTES),
                    )?,
                }
            }
            Ok(())
        }).unwrap();
        let trace = rep.trace.as_deref().unwrap();
        prop_assert_eq!(trace.len() as u64, rep.stats.ops);
        prop_assert_eq!(trace.len(), ops.len());
        let total_lines: usize = trace.iter().map(|t| t.lines).sum();
        prop_assert_eq!(total_lines as u64, rep.stats.lines_moved);
        for t in trace {
            prop_assert!(t.start <= t.end);
            prop_assert!(t.end <= rep.makespan);
        }
        // Ops of one core never overlap (single outstanding transaction).
        let mut last_end = Time::ZERO;
        for t in trace.iter().filter(|t| t.core == CoreId(0)) {
            prop_assert!(t.start >= last_end, "ops overlap");
            last_end = t.end;
        }
        let s = summarize(trace, 2);
        prop_assert!(s.per_core[0].busy <= rep.makespan);
    }

    /// Virtual time equals the sum of contention-free op costs for a
    /// single active core (no hidden charges anywhere in the engine).
    #[test]
    fn single_core_time_is_sum_of_op_costs(lines in proptest::collection::vec(1usize..30, 1..10)) {
        let program = lines.clone();
        let rep = run_spmd(&cfg(2, false), move |c| -> RmaResult<Time> {
            if c.core().index() != 0 {
                return Ok(Time::ZERO);
            }
            for &l in &program {
                c.put_from_mpb(0, MpbAddr::new(CoreId(1), 0), l)?;
            }
            Ok(c.now())
        }).unwrap();
        // C_put_mpb(m, 1) = o_put + m (C_r(1) + C_w(1)) with Table-1 values.
        let expect_ns: u64 = lines.iter().map(|&m| 69 + m as u64 * (136 + 136)).sum();
        prop_assert_eq!(*rep.results[0].as_ref().unwrap(), Time::from_ns(expect_ns));
    }
}
