//! Zero-cost guard for the observability layer: enabling the recorder
//! must not perturb the simulation in any observable way. A run with
//! `record: true` must produce exactly the same virtual times, engine
//! counters (including the fast-path accounting `events ==
//! heap_pushes + coalesced_steps` and the per-resource wait/busy
//! vectors) and op trace as a run with recording off — the only
//! difference allowed is the presence of the event stream itself.

use scc_hal::{CoreId, FlagValue, MemRange, MpbAddr, Phase, Rma, RmaExt, RmaResult, Span, Time};
use scc_obs::ObsEvent;
use scc_sim::engine::SimCore;
use scc_sim::{run_spmd, SimConfig, SimReport};

/// The messy SPMD program from the coalescing guard, plus protocol
/// spans: bulk puts (cached and uncached), port contention, flag
/// ping-pong with parking, gets, compute — every event source the
/// recorder taps.
fn workload(c: &mut SimCore) -> RmaResult<Time> {
    let me = c.core().index();
    let n = c.num_cores();
    let right = CoreId(((me + 1) % n) as u8);
    let payload = vec![me as u8 ^ 0x5A; 24 + 32 * (me % 5)];

    c.mem_write(0, &payload)?;
    c.span_begin(Span::of(Phase::Dissemination));
    if me != 0 {
        c.put_from_mem(MemRange::new(0, payload.len()), MpbAddr::new(CoreId(0), 2 + (me % 4)))?;
    }
    c.put_from_mem_cached(MemRange::new(0, payload.len()), MpbAddr::new(right, 8))?;
    c.span_end(Span::of(Phase::Dissemination));
    c.flag_put(MpbAddr::new(right, 0), FlagValue(1))?;
    c.span_begin(Span::of(Phase::NotifyWait));
    c.flag_wait_eq(0, FlagValue(1))?;
    c.span_end(Span::of(Phase::NotifyWait));
    c.get_to_mpb(MpbAddr::new(right, 8), 16, 1 + me % 3)?;
    c.compute(Time::from_ns(137 * (1 + me as u64 % 7)));
    c.get_to_mem(MpbAddr::new(right, 8), MemRange::new(512, payload.len()))?;
    c.flag_put(MpbAddr::new(right, 1), FlagValue(2))?;
    c.flag_wait_ge(1, FlagValue(2))?;
    Ok(c.now())
}

fn run(record: bool, cores: usize) -> SimReport<RmaResult<Time>> {
    let cfg = SimConfig {
        num_cores: cores,
        mem_bytes: 4096,
        trace: true,
        record,
        ..SimConfig::default()
    };
    run_spmd(&cfg, workload).expect("workload must complete")
}

fn run_flight(capacity: usize, cores: usize) -> SimReport<RmaResult<Time>> {
    let cfg = SimConfig {
        num_cores: cores,
        mem_bytes: 4096,
        trace: true,
        flight: capacity,
        ..SimConfig::default()
    };
    run_spmd(&cfg, workload).expect("workload must complete")
}

#[test]
fn recording_is_free_of_observable_effects() {
    for cores in [2, 7, 24] {
        let on = run(true, cores);
        let off = run(false, cores);

        assert_eq!(on.end_times, off.end_times, "end_times diverged at P={cores}");
        assert_eq!(on.makespan, off.makespan, "makespan diverged at P={cores}");
        // SimStats is PartialEq over every counter, including the
        // per-tile / per-controller wait and busy vectors.
        assert_eq!(on.stats, off.stats, "SimStats diverged at P={cores}");
        assert_eq!(
            on.stats.events,
            on.stats.heap_pushes + on.stats.coalesced_steps,
            "fast-path accounting broken at P={cores}"
        );

        for (i, r) in on.results.iter().enumerate() {
            assert_eq!(
                r.as_ref().unwrap(),
                off.results[i].as_ref().unwrap(),
                "core {i} finished at a different virtual time at P={cores}"
            );
        }
        assert_eq!(on.trace, off.trace, "op trace diverged at P={cores}");

        // The recorded run must actually carry the stream (otherwise
        // this test guards nothing) and the bare run must not.
        let events = on.events.as_deref().expect("recording enabled");
        assert!(!events.is_empty());
        assert!(off.events.is_none(), "recorder must stay off by default");
    }
}

/// Same zero-cost contract for the flight recorder: a bounded-ring run
/// must be indistinguishable from an unrecorded run in every virtual
/// observable, and its window must be byte-identical to the tail of a
/// full recording.
#[test]
fn flight_recording_is_free_and_matches_the_tail_window() {
    for cores in [2, 7, 24] {
        let full = run(true, cores);
        let off = run(false, cores);
        let events = full.events.as_deref().expect("full recording");

        for capacity in [1, 64, events.len(), events.len() + 100] {
            let flight = run_flight(capacity, cores);
            assert_eq!(flight.end_times, off.end_times, "end_times diverged at P={cores}");
            assert_eq!(flight.makespan, off.makespan, "makespan diverged at P={cores}");
            assert_eq!(flight.stats, off.stats, "SimStats diverged at P={cores}");
            assert_eq!(flight.trace, off.trace, "op trace diverged at P={cores}");
            for (i, r) in flight.results.iter().enumerate() {
                assert_eq!(
                    r.as_ref().unwrap(),
                    off.results[i].as_ref().unwrap(),
                    "core {i} diverged at P={cores} capacity={capacity}"
                );
            }

            // The retained window is exactly the last `capacity` events
            // of the full stream, in stream order.
            let window = flight.events.as_deref().expect("flight recording");
            let tail = &events[events.len().saturating_sub(capacity)..];
            assert_eq!(window, tail, "window != full-stream tail at P={cores} cap={capacity}");
        }
    }
}

/// `record: true` wins over a flight capacity: the full stream
/// subsumes any window.
#[test]
fn full_recording_takes_precedence_over_flight() {
    let cfg = SimConfig {
        num_cores: 4,
        mem_bytes: 4096,
        record: true,
        flight: 3,
        ..SimConfig::default()
    };
    let rep = run_spmd(&cfg, workload).expect("workload must complete");
    let full = run(true, 4);
    assert_eq!(rep.events, full.events);
}

/// The recorded stream agrees with the engine's own counters: one Op
/// event per traced op (with matching times), one Park per park, one
/// Handoff per handoff, and balanced span brackets on every core.
#[test]
fn event_stream_is_complete_and_balanced() {
    let rep = run(true, 7);
    let events = rep.events.as_deref().unwrap();
    let trace = rep.trace.as_deref().unwrap();

    let ops = events.iter().filter(|e| matches!(e, ObsEvent::Op { .. })).count();
    assert_eq!(ops, trace.len(), "one Op event per traced op");
    for (ev, t) in events.iter().filter(|e| matches!(e, ObsEvent::Op { .. })).zip(trace) {
        if let ObsEvent::Op { core, kind, start, end, .. } = *ev {
            assert_eq!((core, kind, start, end), (t.core, t.kind, t.start, t.end));
        }
    }

    let parks = events.iter().filter(|e| matches!(e, ObsEvent::Park { .. })).count();
    assert_eq!(parks as u64, rep.stats.parks);
    let handoffs = events.iter().filter(|e| matches!(e, ObsEvent::Handoff { .. })).count();
    assert_eq!(handoffs as u64, rep.stats.handoffs);
    let finishes = events.iter().filter(|e| matches!(e, ObsEvent::Finish { .. })).count();
    assert_eq!(finishes, 7, "every core records its finish");

    let mut depth = vec![0i64; 7];
    for ev in events {
        match *ev {
            ObsEvent::SpanBegin { core, .. } => depth[core.index()] += 1,
            ObsEvent::SpanEnd { core, .. } => {
                depth[core.index()] -= 1;
                assert!(depth[core.index()] >= 0, "span end without begin");
            }
            _ => {}
        }
    }
    assert!(depth.iter().all(|&d| d == 0), "unbalanced spans: {depth:?}");
    assert!(depth.len() == 7);

    // Timestamps in the stream are monotone per the event's own time.
    let mut last = Time::ZERO;
    for ev in events {
        assert!(ev.at() >= Time::ZERO);
        last = last.max(ev.at());
    }
    assert_eq!(last, rep.makespan, "latest event time is the makespan");
}
