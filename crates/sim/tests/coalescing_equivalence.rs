//! Regression guard for the engine's coalesced fast path: a run with
//! `coalesce: true` must be observationally identical to one with
//! `coalesce: false` — same per-core end times, same event count, same
//! op-level trace entry by entry. Only `heap_pushes` and
//! `coalesced_steps` may differ, since they record *how* the event
//! order was produced, not what it was.

use scc_hal::{CoreId, FlagValue, MemRange, MpbAddr, Rma, RmaExt, RmaResult, Time};
use scc_sim::engine::SimCore;
use scc_sim::{run_spmd, SimConfig, SimReport};

/// A deliberately messy SPMD program: bulk puts of different sizes,
/// cached and uncached, port contention on a shared target, flag
/// ping-pong with parking, gets back to private memory, and compute
/// phases — every code path the coalescer can interact with.
fn workload(c: &mut SimCore) -> RmaResult<Time> {
    let me = c.core().index();
    let n = c.num_cores();
    let right = CoreId(((me + 1) % n) as u8);
    let payload = vec![me as u8 ^ 0x5A; 24 + 32 * (me % 5)];

    c.mem_write(0, &payload)?;
    // Everyone hammers core 0's MPB port first (contention), then a
    // neighbour put (mostly uncontended, coalescible).
    if me != 0 {
        c.put_from_mem(MemRange::new(0, payload.len()), MpbAddr::new(CoreId(0), 2 + (me % 4)))?;
    }
    c.put_from_mem_cached(MemRange::new(0, payload.len()), MpbAddr::new(right, 8))?;
    c.flag_put(MpbAddr::new(right, 0), FlagValue(1))?;
    c.flag_wait_eq(0, FlagValue(1))?;
    c.get_to_mpb(MpbAddr::new(right, 8), 16, 1 + me % 3)?;
    c.compute(Time::from_ns(137 * (1 + me as u64 % 7)));
    c.get_to_mem(MpbAddr::new(right, 8), MemRange::new(512, payload.len()))?;
    // Second round of flags so wake-on-write interleaves with steps.
    c.flag_put(MpbAddr::new(right, 1), FlagValue(2))?;
    c.flag_wait_ge(1, FlagValue(2))?;
    Ok(c.now())
}

fn run(coalesce: bool, cores: usize) -> SimReport<RmaResult<Time>> {
    let cfg = SimConfig {
        num_cores: cores,
        mem_bytes: 4096,
        trace: true,
        coalesce,
        ..SimConfig::default()
    };
    run_spmd(&cfg, workload).expect("workload must complete")
}

#[test]
fn coalesced_run_is_observationally_identical() {
    for cores in [2, 7, 24] {
        let fast = run(true, cores);
        let slow = run(false, cores);

        assert_eq!(fast.end_times, slow.end_times, "end_times diverged at P={cores}");
        assert_eq!(fast.makespan, slow.makespan, "makespan diverged at P={cores}");
        assert_eq!(
            fast.stats.events, slow.stats.events,
            "event count diverged at P={cores}: {:?} vs {:?}",
            fast.stats, slow.stats
        );
        assert_eq!(fast.stats.ops, slow.stats.ops);
        assert_eq!(fast.stats.lines_moved, slow.stats.lines_moved);
        assert_eq!(fast.stats.parks, slow.stats.parks);
        assert_eq!(fast.stats.port_wait, slow.stats.port_wait);
        assert_eq!(fast.stats.router_wait, slow.stats.router_wait);
        assert_eq!(fast.stats.mc_wait, slow.stats.mc_wait);

        for (i, r) in fast.results.iter().enumerate() {
            assert_eq!(
                r.as_ref().unwrap(),
                slow.results[i].as_ref().unwrap(),
                "core {i} finished at a different virtual time at P={cores}"
            );
        }

        let ft = fast.trace.expect("trace enabled");
        let st = slow.trace.expect("trace enabled");
        assert_eq!(ft.len(), st.len(), "trace length diverged at P={cores}");
        for (a, b) in ft.iter().zip(&st) {
            assert_eq!(a, b, "trace entry diverged at P={cores}");
        }

        // The fast path must actually have fired (otherwise this test
        // guards nothing), and the slow path must never coalesce.
        assert!(fast.stats.coalesced_steps > 0, "coalescing never engaged at P={cores}");
        assert_eq!(slow.stats.coalesced_steps, 0);
        assert_eq!(
            fast.stats.events,
            fast.stats.heap_pushes + fast.stats.coalesced_steps,
            "event accounting broken at P={cores}"
        );
    }
}

#[test]
fn deadlock_reporting_is_identical_without_coalescing() {
    let prog = |c: &mut SimCore| -> RmaResult<()> {
        if c.core().index() == 1 {
            c.put_from_mpb(0, MpbAddr::new(CoreId(0), 4), 12)?;
            c.flag_wait_eq(5, FlagValue(9))?; // nobody writes this
        }
        Ok(())
    };
    let mk =
        |coalesce| SimConfig { num_cores: 3, mem_bytes: 4096, coalesce, ..SimConfig::default() };
    let fast = run_spmd(&mk(true), prog).unwrap_err();
    let slow = run_spmd(&mk(false), prog).unwrap_err();
    assert_eq!(format!("{fast}"), format!("{slow}"));
}
