//! Integration tests for the fault-injection layer: the empty plan is
//! a strict identity, injected faults are counted, attributed to the
//! event stream, and fully deterministic, and deadline parks surface
//! typed timeouts without perturbing failure-free runs.

use oc_bcast::{OcBcast, OcConfig, RelStats, Reliability, ReliableBinomial};
use scc_hal::{CoreId, MemRange, Rma, RmaError, RmaExt, RmaResult, Time};
use scc_obs::{JourneyBook, ObsEvent};
use scc_rcce::MpbAllocator;
use scc_sim::{run_spmd, FaultPlan, SimConfig, SimStats, SlowWindow};

fn pattern(len: usize, seed: u8) -> Vec<u8> {
    (0..len).map(|i| (i as u8).wrapping_mul(131).wrapping_add(seed)).collect()
}

/// The broadcast workload all tests share.
fn bcast_workload(cfg: &SimConfig, len: usize) -> scc_sim::SimReport<RmaResult<Vec<u8>>> {
    let msg = pattern(len, 5);
    run_spmd(cfg, move |c| -> RmaResult<Vec<u8>> {
        let mut alloc = MpbAllocator::new();
        let mut bc = OcBcast::new(&mut alloc, OcConfig::default()).unwrap();
        let r = MemRange::new(0, msg.len());
        if c.core().index() == 0 {
            c.mem_write(0, &msg)?;
        }
        bc.bcast(c, CoreId(0), r)?;
        c.mem_to_vec(r)
    })
    .unwrap()
}

fn strip<R>(rep: scc_sim::SimReport<RmaResult<R>>) -> (Vec<R>, Vec<Time>, Time, SimStats) {
    let results = rep.results.into_iter().map(|r| r.unwrap()).collect();
    (results, rep.end_times, rep.makespan, rep.stats)
}

/// Referenced from the `SimConfig::faults` docs: a config whose fault
/// plan is empty (whatever its seed) must produce *exactly* the run a
/// default config produces — same results, same per-core end times,
/// same engine counters.
#[test]
fn fault_plan_empty_is_identity() {
    let len = 3 * 96 * 32 + 17;
    let base = SimConfig { num_cores: 24, mem_bytes: 1 << 20, ..SimConfig::default() };
    let with_empty_plan = SimConfig {
        faults: FaultPlan { seed: 0xdead_beef, ..FaultPlan::default() },
        ..base.clone()
    };
    let a = strip(bcast_workload(&base, len));
    let b = strip(bcast_workload(&with_empty_plan, len));
    assert_eq!(a, b);
    assert_eq!(a.3.faults, 0);
    assert_eq!(a.3.fault_lost, Time::ZERO);
}

#[test]
fn link_delays_are_counted_and_slow_the_run() {
    let len = 4 * 96 * 32;
    let base = SimConfig { num_cores: 12, mem_bytes: 1 << 20, ..SimConfig::default() };
    let faulty = SimConfig {
        faults: FaultPlan {
            delay_ppm: 200_000,
            delay: Time::from_us_f64(25.0),
            ..FaultPlan::default()
        },
        ..base.clone()
    };
    let clean = bcast_workload(&base, len);
    let hit = bcast_workload(&faulty, len);
    for r in &hit.results {
        assert_eq!(r.as_ref().unwrap(), &pattern(len, 5));
    }
    assert!(hit.stats.faults > 0, "delay plan must fire");
    assert!(hit.stats.fault_lost > Time::ZERO);
    assert!(hit.makespan > clean.makespan, "{} !> {}", hit.makespan, clean.makespan);
}

#[test]
fn slow_windows_are_deterministic_and_attributed() {
    let cfg = SimConfig {
        num_cores: 8,
        mem_bytes: 1 << 20,
        record: true,
        faults: FaultPlan {
            slow: vec![SlowWindow {
                core: CoreId(2),
                from: Time::ZERO,
                until: Time::from_us_f64(100_000.0),
                extra: Time::from_us_f64(2.0),
            }],
            ..FaultPlan::default()
        },
        ..SimConfig::default()
    };
    let a = bcast_workload(&cfg, 2000);
    let b = bcast_workload(&cfg, 2000);
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.makespan, b.makespan);
    assert!(a.stats.faults > 0);
    // Every recorded fault is on the slowed core, and the recorded
    // lost time sums exactly to the engine counter.
    let events = a.events.expect("recording on");
    let mut lost = Time::ZERO;
    let mut n = 0u64;
    for ev in &events {
        if let ObsEvent::Fault { core, lost: l, .. } = ev {
            assert_eq!(*core, CoreId(2));
            lost += *l;
            n += 1;
        }
    }
    assert_eq!(n, a.stats.faults);
    assert_eq!(lost, a.stats.fault_lost);
}

#[test]
fn dropped_notifications_are_deterministic_across_runs() {
    let cfg = SimConfig {
        num_cores: 24,
        mem_bytes: 1 << 20,
        faults: FaultPlan { drop_notification_ppm: 60_000, ..FaultPlan::default() },
        ..SimConfig::default()
    };
    let msg = pattern(3000, 9);
    let run = || {
        let msg = msg.clone();
        run_spmd(&cfg, move |c| -> RmaResult<(Vec<u8>, RelStats)> {
            let mut alloc = MpbAllocator::new();
            let mut bc =
                ReliableBinomial::new(&mut alloc, c.num_cores(), Reliability::standard()).unwrap();
            let r = MemRange::new(0, msg.len());
            if c.core().index() == 0 {
                c.mem_write(0, &msg)?;
            }
            bc.bcast(c, CoreId(0), r)?;
            Ok((c.mem_to_vec(r)?, bc.stats()))
        })
        .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.makespan, b.makespan);
    assert!(a.stats.faults > 0, "drop plan must fire");
    for (ra, rb) in a.results.iter().zip(&b.results) {
        let (bytes_a, stats_a) = ra.as_ref().unwrap();
        let (bytes_b, stats_b) = rb.as_ref().unwrap();
        assert_eq!(bytes_a, &msg);
        assert_eq!(bytes_a, bytes_b);
        assert_eq!(stats_a, stats_b);
    }
}

/// Conservation under faults: fault-attributed time is *inside* the
/// ops and waits the journeys already account, so the per-leg tiling
/// stays exact — no journey leaks or double-counts the injected time.
#[test]
fn fault_time_tiles_into_journey_legs() {
    let cfg = SimConfig {
        num_cores: 16,
        mem_bytes: 1 << 20,
        record: true,
        faults: FaultPlan {
            drop_notification_ppm: 40_000,
            delay_ppm: 50_000,
            delay: Time::from_us_f64(10.0),
            ..FaultPlan::default()
        },
        ..SimConfig::default()
    };
    let msg = pattern(4 * 96 * 32, 3);
    let rep = run_spmd(&cfg, move |c| -> RmaResult<()> {
        let mut alloc = MpbAllocator::new();
        let mut bc =
            OcBcast::new_reliable(&mut alloc, OcConfig::default(), Reliability::standard())
                .unwrap();
        let r = MemRange::new(0, msg.len());
        if c.core().index() == 0 {
            c.mem_write(0, &msg)?;
        }
        bc.bcast_reliable(c, CoreId(0), r)
    })
    .unwrap();
    for r in rep.results {
        r.unwrap();
    }
    assert!(rep.stats.faults > 0, "fault plan must fire");
    let events = rep.events.expect("recording on");
    let book = JourneyBook::from_events(&events);
    assert!(!book.journeys.is_empty());
    for j in &book.journeys {
        assert_eq!(
            j.legs_total(),
            j.end - j.begin,
            "legs must tile the window exactly on core {} under faults",
            j.core
        );
    }
}

/// A deadline park on a line nobody writes surfaces a typed timeout at
/// the deadline instead of tripping the deadlock detector or spinning
/// forever.
#[test]
fn deadline_park_times_out_with_typed_error() {
    let cfg = SimConfig { num_cores: 2, mem_bytes: 4096, ..SimConfig::default() };
    let rep = run_spmd(&cfg, |c| -> RmaResult<(bool, Time)> {
        if c.core().index() == 0 {
            let deadline = c.now() + Time::from_us_f64(80.0);
            let got = c.flag_wait_local_until(7, &mut |v| v.0 >= 1, deadline);
            let timed_out = matches!(got, Err(RmaError::Timeout { line: 7, .. }));
            Ok((timed_out, c.now()))
        } else {
            // Keep the other core busy past the deadline so the run
            // exercises the timer while events are still in flight.
            c.compute(Time::from_us_f64(200.0));
            Ok((true, c.now()))
        }
    })
    .unwrap();
    let (timed_out, at) = rep.results[0].as_ref().unwrap();
    assert!(timed_out, "wait must surface RmaError::Timeout");
    assert!(*at >= Time::from_us_f64(80.0), "woke before the deadline: {at}");
}

/// A deadline wait whose flag arrives in time behaves exactly like the
/// plain wait (no timer residue, same value observed).
#[test]
fn deadline_wait_satisfied_in_time_is_transparent() {
    let cfg = SimConfig { num_cores: 2, mem_bytes: 4096, ..SimConfig::default() };
    let rep = run_spmd(&cfg, |c| -> RmaResult<u32> {
        if c.core().index() == 0 {
            let deadline = c.now() + Time::from_us_f64(10_000.0);
            let v = c.flag_wait_local_until(3, &mut |v| v.0 >= 42, deadline)?;
            Ok(v.0)
        } else {
            c.compute(Time::from_us_f64(30.0));
            c.flag_put(scc_hal::MpbAddr::new(CoreId(0), 3), scc_hal::FlagValue(42))?;
            Ok(0)
        }
    })
    .unwrap();
    assert_eq!(rep.results[0].as_ref().unwrap(), &42);
}
