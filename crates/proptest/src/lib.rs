//! A minimal, vendored stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements exactly the API subset the workspace's property tests
//! use: the [`proptest!`] macro, range/tuple/`any` strategies,
//! [`collection::vec`], `prop_map`, `ProptestConfig { cases }` and the
//! `prop_assert*` macros. Generation is uniform (no shrinking) and
//! deterministic: the RNG is seeded from the test's name, so failures
//! reproduce across runs and machines.

use std::fmt;

// ---- deterministic generator ------------------------------------------

/// SplitMix64 — tiny, seedable, good enough for test-case generation.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed deterministically from an arbitrary string (the test name).
    pub fn from_name(name: &str) -> TestRng {
        // FNV-1a over the name; any stable hash works.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[lo, hi)`. `hi > lo` required.
    pub fn gen_range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(hi > lo, "empty strategy range");
        lo + self.next_u64() % (hi - lo)
    }

    pub fn gen_f64(&mut self, lo: f64, hi: f64) -> f64 {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }
}

// ---- failure plumbing --------------------------------------------------

/// A failed `prop_assert!` inside a test case.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    pub fn fail(msg: String) -> TestCaseError {
        TestCaseError(msg)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

pub type TestCaseResult = Result<(), TestCaseError>;

// ---- configuration -----------------------------------------------------

#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Accepted for source compatibility; unused.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64, max_shrink_iters: 0 }
    }
}

// ---- strategies --------------------------------------------------------

/// Produces values of `Self::Value` from the RNG. Mirrors proptest's
/// `Strategy` (without value trees or shrinking).
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adaptor produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range_u64(self.start as u64, self.end as u64) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range_u64(*self.start() as u64, *self.end() as u64 + 1) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + (rng.next_u64() % span) as i64) as $t
            }
        }
    )*};
}
signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_f64(self.start, self.end)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// `any::<T>()` — the full-domain strategy for primitives.
pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

pub mod collection {
    use super::{Strategy, TestRng};

    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// Length spec for [`vec`]: an exact `usize` or a (half-open or
    /// inclusive) range, mirroring proptest's `Into<SizeRange>` inputs.
    pub trait IntoLenRange {
        fn into_len_range(self) -> std::ops::Range<usize>;
    }

    impl IntoLenRange for usize {
        fn into_len_range(self) -> std::ops::Range<usize> {
            self..self + 1
        }
    }

    impl IntoLenRange for std::ops::Range<usize> {
        fn into_len_range(self) -> std::ops::Range<usize> {
            self
        }
    }

    impl IntoLenRange for std::ops::RangeInclusive<usize> {
        fn into_len_range(self) -> std::ops::Range<usize> {
            *self.start()..*self.end() + 1
        }
    }

    /// `collection::vec(element, len)` with `len` an exact size or range.
    pub fn vec<S: Strategy>(element: S, len: impl IntoLenRange) -> VecStrategy<S> {
        VecStrategy { element, len: len.into_len_range() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range_u64(self.len.start as u64, self.len.end as u64) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy, TestCaseError, TestCaseResult,
    };
}

// ---- macros ------------------------------------------------------------

/// The `proptest! { ... }` block: each contained `fn name(arg in
/// strategy, ...) { body }` becomes a `#[test]` that runs `cases`
/// generated inputs through the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr) $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}, ",)+ ""),
                        $(&$arg),+
                    );
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        Ok(())
                    })();
                    if let Err(e) = outcome {
                        panic!(
                            "property {} failed at case {}/{}: {}\n  inputs: {}",
                            stringify!($name), case + 1, config.cases, e, inputs,
                        );
                    }
                }
            }
        )*
    };
}

/// Fail the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fail the current property case unless both sides compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "{} == {} failed: {:?} != {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "{:?} != {:?}: {}",
            a, b, format!($($fmt)*)
        );
    }};
}

/// Fail the current property case if both sides compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a != b,
            "{} != {} failed: both were {:?}",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::TestRng::from_name("x");
        let mut b = crate::TestRng::from_name("x");
        let mut c = crate::TestRng::from_name("y");
        let (va, vb, vc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::from_name("bounds");
        for _ in 0..1000 {
            let v = Strategy::generate(&(3u8..17), &mut rng);
            assert!((3..17).contains(&v));
            let f = Strategy::generate(&(0.5f64..2.0), &mut rng);
            assert!((0.5..2.0).contains(&f));
            let t = Strategy::generate(&(0u8..4, 1usize..20), &mut rng);
            assert!(t.0 < 4 && (1..20).contains(&t.1));
        }
    }

    #[test]
    fn vec_strategy_respects_len() {
        let mut rng = crate::TestRng::from_name("vec");
        for _ in 0..100 {
            let v = Strategy::generate(&crate::collection::vec(any::<u8>(), 1..50), &mut rng);
            assert!((1..50).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

        #[test]
        fn macro_generates_and_asserts(x in 1u32..100, v in crate::collection::vec(any::<bool>(), 0..5)) {
            prop_assert!((1..100).contains(&x));
            prop_assert!(v.len() < 5);
            prop_assert_eq!(x, x);
            prop_assert_ne!(x, x + 1);
        }
    }

    #[test]
    fn prop_map_transforms() {
        let mut rng = crate::TestRng::from_name("map");
        let s = (0u8..6, 0u8..4).prop_map(|(x, y)| (y, x));
        let (y, x) = Strategy::generate(&s, &mut rng);
        assert!(y < 4 && x < 6);
    }
}
