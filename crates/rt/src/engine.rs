//! Thread-per-core SPMD runner and the [`RtCore`] RMA endpoint.

use crate::chip::RtMpb;
use scc_hal::{
    CoreId, FlagValue, MemRange, MpbAddr, Rma, RmaError, RmaResult, Time, MPB_LINES_PER_CORE,
    NUM_CORES,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Instant;

/// Configuration of a thread-backend run.
#[derive(Clone, Debug)]
pub struct RtConfig {
    /// Number of cores (threads). Values above the host's parallelism
    /// work — waits always yield — but measure poorly.
    pub num_cores: usize,
    /// Private memory per core, in bytes.
    pub mem_bytes: usize,
}

impl Default for RtConfig {
    fn default() -> Self {
        RtConfig { num_cores: 8, mem_bytes: 1 << 20 }
    }
}

impl RtConfig {
    pub fn with_cores(num_cores: usize) -> RtConfig {
        RtConfig { num_cores, ..RtConfig::default() }
    }
}

/// Whole-run failure.
#[derive(Debug)]
pub enum RtError {
    Engine(String),
}

impl std::fmt::Display for RtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RtError::Engine(m) => write!(f, "thread backend failure: {m}"),
        }
    }
}

impl std::error::Error for RtError {}

/// Result of a successful run.
#[derive(Debug)]
pub struct RtReport<R> {
    pub results: Vec<R>,
    /// Wall-clock end time of each core, relative to the common start.
    pub end_times: Vec<Time>,
    pub makespan: Time,
}

/// The per-thread RMA endpoint.
pub struct RtCore {
    id: CoreId,
    num_cores: usize,
    mpb: Arc<RtMpb>,
    mem: Vec<u8>,
    epoch: Instant,
    /// Set when any core's closure panicked: spinning waiters bail out
    /// with an error instead of waiting forever on a dead peer.
    poisoned: Arc<AtomicBool>,
}

impl RtCore {
    fn check_mem(&self, range: MemRange) -> RmaResult<()> {
        if range.len == 0 {
            return Err(RmaError::EmptyTransfer);
        }
        if range.end() > self.mem.len() {
            return Err(RmaError::MemOutOfRange {
                offset: range.offset,
                len: range.len,
                mem_len: self.mem.len(),
            });
        }
        Ok(())
    }

    fn check_mpb(&self, addr: MpbAddr, lines: usize) -> RmaResult<()> {
        if lines == 0 {
            return Err(RmaError::EmptyTransfer);
        }
        if !addr.fits(lines) {
            return Err(RmaError::MpbOutOfRange { addr, lines });
        }
        if addr.core.index() >= self.num_cores {
            return Err(RmaError::Engine(format!(
                "{} is not part of this {}-core run",
                addr.core, self.num_cores
            )));
        }
        Ok(())
    }
}

impl Rma for RtCore {
    fn core(&self) -> CoreId {
        self.id
    }

    fn num_cores(&self) -> usize {
        self.num_cores
    }

    fn now(&self) -> Time {
        Time::from_ps(self.epoch.elapsed().as_nanos() as u64 * 1000)
    }

    fn mem_len(&self) -> usize {
        self.mem.len()
    }

    fn put_from_mem(&mut self, src: MemRange, dst: MpbAddr) -> RmaResult<()> {
        self.check_mem(src)?;
        self.check_mpb(dst, src.lines())?;
        self.mpb.write_bytes(dst, &self.mem[src.offset..src.end()]);
        Ok(())
    }

    fn put_from_mpb(&mut self, src_line: usize, dst: MpbAddr, lines: usize) -> RmaResult<()> {
        self.check_mpb(MpbAddr::new(self.id, src_line.min(MPB_LINES_PER_CORE - 1)), lines)?;
        self.check_mpb(dst, lines)?;
        self.mpb.copy(MpbAddr::new(self.id, src_line), dst, lines);
        Ok(())
    }

    fn get_to_mem(&mut self, src: MpbAddr, dst: MemRange) -> RmaResult<()> {
        self.check_mem(dst)?;
        self.check_mpb(src, dst.lines())?;
        let (offset, end) = (dst.offset, dst.end());
        self.mpb.read_bytes(src, &mut self.mem[offset..end]);
        Ok(())
    }

    fn get_to_mpb(&mut self, src: MpbAddr, dst_line: usize, lines: usize) -> RmaResult<()> {
        self.check_mpb(src, lines)?;
        self.check_mpb(MpbAddr::new(self.id, dst_line.min(MPB_LINES_PER_CORE - 1)), lines)?;
        self.mpb.copy(src, MpbAddr::new(self.id, dst_line), lines);
        Ok(())
    }

    fn flag_put(&mut self, dst: MpbAddr, value: FlagValue) -> RmaResult<()> {
        self.check_mpb(dst, 1)?;
        self.mpb.flag_store(dst, value);
        Ok(())
    }

    fn flag_read_local(&mut self, line: usize) -> RmaResult<FlagValue> {
        self.check_mpb(MpbAddr::new(self.id, line.min(MPB_LINES_PER_CORE - 1)), 1)?;
        Ok(self.mpb.flag_load(MpbAddr::new(self.id, line)))
    }

    fn flag_wait_local(
        &mut self,
        line: usize,
        pred: &mut dyn FnMut(FlagValue) -> bool,
    ) -> RmaResult<FlagValue> {
        self.check_mpb(MpbAddr::new(self.id, line.min(MPB_LINES_PER_CORE - 1)), 1)?;
        let addr = MpbAddr::new(self.id, line);
        loop {
            let v = self.mpb.flag_load(addr);
            if pred(v) {
                return Ok(v);
            }
            if self.poisoned.load(Ordering::Relaxed) {
                return Err(RmaError::Engine(
                    "a peer core panicked while this core was waiting".into(),
                ));
            }
            // Always yield: cores may outnumber hardware threads.
            std::thread::yield_now();
        }
    }

    fn mem_write(&mut self, offset: usize, data: &[u8]) -> RmaResult<()> {
        if offset + data.len() > self.mem.len() {
            return Err(RmaError::MemOutOfRange {
                offset,
                len: data.len(),
                mem_len: self.mem.len(),
            });
        }
        self.mem[offset..offset + data.len()].copy_from_slice(data);
        Ok(())
    }

    fn mem_read(&self, offset: usize, buf: &mut [u8]) -> RmaResult<()> {
        if offset + buf.len() > self.mem.len() {
            return Err(RmaError::MemOutOfRange {
                offset,
                len: buf.len(),
                mem_len: self.mem.len(),
            });
        }
        buf.copy_from_slice(&self.mem[offset..offset + buf.len()]);
        Ok(())
    }

    fn compute(&mut self, t: Time) {
        let deadline = self.epoch.elapsed() + std::time::Duration::from_nanos(t.as_ps() / 1000);
        while self.epoch.elapsed() < deadline {
            if self.poisoned.load(Ordering::Relaxed) {
                return; // a peer died; surface on the next fallible call
            }
            std::thread::yield_now();
        }
    }
}

/// Run `f` as an SPMD program on real threads: one invocation per core,
/// started together behind a barrier. Panics in a core propagate after
/// all threads are joined.
pub fn run_spmd<R, F>(cfg: &RtConfig, f: F) -> Result<RtReport<R>, RtError>
where
    R: Send,
    F: Fn(&mut RtCore) -> R + Send + Sync,
{
    let n = cfg.num_cores;
    assert!((1..=NUM_CORES).contains(&n), "num_cores must be in 1..=48");
    let mpb = Arc::new(RtMpb::new(n));
    let start = Arc::new(Barrier::new(n));
    let poisoned = Arc::new(AtomicBool::new(false));
    let epoch = Instant::now();
    let f = &f;

    let joined: Vec<Result<(R, Time), Box<dyn std::any::Any + Send>>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..n)
            .map(|i| {
                let mpb = Arc::clone(&mpb);
                let start = Arc::clone(&start);
                let poisoned = Arc::clone(&poisoned);
                s.spawn(move || -> Result<(R, Time), Box<dyn std::any::Any + Send>> {
                    let mut core = RtCore {
                        id: CoreId(i as u8),
                        num_cores: n,
                        mpb,
                        mem: vec![0u8; cfg.mem_bytes],
                        epoch,
                        poisoned: Arc::clone(&poisoned),
                    };
                    start.wait();
                    // Catch panics so the poison flag releases any
                    // peer spinning on a flag this core will never
                    // write; re-thrown after all threads unwind.
                    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut core)));
                    match r {
                        Ok(v) => Ok((v, core.now())),
                        Err(p) => {
                            poisoned.store(true, Ordering::Relaxed);
                            Err(p)
                        }
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap_or_else(Err)).collect()
    });

    let mut results = Vec::with_capacity(n);
    let mut end_times = Vec::with_capacity(n);
    for j in joined {
        match j {
            Ok((r, t)) => {
                results.push(r);
                end_times.push(t);
            }
            Err(p) => std::panic::resume_unwind(p),
        }
    }
    let makespan = end_times.iter().copied().fold(Time::ZERO, Time::max);
    Ok(RtReport { results, end_times, makespan })
}

#[cfg(test)]
mod tests {
    use super::*;
    use scc_hal::RmaExt;

    #[test]
    fn spmd_runs_all_cores() {
        let rep =
            run_spmd(&RtConfig { num_cores: 4, mem_bytes: 4096 }, |c| c.core().index()).unwrap();
        assert_eq!(rep.results, vec![0, 1, 2, 3]);
    }

    #[test]
    fn flag_handoff_with_real_threads() {
        let msg = b"cross-thread payload".to_vec();
        let expect = msg.clone();
        let rep =
            run_spmd(&RtConfig { num_cores: 2, mem_bytes: 4096 }, move |c| -> RmaResult<Vec<u8>> {
                if c.core().index() == 0 {
                    c.mem_write(0, &msg)?;
                    c.put_from_mem(MemRange::new(0, msg.len()), MpbAddr::new(CoreId(0), 1))?;
                    c.flag_put(MpbAddr::new(CoreId(1), 0), FlagValue(1))?;
                    Ok(Vec::new())
                } else {
                    c.flag_wait_eq(0, FlagValue(1))?;
                    c.get_to_mem(MpbAddr::new(CoreId(0), 1), MemRange::new(0, 20))?;
                    c.mem_to_vec(MemRange::new(0, 20))
                }
            })
            .unwrap();
        assert_eq!(rep.results[1].as_ref().unwrap(), &expect);
    }

    #[test]
    fn many_rounds_of_ping_pong_stress() {
        // Exercises the acquire/release pairing under real reordering.
        let rounds = 500u32;
        let rep =
            run_spmd(&RtConfig { num_cores: 2, mem_bytes: 4096 }, move |c| -> RmaResult<u32> {
                let me = c.core().index();
                let peer = CoreId(1 - me as u8);
                let mut seen = 0;
                for r in 1..=rounds {
                    if me == 0 {
                        // Write payload derived from r, then signal.
                        c.mem_write(0, &r.to_le_bytes())?;
                        c.put_from_mem(MemRange::new(0, 4), MpbAddr::new(CoreId(0), 2))?;
                        c.flag_put(MpbAddr::new(peer, 0), FlagValue(r))?;
                        c.flag_wait_local(1, &mut |v| v.0 >= r)?;
                    } else {
                        c.flag_wait_local(0, &mut |v| v.0 >= r)?;
                        c.get_to_mem(MpbAddr::new(CoreId(0), 2), MemRange::new(32, 4))?;
                        let mut b = [0u8; 4];
                        c.mem_read(32, &mut b)?;
                        // The payload must be exactly the round the flag
                        // announced (release/acquire ordering).
                        if u32::from_le_bytes(b) == r {
                            seen += 1;
                        }
                        c.flag_put(MpbAddr::new(peer, 1), FlagValue(r))?;
                    }
                }
                Ok(seen)
            })
            .unwrap();
        assert_eq!(rep.results[1].as_ref().unwrap(), &rounds);
    }

    #[test]
    fn bounds_errors_surface() {
        let rep = run_spmd(&RtConfig { num_cores: 1, mem_bytes: 64 }, |c| {
            let a = c.mem_write(60, &[0; 8]).unwrap_err();
            let b = c.get_to_mpb(MpbAddr::new(CoreId(0), 255), 0, 2).unwrap_err();
            (
                matches!(a, RmaError::MemOutOfRange { .. }),
                matches!(b, RmaError::MpbOutOfRange { .. }),
            )
        })
        .unwrap();
        assert_eq!(rep.results[0], (true, true));
    }

    #[test]
    fn compute_spins_measurably() {
        let rep = run_spmd(&RtConfig { num_cores: 1, mem_bytes: 64 }, |c| {
            let t0 = c.now();
            c.compute(Time::from_us_f64(200.0));
            c.now() - t0
        })
        .unwrap();
        assert!(rep.results[0] >= Time::from_us_f64(190.0));
    }
}
