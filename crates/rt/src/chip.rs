//! The shared MPB block: atomics plus the word-level copy routines.

use scc_hal::{CoreId, FlagValue, MpbAddr, CACHE_LINE_BYTES, MPB_BYTES_PER_CORE};
use std::sync::atomic::{AtomicU64, Ordering};

/// 8-byte words per cache line.
const WORDS_PER_LINE: usize = CACHE_LINE_BYTES / 8;
/// Words per core MPB region.
const WORDS_PER_CORE: usize = MPB_BYTES_PER_CORE / 8;

/// All MPBs of the chip as one shared block of atomic words.
pub struct RtMpb {
    words: Vec<AtomicU64>,
    num_cores: usize,
}

impl RtMpb {
    pub fn new(num_cores: usize) -> RtMpb {
        RtMpb {
            words: (0..num_cores * WORDS_PER_CORE).map(|_| AtomicU64::new(0)).collect(),
            num_cores,
        }
    }

    pub fn num_cores(&self) -> usize {
        self.num_cores
    }

    #[inline]
    fn word_index(&self, core: CoreId, line: usize, word: usize) -> usize {
        debug_assert!(core.index() < self.num_cores);
        core.index() * WORDS_PER_CORE + line * WORDS_PER_LINE + word
    }

    /// Copy `len` bytes from `src` into the MPB at `dst` (line-aligned
    /// start; a partial final line leaves its tail bytes untouched).
    /// `Relaxed` stores — a subsequent flag write provides the release.
    pub fn write_bytes(&self, dst: MpbAddr, src: &[u8]) {
        let mut off = 0usize;
        let base = self.word_index(dst.core, dst.line(), 0);
        while off < src.len() {
            let word = base + off / 8;
            let take = (src.len() - off).min(8);
            if take == 8 {
                let mut b = [0u8; 8];
                b.copy_from_slice(&src[off..off + 8]);
                self.words[word].store(u64::from_le_bytes(b), Ordering::Relaxed);
            } else {
                // Partial tail word: read-modify-write of the low bytes.
                let cur = self.words[word].load(Ordering::Relaxed);
                let mut b = cur.to_le_bytes();
                b[..take].copy_from_slice(&src[off..off + take]);
                self.words[word].store(u64::from_le_bytes(b), Ordering::Relaxed);
            }
            off += take;
        }
    }

    /// Copy `dst.len()` bytes out of the MPB at `src`. `Relaxed` loads —
    /// the caller observed a flag with `Acquire` first.
    pub fn read_bytes(&self, src: MpbAddr, dst: &mut [u8]) {
        let mut off = 0usize;
        let base = self.word_index(src.core, src.line(), 0);
        while off < dst.len() {
            let word = self.words[base + off / 8].load(Ordering::Relaxed).to_le_bytes();
            let take = (dst.len() - off).min(8);
            dst[off..off + take].copy_from_slice(&word[..take]);
            off += take;
        }
    }

    /// MPB-to-MPB copy through a bounce buffer (the issuing core's
    /// "registers", exactly like the real `put`/`get`).
    pub fn copy(&self, src: MpbAddr, dst: MpbAddr, lines: usize) {
        let mut buf = [0u8; CACHE_LINE_BYTES];
        for l in 0..lines {
            self.read_bytes(src.offset(l), &mut buf);
            self.write_bytes(dst.offset(l), &buf);
        }
    }

    /// `Release`-store a flag value into the first word of a line.
    pub fn flag_store(&self, dst: MpbAddr, value: FlagValue) {
        let idx = self.word_index(dst.core, dst.line(), 0);
        self.words[idx].store(value.0 as u64, Ordering::Release);
    }

    /// `Acquire`-load a flag value.
    pub fn flag_load(&self, src: MpbAddr) -> FlagValue {
        let idx = self.word_index(src.core, src.line(), 0);
        FlagValue(self.words[idx].load(Ordering::Acquire) as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_round_trip() {
        let mpb = RtMpb::new(4);
        let data: Vec<u8> = (0..100).collect();
        let addr = MpbAddr::new(CoreId(2), 10);
        mpb.write_bytes(addr, &data);
        let mut out = vec![0u8; 100];
        mpb.read_bytes(addr, &mut out);
        assert_eq!(out, data);
    }

    #[test]
    fn partial_tail_preserves_neighbors() {
        let mpb = RtMpb::new(1);
        let addr = MpbAddr::new(CoreId(0), 0);
        mpb.write_bytes(addr, &[0xFF; 32]);
        mpb.write_bytes(addr, &[1, 2, 3]); // 3-byte partial word
        let mut out = [0u8; 32];
        mpb.read_bytes(addr, &mut out);
        assert_eq!(&out[..3], &[1, 2, 3]);
        assert_eq!(&out[3..8], &[0xFF; 5], "tail of the word must survive");
        assert_eq!(&out[8..], &[0xFF; 24]);
    }

    #[test]
    fn mpb_to_mpb_copy() {
        let mpb = RtMpb::new(3);
        let src = MpbAddr::new(CoreId(0), 5);
        let dst = MpbAddr::new(CoreId(2), 100);
        mpb.write_bytes(src, &[7u8; 64]);
        mpb.copy(src, dst, 2);
        let mut out = [0u8; 64];
        mpb.read_bytes(dst, &mut out);
        assert_eq!(out, [7u8; 64]);
    }

    #[test]
    fn flags_are_line_granular() {
        let mpb = RtMpb::new(2);
        mpb.flag_store(MpbAddr::new(CoreId(1), 3), FlagValue(42));
        assert_eq!(mpb.flag_load(MpbAddr::new(CoreId(1), 3)), FlagValue(42));
        assert_eq!(mpb.flag_load(MpbAddr::new(CoreId(1), 2)), FlagValue(0));
        assert_eq!(mpb.flag_load(MpbAddr::new(CoreId(0), 3)), FlagValue(0));
    }
}
