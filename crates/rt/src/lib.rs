//! # scc-rt — real-thread shared-memory backend of the SCC RMA interface
//!
//! One OS thread per simulated core; the 48 MPBs live in one shared
//! block of atomics, flags carry acquire/release ordering, and `now()`
//! reads the wall clock. This backend exists for two reasons:
//!
//! 1. **Concurrency soundness** — the collectives' flag protocols run
//!    under real parallelism and real memory reordering here, not under
//!    the simulator's serialized schedule; the stress tests in this
//!    crate and in `tests/` hammer exactly that.
//! 2. **Real measurements** — the Criterion benches in `scc-bench`
//!    compare the algorithms with actual threads (the repro band for
//!    this paper prescribes shared-memory emulation).
//!
//! ## Memory model
//!
//! An MPB line is four `AtomicU64` words. Payload copies use `Relaxed`
//! accesses; every flag write is a `Release` store and every flag read
//! an `Acquire` load, so a consumer that observed a flag sees all
//! payload written before it (the classic message-passing pattern from
//! *Rust Atomics and Locks*, ch. 3). Collective protocols only read
//! payload behind a flag they observed, which the simulator's deadlock
//! detector and the integration tests enforce.
//!
//! Spin waits yield to the OS on every iteration: the backend stays
//! live even when (as on this machine) cores outnumber hardware
//! threads.

pub mod chip;
pub mod engine;

pub use engine::{run_spmd, RtConfig, RtCore, RtError, RtReport};
