//! # scc-mpi — an MPI-flavoured facade over the OC-Bcast stack
//!
//! The paper closes with "we also plan to extend our approach to other
//! collective operations and integrate them in an MPI library"
//! (Section 7). This crate is that integration layer: a single
//! [`Communicator`] owning the MPB layout and exposing the familiar
//! verbs — `send`/`recv`, `bcast`, `reduce`, `allreduce`, `allgather`,
//! `barrier` — over the RMA collectives of `oc-bcast` and the
//! two-sided layer of `scc-rcce`.
//!
//! Design choices:
//!
//! * One MPB budget for everything: the communicator carves the 256
//!   lines per core into an OC-Bcast context (k = 7, 48-line double
//!   buffers), a reduce context, a small point-to-point channel and a
//!   barrier — all collectives are callable at any time without
//!   re-allocation. The narrower buffers trade a little peak
//!   throughput for a permanently resident layout (quantified in the
//!   crate tests).
//! * Buffers are byte ranges in the core's private memory
//!   ([`scc_hal::MemRange`]), matching the paper's semantics where
//!   application data lives off-chip.
//! * Everything is generic over [`scc_hal::Rma`], so a `Communicator`
//!   works on the simulator and on real threads alike.

use oc_bcast::collectives::{oc_allgather, OcReduce};
use oc_bcast::{OcBcast, OcConfig};
use scc_hal::{CoreId, MemRange, Rma, RmaError, RmaResult};
use scc_rcce::{Barrier, MpbAllocator, MpbExhausted, RcceComm};

pub use oc_bcast::collectives::ReduceOp;

/// Rank of a process within the communicator (identical to the core id
/// in this single-chip world).
pub type Rank = usize;

/// The world communicator: every core of the run.
///
/// Construct one per core, identically (symmetric MPB allocation), then
/// call collectives collectively and point-to-point verbs pairwise.
pub struct Communicator {
    bcast: OcBcast,
    reduce: OcReduce,
    p2p: RcceComm,
    barrier: Barrier,
    num_cores: usize,
}

impl Communicator {
    /// MPB line budget: OC-Bcast 1+7+2·48 = 104, reduce 1+7+7·8 = 64,
    /// point-to-point 48+1+26 ≤ 75, barrier 6 — total ≤ 249 for the
    /// full 48-core chip.
    pub fn new(num_cores: usize) -> Result<Communicator, MpbExhausted> {
        let mut alloc = MpbAllocator::new();
        let bcast = OcBcast::new(&mut alloc, OcConfig { chunk_lines: 48, ..OcConfig::default() })?;
        let reduce = OcReduce::with_slot_lines(&mut alloc, 7, 8)?;
        let barrier = Barrier::new(&mut alloc, num_cores)?;
        let p2p_payload = alloc.lines_free().saturating_sub(num_cores + 1).max(1);
        let p2p = RcceComm::with_payload_lines(&mut alloc, num_cores, p2p_payload)?;
        Ok(Communicator { bcast, reduce, p2p, barrier, num_cores })
    }

    /// This process's rank.
    pub fn rank<R: Rma>(&self, c: &R) -> Rank {
        c.core().index()
    }

    /// Number of processes.
    pub fn size(&self) -> usize {
        self.num_cores
    }

    fn check_rank(&self, r: Rank) -> RmaResult<CoreId> {
        if r >= self.num_cores {
            return Err(RmaError::Engine(format!(
                "rank {r} outside communicator of size {}",
                self.num_cores
            )));
        }
        Ok(CoreId(r as u8))
    }

    /// Blocking point-to-point send (must be matched by [`Communicator::recv`]).
    pub fn send<R: Rma>(&self, c: &mut R, dst: Rank, buf: MemRange) -> RmaResult<()> {
        let dst = self.check_rank(dst)?;
        self.p2p.send(c, dst, buf)
    }

    /// Blocking point-to-point receive.
    pub fn recv<R: Rma>(&self, c: &mut R, src: Rank, buf: MemRange) -> RmaResult<()> {
        let src = self.check_rank(src)?;
        self.p2p.recv(c, src, buf)
    }

    /// Broadcast `buf` from `root` to all ranks (OC-Bcast underneath).
    pub fn bcast<R: Rma>(&mut self, c: &mut R, root: Rank, buf: MemRange) -> RmaResult<()> {
        let root = self.check_rank(root)?;
        self.bcast.bcast(c, root, buf)
    }

    /// Elementwise reduction of `u64` vectors to `root` (in place).
    pub fn reduce<R: Rma>(
        &mut self,
        c: &mut R,
        root: Rank,
        buf: MemRange,
        op: ReduceOp,
    ) -> RmaResult<()> {
        let root = self.check_rank(root)?;
        self.reduce.reduce(c, root, buf, op)
    }

    /// Reduction delivered to every rank.
    pub fn allreduce<R: Rma>(&mut self, c: &mut R, buf: MemRange, op: ReduceOp) -> RmaResult<()> {
        self.reduce.reduce(c, CoreId(0), buf, op)?;
        self.bcast.bcast(c, CoreId(0), buf)
    }

    /// Allgather: rank `j` contributes the `j`-th slice of `buf` (the
    /// deterministic line-aligned partition of
    /// [`oc_bcast::scatter_allgather::slice_range`]); afterwards every
    /// rank holds the whole range.
    pub fn allgather<R: Rma>(&mut self, c: &mut R, buf: MemRange) -> RmaResult<()> {
        oc_allgather(c, &mut self.bcast, buf)
    }

    /// Dissemination barrier over all ranks.
    pub fn barrier<R: Rma>(&mut self, c: &mut R) -> RmaResult<()> {
        self.barrier.wait(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oc_bcast::scatter_allgather::slice_range;
    use scc_hal::RmaExt;
    use scc_sim::{run_spmd, SimConfig};

    fn cfg(n: usize) -> SimConfig {
        SimConfig { num_cores: n, mem_bytes: 1 << 20, ..SimConfig::default() }
    }

    #[test]
    fn layout_fits_the_full_chip() {
        match Communicator::new(48) {
            Ok(comm) => assert_eq!(comm.size(), 48),
            Err(e) => panic!("the resident layout must fit 48 cores: {e}"),
        }
    }

    #[test]
    fn bcast_reduce_barrier_interplay() {
        let p = 12;
        let rep = run_spmd(&cfg(p), move |c| -> RmaResult<(Vec<u8>, u64)> {
            let mut comm = Communicator::new(p).expect("layout");
            let me = comm.rank(c) as u64;

            // Broadcast a config blob from rank 2.
            let blob: Vec<u8> = (0..5000).map(|i| (i % 209) as u8).collect();
            if comm.rank(c) == 2 {
                c.mem_write(0, &blob)?;
            }
            comm.bcast(c, 2, MemRange::new(0, 5000))?;
            let got = c.mem_to_vec(MemRange::new(0, 5000))?;

            comm.barrier(c)?;

            // Allreduce each rank's contribution.
            c.mem_write(8192, &(me * me).to_le_bytes())?;
            comm.allreduce(c, MemRange::new(8192, 8), ReduceOp::Sum)?;
            let mut b = [0u8; 8];
            c.mem_read(8192, &mut b)?;
            Ok((got, u64::from_le_bytes(b)))
        })
        .unwrap();
        let blob: Vec<u8> = (0..5000).map(|i| (i % 209) as u8).collect();
        let expect_sum: u64 = (0..12u64).map(|m| m * m).sum();
        for (i, r) in rep.results.iter().enumerate() {
            let (got, sum) = r.as_ref().unwrap();
            assert_eq!(got, &blob, "rank {i} bcast");
            assert_eq!(*sum, expect_sum, "rank {i} allreduce");
        }
    }

    #[test]
    fn sendrecv_pairs() {
        let rep = run_spmd(&cfg(4), |c| -> RmaResult<Vec<u8>> {
            let comm = Communicator::new(4).expect("layout");
            let me = comm.rank(c);
            let msg: Vec<u8> = (0..300).map(|i| (i as u8) ^ (me as u8)).collect();
            c.mem_write(0, &msg)?;
            // Exchange with partner (0↔1, 2↔3).
            let partner = me ^ 1;
            let r_out = MemRange::new(0, 300);
            let r_in = MemRange::new(320, 300);
            if me.is_multiple_of(2) {
                comm.send(c, partner, r_out)?;
                comm.recv(c, partner, r_in)?;
            } else {
                comm.recv(c, partner, r_in)?;
                comm.send(c, partner, r_out)?;
            }
            c.mem_to_vec(r_in)
        })
        .unwrap();
        for (i, r) in rep.results.iter().enumerate() {
            let expect: Vec<u8> = (0..300).map(|b| (b as u8) ^ ((i ^ 1) as u8)).collect();
            assert_eq!(r.as_ref().unwrap(), &expect, "rank {i}");
        }
    }

    #[test]
    fn allgather_via_facade() {
        let p = 8;
        let len = 2048;
        let rep = run_spmd(&cfg(p), move |c| -> RmaResult<Vec<u8>> {
            let mut comm = Communicator::new(p).expect("layout");
            let me = comm.rank(c);
            let buf = MemRange::new(0, len);
            let mine = slice_range(buf, p, me);
            let fill: Vec<u8> =
                (0..mine.len).map(|i| (i as u8).wrapping_add(me as u8 * 31)).collect();
            c.mem_write(mine.offset, &fill)?;
            comm.allgather(c, buf)?;
            c.mem_to_vec(buf)
        })
        .unwrap();
        let buf = MemRange::new(0, len);
        let mut expect = vec![0u8; len];
        for j in 0..p {
            let s = slice_range(buf, p, j);
            for i in 0..s.len {
                expect[s.offset + i] = (i as u8).wrapping_add(j as u8 * 31);
            }
        }
        for (i, r) in rep.results.iter().enumerate() {
            assert_eq!(r.as_ref().unwrap(), &expect, "rank {i}");
        }
    }

    #[test]
    fn invalid_rank_rejected() {
        let rep = run_spmd(&cfg(2), |c| -> RmaResult<bool> {
            let mut comm = Communicator::new(2).expect("layout");
            let e = comm.bcast(c, 7, MemRange::new(0, 8));
            Ok(matches!(e, Err(RmaError::Engine(_))))
        })
        .unwrap();
        assert!(rep.results.into_iter().all(|r| r.unwrap()));
    }

    #[test]
    fn works_on_real_threads_too() {
        let p = 3;
        let rep = scc_rt::run_spmd(
            &scc_rt::RtConfig { num_cores: p, mem_bytes: 1 << 16 },
            move |c| -> RmaResult<u64> {
                let mut comm = Communicator::new(p).expect("layout");
                let me = comm.rank(c) as u64;
                c.mem_write(0, &(me + 1).to_le_bytes())?;
                comm.allreduce(c, MemRange::new(0, 8), ReduceOp::Sum)?;
                let mut b = [0u8; 8];
                c.mem_read(0, &mut b)?;
                Ok(u64::from_le_bytes(b))
            },
        )
        .unwrap();
        for r in rep.results {
            assert_eq!(r.unwrap(), 6);
        }
    }
}
