//! A minimal, vendored stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements the API subset the workspace's benches use:
//! `benchmark_group` / `bench_with_input` / `Bencher::iter`,
//! `BenchmarkId`, `Throughput`, and the `criterion_group!` /
//! `criterion_main!` macros. Each sample is timed with
//! `std::time::Instant`; the report prints mean and minimum wall time
//! per iteration (plus derived throughput) to stdout.
//!
//! Environment knobs:
//! * `BENCH_SAMPLES` overrides every group's sample size;
//! * `BENCH_FILTER` runs only benchmarks whose `group/id` contains the
//!   given substring (mirrors `cargo bench -- <filter>`, which also
//!   works: the first CLI argument is treated as a filter).

use std::fmt;
use std::time::{Duration, Instant};

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> BenchmarkId {
        BenchmarkId { id: format!("{function_name}/{parameter}") }
    }

    pub fn from_parameter<P: fmt::Display>(parameter: P) -> BenchmarkId {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Work performed per iteration, used to derive a rate from the time.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Runs the measured closure and accumulates per-iteration timings.
pub struct Bencher {
    samples: Vec<Duration>,
    target_samples: usize,
}

impl Bencher {
    /// Time `routine` once per sample after one untimed warmup call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        std::hint::black_box(routine());
        for _ in 0..self.target_samples {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }
}

/// A named set of related benchmarks sharing sample-size/throughput
/// settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 1);
        self.sample_size = n;
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        if !self.criterion.matches(&full) {
            return self;
        }
        let samples = self.criterion.sample_override.unwrap_or(self.sample_size);
        let mut b = Bencher { samples: Vec::with_capacity(samples), target_samples: samples };
        f(&mut b);
        report(&full, &b.samples, self.throughput);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}
}

fn report(name: &str, samples: &[Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{name:<40} no samples collected");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = *samples.iter().min().expect("nonempty");
    print!(
        "{name:<40} mean {:>12} min {:>12} ({} samples)",
        fmt_duration(mean),
        fmt_duration(min),
        samples.len()
    );
    match throughput {
        Some(Throughput::Elements(n)) => {
            print!("  {:.3} Melem/s", n as f64 / mean.as_secs_f64() / 1e6);
        }
        Some(Throughput::Bytes(n)) => {
            print!("  {:.3} MB/s", n as f64 / mean.as_secs_f64() / 1e6);
        }
        None => {}
    }
    println!();
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Top-level harness handle, passed to every bench function.
pub struct Criterion {
    filter: Option<String>,
    sample_override: Option<usize>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` puts the filter in argv[1].
        let filter = std::env::args()
            .nth(1)
            .filter(|a| !a.starts_with('-'))
            .or_else(|| std::env::var("BENCH_FILTER").ok());
        let sample_override = std::env::var("BENCH_SAMPLES").ok().and_then(|s| s.parse().ok());
        Criterion { filter, sample_override }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), criterion: self, sample_size: 100, throughput: None }
    }

    fn matches(&self, full_name: &str) -> bool {
        self.filter.as_ref().is_none_or(|f| full_name.contains(f))
    }
}

/// Declare a group of bench functions under one name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_requested_samples() {
        let mut b = Bencher { samples: Vec::new(), target_samples: 5 };
        let mut calls = 0u32;
        b.iter(|| calls += 1);
        assert_eq!(b.samples.len(), 5);
        assert_eq!(calls, 6); // warmup + samples
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("puts", 1000).to_string(), "puts/1000");
        assert_eq!(BenchmarkId::from_parameter("k=7").to_string(), "k=7");
    }

    #[test]
    fn groups_run_benches_end_to_end() {
        let mut c = Criterion { filter: None, sample_override: Some(2) };
        let mut g = c.benchmark_group("unit");
        g.sample_size(3);
        let mut ran = 0u32;
        g.bench_with_input(BenchmarkId::new("f", 1), &1, |b, &_x| {
            b.iter(|| ran += 1);
        });
        g.finish();
        assert_eq!(ran, 3); // override 2 samples + 1 warmup
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion { filter: Some("other".into()), sample_override: None };
        let mut g = c.benchmark_group("unit");
        let mut ran = false;
        g.bench_function("f", |b| b.iter(|| ran = true));
        g.finish();
        assert!(!ran);
    }
}
