//! The one-sided RMA interface (RCCE-style `put`/`get`, Section 2.2 of
//! the paper) that every collective in this suite is written against.
//!
//! Semantics mirror the SCC primitives exactly:
//!
//! * **put** — the calling core *reads* data from its own MPB or its own
//!   private off-chip memory and *writes* it to some (usually remote)
//!   MPB. Copying is performed by the issuing core, one cache line at a
//!   time; the P54C executes a single memory transaction at a time.
//! * **get** — the calling core reads from some MPB and writes to its
//!   own MPB or its private off-chip memory.
//! * **flags** — one cache line each; written remotely with a 1-line
//!   put, polled locally. Cache-line write atomicity makes them safe
//!   without locks.
//!
//! Both engines implement this trait: `scc-sim` charges virtual time
//! according to its mesh/port/controller model, `scc-rt` performs real
//! shared-memory copies with acquire/release ordering.

use crate::addr::{MemRange, MpbAddr};
use crate::flags::FlagValue;
use crate::msg::MsgId;
use crate::span::Span;
use crate::topology::CoreId;
use crate::units::Time;
use std::fmt;

/// Errors surfaced by the RMA layer.
///
/// These indicate *programming* errors (bad addresses, protocol misuse)
/// or a wedged system (deadlock in the simulator); they are never used
/// for flow control.
#[derive(Clone, PartialEq, Eq)]
pub enum RmaError {
    /// An MPB access fell outside the 256-line region.
    MpbOutOfRange { addr: MpbAddr, lines: usize },
    /// A private-memory access fell outside the configured memory size.
    MemOutOfRange { offset: usize, len: usize, mem_len: usize },
    /// A transfer of zero cache lines was requested where the protocol
    /// requires at least one.
    EmptyTransfer,
    /// The simulator detected that every live core is blocked on a flag
    /// that nobody can ever write — a protocol bug in a collective.
    Deadlock { core: CoreId, line: usize },
    /// A deadline-aware flag wait ([`Rma::flag_wait_local_until`])
    /// reached its deadline before the predicate held. Unlike the other
    /// variants this one *is* used for flow control: reliable
    /// collectives catch it and run their recovery path.
    Timeout { core: CoreId, line: usize, deadline: Time },
    /// Engine-specific failure (e.g. a panicked peer thread).
    Engine(String),
}

impl fmt::Debug for RmaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RmaError::MpbOutOfRange { addr, lines } => {
                write!(f, "MPB access out of range: {lines} lines at {addr:?}")
            }
            RmaError::MemOutOfRange { offset, len, mem_len } => write!(
                f,
                "private memory access out of range: [{offset}..{}) but memory is {mem_len} bytes",
                offset + len
            ),
            RmaError::EmptyTransfer => write!(f, "zero-length RMA transfer"),
            RmaError::Deadlock { core, line } => {
                write!(f, "deadlock: {core} waits forever on its MPB flag line {line}")
            }
            RmaError::Timeout { core, line, deadline } => {
                write!(f, "timeout: {core} gave up waiting on MPB flag line {line} at {deadline}")
            }
            RmaError::Engine(msg) => write!(f, "engine error: {msg}"),
        }
    }
}

impl fmt::Display for RmaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl std::error::Error for RmaError {}

pub type RmaResult<T> = Result<T, RmaError>;

/// One-sided communication interface of a single core, as seen by the
/// SPMD code running on that core.
///
/// Methods taking `&mut self` may block (and, on the simulator, advance
/// virtual time). All sizes are in cache lines unless a [`MemRange`]
/// carries a byte length; a partial final line is transferred as a full
/// line on the wire, exactly as on the SCC.
pub trait Rma {
    /// This core's id.
    fn core(&self) -> CoreId;

    /// Number of cores participating in the run (`P` in the paper).
    fn num_cores(&self) -> usize;

    /// Globally comparable timestamp (the SCC exposes global counters
    /// readable by all cores; the simulator's virtual clock plays the
    /// same role).
    fn now(&self) -> Time;

    /// Size in bytes of this core's private off-chip memory.
    fn mem_len(&self) -> usize;

    // ---- one-sided data movement -----------------------------------

    /// `put`: copy `src.lines()` cache lines from this core's private
    /// memory into the MPB at `dst` (Formulas 8/10 of the model).
    fn put_from_mem(&mut self, src: MemRange, dst: MpbAddr) -> RmaResult<()>;

    /// `put`: copy `lines` cache lines from this core's own MPB
    /// (starting at `src_line`) into the MPB at `dst` (Formulas 7/9).
    fn put_from_mpb(&mut self, src_line: usize, dst: MpbAddr, lines: usize) -> RmaResult<()>;

    /// Like [`Rma::put_from_mem`], but the source is known to be hot in
    /// the L1 cache (e.g. a message that was just received and is being
    /// forwarded). The paper's Section 5.2.2 approximates this read as
    /// free; the simulator honours that, while the thread backend simply
    /// relies on the real cache and forwards to `put_from_mem`.
    fn put_from_mem_cached(&mut self, src: MemRange, dst: MpbAddr) -> RmaResult<()> {
        self.put_from_mem(src, dst)
    }

    /// `get`: copy `dst.lines()` cache lines from the MPB at `src` into
    /// this core's private memory (Formula 12).
    fn get_to_mem(&mut self, src: MpbAddr, dst: MemRange) -> RmaResult<()>;

    /// `get`: copy `lines` cache lines from the MPB at `src` into this
    /// core's own MPB starting at `dst_line` (Formula 11).
    fn get_to_mpb(&mut self, src: MpbAddr, dst_line: usize, lines: usize) -> RmaResult<()>;

    // ---- flags ------------------------------------------------------

    /// Write `value` into the flag line at `dst` (a 1-line put; the
    /// usual way to notify a remote core).
    fn flag_put(&mut self, dst: MpbAddr, value: FlagValue) -> RmaResult<()>;

    /// Read a flag line in this core's **own** MPB (one local MPB read;
    /// this is the polling primitive and is charged as such).
    fn flag_read_local(&mut self, line: usize) -> RmaResult<FlagValue>;

    /// Poll the local flag `line` until `pred` holds; returns the value
    /// that satisfied it. Every poll iteration costs one local MPB read.
    fn flag_wait_local(
        &mut self,
        line: usize,
        pred: &mut dyn FnMut(FlagValue) -> bool,
    ) -> RmaResult<FlagValue>;

    /// Deadline-aware variant of [`Rma::flag_wait_local`]: poll until
    /// `pred` holds *or* the core's clock reaches `deadline`, in which
    /// case [`RmaError::Timeout`] is returned. This is what keeps a
    /// lost doorbell from hanging a run forever: reliable collectives
    /// catch the timeout and probe/retry instead of spinning.
    ///
    /// The default implementation is a plain poll loop — each failed
    /// poll costs one local MPB read, so the clock always advances and
    /// the loop always terminates. Engines with a park/wake scheduler
    /// override it to park with a timer instead of busy-polling.
    fn flag_wait_local_until(
        &mut self,
        line: usize,
        pred: &mut dyn FnMut(FlagValue) -> bool,
        deadline: Time,
    ) -> RmaResult<FlagValue> {
        loop {
            let v = self.flag_read_local(line)?;
            if pred(v) {
                return Ok(v);
            }
            if self.now() >= deadline {
                return Err(RmaError::Timeout { core: self.core(), line, deadline });
            }
        }
    }

    // ---- private memory host access (untimed; setup & verification) --

    /// Write application data into private memory. This models the data
    /// simply *being there* (e.g. produced by earlier computation) and
    /// costs no communication time.
    fn mem_write(&mut self, offset: usize, data: &[u8]) -> RmaResult<()>;

    /// Read application data back from private memory (untimed).
    fn mem_read(&self, offset: usize, buf: &mut [u8]) -> RmaResult<()>;

    // ---- local work --------------------------------------------------

    /// Spend `t` of pure local computation (no communication). The
    /// simulator advances the core's clock; the thread backend spins.
    fn compute(&mut self, t: Time);

    // ---- observability (untimed; default no-op) ----------------------

    /// Mark the beginning of a protocol phase. Costs no virtual time;
    /// engines without an event recorder ignore it entirely.
    fn span_begin(&mut self, _span: Span) {}

    /// Mark the end of the innermost open protocol phase. Spans must
    /// nest properly per core (LIFO); `span` repeats the phase for
    /// readability and sanity checks, it is not used for matching.
    fn span_end(&mut self, _span: Span) {}

    /// Tag every subsequent timed operation as carrying `msg` (or clear
    /// the tag with `None`). Prefer the [`crate::msg::tagged`] bracket,
    /// which clears on the error path too.
    fn msg_tag(&mut self, _msg: Option<MsgId>) {}

    /// Mark the start of this core's participation in collective
    /// invocation `epoch` — the opening of its delivery window.
    fn delivery_begin(&mut self, _epoch: u32) {}

    /// Mark this core as holding the full payload for `epoch` — the
    /// close of its delivery window.
    fn delivery_end(&mut self, _epoch: u32) {}
}

/// Convenience helpers shared by every `Rma` implementation.
pub trait RmaExt: Rma {
    /// Wait until the local flag `line` holds exactly `value`.
    fn flag_wait_eq(&mut self, line: usize, value: FlagValue) -> RmaResult<()> {
        self.flag_wait_local(line, &mut |v| v == value)?;
        Ok(())
    }

    /// Wait until the local flag `line` is at least `value` (sequence
    /// flags are monotone, so `>=` tolerates a waiter that observed a
    /// later chunk's notification first).
    fn flag_wait_ge(&mut self, line: usize, value: FlagValue) -> RmaResult<FlagValue> {
        self.flag_wait_local(line, &mut |v| v >= value)
    }

    /// Deadline-aware [`RmaExt::flag_wait_eq`].
    fn flag_wait_eq_until(
        &mut self,
        line: usize,
        value: FlagValue,
        deadline: Time,
    ) -> RmaResult<()> {
        self.flag_wait_local_until(line, &mut |v| v == value, deadline)?;
        Ok(())
    }

    /// Deadline-aware [`RmaExt::flag_wait_ge`].
    fn flag_wait_ge_until(
        &mut self,
        line: usize,
        value: FlagValue,
        deadline: Time,
    ) -> RmaResult<FlagValue> {
        self.flag_wait_local_until(line, &mut |v| v >= value, deadline)
    }

    /// Read a whole message back out of private memory (untimed), for
    /// verification in tests and examples.
    fn mem_to_vec(&self, range: MemRange) -> RmaResult<Vec<u8>> {
        let mut buf = vec![0u8; range.len];
        self.mem_read(range.offset, &mut buf)?;
        Ok(buf)
    }
}

impl<T: Rma + ?Sized> RmaExt for T {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_format_usefully() {
        let e = RmaError::MpbOutOfRange { addr: MpbAddr::new(CoreId(2), 250), lines: 10 };
        let s = format!("{e}");
        assert!(s.contains("10 lines"), "{s}");
        assert!(s.contains("mpb[C2:250]"), "{s}");

        let e = RmaError::Deadlock { core: CoreId(5), line: 3 };
        assert!(format!("{e}").contains("C5"));

        let e = RmaError::MemOutOfRange { offset: 96, len: 64, mem_len: 128 };
        assert!(format!("{e}").contains("[96..160)"));
    }
}
