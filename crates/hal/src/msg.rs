//! Message identity for per-destination delivery tracing.
//!
//! A collective moves one logical payload, but on the wire that payload
//! is many transfers: staged puts, notification flags, remote gets,
//! done-flag acks. [`MsgId`] names the logical fragment each transfer
//! carries — which collective invocation (`epoch`), whose data
//! (`source`), for whom (`dest`), and which slice of the message
//! (`line`, the first cache-line index of the fragment within the
//! payload) — so an observer can reassemble every destination's
//! *journey* from a recorded event stream.
//!
//! Collectives annotate through two [`crate::Rma`] hooks, both untimed
//! and free when recording is off:
//!
//! * [`tagged`] brackets data-movement calls with
//!   [`crate::Rma::msg_tag`], stamping every timed operation issued
//!   inside with the given [`MsgId`];
//! * [`delivering`] brackets one core's participation in one collective
//!   epoch with [`crate::Rma::delivery_begin`] /
//!   [`crate::Rma::delivery_end`] — the window from entering the
//!   collective to holding the full payload locally. The last core's
//!   window end *is* the broadcast makespan.

use crate::rma::{Rma, RmaResult};
use crate::topology::CoreId;
use std::fmt;

/// Identity of one logical message fragment moving through a collective.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MsgId {
    /// Which invocation of the collective (an instance-local counter;
    /// free-function collectives without per-instance state use 0).
    pub epoch: u32,
    /// Core whose buffer the fragment is read from.
    pub source: CoreId,
    /// Core the fragment is destined for (the consumer).
    pub dest: CoreId,
    /// First cache-line index of the fragment within the whole message.
    pub line: u32,
}

impl MsgId {
    pub const fn new(epoch: u32, source: CoreId, dest: CoreId, line: u32) -> MsgId {
        MsgId { epoch, source, dest, line }
    }
}

impl fmt::Display for MsgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}:{}→{}@{}", self.epoch, self.source, self.dest, self.line)
    }
}

/// Run `f` with every timed operation tagged as carrying `msg`. The tag
/// is cleared on the way out — on the error path too — so operations
/// outside the bracket never inherit a stale identity.
pub fn tagged<R: Rma + ?Sized, T>(
    c: &mut R,
    msg: MsgId,
    f: impl FnOnce(&mut R) -> RmaResult<T>,
) -> RmaResult<T> {
    c.msg_tag(Some(msg));
    let out = f(c);
    c.msg_tag(None);
    out
}

/// Run `f` bracketed by [`Rma::delivery_begin`] / [`Rma::delivery_end`]
/// for collective invocation `epoch`. Closed on the error path so
/// recorded streams stay balanced even when a collective aborts.
pub fn delivering<R: Rma + ?Sized, T>(
    c: &mut R,
    epoch: u32,
    f: impl FnOnce(&mut R) -> RmaResult<T>,
) -> RmaResult<T> {
    c.delivery_begin(epoch);
    let out = f(c);
    c.delivery_end(epoch);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_journey() {
        let m = MsgId::new(3, CoreId(0), CoreId(17), 96);
        assert_eq!(format!("{m}"), "e3:C0→C17@96");
    }

    #[test]
    fn msg_ids_are_value_types() {
        let a = MsgId::new(1, CoreId(2), CoreId(3), 4);
        let b = a;
        assert_eq!(a, b);
        assert_ne!(a, MsgId::new(1, CoreId(2), CoreId(3), 5));
    }
}
