//! Protocol-phase vocabulary for observability.
//!
//! Collectives annotate their own structure — "waiting for the parent's
//! notification", "pulling a chunk", "round 3 of the ring" — through
//! [`crate::Rma::span_begin`] / [`crate::Rma::span_end`], so a recorded
//! trace is readable at the algorithm level and not just as a soup of
//! RMA operations. Engines that do not record (the thread backend, or
//! the simulator with recording disabled) inherit the default no-op
//! implementations, so annotations cost nothing there.

use crate::rma::{Rma, RmaResult};
use std::fmt;

/// The phase taxonomy shared by every collective in the suite.
///
/// The names follow the paper's step structure: OC-Bcast's per-chunk
/// steps (Section 4.1) map onto `NotifyWait` (step 0), `NotifyForward`
/// (steps i/iv), `BufferWait` (the double-buffer gate of Section 4.2),
/// `Dissemination` (the payload `put`/`get`s) and `Ack` (the done
/// flag); the two-sided baselines use `Scatter`/`Allgather`/`Round`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Polling the local notification flag for a chunk announcement.
    NotifyWait,
    /// Forwarding a notification down a notification tree.
    NotifyForward,
    /// Double-buffer gate: waiting for children's done flags before a
    /// buffer may be overwritten.
    BufferWait,
    /// Payload movement: the `put`/`get` of a chunk or slice.
    Dissemination,
    /// Releasing a parent's buffer (the done-flag put).
    Ack,
    /// Final drain: waiting for children to consume the last chunks.
    Drain,
    /// One round of a round-structured exchange (binomial tree level,
    /// ring step).
    Round,
    /// The scatter half of scatter-allgather.
    Scatter,
    /// The allgather half of scatter-allgather.
    Allgather,
    /// Barrier synchronization.
    Barrier,
}

impl Phase {
    /// Every phase, in protocol order. Exporters key tables and
    /// flamegraph frame palettes off this list so a new phase cannot
    /// silently fall out of a rendering.
    pub const ALL: [Phase; 10] = [
        Phase::NotifyWait,
        Phase::NotifyForward,
        Phase::BufferWait,
        Phase::Dissemination,
        Phase::Ack,
        Phase::Drain,
        Phase::Round,
        Phase::Scatter,
        Phase::Allgather,
        Phase::Barrier,
    ];

    pub const fn name(self) -> &'static str {
        match self {
            Phase::NotifyWait => "notify-wait",
            Phase::NotifyForward => "notify-fwd",
            Phase::BufferWait => "buffer-wait",
            Phase::Dissemination => "disseminate",
            Phase::Ack => "ack",
            Phase::Drain => "drain",
            Phase::Round => "round",
            Phase::Scatter => "scatter",
            Phase::Allgather => "allgather",
            Phase::Barrier => "barrier",
        }
    }

    /// Inverse of [`Phase::name`] — lets report consumers (the diff
    /// renderer, baseline parsers) recover the phase from its stable
    /// string form.
    pub fn from_name(name: &str) -> Option<Phase> {
        Phase::ALL.into_iter().find(|p| p.name() == name)
    }

    /// Is this phase *waiting* (polling a flag, gating on a buffer)
    /// rather than *moving payload*? Used by reports to separate
    /// synchronization time from transfer time.
    pub const fn is_wait(self) -> bool {
        matches!(self, Phase::NotifyWait | Phase::BufferWait | Phase::Drain | Phase::Barrier)
    }
}

/// One protocol-phase annotation: a phase plus a free argument (chunk
/// index, round number) distinguishing repeated instances.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Span {
    pub phase: Phase,
    pub arg: u32,
}

impl Span {
    pub const fn new(phase: Phase, arg: u32) -> Span {
        Span { phase, arg }
    }

    /// A span with no distinguishing argument.
    pub const fn of(phase: Phase) -> Span {
        Span { phase, arg: 0 }
    }
}

/// Run `f` bracketed by [`Rma::span_begin`] / [`Rma::span_end`]. The
/// span is closed on the error path too, so recorded traces stay
/// balanced even when a collective aborts mid-phase.
pub fn spanned<R: Rma + ?Sized, T>(
    c: &mut R,
    span: Span,
    f: impl FnOnce(&mut R) -> RmaResult<T>,
) -> RmaResult<T> {
    c.span_begin(span);
    let out = f(c);
    c.span_end(span);
    out
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.phase.name(), self.arg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_display() {
        assert_eq!(Phase::Dissemination.name(), "disseminate");
        assert_eq!(format!("{}", Span::new(Phase::Round, 3)), "round 3");
        assert_eq!(Span::of(Phase::Drain).arg, 0);
    }

    #[test]
    fn all_names_are_unique_and_round_trip() {
        for p in Phase::ALL {
            assert_eq!(Phase::from_name(p.name()), Some(p));
        }
        assert_eq!(Phase::from_name("no-such-phase"), None);
        let mut names: Vec<&str> = Phase::ALL.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Phase::ALL.len());
    }

    #[test]
    fn wait_phases_are_the_sync_ones() {
        assert!(Phase::NotifyWait.is_wait());
        assert!(Phase::Barrier.is_wait());
        assert!(!Phase::Dissemination.is_wait());
        assert!(!Phase::Round.is_wait());
    }
}
