//! # scc-hal — hardware abstraction for the Intel SCC
//!
//! This crate defines everything that both execution engines (the
//! discrete-event simulator in `scc-sim` and the real-thread backend in
//! `scc-rt`) and every algorithm layered above them agree on:
//!
//! * the **chip geometry** — 24 tiles in a 6×4 mesh, two cores per tile,
//!   X-Y deterministic routing, four off-chip memory controllers
//!   ([`topology`]);
//! * **units** — the 32-byte cache line as the unit of data transmission
//!   and picosecond-resolution timestamps ([`units`]);
//! * **addresses** — locations inside a Message Passing Buffer (MPB) and
//!   inside a core's private off-chip memory ([`addr`]);
//! * the **[`rma::Rma`] trait** — the one-sided `put`/`get`/flag
//!   interface of the RCCE library as described in Section 2.2 of
//!   *"High-Performance RMA-Based Broadcast on the Intel SCC"*
//!   (Petrović et al., SPAA 2012).
//!
//! Algorithms written against [`rma::Rma`] run unchanged on virtual time
//! (simulator) and on wall-clock time (threads).

pub mod addr;
pub mod flags;
pub mod msg;
pub mod rma;
pub mod span;
pub mod topology;
pub mod units;

pub use addr::{MemRange, MpbAddr};
pub use flags::FlagValue;
pub use msg::{delivering, tagged, MsgId};
pub use rma::{Rma, RmaError, RmaExt, RmaResult};
pub use span::{spanned, Phase, Span};
pub use topology::{
    core_at_mpb_distance, core_with_mem_distance, CoreId, LinkDir, MemController, Tile,
    CORES_PER_TILE, NUM_CORES, NUM_LINK_DIRS, TILE_COLS, TILE_ROWS,
};
pub use units::{
    bytes_to_lines, lines_to_bytes, Time, CACHE_LINE_BYTES, MPB_BYTES_PER_CORE, MPB_LINES_PER_CORE,
};
