//! Addressing of the two memory spaces the RMA primitives move data
//! between: on-chip MPBs (cache-line addressed, remotely accessible) and
//! per-core private off-chip memory (byte addressed, only accessible by
//! the owning core — Section 2.1).

use crate::topology::CoreId;
use crate::units::{CACHE_LINE_BYTES, MPB_LINES_PER_CORE};
use std::fmt;

/// A cache-line address inside some core's MPB.
///
/// Every core can read and write every MPB (that is what makes the
/// primitives *remote* memory accesses), so the address carries the
/// owning core explicitly.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct MpbAddr {
    /// Core owning the MPB half in which the line lives.
    pub core: CoreId,
    /// Cache-line offset within that core's 256-line MPB region.
    pub line: u16,
}

impl MpbAddr {
    #[inline]
    pub fn new(core: CoreId, line: usize) -> MpbAddr {
        assert!(
            line < MPB_LINES_PER_CORE,
            "MPB line {line} out of range (core has {MPB_LINES_PER_CORE} lines)"
        );
        MpbAddr { core, line: line as u16 }
    }

    #[inline]
    pub fn line(self) -> usize {
        self.line as usize
    }

    /// The address `lines` cache lines further into the same MPB.
    #[inline]
    pub fn offset(self, lines: usize) -> MpbAddr {
        MpbAddr::new(self.core, self.line() + lines)
    }

    /// True if `[self, self+lines)` stays inside the MPB.
    #[inline]
    pub fn fits(self, lines: usize) -> bool {
        self.line() + lines <= MPB_LINES_PER_CORE
    }

    /// Byte offset of this line within the owning core's MPB region.
    #[inline]
    pub fn byte_offset(self) -> usize {
        self.line() * CACHE_LINE_BYTES
    }
}

impl fmt::Debug for MpbAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mpb[{}:{}]", self.core, self.line)
    }
}

/// A byte range in the calling core's private off-chip memory.
///
/// RMA transfers operate at cache-line granularity, so ranges used as
/// put sources / get destinations must be line-aligned; `MemRange`
/// enforces this at construction.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemRange {
    pub offset: usize,
    pub len: usize,
}

impl MemRange {
    /// A line-aligned range. Panics if `offset` is not a multiple of the
    /// cache-line size (`len` may be arbitrary; the final line is
    /// partially transferred, padded to a full line on the wire exactly
    /// like the hardware does). Zero-length ranges may sit at any
    /// offset — they never reach the wire.
    #[inline]
    pub fn new(offset: usize, len: usize) -> MemRange {
        assert!(
            len == 0 || offset.is_multiple_of(CACHE_LINE_BYTES),
            "private-memory RMA offset {offset} must be 32-byte aligned"
        );
        MemRange { offset, len }
    }

    #[inline]
    pub fn end(self) -> usize {
        self.offset + self.len
    }

    /// Number of cache lines the transfer of this range occupies.
    #[inline]
    pub fn lines(self) -> usize {
        crate::units::bytes_to_lines(self.len)
    }

    /// Split into the sub-range starting at byte `at` (relative), keeping
    /// alignment. Used by chunking loops.
    #[inline]
    pub fn slice(self, at: usize, len: usize) -> MemRange {
        assert!(at + len <= self.len, "slice outside range");
        MemRange::new(self.offset + at, len)
    }
}

impl fmt::Debug for MemRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mem[{}..{}]", self.offset, self.end())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mpb_addr_arithmetic() {
        let a = MpbAddr::new(CoreId(3), 10);
        assert_eq!(a.offset(5).line(), 15);
        assert_eq!(a.byte_offset(), 320);
        assert!(a.fits(246));
        assert!(!a.fits(247));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn mpb_addr_bounds() {
        let _ = MpbAddr::new(CoreId(0), 256);
    }

    #[test]
    fn mem_range_lines() {
        assert_eq!(MemRange::new(0, 0).lines(), 0);
        assert_eq!(MemRange::new(32, 1).lines(), 1);
        assert_eq!(MemRange::new(64, 33).lines(), 2);
        let r = MemRange::new(0, 128);
        let s = r.slice(32, 64);
        assert_eq!((s.offset, s.len), (32, 64));
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn mem_range_alignment_enforced() {
        let _ = MemRange::new(31, 10);
    }
}
