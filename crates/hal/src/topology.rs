//! SCC chip geometry: tiles, cores, routers, memory controllers and the
//! deterministic X-Y routing distance metric used by the performance
//! model (parameter `d` in Section 3.1 of the paper).
//!
//! The SCC integrates 48 Pentium P54C cores on 24 tiles arranged in a
//! 6×4 mesh; each tile is attached to one router.  Four memory
//! controllers (MC) sit on the mesh periphery, and each core reaches its
//! private off-chip memory through the controller of its quadrant.
//!
//! The model counts *routers traversed* on the path from source to
//! destination: accessing the MPB of the other core on the same tile is
//! distance 1 (one's own router), the farthest MPB is distance 9
//! (`Δx = 5, Δy = 3` plus the local router), and a core's memory
//! controller is between 1 and 4 routers away — matching the x-axis
//! ranges of Figure 3.

use std::fmt;

/// Mesh width in tiles.
pub const TILE_COLS: u8 = 6;
/// Mesh height in tiles.
pub const TILE_ROWS: u8 = 4;
/// Cores per tile.
pub const CORES_PER_TILE: u8 = 2;
/// Total number of cores on the chip.
pub const NUM_CORES: usize =
    (TILE_COLS as usize) * (TILE_ROWS as usize) * (CORES_PER_TILE as usize);

/// Identifier of one of the 48 cores, numbered 0..48.
///
/// Cores `2t` and `2t + 1` share tile `t`; tiles are numbered row-major
/// from `(0,0)` (bottom-left in Figure 1) to `(5,3)`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CoreId(pub u8);

impl CoreId {
    /// All cores of a `P`-core run, in id order.
    pub fn all(num_cores: usize) -> impl Iterator<Item = CoreId> {
        assert!(num_cores <= NUM_CORES, "SCC has at most {NUM_CORES} cores");
        (0..num_cores as u8).map(CoreId)
    }

    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The tile this core sits on.
    #[inline]
    pub fn tile(self) -> Tile {
        Tile::from_index(self.0 / CORES_PER_TILE)
    }

    /// The other core on the same tile.
    #[inline]
    pub fn tile_mate(self) -> CoreId {
        CoreId(self.0 ^ 1)
    }

    /// The memory controller serving this core's private off-chip memory.
    #[inline]
    pub fn memory_controller(self) -> MemController {
        MemController::serving(self.tile())
    }

    /// Routers traversed when this core accesses the MPB on `dst`'s tile.
    ///
    /// This is the distance parameter `d` of the model: X-Y hop count
    /// between tiles plus one for the local router (the local MPB itself
    /// is accessed through the local router, hence `d = 1`, never 0).
    #[inline]
    pub fn mpb_distance(self, dst: CoreId) -> u32 {
        self.tile().routing_distance(dst.tile())
    }

    /// Routers traversed when this core accesses its private off-chip
    /// memory (distance to its quadrant's memory controller).
    #[inline]
    pub fn mem_distance(self) -> u32 {
        let mc = self.memory_controller();
        self.tile().routing_distance(mc.attach_tile())
    }
}

impl fmt::Debug for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

/// A tile position `(x, y)` in the 6×4 mesh.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Tile {
    pub x: u8,
    pub y: u8,
}

impl Tile {
    #[inline]
    pub fn new(x: u8, y: u8) -> Tile {
        assert!(x < TILE_COLS && y < TILE_ROWS, "tile ({x},{y}) outside 6x4 mesh");
        Tile { x, y }
    }

    #[inline]
    pub fn from_index(idx: u8) -> Tile {
        assert!(idx < TILE_COLS * TILE_ROWS, "tile index {idx} out of range");
        Tile { x: idx % TILE_COLS, y: idx / TILE_COLS }
    }

    #[inline]
    pub fn index(self) -> usize {
        (self.y as usize) * (TILE_COLS as usize) + self.x as usize
    }

    /// The two cores living on this tile.
    pub fn cores(self) -> [CoreId; 2] {
        let base = self.index() as u8 * CORES_PER_TILE;
        [CoreId(base), CoreId(base + 1)]
    }

    /// Number of routers a packet traverses from `self` to `to` under
    /// deterministic X-Y routing, *including* the source router.
    ///
    /// Same tile ⇒ 1 (the packet still enters the local router); the
    /// maximum on the SCC mesh is 5 + 3 + 1 = 9.
    #[inline]
    pub fn routing_distance(self, to: Tile) -> u32 {
        let dx = self.x.abs_diff(to.x) as u32;
        let dy = self.y.abs_diff(to.y) as u32;
        dx + dy + 1
    }

    /// The ordered tiles whose routers the packet visits under X-Y
    /// routing (first along x, then along y), including source and
    /// destination routers. Yields [`Tile::routing_distance`] tiles.
    /// Allocation-free: the simulator walks a route per cache line, on
    /// its hottest path.
    pub fn xy_route(self, to: Tile) -> XyRoute {
        XyRoute { cur: Some(self), to }
    }
}

/// The output a router forwards a packet to: one of the four mesh
/// neighbours, or local ejection into the tile itself (MPB port,
/// cores, or an attached memory controller).
///
/// Together with the router's tile this names one *directed* mesh
/// link; the 24 × 5 grid of them is the unit of the per-link
/// occupancy accounting (`SimStats::link_busy` / `link_wait` in
/// `scc-sim`) and of the mesh heatmaps in `scc-obs`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LinkDir {
    /// Towards `x + 1`.
    East,
    /// Towards `x - 1`.
    West,
    /// Towards `y + 1`.
    North,
    /// Towards `y - 1`.
    South,
    /// Into the tile (destination router: MPB port, core, or MC).
    Eject,
}

/// Number of directed links per router ([`LinkDir`] variants).
pub const NUM_LINK_DIRS: usize = 5;

impl LinkDir {
    /// Every direction, in [`LinkDir::index`] order.
    pub const ALL: [LinkDir; NUM_LINK_DIRS] =
        [LinkDir::East, LinkDir::West, LinkDir::North, LinkDir::South, LinkDir::Eject];

    #[inline]
    pub fn index(self) -> usize {
        match self {
            LinkDir::East => 0,
            LinkDir::West => 1,
            LinkDir::North => 2,
            LinkDir::South => 3,
            LinkDir::Eject => 4,
        }
    }

    pub fn short(self) -> &'static str {
        match self {
            LinkDir::East => "E",
            LinkDir::West => "W",
            LinkDir::North => "N",
            LinkDir::South => "S",
            LinkDir::Eject => "·",
        }
    }
}

impl fmt::Display for LinkDir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short())
    }
}

impl Tile {
    /// The link direction from this tile's router towards `next`, which
    /// must be this tile itself ([`LinkDir::Eject`]) or one of its four
    /// mesh neighbours — consecutive tiles of an [`XyRoute`] always
    /// satisfy this.
    #[inline]
    pub fn dir_to(self, next: Tile) -> LinkDir {
        match (next.x as i8 - self.x as i8, next.y as i8 - self.y as i8) {
            (0, 0) => LinkDir::Eject,
            (1, 0) => LinkDir::East,
            (-1, 0) => LinkDir::West,
            (0, 1) => LinkDir::North,
            (0, -1) => LinkDir::South,
            _ => panic!("{next} is not adjacent to {self}"),
        }
    }
}

/// Iterator over the tiles of an X-Y route; see [`Tile::xy_route`].
#[derive(Clone, Debug)]
pub struct XyRoute {
    cur: Option<Tile>,
    to: Tile,
}

impl Iterator for XyRoute {
    type Item = Tile;

    fn next(&mut self) -> Option<Tile> {
        let cur = self.cur?;
        self.cur = if cur.x != self.to.x {
            Some(Tile { x: if self.to.x > cur.x { cur.x + 1 } else { cur.x - 1 }, y: cur.y })
        } else if cur.y != self.to.y {
            Some(Tile { x: cur.x, y: if self.to.y > cur.y { cur.y + 1 } else { cur.y - 1 } })
        } else {
            None
        };
        Some(cur)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = match self.cur {
            Some(c) => c.routing_distance(self.to) as usize,
            None => 0,
        };
        (n, Some(n))
    }
}

impl ExactSizeIterator for XyRoute {}

impl fmt::Debug for Tile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.x, self.y)
    }
}

impl fmt::Display for Tile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.x, self.y)
    }
}

/// Find a core whose MPB is exactly `d` routers away from `from`
/// (`1 ≤ d ≤ 9` on the full chip). Used by the distance-sweep
/// microbenchmarks of Figure 3. Prefers the lowest core id.
pub fn core_at_mpb_distance(from: CoreId, d: u32, num_cores: usize) -> Option<CoreId> {
    CoreId::all(num_cores).find(|&c| from.mpb_distance(c) == d)
}

/// Find a core whose private-memory controller is exactly `d` routers
/// away (`1 ≤ d ≤ 4`). Used by the memory panels of Figure 3.
pub fn core_with_mem_distance(d: u32, num_cores: usize) -> Option<CoreId> {
    CoreId::all(num_cores).find(|&c| c.mem_distance() == d)
}

/// One of the four off-chip memory controllers.
///
/// Each controller is attached to a corner router of the mesh and serves
/// the quadrant of 6 tiles (12 cores) nearest to it, so the
/// core-to-controller distance ranges over 1..=4 — the x-axis of the
/// memory panels of Figure 3.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MemController {
    /// Attached at tile (0,0); serves tiles x<3, y<2.
    SouthWest,
    /// Attached at tile (5,0); serves tiles x≥3, y<2.
    SouthEast,
    /// Attached at tile (0,3); serves tiles x<3, y≥2.
    NorthWest,
    /// Attached at tile (5,3); serves tiles x≥3, y≥2.
    NorthEast,
}

impl MemController {
    pub const ALL: [MemController; 4] = [
        MemController::SouthWest,
        MemController::SouthEast,
        MemController::NorthWest,
        MemController::NorthEast,
    ];

    /// The controller serving a given tile's cores.
    #[inline]
    pub fn serving(tile: Tile) -> MemController {
        match (tile.x >= 3, tile.y >= 2) {
            (false, false) => MemController::SouthWest,
            (true, false) => MemController::SouthEast,
            (false, true) => MemController::NorthWest,
            (true, true) => MemController::NorthEast,
        }
    }

    /// The mesh tile whose router the controller hangs off.
    #[inline]
    pub fn attach_tile(self) -> Tile {
        match self {
            MemController::SouthWest => Tile { x: 0, y: 0 },
            MemController::SouthEast => Tile { x: 5, y: 0 },
            MemController::NorthWest => Tile { x: 0, y: 3 },
            MemController::NorthEast => Tile { x: 5, y: 3 },
        }
    }

    #[inline]
    pub fn index(self) -> usize {
        match self {
            MemController::SouthWest => 0,
            MemController::SouthEast => 1,
            MemController::NorthWest => 2,
            MemController::NorthEast => 3,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_tile_mapping() {
        assert_eq!(CoreId(0).tile(), Tile::new(0, 0));
        assert_eq!(CoreId(1).tile(), Tile::new(0, 0));
        assert_eq!(CoreId(2).tile(), Tile::new(1, 0));
        assert_eq!(CoreId(47).tile(), Tile::new(5, 3));
        assert_eq!(CoreId(0).tile_mate(), CoreId(1));
        assert_eq!(CoreId(1).tile_mate(), CoreId(0));
    }

    #[test]
    fn distance_range_matches_paper() {
        // Same-tile access is distance 1 ("1-hop distance, which means
        // accessing the MPB of the other core on the same tile").
        assert_eq!(CoreId(0).mpb_distance(CoreId(1)), 1);
        assert_eq!(CoreId(0).mpb_distance(CoreId(0)), 1);
        // Maximum distance is 9 hops (Section 3.2).
        let max = CoreId::all(NUM_CORES)
            .flat_map(|a| CoreId::all(NUM_CORES).map(move |b| a.mpb_distance(b)))
            .max()
            .unwrap();
        assert_eq!(max, 9);
        assert_eq!(CoreId(0).mpb_distance(CoreId(47)), 9);
    }

    #[test]
    fn memory_distance_range_matches_fig3() {
        // Figure 3's memory panels sweep distances 1..=4.
        let (mut lo, mut hi) = (u32::MAX, 0);
        for c in CoreId::all(NUM_CORES) {
            let d = c.mem_distance();
            lo = lo.min(d);
            hi = hi.max(d);
        }
        assert_eq!((lo, hi), (1, 4));
    }

    #[test]
    fn each_controller_serves_twelve_cores() {
        for mc in MemController::ALL {
            let n = CoreId::all(NUM_CORES).filter(|c| c.memory_controller() == mc).count();
            assert_eq!(n, 12, "{mc:?} must serve one quadrant");
        }
    }

    #[test]
    fn xy_route_shape() {
        let r: Vec<Tile> = Tile::new(0, 2).xy_route(Tile::new(3, 2)).collect();
        // The Section 3.3 stress path: (0,2) -> (3,2) goes through (2,2)-(3,2).
        assert_eq!(r, vec![Tile::new(0, 2), Tile::new(1, 2), Tile::new(2, 2), Tile::new(3, 2)]);
        // X first, then Y.
        let r: Vec<Tile> = Tile::new(1, 1).xy_route(Tile::new(2, 3)).collect();
        assert_eq!(r, vec![Tile::new(1, 1), Tile::new(2, 1), Tile::new(2, 2), Tile::new(2, 3)]);
        // Degenerate route: same tile.
        let r: Vec<Tile> = Tile::new(4, 2).xy_route(Tile::new(4, 2)).collect();
        assert_eq!(r, vec![Tile::new(4, 2)]);
    }

    #[test]
    fn route_length_equals_distance() {
        for a in 0..TILE_COLS * TILE_ROWS {
            for b in 0..TILE_COLS * TILE_ROWS {
                let (ta, tb) = (Tile::from_index(a), Tile::from_index(b));
                assert_eq!(ta.xy_route(tb).count() as u32, ta.routing_distance(tb));
            }
        }
    }

    #[test]
    #[should_panic(expected = "outside 6x4 mesh")]
    fn tile_bounds_checked() {
        let _ = Tile::new(6, 0);
    }

    #[test]
    fn distance_finders_cover_the_sweep_ranges() {
        for d in 1..=9 {
            let c = core_at_mpb_distance(CoreId(0), d, NUM_CORES)
                .unwrap_or_else(|| panic!("no core at MPB distance {d}"));
            assert_eq!(CoreId(0).mpb_distance(c), d);
        }
        assert!(core_at_mpb_distance(CoreId(0), 10, NUM_CORES).is_none());
        for d in 1..=4 {
            let c = core_with_mem_distance(d, NUM_CORES)
                .unwrap_or_else(|| panic!("no core at memory distance {d}"));
            assert_eq!(c.mem_distance(), d);
        }
        assert!(core_with_mem_distance(5, NUM_CORES).is_none());
        // Reduced runs still find nearby targets.
        assert!(core_at_mpb_distance(CoreId(0), 2, 8).is_some());
    }
}
