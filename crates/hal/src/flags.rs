//! Flag values stored in MPB cache lines.
//!
//! The SCC guarantees read/write atomicity at 32-byte cache-line
//! granularity, so a synchronization flag simply occupies one full line
//! and needs no lock (paper Section 5.1).  We store a `u32` sequence
//! number in the first four bytes (little endian) and leave the rest of
//! the line zero.  Sequence-valued flags let repeated collectives reuse
//! the same lines without any reset protocol: a waiter knows which value
//! it expects next.

use crate::units::CACHE_LINE_BYTES;

/// Value carried by a one-cache-line flag.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct FlagValue(pub u32);

impl FlagValue {
    pub const CLEAR: FlagValue = FlagValue(0);

    /// Serialize into a full cache line (first 4 bytes LE, rest zero).
    #[inline]
    pub fn encode(self) -> [u8; CACHE_LINE_BYTES] {
        let mut line = [0u8; CACHE_LINE_BYTES];
        line[..4].copy_from_slice(&self.0.to_le_bytes());
        line
    }

    /// Deserialize from the first 4 bytes of a cache line.
    #[inline]
    pub fn decode(line: &[u8]) -> FlagValue {
        let mut b = [0u8; 4];
        b.copy_from_slice(&line[..4]);
        FlagValue(u32::from_le_bytes(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        for v in [0u32, 1, 7, 0xDEAD_BEEF, u32::MAX] {
            let line = FlagValue(v).encode();
            assert_eq!(FlagValue::decode(&line), FlagValue(v));
            assert!(line[4..].iter().all(|&b| b == 0));
        }
    }

    #[test]
    fn decode_ignores_tail() {
        let mut line = FlagValue(42).encode();
        line[8] = 0xFF; // garbage beyond the value must not matter
        assert_eq!(FlagValue::decode(&line), FlagValue(42));
    }
}
