//! Units of time and data used throughout the reproduction.
//!
//! The paper expresses all model parameters in time units because the SCC
//! cores, mesh and memory controllers run at different frequencies
//! (Section 3.1).  We use an integer picosecond clock so that simulator
//! runs are exactly reproducible — no floating-point accumulation order
//! can change a schedule.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// The SCC transfers data between MPBs at cache-line granularity: one
/// packet carries one 32-byte cache line (Section 2.2).
pub const CACHE_LINE_BYTES: usize = 32;

/// Each tile has a 16 KB MPB, split evenly between its two cores.
pub const MPB_BYTES_PER_CORE: usize = 8 * 1024;

/// Per-core MPB capacity in cache lines (256).
pub const MPB_LINES_PER_CORE: usize = MPB_BYTES_PER_CORE / CACHE_LINE_BYTES;

/// Number of cache lines needed to hold `bytes` bytes (rounded up).
#[inline]
pub const fn bytes_to_lines(bytes: usize) -> usize {
    bytes.div_ceil(CACHE_LINE_BYTES)
}

/// Number of bytes spanned by `lines` cache lines.
#[inline]
pub const fn lines_to_bytes(lines: usize) -> usize {
    lines * CACHE_LINE_BYTES
}

/// A point in (virtual or real) time, in integer picoseconds.
///
/// Picoseconds give sub-nanosecond resolution for micro-parameters such
/// as per-hop router latency (5 ns on the SCC) while still covering
/// ~5·10⁶ seconds in a `u64` — far beyond any experiment in this suite.
///
/// ```
/// use scc_hal::Time;
/// let hop = Time::from_ns(5);
/// let nine_hops = hop * 9;
/// assert_eq!(nine_hops.as_us_f64(), 0.045);
/// assert_eq!(format!("{nine_hops}"), "0.045us");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub u64);

impl Time {
    pub const ZERO: Time = Time(0);

    /// One picosecond.
    pub const PS: Time = Time(1);
    /// One nanosecond.
    pub const NS: Time = Time(1_000);
    /// One microsecond.
    pub const US: Time = Time(1_000_000);
    /// One millisecond.
    pub const MS: Time = Time(1_000_000_000);

    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        Time(ps)
    }

    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        Time(ns * 1_000)
    }

    /// Build a `Time` from a microsecond value, rounding to the nearest
    /// picosecond. Panics on negative or non-finite input.
    #[inline]
    pub fn from_us_f64(us: f64) -> Self {
        assert!(us.is_finite() && us >= 0.0, "time must be finite and non-negative, got {us}");
        Time((us * 1e6).round() as u64)
    }

    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    #[inline]
    pub fn saturating_sub(self, rhs: Time) -> Time {
        Time(self.0.saturating_sub(rhs.0))
    }

    #[inline]
    pub fn max(self, rhs: Time) -> Time {
        Time(self.0.max(rhs.0))
    }

    #[inline]
    pub fn min(self, rhs: Time) -> Time {
        Time(self.0.min(rhs.0))
    }
}

impl Add for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Time) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Time) {
        self.0 += rhs.0;
    }
}

impl Sub for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: Time) -> Time {
        Time(self.0.checked_sub(rhs.0).expect("time subtraction underflow"))
    }
}

impl SubAssign for Time {
    #[inline]
    fn sub_assign(&mut self, rhs: Time) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Time {
    type Output = Time;
    #[inline]
    fn mul(self, rhs: u64) -> Time {
        Time(self.0 * rhs)
    }
}

impl Div<u64> for Time {
    type Output = Time;
    #[inline]
    fn div(self, rhs: u64) -> Time {
        Time(self.0 / rhs)
    }
}

impl Sum for Time {
    fn sum<I: Iterator<Item = Time>>(iter: I) -> Time {
        iter.fold(Time::ZERO, Add::add)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us_f64())
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_round_trips() {
        assert_eq!(bytes_to_lines(0), 0);
        assert_eq!(bytes_to_lines(1), 1);
        assert_eq!(bytes_to_lines(32), 1);
        assert_eq!(bytes_to_lines(33), 2);
        assert_eq!(bytes_to_lines(96 * 32), 96);
        assert_eq!(lines_to_bytes(96), 3072);
        // 1 MiB = 32768 cache lines (largest message in the paper's Fig. 8b).
        assert_eq!(bytes_to_lines(1 << 20), 32768);
    }

    #[test]
    fn mpb_capacity_matches_paper() {
        // 8 KB per core == 256 cache lines (Sections 1.1 and 2.1).
        assert_eq!(MPB_LINES_PER_CORE, 256);
    }

    #[test]
    fn time_conversions() {
        assert_eq!(Time::from_ns(5).as_ps(), 5_000);
        assert_eq!(Time::from_us_f64(0.126).as_ps(), 126_000);
        assert!((Time::from_us_f64(16.6).as_us_f64() - 16.6).abs() < 1e-9);
        assert_eq!(Time::from_us_f64(0.0), Time::ZERO);
    }

    #[test]
    fn time_arithmetic() {
        let a = Time::from_ns(10);
        let b = Time::from_ns(4);
        assert_eq!(a + b, Time::from_ns(14));
        assert_eq!(a - b, Time::from_ns(6));
        assert_eq!(a * 3, Time::from_ns(30));
        assert_eq!(a / 2, Time::from_ns(5));
        assert_eq!(b.saturating_sub(a), Time::ZERO);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
        let total: Time = [a, b, b].into_iter().sum();
        assert_eq!(total, Time::from_ns(18));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn time_sub_underflow_panics() {
        let _ = Time::from_ns(1) - Time::from_ns(2);
    }

    #[test]
    fn display_in_microseconds() {
        assert_eq!(format!("{}", Time::from_us_f64(1.5)), "1.500us");
    }
}
