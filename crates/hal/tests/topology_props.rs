//! Property-based tests of the chip geometry.

use proptest::prelude::*;
use scc_hal::{CoreId, MemController, Tile, NUM_CORES};

fn arb_tile() -> impl Strategy<Value = Tile> {
    (0u8..6, 0u8..4).prop_map(|(x, y)| Tile::new(x, y))
}

proptest! {
    /// X-Y routes are contiguous (each hop moves to a neighbouring
    /// tile), start at the source and end at the destination.
    #[test]
    fn routes_are_contiguous(a in arb_tile(), b in arb_tile()) {
        let route: Vec<_> = a.xy_route(b).collect();
        prop_assert_eq!(*route.first().unwrap(), a);
        prop_assert_eq!(*route.last().unwrap(), b);
        for w in route.windows(2) {
            let dx = w[0].x.abs_diff(w[1].x);
            let dy = w[0].y.abs_diff(w[1].y);
            prop_assert_eq!(dx + dy, 1, "non-adjacent hop {:?} -> {:?}", w[0], w[1]);
        }
    }

    /// Routing distance is symmetric and satisfies the triangle
    /// inequality up to the double-counted middle router.
    #[test]
    fn distance_metric_properties(a in arb_tile(), b in arb_tile(), c in arb_tile()) {
        prop_assert_eq!(a.routing_distance(b), b.routing_distance(a));
        prop_assert!(a.routing_distance(a) == 1);
        // d(a,c) ≤ d(a,b) + d(b,c) − 1 (b's router counted once).
        prop_assert!(
            a.routing_distance(c) < a.routing_distance(b) + b.routing_distance(c)
        );
    }

    /// Core→tile→core round trips and tile-mate involution.
    #[test]
    fn core_tile_roundtrip(i in 0u8..48) {
        let c = CoreId(i);
        prop_assert!(c.tile().cores().contains(&c));
        prop_assert_eq!(c.tile_mate().tile_mate(), c);
        prop_assert_eq!(c.tile_mate().tile(), c.tile());
        prop_assert!(c.mpb_distance(c.tile_mate()) == 1);
    }

    /// Every core's memory controller is the nearest of the four.
    #[test]
    fn controller_is_nearest(i in 0u8..48) {
        let c = CoreId(i);
        let mine = c.mem_distance();
        for mc in MemController::ALL {
            let d = c.tile().routing_distance(mc.attach_tile());
            prop_assert!(mine <= d, "{c}: assigned {mine} but {mc:?} at {d}");
        }
    }
}

#[test]
fn exhaustive_distance_table_sane() {
    // All 48×48 distances in 1..=9; diagonal and tile-mates at 1.
    for a in 0..NUM_CORES as u8 {
        for b in 0..NUM_CORES as u8 {
            let d = CoreId(a).mpb_distance(CoreId(b));
            assert!((1..=9).contains(&d));
            assert_eq!(d, CoreId(b).mpb_distance(CoreId(a)));
        }
    }
}
