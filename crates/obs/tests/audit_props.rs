//! Property tests of the causal auditor: randomly generated
//! well-formed streams must audit to zero violations (the checkers
//! accept everything the protocol allows), a random seeded mutation of
//! such a stream must be detected *and* carry the expected violation
//! class (the checkers reject what the protocol forbids), and the
//! `BENCH_audit.json` envelope round-trips losslessly.

use proptest::prelude::*;
use proptest::TestRng;
use scc_hal::{CoreId, MsgId, Phase, Span, Time};
use scc_obs::event::ResourceId;
use scc_obs::{
    audit, audit_artifact, mutate, parse_audit_artifact, AuditScenario, AuditSpec, Json,
    MutationClass, MutationTrial, ObsEvent, OpKind,
};

fn ns(v: u64) -> Time {
    Time::from_ns(v)
}

/// A random conformant stream: `cores` delivery windows, a random mix
/// of notify rounds (failed poll → park → remote commit+wake →
/// re-poll, all inside a span), resource bookings with disjoint
/// service intervals, and compute blocks — closed by delivery ends
/// whose last close is the makespan.
fn arb_stream(rng: &mut TestRng) -> (Vec<ObsEvent>, Time) {
    let cores = 2 + rng.gen_range_u64(0, 4) as u8; // 2..=5
    let line = |c: u8| c as usize + 2;
    let mut value = vec![0u32; cores as usize];
    let mut events = Vec::new();
    for c in 0..cores {
        events.push(ObsEvent::DeliveryBegin { core: CoreId(c), epoch: 0, at: ns(0) });
    }
    let mut t = 1u64;
    // Per-resource service cursor keeps bookings disjoint.
    let mut router_cursor = 0u64;
    let rounds = 4 + rng.gen_range_u64(0, 10);
    for r in 0..rounds {
        // The first four rounds are always two notifies + two bookings
        // so every fault-free mutation class has a site (cross-span
        // close needs two distinct closed spans, service swap two
        // bookings on one resource) whatever the dice say.
        let kind = match r {
            0 | 1 => 0,
            2 | 3 => 1,
            _ => rng.gen_range_u64(0, 3),
        };
        match kind {
            0 => {
                // Notify round: `w` commits a flag into `s`'s line.
                let s = rng.gen_range_u64(0, u64::from(cores)) as u8;
                let w = (s + 1 + rng.gen_range_u64(0, u64::from(cores) - 1) as u8) % cores;
                let span = Span::new(Phase::NotifyWait, r as u32);
                events.push(ObsEvent::SpanBegin { core: CoreId(s), span, at: ns(t) });
                events.push(ObsEvent::Op {
                    core: CoreId(s),
                    kind: OpKind::FlagRead,
                    lines: 1,
                    start: ns(t),
                    end: ns(t + 1),
                    msg: None,
                });
                events.push(ObsEvent::FlagSample {
                    core: CoreId(s),
                    line: line(s),
                    value: value[s as usize],
                    at: ns(t + 1),
                });
                events.push(ObsEvent::Park { core: CoreId(s), line: line(s), at: ns(t + 1) });
                events.push(ObsEvent::Op {
                    core: CoreId(w),
                    kind: OpKind::FlagPut,
                    lines: 1,
                    start: ns(t + 1),
                    end: ns(t + 5),
                    msg: Some(MsgId::new(0, CoreId(w), CoreId(s), r as u32)),
                });
                value[s as usize] += 1;
                events.push(ObsEvent::MpbWrite {
                    owner: CoreId(s),
                    line: line(s),
                    lines: 1,
                    writer: CoreId(w),
                    value: Some(value[s as usize]),
                    at: ns(t + 5),
                });
                events.push(ObsEvent::Wake {
                    core: CoreId(s),
                    line: line(s),
                    at: ns(t + 5),
                    writer: CoreId(w),
                });
                events.push(ObsEvent::Op {
                    core: CoreId(s),
                    kind: OpKind::FlagRead,
                    lines: 1,
                    start: ns(t + 5),
                    end: ns(t + 6),
                    msg: None,
                });
                events.push(ObsEvent::FlagSample {
                    core: CoreId(s),
                    line: line(s),
                    value: value[s as usize],
                    at: ns(t + 6),
                });
                events.push(ObsEvent::SpanEnd { core: CoreId(s), span, at: ns(t + 6) });
                t += 7;
            }
            1 => {
                // Booking round: disjoint service on the shared router.
                let c = rng.gen_range_u64(0, u64::from(cores)) as u8;
                let arrival = t;
                let start = arrival.max(router_cursor);
                let dur = 1 + rng.gen_range_u64(0, 5);
                events.push(ObsEvent::Wait {
                    core: CoreId(c),
                    resource: ResourceId::Router(0),
                    arrival: ns(arrival),
                    start: ns(start),
                    end: ns(start + dur),
                    link: None,
                });
                router_cursor = start + dur;
                t += 1;
            }
            _ => {
                let c = rng.gen_range_u64(0, u64::from(cores)) as u8;
                let dur = 1 + rng.gen_range_u64(0, 8);
                events.push(ObsEvent::Compute { core: CoreId(c), start: ns(t), end: ns(t + dur) });
                t += dur + 1;
            }
        }
    }
    t = t.max(router_cursor);
    let mut makespan = Time::ZERO;
    for c in 0..cores {
        let at = ns(t + u64::from(c));
        events.push(ObsEvent::DeliveryEnd { core: CoreId(c), epoch: 0, at });
        events.push(ObsEvent::Finish { core: CoreId(c), at });
        makespan = at;
    }
    (events, makespan)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// Soundness of the acceptance direction: whatever conformant
    /// interleaving the generator produces, the auditor finds nothing
    /// to complain about — and actually examined the stream.
    #[test]
    fn well_formed_streams_audit_clean(seed in any::<u64>()) {
        let mut rng = TestRng::from_name(&format!("clean-{seed}"));
        let (events, makespan) = arb_stream(&mut rng);
        let rep = audit(&events, &AuditSpec::plain().with_makespan(makespan));
        prop_assert!(rep.ok(), "{:?}", &rep.violations[..rep.violations.len().min(4)]);
        prop_assert!(rep.checked() > 0);
        prop_assert_eq!(rep.events, events.len() as u64);
    }

    /// Non-vacuity: a random single mutation of a clean stream is
    /// always detected, and the expected violation class is among
    /// what the auditor reports. (`DeleteFault` is exercised against
    /// recorded faulted runs elsewhere — a fault-free stream has no
    /// fault events to delete.)
    #[test]
    fn random_mutation_is_detected_and_classified(seed in any::<u64>()) {
        let mut rng = TestRng::from_name(&format!("mutate-{seed}"));
        let (events, makespan) = arb_stream(&mut rng);
        let spec = AuditSpec::plain().with_makespan(makespan);
        let classes = [
            MutationClass::DropWake,
            MutationClass::SwapService,
            MutationClass::CrossSpanClose,
            MutationClass::RetagEpoch,
        ];
        let class = classes[rng.gen_range_u64(0, classes.len() as u64) as usize];
        let mut corrupted = events.clone();
        let what = mutate(&mut corrupted, class, rng.next_u64());
        prop_assert!(what.is_some(), "{class}: generator must provide a site");
        let rep = audit(&corrupted, &spec);
        prop_assert!(!rep.ok(), "{class} ({:?}) went undetected", what);
        prop_assert!(
            rep.classes().contains(&class.expected()),
            "{class} ({:?}): expected {:?}, saw {:?}",
            what,
            class.expected(),
            rep.classes()
        );
    }

    /// The versioned envelope is lossless: scenarios → JSON text →
    /// parsed scenarios is the identity.
    #[test]
    fn bench_audit_artifact_round_trips(seed in any::<u64>()) {
        let mut rng = TestRng::from_name(&format!("artifact-{seed}"));
        let n = rng.gen_range_u64(0, 5);
        let names = ["oc_k47", "oc_k7", "binomial", "ring", "scatter"];
        let scenarios: Vec<AuditScenario> = (0..n)
            .map(|i| {
                let m = rng.gen_range_u64(0, 6);
                AuditScenario {
                    id: format!("{}_{i}", names[i as usize % names.len()]),
                    label: format!("scenario {i} (48c)"),
                    cores: rng.gen_range_u64(1, 49),
                    events: rng.next_u64() >> 16,
                    edges: rng.next_u64() >> 16,
                    checks: rng.next_u64() >> 16,
                    violations: rng.gen_range_u64(0, 3),
                    classes: (0..rng.gen_range_u64(0, 3))
                        .map(|c| format!("class-{c}"))
                        .collect(),
                    mutations: (0..m)
                        .map(|j| MutationTrial {
                            mutation: format!("mutation-{j}"),
                            seed: rng.next_u64(),
                            detected: rng.gen_range_u64(0, 2) == 1,
                            classified: rng.gen_range_u64(0, 2) == 1,
                        })
                        .collect(),
                }
            })
            .collect();
        let text = audit_artifact(&scenarios).render();
        let doc = Json::parse(&text);
        prop_assert!(doc.is_ok(), "rendered artifact must reparse: {:?}", doc);
        let back = parse_audit_artifact(&doc.unwrap());
        prop_assert!(back.is_ok(), "envelope must validate: {:?}", back);
        prop_assert_eq!(back.unwrap(), scenarios);
    }
}
