//! Property tests of the `BENCH_journeys.json` schema: any document in
//! the schema's shape parses into journey books, re-serializes through
//! [`journeys_artifact`], and parses back to *equal* books — the
//! contract the observatory relies on when `--journeys` artifacts are
//! byte-diffed across `--jobs` counts and read back by tooling.

use proptest::prelude::*;
use proptest::TestRng;
use scc_obs::{journeys_artifact, parse_journeys_artifact, Json, LegKind, ARTIFACT_VERSION};

/// One random journey object in the schema's shape. Leg dwells and the
/// window are drawn independently — the schema layer does not enforce
/// the conservation law (the reconstruction layer guarantees it), so
/// the round-trip must hold for arbitrary integer dwells.
fn arb_journey(rng: &mut TestRng) -> Json {
    let begin = rng.gen_range_u64(0, 1 << 40);
    let mut legs = Json::obj();
    for k in LegKind::ALL {
        legs = legs.set(k.name(), Json::Int(rng.gen_range_u64(0, 1 << 40) as i64));
    }
    Json::obj()
        .set("core", Json::Int(rng.gen_range_u64(0, 48) as i64))
        .set("epoch", Json::Int(rng.gen_range_u64(0, 1 << 20) as i64))
        .set("begin_ps", Json::Int(begin as i64))
        .set("end_ps", Json::Int((begin + rng.gen_range_u64(0, 1 << 40)) as i64))
        .set("transfers", Json::Int(rng.gen_range_u64(0, 1 << 16) as i64))
        .set("lines", Json::Int(rng.gen_range_u64(0, 1 << 20) as i64))
        .set("legs", legs)
}

fn arb_artifact(rng: &mut TestRng) -> Json {
    let scenarios = (0..rng.gen_range_u64(0, 4))
        .map(|i| {
            let journeys = (0..rng.gen_range_u64(0, 6)).map(|_| arb_journey(rng)).collect();
            Json::obj()
                .set("id", Json::Str(format!("scenario-{i}-{}", rng.gen_range_u64(0, 1000))))
                .set("makespan_ps", Json::Int(rng.gen_range_u64(0, 1 << 50) as i64))
                .set("journeys", Json::Arr(journeys))
        })
        .collect();
    Json::obj()
        .set("version", Json::Int(ARTIFACT_VERSION))
        .set("bench", Json::Str("journeys".into()))
        .set("scenarios", Json::Arr(scenarios))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// parse → re-serialize → parse is lossless for any schema-shaped
    /// document, across a full render/parse cycle of the JSON layer.
    #[test]
    fn journeys_artifact_round_trips(seed in any::<u64>()) {
        let mut rng = TestRng::from_name(&format!("journeys-{seed}"));
        let doc = arb_artifact(&mut rng);
        let books = match parse_journeys_artifact(&doc) {
            Ok(b) => b,
            Err(e) => return Err(TestCaseError::fail(format!("parse failed: {e}"))),
        };
        let rendered = journeys_artifact(&books).render();
        let reparsed = Json::parse(&rendered)
            .map_err(|e| TestCaseError::fail(format!("invalid render: {e}")))?;
        let back = parse_journeys_artifact(&reparsed)
            .map_err(|e| TestCaseError::fail(format!("re-parse failed: {e}")))?;
        prop_assert_eq!(back, books);
    }

    /// A wrong or missing version stamp is always rejected, whatever
    /// the rest of the document looks like.
    #[test]
    fn version_gate_rejects_foreign_documents(seed in any::<u64>()) {
        let mut rng = TestRng::from_name(&format!("vgate-{seed}"));
        let doc = arb_artifact(&mut rng);
        let stale = rng.gen_range_u64(0, 1 << 30) as i64;
        if stale != ARTIFACT_VERSION {
            let bad = doc.clone().set("version", Json::Int(stale));
            prop_assert!(parse_journeys_artifact(&bad).is_err());
        }
        let missing = doc.set("version", Json::Null);
        prop_assert!(parse_journeys_artifact(&missing).is_err());
    }

    /// Dropping any single leg key makes the strict parser fail — the
    /// schema has no optional dwells, so a truncated document can never
    /// masquerade as a complete one.
    #[test]
    fn missing_leg_keys_are_rejected(seed in any::<u64>()) {
        let mut rng = TestRng::from_name(&format!("legs-{seed}"));
        let dropped = LegKind::ALL[rng.gen_range_u64(0, LegKind::COUNT as u64) as usize];
        let mut legs = Json::obj();
        for k in LegKind::ALL {
            if k != dropped {
                legs = legs.set(k.name(), Json::Int(1));
            }
        }
        let journey = arb_journey(&mut rng).set("legs", legs);
        let doc = Json::obj()
            .set("version", Json::Int(ARTIFACT_VERSION))
            .set("bench", Json::Str("journeys".into()))
            .set("scenarios", Json::Arr(vec![Json::obj()
                .set("id", Json::Str("s".into()))
                .set("makespan_ps", Json::Int(0))
                .set("journeys", Json::Arr(vec![journey]))]));
        let err = parse_journeys_artifact(&doc).unwrap_err();
        prop_assert!(err.contains(dropped.name()), "error `{}` must name `{}`", err, dropped.name());
    }
}
