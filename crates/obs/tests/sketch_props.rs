//! Property tests of the streaming-telemetry layer: the quantile
//! sketch's merge algebra (merging is exactly concatenation, whatever
//! the split or order), its quantile error bound against the exact
//! nearest-rank value, its JSON round-trip, and the flight-recorder
//! ring's window equivalence (a bounded ring retains exactly the tail
//! of the stream it saw). These are the contracts the soak workload's
//! chunked, parallel accumulation rests on.

use proptest::prelude::*;
use proptest::TestRng;
use scc_hal::{CoreId, Time};
use scc_obs::{
    EventLog, FlightRecorder, LatencyHistogram, ObsEvent, QuantileSketch, Recorder, SKETCH_BUCKETS,
};

/// Latencies spanning every bucket regime: zero, single-digit ps,
/// realistic µs-scale values, and near-`u64::MAX` extremes.
fn arb_latency(rng: &mut TestRng) -> u64 {
    match rng.gen_range_u64(0, 4) {
        0 => rng.gen_range_u64(0, 4),
        1 => rng.gen_range_u64(0, 1 << 12),
        2 => rng.gen_range_u64(1_000_000, 100_000_000_000),
        _ => u64::MAX - rng.gen_range_u64(0, 1 << 40),
    }
}

fn arb_samples(rng: &mut TestRng, max_len: u64) -> Vec<u64> {
    let n = rng.gen_range_u64(0, max_len + 1);
    (0..n).map(|_| arb_latency(rng)).collect()
}

fn sketch_of(samples: &[u64]) -> QuantileSketch {
    let mut s = QuantileSketch::new();
    for &v in samples {
        s.record_ps(v);
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// Merging partial sketches equals sketching the concatenation —
    /// for ANY split of the stream. This is what lets the soak build
    /// per-chunk sketches on worker threads and fold them in
    /// declaration order with no loss.
    #[test]
    fn merge_is_exactly_concatenation(seed in any::<u64>()) {
        let mut rng = TestRng::from_name(&format!("merge-{seed}"));
        let samples = arb_samples(&mut rng, 200);
        let whole = sketch_of(&samples);
        let cut = rng.gen_range_u64(0, samples.len() as u64 + 1) as usize;
        let mut left = sketch_of(&samples[..cut]);
        left.merge(&sketch_of(&samples[cut..]));
        prop_assert_eq!(&left, &whole);
        prop_assert_eq!(left.count(), samples.len() as u64);
    }

    /// Merge is associative and commutative (it is per-bucket addition,
    /// so any parallel fold tree produces the same sketch).
    #[test]
    fn merge_is_associative_and_commutative(seed in any::<u64>()) {
        let mut rng = TestRng::from_name(&format!("assoc-{seed}"));
        let (a, b, c) = (
            sketch_of(&arb_samples(&mut rng, 60)),
            sketch_of(&arb_samples(&mut rng, 60)),
            sketch_of(&arb_samples(&mut rng, 60)),
        );
        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(&ab_c, &a_bc);
        let mut ba = b.clone();
        ba.merge(&a);
        let mut ab = a.clone();
        ab.merge(&b);
        prop_assert_eq!(&ab, &ba);
    }

    /// The documented error bound against the exact nearest-rank
    /// quantile: `exact <= reported < 2 * exact` (equal when exact is
    /// 0 or a power of two minus one — the bucket's upper edge).
    #[test]
    fn quantiles_stay_within_the_bucket_bound(seed in any::<u64>()) {
        let mut rng = TestRng::from_name(&format!("bound-{seed}"));
        let mut samples = arb_samples(&mut rng, 150);
        if samples.is_empty() {
            samples.push(arb_latency(&mut rng));
        }
        let sketch = sketch_of(&samples);
        let mut hist = LatencyHistogram::new();
        for &v in &samples {
            hist.record(Time::from_ps(v));
        }
        for q in [0.5, 0.9, 0.99, 0.999, 1.0] {
            let exact = hist.quantile(q).unwrap().as_ps();
            let got = sketch.quantile_ps(q).unwrap();
            prop_assert!(got >= exact, "q={q}: reported {got} < exact {exact}");
            if exact > 0 {
                // got < 2 * exact, written overflow-safe (exact can be
                // u64::MAX): got - exact < exact.
                prop_assert!(got - exact < exact, "q={q}: reported {got} >= 2x exact {exact}");
            } else {
                prop_assert_eq!(got, 0);
            }
        }
    }

    /// Sketches survive their JSON encoding exactly — bucket counts,
    /// total, and therefore every quantile.
    #[test]
    fn json_round_trips(seed in any::<u64>()) {
        let mut rng = TestRng::from_name(&format!("json-{seed}"));
        let sketch = sketch_of(&arb_samples(&mut rng, 120));
        let back = QuantileSketch::from_json(&sketch.to_json()).unwrap();
        prop_assert_eq!(back, sketch);
    }

    /// The flight ring's window is byte-identical to the tail of a
    /// full recording of the same stream, for any capacity — the
    /// equivalence the simulator-level guard pins, here for arbitrary
    /// event streams and capacities (including 0 and > stream length).
    #[test]
    fn ring_window_equals_full_log_tail(seed in any::<u64>()) {
        let mut rng = TestRng::from_name(&format!("ring-{seed}"));
        let n = rng.gen_range_u64(0, 300);
        let events: Vec<ObsEvent> = (0..n)
            .map(|i| ObsEvent::Finish {
                core: CoreId(rng.gen_range_u64(0, 48) as u8),
                at: Time::from_ps(rng.gen_range_u64(0, 1 << 40) + i),
            })
            .collect();
        let capacity = rng.gen_range_u64(0, n + 50) as usize;

        let mut full = EventLog::default();
        let mut ring = FlightRecorder::new(capacity);
        for ev in &events {
            full.record(*ev);
            ring.record(*ev);
        }
        let all = full.drain();
        let window = ring.drain();
        let tail = &all[all.len().saturating_sub(capacity)..];
        prop_assert_eq!(window.as_slice(), tail);
        prop_assert_eq!(ring.seen(), n);
    }
}

/// Pinned edges the sampler could miss: the extreme buckets, the
/// exact-power-of-two boundaries, and saturation of the top bucket.
#[test]
fn pinned_bucket_edges() {
    let mut s = QuantileSketch::new();
    for v in [0u64, 1, 2, 3, 4, u64::MAX, u64::MAX - 1, 1 << 63] {
        s.record_ps(v);
    }
    assert_eq!(s.count(), 8);
    // Everything at or above 2^63 lands in the last bucket, whose
    // upper edge is u64::MAX.
    assert_eq!(s.quantile_ps(1.0), Some(u64::MAX));
    // Zero occupies its own exact bucket.
    assert_eq!(s.quantile_ps(0.01), Some(0));
    // Powers of two sit at the *lower* edge of their bucket: bucket
    // upper of 4 is 7.
    let mut p = QuantileSketch::new();
    p.record_ps(4);
    assert_eq!(p.quantile_ps(0.5), Some(7));
    assert_eq!(SKETCH_BUCKETS, 65);
}
