//! Property tests of the in-house JSON layer: every document the
//! builder can produce must validate, parse back, and reach a stable
//! fixpoint under render→parse→render. This is the contract the
//! conformance harness relies on when it reads committed
//! `BENCH_figures.json` baselines back for the drift gate.

use proptest::prelude::*;
use proptest::TestRng;
use scc_obs::{validate_json, Json};

/// Characters chosen to stress the escaper: every two-character escape,
/// raw control characters, multi-byte UTF-8, and plain ASCII.
const CHAR_POOL: &[char] = &[
    'a', 'Z', '0', ' ', '"', '\\', '/', '\n', '\r', '\t', '\u{8}', '\u{c}', '\u{1}', '\u{1f}', 'é',
    'π', '😀', '中', '\u{7f}', '\u{e000}',
];

fn arb_string(rng: &mut TestRng, max_len: u64) -> String {
    let n = rng.gen_range_u64(0, max_len + 1);
    (0..n).map(|_| CHAR_POOL[rng.gen_range_u64(0, CHAR_POOL.len() as u64) as usize]).collect()
}

/// A random JSON value of bounded depth. Scalars mix wide-range floats
/// (with `-0.0` normalized away: `-0` re-parses as integer `0`, the one
/// spot where byte-stability would not hold), full-range ints, and
/// escape-heavy strings.
fn arb_json(rng: &mut TestRng, depth: u32) -> Json {
    let variants = if depth == 0 { 5 } else { 7 };
    match rng.gen_range_u64(0, variants) {
        0 => Json::Null,
        1 => Json::Bool(rng.next_u64() & 1 == 1),
        2 => {
            let n = rng.gen_f64(-1e18, 1e18);
            Json::Num(if n == 0.0 { 0.0 } else { n })
        }
        3 => Json::Int(rng.next_u64() as i64),
        4 => Json::Str(arb_string(rng, 12)),
        5 => {
            let n = rng.gen_range_u64(0, 5);
            Json::Arr((0..n).map(|_| arb_json(rng, depth - 1)).collect())
        }
        _ => {
            let n = rng.gen_range_u64(0, 5);
            let mut obj = Json::obj();
            for i in 0..n {
                // Distinct keys: the builder's `set` overwrites dupes,
                // which would make the comparison trivially weaker.
                let key = format!("{}#{i}", arb_string(rng, 6));
                obj = obj.set(&key, arb_json(rng, depth - 1));
            }
            obj
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// Build → render → validate → parse → render is byte-stable, and a
    /// second parse is a fixpoint. (The first parse may normalize
    /// integral floats to ints — `Num(5.0)` renders as `5` — so value
    /// equality is asserted from the first parse onwards, byte equality
    /// from the first render onwards.)
    #[test]
    fn documents_round_trip(seed in any::<u64>()) {
        let mut rng = TestRng::from_name(&format!("doc-{seed}"));
        let doc = arb_json(&mut rng, 3);
        let text = doc.render();
        prop_assert!(validate_json(&text).is_ok(), "invalid render: {text}");
        let parsed = match Json::parse(&text) {
            Ok(v) => v,
            Err(e) => return Err(TestCaseError::fail(format!("parse failed: {e} on {text}"))),
        };
        prop_assert_eq!(&parsed.render(), &text);
        prop_assert_eq!(Json::parse(&parsed.render()).unwrap(), parsed);
    }

    /// Strings survive exactly, whatever mix of escapes and multi-byte
    /// characters they contain — value equality, not just render
    /// stability.
    #[test]
    fn strings_round_trip_exactly(seed in any::<u64>()) {
        let mut rng = TestRng::from_name(&format!("str-{seed}"));
        let s = arb_string(&mut rng, 40);
        let rendered = Json::Str(s.clone()).render();
        prop_assert_eq!(Json::parse(&rendered).unwrap(), Json::Str(s));
    }

    /// Finite floats round-trip to bit-identical values (Rust renders
    /// shortest-round-trip decimals; integral ones come back as ints
    /// with the same numeric value).
    #[test]
    fn floats_round_trip(mantissa in -1.0f64..1.0, exp in 0u32..60) {
        let n = mantissa * 2f64.powi(exp as i32);
        let n = if n == 0.0 { 0.0 } else { n }; // drop -0.0
        let back = Json::parse(&Json::Num(n).render()).unwrap();
        prop_assert_eq!(back.as_f64().unwrap(), n);
    }

    /// Ints of any magnitude survive exactly.
    #[test]
    fn ints_round_trip(i in any::<i64>()) {
        prop_assert_eq!(Json::parse(&Json::Int(i).render()).unwrap(), Json::Int(i));
    }

    /// Malformed `\u` escapes — wrong length, non-hex bytes, multi-byte
    /// characters where a digit should be, truncation mid-escape — are
    /// parse *errors*, never panics. (Regression: the hex decoder used
    /// to `to_digit(16).unwrap()` per nibble.)
    #[test]
    fn malformed_unicode_escapes_error_not_panic(seed in any::<u64>()) {
        let mut rng = TestRng::from_name(&format!("uesc-{seed}"));
        const JUNK: &[&str] = &["Z", "G", "!", " ", "\\", "\"", "é", "😀", "-", "x"];
        // 1-4 hex digits, then junk, optionally truncated.
        let good = rng.gen_range_u64(0, 4);
        let mut s = String::from("\"\\u");
        for _ in 0..good {
            s.push(char::from_digit(rng.gen_range_u64(0, 16) as u32, 16).unwrap());
        }
        s.push_str(JUNK[rng.gen_range_u64(0, JUNK.len() as u64) as usize]);
        if rng.next_u64() & 1 == 1 {
            s.push('"');
        }
        prop_assert!(Json::parse(&s).is_err(), "accepted malformed escape: {s}");
    }
}

/// The deliberate edge cases, pinned (not sampled): extreme and
/// non-finite floats, extreme ints, deep nesting.
#[test]
fn pinned_edge_cases() {
    for n in [f64::MAX, f64::MIN, f64::MIN_POSITIVE, 5e-324, 0.1 + 0.2, 1e308, -1e-308] {
        let back = Json::parse(&Json::Num(n).render()).unwrap();
        assert_eq!(back.as_f64().unwrap(), n, "{n} did not survive");
    }
    // Non-finite numbers render as null by contract.
    for n in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        assert_eq!(Json::parse(&Json::Num(n).render()).unwrap(), Json::Null);
    }
    for i in [i64::MIN, i64::MAX, 0, -1] {
        assert_eq!(Json::parse(&Json::Int(i).render()).unwrap(), Json::Int(i));
    }
    // 64 levels of nesting parse without issue.
    let mut deep = Json::Int(1);
    for _ in 0..64 {
        deep = Json::Arr(vec![deep]);
    }
    let text = deep.render();
    assert_eq!(Json::parse(&text).unwrap().render(), text);
}
