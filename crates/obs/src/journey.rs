//! Message journeys: per-destination delivery timelines.
//!
//! A *journey* is one core's path through one collective invocation:
//! it opens when the core enters the collective
//! ([`ObsEvent::DeliveryBegin`], recorded by
//! `scc_hal::msg::delivering`) and closes when the core holds the full
//! payload ([`ObsEvent::DeliveryEnd`]). Between those instants every
//! picosecond of the core's time is attributed to exactly one
//! [`LegKind`] — injection service, per-hop router dwell, MPB-port
//! service, flag-notify waiting, remote-read draining, queueing, or
//! idle — by a boundary sweep over the recorded event stream. The
//! attribution is *exact*: per journey, the leg dwells sum to the
//! delivery latency in integer picoseconds, and the last delivery
//! close of a broadcast is its makespan (both guarded by tests in
//! `tests/observability.rs`).
//!
//! The sweep classifies each elementary time slice by precedence:
//! resource service beats resource queueing beats op issue beats
//! parked-on-flag beats an open wait-phase span beats idle. Overlaps
//! (a pipelined put can hold a port and a router at once) therefore
//! never double-count.

use crate::event::{ObsEvent, OpKind, ResourceId};
use crate::report::Json;
use scc_hal::{CoreId, Phase, Time};
use std::collections::BTreeMap;

/// Where one slice of a journey's time went.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LegKind {
    /// Op service on the core: issuing puts/gets/flag writes.
    Inject,
    /// Queueing for an MPB port.
    PortWait,
    /// MPB-port service.
    PortService,
    /// Queueing at a mesh router.
    RouterWait,
    /// Per-hop router dwell (link service).
    RouterService,
    /// Memory-controller queueing and service.
    Memory,
    /// Waiting to be notified: polls, parked-on-flag intervals, and
    /// open notify/buffer/barrier wait phases.
    FlagNotify,
    /// Waiting for consumers to read: ack/drain phases.
    Drain,
    /// Unattributed time inside the delivery window.
    Idle,
}

impl LegKind {
    pub const COUNT: usize = 9;

    /// Every leg kind, in report order.
    pub const ALL: [LegKind; LegKind::COUNT] = [
        LegKind::Inject,
        LegKind::PortWait,
        LegKind::PortService,
        LegKind::RouterWait,
        LegKind::RouterService,
        LegKind::Memory,
        LegKind::FlagNotify,
        LegKind::Drain,
        LegKind::Idle,
    ];

    pub const fn name(self) -> &'static str {
        match self {
            LegKind::Inject => "inject",
            LegKind::PortWait => "port-wait",
            LegKind::PortService => "port-service",
            LegKind::RouterWait => "router-wait",
            LegKind::RouterService => "router-service",
            LegKind::Memory => "memory",
            LegKind::FlagNotify => "flag-notify",
            LegKind::Drain => "drain",
            LegKind::Idle => "idle",
        }
    }

    pub fn from_name(name: &str) -> Option<LegKind> {
        LegKind::ALL.into_iter().find(|k| k.name() == name)
    }

    pub const fn index(self) -> usize {
        match self {
            LegKind::Inject => 0,
            LegKind::PortWait => 1,
            LegKind::PortService => 2,
            LegKind::RouterWait => 3,
            LegKind::RouterService => 4,
            LegKind::Memory => 5,
            LegKind::FlagNotify => 6,
            LegKind::Drain => 7,
            LegKind::Idle => 8,
        }
    }
}

/// One core's delivery timeline through one collective invocation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Journey {
    pub core: CoreId,
    pub epoch: u32,
    /// The core entered the collective.
    pub begin: Time,
    /// The core holds the full payload.
    pub end: Time,
    /// Tagged transfers addressed to this core within the window.
    pub transfers: usize,
    /// Cache lines those transfers carried.
    pub lines: usize,
    legs: [Time; LegKind::COUNT],
}

impl Journey {
    /// Delivery latency: window close minus window open.
    pub fn latency(&self) -> Time {
        self.end - self.begin
    }

    /// Exact dwell in one leg kind (integer picoseconds).
    pub fn leg(&self, k: LegKind) -> Time {
        self.legs[k.index()]
    }

    /// Sum of all leg dwells — always equals [`Journey::latency`].
    pub fn legs_total(&self) -> Time {
        self.legs.iter().copied().sum()
    }
}

/// All journeys of a recorded run.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct JourneyBook {
    /// Journeys ordered by (window close, core) of reconstruction —
    /// i.e. the order the delivery windows closed in the stream.
    pub journeys: Vec<Journey>,
    /// The run's makespan: the latest `Finish` (falling back to the
    /// latest event when the stream has no `Finish`).
    pub makespan: Time,
}

/// Per-core raw material for the classification sweep.
#[derive(Default)]
struct CoreLanes {
    /// `(start, end, kind)` of every timed op.
    ops: Vec<(u64, u64, OpKind)>,
    /// `(arrival, start, end, resource)` of every booking.
    waits: Vec<(u64, u64, u64, ResourceId)>,
    /// `park .. wake` intervals; an unwoken park extends to `u64::MAX`
    /// and is clipped by the window.
    parks: Vec<(u64, u64)>,
    /// `(start, end, phase, depth)` of closed wait-phase spans.
    spans: Vec<(u64, u64, Phase, usize)>,
    /// Open span stack: `(phase, start, depth)`.
    stack: Vec<(Phase, u64)>,
}

/// Wait-ish phases map to a leg; payload phases don't claim time.
fn span_leg(phase: Phase) -> Option<LegKind> {
    match phase {
        Phase::NotifyWait | Phase::BufferWait | Phase::Barrier => Some(LegKind::FlagNotify),
        Phase::Ack | Phase::Drain => Some(LegKind::Drain),
        _ => None,
    }
}

impl JourneyBook {
    /// Reconstruct every journey from a recorded event stream.
    pub fn from_events(events: &[ObsEvent]) -> JourneyBook {
        // Pass 1: delivery windows, per-core lanes, makespan.
        let mut open: BTreeMap<u8, (u32, Time)> = BTreeMap::new();
        let mut windows: Vec<(CoreId, u32, Time, Time)> = Vec::new();
        let mut lanes: BTreeMap<u8, CoreLanes> = BTreeMap::new();
        let mut finish = Time::ZERO;
        let mut latest = Time::ZERO;
        let mut any_finish = false;
        for ev in events {
            latest = latest.max(ev.at());
            match *ev {
                ObsEvent::DeliveryBegin { core, epoch, at } => {
                    open.insert(core.0, (epoch, at));
                }
                ObsEvent::DeliveryEnd { core, epoch, at } => {
                    if let Some((e, b)) = open.remove(&core.0) {
                        if e == epoch {
                            windows.push((core, epoch, b, at));
                        }
                    }
                }
                ObsEvent::Op { core, kind, start, end, .. } => {
                    lanes.entry(core.0).or_default().ops.push((start.as_ps(), end.as_ps(), kind));
                }
                ObsEvent::Wait { core, resource, arrival, start, end, .. } => {
                    lanes.entry(core.0).or_default().waits.push((
                        arrival.as_ps(),
                        start.as_ps(),
                        end.as_ps(),
                        resource,
                    ));
                }
                ObsEvent::Park { core, at, .. } => {
                    lanes.entry(core.0).or_default().parks.push((at.as_ps(), u64::MAX));
                }
                ObsEvent::Wake { core, at, .. } => {
                    let lane = lanes.entry(core.0).or_default();
                    if let Some(p) = lane.parks.last_mut() {
                        if p.1 == u64::MAX {
                            p.1 = at.as_ps();
                        }
                    }
                }
                ObsEvent::SpanBegin { core, span, at } => {
                    lanes.entry(core.0).or_default().stack.push((span.phase, at.as_ps()));
                }
                ObsEvent::SpanEnd { core, at, .. } => {
                    let lane = lanes.entry(core.0).or_default();
                    if let Some((phase, start)) = lane.stack.pop() {
                        let depth = lane.stack.len();
                        lane.spans.push((start, at.as_ps(), phase, depth));
                    }
                }
                ObsEvent::Finish { at, .. } => {
                    finish = finish.max(at);
                    any_finish = true;
                }
                _ => {}
            }
        }
        let makespan = if any_finish { finish } else { latest };

        // Pass 2: classify each window and count its tagged transfers.
        let empty = CoreLanes::default();
        let mut journeys: Vec<Journey> = windows
            .iter()
            .map(|&(core, epoch, begin, end)| {
                let lane = lanes.get(&core.0).unwrap_or(&empty);
                Journey {
                    core,
                    epoch,
                    begin,
                    end,
                    transfers: 0,
                    lines: 0,
                    legs: classify(lane, begin.as_ps(), end.as_ps()),
                }
            })
            .collect();
        for ev in events {
            if let ObsEvent::Op { lines, end, msg: Some(m), .. } = *ev {
                if let Some(j) = journeys.iter_mut().find(|j| {
                    j.core == m.dest && j.epoch == m.epoch && j.begin <= end && end <= j.end
                }) {
                    j.transfers += 1;
                    j.lines += lines;
                }
            }
        }
        JourneyBook { journeys, makespan }
    }

    /// Serialize (one scenario's worth — the versioned artifact
    /// envelope around several books is [`journeys_artifact`]).
    pub fn to_json(&self) -> Json {
        let journeys = self
            .journeys
            .iter()
            .map(|j| {
                let mut legs = Json::obj();
                for k in LegKind::ALL {
                    legs = legs.set(k.name(), Json::Int(j.leg(k).as_ps() as i64));
                }
                Json::obj()
                    .set("core", Json::Int(i64::from(j.core.0)))
                    .set("epoch", Json::Int(i64::from(j.epoch)))
                    .set("begin_ps", Json::Int(j.begin.as_ps() as i64))
                    .set("end_ps", Json::Int(j.end.as_ps() as i64))
                    .set("transfers", Json::Int(j.transfers as i64))
                    .set("lines", Json::Int(j.lines as i64))
                    .set("legs", legs)
            })
            .collect();
        Json::obj()
            .set("makespan_ps", Json::Int(self.makespan.as_ps() as i64))
            .set("journeys", Json::Arr(journeys))
    }

    /// Strict inverse of [`JourneyBook::to_json`]. Every integer field
    /// is range-checked — a negative count or timestamp (hand-edited
    /// or corrupted artifact) is a typed parse error, not a silently
    /// wrapped huge value.
    pub fn from_json(v: &Json) -> Result<JourneyBook, String> {
        let int = |v: &Json, key: &str| -> Result<i64, String> {
            v.get(key).and_then(Json::as_i64).ok_or_else(|| format!("missing integer key '{key}'"))
        };
        let ps = |v: &Json, key: &str| -> Result<Time, String> {
            let raw = int(v, key)?;
            let ps = u64::try_from(raw)
                .map_err(|_| format!("key '{key}' must be a non-negative time, got {raw}"))?;
            Ok(Time::from_ps(ps))
        };
        let count = |v: &Json, key: &str| -> Result<usize, String> {
            let raw = int(v, key)?;
            usize::try_from(raw)
                .map_err(|_| format!("key '{key}' must be a non-negative count, got {raw}"))
        };
        let makespan = ps(v, "makespan_ps")?;
        let items = v
            .get("journeys")
            .and_then(Json::as_arr)
            .ok_or_else(|| "missing 'journeys' array".to_string())?;
        let mut journeys = Vec::with_capacity(items.len());
        for item in items {
            let legs_obj = item.get("legs").ok_or_else(|| "journey missing 'legs'".to_string())?;
            let mut legs = [Time::ZERO; LegKind::COUNT];
            for k in LegKind::ALL {
                legs[k.index()] = ps(legs_obj, k.name())?;
            }
            journeys.push(Journey {
                core: CoreId(
                    u8::try_from(int(item, "core")?)
                        .map_err(|_| "key 'core' out of range".to_string())?,
                ),
                epoch: u32::try_from(int(item, "epoch")?)
                    .map_err(|_| "key 'epoch' out of range".to_string())?,
                begin: ps(item, "begin_ps")?,
                end: ps(item, "end_ps")?,
                transfers: count(item, "transfers")?,
                lines: count(item, "lines")?,
                legs,
            });
        }
        Ok(JourneyBook { journeys, makespan })
    }
}

/// The boundary sweep: partition `[begin, end)` into elementary slices
/// at every interval edge and give each slice to the
/// highest-precedence covering interval. Exactness is structural — the
/// slices tile the window, so the per-leg sums cannot drift from
/// `end - begin`.
fn classify(lane: &CoreLanes, begin: u64, end: u64) -> [Time; LegKind::COUNT] {
    let mut legs = [Time::ZERO; LegKind::COUNT];
    if end <= begin {
        return legs;
    }
    let clip = |s: u64, e: u64| -> Option<(u64, u64)> {
        let (s, e) = (s.max(begin), e.min(end));
        (s < e).then_some((s, e))
    };
    let mut bounds: Vec<u64> = vec![begin, end];
    let mut edge = |s: u64, e: u64| {
        if let Some((s, e)) = clip(s, e) {
            bounds.push(s);
            bounds.push(e);
        }
    };
    for &(a, s, e, _) in &lane.waits {
        edge(a, s);
        edge(s, e);
    }
    for &(s, e, _) in &lane.ops {
        edge(s, e);
    }
    for &(s, e) in &lane.parks {
        edge(s, e);
    }
    for &(s, e, phase, _) in &lane.spans {
        if span_leg(phase).is_some() {
            edge(s, e);
        }
    }
    bounds.sort_unstable();
    bounds.dedup();

    let n = bounds.len() - 1;
    let mut rank = vec![u8::MAX; n];
    let mut kind = vec![LegKind::Idle; n];
    // Span slices resolve by innermost-open wins, tracked separately.
    let mut span_depth = vec![-1i64; n];
    let mut span_kind = vec![LegKind::Idle; n];
    {
        let mut paint = |s: u64, e: u64, r: u8, k: LegKind| {
            if let Some((s, e)) = clip(s, e) {
                let lo = bounds.partition_point(|&x| x < s);
                let hi = bounds.partition_point(|&x| x < e);
                for j in lo..hi {
                    if r < rank[j] {
                        rank[j] = r;
                        kind[j] = k;
                    }
                }
            }
        };
        for &(a, s, e, res) in &lane.waits {
            let (service, queue) = match res {
                ResourceId::Port(_) => (LegKind::PortService, LegKind::PortWait),
                ResourceId::Router(_) => (LegKind::RouterService, LegKind::RouterWait),
                ResourceId::Mc(_) => (LegKind::Memory, LegKind::Memory),
            };
            paint(s, e, 0, service);
            paint(a, s, 1, queue);
        }
        for &(s, e, k) in &lane.ops {
            let leg = if k == OpKind::FlagRead { LegKind::FlagNotify } else { LegKind::Inject };
            paint(s, e, 2, leg);
        }
        for &(s, e) in &lane.parks {
            paint(s, e, 3, LegKind::FlagNotify);
        }
    }
    for &(s, e, phase, depth) in &lane.spans {
        let Some(k) = span_leg(phase) else { continue };
        if let Some((s, e)) = clip(s, e) {
            let lo = bounds.partition_point(|&x| x < s);
            let hi = bounds.partition_point(|&x| x < e);
            for j in lo..hi {
                if depth as i64 > span_depth[j] {
                    span_depth[j] = depth as i64;
                    span_kind[j] = k;
                }
            }
        }
    }
    for j in 0..n {
        let k = if rank[j] != u8::MAX {
            kind[j]
        } else if span_depth[j] >= 0 {
            span_kind[j]
        } else {
            LegKind::Idle
        };
        legs[k.index()] += Time::from_ps(bounds[j + 1] - bounds[j]);
    }
    legs
}

/// The versioned `BENCH_journeys.json` envelope: one entry per
/// scenario, validated by `scc_obs::validate_artifact_version`.
pub fn journeys_artifact(scenarios: &[(String, JourneyBook)]) -> Json {
    let arr = scenarios
        .iter()
        .map(|(id, book)| book.to_json().set("id", Json::Str(id.clone())))
        .collect();
    crate::artifact::scenario_envelope("journeys", arr)
}

/// Strict inverse of [`journeys_artifact`] (checks the version first).
pub fn parse_journeys_artifact(doc: &Json) -> Result<Vec<(String, JourneyBook)>, String> {
    crate::artifact::open_scenarios(doc)?
        .iter()
        .map(|v| {
            let id = v
                .get("id")
                .and_then(Json::as_str)
                .ok_or_else(|| "scenario missing 'id'".to_string())?;
            Ok((id.to_string(), JourneyBook::from_json(v)?))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use scc_hal::{MsgId, Span};

    fn ps(v: u64) -> Time {
        Time::from_ps(v)
    }

    fn window(core: u8, epoch: u32, b: u64, e: u64) -> [ObsEvent; 2] {
        [
            ObsEvent::DeliveryBegin { core: CoreId(core), epoch, at: ps(b) },
            ObsEvent::DeliveryEnd { core: CoreId(core), epoch, at: ps(e) },
        ]
    }

    #[test]
    fn leg_names_round_trip_and_are_unique() {
        for k in LegKind::ALL {
            assert_eq!(LegKind::from_name(k.name()), Some(k));
            assert_eq!(LegKind::ALL[k.index()], k);
        }
        let mut names: Vec<&str> = LegKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), LegKind::COUNT);
    }

    #[test]
    fn sweep_partitions_the_window_exactly() {
        let [b, e] = window(0, 0, 100, 1000);
        let events = vec![
            b,
            // An op [100,400) with a router booking [150,300) whose
            // queue wait is [120,150); port service [300,350).
            ObsEvent::Op {
                core: CoreId(0),
                kind: OpKind::PutFromMem,
                lines: 4,
                start: ps(100),
                end: ps(400),
                msg: Some(MsgId::new(0, CoreId(0), CoreId(0), 0)),
            },
            ObsEvent::Wait {
                core: CoreId(0),
                resource: ResourceId::Router(3),
                arrival: ps(120),
                start: ps(150),
                end: ps(300),
                link: None,
            },
            ObsEvent::Wait {
                core: CoreId(0),
                resource: ResourceId::Port(1),
                arrival: ps(300),
                start: ps(300),
                end: ps(350),
                link: None,
            },
            // A poll [500,600), then parked [600,800).
            ObsEvent::Op {
                core: CoreId(0),
                kind: OpKind::FlagRead,
                lines: 1,
                start: ps(500),
                end: ps(600),
                msg: None,
            },
            ObsEvent::Park { core: CoreId(0), line: 0, at: ps(600) },
            ObsEvent::Wake { core: CoreId(0), line: 0, at: ps(800), writer: CoreId(1) },
            e,
            ObsEvent::Finish { core: CoreId(0), at: ps(1000) },
        ];
        let book = JourneyBook::from_events(&events);
        assert_eq!(book.journeys.len(), 1);
        let j = &book.journeys[0];
        assert_eq!(j.latency(), ps(900));
        assert_eq!(j.legs_total(), j.latency(), "legs must tile the window");
        // [100,120) inject, [120,150) router wait, [150,300) router
        // service, [300,350) port service, [350,400) inject,
        // [400,500) idle, [500,600) poll, [600,800) parked,
        // [800,1000) idle.
        assert_eq!(j.leg(LegKind::Inject), ps(20 + 50));
        assert_eq!(j.leg(LegKind::RouterWait), ps(30));
        assert_eq!(j.leg(LegKind::RouterService), ps(150));
        assert_eq!(j.leg(LegKind::PortService), ps(50));
        assert_eq!(j.leg(LegKind::FlagNotify), ps(100 + 200));
        assert_eq!(j.leg(LegKind::Idle), ps(100 + 200));
        assert_eq!(j.transfers, 1);
        assert_eq!(j.lines, 4);
        assert_eq!(book.makespan, ps(1000));
    }

    #[test]
    fn wait_spans_claim_otherwise_idle_time() {
        let [b, e] = window(2, 7, 0, 500);
        let events = vec![
            b,
            ObsEvent::SpanBegin { core: CoreId(2), span: Span::of(Phase::Drain), at: ps(0) },
            // Nested deeper: a notify wait inside the drain claims its
            // sub-interval (innermost wins).
            ObsEvent::SpanBegin { core: CoreId(2), span: Span::of(Phase::NotifyWait), at: ps(100) },
            ObsEvent::SpanEnd { core: CoreId(2), span: Span::of(Phase::NotifyWait), at: ps(200) },
            ObsEvent::SpanEnd { core: CoreId(2), span: Span::of(Phase::Drain), at: ps(400) },
            e,
        ];
        let book = JourneyBook::from_events(&events);
        let j = &book.journeys[0];
        assert_eq!(j.epoch, 7);
        assert_eq!(j.leg(LegKind::Drain), ps(300));
        assert_eq!(j.leg(LegKind::FlagNotify), ps(100));
        assert_eq!(j.leg(LegKind::Idle), ps(100));
        assert_eq!(j.legs_total(), ps(500));
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let [b0, e0] = window(0, 0, 0, 700);
        let [b1, e1] = window(1, 0, 10, 900);
        let events = vec![
            b0,
            b1,
            ObsEvent::Op {
                core: CoreId(1),
                kind: OpKind::GetToMem,
                lines: 96,
                start: ps(100),
                end: ps(880),
                msg: Some(MsgId::new(0, CoreId(0), CoreId(1), 0)),
            },
            e0,
            e1,
            ObsEvent::Finish { core: CoreId(1), at: ps(900) },
        ];
        let book = JourneyBook::from_events(&events);
        let artifact = journeys_artifact(&[("unit".to_string(), book.clone())]);
        let parsed = Json::parse(&artifact.render()).unwrap();
        let back = parse_journeys_artifact(&parsed).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].0, "unit");
        assert_eq!(back[0].1, book);
    }

    #[test]
    fn artifact_version_is_checked() {
        let doc = journeys_artifact(&[]).set("version", Json::Int(999));
        assert!(parse_journeys_artifact(&doc).is_err());
    }

    /// Regression: negative integers in a journeys artifact used to be
    /// cast with `as`, wrapping silently into huge counts. They must be
    /// typed parse errors instead.
    #[test]
    fn negative_integers_are_parse_errors_not_wraps() {
        let [b, e] = window(0, 0, 0, 700);
        let book = JourneyBook::from_events(&[b, e]);
        let good = book.to_json();
        assert!(JourneyBook::from_json(&good).is_ok());
        for key in ["transfers", "lines", "begin_ps", "end_ps"] {
            let mut items = good.get("journeys").and_then(Json::as_arr).unwrap().to_vec();
            items[0] = items[0].clone().set(key, Json::Int(-3));
            let bad = good.clone().set("journeys", Json::Arr(items));
            let err = JourneyBook::from_json(&bad).unwrap_err();
            assert!(err.contains(key) && err.contains("-3"), "key {key}: {err}");
        }
        let bad = good.set("makespan_ps", Json::Int(-1));
        assert!(JourneyBook::from_json(&bad).is_err());
    }
}
