//! Conformance records: the structured side of every experiment the
//! `observatory` harness runs.
//!
//! Each experiment (one paper figure or table) yields a set of
//! [`ExperimentRow`]s — one per measured point, carrying the paper's
//! published value (when the paper prints one), the analytical model's
//! prediction, and the simulator's measurement — plus
//! [`ShapeCheck`]s, the qualitative claims the paper makes about each
//! figure (crossover positions, winners, knees, monotonicity) evaluated
//! against the fresh measurements, and [`SelfMetrics`] describing the
//! host-side cost of producing them.
//!
//! The whole bundle serializes to/from the `BENCH_figures.json`
//! artifact via the in-house [`Json`] layer, and [`drift_gate`]
//! compares a fresh report against a committed baseline: a CI run fails
//! if any measurement leaves its tolerance band, any shape check
//! regresses, or the run modes (quick vs. full) do not match.

use crate::report::Json;
use std::fmt::Write as _;

/// Schema version stamped into `BENCH_figures.json`; bump on breaking
/// layout changes so stale baselines fail loudly instead of weirdly.
pub const SCHEMA_VERSION: i64 = 1;

/// Version stamped into the *sidecar* artifacts (`BENCH_obs.json`,
/// `BENCH_whatif.json`) under the `"version"` key. Separate from
/// [`SCHEMA_VERSION`] because the sidecars evolve independently of the
/// committed figures baseline.
pub const ARTIFACT_VERSION: i64 = 1;

/// Check a sidecar artifact's `"version"` stamp. Consumers (and the
/// conformance tests) call this before trusting any other field, so a
/// stale or foreign file fails with a message naming the mismatch
/// instead of a missing-key error three layers deeper.
pub fn validate_artifact_version(doc: &Json) -> Result<(), String> {
    match doc.get("version").and_then(Json::as_i64) {
        Some(v) if v == ARTIFACT_VERSION => Ok(()),
        Some(v) => Err(format!("artifact version {v} != supported {ARTIFACT_VERSION}")),
        None => Err("artifact has no integer 'version' field".into()),
    }
}

/// One measured point of one experiment.
#[derive(Clone, Debug, PartialEq)]
pub struct ExperimentRow {
    /// Unique key within the experiment, e.g. `"latency k=7 bytes=32"`.
    /// The drift gate matches rows across runs by this string.
    pub point: String,
    /// The value printed in the paper for this point, if any.
    pub paper_value: Option<f64>,
    /// The analytical model's prediction, if the model covers the point.
    pub model_prediction: Option<f64>,
    /// What the simulator measured on this run.
    pub sim_measured: f64,
    /// Relative tolerance band for the drift gate: a later run violates
    /// if `|new - old| > tolerance * max(|old|, 1e-9)`.
    pub tolerance: f64,
    /// Unit label for reports ("us", "MB/s", ...).
    pub unit: String,
}

impl ExperimentRow {
    /// Relative deviation of the simulator from the model, when the
    /// model covers this point.
    pub fn model_drift(&self) -> Option<f64> {
        self.model_prediction
            .map(|m| (self.sim_measured - m) / if m.abs() > 1e-9 { m.abs() } else { 1e-9 })
    }
}

/// One qualitative claim about a figure, evaluated on this run.
#[derive(Clone, Debug, PartialEq)]
pub struct ShapeCheck {
    /// Stable name the drift gate matches across runs.
    pub name: String,
    /// Human-readable evidence (the numbers behind the verdict).
    pub detail: String,
    pub pass: bool,
}

impl ShapeCheck {
    /// Record an evaluated claim.
    pub fn new(name: &str, pass: bool, detail: String) -> ShapeCheck {
        ShapeCheck { name: name.to_string(), detail, pass }
    }
}

/// Host-side cost of producing one experiment's measurements.
///
/// The engine counters (`sim_runs`, `sim_events`, `heap_pushes`,
/// `coalesced_steps`) are attributed per experiment by summing each
/// sweep unit's own run stats, so they are exact and deterministic even
/// when experiments execute concurrently. `wall_s` is the sum of the
/// units' individual wall times — the *sequential-equivalent* cost —
/// which keeps its meaning under a parallel runner (the whole-run wall
/// clock lives in [`RunMetrics`] instead).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SelfMetrics {
    /// Sequential-equivalent wall-clock seconds: the sum over this
    /// experiment's sweep units of each unit's own elapsed time.
    pub wall_s: f64,
    /// Simulator runs launched.
    pub sim_runs: u64,
    /// Events retired across those runs.
    pub sim_events: u64,
    /// Scheduler heap pushes across those runs.
    pub heap_pushes: u64,
    /// Heap round-trips elided by the coalescing fast path.
    pub coalesced_steps: u64,
    /// Independently schedulable sweep units the experiment decomposed
    /// into (0 in reports predating the parallel runner).
    pub units: u64,
}

impl SelfMetrics {
    /// Engine throughput while this experiment ran (against the
    /// sequential-equivalent time).
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.sim_events as f64 / self.wall_s
        } else {
            0.0
        }
    }

    /// Fold another metrics bundle into this one (used when merging
    /// sweep units into an experiment report).
    pub fn absorb(&mut self, other: &SelfMetrics) {
        self.wall_s += other.wall_s;
        self.sim_runs += other.sim_runs;
        self.sim_events += other.sim_events;
        self.heap_pushes += other.heap_pushes;
        self.coalesced_steps += other.coalesced_steps;
        self.units += other.units;
    }
}

/// Whole-run self-metrics of one observatory invocation: how the
/// parallel runner actually performed. Excluded from the drift gate and
/// from `CONFORMANCE.md` (wall clock is host-dependent); carried in
/// `BENCH_figures.json` so CI can track the speedup across PRs.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunMetrics {
    /// Worker threads the runner was allowed (`--jobs`).
    pub jobs: u64,
    /// Sweep units executed across all experiments.
    pub units: u64,
    /// Actual wall-clock seconds for the whole registry run.
    pub wall_s: f64,
    /// Sequential-equivalent seconds (sum of per-unit wall times).
    pub seq_s: f64,
    /// High-water mark of concurrently executing simulations.
    pub peak_in_flight: u64,
}

impl RunMetrics {
    /// Measured speedup over the sequential-equivalent cost.
    pub fn speedup(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.seq_s / self.wall_s
        } else {
            0.0
        }
    }

    /// Sweep units retired per wall-clock second.
    pub fn units_per_sec(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.units as f64 / self.wall_s
        } else {
            0.0
        }
    }
}

/// Journey-layer self-metrics of one observatory invocation
/// (`--journeys`): how many delivery timelines were reconstructed and
/// the worst delivery latency observed. Excluded from the drift gate —
/// like [`RunMetrics`], this block describes the run's own tracing
/// output, not paper conformance, so it must never trip CI.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct JourneysMetrics {
    /// Scenarios traced (one `JourneyBook` each).
    pub scenarios: u64,
    /// Delivery timelines reconstructed across all scenarios.
    pub journeys: u64,
    /// Worst per-destination delivery latency, µs (virtual time).
    pub max_delivery_us: f64,
}

/// Fault-layer self-metrics of one observatory invocation
/// (`--faults`): how much fault injection and recovery work the
/// degradation sweep performed. Excluded from the drift gate for the
/// same reason as [`JourneysMetrics`] — it describes the run's own
/// tracing output, not paper conformance.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultsMetrics {
    /// Scenarios swept (one degradation curve each).
    pub scenarios: u64,
    /// Total (scenario, fault-rate) operating points measured.
    pub points: u64,
    /// Faults the engine injected across all points.
    pub injected_faults: u64,
    /// Timeout-triggered recoveries the reliable protocols performed.
    pub recoveries: u64,
}

/// Soak-layer self-metrics of one observatory invocation (`--soak`):
/// how much sustained traffic the soak drove and what the SLO
/// watchdogs found. Excluded from the drift gate for the same reason
/// as [`JourneysMetrics`] — it describes the run's own telemetry
/// output, not paper conformance.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SoakMetrics {
    /// Protocols soaked (one scenario record each).
    pub scenarios: u64,
    /// Broadcast epochs completed across all scenarios and phases.
    pub epochs: u64,
    /// SLO objectives breached across the whole soak.
    pub breaches: u64,
    /// Forensic dump files written (Chrome trace / journey / skew).
    pub dumps: u64,
}

/// Causal-audit self-metrics of one observatory invocation
/// (`--audit`): how many recorded streams the auditor checked and what
/// it found. Excluded from the drift gate for the same reason as
/// [`JourneysMetrics`] — it describes the run's own telemetry output,
/// not paper conformance.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AuditMetrics {
    /// Recorded scenario streams audited.
    pub scenarios: u64,
    /// Invariant instances examined across all streams.
    pub checks: u64,
    /// Violations found (must be 0 on healthy runs).
    pub violations: u64,
    /// Seeded mutation trials run by the non-vacuity harness.
    pub mutations: u64,
    /// Mutation trials the auditor caught with the expected class.
    pub mutations_caught: u64,
}

/// Everything one experiment produced.
#[derive(Clone, Debug, PartialEq)]
pub struct ExperimentReport {
    /// Registry id, e.g. `"fig6"`.
    pub id: String,
    /// Human title, e.g. `"Figure 6: OC-Bcast latency vs. message size"`.
    pub title: String,
    pub rows: Vec<ExperimentRow>,
    pub shapes: Vec<ShapeCheck>,
    pub metrics: SelfMetrics,
}

impl ExperimentReport {
    /// All shape claims held on this run.
    pub fn shapes_pass(&self) -> bool {
        self.shapes.iter().all(|s| s.pass)
    }
}

/// The full `BENCH_figures.json` payload.
#[derive(Clone, Debug, PartialEq)]
pub struct ConformanceReport {
    pub schema: i64,
    /// Whether the run used reduced sweeps (`SCC_BENCH_QUICK=1`).
    /// Quick and full runs measure different points, so the drift gate
    /// refuses to compare across modes.
    pub quick: bool,
    pub experiments: Vec<ExperimentReport>,
    /// Whole-run runner metrics (absent in reports predating the
    /// parallel runner, and in hand-assembled partial reports).
    pub run: Option<RunMetrics>,
    /// Journey-tracing summary (present only on `--journeys` runs;
    /// absent in older baselines). Ignored by the drift gate.
    pub journeys: Option<JourneysMetrics>,
    /// Fault-sweep summary (present only on `--faults` runs; absent in
    /// older baselines). Ignored by the drift gate.
    pub faults: Option<FaultsMetrics>,
    /// Soak summary (present only on `--soak` runs; absent in older
    /// baselines). Ignored by the drift gate.
    pub soak: Option<SoakMetrics>,
    /// Causal-audit summary (present only on `--audit` runs; absent in
    /// older baselines). Ignored by the drift gate.
    pub audit: Option<AuditMetrics>,
}

impl ConformanceReport {
    pub fn new(quick: bool) -> ConformanceReport {
        ConformanceReport {
            schema: SCHEMA_VERSION,
            quick,
            experiments: Vec::new(),
            run: None,
            journeys: None,
            faults: None,
            soak: None,
            audit: None,
        }
    }

    pub fn experiment(&self, id: &str) -> Option<&ExperimentReport> {
        self.experiments.iter().find(|e| e.id == id)
    }

    /// All shape claims of all experiments held.
    pub fn shapes_pass(&self) -> bool {
        self.experiments.iter().all(|e| e.shapes_pass())
    }

    pub fn to_json(&self) -> Json {
        let experiments = self
            .experiments
            .iter()
            .map(|e| {
                let rows = e
                    .rows
                    .iter()
                    .map(|r| {
                        Json::obj()
                            .set("point", Json::Str(r.point.clone()))
                            .set("paper", opt_num(r.paper_value))
                            .set("model", opt_num(r.model_prediction))
                            .set("sim", Json::Num(r.sim_measured))
                            .set("tol", Json::Num(r.tolerance))
                            .set("unit", Json::Str(r.unit.clone()))
                    })
                    .collect();
                let shapes = e
                    .shapes
                    .iter()
                    .map(|s| {
                        Json::obj()
                            .set("name", Json::Str(s.name.clone()))
                            .set("detail", Json::Str(s.detail.clone()))
                            .set("pass", Json::Bool(s.pass))
                    })
                    .collect();
                let m = &e.metrics;
                Json::obj()
                    .set("id", Json::Str(e.id.clone()))
                    .set("title", Json::Str(e.title.clone()))
                    .set("rows", Json::Arr(rows))
                    .set("shapes", Json::Arr(shapes))
                    .set(
                        "metrics",
                        Json::obj()
                            .set("wall_s", Json::Num(m.wall_s))
                            .set("sim_runs", Json::Int(m.sim_runs as i64))
                            .set("sim_events", Json::Int(m.sim_events as i64))
                            .set("heap_pushes", Json::Int(m.heap_pushes as i64))
                            .set("coalesced_steps", Json::Int(m.coalesced_steps as i64))
                            .set("units", Json::Int(m.units as i64))
                            .set("events_per_sec", Json::Num(m.events_per_sec())),
                    )
            })
            .collect();
        let doc = Json::obj()
            .set("schema", Json::Int(self.schema))
            .set("quick", Json::Bool(self.quick))
            .set("experiments", Json::Arr(experiments));
        let doc = match &self.run {
            Some(r) => doc.set(
                "run",
                Json::obj()
                    .set("jobs", Json::Int(r.jobs as i64))
                    .set("units", Json::Int(r.units as i64))
                    .set("wall_s", Json::Num(r.wall_s))
                    .set("seq_s", Json::Num(r.seq_s))
                    .set("peak_in_flight", Json::Int(r.peak_in_flight as i64))
                    .set("speedup", Json::Num(r.speedup()))
                    .set("units_per_sec", Json::Num(r.units_per_sec())),
            ),
            None => doc,
        };
        let doc = match &self.journeys {
            Some(j) => doc.set(
                "journeys",
                Json::obj()
                    .set("scenarios", Json::Int(j.scenarios as i64))
                    .set("journeys", Json::Int(j.journeys as i64))
                    .set("max_delivery_us", Json::Num(j.max_delivery_us)),
            ),
            None => doc,
        };
        let doc = match &self.faults {
            Some(f) => doc.set(
                "faults",
                Json::obj()
                    .set("scenarios", Json::Int(f.scenarios as i64))
                    .set("points", Json::Int(f.points as i64))
                    .set("injected_faults", Json::Int(f.injected_faults as i64))
                    .set("recoveries", Json::Int(f.recoveries as i64)),
            ),
            None => doc,
        };
        let doc = match &self.soak {
            Some(s) => doc.set(
                "soak",
                Json::obj()
                    .set("scenarios", Json::Int(s.scenarios as i64))
                    .set("epochs", Json::Int(s.epochs as i64))
                    .set("breaches", Json::Int(s.breaches as i64))
                    .set("dumps", Json::Int(s.dumps as i64)),
            ),
            None => doc,
        };
        match &self.audit {
            Some(a) => doc.set(
                "audit",
                Json::obj()
                    .set("scenarios", Json::Int(a.scenarios as i64))
                    .set("checks", Json::Int(a.checks as i64))
                    .set("violations", Json::Int(a.violations as i64))
                    .set("mutations", Json::Int(a.mutations as i64))
                    .set("mutations_caught", Json::Int(a.mutations_caught as i64)),
            ),
            None => doc,
        }
    }

    /// Parse a rendered report back (e.g. the committed CI baseline).
    pub fn from_json(s: &str) -> Result<ConformanceReport, String> {
        let v = Json::parse(s)?;
        let schema = v.get("schema").and_then(Json::as_i64).ok_or("missing integer 'schema'")?;
        if schema != SCHEMA_VERSION {
            return Err(format!("schema {schema} != supported {SCHEMA_VERSION}"));
        }
        let quick = v.get("quick").and_then(Json::as_bool).ok_or("missing bool 'quick'")?;
        let mut experiments = Vec::new();
        for e in v.get("experiments").and_then(Json::as_arr).ok_or("missing 'experiments'")? {
            let id = req_str(e, "id")?;
            let title = req_str(e, "title")?;
            let mut rows = Vec::new();
            for r in e.get("rows").and_then(Json::as_arr).ok_or("missing 'rows'")? {
                rows.push(ExperimentRow {
                    point: req_str(r, "point")?,
                    paper_value: r.get("paper").and_then(Json::as_f64),
                    model_prediction: r.get("model").and_then(Json::as_f64),
                    sim_measured: req_f64(r, "sim")?,
                    tolerance: req_f64(r, "tol")?,
                    unit: req_str(r, "unit")?,
                });
            }
            let mut shapes = Vec::new();
            for s in e.get("shapes").and_then(Json::as_arr).ok_or("missing 'shapes'")? {
                shapes.push(ShapeCheck {
                    name: req_str(s, "name")?,
                    detail: req_str(s, "detail")?,
                    pass: s.get("pass").and_then(Json::as_bool).ok_or("missing 'pass'")?,
                });
            }
            let m = e.get("metrics").ok_or("missing 'metrics'")?;
            let metrics = SelfMetrics {
                wall_s: req_f64(m, "wall_s")?,
                sim_runs: req_f64(m, "sim_runs")? as u64,
                sim_events: req_f64(m, "sim_events")? as u64,
                heap_pushes: req_f64(m, "heap_pushes")? as u64,
                coalesced_steps: req_f64(m, "coalesced_steps")? as u64,
                // Absent in baselines written before the parallel runner.
                units: m.get("units").and_then(Json::as_f64).unwrap_or(0.0) as u64,
            };
            experiments.push(ExperimentReport { id, title, rows, shapes, metrics });
        }
        let run = match v.get("run") {
            Some(r) => Some(RunMetrics {
                jobs: req_f64(r, "jobs")? as u64,
                units: req_f64(r, "units")? as u64,
                wall_s: req_f64(r, "wall_s")?,
                seq_s: req_f64(r, "seq_s")?,
                peak_in_flight: req_f64(r, "peak_in_flight")? as u64,
            }),
            None => None,
        };
        let journeys = match v.get("journeys") {
            Some(j) => Some(JourneysMetrics {
                scenarios: req_f64(j, "scenarios")? as u64,
                journeys: req_f64(j, "journeys")? as u64,
                max_delivery_us: req_f64(j, "max_delivery_us")?,
            }),
            None => None,
        };
        let faults = match v.get("faults") {
            Some(f) => Some(FaultsMetrics {
                scenarios: req_f64(f, "scenarios")? as u64,
                points: req_f64(f, "points")? as u64,
                injected_faults: req_f64(f, "injected_faults")? as u64,
                recoveries: req_f64(f, "recoveries")? as u64,
            }),
            None => None,
        };
        let soak = match v.get("soak") {
            Some(s) => Some(SoakMetrics {
                scenarios: req_f64(s, "scenarios")? as u64,
                epochs: req_f64(s, "epochs")? as u64,
                breaches: req_f64(s, "breaches")? as u64,
                dumps: req_f64(s, "dumps")? as u64,
            }),
            None => None,
        };
        let audit = match v.get("audit") {
            Some(a) => Some(AuditMetrics {
                scenarios: req_f64(a, "scenarios")? as u64,
                checks: req_f64(a, "checks")? as u64,
                violations: req_f64(a, "violations")? as u64,
                mutations: req_f64(a, "mutations")? as u64,
                mutations_caught: req_f64(a, "mutations_caught")? as u64,
            }),
            None => None,
        };
        Ok(ConformanceReport { schema, quick, experiments, run, journeys, faults, soak, audit })
    }

    /// The human-readable drift report (`results/CONFORMANCE.md`).
    ///
    /// Deliberately deterministic: only engine counters (exact on the
    /// deterministic simulator) appear, never wall-clock or derived
    /// rates, so the rendered file is byte-identical across hosts and
    /// across `--jobs` settings. Wall-clock self-metrics live in
    /// `BENCH_figures.json` only.
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        let shapes_total: usize = self.experiments.iter().map(|e| e.shapes.len()).sum();
        let shapes_fail: usize =
            self.experiments.iter().flat_map(|e| &e.shapes).filter(|s| !s.pass).count();
        let events: u64 = self.experiments.iter().map(|e| e.metrics.sim_events).sum();
        let _ = writeln!(out, "# Conformance report\n");
        let _ = writeln!(
            out,
            "Mode: **{}** · {} experiments · {} shape checks ({} failing) · \
             {:.1}M engine events\n",
            if self.quick { "quick" } else { "full" },
            self.experiments.len(),
            shapes_total,
            shapes_fail,
            events as f64 / 1e6,
        );
        for e in &self.experiments {
            let _ = writeln!(out, "## {} — {}\n", e.id, e.title);
            let m = &e.metrics;
            let _ = writeln!(
                out,
                "{} sim runs · {} sweep units · {:.2}M events · \
                 {:.2}M heap pushes · {:.2}M coalesced\n",
                m.sim_runs,
                m.units,
                m.sim_events as f64 / 1e6,
                m.heap_pushes as f64 / 1e6,
                m.coalesced_steps as f64 / 1e6,
            );
            if !e.rows.is_empty() {
                let _ = writeln!(out, "| point | paper | model | sim | model drift | unit |");
                let _ = writeln!(out, "|---|---:|---:|---:|---:|---|");
                for r in &e.rows {
                    let _ = writeln!(
                        out,
                        "| {} | {} | {} | {:.4} | {} | {} |",
                        r.point,
                        fmt_opt(r.paper_value),
                        fmt_opt(r.model_prediction),
                        r.sim_measured,
                        r.model_drift()
                            .map(|d| format!("{:+.1}%", d * 100.0))
                            .unwrap_or_else(|| "—".into()),
                        r.unit,
                    );
                }
                let _ = writeln!(out);
            }
            for s in &e.shapes {
                let _ = writeln!(
                    out,
                    "- {} **{}** — {}",
                    if s.pass { "✓" } else { "✗" },
                    s.name,
                    s.detail
                );
            }
            let _ = writeln!(out);
        }
        out
    }
}

fn opt_num(v: Option<f64>) -> Json {
    match v {
        Some(n) => Json::Num(n),
        None => Json::Null,
    }
}

fn fmt_opt(v: Option<f64>) -> String {
    v.map(|n| format!("{n:.4}")).unwrap_or_else(|| "—".into())
}

fn req_str(v: &Json, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string '{key}'"))
}

fn req_f64(v: &Json, key: &str) -> Result<f64, String> {
    v.get(key).and_then(Json::as_f64).ok_or_else(|| format!("missing number '{key}'"))
}

/// One reason the drift gate failed.
#[derive(Clone, Debug, PartialEq)]
pub struct DriftViolation {
    /// Experiment id the violation belongs to ("" for report-level).
    pub experiment: String,
    pub what: String,
}

/// Outcome of comparing a fresh run against a committed baseline.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DriftReport {
    pub violations: Vec<DriftViolation>,
    pub rows_checked: usize,
    pub shapes_checked: usize,
}

impl DriftReport {
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "drift gate: {} rows, {} shape checks compared — {}",
            self.rows_checked,
            self.shapes_checked,
            if self.ok() {
                "PASS".to_string()
            } else {
                format!("{} violation(s)", self.violations.len())
            }
        );
        for v in &self.violations {
            let _ = writeln!(
                out,
                "  [{}] {}",
                if v.experiment.is_empty() { "report" } else { &v.experiment },
                v.what
            );
        }
        out
    }
}

/// Compare a fresh conformance report against the committed baseline.
///
/// Fails (collects violations) when:
/// * the run modes differ (quick vs. full measure different points);
/// * a baseline experiment, row, or shape check disappeared;
/// * a measurement left its tolerance band
///   (`|new - old| > tol * max(|old|, 1e-9)`, `tol` from the baseline
///   row, so tolerances are versioned with the baseline);
/// * a shape check that passed in the baseline fails now (crossover
///   moved, winner flipped, knee shifted), or any current shape check
///   fails outright.
pub fn drift_gate(current: &ConformanceReport, baseline: &ConformanceReport) -> DriftReport {
    let mut rep = DriftReport::default();
    let mut fail = |exp: &str, what: String| {
        rep.violations.push(DriftViolation { experiment: exp.to_string(), what });
    };

    if current.quick != baseline.quick {
        fail(
            "",
            format!(
                "mode mismatch: baseline is {}, run is {}",
                if baseline.quick { "quick" } else { "full" },
                if current.quick { "quick" } else { "full" }
            ),
        );
        return rep;
    }

    for base in &baseline.experiments {
        let Some(cur) = current.experiment(&base.id) else {
            fail(&base.id, "experiment missing from this run".into());
            continue;
        };
        for brow in &base.rows {
            rep.rows_checked += 1;
            let Some(crow) = cur.rows.iter().find(|r| r.point == brow.point) else {
                fail(&base.id, format!("row '{}' missing from this run", brow.point));
                continue;
            };
            let scale = brow.sim_measured.abs().max(1e-9);
            let drift = (crow.sim_measured - brow.sim_measured).abs() / scale;
            if drift > brow.tolerance {
                fail(
                    &base.id,
                    format!(
                        "'{}' drifted {:.2}% (> {:.2}% band): {:.6} -> {:.6} {}",
                        brow.point,
                        drift * 100.0,
                        brow.tolerance * 100.0,
                        brow.sim_measured,
                        crow.sim_measured,
                        brow.unit,
                    ),
                );
            }
        }
        for bshape in &base.shapes {
            rep.shapes_checked += 1;
            match cur.shapes.iter().find(|s| s.name == bshape.name) {
                None => fail(&base.id, format!("shape check '{}' disappeared", bshape.name)),
                Some(cs) if bshape.pass && !cs.pass => fail(
                    &base.id,
                    format!("shape regression: '{}' now fails — {}", cs.name, cs.detail),
                ),
                Some(_) => {}
            }
        }
    }

    // Shape checks are correctness claims: a fresh failure is a gate
    // failure even if the baseline never saw that check (or saw it
    // failing — a red baseline must not launder a red run).
    for cur in &current.experiments {
        for s in cur.shapes.iter().filter(|s| !s.pass) {
            let regressed = baseline
                .experiment(&cur.id)
                .is_some_and(|b| b.shapes.iter().any(|bs| bs.name == s.name && bs.pass));
            if !regressed {
                fail(&cur.id, format!("shape check '{}' fails — {}", s.name, s.detail));
            }
        }
    }

    rep
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::validate_json;

    fn sample() -> ConformanceReport {
        let mut r = ConformanceReport::new(false);
        r.experiments.push(ExperimentReport {
            id: "fig6".into(),
            title: "latency vs size".into(),
            rows: vec![
                ExperimentRow {
                    point: "k=7 bytes=32".into(),
                    paper_value: Some(12.0),
                    model_prediction: Some(11.5),
                    sim_measured: 11.8,
                    tolerance: 0.05,
                    unit: "us".into(),
                },
                ExperimentRow {
                    point: "k=7 bytes=8192".into(),
                    paper_value: None,
                    model_prediction: None,
                    sim_measured: 260.0,
                    tolerance: 0.05,
                    unit: "us".into(),
                },
            ],
            shapes: vec![ShapeCheck::new("monotone in size", true, "11.8 < 260.0".into())],
            metrics: SelfMetrics {
                wall_s: 2.0,
                sim_runs: 10,
                sim_events: 4_000_000,
                heap_pushes: 3_000_000,
                coalesced_steps: 1_000_000,
                units: 3,
            },
        });
        r.run = Some(RunMetrics { jobs: 4, units: 3, wall_s: 0.75, seq_s: 2.0, peak_in_flight: 4 });
        r.journeys = Some(JourneysMetrics { scenarios: 2, journeys: 96, max_delivery_us: 260.125 });
        r.faults =
            Some(FaultsMetrics { scenarios: 3, points: 12, injected_faults: 40, recoveries: 31 });
        r.soak = Some(SoakMetrics { scenarios: 2, epochs: 10_000, breaches: 4, dumps: 6 });
        r.audit = Some(AuditMetrics {
            scenarios: 9,
            checks: 120_000,
            violations: 0,
            mutations: 45,
            mutations_caught: 45,
        });
        r
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let r = sample();
        let text = r.to_json().render();
        validate_json(&text).unwrap();
        let back = ConformanceReport::from_json(&text).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn from_json_rejects_schema_mismatch_and_junk() {
        assert!(ConformanceReport::from_json("{\"schema\":99}").is_err());
        assert!(ConformanceReport::from_json("not json").is_err());
        assert!(ConformanceReport::from_json("{}").is_err());
    }

    #[test]
    fn gate_passes_on_identical_reports() {
        let r = sample();
        let d = drift_gate(&r, &r);
        assert!(d.ok(), "{}", d.render());
        assert_eq!(d.rows_checked, 2);
        assert_eq!(d.shapes_checked, 1);
    }

    /// The journeys block is self-description, not conformance: wildly
    /// different journey metrics (or the block appearing/disappearing
    /// entirely) must never trip the gate.
    #[test]
    fn gate_ignores_journey_self_metrics() {
        let base = sample();
        let mut cur = sample();
        cur.journeys = Some(JourneysMetrics { scenarios: 9, journeys: 9999, max_delivery_us: 1e9 });
        assert!(drift_gate(&cur, &base).ok());
        cur.journeys = None;
        assert!(drift_gate(&cur, &base).ok());
        // And a baseline without the block accepts a run with it.
        let mut old_base = sample();
        old_base.journeys = None;
        assert!(drift_gate(&sample(), &old_base).ok());
    }

    /// Same contract for the fault-sweep block: self-description, not
    /// conformance — arbitrary drift (or absence) never trips the gate.
    #[test]
    fn gate_ignores_faults_self_metrics() {
        let base = sample();
        let mut cur = sample();
        cur.faults = Some(FaultsMetrics {
            scenarios: 99,
            points: 9999,
            injected_faults: u64::MAX,
            recoveries: 0,
        });
        assert!(drift_gate(&cur, &base).ok());
        cur.faults = None;
        assert!(drift_gate(&cur, &base).ok());
        let mut old_base = sample();
        old_base.faults = None;
        assert!(drift_gate(&sample(), &old_base).ok());
    }

    /// Same contract for the soak block: self-description, not
    /// conformance — arbitrary drift (or absence) never trips the gate.
    #[test]
    fn gate_ignores_soak_self_metrics() {
        let base = sample();
        let mut cur = sample();
        cur.soak =
            Some(SoakMetrics { scenarios: 99, epochs: u64::MAX, breaches: 9999, dumps: 9999 });
        assert!(drift_gate(&cur, &base).ok());
        cur.soak = None;
        assert!(drift_gate(&cur, &base).ok());
        let mut old_base = sample();
        old_base.soak = None;
        assert!(drift_gate(&sample(), &old_base).ok());
    }

    /// Same contract for the audit block: self-description, not
    /// conformance — arbitrary drift (or absence) never trips the gate.
    #[test]
    fn gate_ignores_audit_self_metrics() {
        let base = sample();
        let mut cur = sample();
        cur.audit = Some(AuditMetrics {
            scenarios: 99,
            checks: u64::MAX,
            violations: 9999,
            mutations: 0,
            mutations_caught: 0,
        });
        assert!(drift_gate(&cur, &base).ok());
        cur.audit = None;
        assert!(drift_gate(&cur, &base).ok());
        let mut old_base = sample();
        old_base.audit = None;
        assert!(drift_gate(&sample(), &old_base).ok());
    }

    #[test]
    fn gate_catches_out_of_band_drift() {
        let base = sample();
        let mut cur = sample();
        cur.experiments[0].rows[0].sim_measured *= 1.10; // 10% > 5% band
        let d = drift_gate(&cur, &base);
        assert_eq!(d.violations.len(), 1, "{}", d.render());
        assert!(d.violations[0].what.contains("drifted"));

        // In-band movement passes.
        let mut cur = sample();
        cur.experiments[0].rows[0].sim_measured *= 1.02;
        assert!(drift_gate(&cur, &base).ok());
    }

    #[test]
    fn gate_catches_shape_regression_and_fresh_failures() {
        let base = sample();
        let mut cur = sample();
        cur.experiments[0].shapes[0].pass = false;
        let d = drift_gate(&cur, &base);
        assert_eq!(d.violations.len(), 1, "{}", d.render());
        assert!(d.violations[0].what.contains("shape regression"));

        // A brand-new failing shape also fails the gate.
        let mut cur = sample();
        cur.experiments[0].shapes.push(ShapeCheck::new("new claim", false, "broke".into()));
        let d = drift_gate(&cur, &base);
        assert_eq!(d.violations.len(), 1, "{}", d.render());
        assert!(d.violations[0].what.contains("'new claim' fails"));
    }

    #[test]
    fn gate_catches_missing_pieces_and_mode_mismatch() {
        let base = sample();
        let d = drift_gate(&ConformanceReport::new(false), &base);
        assert!(d.violations.iter().any(|v| v.what.contains("experiment missing")));

        let mut cur = sample();
        cur.experiments[0].rows.remove(1);
        cur.experiments[0].shapes.clear();
        let d = drift_gate(&cur, &base);
        assert!(d.violations.iter().any(|v| v.what.contains("row 'k=7 bytes=8192' missing")));
        assert!(d.violations.iter().any(|v| v.what.contains("disappeared")));

        let mut cur = sample();
        cur.quick = true;
        let d = drift_gate(&cur, &base);
        assert_eq!(d.violations.len(), 1);
        assert!(d.violations[0].what.contains("mode mismatch"));
    }

    #[test]
    fn artifact_version_validation() {
        let good = Json::obj().set("version", Json::Int(ARTIFACT_VERSION));
        assert!(validate_artifact_version(&good).is_ok());
        let stale = Json::obj().set("version", Json::Int(ARTIFACT_VERSION + 7));
        assert!(validate_artifact_version(&stale).unwrap_err().contains("!= supported"));
        assert!(validate_artifact_version(&Json::obj()).unwrap_err().contains("no integer"));
        let wrong_type = Json::obj().set("version", Json::Str("1".into()));
        assert!(validate_artifact_version(&wrong_type).is_err());
    }

    #[test]
    fn markdown_lists_rows_and_verdicts() {
        let mut r = sample();
        r.experiments[0].shapes.push(ShapeCheck::new("failing claim", false, "nope".into()));
        let md = r.render_markdown();
        assert!(md.contains("# Conformance report"));
        assert!(md.contains("## fig6 — latency vs size"));
        assert!(md.contains("| k=7 bytes=32 | 12.0000 | 11.5000 | 11.8000 |"));
        assert!(md.contains("✓ **monotone in size**"));
        assert!(md.contains("✗ **failing claim**"));
        assert!(md.contains("1 failing"));
    }
}
