//! Streaming quantile sketches: fixed-cost, deterministic, exactly
//! mergeable summaries of latency streams.
//!
//! The offline reports keep every sample ([`crate::LatencyHistogram`])
//! — fine for one broadcast, wrong for a 10,000-epoch soak where the
//! telemetry must not grow with traffic. [`QuantileSketch`] keeps the
//! same log₂ bucketing the histogram already renders (`bucket b` holds
//! samples in `[2^(b-1), 2^b)` ps, bucket 0 holds exact zeros) but
//! *only* the 65 bucket counters, so its memory cost is constant and
//! its merge is per-bucket addition — associative, commutative, and
//! bit-identical to having recorded the concatenated stream in one
//! sketch (the property the proptests in `tests/sketch_props.rs` pin).
//!
//! ## Error bound
//!
//! A quantile is answered by nearest-rank over the cumulative bucket
//! counts, reporting the *upper bound* of the bucket holding the rank
//! (`2^b − 1` ps for bucket `b ≥ 1`, `0` for bucket 0). Because the
//! exact nearest-rank sample lies in the same bucket,
//!
//! ```text
//! exact ≤ reported ≤ 2·exact − 1   (exact > 0)
//! reported = exact = 0             (exact = 0)
//! ```
//!
//! i.e. the sketch never under-reports and over-reports by strictly
//! less than 2×. The `soak` experiment re-checks this bound against a
//! replayed full recording as a shape claim on every run.

use crate::report::Json;
use scc_hal::Time;

/// Number of bucket counters: bucket 0 (zeros) plus one per possible
/// leading-bit position of a `u64` picosecond sample.
pub const SKETCH_BUCKETS: usize = 65;

/// A fixed-bucket log₂ quantile sketch over picosecond samples.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QuantileSketch {
    counts: [u64; SKETCH_BUCKETS],
    total: u64,
}

impl Default for QuantileSketch {
    fn default() -> QuantileSketch {
        QuantileSketch { counts: [0; SKETCH_BUCKETS], total: 0 }
    }
}

/// The standard quantile set the soak rollups report.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SketchSummary {
    pub p50: Time,
    pub p90: Time,
    pub p99: Time,
    pub p999: Time,
}

impl QuantileSketch {
    pub fn new() -> QuantileSketch {
        QuantileSketch::default()
    }

    /// The bucket index of a picosecond sample: 0 for zero, otherwise
    /// the bit position of the leading one — exactly
    /// [`crate::LatencyHistogram::log2_buckets`]'s rule.
    #[inline]
    pub fn bucket_of(ps: u64) -> usize {
        if ps == 0 {
            0
        } else {
            (64 - ps.leading_zeros()) as usize
        }
    }

    /// Largest picosecond value bucket `b` can hold (`2^b − 1`; 0 for
    /// the zero bucket). This is the value quantiles report.
    #[inline]
    pub fn bucket_upper(b: usize) -> u64 {
        if b == 0 {
            0
        } else {
            u64::MAX >> (64 - b)
        }
    }

    pub fn record(&mut self, v: Time) {
        self.record_ps(v.as_ps());
    }

    pub fn record_ps(&mut self, ps: u64) {
        self.counts[Self::bucket_of(ps)] += 1;
        self.total += 1;
    }

    pub fn count(&self) -> u64 {
        self.total
    }

    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The raw bucket counters (index = bucket).
    pub fn buckets(&self) -> &[u64; SKETCH_BUCKETS] {
        &self.counts
    }

    /// Fold `other` in. Exact: the result is bit-identical to a sketch
    /// that recorded both streams in any order.
    pub fn merge(&mut self, other: &QuantileSketch) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.total += other.total;
    }

    /// Nearest-rank quantile (`q` in 0..=1) in picoseconds, reported as
    /// the holding bucket's upper bound (see the module-level error
    /// bound). `None` on an empty sketch.
    pub fn quantile_ps(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (b, &n) in self.counts.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(Self::bucket_upper(b));
            }
        }
        unreachable!("total > 0 implies a bucket holds the rank");
    }

    /// [`Self::quantile_ps`] as a [`Time`].
    pub fn quantile(&self, q: f64) -> Option<Time> {
        self.quantile_ps(q).map(Time::from_ps)
    }

    /// The p50/p90/p99/p999 rollup. `None` on an empty sketch.
    pub fn summary(&self) -> Option<SketchSummary> {
        Some(SketchSummary {
            p50: self.quantile(0.50)?,
            p90: self.quantile(0.90)?,
            p99: self.quantile(0.99)?,
            p999: self.quantile(0.999)?,
        })
    }

    /// Serialize as a sparse bucket list (deterministic: ascending
    /// bucket index, empty buckets omitted).
    pub fn to_json(&self) -> Json {
        let buckets: Vec<Json> = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(b, &n)| Json::obj().set("b", Json::Int(b as i64)).set("n", Json::Int(n as i64)))
            .collect();
        Json::obj().set("total", Json::Int(self.total as i64)).set("buckets", Json::Arr(buckets))
    }

    /// Strict inverse of [`Self::to_json`]: rejects unknown buckets,
    /// negative counts, and totals that don't match the bucket sum.
    pub fn from_json(doc: &Json) -> Result<QuantileSketch, String> {
        let total = doc
            .get("total")
            .and_then(Json::as_i64)
            .ok_or_else(|| "sketch: missing integer 'total'".to_string())?;
        let total = u64::try_from(total).map_err(|_| "sketch: negative 'total'".to_string())?;
        let arr = doc
            .get("buckets")
            .and_then(Json::as_arr)
            .ok_or_else(|| "sketch: missing array 'buckets'".to_string())?;
        let mut s = QuantileSketch::new();
        for entry in arr {
            let b = entry
                .get("b")
                .and_then(Json::as_i64)
                .ok_or_else(|| "sketch bucket: missing integer 'b'".to_string())?;
            let b = usize::try_from(b)
                .ok()
                .filter(|&b| b < SKETCH_BUCKETS)
                .ok_or_else(|| format!("sketch bucket: index {b} out of range"))?;
            let n = entry
                .get("n")
                .and_then(Json::as_i64)
                .ok_or_else(|| "sketch bucket: missing integer 'n'".to_string())?;
            let n = u64::try_from(n).map_err(|_| "sketch bucket: negative count".to_string())?;
            s.counts[b] += n;
        }
        s.total = s.counts.iter().sum();
        if s.total != total {
            return Err(format!("sketch: total {total} != bucket sum {}", s.total));
        }
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ps(v: u64) -> Time {
        Time::from_ps(v)
    }

    #[test]
    fn bucketing_matches_histogram_rule() {
        assert_eq!(QuantileSketch::bucket_of(0), 0);
        assert_eq!(QuantileSketch::bucket_of(1), 1);
        assert_eq!(QuantileSketch::bucket_of(2), 2);
        assert_eq!(QuantileSketch::bucket_of(3), 2);
        assert_eq!(QuantileSketch::bucket_of(1024), 11);
        assert_eq!(QuantileSketch::bucket_of(u64::MAX), 64);
    }

    #[test]
    fn bucket_upper_bounds() {
        assert_eq!(QuantileSketch::bucket_upper(0), 0);
        assert_eq!(QuantileSketch::bucket_upper(1), 1);
        assert_eq!(QuantileSketch::bucket_upper(2), 3);
        assert_eq!(QuantileSketch::bucket_upper(11), 2047);
        assert_eq!(QuantileSketch::bucket_upper(64), u64::MAX);
    }

    #[test]
    fn empty_sketch_has_no_quantiles() {
        let s = QuantileSketch::new();
        assert!(s.is_empty());
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.summary(), None);
    }

    #[test]
    fn quantile_error_bound_holds() {
        // Exact nearest-rank vs the sketch over a spread of magnitudes.
        let samples: Vec<u64> = (0..500).map(|i| (i * i * 37 + 1) as u64).collect();
        let mut s = QuantileSketch::new();
        let mut exacth = crate::LatencyHistogram::new();
        for &v in &samples {
            s.record_ps(v);
            exacth.record(ps(v));
        }
        for q in [0.5, 0.9, 0.99, 0.999, 1.0] {
            let exact = exacth.quantile(q).unwrap().as_ps();
            let got = s.quantile_ps(q).unwrap();
            assert!(got >= exact, "q={q}: reported {got} under-reports exact {exact}");
            assert!(got < 2 * exact, "q={q}: reported {got} >= 2x exact {exact}");
        }
    }

    #[test]
    fn identical_samples_collapse_all_quantiles() {
        let mut s = QuantileSketch::new();
        for _ in 0..9 {
            s.record(ps(1500));
        }
        // All samples share bucket 11, so every quantile reports its
        // upper bound.
        assert_eq!(s.quantile_ps(0.5), Some(2047));
        assert_eq!(s.quantile_ps(0.999), Some(2047));
    }

    #[test]
    fn merge_equals_concatenation() {
        let (a, b): (Vec<u64>, Vec<u64>) =
            ((1u64..100).map(|v| v * 7).collect(), (1u64..50).map(|v| v * v).collect());
        let mut left = QuantileSketch::new();
        a.iter().for_each(|&v| left.record_ps(v));
        let mut right = QuantileSketch::new();
        b.iter().for_each(|&v| right.record_ps(v));
        let mut whole = QuantileSketch::new();
        a.iter().chain(b.iter()).for_each(|&v| whole.record_ps(v));
        left.merge(&right);
        assert_eq!(left, whole);
    }

    #[test]
    fn json_round_trip() {
        let mut s = QuantileSketch::new();
        for v in [0u64, 1, 3, 900, 1024, u64::MAX] {
            s.record_ps(v);
        }
        let doc = s.to_json();
        let back = QuantileSketch::from_json(&doc).expect("round trip");
        assert_eq!(back, s);
        // And through the textual form.
        let reparsed = Json::parse(&doc.render()).expect("valid json");
        assert_eq!(QuantileSketch::from_json(&reparsed).unwrap(), s);
    }

    #[test]
    fn json_rejects_corruption() {
        let mut s = QuantileSketch::new();
        s.record_ps(42);
        let tampered = s.to_json().set("total", Json::Int(7));
        assert!(QuantileSketch::from_json(&tampered).is_err());
        let negative = Json::obj().set("total", Json::Int(-1)).set("buckets", Json::Arr(vec![]));
        assert!(QuantileSketch::from_json(&negative).is_err());
    }
}
