//! Minimal JSON support for machine-readable reports: a value builder
//! (this workspace has no serde — no network access to crates.io) and a
//! strict parser. [`validate_json`] checks syntax (used by tests and
//! the `trace` binary before CI does); [`Json::parse`] materializes the
//! value tree, which the conformance harness uses to read committed
//! `BENCH_figures.json` baselines back for the drift gate.

use std::fmt::Write as _;

/// A JSON value, built programmatically and rendered with `render`.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Finite numbers only; NaN/inf render as `null`.
    Num(f64),
    Int(i64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered object.
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Parse one strict JSON document into a value tree.
    ///
    /// The grammar is exactly what [`validate_json`] accepts (in fact
    /// the validator is this parser with the value thrown away).
    /// Numeric literals without fraction or exponent that fit an `i64`
    /// become [`Json::Int`]; everything else numeric becomes
    /// [`Json::Num`].
    pub fn parse(s: &str) -> Result<Json, String> {
        let b = s.as_bytes();
        let mut p = Parser { b, i: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.i != b.len() {
            return Err(format!("trailing garbage at byte {}", p.i));
        }
        Ok(v)
    }

    /// Look up a key in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric view: `Num`, `Int`, or `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Num(n) => Some(n),
            Json::Int(i) => Some(i as f64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Json::Int(i) => Some(i),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Insert/overwrite a key (builder style).
    pub fn set(mut self, key: &str, value: Json) -> Json {
        if let Json::Obj(ref mut fields) = self {
            if let Some(f) = fields.iter_mut().find(|(k, _)| k == key) {
                f.1 = value;
            } else {
                fields.push((key.to_string(), value));
            }
        }
        self
    }

    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    let _ = write!(out, "{n}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Str(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&escape(k));
                    out.push_str("\":");
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Strict JSON syntax check. Returns the first error with a byte
/// offset. Accepts exactly one top-level value.
pub fn validate_json(s: &str) -> Result<(), String> {
    Json::parse(s).map(|_| ())
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn err<T>(&self, msg: &str) -> Result<T, String> {
        Err(format!("{msg} at byte {}", self.i))
    }

    fn skip_ws(&mut self) {
        while matches!(self.b.get(self.i), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.b.get(self.i) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self.lit("true").map(|()| Json::Bool(true)),
            Some(b'f') => self.lit("false").map(|()| Json::Bool(false)),
            Some(b'n') => self.lit("null").map(|()| Json::Null),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.number(),
            _ => self.err("expected a JSON value"),
        }
    }

    fn lit(&mut self, word: &str) -> Result<(), String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(())
        } else {
            self.err("bad literal")
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        if self.b.get(self.i) == Some(&b'-') {
            self.i += 1;
        }
        let digits = |p: &mut Self| {
            let s = p.i;
            while matches!(p.b.get(p.i), Some(c) if c.is_ascii_digit()) {
                p.i += 1;
            }
            p.i > s
        };
        if !digits(self) {
            return self.err("expected digits");
        }
        let mut integral = true;
        if self.b.get(self.i) == Some(&b'.') {
            self.i += 1;
            integral = false;
            if !digits(self) {
                return self.err("expected fraction digits");
            }
        }
        if matches!(self.b.get(self.i), Some(b'e' | b'E')) {
            self.i += 1;
            integral = false;
            if matches!(self.b.get(self.i), Some(b'+' | b'-')) {
                self.i += 1;
            }
            if !digits(self) {
                return self.err("expected exponent digits");
            }
        }
        debug_assert!(self.i > start);
        // Safety of from_utf8: the matched range is ASCII by construction.
        let text = std::str::from_utf8(&self.b[start..self.i]).unwrap();
        if integral {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        match text.parse::<f64>() {
            Ok(n) => Ok(Json::Num(n)),
            Err(_) => self.err("unrepresentable number"),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.i += 1; // opening quote
        let mut out = String::new();
        loop {
            match self.b.get(self.i) {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.b.get(self.i) {
                        Some(b'"') => {
                            out.push('"');
                            self.i += 1;
                        }
                        Some(b'\\') => {
                            out.push('\\');
                            self.i += 1;
                        }
                        Some(b'/') => {
                            out.push('/');
                            self.i += 1;
                        }
                        Some(b'b') => {
                            out.push('\u{8}');
                            self.i += 1;
                        }
                        Some(b'f') => {
                            out.push('\u{c}');
                            self.i += 1;
                        }
                        Some(b'n') => {
                            out.push('\n');
                            self.i += 1;
                        }
                        Some(b'r') => {
                            out.push('\r');
                            self.i += 1;
                        }
                        Some(b't') => {
                            out.push('\t');
                            self.i += 1;
                        }
                        Some(b'u') => {
                            self.i += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // High surrogate: require the low half.
                                if self.b.get(self.i) != Some(&b'\\')
                                    || self.b.get(self.i + 1) != Some(&b'u')
                                {
                                    return self.err("lone high surrogate");
                                }
                                self.i += 2;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return self.err("bad low surrogate");
                                }
                                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp)
                                    .ok_or_else(|| "bad surrogate pair".to_string())?
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| format!("lone surrogate at byte {}", self.i))?
                            };
                            out.push(c);
                        }
                        _ => return self.err("bad escape"),
                    }
                }
                Some(c) if *c < 0x20 => return self.err("control char in string"),
                Some(_) => {
                    // Copy the whole run of plain characters at once.
                    // `"`, `\` and control bytes are ASCII, so they can
                    // never appear inside a multi-byte scalar and the
                    // span below always ends on a UTF-8 boundary (the
                    // input came from a &str).
                    let start = self.i;
                    while let Some(&c) = self.b.get(self.i) {
                        if c == b'"' || c == b'\\' || c < 0x20 {
                            break;
                        }
                        self.i += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.b[start..self.i])
                            .map_err(|_| "invalid utf-8".to_string())?,
                    );
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut v = 0u32;
        for _ in 0..4 {
            // A single fallible decode step: any byte that is not a
            // hex digit (including non-ASCII and end-of-input) is a
            // parse error, never a panic.
            let digit = match self.b.get(self.i).and_then(|c| (*c as char).to_digit(16)) {
                Some(d) => d,
                None => return self.err("bad \\u escape"),
            };
            v = v * 16 + digit;
            self.i += 1;
        }
        Ok(v)
    }

    fn object(&mut self) -> Result<Json, String> {
        self.i += 1;
        self.skip_ws();
        let mut fields = Vec::new();
        if self.b.get(self.i) == Some(&b'}') {
            self.i += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            if self.b.get(self.i) != Some(&b'"') {
                return self.err("expected object key");
            }
            let key = self.string()?;
            self.skip_ws();
            if self.b.get(self.i) != Some(&b':') {
                return self.err("expected ':'");
            }
            self.i += 1;
            self.skip_ws();
            let v = self.value()?;
            fields.push((key, v));
            self.skip_ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.i += 1;
        self.skip_ws();
        let mut items = Vec::new();
        if self.b.get(self.i) == Some(&b']') {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_round_trips_through_validator() {
        let j = Json::obj()
            .set("name", Json::Str("oc\"bcast\n".into()))
            .set("lines", Json::Int(96))
            .set("latency_us", Json::Num(123.456789))
            .set("ok", Json::Bool(true))
            .set("buckets", Json::Arr(vec![Json::Num(0.5), Json::Null, Json::Int(-3)]));
        let s = j.render();
        validate_json(&s).unwrap();
        assert!(s.contains("\"lines\":96"));
        assert!(s.contains("\\\"bcast\\n"));
    }

    #[test]
    fn set_overwrites_existing_key() {
        let j = Json::obj().set("a", Json::Int(1)).set("a", Json::Int(2));
        assert_eq!(j.render(), "{\"a\":2}");
    }

    #[test]
    fn validator_accepts_valid() {
        for s in [
            "{}",
            "[]",
            "null",
            "-12.5e-3",
            "{\"a\":[1,2,{\"b\":\"x\\u00e9\"}],\"c\":false}",
            "  [ 1 , 2 ]  ",
        ] {
            validate_json(s).unwrap_or_else(|e| panic!("{s}: {e}"));
        }
    }

    #[test]
    fn validator_rejects_invalid() {
        for s in ["", "{", "[1,]", "{\"a\":}", "{'a':1}", "01x", "\"abc", "{} {}", "nulll"] {
            assert!(validate_json(s).is_err(), "{s} should be rejected");
        }
    }

    #[test]
    fn parse_materializes_values() {
        let v = Json::parse("{\"a\":[1,2.5,true,null],\"b\":\"x\\n\\u00e9\",\"c\":-7}").unwrap();
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap(),
            &[Json::Int(1), Json::Num(2.5), Json::Bool(true), Json::Null]
        );
        assert_eq!(v.get("b").unwrap().as_str(), Some("x\né"));
        assert_eq!(v.get("c").unwrap().as_i64(), Some(-7));
        assert_eq!(v.get("c").unwrap().as_f64(), Some(-7.0));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn parse_round_trips_renderer_output() {
        let j = Json::obj()
            .set("s", Json::Str("quote\" slash\\ nl\n tab\t ctl\u{1} é".into()))
            .set("big", Json::Num(1.25e300))
            .set("neg", Json::Int(i64::MIN))
            .set("arr", Json::Arr(vec![Json::Bool(false), Json::Null]));
        let rendered = j.render();
        let back = Json::parse(&rendered).unwrap();
        assert_eq!(back, j);
    }

    /// Regression: malformed hex in a `\u` escape used to reach a
    /// `to_digit(16).unwrap()` and panic; it must be a parse error.
    #[test]
    fn malformed_hex_escape_is_an_error() {
        for s in [
            "\"\\uZZZZ\"",
            "\"\\u12G4\"",
            "\"\\u123\"",
            "\"\\u\"",
            "\"\\u12",
            "\"\\uéééé\"",
            "{\"k\":\"\\uZZZZ\"}",
        ] {
            let e = Json::parse(s).expect_err(s);
            assert!(e.contains("escape") || e.contains("unterminated"), "{s}: {e}");
        }
    }

    #[test]
    fn parse_surrogate_pairs_and_rejects_lone_halves() {
        let v = Json::parse("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(v.as_str(), Some("😀"));
        assert!(Json::parse("\"\\ud83d\"").is_err(), "lone high surrogate");
        assert!(Json::parse("\"\\ude00\"").is_err(), "lone low surrogate");
    }

    /// Regression guard: string scanning must be linear in document
    /// size. An earlier version re-validated the whole remaining input
    /// per character, which turned the multi-megabyte chrome traces the
    /// `trace` binary validates into an hours-long parse. At 8 MB the
    /// quadratic version needs minutes; the linear one, milliseconds.
    #[test]
    fn multi_megabyte_documents_parse_fast() {
        let mut doc = String::from("[");
        let chunk = "x".repeat(1 << 10);
        for i in 0..(8 << 10) {
            if i > 0 {
                doc.push(',');
            }
            doc.push('"');
            doc.push_str(&chunk);
            doc.push('"');
        }
        doc.push(']');
        let start = std::time::Instant::now();
        let v = Json::parse(&doc).unwrap();
        assert_eq!(v.as_arr().unwrap().len(), 8 << 10);
        assert!(
            start.elapsed() < std::time::Duration::from_secs(30),
            "parse took {:?} — string scanning has gone super-linear",
            start.elapsed()
        );
    }

    #[test]
    fn integral_floats_parse_as_ints() {
        // `Num(5.0)` renders as `5`, which parses back as `Int(5)`:
        // byte-level round-trip is exact, value-level is semantic.
        assert_eq!(Json::parse(&Json::Num(5.0).render()).unwrap(), Json::Int(5));
        // Beyond i64 range the integral literal falls back to f64.
        assert_eq!(Json::parse("99999999999999999999").unwrap(), Json::Num(1e20));
    }
}
