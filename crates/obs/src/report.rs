//! Minimal JSON support for machine-readable reports: a value builder
//! (this workspace has no serde — no network access to crates.io) and a
//! strict validating parser used by tests and the `trace` binary to
//! check emitted artifacts before CI does.

use std::fmt::Write as _;

/// A JSON value, built programmatically and rendered with `render`.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Finite numbers only; NaN/inf render as `null`.
    Num(f64),
    Int(i64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered object.
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Insert/overwrite a key (builder style).
    pub fn set(mut self, key: &str, value: Json) -> Json {
        if let Json::Obj(ref mut fields) = self {
            if let Some(f) = fields.iter_mut().find(|(k, _)| k == key) {
                f.1 = value;
            } else {
                fields.push((key.to_string(), value));
            }
        }
        self
    }

    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    let _ = write!(out, "{n}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Str(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&escape(k));
                    out.push_str("\":");
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Strict JSON syntax check (no value materialization). Returns the
/// first error with a byte offset. Accepts exactly one top-level value.
pub fn validate_json(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut p = Parser { b, i: 0 };
    p.skip_ws();
    p.value()?;
    p.skip_ws();
    if p.i != b.len() {
        return Err(format!("trailing garbage at byte {}", p.i));
    }
    Ok(())
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn err<T>(&self, msg: &str) -> Result<T, String> {
        Err(format!("{msg} at byte {}", self.i))
    }

    fn skip_ws(&mut self) {
        while matches!(self.b.get(self.i), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn value(&mut self) -> Result<(), String> {
        match self.b.get(self.i) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.lit("true"),
            Some(b'f') => self.lit("false"),
            Some(b'n') => self.lit("null"),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.number(),
            _ => self.err("expected a JSON value"),
        }
    }

    fn lit(&mut self, word: &str) -> Result<(), String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(())
        } else {
            self.err("bad literal")
        }
    }

    fn number(&mut self) -> Result<(), String> {
        let start = self.i;
        if self.b.get(self.i) == Some(&b'-') {
            self.i += 1;
        }
        let digits = |p: &mut Self| {
            let s = p.i;
            while matches!(p.b.get(p.i), Some(c) if c.is_ascii_digit()) {
                p.i += 1;
            }
            p.i > s
        };
        if !digits(self) {
            return self.err("expected digits");
        }
        if self.b.get(self.i) == Some(&b'.') {
            self.i += 1;
            if !digits(self) {
                return self.err("expected fraction digits");
            }
        }
        if matches!(self.b.get(self.i), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.b.get(self.i), Some(b'+' | b'-')) {
                self.i += 1;
            }
            if !digits(self) {
                return self.err("expected exponent digits");
            }
        }
        debug_assert!(self.i > start);
        Ok(())
    }

    fn string(&mut self) -> Result<(), String> {
        self.i += 1; // opening quote
        loop {
            match self.b.get(self.i) {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.b.get(self.i) {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.i += 1;
                        }
                        Some(b'u') => {
                            self.i += 1;
                            for _ in 0..4 {
                                match self.b.get(self.i) {
                                    Some(c) if c.is_ascii_hexdigit() => self.i += 1,
                                    _ => return self.err("bad \\u escape"),
                                }
                            }
                        }
                        _ => return self.err("bad escape"),
                    }
                }
                Some(c) if *c < 0x20 => return self.err("control char in string"),
                Some(_) => self.i += 1,
            }
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.i += 1;
        self.skip_ws();
        if self.b.get(self.i) == Some(&b'}') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            if self.b.get(self.i) != Some(&b'"') {
                return self.err("expected object key");
            }
            self.string()?;
            self.skip_ws();
            if self.b.get(self.i) != Some(&b':') {
                return self.err("expected ':'");
            }
            self.i += 1;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.i += 1;
        self.skip_ws();
        if self.b.get(self.i) == Some(&b']') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_round_trips_through_validator() {
        let j = Json::obj()
            .set("name", Json::Str("oc\"bcast\n".into()))
            .set("lines", Json::Int(96))
            .set("latency_us", Json::Num(123.456789))
            .set("ok", Json::Bool(true))
            .set("buckets", Json::Arr(vec![Json::Num(0.5), Json::Null, Json::Int(-3)]));
        let s = j.render();
        validate_json(&s).unwrap();
        assert!(s.contains("\"lines\":96"));
        assert!(s.contains("\\\"bcast\\n"));
    }

    #[test]
    fn set_overwrites_existing_key() {
        let j = Json::obj().set("a", Json::Int(1)).set("a", Json::Int(2));
        assert_eq!(j.render(), "{\"a\":2}");
    }

    #[test]
    fn validator_accepts_valid() {
        for s in [
            "{}",
            "[]",
            "null",
            "-12.5e-3",
            "{\"a\":[1,2,{\"b\":\"x\\u00e9\"}],\"c\":false}",
            "  [ 1 , 2 ]  ",
        ] {
            validate_json(s).unwrap_or_else(|e| panic!("{s}: {e}"));
        }
    }

    #[test]
    fn validator_rejects_invalid() {
        for s in ["", "{", "[1,]", "{\"a\":}", "{'a':1}", "01x", "\"abc", "{} {}", "nulll"] {
            assert!(validate_json(s).is_err(), "{s} should be rejected");
        }
    }
}
