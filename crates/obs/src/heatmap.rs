//! Per-link mesh occupancy heatmaps.
//!
//! The simulator attributes every router booking to the *directed
//! output link* the packet leaves the router on (E/W/N/S, or the
//! ejection port at the destination tile), so the 24×5 link counters
//! are an exact partition of the per-tile router aggregates — per-link
//! sums reconstruct the per-tile busy/wait vectors picosecond for
//! picosecond (guarded by `link_partition.rs` in `scc-sim`).
//!
//! A [`LinkHeatmap`] can be built two ways:
//!
//! * [`LinkHeatmap::from_slices`] — from the `link_busy`/`link_wait`
//!   vectors of a `SimStats` (the cheap path; works with recording off);
//! * [`LinkHeatmap::from_events`] — by folding a recorded [`ObsEvent`]
//!   stream, summing the service and queueing time of every router
//!   `Wait` that carries a [`LinkDir`]. On the same run both
//!   constructions agree exactly.
//!
//! Renderers: an ASCII 6×4 mesh (one cell per tile, one digit of
//! busy-occupancy per directed link, normalized to the hottest link)
//! and a long-form CSV for external plotting.

use crate::event::{ObsEvent, ResourceId};
use scc_hal::{LinkDir, Tile, Time, NUM_LINK_DIRS, TILE_COLS, TILE_ROWS};
use std::fmt::Write as _;

pub const NUM_TILES: usize = (TILE_COLS as usize) * (TILE_ROWS as usize);

/// Directed-link occupancy of the 6×4 mesh for one collective/run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LinkHeatmap {
    /// Service time per directed link, `tile * NUM_LINK_DIRS + dir`.
    busy: Vec<Time>,
    /// Queueing wait per directed link, same layout.
    wait: Vec<Time>,
}

impl LinkHeatmap {
    /// Build from the simulator's per-link accounting vectors
    /// (`SimStats::link_busy` / `SimStats::link_wait`).
    pub fn from_slices(link_busy: &[Time], link_wait: &[Time]) -> LinkHeatmap {
        assert_eq!(link_busy.len(), NUM_TILES * NUM_LINK_DIRS, "expected 24x5 busy vector");
        assert_eq!(link_wait.len(), NUM_TILES * NUM_LINK_DIRS, "expected 24x5 wait vector");
        LinkHeatmap { busy: link_busy.to_vec(), wait: link_wait.to_vec() }
    }

    /// Rebuild the same map from a recorded event stream: every router
    /// `Wait` carrying a link direction contributes its service time
    /// (`end - start`) to busy and its queueing time (`start -
    /// arrival`) to wait.
    pub fn from_events(events: &[ObsEvent]) -> LinkHeatmap {
        let mut busy = vec![Time::ZERO; NUM_TILES * NUM_LINK_DIRS];
        let mut wait = vec![Time::ZERO; NUM_TILES * NUM_LINK_DIRS];
        for ev in events {
            if let ObsEvent::Wait {
                resource: ResourceId::Router(tile),
                arrival,
                start,
                end,
                link: Some(dir),
                ..
            } = *ev
            {
                let slot = tile as usize * NUM_LINK_DIRS + dir.index();
                busy[slot] += end.saturating_sub(start);
                wait[slot] += start.saturating_sub(arrival);
            }
        }
        LinkHeatmap { busy, wait }
    }

    pub fn busy(&self, tile: usize, dir: LinkDir) -> Time {
        self.busy[tile * NUM_LINK_DIRS + dir.index()]
    }

    pub fn wait(&self, tile: usize, dir: LinkDir) -> Time {
        self.wait[tile * NUM_LINK_DIRS + dir.index()]
    }

    /// Per-tile `(busy, wait)` sums over the five directed links — by
    /// the partition property these equal the simulator's per-tile
    /// router aggregates.
    pub fn tile_totals(&self) -> Vec<(Time, Time)> {
        (0..NUM_TILES)
            .map(|t| {
                let base = t * NUM_LINK_DIRS;
                let b = self.busy[base..base + NUM_LINK_DIRS].iter().copied().sum();
                let w = self.wait[base..base + NUM_LINK_DIRS].iter().copied().sum();
                (b, w)
            })
            .collect()
    }

    /// The hottest directed link by service time.
    pub fn peak(&self) -> (Tile, LinkDir, Time) {
        let (slot, &t) =
            self.busy.iter().enumerate().max_by_key(|(_, t)| **t).expect("non-empty map");
        (Tile::from_index((slot / NUM_LINK_DIRS) as u8), LinkDir::ALL[slot % NUM_LINK_DIRS], t)
    }

    /// ASCII rendering of the mesh: one cell per tile (row y=3 on top,
    /// matching the paper's chip diagrams), each showing the busy
    /// occupancy of its five output links as a single digit 0–9
    /// normalized to the hottest link ('-' for exactly zero, '+' for
    /// the saturated maximum). Layout and digit rounding live in
    /// [`crate::grid`], shared with the congestion movie.
    pub fn render_ascii(&self, title: &str) -> String {
        let max = self.busy.iter().copied().max().unwrap_or(Time::ZERO);
        let mut out = String::new();
        let _ = writeln!(out, "link occupancy: {title}");
        let _ = writeln!(out, "cell = tile(x,y) E W N S eject  (busy 0-9, '-' = idle, '+' = max)");
        out.push_str(&crate::grid::render_mesh(|t, dir| {
            crate::grid::occupancy_digit(self.busy(t, dir), max)
        }));
        let (pt, pd, pb) = self.peak();
        let _ = writeln!(out, "peak link: tile {pt} dir {pd} busy {:.3}us", pb.as_us_f64());
        out
    }

    /// Long-form CSV: `tile,x,y,dir,busy_us,wait_us` per directed link.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("tile,x,y,dir,busy_us,wait_us\n");
        for t in 0..NUM_TILES {
            let tile = Tile::from_index(t as u8);
            for dir in LinkDir::ALL {
                let _ = writeln!(
                    out,
                    "{t},{},{},{},{:.6},{:.6}",
                    tile.x,
                    tile.y,
                    dir.short(),
                    self.busy(t, dir).as_us_f64(),
                    self.wait(t, dir).as_us_f64(),
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scc_hal::CoreId;

    fn ns(v: u64) -> Time {
        Time::from_ns(v)
    }

    fn router_wait(tile: u8, dir: LinkDir, arrival: u64, start: u64, end: u64) -> ObsEvent {
        ObsEvent::Wait {
            core: CoreId(0),
            resource: ResourceId::Router(tile),
            arrival: ns(arrival),
            start: ns(start),
            end: ns(end),
            link: Some(dir),
        }
    }

    #[test]
    fn events_and_slices_agree() {
        let events = vec![
            router_wait(0, LinkDir::East, 0, 10, 30),
            router_wait(0, LinkDir::East, 5, 30, 50),
            router_wait(1, LinkDir::Eject, 50, 50, 70),
            // Port waits never carry a link and must be ignored.
            ObsEvent::Wait {
                core: CoreId(0),
                resource: ResourceId::Port(0),
                arrival: ns(0),
                start: ns(1),
                end: ns(2),
                link: None,
            },
        ];
        let hm = LinkHeatmap::from_events(&events);
        assert_eq!(hm.busy(0, LinkDir::East), ns(40));
        assert_eq!(hm.wait(0, LinkDir::East), ns(35));
        assert_eq!(hm.busy(1, LinkDir::Eject), ns(20));
        assert_eq!(hm.busy(0, LinkDir::West), Time::ZERO);

        let mut busy = vec![Time::ZERO; NUM_TILES * NUM_LINK_DIRS];
        let mut wait = vec![Time::ZERO; NUM_TILES * NUM_LINK_DIRS];
        busy[LinkDir::East.index()] = ns(40);
        wait[LinkDir::East.index()] = ns(35);
        busy[NUM_LINK_DIRS + LinkDir::Eject.index()] = ns(20);
        assert_eq!(hm, LinkHeatmap::from_slices(&busy, &wait));
    }

    #[test]
    fn tile_totals_partition() {
        let hm = LinkHeatmap::from_events(&[
            router_wait(3, LinkDir::North, 0, 0, 10),
            router_wait(3, LinkDir::South, 0, 2, 12),
            router_wait(3, LinkDir::Eject, 0, 0, 5),
        ]);
        let totals = hm.tile_totals();
        assert_eq!(totals[3], (ns(25), ns(2)));
        assert_eq!(totals[0], (Time::ZERO, Time::ZERO));
    }

    #[test]
    fn ascii_render_marks_hot_and_idle_links() {
        let hm = LinkHeatmap::from_events(&[
            router_wait(0, LinkDir::East, 0, 0, 90),
            router_wait(7, LinkDir::Eject, 0, 0, 10),
        ]);
        let art = hm.render_ascii("test");
        assert!(art.contains("link occupancy: test"));
        // Hottest link saturates to '+'; the cold tile row is all '-'.
        assert!(art.contains("+----"), "{art}");
        assert!(art.contains("-----"), "{art}");
        assert!(art.contains("peak link: tile (0,0) dir E"), "{art}");
        // 4 tile rows * 2 lines + header(2) + floor + peak line.
        assert_eq!(art.lines().count(), 12, "{art}");
    }

    #[test]
    fn csv_has_one_row_per_directed_link() {
        let hm = LinkHeatmap::from_events(&[router_wait(5, LinkDir::West, 0, 1, 4)]);
        let csv = hm.to_csv();
        assert_eq!(csv.lines().count(), 1 + NUM_TILES * NUM_LINK_DIRS);
        assert!(csv.lines().any(|l| l.starts_with("5,5,0,W,0.003000,0.001000")), "{csv}");
    }
}
