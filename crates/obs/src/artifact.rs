//! Shared plumbing for the versioned sidecar artifacts.
//!
//! Every machine-readable bench artifact (`BENCH_faults.json`,
//! `BENCH_soak.json`, `BENCH_journeys.json`, `BENCH_engine.json`,
//! `BENCH_audit.json`, …) wears the same envelope: a `"version"` stamp
//! checked by [`crate::validate_artifact_version`], a `"bench"` name,
//! and usually a `"scenarios"` array. The writers and strict parsers
//! used to hand-roll that envelope (and the non-negative-integer /
//! picosecond field helpers) independently; this module is the one
//! copy they all share, so a new artifact cannot invent a subtly
//! different envelope.

use crate::conformance::{validate_artifact_version, ARTIFACT_VERSION};
use crate::report::Json;
use scc_hal::Time;

/// Start a versioned envelope: `{"version": N, "bench": <name>}`.
/// Callers chain `.set(...)` for their payload keys.
pub fn envelope(bench: &str) -> Json {
    Json::obj().set("version", Json::Int(ARTIFACT_VERSION)).set("bench", Json::Str(bench.into()))
}

/// The standard scenario-list envelope shared by the fault, soak,
/// journey, and audit artifacts.
pub fn scenario_envelope(bench: &str, scenarios: Vec<Json>) -> Json {
    envelope(bench).set("scenarios", Json::Arr(scenarios))
}

/// Open a scenario-list envelope: version gate first (so stale files
/// fail naming the mismatch), then the `"scenarios"` array.
pub fn open_scenarios(doc: &Json) -> Result<&[Json], String> {
    validate_artifact_version(doc)?;
    doc.get("scenarios")
        .and_then(Json::as_arr)
        .ok_or_else(|| "missing 'scenarios' array".to_string())
}

/// Integer picoseconds, the exactness contract of every artifact.
pub fn ps(t: Time) -> Json {
    Json::Int(t.as_ps() as i64)
}

/// An exact non-negative count.
pub fn count(v: u64) -> Json {
    Json::Int(v as i64)
}

/// Required non-negative integer field; negatives are parse errors,
/// never silent wraps.
pub fn req_u64(v: &Json, key: &str) -> Result<u64, String> {
    let raw = v.get(key).and_then(Json::as_i64).ok_or(format!("missing integer '{key}'"))?;
    u64::try_from(raw).map_err(|_| format!("key '{key}' must be non-negative, got {raw}"))
}

/// Required picosecond field (non-negative integer).
pub fn req_time(v: &Json, key: &str) -> Result<Time, String> {
    Ok(Time::from_ps(req_u64(v, key)?))
}

/// Required string field.
pub fn req_str(v: &Json, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string '{key}'"))
}

/// Required bool field.
pub fn req_bool(v: &Json, key: &str) -> Result<bool, String> {
    v.get(key).and_then(Json::as_bool).ok_or_else(|| format!("missing bool '{key}'"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_carries_version_and_bench() {
        let doc = scenario_envelope("demo", vec![Json::obj().set("id", Json::Str("a".into()))]);
        validate_artifact_version(&doc).unwrap();
        assert_eq!(doc.get("bench").and_then(Json::as_str), Some("demo"));
        assert_eq!(open_scenarios(&doc).unwrap().len(), 1);
    }

    #[test]
    fn open_rejects_stale_version_and_missing_scenarios() {
        let stale = scenario_envelope("demo", vec![]).set("version", Json::Int(999));
        assert!(open_scenarios(&stale).unwrap_err().contains("999"));
        let bare = envelope("demo");
        assert!(open_scenarios(&bare).unwrap_err().contains("scenarios"));
    }

    #[test]
    fn field_helpers_round_trip_and_reject_junk() {
        let doc = Json::obj()
            .set("n", count(7))
            .set("t", ps(Time::from_ns(3)))
            .set("s", Json::Str("x".into()))
            .set("b", Json::Bool(true));
        assert_eq!(req_u64(&doc, "n").unwrap(), 7);
        assert_eq!(req_time(&doc, "t").unwrap(), Time::from_ns(3));
        assert_eq!(req_str(&doc, "s").unwrap(), "x");
        assert!(req_bool(&doc, "b").unwrap());
        assert!(req_u64(&doc, "missing").unwrap_err().contains("missing"));
        let neg = Json::obj().set("n", Json::Int(-4));
        assert!(req_u64(&neg, "n").unwrap_err().contains("-4"));
    }
}
