//! SLO watchdogs: declarative per-protocol service-level objectives,
//! evaluated once per epoch from the streaming rollups.
//!
//! The soak workload runs thousands of back-to-back broadcasts; nobody
//! reads thousands of traces. The watchdog inverts the pipeline: every
//! epoch is reduced to an [`EpochRollup`] (exact per-epoch quantile,
//! makespan, recovery counters — a few words, not an event stream),
//! the [`SloPolicy`] checks each rollup against its budgets, and only
//! a *breach* triggers forensics — the caller freezes the flight
//! recorder's ring and dumps a Chrome trace + journey book for just
//! that window (see the `soak` experiment in `scc-bench`).
//!
//! Budgets are deliberately declarative data, not callbacks: the
//! policy serializes into `BENCH_soak.json` next to its verdicts, so
//! an artifact reader can re-derive every breach from the rollups.

use scc_hal::Time;
use std::fmt;

/// Which objective a breach violated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SloKind {
    /// The epoch's delivery-latency p99 exceeded its budget.
    DeliveryP99,
    /// The epoch's makespan exceeded its budget.
    Makespan,
    /// The epoch performed recoveries where the policy expected none.
    Recovery,
}

impl SloKind {
    /// Every kind, in rendering order.
    pub const ALL: [SloKind; 3] = [SloKind::DeliveryP99, SloKind::Makespan, SloKind::Recovery];

    pub const fn name(&self) -> &'static str {
        match self {
            SloKind::DeliveryP99 => "delivery-p99",
            SloKind::Makespan => "makespan",
            SloKind::Recovery => "recovery",
        }
    }

    pub fn from_name(name: &str) -> Option<SloKind> {
        SloKind::ALL.into_iter().find(|k| k.name() == name)
    }
}

impl fmt::Display for SloKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The per-epoch telemetry one broadcast reduces to: what the sketches
/// and the watchdog consume instead of the event stream.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EpochRollup {
    pub epoch: u32,
    /// Exact nearest-rank p99 over this epoch's per-destination
    /// delivered latencies (one epoch is few samples — exactness is
    /// free here; the *cross-epoch* quantiles are the sketch's job).
    pub p99: Time,
    pub makespan: Time,
    pub timeouts: u64,
    pub recoveries: u64,
    /// Faults the plan injected against this epoch's operations.
    pub faults: u64,
}

/// Declarative budgets for one protocol under soak.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SloPolicy {
    /// Delivery-latency p99 budget per epoch; `None` disables.
    pub p99_budget: Option<Time>,
    /// Makespan budget per epoch; `None` disables.
    pub makespan_budget: Option<Time>,
    /// Expect zero recoveries (healthy traffic must never need the
    /// reliability layer's repair path).
    pub zero_recoveries: bool,
}

impl SloPolicy {
    /// Evaluate one epoch. Empty vec = the epoch met every objective.
    pub fn check(&self, e: &EpochRollup) -> Vec<SloBreach> {
        let mut out = Vec::new();
        if let Some(budget) = self.p99_budget {
            if e.p99 > budget {
                out.push(SloBreach {
                    epoch: e.epoch,
                    kind: SloKind::DeliveryP99,
                    observed: e.p99.as_ps(),
                    budget: budget.as_ps(),
                });
            }
        }
        if let Some(budget) = self.makespan_budget {
            if e.makespan > budget {
                out.push(SloBreach {
                    epoch: e.epoch,
                    kind: SloKind::Makespan,
                    observed: e.makespan.as_ps(),
                    budget: budget.as_ps(),
                });
            }
        }
        if self.zero_recoveries && e.recoveries > 0 {
            out.push(SloBreach {
                epoch: e.epoch,
                kind: SloKind::Recovery,
                observed: e.recoveries,
                budget: 0,
            });
        }
        out
    }
}

/// One violated objective in one epoch. `observed`/`budget` are
/// picoseconds for the time objectives and plain counts for
/// [`SloKind::Recovery`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SloBreach {
    pub epoch: u32,
    pub kind: SloKind,
    pub observed: u64,
    pub budget: u64,
}

impl SloBreach {
    /// Human one-liner for digests and dump inventories.
    pub fn describe(&self) -> String {
        match self.kind {
            SloKind::Recovery => {
                format!("epoch {}: {} recoveries (expected 0)", self.epoch, self.observed)
            }
            kind => format!(
                "epoch {}: {} {:.3} us over budget {:.3} us",
                self.epoch,
                kind,
                Time::from_ps(self.observed).as_us_f64(),
                Time::from_ps(self.budget).as_us_f64(),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: u64) -> Time {
        Time::US * v
    }

    fn policy() -> SloPolicy {
        SloPolicy {
            p99_budget: Some(us(100)),
            makespan_budget: Some(us(200)),
            zero_recoveries: true,
        }
    }

    #[test]
    fn healthy_epoch_passes() {
        let e = EpochRollup { epoch: 3, p99: us(50), makespan: us(80), ..Default::default() };
        assert!(policy().check(&e).is_empty());
    }

    #[test]
    fn each_objective_breaches_independently() {
        let e = EpochRollup {
            epoch: 7,
            p99: us(150),
            makespan: us(300),
            recoveries: 2,
            ..Default::default()
        };
        let breaches = policy().check(&e);
        let kinds: Vec<SloKind> = breaches.iter().map(|b| b.kind).collect();
        assert_eq!(kinds, vec![SloKind::DeliveryP99, SloKind::Makespan, SloKind::Recovery]);
        assert!(breaches.iter().all(|b| b.epoch == 7));
    }

    #[test]
    fn budgets_are_inclusive() {
        // Exactly on budget is within SLO; one ps over is not.
        let p = policy();
        let on = EpochRollup { epoch: 0, p99: us(100), makespan: us(200), ..Default::default() };
        assert!(p.check(&on).is_empty());
        let over = EpochRollup {
            epoch: 0,
            p99: us(100) + Time::from_ps(1),
            makespan: us(200),
            ..Default::default()
        };
        assert_eq!(p.check(&over).len(), 1);
    }

    #[test]
    fn disabled_objectives_never_fire() {
        let p = SloPolicy { p99_budget: None, makespan_budget: None, zero_recoveries: false };
        let e = EpochRollup {
            epoch: 1,
            p99: us(10_000),
            makespan: us(10_000),
            recoveries: 99,
            ..Default::default()
        };
        assert!(p.check(&e).is_empty());
    }

    #[test]
    fn kind_names_round_trip() {
        for k in SloKind::ALL {
            assert_eq!(SloKind::from_name(k.name()), Some(k));
        }
        assert_eq!(SloKind::from_name("nope"), None);
    }

    #[test]
    fn describe_names_the_objective() {
        let b = SloBreach {
            epoch: 12,
            kind: SloKind::DeliveryP99,
            observed: 2_000_000,
            budget: 1_000_000,
        };
        let s = b.describe();
        assert!(s.contains("epoch 12"), "{s}");
        assert!(s.contains("delivery-p99"), "{s}");
    }
}
