//! Happens-before graphs over recorded event streams.
//!
//! The paper's OC-Bcast correctness argument is a causal chain: a
//! parent's MPB commit happens-before the child's flag wake, which
//! happens-before the child's payload get and its own notifications.
//! This module makes that chain explicit: [`CausalGraph::build`] turns
//! one [`ObsEvent`] stream into a DAG whose nodes are the events and
//! whose edges are the four happens-before sources the simulator
//! guarantees —
//!
//! * **program order** per core (every event attributed to a core, in
//!   stream order — except [`ObsEvent::Wait`] bookings, which are
//!   recorded at submission but describe *future* resource service,
//!   and [`ObsEvent::Handoff`] marks, which are scheduler artifacts
//!   concurrent with whatever the yielding core still has in flight);
//! * **wake causality**: the committing [`ObsEvent::MpbWrite`] (or,
//!   for streams predating the commit events, the writer's latest
//!   event) happens-before the [`ObsEvent::Wake`] it caused;
//! * **baton handoffs**: [`ObsEvent::Handoff`] happens-before the
//!   receiving core's next program event (the receiver resumes at the
//!   handoff instant, so everything it records next is at or after
//!   it);
//! * **service order** per contended resource: bookings chained by
//!   service start (the calendar may serve a late arrival in an early
//!   gap, so this is *service* order, not arrival order);
//!
//! plus delivery-window open→close edges. The audit layer
//! ([`crate::audit`]) runs its invariant checkers over this graph; the
//! graph itself offers the two structural checks every stream must
//! pass regardless of protocol: acyclicity and edge time-consistency.

use crate::event::ObsEvent;
use scc_hal::{CoreId, Time};
use std::collections::HashMap;

/// Which happens-before source produced an edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EdgeKind {
    /// Per-core program order.
    Program,
    /// Commit → wake causality (writer's write to the woken core).
    Wake,
    /// Baton handoff → receiver's next event.
    Handoff,
    /// Per-resource service order (chained by service start).
    Service,
    /// Delivery-window open → close.
    Window,
}

impl EdgeKind {
    pub const fn name(&self) -> &'static str {
        match self {
            EdgeKind::Program => "program",
            EdgeKind::Wake => "wake",
            EdgeKind::Handoff => "handoff",
            EdgeKind::Service => "service",
            EdgeKind::Window => "window",
        }
    }
}

/// One happens-before edge between two event indices.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Edge {
    pub from: usize,
    pub to: usize,
    pub kind: EdgeKind,
}

/// The core whose program order an event belongs to.
///
/// `MpbWrite` belongs to its *writer* (the commit is the tail end of
/// the writer's op); `Handoff` to the core handing the baton away (the
/// receiving side gets a [`EdgeKind::Handoff`] edge instead).
pub fn actor(ev: &ObsEvent) -> CoreId {
    match *ev {
        ObsEvent::Op { core, .. }
        | ObsEvent::Wait { core, .. }
        | ObsEvent::Park { core, .. }
        | ObsEvent::Wake { core, .. }
        | ObsEvent::Compute { core, .. }
        | ObsEvent::SpanBegin { core, .. }
        | ObsEvent::SpanEnd { core, .. }
        | ObsEvent::DeliveryBegin { core, .. }
        | ObsEvent::DeliveryEnd { core, .. }
        | ObsEvent::FlagSample { core, .. }
        | ObsEvent::Finish { core, .. }
        | ObsEvent::Fault { core, .. } => core,
        ObsEvent::MpbWrite { writer, .. } => writer,
        ObsEvent::Handoff { from, .. } => from,
    }
}

/// A happens-before DAG over one recorded stream. Nodes are indices
/// into the borrowed event slice.
#[derive(Debug)]
pub struct CausalGraph<'a> {
    pub events: &'a [ObsEvent],
    pub edges: Vec<Edge>,
}

impl<'a> CausalGraph<'a> {
    /// Construct the graph from a recorded stream (full run or
    /// flight-recorder window — a truncated prefix only loses edges
    /// into the pre-window past, never gains spurious ones).
    pub fn build(events: &'a [ObsEvent]) -> CausalGraph<'a> {
        let mut edges = Vec::with_capacity(events.len() * 2);
        // Last event index per core's program order.
        let mut prev: HashMap<u8, usize> = HashMap::new();
        // Handoff waiting for the receiver's next event.
        let mut pending_handoff: HashMap<u8, usize> = HashMap::new();
        // Latest MpbWrite index per writer (wake provenance).
        let mut last_commit: HashMap<u8, usize> = HashMap::new();
        // Per-resource bookings: (service start, index).
        let mut service: HashMap<crate::event::ResourceId, Vec<(Time, usize)>> = HashMap::new();
        // Open delivery windows.
        let mut open_window: HashMap<(u8, u32), usize> = HashMap::new();

        for (i, ev) in events.iter().enumerate() {
            match *ev {
                // Bookings describe future service (the calendar may
                // even serve a late arrival in an early gap), and
                // handoffs are concurrent with the yielding core's
                // in-flight work — neither joins a program chain.
                ObsEvent::Wait { resource, start, .. } => {
                    service.entry(resource).or_default().push((start, i));
                    continue;
                }
                ObsEvent::Handoff { to, .. } => {
                    pending_handoff.insert(to.0, i);
                    continue;
                }
                _ => {}
            }
            let a = actor(ev);
            if let Some(&p) = prev.get(&a.0) {
                edges.push(Edge { from: p, to: i, kind: EdgeKind::Program });
            }
            prev.insert(a.0, i);
            if let Some(h) = pending_handoff.remove(&a.0) {
                edges.push(Edge { from: h, to: i, kind: EdgeKind::Handoff });
            }
            match *ev {
                ObsEvent::MpbWrite { writer, .. } => {
                    last_commit.insert(writer.0, i);
                }
                ObsEvent::Wake { core, line, at, writer } if writer != core => {
                    // Prefer the committing write; fall back to the
                    // writer's latest event so truncated or legacy
                    // streams still get a causal edge when one
                    // exists (never a later-instant one, which
                    // would fabricate a time violation).
                    let commit = last_commit.get(&writer.0).copied().filter(|&c| {
                        matches!(events[c], ObsEvent::MpbWrite { owner, line: l, lines, at: w_at, .. }
                            if w_at == at && owner == core && (l..l + lines).contains(&line))
                    });
                    let fallback =
                        || prev.get(&writer.0).copied().filter(|&p| events[p].at() <= at);
                    if let Some(src) = commit.or_else(fallback) {
                        if src != i {
                            edges.push(Edge { from: src, to: i, kind: EdgeKind::Wake });
                        }
                    }
                }
                ObsEvent::DeliveryBegin { core, epoch, .. } => {
                    open_window.insert((core.0, epoch), i);
                }
                ObsEvent::DeliveryEnd { core, epoch, .. } => {
                    if let Some(b) = open_window.remove(&(core.0, epoch)) {
                        edges.push(Edge { from: b, to: i, kind: EdgeKind::Window });
                    }
                }
                _ => {}
            }
        }

        // Service order per resource: bookings chained by service start
        // (ties broken by stream index, which is deterministic).
        let mut resources: Vec<_> = service.into_iter().collect();
        resources.sort_by_key(|(r, _)| *r);
        for (_, mut bookings) in resources {
            bookings.sort_by_key(|&(start, i)| (start, i));
            for w in bookings.windows(2) {
                edges.push(Edge { from: w[0].1, to: w[1].1, kind: EdgeKind::Service });
            }
        }

        CausalGraph { events, edges }
    }

    /// Kahn's algorithm. `Ok(())` when every node topologically sorts;
    /// otherwise the indices of events stuck on a cycle.
    pub fn acyclic(&self) -> Result<(), Vec<usize>> {
        let n = self.events.len();
        let mut indegree = vec![0usize; n];
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for e in &self.edges {
            adj[e.from].push(e.to);
            indegree[e.to] += 1;
        }
        let mut stack: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut seen = 0usize;
        while let Some(u) = stack.pop() {
            seen += 1;
            for &v in &adj[u] {
                indegree[v] -= 1;
                if indegree[v] == 0 {
                    stack.push(v);
                }
            }
        }
        if seen == n {
            Ok(())
        } else {
            Err((0..n).filter(|&i| indegree[i] > 0).collect())
        }
    }

    /// Edges that run backwards in virtual time. For
    /// [`EdgeKind::Service`] the constraint is disjointness — the
    /// predecessor's service must *end* before the successor's starts;
    /// every other kind orders the events' own instants.
    pub fn time_violations(&self) -> Vec<Edge> {
        self.edges
            .iter()
            .copied()
            .filter(|e| {
                let (from_t, to_t) = match e.kind {
                    EdgeKind::Service => {
                        (service_end(&self.events[e.from]), service_start(&self.events[e.to]))
                    }
                    _ => (self.events[e.from].at(), self.events[e.to].at()),
                };
                from_t > to_t
            })
            .collect()
    }
}

fn service_start(ev: &ObsEvent) -> Time {
    match *ev {
        ObsEvent::Wait { start, .. } => start,
        _ => ev.at(),
    }
}

fn service_end(ev: &ObsEvent) -> Time {
    match *ev {
        ObsEvent::Wait { end, .. } => end,
        _ => ev.at(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ResourceId;

    fn ns(v: u64) -> Time {
        Time::from_ns(v)
    }

    fn op(core: u8, start: u64, end: u64) -> ObsEvent {
        ObsEvent::Op {
            core: CoreId(core),
            kind: crate::event::OpKind::FlagPut,
            lines: 1,
            start: ns(start),
            end: ns(end),
            msg: None,
        }
    }

    #[test]
    fn program_order_chains_per_core() {
        let events = vec![op(0, 0, 10), op(1, 0, 5), op(0, 10, 20), op(1, 5, 12)];
        let g = CausalGraph::build(&events);
        let prog: Vec<(usize, usize)> = g
            .edges
            .iter()
            .filter(|e| e.kind == EdgeKind::Program)
            .map(|e| (e.from, e.to))
            .collect();
        assert_eq!(prog, vec![(0, 2), (1, 3)]);
        g.acyclic().unwrap();
        assert!(g.time_violations().is_empty());
    }

    #[test]
    fn wake_edge_prefers_covering_commit() {
        let events = vec![
            ObsEvent::Park { core: CoreId(1), line: 3, at: ns(0) },
            op(0, 0, 10),
            ObsEvent::MpbWrite {
                owner: CoreId(1),
                line: 3,
                lines: 1,
                writer: CoreId(0),
                value: Some(7),
                at: ns(10),
            },
            ObsEvent::Wake { core: CoreId(1), line: 3, at: ns(10), writer: CoreId(0) },
        ];
        let g = CausalGraph::build(&events);
        let wake: Vec<&Edge> = g.edges.iter().filter(|e| e.kind == EdgeKind::Wake).collect();
        assert_eq!(wake.len(), 1);
        assert_eq!((wake[0].from, wake[0].to), (2, 3));
    }

    #[test]
    fn service_edges_follow_service_start_not_arrival() {
        // Booking B arrived later but was served first (calendar gap).
        let events = vec![
            ObsEvent::Wait {
                core: CoreId(0),
                resource: ResourceId::Port(2),
                arrival: ns(0),
                start: ns(20),
                end: ns(30),
                link: None,
            },
            ObsEvent::Wait {
                core: CoreId(1),
                resource: ResourceId::Port(2),
                arrival: ns(5),
                start: ns(5),
                end: ns(15),
                link: None,
            },
        ];
        let g = CausalGraph::build(&events);
        let svc: Vec<&Edge> = g.edges.iter().filter(|e| e.kind == EdgeKind::Service).collect();
        assert_eq!(svc.len(), 1);
        assert_eq!((svc[0].from, svc[0].to), (1, 0));
        assert!(g.time_violations().is_empty());
    }

    #[test]
    fn overlapping_service_intervals_violate_time() {
        let mk = |core: u8, arrival: u64, start: u64, end: u64| ObsEvent::Wait {
            core: CoreId(core),
            resource: ResourceId::Router(4),
            arrival: ns(arrival),
            start: ns(start),
            end: ns(end),
            link: None,
        };
        let events = vec![mk(0, 0, 0, 20), mk(1, 1, 10, 25)];
        let g = CausalGraph::build(&events);
        let bad = g.time_violations();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].kind, EdgeKind::Service);
    }

    #[test]
    fn handoff_reaches_receivers_next_event() {
        let events = vec![
            op(0, 0, 10),
            ObsEvent::Handoff { from: CoreId(0), to: CoreId(1), at: ns(10) },
            op(1, 10, 20),
        ];
        let g = CausalGraph::build(&events);
        assert!(g.edges.iter().any(|e| e.kind == EdgeKind::Handoff && e.from == 1 && e.to == 2));
    }

    #[test]
    fn empty_stream_is_trivially_acyclic() {
        let g = CausalGraph::build(&[]);
        g.acyclic().unwrap();
        assert!(g.edges.is_empty());
    }
}
