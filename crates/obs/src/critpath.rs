//! Critical-path extraction: walk the event dependency graph backwards
//! from the last core to finish, and attribute every picosecond of the
//! end-to-end latency to op service, queueing (per resource class),
//! computation, or idling.
//!
//! The walk exploits two structural facts about the engine's event
//! stream:
//!
//! 1. A core's timeline is an alternating sequence of activities (ops,
//!    computes) and gaps; a gap exists only because the core was parked
//!    on a flag (or had genuinely finished earlier work and was waiting
//!    to be scheduled, which the baton engine never does — cores run the
//!    moment their grant time arrives).
//! 2. A [`ObsEvent::Wake`] is recorded at the *completion time of the
//!    writer's op*. So when the backward walk hits a gap on core `c`
//!    ending at time `t`, the latest `Wake { core: c, at <= t }` names
//!    the op — on the writer core — whose completion the gap was waiting
//!    for, and the walk continues on that core at `at` with no hole in
//!    coverage.
//!
//! Spurious wakes (a write to a watched line that does not satisfy the
//! waiting predicate re-parks the core after one re-poll) are handled
//! naturally: the re-poll is an op on the waiter's own timeline, and
//! only the last wake before the successful re-poll is followed.

use crate::event::{ObsEvent, OpKind, ResourceId};
use scc_hal::{CoreId, Time};
use std::fmt;
use std::fmt::Write as _;

/// Why no critical path could be extracted. Degenerate streams are a
/// normal consequence of partial recordings (a crashed run, a
/// span-only annotation pass), so they are typed errors rather than
/// panics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CritPathError {
    /// The stream had no events at all.
    EmptyStream,
    /// The stream had events (spans, parks, handoffs…) but no timed
    /// activity and no `Finish` — there is no instant to walk back
    /// from.
    NoTimedActivity,
}

impl fmt::Display for CritPathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CritPathError::EmptyStream => write!(f, "event stream is empty"),
            CritPathError::NoTimedActivity => {
                write!(f, "event stream has no timed activity (no op, compute, or finish)")
            }
        }
    }
}

impl std::error::Error for CritPathError {}

/// What a path segment was doing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SegmentKind {
    /// A timed RMA operation (service + any queueing inside it).
    Op(OpKind),
    /// Pure local computation.
    Compute,
    /// The core was on the path but doing nothing attributable — the
    /// defensive fallback when a gap has no recorded wake. Zero on
    /// deadlock-free runs.
    Idle,
}

/// One contiguous piece of the critical path, on a single core.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PathSegment {
    pub core: CoreId,
    pub kind: SegmentKind,
    pub start: Time,
    pub end: Time,
    /// Queueing time at MPB ports inside `[start, end]`.
    pub port_wait: Time,
    /// Queueing time inside mesh routers.
    pub router_wait: Time,
    /// Queueing time at memory controllers.
    pub mc_wait: Time,
}

impl PathSegment {
    pub fn duration(&self) -> Time {
        self.end - self.start
    }

    /// Time actually spent being served (duration minus queueing).
    pub fn service(&self) -> Time {
        self.duration()
            .saturating_sub(self.port_wait)
            .saturating_sub(self.router_wait)
            .saturating_sub(self.mc_wait)
    }
}

/// Where the end-to-end latency went, summed over the path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Breakdown {
    pub op_service: Time,
    pub port_wait: Time,
    pub router_wait: Time,
    pub mc_wait: Time,
    pub compute: Time,
    pub idle: Time,
}

impl Breakdown {
    pub fn total(&self) -> Time {
        self.op_service
            + self.port_wait
            + self.router_wait
            + self.mc_wait
            + self.compute
            + self.idle
    }
}

/// The extracted path: segments in chronological order, contiguous and
/// non-overlapping, covering `[start, end]` exactly.
#[derive(Clone, Debug)]
pub struct CriticalPath {
    pub segments: Vec<PathSegment>,
    pub start: Time,
    pub end: Time,
}

impl CriticalPath {
    pub fn total(&self) -> Time {
        self.end - self.start
    }

    pub fn breakdown(&self) -> Breakdown {
        let mut b = Breakdown::default();
        for s in &self.segments {
            b.port_wait += s.port_wait;
            b.router_wait += s.router_wait;
            b.mc_wait += s.mc_wait;
            match s.kind {
                SegmentKind::Op(_) => b.op_service += s.service(),
                SegmentKind::Compute => b.compute += s.service(),
                SegmentKind::Idle => b.idle += s.service(),
            }
        }
        b
    }

    /// Human-readable report: the breakdown followed by the segment
    /// chain (merging runs of consecutive same-kind segments on the
    /// same core so long pipelines stay readable).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let b = self.breakdown();
        let total = self.total();
        let pct = |t: Time| {
            if total == Time::ZERO {
                0.0
            } else {
                100.0 * t.as_ps() as f64 / total.as_ps() as f64
            }
        };
        let _ = writeln!(out, "critical path: {} over {} segments", total, self.segments.len());
        for (label, t) in [
            ("op service", b.op_service),
            ("port wait", b.port_wait),
            ("router wait", b.router_wait),
            ("mc wait", b.mc_wait),
            ("compute", b.compute),
            ("idle", b.idle),
        ] {
            let _ = writeln!(out, "  {label:<12} {:>12}  {:5.1}%", format!("{t}"), pct(t));
        }
        let _ = writeln!(out, "segments (chronological):");
        let mut i = 0;
        while i < self.segments.len() {
            let s = self.segments[i];
            // Merge a run of equal-kind segments on the same core.
            let mut j = i + 1;
            let (mut end, mut pw, mut rw, mut mw) = (s.end, s.port_wait, s.router_wait, s.mc_wait);
            while j < self.segments.len() {
                let n = self.segments[j];
                if n.core != s.core || n.kind != s.kind {
                    break;
                }
                end = n.end;
                pw += n.port_wait;
                rw += n.router_wait;
                mw += n.mc_wait;
                j += 1;
            }
            let kind = match s.kind {
                SegmentKind::Op(k) => k.short(),
                SegmentKind::Compute => "COMP",
                SegmentKind::Idle => "IDLE",
            };
            let count = j - i;
            let _ = writeln!(
                out,
                "  {} {kind:<4} x{count:<4} [{} .. {}]  dur {}  waits p={pw} r={rw} m={mw}",
                s.core,
                s.start,
                end,
                end - s.start
            );
            i = j;
        }
        out
    }
}

/// Per-core activity used by the walk.
#[derive(Clone, Copy, Debug)]
struct Activity {
    kind: SegmentKind,
    start: Time,
    end: Time,
    port_wait: Time,
    router_wait: Time,
    mc_wait: Time,
}

/// Extract the critical path from a recorded event stream.
///
/// Degenerate streams come back as a typed [`CritPathError`]: empty
/// streams, and streams with no timed activity to anchor the walk
/// (span-only traces without a `Finish`). A stream that *does* end in
/// a known instant but has no op coverage (e.g. spans + `Finish` only)
/// yields a pure-idle path rather than an error — coverage of
/// `[0, end]` is still exact.
pub fn critical_path(events: &[ObsEvent]) -> Result<CriticalPath, CritPathError> {
    let num_cores = events
        .iter()
        .map(|e| match *e {
            ObsEvent::Op { core, .. }
            | ObsEvent::Wait { core, .. }
            | ObsEvent::Park { core, .. }
            | ObsEvent::Compute { core, .. }
            | ObsEvent::SpanBegin { core, .. }
            | ObsEvent::SpanEnd { core, .. }
            | ObsEvent::DeliveryBegin { core, .. }
            | ObsEvent::DeliveryEnd { core, .. }
            | ObsEvent::Finish { core, .. }
            | ObsEvent::FlagSample { core, .. }
            | ObsEvent::Fault { core, .. } => core.index() + 1,
            // A wake's `writer` is a core the walk may jump to, so it
            // must size the tables even if the writer logged nothing
            // else (malformed or truncated streams must not panic).
            ObsEvent::Wake { core, writer, .. } => core.index().max(writer.index()) + 1,
            ObsEvent::MpbWrite { owner, writer, .. } => owner.index().max(writer.index()) + 1,
            ObsEvent::Handoff { from, to, .. } => from.index().max(to.index()) + 1,
        })
        .max()
        .ok_or(CritPathError::EmptyStream)?;

    let mut acts: Vec<Vec<Activity>> = vec![Vec::new(); num_cores];
    let mut waits: Vec<Vec<(Time, ResourceId, Time)>> = vec![Vec::new(); num_cores];
    let mut wakes: Vec<Vec<(Time, CoreId)>> = vec![Vec::new(); num_cores];
    let mut path_end = Time::ZERO;
    let mut end_core: Option<CoreId> = None;

    for ev in events {
        match *ev {
            ObsEvent::Op { core, kind, start, end, .. } => {
                acts[core.index()].push(Activity {
                    kind: SegmentKind::Op(kind),
                    start,
                    end,
                    port_wait: Time::ZERO,
                    router_wait: Time::ZERO,
                    mc_wait: Time::ZERO,
                });
            }
            ObsEvent::Compute { core, start, end } => {
                acts[core.index()].push(Activity {
                    kind: SegmentKind::Compute,
                    start,
                    end,
                    port_wait: Time::ZERO,
                    router_wait: Time::ZERO,
                    mc_wait: Time::ZERO,
                });
            }
            ObsEvent::Wait { core, resource, arrival, start, .. } if start > arrival => {
                waits[core.index()].push((arrival, resource, start - arrival));
            }
            ObsEvent::Wake { core, at, writer, .. } => {
                wakes[core.index()].push((at, writer));
            }
            ObsEvent::Finish { core, at } if at >= path_end => {
                path_end = at;
                end_core = Some(core);
            }
            _ => {}
        }
    }

    // Runs without Finish events (partial streams): fall back to the
    // last op/compute completion.
    if end_core.is_none() {
        for (c, a) in acts.iter().enumerate() {
            if let Some(last) = a.last() {
                if last.end >= path_end {
                    path_end = last.end;
                    end_core = Some(CoreId(c as u8));
                }
            }
        }
    }
    let mut core = end_core.ok_or(CritPathError::NoTimedActivity)?;

    // Per-core activities arrive in completion order, which on a single
    // core is also start order; sort defensively anyway, then fold each
    // recorded queue wait into the activity whose interval contains its
    // arrival (waits are recorded while their op is being simulated, so
    // containment is exact).
    for c in 0..num_cores {
        acts[c].sort_by_key(|a| (a.start, a.end));
        waits[c].sort_by_key(|w| w.0);
        let mut ai = 0;
        for &(arrival, resource, wait) in &waits[c] {
            while ai < acts[c].len() && acts[c][ai].end <= arrival {
                ai += 1;
            }
            if let Some(a) = acts[c].get_mut(ai) {
                if a.start <= arrival {
                    match resource {
                        ResourceId::Port(_) => a.port_wait += wait,
                        ResourceId::Router(_) => a.router_wait += wait,
                        ResourceId::Mc(_) => a.mc_wait += wait,
                    }
                }
            }
        }
        wakes[c].sort_by_key(|w| w.0);
    }

    let mut segments: Vec<PathSegment> = Vec::new();
    let mut t = path_end;
    // Each iteration either lowers `t` or switches core at a wake whose
    // chain is finite, so the walk terminates; the cap is a backstop
    // against malformed streams.
    let mut fuel = events.len() * 4 + 16;

    while t > Time::ZERO {
        fuel -= 1;
        if fuel == 0 {
            break;
        }
        let ca = &acts[core.index()];
        // Last activity ending at or before `t`.
        let idx = ca.partition_point(|a| a.end <= t);
        let prev = idx.checked_sub(1).map(|i| ca[i]);
        match prev {
            Some(a) if a.end == t => {
                segments.push(PathSegment {
                    core,
                    kind: a.kind,
                    start: a.start,
                    end: a.end,
                    port_wait: a.port_wait,
                    router_wait: a.router_wait,
                    mc_wait: a.mc_wait,
                });
                t = a.start;
            }
            _ => {
                // Gap: `t` is past the end of the previous activity (or
                // before any activity). Look for the wake that ended it.
                let gap_floor = prev.map_or(Time::ZERO, |a| a.end);
                let wk = &wakes[core.index()];
                let wi = wk.partition_point(|w| w.0 <= t);
                let wake = wi.checked_sub(1).map(|i| wk[i]).filter(|w| w.0 > gap_floor);
                match wake {
                    Some((at, writer)) => {
                        if at < t {
                            // The waiter sat runnable between the wake
                            // and `t` — shouldn't happen in the baton
                            // engine, but account for it rather than
                            // losing coverage.
                            segments.push(idle(core, at, t));
                        }
                        core = writer;
                        t = at;
                    }
                    None => {
                        segments.push(idle(core, gap_floor, t));
                        t = gap_floor;
                    }
                }
            }
        }
    }

    segments.reverse();
    let start = segments.first().map_or(path_end, |s| s.start);
    Ok(CriticalPath { segments, start, end: path_end })
}

fn idle(core: CoreId, start: Time, end: Time) -> PathSegment {
    PathSegment {
        core,
        kind: SegmentKind::Idle,
        start,
        end,
        port_wait: Time::ZERO,
        router_wait: Time::ZERO,
        mc_wait: Time::ZERO,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(v: u64) -> Time {
        Time::from_ns(v)
    }

    fn op(core: u8, kind: OpKind, start: u64, end: u64) -> ObsEvent {
        ObsEvent::Op {
            core: CoreId(core),
            kind,
            lines: 1,
            start: ns(start),
            end: ns(end),
            msg: None,
        }
    }

    /// Core 0: put [0,100], flag [100,130]. Core 1: poll [0,10], parks,
    /// woken at 130, re-poll [130,140], finish. Path must chain through
    /// the wake onto core 0 and cover [0,140] exactly.
    #[test]
    fn two_core_chain_is_contiguous() {
        let events = vec![
            op(1, OpKind::FlagRead, 0, 10),
            ObsEvent::Park { core: CoreId(1), line: 0, at: ns(10) },
            op(0, OpKind::PutFromMem, 0, 100),
            op(0, OpKind::FlagPut, 100, 130),
            ObsEvent::Wake { core: CoreId(1), line: 0, at: ns(130), writer: CoreId(0) },
            op(1, OpKind::FlagRead, 130, 140),
            ObsEvent::Finish { core: CoreId(0), at: ns(130) },
            ObsEvent::Finish { core: CoreId(1), at: ns(140) },
        ];
        let cp = critical_path(&events).unwrap();
        assert_eq!(cp.start, Time::ZERO);
        assert_eq!(cp.end, ns(140));
        // Contiguous, non-overlapping coverage.
        let mut cursor = cp.start;
        for s in &cp.segments {
            assert_eq!(s.start, cursor, "{cp:?}");
            assert!(s.end > s.start);
            cursor = s.end;
        }
        assert_eq!(cursor, cp.end);
        // The chain is: C0 put, C0 flag, C1 re-poll. C1's initial poll
        // is NOT on the path (it is covered by C0's put).
        let kinds: Vec<(u8, SegmentKind)> =
            cp.segments.iter().map(|s| (s.core.0, s.kind)).collect();
        assert_eq!(
            kinds,
            vec![
                (0, SegmentKind::Op(OpKind::PutFromMem)),
                (0, SegmentKind::Op(OpKind::FlagPut)),
                (1, SegmentKind::Op(OpKind::FlagRead)),
            ]
        );
        assert_eq!(cp.breakdown().total(), cp.total());
        assert_eq!(cp.breakdown().idle, Time::ZERO);
    }

    /// Queue waits recorded inside an op's interval are attributed to
    /// that op's segment.
    #[test]
    fn waits_attributed_by_containment() {
        let events = vec![
            op(0, OpKind::PutFromMpb, 0, 100),
            ObsEvent::Wait {
                core: CoreId(0),
                resource: ResourceId::Port(3),
                arrival: ns(20),
                start: ns(45),
                end: ns(55),
                link: None,
            },
            ObsEvent::Wait {
                core: CoreId(0),
                resource: ResourceId::Router(1),
                arrival: ns(60),
                start: ns(62),
                end: ns(63),
                link: None,
            },
            ObsEvent::Finish { core: CoreId(0), at: ns(100) },
        ];
        let cp = critical_path(&events).unwrap();
        assert_eq!(cp.segments.len(), 1);
        let s = cp.segments[0];
        assert_eq!(s.port_wait, ns(25));
        assert_eq!(s.router_wait, ns(2));
        assert_eq!(s.service(), ns(100 - 25 - 2));
        let b = cp.breakdown();
        assert_eq!(b.port_wait, ns(25));
        assert_eq!(b.op_service + b.port_wait + b.router_wait, cp.total());
    }

    /// A gap with no wake (e.g. a core that idles before its first op)
    /// becomes an explicit Idle segment — coverage never has holes.
    #[test]
    fn unexplained_gap_becomes_idle() {
        let events =
            vec![op(0, OpKind::GetToMem, 50, 90), ObsEvent::Finish { core: CoreId(0), at: ns(90) }];
        let cp = critical_path(&events).unwrap();
        assert_eq!(cp.segments.len(), 2);
        assert_eq!(cp.segments[0].kind, SegmentKind::Idle);
        assert_eq!(cp.segments[0].start, Time::ZERO);
        assert_eq!(cp.segments[0].end, ns(50));
        assert_eq!(cp.breakdown().idle, ns(50));
        assert_eq!(cp.total(), ns(90));
    }

    /// Spurious wake: the waiter re-polls, re-parks, and only the final
    /// wake leads anywhere. The walk must follow the last wake before
    /// the successful re-poll.
    #[test]
    fn spurious_wakes_follow_last_wake() {
        let events = vec![
            op(1, OpKind::FlagRead, 0, 10),
            ObsEvent::Park { core: CoreId(1), line: 0, at: ns(10) },
            op(0, OpKind::FlagPut, 10, 40),
            ObsEvent::Wake { core: CoreId(1), line: 0, at: ns(40), writer: CoreId(0) },
            op(1, OpKind::FlagRead, 40, 50), // value not satisfying: re-park
            ObsEvent::Park { core: CoreId(1), line: 0, at: ns(50) },
            op(2, OpKind::FlagPut, 30, 80),
            ObsEvent::Wake { core: CoreId(1), line: 0, at: ns(80), writer: CoreId(2) },
            op(1, OpKind::FlagRead, 80, 90),
            ObsEvent::Finish { core: CoreId(1), at: ns(90) },
        ];
        let cp = critical_path(&events).unwrap();
        // Path tail: C2's flag put [30,80] then C1 re-poll [80,90].
        let tail: Vec<(u8, Time)> = cp.segments.iter().map(|s| (s.core.0, s.end)).collect();
        assert!(tail.contains(&(2, ns(80))), "{cp:?}");
        assert_eq!(cp.segments.last().unwrap().core, CoreId(1));
        let mut cursor = cp.start;
        for s in &cp.segments {
            assert_eq!(s.start, cursor);
            cursor = s.end;
        }
        assert_eq!(cursor, ns(90));
    }

    #[test]
    fn empty_stream_is_a_typed_error() {
        assert_eq!(critical_path(&[]).unwrap_err(), CritPathError::EmptyStream);
    }

    /// Span-only stream with no `Finish`: there is no instant to walk
    /// back from, so the extractor reports `NoTimedActivity` instead of
    /// fabricating a path (or panicking).
    #[test]
    fn span_only_stream_without_finish_is_a_typed_error() {
        use scc_hal::{Phase, Span};
        let events = vec![
            ObsEvent::SpanBegin { core: CoreId(0), span: Span::of(Phase::Round), at: ns(5) },
            ObsEvent::SpanEnd { core: CoreId(0), span: Span::of(Phase::Round), at: ns(50) },
            ObsEvent::Park { core: CoreId(1), line: 0, at: ns(10) },
        ];
        assert_eq!(critical_path(&events).unwrap_err(), CritPathError::NoTimedActivity);
    }

    /// Span-only stream *with* a `Finish` anchor: the walk has an end
    /// instant but no op coverage, so the whole path is explicit idle —
    /// still contiguous over `[0, finish]`.
    #[test]
    fn span_only_stream_with_finish_yields_pure_idle_path() {
        use scc_hal::{Phase, Span};
        let events = vec![
            ObsEvent::SpanBegin { core: CoreId(0), span: Span::of(Phase::Barrier), at: ns(0) },
            ObsEvent::SpanEnd { core: CoreId(0), span: Span::of(Phase::Barrier), at: ns(70) },
            ObsEvent::Finish { core: CoreId(0), at: ns(70) },
        ];
        let cp = critical_path(&events).unwrap();
        assert_eq!(cp.total(), ns(70));
        assert_eq!(cp.segments.len(), 1);
        assert_eq!(cp.segments[0].kind, SegmentKind::Idle);
        assert_eq!(cp.breakdown().idle, ns(70));
    }

    /// A stream whose last event is an instant (a wake past every op's
    /// completion, naming a writer that logged nothing else) must not
    /// panic — the walk sizes its tables by the writer too and falls
    /// back to idle when the writer has no activities.
    #[test]
    fn trailing_instant_with_unknown_writer_does_not_panic() {
        let events = vec![
            op(0, OpKind::PutFromMpb, 0, 10),
            // Malformed tail: a wake resolving the gap before Finish,
            // whose writer core 9 never logged anything. The old walk
            // sized its tables without `writer` and indexed out of
            // bounds when jumping to core 9 here.
            ObsEvent::Wake { core: CoreId(0), line: 0, at: ns(35), writer: CoreId(9) },
            ObsEvent::Finish { core: CoreId(0), at: ns(40) },
        ];
        let cp = critical_path(&events).unwrap();
        assert_eq!(cp.total(), ns(40));
        let mut cursor = cp.start;
        for s in &cp.segments {
            assert_eq!(s.start, cursor);
            cursor = s.end;
        }
        assert_eq!(cursor, cp.end);
    }
}
