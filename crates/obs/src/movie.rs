//! Mesh congestion timeline: the link heatmap, sliced over time.
//!
//! A [`LinkHeatmap`](crate::heatmap::LinkHeatmap) integrates router
//! occupancy over a whole run; this module cuts the run into equal
//! frames and renders one 6×4 grid per frame, so a transient hot spot
//! (OC-Bcast's root-column burst, a ring round marching around the
//! mesh) is visible as motion rather than averaged away. Cells share
//! the heatmap's digit rounding through [`crate::grid`], but are
//! normalized to the *global* maximum across all frames, so a digit
//! means the same busy fraction in every frame.

use crate::event::{ObsEvent, ResourceId};
use crate::grid;
use crate::heatmap::NUM_TILES;
use scc_hal::{LinkDir, Time, NUM_LINK_DIRS};
use std::fmt::Write as _;

/// Time-sliced per-link busy occupancy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CongestionMovie {
    /// Per frame: service time per directed link
    /// (`tile * NUM_LINK_DIRS + dir`).
    frames: Vec<Vec<Time>>,
    /// Frame boundaries in ps (`frames.len() + 1` entries, exact
    /// integer partition of `[0, horizon]`).
    bounds: Vec<u64>,
}

impl CongestionMovie {
    /// Slice the router-link service intervals of a recorded stream
    /// into `frames` equal windows over `[0, horizon]`, where the
    /// horizon is the latest event instant.
    pub fn from_events(events: &[ObsEvent], frames: usize) -> CongestionMovie {
        assert!(frames >= 1);
        let horizon = events.iter().map(|e| e.at().as_ps()).max().unwrap_or(0);
        let bounds: Vec<u64> = (0..=frames as u64).map(|f| horizon * f / frames as u64).collect();
        let mut out = vec![vec![Time::ZERO; NUM_TILES * NUM_LINK_DIRS]; frames];
        for ev in events {
            if let ObsEvent::Wait {
                resource: ResourceId::Router(tile),
                start,
                end,
                link: Some(dir),
                ..
            } = *ev
            {
                let slot = tile as usize * NUM_LINK_DIRS + dir.index();
                let (s, e) = (start.as_ps(), end.as_ps());
                for f in 0..frames {
                    let (a, b) = (bounds[f], bounds[f + 1]);
                    let lo = s.max(a);
                    let hi = e.min(b);
                    if lo < hi {
                        out[f][slot] += Time::from_ps(hi - lo);
                    }
                }
            }
        }
        CongestionMovie { frames: out, bounds }
    }

    pub fn num_frames(&self) -> usize {
        self.frames.len()
    }

    /// Busy time of one directed link within one frame.
    pub fn frame_busy(&self, frame: usize, tile: usize, dir: LinkDir) -> Time {
        self.frames[frame][tile * NUM_LINK_DIRS + dir.index()]
    }

    /// Total busy per link summed over all frames — equals the whole
    /// run's heatmap busy exactly (the frames partition the horizon).
    pub fn total_busy(&self, tile: usize, dir: LinkDir) -> Time {
        self.frames.iter().map(|f| f[tile * NUM_LINK_DIRS + dir.index()]).sum()
    }

    /// The global maximum cell across every frame (the `9` reference).
    pub fn global_max(&self) -> Time {
        self.frames.iter().flatten().copied().max().unwrap_or(Time::ZERO)
    }

    /// Render all frames as stacked ASCII grids (`results/movie_*.txt`).
    pub fn render(&self, title: &str) -> String {
        let max = self.global_max();
        let mut out = String::new();
        let _ = writeln!(out, "link congestion movie: {title}");
        let _ = writeln!(
            out,
            "cell = tile(x,y) E W N S eject  (busy 0-9 vs global max, '-' = idle, '+' = max)"
        );
        for (f, frame) in self.frames.iter().enumerate() {
            let _ = writeln!(
                out,
                "frame {}/{}  [{:.3} .. {:.3}] us",
                f + 1,
                self.frames.len(),
                Time::from_ps(self.bounds[f]).as_us_f64(),
                Time::from_ps(self.bounds[f + 1]).as_us_f64(),
            );
            out.push_str(&grid::render_mesh(|t, dir| {
                grid::occupancy_digit(frame[t * NUM_LINK_DIRS + dir.index()], max)
            }));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heatmap::LinkHeatmap;
    use scc_hal::CoreId;

    fn ps(v: u64) -> Time {
        Time::from_ps(v)
    }

    fn router_wait(tile: u8, dir: LinkDir, start: u64, end: u64) -> ObsEvent {
        ObsEvent::Wait {
            core: CoreId(0),
            resource: ResourceId::Router(tile),
            arrival: ps(start),
            start: ps(start),
            end: ps(end),
            link: Some(dir),
        }
    }

    #[test]
    fn frames_partition_service_time_exactly() {
        let events = vec![
            router_wait(0, LinkDir::East, 0, 1000),
            router_wait(5, LinkDir::Eject, 250, 750),
            ObsEvent::Finish { core: CoreId(0), at: ps(1000) },
        ];
        let movie = CongestionMovie::from_events(&events, 4);
        assert_eq!(movie.num_frames(), 4);
        // The spanning interval contributes 250 ps to every frame.
        for f in 0..4 {
            assert_eq!(movie.frame_busy(f, 0, LinkDir::East), ps(250));
        }
        // The centered interval straddles frames 1 and 2 exactly.
        assert_eq!(movie.frame_busy(0, 5, LinkDir::Eject), Time::ZERO);
        assert_eq!(movie.frame_busy(1, 5, LinkDir::Eject), ps(250));
        assert_eq!(movie.frame_busy(2, 5, LinkDir::Eject), ps(250));
        assert_eq!(movie.frame_busy(3, 5, LinkDir::Eject), Time::ZERO);
        // Per-link totals equal the whole-run heatmap (exact partition).
        let hm = LinkHeatmap::from_events(&events);
        for t in 0..NUM_TILES {
            for dir in LinkDir::ALL {
                assert_eq!(movie.total_busy(t, dir), hm.busy(t, dir), "tile {t} {dir:?}");
            }
        }
    }

    #[test]
    fn render_uses_global_normalization() {
        let events = vec![
            router_wait(0, LinkDir::East, 0, 500), // all in frame 0
            router_wait(1, LinkDir::East, 500, 550),
            ObsEvent::Finish { core: CoreId(0), at: ps(1000) },
        ];
        let movie = CongestionMovie::from_events(&events, 2);
        assert_eq!(movie.global_max(), ps(500));
        let art = movie.render("test");
        assert!(art.contains("link congestion movie: test"), "{art}");
        assert!(art.contains("frame 1/2"), "{art}");
        assert!(art.contains("frame 2/2"), "{art}");
        // Frame 0's hot link saturates to '+'; frame 1's faint link
        // renders as 1 (normalized to the global max, not its own
        // frame). Only cell rows count — the grid borders are drawn
        // with '+' too.
        let frames: Vec<&str> = art.split("frame ").collect();
        let cells =
            |s: &str| s.lines().filter(|l| l.starts_with("| ")).collect::<Vec<_>>().join("\n");
        assert!(cells(frames[1]).contains('+'), "{art}");
        assert!(cells(frames[2]).contains('1') && !cells(frames[2]).contains('+'), "{art}");
    }

    #[test]
    fn empty_stream_renders_idle_frames() {
        let movie = CongestionMovie::from_events(&[], 3);
        assert_eq!(movie.global_max(), Time::ZERO);
        let art = movie.render("empty");
        // Every grid cell row is fully idle (header lines excluded).
        for line in art.lines().filter(|l| l.starts_with("| ")) {
            assert!(!line.contains(|c: char| c.is_ascii_digit()), "{art}");
        }
        assert!(art.contains("frame 3/3"), "{art}");
    }
}
