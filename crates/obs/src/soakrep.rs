//! Soak rollups: the structured record behind `BENCH_soak.json`,
//! `results/SOAK.md`, and the OpenMetrics exposition
//! `results/soak_metrics.txt`.
//!
//! A soak run reduces thousands of back-to-back broadcasts to a few
//! [`SoakPhase`] rows per protocol: the phase's merged
//! [`QuantileSketch`] (delivery latencies across every epoch of the
//! phase), the recovery counters, the [`SloBreach`]es the watchdog
//! raised, and the forensic dump inventory. Everything is integer
//! picoseconds and exact counts — the same byte-identity contract as
//! the journey book and fault curves, at any `--jobs` setting.

use crate::artifact::{count, ps, req_time, req_u64, scenario_envelope};
use crate::report::Json;
use crate::sketch::QuantileSketch;
use crate::slo::{SloBreach, SloKind, SloPolicy};
use scc_hal::Time;
use std::fmt::Write as _;

/// One traffic phase of one protocol's soak: a contiguous run of
/// epochs under one fault plan.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SoakPhase {
    /// Stable id, e.g. `"healthy_a"` / `"faults"` / `"healthy_b"`.
    pub id: String,
    /// Remote-notification drop rate this phase injects, ppm.
    pub drop_ppm: u64,
    pub epochs: u64,
    /// Per-destination delivered latencies, every epoch of the phase.
    pub sketch: QuantileSketch,
    /// Worst per-epoch makespan in the phase.
    pub makespan_max: Time,
    /// Recovery counters summed over the phase.
    pub timeouts: u64,
    pub probes: u64,
    pub recoveries: u64,
    pub renotifies: u64,
    /// Faults the plan injected during the phase.
    pub faults: u64,
    /// Watchdog verdicts, epoch order.
    pub breaches: Vec<SloBreach>,
    /// Repo-relative paths of the forensic dumps this phase produced.
    pub dumps: Vec<String>,
}

/// One protocol's soak: its SLO policy and its phases in traffic
/// order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SoakScenario {
    /// Stable id, e.g. `"oc_k7"`.
    pub id: String,
    /// Human label, e.g. `"k=7 48c 8cl"`.
    pub label: String,
    pub cores: u64,
    pub policy: SloPolicy,
    pub phases: Vec<SoakPhase>,
}

impl SoakScenario {
    pub fn epochs(&self) -> u64 {
        self.phases.iter().map(|p| p.epochs).sum()
    }

    pub fn breaches(&self) -> usize {
        self.phases.iter().map(|p| p.breaches.len()).sum()
    }

    pub fn dumps(&self) -> usize {
        self.phases.iter().map(|p| p.dumps.len()).sum()
    }
}

fn opt_ps(t: Option<Time>) -> Json {
    match t {
        Some(t) => ps(t),
        None => Json::Null,
    }
}

fn opt_time(v: &Json, key: &str) -> Result<Option<Time>, String> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(_) => Ok(Some(req_time(v, key)?)),
    }
}

fn policy_json(p: &SloPolicy) -> Json {
    Json::obj()
        .set("p99_budget_ps", opt_ps(p.p99_budget))
        .set("makespan_budget_ps", opt_ps(p.makespan_budget))
        .set("zero_recoveries", Json::Bool(p.zero_recoveries))
}

fn parse_policy(v: &Json) -> Result<SloPolicy, String> {
    Ok(SloPolicy {
        p99_budget: opt_time(v, "p99_budget_ps")?,
        makespan_budget: opt_time(v, "makespan_budget_ps")?,
        zero_recoveries: v
            .get("zero_recoveries")
            .and_then(Json::as_bool)
            .ok_or_else(|| "policy missing bool 'zero_recoveries'".to_string())?,
    })
}

fn breach_json(b: &SloBreach) -> Json {
    Json::obj()
        .set("epoch", Json::Int(i64::from(b.epoch)))
        .set("kind", Json::Str(b.kind.name().into()))
        .set("observed", count(b.observed))
        .set("budget", count(b.budget))
}

fn parse_breach(v: &Json) -> Result<SloBreach, String> {
    let kind = v
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| "breach missing string 'kind'".to_string())?;
    Ok(SloBreach {
        epoch: u32::try_from(req_u64(v, "epoch")?)
            .map_err(|_| "breach 'epoch' out of range".to_string())?,
        kind: SloKind::from_name(kind).ok_or_else(|| format!("unknown SLO kind '{kind}'"))?,
        observed: req_u64(v, "observed")?,
        budget: req_u64(v, "budget")?,
    })
}

/// The versioned `BENCH_soak.json` envelope, validated by
/// [`crate::validate_artifact_version`].
pub fn soak_artifact(scenarios: &[SoakScenario]) -> Json {
    let arr = scenarios
        .iter()
        .map(|s| {
            let phases = s
                .phases
                .iter()
                .map(|p| {
                    Json::obj()
                        .set("id", Json::Str(p.id.clone()))
                        .set("drop_ppm", count(p.drop_ppm))
                        .set("epochs", count(p.epochs))
                        .set("sketch", p.sketch.to_json())
                        .set("makespan_max_ps", ps(p.makespan_max))
                        .set("timeouts", count(p.timeouts))
                        .set("probes", count(p.probes))
                        .set("recoveries", count(p.recoveries))
                        .set("renotifies", count(p.renotifies))
                        .set("faults", count(p.faults))
                        .set("breaches", Json::Arr(p.breaches.iter().map(breach_json).collect()))
                        .set(
                            "dumps",
                            Json::Arr(p.dumps.iter().map(|d| Json::Str(d.clone())).collect()),
                        )
                })
                .collect();
            Json::obj()
                .set("id", Json::Str(s.id.clone()))
                .set("label", Json::Str(s.label.clone()))
                .set("cores", count(s.cores))
                .set("policy", policy_json(&s.policy))
                .set("phases", Json::Arr(phases))
        })
        .collect();
    scenario_envelope("soak", arr)
}

/// Strict inverse of [`soak_artifact`] (checks the version first).
pub fn parse_soak_artifact(doc: &Json) -> Result<Vec<SoakScenario>, String> {
    crate::artifact::open_scenarios(doc)?
        .iter()
        .map(|v| {
            let id = v
                .get("id")
                .and_then(Json::as_str)
                .ok_or_else(|| "scenario missing string 'id'".to_string())?
                .to_string();
            let label = v
                .get("label")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("scenario '{id}' missing string 'label'"))?
                .to_string();
            let cores = req_u64(v, "cores")?;
            let policy = parse_policy(
                v.get("policy").ok_or_else(|| format!("scenario '{id}' missing 'policy'"))?,
            )?;
            let phases = v
                .get("phases")
                .and_then(Json::as_arr)
                .ok_or_else(|| format!("scenario '{id}' missing 'phases' array"))?
                .iter()
                .map(|p| {
                    let pid = p
                        .get("id")
                        .and_then(Json::as_str)
                        .ok_or_else(|| "phase missing string 'id'".to_string())?
                        .to_string();
                    let sketch = QuantileSketch::from_json(
                        p.get("sketch").ok_or_else(|| format!("phase '{pid}' missing 'sketch'"))?,
                    )?;
                    Ok(SoakPhase {
                        id: pid,
                        drop_ppm: req_u64(p, "drop_ppm")?,
                        epochs: req_u64(p, "epochs")?,
                        sketch,
                        makespan_max: req_time(p, "makespan_max_ps")?,
                        timeouts: req_u64(p, "timeouts")?,
                        probes: req_u64(p, "probes")?,
                        recoveries: req_u64(p, "recoveries")?,
                        renotifies: req_u64(p, "renotifies")?,
                        faults: req_u64(p, "faults")?,
                        breaches: p
                            .get("breaches")
                            .and_then(Json::as_arr)
                            .ok_or_else(|| "phase missing 'breaches' array".to_string())?
                            .iter()
                            .map(parse_breach)
                            .collect::<Result<Vec<_>, String>>()?,
                        dumps: p
                            .get("dumps")
                            .and_then(Json::as_arr)
                            .ok_or_else(|| "phase missing 'dumps' array".to_string())?
                            .iter()
                            .map(|d| {
                                d.as_str()
                                    .map(str::to_string)
                                    .ok_or_else(|| "dump path must be a string".to_string())
                            })
                            .collect::<Result<Vec<_>, String>>()?,
                    })
                })
                .collect::<Result<Vec<_>, String>>()?;
            Ok(SoakScenario { id, label, cores, policy, phases })
        })
        .collect()
}

fn fmt_budget(t: Option<Time>) -> String {
    match t {
        Some(t) => format!("{:.3} µs", t.as_us_f64()),
        None => "—".to_string(),
    }
}

/// The human digest (`results/SOAK.md`): per-phase sketch quantiles,
/// SLO verdicts, and the dump inventory.
pub fn render_soak_markdown(scenarios: &[SoakScenario]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# Soak: sustained broadcast traffic under SLO watchdogs\n");
    let _ = writeln!(
        out,
        "Back-to-back reliable broadcasts through healthy and fault-plan \
         phases. Latency quantiles come from the streaming log₂ sketches \
         (upper-bound semantics: a reported quantile is at least the exact \
         nearest-rank value and less than 2× it); an SLO breach freezes the \
         flight-recorder ring and dumps forensics for just that window."
    );
    for s in scenarios {
        let _ = writeln!(
            out,
            "\n## {} (`{}`, {} cores, {} epochs)\n",
            s.label,
            s.id,
            s.cores,
            s.epochs()
        );
        let _ = writeln!(
            out,
            "SLO: delivery p99 ≤ {}, makespan ≤ {}, zero recoveries {}.\n",
            fmt_budget(s.policy.p99_budget),
            fmt_budget(s.policy.makespan_budget),
            if s.policy.zero_recoveries { "expected" } else { "not expected" },
        );
        let _ = writeln!(
            out,
            "| phase | drop ppm | epochs | p50 µs | p90 µs | p99 µs | p99.9 µs | \
             makespan max µs | timeouts | recoveries | faults | breaches |"
        );
        let _ = writeln!(out, "|---|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|");
        for p in &s.phases {
            let q = |q: f64| {
                p.sketch.quantile(q).map_or("—".to_string(), |t| format!("{:.3}", t.as_us_f64()))
            };
            let _ = writeln!(
                out,
                "| {} | {} | {} | {} | {} | {} | {} | {:.3} | {} | {} | {} | {} |",
                p.id,
                p.drop_ppm,
                p.epochs,
                q(0.50),
                q(0.90),
                q(0.99),
                q(0.999),
                p.makespan_max.as_us_f64(),
                p.timeouts,
                p.recoveries,
                p.faults,
                p.breaches.len(),
            );
        }
        let breached: Vec<&SoakPhase> =
            s.phases.iter().filter(|p| !p.breaches.is_empty()).collect();
        if breached.is_empty() {
            let _ = writeln!(out, "\nEvery epoch met every objective; no dumps written.");
        } else {
            let _ = writeln!(out, "\n### Breaches and dumps\n");
            for p in breached {
                for b in &p.breaches {
                    let _ = writeln!(out, "- `{}/{}` {}", s.id, p.id, b.describe());
                }
                for d in &p.dumps {
                    let _ = writeln!(out, "- dump: `{d}`");
                }
            }
        }
    }
    out
}

/// The OpenMetrics-style text exposition (`results/soak_metrics.txt`):
/// counters and quantile gauges labelled by scenario and phase,
/// terminated by `# EOF`.
pub fn render_soak_openmetrics(scenarios: &[SoakScenario]) -> String {
    let mut out = String::new();
    let mut line = |s: &str| {
        out.push_str(s);
        out.push('\n');
    };
    line("# TYPE scc_soak_epochs counter");
    line("# HELP scc_soak_epochs Broadcast epochs completed in the phase.");
    for s in scenarios {
        for p in &s.phases {
            line(&format!(
                "scc_soak_epochs_total{{scenario=\"{}\",phase=\"{}\"}} {}",
                s.id, p.id, p.epochs
            ));
        }
    }
    line("# TYPE scc_soak_delivery_latency_us summary");
    line("# HELP scc_soak_delivery_latency_us Per-destination delivered latency (sketch upper bound).");
    for s in scenarios {
        for p in &s.phases {
            for (q, tag) in [(0.50, "0.5"), (0.90, "0.9"), (0.99, "0.99"), (0.999, "0.999")] {
                if let Some(t) = p.sketch.quantile(q) {
                    line(&format!(
                        "scc_soak_delivery_latency_us{{scenario=\"{}\",phase=\"{}\",quantile=\"{}\"}} {:.3}",
                        s.id, p.id, tag, t.as_us_f64()
                    ));
                }
            }
            line(&format!(
                "scc_soak_delivery_latency_us_count{{scenario=\"{}\",phase=\"{}\"}} {}",
                s.id,
                p.id,
                p.sketch.count()
            ));
        }
    }
    for (name, help, get) in [
        ("scc_soak_timeouts", "Reliability-layer timeouts.", 0usize),
        ("scc_soak_recoveries", "Reliability-layer recoveries.", 1),
        ("scc_soak_faults", "Faults injected by the plan.", 2),
        ("scc_soak_slo_breaches", "SLO objectives breached.", 3),
    ] {
        line(&format!("# TYPE {name} counter"));
        line(&format!("# HELP {name} {help}"));
        for s in scenarios {
            for p in &s.phases {
                let v = match get {
                    0 => p.timeouts,
                    1 => p.recoveries,
                    2 => p.faults,
                    _ => p.breaches.len() as u64,
                };
                line(&format!("{name}_total{{scenario=\"{}\",phase=\"{}\"}} {v}", s.id, p.id));
            }
        }
    }
    line("# EOF");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conformance::ARTIFACT_VERSION;
    use crate::report::validate_json;

    fn sample() -> Vec<SoakScenario> {
        let mut healthy_sketch = QuantileSketch::new();
        let mut faulty_sketch = QuantileSketch::new();
        for i in 1..=100u64 {
            healthy_sketch.record_ps(60_000_000 + i * 1_000);
            faulty_sketch.record_ps(60_000_000 + i * 7_000_000);
        }
        vec![SoakScenario {
            id: "oc_k7".into(),
            label: "k=7 48c 8cl".into(),
            cores: 48,
            policy: SloPolicy {
                p99_budget: Some(Time::from_us_f64(100.0)),
                makespan_budget: Some(Time::from_us_f64(200.0)),
                zero_recoveries: true,
            },
            phases: vec![
                SoakPhase {
                    id: "healthy_a".into(),
                    drop_ppm: 0,
                    epochs: 100,
                    sketch: healthy_sketch,
                    makespan_max: Time::from_us_f64(80.0),
                    timeouts: 0,
                    probes: 0,
                    recoveries: 0,
                    renotifies: 0,
                    faults: 0,
                    breaches: vec![],
                    dumps: vec![],
                },
                SoakPhase {
                    id: "faults".into(),
                    drop_ppm: 50_000,
                    epochs: 100,
                    sketch: faulty_sketch,
                    makespan_max: Time::from_us_f64(900.0),
                    timeouts: 9,
                    probes: 9,
                    recoveries: 7,
                    renotifies: 2,
                    faults: 12,
                    breaches: vec![SloBreach {
                        epoch: 123,
                        kind: SloKind::Recovery,
                        observed: 7,
                        budget: 0,
                    }],
                    dumps: vec!["results/soak_dump_oc_k7_faults_0_trace.json".into()],
                },
            ],
        }]
    }

    #[test]
    fn artifact_round_trips_losslessly() {
        let scenarios = sample();
        let text = soak_artifact(&scenarios).render();
        validate_json(&text).unwrap();
        let doc = Json::parse(&text).unwrap();
        assert_eq!(parse_soak_artifact(&doc).unwrap(), scenarios);
    }

    #[test]
    fn parse_rejects_bad_version_and_junk() {
        let doc = Json::obj().set("version", Json::Int(ARTIFACT_VERSION + 1));
        assert!(parse_soak_artifact(&doc).unwrap_err().contains("!= supported"));
        let doc = Json::obj().set("version", Json::Int(ARTIFACT_VERSION));
        assert!(parse_soak_artifact(&doc).unwrap_err().contains("scenarios"));
        // Unknown SLO kinds and negative counts are typed errors.
        let good = soak_artifact(&sample()).render();
        let doc =
            Json::parse(&good.replace("\"kind\":\"recovery\"", "\"kind\":\"vibes\"")).unwrap();
        assert!(parse_soak_artifact(&doc).unwrap_err().contains("vibes"));
        let doc = Json::parse(&good.replace("\"faults\":12", "\"faults\":-12")).unwrap();
        assert!(parse_soak_artifact(&doc).unwrap_err().contains("-12"));
    }

    #[test]
    fn markdown_digest_covers_phases_and_dumps() {
        let md = render_soak_markdown(&sample());
        assert!(md.contains("# Soak"), "{md}");
        assert!(md.contains("## k=7 48c 8cl (`oc_k7`, 48 cores, 200 epochs)"), "{md}");
        assert!(md.contains("| healthy_a | 0 | 100 |"), "{md}");
        assert!(md.contains("epoch 123: 7 recoveries (expected 0)"), "{md}");
        assert!(md.contains("soak_dump_oc_k7_faults_0_trace.json"), "{md}");
    }

    #[test]
    fn openmetrics_exposition_is_labelled_and_terminated() {
        let txt = render_soak_openmetrics(&sample());
        assert!(txt.ends_with("# EOF\n"), "{txt}");
        assert!(
            txt.contains("scc_soak_epochs_total{scenario=\"oc_k7\",phase=\"healthy_a\"} 100"),
            "{txt}"
        );
        assert!(
            txt.contains(
                "scc_soak_delivery_latency_us{scenario=\"oc_k7\",phase=\"faults\",quantile=\"0.99\"}"
            ),
            "{txt}"
        );
        assert!(txt.contains("scc_soak_slo_breaches_total{scenario=\"oc_k7\",phase=\"faults\"} 1"));
    }
}
