//! # scc-obs — structured tracing & metrics for the OC-Bcast suite
//!
//! The paper's whole argument (Sections 3, 5–6 of *"High-Performance
//! RMA-Based Broadcast on the Intel SCC"*) is about *where time goes*:
//! core overhead `o`, mesh hop latency `L_hop`, and MPB-port
//! contention. This crate turns every simulated run into an inspectable
//! record of exactly that:
//!
//! * [`event`] — the typed event model: every timed op, every resource
//!   booking (with the resource id and the queueing wait), park/wake
//!   pairs, baton handoffs, protocol-phase spans, all at picosecond
//!   resolution, behind the cheap-when-disabled [`Recorder`] trait;
//! * [`chrome`] — Chrome `trace_event` JSON export (loads in Perfetto):
//!   one track per core, one per contended resource, phase spans and
//!   parked intervals on the core tracks;
//! * [`series`] — bucketed per-resource utilization / queue-depth time
//!   series (CSV), the measurement behind the paper's Figure 6;
//! * [`critpath`] — a critical-path extractor that walks the event
//!   dependency graph backwards from the last receiver and attributes
//!   the end-to-end latency to op service vs. port/router/MC queueing
//!   vs. compute vs. idle;
//! * [`report`] — a tiny JSON builder + strict parser for the
//!   machine-readable `BENCH_obs.json` / `BENCH_figures.json` artifacts
//!   (this workspace has no serde);
//! * [`hist`] — per-phase / per-resource latency histograms with exact
//!   nearest-rank quantiles and log₂ shapes;
//! * [`flame`] — collapsed-stack flamegraph export
//!   (`core → phase nest`, consumable by inferno/speedscope);
//! * [`diff`] — differential critical paths: a (phase × resource) grid
//!   whose cell deltas sum *exactly* to the makespan delta between two
//!   runs;
//! * [`whatif`] — the [`CostClass`] taxonomy and Coz-style causal
//!   what-if profiles (sensitivity of the makespan to each simulator
//!   cost class);
//! * [`conformance`] — the structured experiment record behind the
//!   `observatory` harness: per-point paper/model/sim rows, shape
//!   checks, host self-metrics, and the CI drift gate that compares a
//!   run against a committed baseline;
//! * [`heatmap`] — per-directed-link mesh occupancy maps whose per-tile
//!   sums exactly partition the simulator's per-tile router aggregates;
//! * [`grid`] — the one 6×4 mesh-grid renderer (layout + digit
//!   rounding) shared by the heatmap and the congestion movie;
//! * [`journey`] — per-destination delivery timelines: each core's
//!   delivery window, exactly partitioned into typed legs (inject,
//!   router dwell, port service, flag notify, drain, …);
//! * [`skew`] — the delivery-time distribution, straggler
//!   identification, and per-leg root-cause attribution vs the median
//!   journey (`results/SKEW.md`);
//! * [`movie`] — the link heatmap sliced into equal time frames, a
//!   congestion timeline (`results/movie_*.txt`);
//! * [`faultrep`] — degradation curves of the reliable collectives
//!   under injected faults (`BENCH_faults.json`, `results/FAULTS.md`);
//! * [`sketch`] — fixed-cost, deterministic, exactly mergeable log₂
//!   quantile sketches: the always-on telemetry that replaces full
//!   event streams under sustained traffic;
//! * [`slo`] — declarative per-protocol SLOs (latency/makespan
//!   budgets, zero-recovery expectation) evaluated per epoch; breaches
//!   trigger the flight recorder's forensic dumps;
//! * [`soakrep`] — the soak rollup record (`BENCH_soak.json`,
//!   `results/SOAK.md`, OpenMetrics `results/soak_metrics.txt`).
//!
//! The simulator (`scc-sim`) records into this crate's [`Recorder`];
//! collectives annotate phases through `scc_hal::Rma::span_begin`; the
//! `trace` binary in `scc-bench` drives all exporters.

pub mod artifact;
pub mod audit;
pub mod auditrep;
pub mod causal;
pub mod chrome;
pub mod conformance;
pub mod critpath;
pub mod diff;
pub mod event;
pub mod faultrep;
pub mod flame;
pub mod grid;
pub mod heatmap;
pub mod hist;
pub mod journey;
pub mod movie;
pub mod report;
pub mod series;
pub mod sketch;
pub mod skew;
pub mod slo;
pub mod soakrep;
pub mod whatif;

pub use audit::{
    audit, mutate, AuditReport, AuditSpec, CheckStat, MutationClass, Violation, ViolationClass,
};
pub use auditrep::{
    audit_artifact, parse_audit_artifact, render_audit_markdown, AuditScenario, MutationTrial,
};
pub use causal::{actor, CausalGraph, Edge, EdgeKind};
pub use chrome::{chrome_trace_json, kinds_present};
pub use conformance::{
    drift_gate, validate_artifact_version, AuditMetrics, ConformanceReport, DriftReport,
    DriftViolation, ExperimentReport, ExperimentRow, FaultsMetrics, JourneysMetrics, RunMetrics,
    SelfMetrics, ShapeCheck, SoakMetrics, ARTIFACT_VERSION,
};
pub use critpath::{
    critical_path, Breakdown, CritPathError, CriticalPath, PathSegment, SegmentKind,
};
pub use diff::{DiffCell, DiffReport, PhaseProfile};
pub use event::{EventLog, FaultKind, FlightRecorder, ObsEvent, OpKind, Recorder, ResourceId};
pub use faultrep::{
    faults_artifact, parse_faults_artifact, render_faults_markdown, FaultCurve, FaultPoint,
};
pub use flame::flamegraph_collapsed;
pub use heatmap::LinkHeatmap;
pub use hist::{LatencyHistogram, RunHistograms};
pub use journey::{journeys_artifact, parse_journeys_artifact, Journey, JourneyBook, LegKind};
pub use movie::CongestionMovie;
pub use report::{validate_json, Json};
pub use series::{UtilBucket, UtilizationSeries};
pub use sketch::{QuantileSketch, SketchSummary, SKETCH_BUCKETS};
pub use skew::{render_skew_markdown, RecoveryCounters, SkewReport};
pub use slo::{EpochRollup, SloBreach, SloKind, SloPolicy};
pub use soakrep::{
    parse_soak_artifact, render_soak_markdown, render_soak_openmetrics, soak_artifact, SoakPhase,
    SoakScenario,
};
pub use whatif::{CostClass, WhatIfPoint, WhatIfProfile};
