//! The causal trace auditor: typed protocol-conformance checking over
//! recorded event streams.
//!
//! [`audit`] builds the happens-before graph ([`crate::causal`]) for a
//! stream and runs the invariant catalogue over it:
//!
//! * **structure** — the graph is acyclic and every edge runs forward
//!   in virtual time (service edges additionally demand disjoint
//!   service intervals per resource, and every booking's service
//!   starts no earlier than its arrival);
//! * **spans** — protocol phases nest LIFO per core and every opened
//!   span closes;
//! * **park/wake** — parks and wakes alternate per core; every park
//!   follows a failed poll ([`ObsEvent::FlagSample`]) of the same
//!   line; a remote wake coincides with a covering
//!   [`ObsEvent::MpbWrite`] by its writer; a commit that covers a
//!   parked core's watched line wakes it at that very instant (no lost
//!   wakeups); after a remote wake the woken core's next operation
//!   re-polls the watched line;
//! * **commits** — every write-kind operation commits an `MpbWrite`
//!   at its completion instant, XOR (for remote flag deposits under a
//!   fault plan) records a [`FaultKind::LostNotification`] — so a
//!   deleted fault event is precisely detectable;
//! * **flag values** — a poll observes exactly the last value
//!   committed to that line (when the event model knows it);
//! * **delivery** — every op tagged with epoch *e* executes inside its
//!   issuer's open delivery window for *e*; windows open and close
//!   exactly once; the last close equals the run's makespan when the
//!   caller supplies one;
//! * **faults** — timeout self-wakes appear only under a reliability
//!   policy, never in healthy runs, and chain back to an injected
//!   fault; fault events appear only under a fault plan.
//!
//! [`AuditSpec::window`] enables truncated-prefix tolerance for
//! flight-recorder dumps: dangling edges into the pre-window past are
//! admissible (a close without its open, a wake without its park, a
//! commit whose op predates the window), internal violations are not.
//!
//! The auditor is proven non-vacuous by the seeded [`mutate`] harness:
//! each [`MutationClass`] corrupts a recorded stream in one structured
//! way, and the audit must report the matching [`ViolationClass`].

use crate::causal::{CausalGraph, EdgeKind};
use crate::event::{FaultKind, ObsEvent, OpKind};
use scc_hal::{Span, Time};
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// What kind of run the stream under audit recorded. The checkers need
/// to know which behaviours are protocol (timeouts, faults) and which
/// are corruption.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AuditSpec {
    /// The reliability layer was armed (timeout timers exist, recovery
    /// probes and re-notifies are legitimate traffic).
    pub reliable: bool,
    /// A fault plan was active: `Fault` events are expected and
    /// timeout self-wakes must chain back to one.
    pub faulted: bool,
    /// The stream is a flight-recorder window, not a full run: apply
    /// truncated-prefix tolerance.
    pub window: bool,
    /// The run's known makespan; when present, the last delivery-window
    /// close must equal it.
    pub makespan: Option<Time>,
}

impl AuditSpec {
    /// A plain (unreliable, fault-free) full recorded run.
    pub fn plain() -> AuditSpec {
        AuditSpec::default()
    }

    /// A reliable run without injected faults.
    pub fn reliable() -> AuditSpec {
        AuditSpec { reliable: true, ..AuditSpec::default() }
    }

    /// A reliable run under an active fault plan.
    pub fn faulted() -> AuditSpec {
        AuditSpec { reliable: true, faulted: true, ..AuditSpec::default() }
    }

    /// Builder: expect the last delivery close at `m`.
    pub fn with_makespan(mut self, m: Time) -> AuditSpec {
        self.makespan = Some(m);
        self
    }

    /// Builder: audit a flight-recorder window of this run kind.
    pub fn windowed(mut self) -> AuditSpec {
        self.window = true;
        self
    }
}

/// Typed classification of one invariant violation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ViolationClass {
    /// Span opens/closes do not nest LIFO per core.
    SpanNesting,
    /// Park/wake alternation broke (double park, wake without park,
    /// park without a failed poll, wake without a covering commit).
    ParkWake,
    /// A commit covered a parked core's watched line but no wake
    /// followed at that instant.
    LostWakeup,
    /// The per-line flag state machine broke (stale sample value, no
    /// re-poll after a wake).
    FlagProtocol,
    /// A write-kind op neither committed nor recorded a lost
    /// notification (or committed more than it executed).
    CommitFault,
    /// Resource service order broke: overlapping service intervals or
    /// service before arrival.
    Resource,
    /// A tagged op ran outside its delivery window, a window
    /// opened/closed out of protocol, or the last close missed the
    /// makespan.
    Delivery,
    /// A happens-before edge runs backwards in virtual time.
    TimeOrder,
    /// The happens-before graph has a cycle.
    Cycle,
    /// Fault/recovery mismatch: timeouts without a reliability policy,
    /// recoveries in a healthy run, faults without a fault plan, or a
    /// recovery that chains back to no injected fault.
    FaultRecovery,
}

impl ViolationClass {
    pub const ALL: [ViolationClass; 10] = [
        ViolationClass::SpanNesting,
        ViolationClass::ParkWake,
        ViolationClass::LostWakeup,
        ViolationClass::FlagProtocol,
        ViolationClass::CommitFault,
        ViolationClass::Resource,
        ViolationClass::Delivery,
        ViolationClass::TimeOrder,
        ViolationClass::Cycle,
        ViolationClass::FaultRecovery,
    ];

    pub const fn name(&self) -> &'static str {
        match self {
            ViolationClass::SpanNesting => "span-nesting",
            ViolationClass::ParkWake => "park-wake",
            ViolationClass::LostWakeup => "lost-wakeup",
            ViolationClass::FlagProtocol => "flag-protocol",
            ViolationClass::CommitFault => "commit-fault",
            ViolationClass::Resource => "resource",
            ViolationClass::Delivery => "delivery",
            ViolationClass::TimeOrder => "time-order",
            ViolationClass::Cycle => "cycle",
            ViolationClass::FaultRecovery => "fault-recovery",
        }
    }

    pub fn from_name(s: &str) -> Option<ViolationClass> {
        ViolationClass::ALL.into_iter().find(|c| c.name() == s)
    }
}

impl fmt::Display for ViolationClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One invariant violation, anchored at a virtual instant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    pub class: ViolationClass,
    pub at: Time,
    pub detail: String,
}

/// How much evidence one checker examined (zero-checked checkers make
/// vacuous passes visible).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckStat {
    pub name: &'static str,
    pub checked: u64,
}

/// The audit verdict for one stream.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AuditReport {
    pub events: u64,
    pub edges: u64,
    pub checks: Vec<CheckStat>,
    pub violations: Vec<Violation>,
}

impl AuditReport {
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Distinct violation classes present, sorted.
    pub fn classes(&self) -> BTreeSet<ViolationClass> {
        self.violations.iter().map(|v| v.class).collect()
    }

    /// Total invariant instances examined across all checkers.
    pub fn checked(&self) -> u64 {
        self.checks.iter().map(|c| c.checked).sum()
    }

    /// One-line digest for logs and shape-check details.
    pub fn summary(&self) -> String {
        format!(
            "{} events, {} edges, {} checks → {} violation(s)",
            self.events,
            self.edges,
            self.checked(),
            self.violations.len()
        )
    }
}

const WRITE_KINDS: [OpKind; 4] =
    [OpKind::PutFromMem, OpKind::PutFromMpb, OpKind::GetToMpb, OpKind::FlagPut];

/// Events that carry the engine's recording instant and therefore
/// delimit per-instant commit/wake groups. `Wait` (anchored at
/// arrival), `Compute` (anchored at a future end), span and delivery
/// marks (core clock), and mid-op delay faults do not participate.
fn group_instant(ev: &ObsEvent) -> Option<Time> {
    match *ev {
        ObsEvent::Op { end, .. } => Some(end),
        ObsEvent::Park { at, .. }
        | ObsEvent::Wake { at, .. }
        | ObsEvent::Handoff { at, .. }
        | ObsEvent::MpbWrite { at, .. }
        | ObsEvent::FlagSample { at, .. }
        | ObsEvent::Finish { at, .. } => Some(at),
        ObsEvent::Fault { kind: FaultKind::LostNotification, at, .. } => Some(at),
        _ => None,
    }
}

/// Audit one recorded stream against the invariant catalogue.
pub fn audit(events: &[ObsEvent], spec: &AuditSpec) -> AuditReport {
    let graph = CausalGraph::build(events);
    let mut report = AuditReport {
        events: events.len() as u64,
        edges: graph.edges.len() as u64,
        ..AuditReport::default()
    };
    let mut violations: Vec<Violation> = Vec::new();

    // ---- structural checks on the happens-before graph ----
    if let Err(stuck) = graph.acyclic() {
        violations.push(Violation {
            class: ViolationClass::Cycle,
            at: Time::ZERO,
            detail: format!("happens-before graph has a cycle through {} event(s)", stuck.len()),
        });
    }
    report.checks.push(CheckStat { name: "graph acyclicity", checked: 1 });

    for e in graph.time_violations() {
        let (class, what) = match e.kind {
            EdgeKind::Service => (ViolationClass::Resource, "service intervals overlap"),
            _ => (ViolationClass::TimeOrder, "edge runs backwards in time"),
        };
        violations.push(Violation {
            class,
            at: events[e.to].at(),
            detail: format!("{} edge {} → {}: {what}", e.kind.name(), e.from, e.to),
        });
    }
    report
        .checks
        .push(CheckStat { name: "edge time-consistency", checked: graph.edges.len() as u64 });

    // ---- single forward pass over the stream ----
    // Per-core protocol state.
    let mut span_stack: HashMap<u8, Vec<Span>> = HashMap::new();
    let mut parked: HashMap<u8, usize> = HashMap::new();
    let mut seen_parkish: HashMap<u8, bool> = HashMap::new();
    let mut last_sample: HashMap<u8, usize> = HashMap::new();
    let mut awaiting_repoll: HashMap<u8, usize> = HashMap::new();
    // Last committed flag value per (owner, line); `None` = unknown
    // bytes (payload transfer covered the line).
    let mut last_flag: HashMap<(u8, usize), Option<u32>> = HashMap::new();
    // Delivery windows: 0 never opened, 1 open, 2 closed.
    let mut window_state: HashMap<(u8, u32), u8> = HashMap::new();
    let mut last_close: Option<Time> = None;
    // Per-instant group state.
    let mut group_at: Option<Time> = None;
    let mut first_group = true;
    let mut group_commits: Vec<(u8, u8, usize, usize)> = Vec::new(); // writer, owner, line, lines
    let mut group_ops: HashMap<u8, (u64, u64, u64)> = HashMap::new(); // write ops, commits, lost
    let mut due_wakes: Vec<(u8, u8)> = Vec::new(); // (core, writer) that must wake this instant
                                                   // Counters.
    let (mut spans_n, mut parks_n, mut wakes_n, mut remote_wakes_n) = (0u64, 0u64, 0u64, 0u64);
    let (mut write_ops_n, mut samples_n, mut waits_n, mut tagged_n) = (0u64, 0u64, 0u64, 0u64);
    let (mut self_wakes_n, mut windows_n) = (0u64, 0u64);
    let mut faults_seen = 0u64;

    let flush_group = |at: Time,
                       first: bool,
                       group_ops: &mut HashMap<u8, (u64, u64, u64)>,
                       group_commits: &mut Vec<(u8, u8, usize, usize)>,
                       due_wakes: &mut Vec<(u8, u8)>,
                       violations: &mut Vec<Violation>,
                       window: bool| {
        let tolerate = window && first;
        let mut cores: Vec<&u8> = group_ops.keys().collect();
        cores.sort_unstable();
        for &&c in &cores {
            let (ops, commits, lost) = group_ops[&c];
            if ops != commits + lost && !tolerate {
                violations.push(Violation {
                        class: ViolationClass::CommitFault,
                        at,
                        detail: format!(
                            "core {c} at {at}: {ops} write op(s) vs {commits} commit(s) + {lost} lost notification(s)"
                        ),
                    });
            }
        }
        for &(core, writer) in due_wakes.iter() {
            if !tolerate {
                violations.push(Violation {
                        class: ViolationClass::LostWakeup,
                        at,
                        detail: format!(
                            "core {writer} committed over core {core}'s watched line at {at} but no wake followed"
                        ),
                    });
            }
        }
        group_ops.clear();
        group_commits.clear();
        due_wakes.clear();
    };

    for ev in events {
        // Close the per-instant group when the recording clock moves.
        if let Some(at) = group_instant(ev) {
            if group_at.is_some_and(|g| g != at) {
                flush_group(
                    group_at.unwrap(),
                    first_group,
                    &mut group_ops,
                    &mut group_commits,
                    &mut due_wakes,
                    &mut violations,
                    spec.window,
                );
                first_group = false;
            }
            group_at = Some(at);
        }

        // A park's "failed poll" marker survives only until the core's
        // next attributed event (the park itself consumes it).
        let a = crate::causal::actor(ev).0;
        let prev_sample = last_sample.get(&a).copied();
        let was_sample = matches!(ev, ObsEvent::FlagSample { .. });
        let keep_sample = matches!(ev, ObsEvent::Wait { .. }); // waits precede their op
        if !was_sample && !keep_sample {
            last_sample.remove(&a);
        }

        match *ev {
            ObsEvent::SpanBegin { core, span, .. } => {
                span_stack.entry(core.0).or_default().push(span);
            }
            ObsEvent::SpanEnd { core, span, at } => {
                spans_n += 1;
                match span_stack.entry(core.0).or_default().pop() {
                    Some(open) if open == span => {}
                    Some(open) => violations.push(Violation {
                        class: ViolationClass::SpanNesting,
                        at,
                        detail: format!(
                            "core {} closed span {}:{} but {}:{} was open",
                            core.index(),
                            span.phase.name(),
                            span.arg,
                            open.phase.name(),
                            open.arg
                        ),
                    }),
                    None if spec.window => {} // open predates the window
                    None => violations.push(Violation {
                        class: ViolationClass::SpanNesting,
                        at,
                        detail: format!(
                            "core {} closed span {}:{} with no span open",
                            core.index(),
                            span.phase.name(),
                            span.arg
                        ),
                    }),
                }
            }
            ObsEvent::Op { core, kind, start, end, msg, .. } => {
                if WRITE_KINDS.contains(&kind) {
                    write_ops_n += 1;
                    group_ops.entry(core.0).or_default().0 += 1;
                }
                if let Some(line) = awaiting_repoll.get(&core.0).copied() {
                    if kind != OpKind::FlagRead {
                        awaiting_repoll.remove(&core.0);
                        violations.push(Violation {
                            class: ViolationClass::FlagProtocol,
                            at: end,
                            detail: format!(
                                "core {} was woken on line {line} but its next op is {kind}, not a re-poll",
                                core.index()
                            ),
                        });
                    }
                }
                if let Some(m) = msg {
                    tagged_n += 1;
                    match window_state.get(&(core.0, m.epoch)).copied().unwrap_or(0) {
                        1 => {}
                        0 if spec.window => {} // window opened before the dump
                        state => violations.push(Violation {
                            class: ViolationClass::Delivery,
                            at: end,
                            detail: format!(
                                "core {} ran an op tagged epoch {} ({}..{}) with its window {}",
                                core.index(),
                                m.epoch,
                                start,
                                end,
                                if state == 2 { "already closed" } else { "never opened" }
                            ),
                        }),
                    }
                }
            }
            ObsEvent::MpbWrite { owner, line, lines, writer, value, .. } => {
                group_ops.entry(writer.0).or_default().1 += 1;
                group_commits.push((writer.0, owner.0, line, lines));
                for l in line..line + lines {
                    last_flag.insert((owner.0, l), value.filter(|_| lines == 1));
                }
                if let Some(&watched) = parked.get(&owner.0) {
                    if (line..line + lines).contains(&watched) {
                        due_wakes.push((owner.0, writer.0));
                    }
                }
            }
            ObsEvent::FlagSample { core, line, value, at } => {
                samples_n += 1;
                last_sample.insert(core.0, line);
                if let Some(Some(committed)) = last_flag.get(&(core.0, line)) {
                    if *committed != value {
                        violations.push(Violation {
                            class: ViolationClass::FlagProtocol,
                            at,
                            detail: format!(
                                "core {} sampled line {line} = {value} but the last commit wrote {committed}",
                                core.index()
                            ),
                        });
                    }
                }
                if awaiting_repoll.get(&core.0) == Some(&line) {
                    awaiting_repoll.remove(&core.0);
                }
            }
            ObsEvent::Park { core, line, at } => {
                parks_n += 1;
                let first_for_core = !seen_parkish.insert(core.0, true).unwrap_or(false);
                if parked.insert(core.0, line).is_some() {
                    violations.push(Violation {
                        class: ViolationClass::ParkWake,
                        at,
                        detail: format!("core {} parked twice with no wake between", core.index()),
                    });
                }
                if prev_sample != Some(line) && !(spec.window && first_for_core) {
                    violations.push(Violation {
                        class: ViolationClass::ParkWake,
                        at,
                        detail: format!(
                            "core {} parked on line {line} without a failed poll of that line",
                            core.index()
                        ),
                    });
                }
            }
            ObsEvent::Wake { core, line, at, writer } => {
                wakes_n += 1;
                let first_for_core = !seen_parkish.insert(core.0, true).unwrap_or(false);
                let was_parked = parked.remove(&core.0);
                if was_parked.is_none() && !(spec.window && first_for_core) {
                    violations.push(Violation {
                        class: ViolationClass::ParkWake,
                        at,
                        detail: format!("core {} woke without being parked", core.index()),
                    });
                }
                if writer == core {
                    // Timeout self-wake: reliability-layer behaviour.
                    self_wakes_n += 1;
                    if !spec.reliable {
                        violations.push(Violation {
                            class: ViolationClass::FaultRecovery,
                            at,
                            detail: format!(
                                "core {} timed out waiting on line {line} but no reliability policy was armed",
                                core.index()
                            ),
                        });
                    } else if !spec.faulted {
                        violations.push(Violation {
                            class: ViolationClass::FaultRecovery,
                            at,
                            detail: format!(
                                "core {} timed out on line {line} in a healthy run (policy guarantees timeout-free)",
                                core.index()
                            ),
                        });
                    } else if faults_seen == 0 && !spec.window {
                        violations.push(Violation {
                            class: ViolationClass::FaultRecovery,
                            at,
                            detail: format!(
                                "core {} recovery timeout on line {line} chains back to no injected fault",
                                core.index()
                            ),
                        });
                    }
                } else {
                    remote_wakes_n += 1;
                    due_wakes.retain(|&(c, w)| !(c == core.0 && w == writer.0));
                    let covered = group_commits.iter().any(|&(w, owner, l, n)| {
                        w == writer.0 && owner == core.0 && (l..l + n).contains(&line)
                    });
                    if !(covered || spec.window && first_group) {
                        violations.push(Violation {
                            class: ViolationClass::ParkWake,
                            at,
                            detail: format!(
                                "core {} woken on line {line} by core {} without a covering commit at {at}",
                                core.index(),
                                writer.index()
                            ),
                        });
                    }
                    if was_parked.is_some() {
                        awaiting_repoll.insert(core.0, line);
                    }
                }
            }
            ObsEvent::Wait { arrival, start, .. } => {
                waits_n += 1;
                if start < arrival {
                    violations.push(Violation {
                        class: ViolationClass::Resource,
                        at: arrival,
                        detail: format!("booking served at {start} before its arrival {arrival}"),
                    });
                }
            }
            ObsEvent::DeliveryBegin { core, epoch, at } => {
                match window_state.insert((core.0, epoch), 1) {
                    None | Some(0) => {}
                    Some(_) => violations.push(Violation {
                        class: ViolationClass::Delivery,
                        at,
                        detail: format!(
                            "core {} reopened delivery window for epoch {epoch}",
                            core.index()
                        ),
                    }),
                }
            }
            ObsEvent::DeliveryEnd { core, epoch, at } => {
                windows_n += 1;
                match window_state.insert((core.0, epoch), 2) {
                    Some(1) => {}
                    None | Some(0) if spec.window => {} // opened before the dump
                    state => violations.push(Violation {
                        class: ViolationClass::Delivery,
                        at,
                        detail: format!(
                            "core {} closed delivery window for epoch {epoch} that was {}",
                            core.index(),
                            if state == Some(2) { "already closed" } else { "never open" }
                        ),
                    }),
                }
                last_close = Some(last_close.map_or(at, |c| c.max(at)));
            }
            ObsEvent::Fault { kind, at, .. } => {
                if kind == FaultKind::LostNotification {
                    faults_seen += 1;
                    group_ops.entry(crate::causal::actor(ev).0).or_default().2 += 1;
                }
                if !spec.faulted {
                    violations.push(Violation {
                        class: ViolationClass::FaultRecovery,
                        at,
                        detail: format!("{kind} fault recorded but no fault plan was declared"),
                    });
                }
            }
            ObsEvent::Compute { .. } | ObsEvent::Handoff { .. } | ObsEvent::Finish { .. } => {}
        }
    }
    if let Some(at) = group_at {
        flush_group(
            at,
            first_group,
            &mut group_ops,
            &mut group_commits,
            &mut due_wakes,
            &mut violations,
            spec.window,
        );
    }

    // ---- end-of-stream obligations ----
    if !spec.window {
        let mut open_spans: Vec<(u8, usize)> =
            span_stack.iter().filter(|(_, s)| !s.is_empty()).map(|(c, s)| (*c, s.len())).collect();
        open_spans.sort_unstable();
        for (core, n) in open_spans {
            violations.push(Violation {
                class: ViolationClass::SpanNesting,
                at: Time::ZERO,
                detail: format!("core {core} finished with {n} span(s) still open"),
            });
        }
        let mut still_parked: Vec<u8> = parked.keys().copied().collect();
        still_parked.sort_unstable();
        for core in still_parked {
            violations.push(Violation {
                class: ViolationClass::ParkWake,
                at: Time::ZERO,
                detail: format!("core {core} is still parked at end of run"),
            });
        }
        let mut open_windows: Vec<(u8, u32)> =
            window_state.iter().filter(|(_, &s)| s == 1).map(|(&(c, e), _)| (c, e)).collect();
        open_windows.sort_unstable();
        for (core, epoch) in open_windows {
            violations.push(Violation {
                class: ViolationClass::Delivery,
                at: Time::ZERO,
                detail: format!("core {core} never closed its delivery window for epoch {epoch}"),
            });
        }
    }
    if let Some(m) = spec.makespan {
        match last_close {
            Some(c) if c == m => {}
            Some(c) => violations.push(Violation {
                class: ViolationClass::Delivery,
                at: c,
                detail: format!("last delivery close at {c} != makespan {m}"),
            }),
            None => violations.push(Violation {
                class: ViolationClass::Delivery,
                at: Time::ZERO,
                detail: "makespan given but the stream closes no delivery window".into(),
            }),
        }
    }

    report.checks.push(CheckStat { name: "span nesting", checked: spans_n });
    report.checks.push(CheckStat { name: "park/wake pairing", checked: parks_n + wakes_n });
    report.checks.push(CheckStat { name: "wake provenance", checked: remote_wakes_n });
    report.checks.push(CheckStat { name: "commit/fault pairing", checked: write_ops_n });
    report.checks.push(CheckStat { name: "flag samples", checked: samples_n });
    report.checks.push(CheckStat { name: "resource bookings", checked: waits_n });
    report.checks.push(CheckStat { name: "delivery containment", checked: tagged_n });
    report.checks.push(CheckStat { name: "delivery windows", checked: windows_n });
    report.checks.push(CheckStat { name: "recovery chain", checked: self_wakes_n });
    report.violations = violations;
    report
}

// ---------------------------------------------------------------------
// Seeded mutation harness
// ---------------------------------------------------------------------

/// One structured way to corrupt a recorded stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MutationClass {
    /// Delete a remote wake (its covering commit stays).
    DropWake,
    /// Swap the service intervals of two bookings on one resource.
    SwapService,
    /// Cross two span closes (swap their span identities).
    CrossSpanClose,
    /// Retag an op's message with a foreign epoch.
    RetagEpoch,
    /// Delete an injected lost-notification fault event.
    DeleteFault,
}

impl MutationClass {
    pub const ALL: [MutationClass; 5] = [
        MutationClass::DropWake,
        MutationClass::SwapService,
        MutationClass::CrossSpanClose,
        MutationClass::RetagEpoch,
        MutationClass::DeleteFault,
    ];

    pub const fn name(&self) -> &'static str {
        match self {
            MutationClass::DropWake => "drop-wake",
            MutationClass::SwapService => "swap-service",
            MutationClass::CrossSpanClose => "cross-span-close",
            MutationClass::RetagEpoch => "retag-epoch",
            MutationClass::DeleteFault => "delete-fault",
        }
    }

    /// The violation class a correct auditor must report for this
    /// corruption.
    pub const fn expected(&self) -> ViolationClass {
        match self {
            MutationClass::DropWake => ViolationClass::LostWakeup,
            MutationClass::SwapService => ViolationClass::Resource,
            MutationClass::CrossSpanClose => ViolationClass::SpanNesting,
            MutationClass::RetagEpoch => ViolationClass::Delivery,
            MutationClass::DeleteFault => ViolationClass::CommitFault,
        }
    }
}

impl fmt::Display for MutationClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Deterministic splitmix64 step (the harness needs reproducible site
/// selection, never entropy).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Apply one seeded mutation of `class` to the stream. Returns a
/// description of what was corrupted, or `None` when the stream has no
/// eligible site (e.g. [`MutationClass::DeleteFault`] on a healthy
/// run).
pub fn mutate(events: &mut Vec<ObsEvent>, class: MutationClass, seed: u64) -> Option<String> {
    let mut rng = seed ^ 0xA076_1D64_78BD_642F;
    let pick = |rng: &mut u64, n: usize| (splitmix64(rng) % n as u64) as usize;
    match class {
        MutationClass::DropWake => {
            let sites: Vec<usize> = events
                .iter()
                .enumerate()
                .filter(|(_, e)| matches!(e, ObsEvent::Wake { core, writer, .. } if core != writer))
                .map(|(i, _)| i)
                .collect();
            if sites.is_empty() {
                return None;
            }
            let i = sites[pick(&mut rng, sites.len())];
            let desc = format!("dropped {:?} at index {i}", events[i]);
            events.remove(i);
            Some(desc)
        }
        MutationClass::SwapService => {
            // Eligible pair: same resource, i served first, j arrived
            // after i's service started — swapping their intervals
            // forces j to be served before it arrived.
            let waits: Vec<usize> = events
                .iter()
                .enumerate()
                .filter(|(_, e)| matches!(e, ObsEvent::Wait { .. }))
                .map(|(i, _)| i)
                .collect();
            let mut pairs: Vec<(usize, usize)> = Vec::new();
            for (n, &i) in waits.iter().enumerate() {
                let ObsEvent::Wait { resource: ri, start: si, .. } = events[i] else { continue };
                for &j in waits.iter().skip(n + 1).take(64) {
                    let ObsEvent::Wait { resource: rj, arrival: aj, start: sj, .. } = events[j]
                    else {
                        continue;
                    };
                    if ri == rj && si < sj && aj > si {
                        pairs.push((i, j));
                    }
                }
            }
            if pairs.is_empty() {
                return None;
            }
            let (i, j) = pairs[pick(&mut rng, pairs.len())];
            let (
                ObsEvent::Wait { start: si, end: ei, .. },
                ObsEvent::Wait { start: sj, end: ej, .. },
            ) = (events[i], events[j])
            else {
                return None;
            };
            let set = |ev: &mut ObsEvent, s: Time, e: Time| {
                if let ObsEvent::Wait { start, end, .. } = ev {
                    *start = s;
                    *end = e;
                }
            };
            set(&mut events[i], sj, ej);
            set(&mut events[j], si, ei);
            Some(format!("swapped service intervals of bookings {i} and {j}"))
        }
        MutationClass::CrossSpanClose => {
            let closes: Vec<(usize, Span)> = events
                .iter()
                .enumerate()
                .filter_map(|(i, e)| match *e {
                    ObsEvent::SpanEnd { span, .. } => Some((i, span)),
                    _ => None,
                })
                .collect();
            let mut pairs: Vec<(usize, usize)> = Vec::new();
            for (n, &(i, si)) in closes.iter().enumerate() {
                for &(j, sj) in closes.iter().skip(n + 1).take(64) {
                    if si != sj {
                        pairs.push((i, j));
                    }
                }
            }
            if pairs.is_empty() {
                return None;
            }
            let (i, j) = pairs[pick(&mut rng, pairs.len())];
            let (ObsEvent::SpanEnd { span: si, .. }, ObsEvent::SpanEnd { span: sj, .. }) =
                (events[i], events[j])
            else {
                return None;
            };
            let set = |ev: &mut ObsEvent, s: Span| {
                if let ObsEvent::SpanEnd { span, .. } = ev {
                    *span = s;
                }
            };
            set(&mut events[i], sj);
            set(&mut events[j], si);
            Some(format!("crossed span closes {i} and {j}"))
        }
        MutationClass::RetagEpoch => {
            let sites: Vec<usize> = events
                .iter()
                .enumerate()
                .filter(|(_, e)| matches!(e, ObsEvent::Op { msg: Some(_), .. }))
                .map(|(i, _)| i)
                .collect();
            if sites.is_empty() {
                return None;
            }
            let i = sites[pick(&mut rng, sites.len())];
            if let ObsEvent::Op { msg: Some(m), .. } = &mut events[i] {
                m.epoch = m.epoch.wrapping_add(1000);
                Some(format!("retagged op {i} to epoch {}", m.epoch))
            } else {
                None
            }
        }
        MutationClass::DeleteFault => {
            let sites: Vec<usize> = events
                .iter()
                .enumerate()
                .filter(|(_, e)| {
                    matches!(e, ObsEvent::Fault { kind: FaultKind::LostNotification, .. })
                })
                .map(|(i, _)| i)
                .collect();
            if sites.is_empty() {
                return None;
            }
            let i = sites[pick(&mut rng, sites.len())];
            let desc = format!("deleted {:?} at index {i}", events[i]);
            events.remove(i);
            Some(desc)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scc_hal::{CoreId, MsgId, Phase};

    fn ns(v: u64) -> Time {
        Time::from_ns(v)
    }

    /// A tiny hand-built conformant stream: core 0 notifies core 1,
    /// which was parked after a failed poll; both run inside spans and
    /// delivery windows.
    fn conformant() -> Vec<ObsEvent> {
        let span = Span::new(Phase::NotifyWait, 0);
        vec![
            ObsEvent::DeliveryBegin { core: CoreId(0), epoch: 0, at: ns(0) },
            ObsEvent::DeliveryBegin { core: CoreId(1), epoch: 0, at: ns(0) },
            ObsEvent::SpanBegin { core: CoreId(1), span, at: ns(0) },
            // Core 1 polls its flag line 2, sees the old value, parks.
            ObsEvent::Op {
                core: CoreId(1),
                kind: OpKind::FlagRead,
                lines: 1,
                start: ns(0),
                end: ns(1),
                msg: None,
            },
            ObsEvent::FlagSample { core: CoreId(1), line: 2, value: 0, at: ns(1) },
            ObsEvent::Park { core: CoreId(1), line: 2, at: ns(1) },
            // Core 0 deposits the notification flag.
            ObsEvent::Op {
                core: CoreId(0),
                kind: OpKind::FlagPut,
                lines: 1,
                start: ns(1),
                end: ns(5),
                msg: Some(MsgId::new(0, CoreId(0), CoreId(1), 0)),
            },
            ObsEvent::MpbWrite {
                owner: CoreId(1),
                line: 2,
                lines: 1,
                writer: CoreId(0),
                value: Some(7),
                at: ns(5),
            },
            ObsEvent::Wake { core: CoreId(1), line: 2, at: ns(5), writer: CoreId(0) },
            // The woken core re-polls and sees the committed value.
            ObsEvent::Op {
                core: CoreId(1),
                kind: OpKind::FlagRead,
                lines: 1,
                start: ns(5),
                end: ns(6),
                msg: None,
            },
            ObsEvent::FlagSample { core: CoreId(1), line: 2, value: 7, at: ns(6) },
            ObsEvent::SpanEnd { core: CoreId(1), span, at: ns(6) },
            ObsEvent::DeliveryEnd { core: CoreId(0), epoch: 0, at: ns(5) },
            ObsEvent::DeliveryEnd { core: CoreId(1), epoch: 0, at: ns(7) },
            ObsEvent::Finish { core: CoreId(0), at: ns(5) },
            ObsEvent::Finish { core: CoreId(1), at: ns(7) },
        ]
    }

    #[test]
    fn conformant_stream_audits_clean() {
        let events = conformant();
        let rep = audit(&events, &AuditSpec::plain().with_makespan(ns(7)));
        assert!(rep.ok(), "{:?}", rep.violations);
        assert!(rep.checked() > 0);
        assert_eq!(rep.events, events.len() as u64);
    }

    #[test]
    fn dropped_wake_is_a_lost_wakeup() {
        let mut events = conformant();
        events.retain(|e| !matches!(e, ObsEvent::Wake { .. }));
        let rep = audit(&events, &AuditSpec::plain().with_makespan(ns(7)));
        assert!(rep.classes().contains(&ViolationClass::LostWakeup), "{:?}", rep.violations);
    }

    #[test]
    fn stale_sample_value_is_flag_protocol() {
        let mut events = conformant();
        for e in &mut events {
            if let ObsEvent::FlagSample { value: v @ 7, .. } = e {
                *v = 3;
            }
        }
        let rep = audit(&events, &AuditSpec::plain().with_makespan(ns(7)));
        assert!(rep.classes().contains(&ViolationClass::FlagProtocol), "{:?}", rep.violations);
    }

    #[test]
    fn park_without_poll_is_park_wake() {
        let mut events = conformant();
        events.retain(|e| !matches!(e, ObsEvent::FlagSample { value: 0, .. }));
        let rep = audit(&events, &AuditSpec::plain().with_makespan(ns(7)));
        assert!(rep.classes().contains(&ViolationClass::ParkWake), "{:?}", rep.violations);
    }

    #[test]
    fn unclosed_window_is_a_delivery_violation_in_full_mode_only() {
        let mut events = conformant();
        events.retain(|e| !matches!(e, ObsEvent::DeliveryEnd { core: CoreId(1), .. }));
        let rep = audit(&events, &AuditSpec::plain());
        assert!(rep.classes().contains(&ViolationClass::Delivery));
        let rep = audit(&events, &AuditSpec::plain().windowed());
        assert!(rep.ok(), "{:?}", rep.violations);
    }

    #[test]
    fn window_mode_tolerates_truncated_prefix() {
        let events = conformant();
        // Cut the first 6 events: the window starts mid-protocol, right
        // at the notifier's op (its park/poll past is gone).
        let cut = &events[6..];
        let rep = audit(cut, &AuditSpec::plain().windowed());
        assert!(rep.ok(), "{:?}", rep.violations);
        // The same truncation is NOT clean as a full run.
        let rep = audit(cut, &AuditSpec::plain());
        assert!(!rep.ok());
    }

    #[test]
    fn timeout_self_wake_needs_reliability_and_faults() {
        let mut events = conformant();
        events.insert(6, ObsEvent::Wake { core: CoreId(1), line: 2, at: ns(3), writer: CoreId(1) });
        // Re-park so downstream pairing stays consistent: replace the
        // original wake sequence — simplest is to audit as-is and only
        // assert on the class.
        let rep = audit(&events, &AuditSpec::plain());
        assert!(rep.classes().contains(&ViolationClass::FaultRecovery), "{:?}", rep.violations);
        let rep = audit(&events, &AuditSpec::reliable());
        assert!(rep.classes().contains(&ViolationClass::FaultRecovery));
    }

    #[test]
    fn fault_without_plan_is_flagged() {
        let mut events = conformant();
        events.push(ObsEvent::Fault {
            core: CoreId(0),
            kind: FaultKind::LostNotification,
            at: ns(7),
            lost: Time::ZERO,
        });
        let rep = audit(&events, &AuditSpec::plain());
        assert!(rep.classes().contains(&ViolationClass::FaultRecovery), "{:?}", rep.violations);
    }

    #[test]
    fn makespan_mismatch_is_a_delivery_violation() {
        let events = conformant();
        let rep = audit(&events, &AuditSpec::plain().with_makespan(ns(9)));
        assert!(rep.classes().contains(&ViolationClass::Delivery));
    }

    #[test]
    fn mutation_classes_map_to_expected_violations() {
        // The hand-built stream is too small for some classes; those
        // are exercised end-to-end by the bench experiment and the
        // proptests. Here: the classes with eligible sites.
        for (class, seed) in [(MutationClass::DropWake, 1), (MutationClass::CrossSpanClose, 2)] {
            let mut events = conformant();
            // CrossSpanClose needs two different spans; add one.
            let extra = Span::new(Phase::Dissemination, 1);
            events.insert(1, ObsEvent::SpanBegin { core: CoreId(0), span: extra, at: ns(0) });
            events.insert(12, ObsEvent::SpanEnd { core: CoreId(0), span: extra, at: ns(5) });
            if mutate(&mut events, class, seed).is_some() {
                let rep = audit(&events, &AuditSpec::plain());
                assert!(
                    rep.classes().contains(&class.expected()),
                    "{class}: expected {:?}, got {:?}",
                    class.expected(),
                    rep.violations
                );
            }
        }
    }

    #[test]
    fn mutate_returns_none_without_eligible_sites() {
        let mut events = vec![ObsEvent::Finish { core: CoreId(0), at: ns(1) }];
        for class in MutationClass::ALL {
            assert!(mutate(&mut events, class, 7).is_none(), "{class}");
        }
    }

    #[test]
    fn class_names_round_trip() {
        for c in ViolationClass::ALL {
            assert_eq!(ViolationClass::from_name(c.name()), Some(c));
        }
    }
}
