//! Delivery-skew analysis: who got the broadcast late, and why.
//!
//! From a [`JourneyBook`] this module derives the delivery-latency
//! distribution (exact nearest-rank p50/p99/max via
//! [`LatencyHistogram`]), identifies the *straggler* (the journey whose
//! delivery window closed last — by construction the broadcast's
//! makespan), and attributes its excess latency leg by leg against the
//! nearest-rank *median* journey. Because per-journey leg dwells are an
//! exact partition of the delivery latency (see [`crate::journey`]),
//! the per-leg deltas sum exactly to the straggler-minus-median latency
//! difference — the attribution cannot hide time.

use crate::hist::LatencyHistogram;
use crate::journey::{Journey, JourneyBook, LegKind};
use scc_hal::Time;
use std::fmt::Write as _;

/// Recovery-layer counters (`oc_bcast::RelStats` shaped — `scc-obs`
/// cannot depend on the collectives crate, so the caller copies the
/// fields over) attached to a skew report when the recorded run went
/// through the reliable protocols. A straggler that was *recovered* —
/// its notification dropped, found by a timeout probe — dwells in the
/// same legs as an ordinary slow delivery; these counters let the
/// report name the recovery instead of blaming the legs alone.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryCounters {
    pub timeouts: u64,
    pub probes: u64,
    pub recoveries: u64,
    pub renotifies: u64,
}

impl RecoveryCounters {
    /// Did the reliability layer repair anything at all?
    pub fn any(&self) -> bool {
        self.timeouts + self.probes + self.recoveries + self.renotifies > 0
    }
}

/// The skew digest of one scenario.
#[derive(Clone, Debug)]
pub struct SkewReport {
    pub scenario: String,
    /// Number of journeys in the distribution.
    pub count: usize,
    /// Nearest-rank quantiles of the delivery-latency distribution.
    pub p50: Time,
    pub p99: Time,
    pub max: Time,
    /// The journey that closed last (ties broken by lowest core id).
    pub straggler: Journey,
    /// The nearest-rank median journey by latency.
    pub median: Journey,
    /// The run's makespan, for the `straggler.end == makespan` check.
    pub makespan: Time,
    /// Recovery counters of the run, when the caller measured a
    /// reliable protocol. `None` renders nothing — plain reports are
    /// byte-identical to before the field existed.
    pub recovery: Option<RecoveryCounters>,
}

impl SkewReport {
    /// `None` when the book holds no journeys (recording was off, or
    /// the collective degenerated to a no-op).
    pub fn from_book(scenario: &str, book: &JourneyBook) -> Option<SkewReport> {
        if book.journeys.is_empty() {
            return None;
        }
        let mut hist = LatencyHistogram::new();
        for j in &book.journeys {
            hist.record(j.latency());
        }
        let p50 = hist.quantile(0.50)?;
        let p99 = hist.quantile(0.99)?;
        let max = hist.max()?;
        let straggler =
            book.journeys.iter().max_by_key(|j| (j.end, std::cmp::Reverse(j.core.0)))?.clone();
        // Nearest-rank median journey: sort by (latency, core), take
        // rank ceil(n/2).
        let mut by_latency: Vec<&Journey> = book.journeys.iter().collect();
        by_latency.sort_by_key(|j| (j.latency(), j.core.0));
        let median = by_latency[by_latency.len().div_ceil(2) - 1].clone();
        Some(SkewReport {
            scenario: scenario.to_string(),
            count: book.journeys.len(),
            p50,
            p99,
            max,
            straggler,
            median,
            makespan: book.makespan,
            recovery: None,
        })
    }

    /// Attach the run's recovery counters (builder style, for the
    /// reliable-path callers).
    pub fn with_recovery(mut self, rc: RecoveryCounters) -> SkewReport {
        self.recovery = Some(rc);
        self
    }

    /// Per-leg `(straggler dwell, median dwell)` pairs, report order.
    pub fn attribution(&self) -> Vec<(LegKind, Time, Time)> {
        LegKind::ALL.into_iter().map(|k| (k, self.straggler.leg(k), self.median.leg(k))).collect()
    }

    /// The leg with the largest straggler-over-median excess — the
    /// root cause the report leads with. `None` when the straggler is
    /// nowhere slower than the median.
    pub fn dominant_leg(&self) -> Option<(LegKind, Time)> {
        self.attribution()
            .into_iter()
            .filter(|&(_, s, m)| s > m)
            .map(|(k, s, m)| (k, s - m))
            .max_by_key(|&(k, d)| (d, std::cmp::Reverse(k.index())))
    }
}

/// Render `results/SKEW.md`: one section per scenario, fully
/// deterministic (virtual times only).
pub fn render_skew_markdown(reports: &[SkewReport]) -> String {
    let us = |t: Time| format!("{:.3}", t.as_us_f64());
    let mut out = String::from("# Delivery skew\n\n");
    let _ = writeln!(
        out,
        "Per-destination delivery latency (window open at collective \
         entry, close when the core holds the full payload), with the \
         straggler's excess attributed leg by leg against the median \
         journey. Leg dwells partition each journey exactly, so the \
         `delta` column sums to the straggler-minus-median latency.\n"
    );
    for r in reports {
        let _ = writeln!(out, "## {}\n", r.scenario);
        let _ = writeln!(out, "| metric | value |");
        let _ = writeln!(out, "|---|---|");
        let _ = writeln!(out, "| journeys | {} |", r.count);
        let _ = writeln!(out, "| delivery p50 | {} us |", us(r.p50));
        let _ = writeln!(out, "| delivery p99 | {} us |", us(r.p99));
        let _ = writeln!(out, "| delivery max | {} us |", us(r.max));
        let _ = writeln!(
            out,
            "| straggler | C{} (closed at {} us; makespan {} us) |",
            r.straggler.core.index(),
            us(r.straggler.end),
            us(r.makespan),
        );
        match r.dominant_leg() {
            Some((k, d)) => {
                let _ = writeln!(out, "| root cause | {} (+{} us vs median) |", k.name(), us(d));
            }
            None => {
                let _ = writeln!(out, "| root cause | none (straggler matches median) |");
            }
        }
        if let Some(rc) = r.recovery {
            let verdict = if rc.any() {
                format!(
                    "{} timeouts, {} probes, {} recoveries, {} re-notifies — \
                     the tail includes repaired deliveries, not just queueing",
                    rc.timeouts, rc.probes, rc.recoveries, rc.renotifies
                )
            } else {
                "clean (no timeouts, no recoveries)".to_string()
            };
            let _ = writeln!(out, "| reliability | {verdict} |");
        }
        let _ = writeln!(
            out,
            "\n### C{} vs median C{}\n",
            r.straggler.core.index(),
            r.median.core.index()
        );
        let _ = writeln!(out, "| leg | straggler (us) | median (us) | delta (us) |");
        let _ = writeln!(out, "|---|---|---|---|");
        for (k, s, m) in r.attribution() {
            if s == Time::ZERO && m == Time::ZERO {
                continue;
            }
            let delta = s.as_us_f64() - m.as_us_f64();
            let _ = writeln!(out, "| {} | {} | {} | {delta:+.3} |", k.name(), us(s), us(m));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{ObsEvent, OpKind};
    use scc_hal::CoreId;

    fn ps(v: u64) -> Time {
        Time::from_ps(v)
    }

    fn run_with_ends(ends: &[u64]) -> JourneyBook {
        let mut events = Vec::new();
        for (i, &e) in ends.iter().enumerate() {
            events.push(ObsEvent::DeliveryBegin { core: CoreId(i as u8), epoch: 0, at: ps(0) });
            // Give the straggler a distinctive poll leg.
            events.push(ObsEvent::Op {
                core: CoreId(i as u8),
                kind: OpKind::FlagRead,
                lines: 1,
                start: ps(0),
                end: ps(e / 2),
                msg: None,
            });
            events.push(ObsEvent::DeliveryEnd { core: CoreId(i as u8), epoch: 0, at: ps(e) });
            events.push(ObsEvent::Finish { core: CoreId(i as u8), at: ps(e) });
        }
        JourneyBook::from_events(&events)
    }

    #[test]
    fn straggler_is_last_delivery_and_equals_makespan() {
        let book = run_with_ends(&[300, 900, 500, 400]);
        let r = SkewReport::from_book("t", &book).unwrap();
        assert_eq!(r.straggler.core, CoreId(1));
        assert_eq!(r.straggler.end, book.makespan);
        assert_eq!(r.max, ps(900));
        assert_eq!(r.p50, ps(400), "nearest-rank median of 300/400/500/900");
        assert_eq!(r.median.latency(), ps(400));
        let (k, d) = r.dominant_leg().unwrap();
        assert_eq!(k, LegKind::FlagNotify, "straggler polls longest");
        assert_eq!(d, ps(450 - 200));
    }

    #[test]
    fn empty_book_has_no_report() {
        assert!(SkewReport::from_book("t", &JourneyBook::default()).is_none());
    }

    #[test]
    fn markdown_is_deterministic_and_names_the_root_cause() {
        let book = run_with_ends(&[100, 700, 200]);
        let r = SkewReport::from_book("oc-bcast", &book).unwrap();
        let md1 = render_skew_markdown(std::slice::from_ref(&r));
        let md2 = render_skew_markdown(std::slice::from_ref(&r));
        assert_eq!(md1, md2);
        assert!(md1.contains("## oc-bcast"), "{md1}");
        assert!(md1.contains("| root cause | flag-notify"), "{md1}");
        assert!(md1.contains("| delivery max | 0.001 us |"), "{md1}");
        assert!(!md1.contains("| reliability |"), "plain reports stay unchanged: {md1}");
    }

    #[test]
    fn recovery_counters_name_the_repair_when_attached() {
        let book = run_with_ends(&[100, 700, 200]);
        let r = SkewReport::from_book("oc-bcast", &book).unwrap().with_recovery(RecoveryCounters {
            timeouts: 2,
            probes: 2,
            recoveries: 1,
            renotifies: 0,
        });
        let md = render_skew_markdown(std::slice::from_ref(&r));
        assert!(md.contains("| reliability | 2 timeouts, 2 probes, 1 recoveries"), "{md}");
        let clean = SkewReport::from_book("oc-bcast", &book)
            .unwrap()
            .with_recovery(RecoveryCounters::default());
        let md = render_skew_markdown(std::slice::from_ref(&clean));
        assert!(md.contains("| reliability | clean (no timeouts, no recoveries) |"), "{md}");
    }
}
