//! Causal-audit results: the structured record behind
//! `BENCH_audit.json` and `results/AUDIT.md`.
//!
//! One [`AuditScenario`] per recorded protocol run the observatory
//! re-audited under `--audit`: the happens-before graph size, how many
//! invariant instances each checker examined, every violation found
//! (zero on a healthy run), and the seeded mutation trials that prove
//! the checkers are not vacuous — each trial names the mutation class
//! applied, whether the auditor detected *anything*, and whether the
//! expected violation class was among what it reported. Counts and
//! names only — no floats, no timestamps — so the artifact is
//! byte-identical across hosts and `--jobs` settings.

use crate::artifact::{count, req_bool, req_u64, scenario_envelope};
use crate::report::Json;
use std::fmt::Write as _;

/// One seeded mutation trial of the non-vacuity harness.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MutationTrial {
    /// [`crate::MutationClass::name`] of the mutation applied.
    pub mutation: String,
    /// Seed the mutation site was drawn with.
    pub seed: u64,
    /// The auditor reported at least one violation on the mutant.
    pub detected: bool,
    /// The expected [`crate::ViolationClass`] was among those reported.
    pub classified: bool,
}

/// One recorded scenario's audit outcome.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AuditScenario {
    /// Stable id, e.g. `"oc_k7_faulted"` — names the row keys and CI
    /// diffs.
    pub id: String,
    /// Human label, e.g. `"k=7 48c 96cl reliable+faults"`.
    pub label: String,
    pub cores: u64,
    /// Recorded events audited.
    pub events: u64,
    /// Happens-before edges the causal graph carries.
    pub edges: u64,
    /// Invariant instances examined, summed over every checker.
    pub checks: u64,
    /// Violations found (must be 0 — the shape checks pin this).
    pub violations: u64,
    /// Distinct [`crate::ViolationClass::name`]s found (empty when
    /// healthy; kept so a CI failure names the class in the diff).
    pub classes: Vec<String>,
    /// The mutation trials run against this scenario's stream.
    pub mutations: Vec<MutationTrial>,
}

impl AuditScenario {
    /// Every mutation trial was detected *and* correctly classified.
    pub fn mutations_all_caught(&self) -> bool {
        self.mutations.iter().all(|m| m.detected && m.classified)
    }
}

/// The versioned `BENCH_audit.json` envelope, validated by
/// [`crate::validate_artifact_version`].
pub fn audit_artifact(scenarios: &[AuditScenario]) -> Json {
    let arr = scenarios
        .iter()
        .map(|s| {
            let muts = s
                .mutations
                .iter()
                .map(|m| {
                    Json::obj()
                        .set("mutation", Json::Str(m.mutation.clone()))
                        // Seeds span the full u64 range; a JSON int
                        // (i64) would go negative past 2^63, so the
                        // envelope carries them as hex strings.
                        .set("seed", Json::Str(format!("{:#x}", m.seed)))
                        .set("detected", Json::Bool(m.detected))
                        .set("classified", Json::Bool(m.classified))
                })
                .collect();
            Json::obj()
                .set("id", Json::Str(s.id.clone()))
                .set("label", Json::Str(s.label.clone()))
                .set("cores", count(s.cores))
                .set("events", count(s.events))
                .set("edges", count(s.edges))
                .set("checks", count(s.checks))
                .set("violations", count(s.violations))
                .set("classes", Json::Arr(s.classes.iter().map(|c| Json::Str(c.clone())).collect()))
                .set("mutations", Json::Arr(muts))
        })
        .collect();
    scenario_envelope("audit", arr)
}

/// Strict inverse of [`audit_artifact`] (checks the version first).
pub fn parse_audit_artifact(doc: &Json) -> Result<Vec<AuditScenario>, String> {
    crate::artifact::open_scenarios(doc)?
        .iter()
        .map(|v| {
            let id = v
                .get("id")
                .and_then(Json::as_str)
                .ok_or_else(|| "scenario missing string 'id'".to_string())?
                .to_string();
            let label = v
                .get("label")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("scenario '{id}' missing string 'label'"))?
                .to_string();
            let classes = v
                .get("classes")
                .and_then(Json::as_arr)
                .ok_or_else(|| format!("scenario '{id}' missing 'classes' array"))?
                .iter()
                .map(|c| {
                    c.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| format!("scenario '{id}': non-string class"))
                })
                .collect::<Result<Vec<_>, String>>()?;
            let mutations = v
                .get("mutations")
                .and_then(Json::as_arr)
                .ok_or_else(|| format!("scenario '{id}' missing 'mutations' array"))?
                .iter()
                .map(|m| {
                    Ok(MutationTrial {
                        mutation: m
                            .get("mutation")
                            .and_then(Json::as_str)
                            .ok_or_else(|| format!("scenario '{id}': trial missing 'mutation'"))?
                            .to_string(),
                        seed: {
                            let s = m.get("seed").and_then(Json::as_str).ok_or_else(|| {
                                format!("scenario '{id}': trial missing hex string 'seed'")
                            })?;
                            u64::from_str_radix(s.trim_start_matches("0x"), 16).map_err(|e| {
                                format!("scenario '{id}': bad trial seed '{s}': {e}")
                            })?
                        },
                        detected: req_bool(m, "detected")?,
                        classified: req_bool(m, "classified")?,
                    })
                })
                .collect::<Result<Vec<_>, String>>()?;
            Ok(AuditScenario {
                id,
                label,
                cores: req_u64(v, "cores")?,
                events: req_u64(v, "events")?,
                edges: req_u64(v, "edges")?,
                checks: req_u64(v, "checks")?,
                violations: req_u64(v, "violations")?,
                classes,
                mutations,
            })
        })
        .collect()
}

/// The human digest (`results/AUDIT.md`): one row per audited
/// scenario, then the mutation-detection matrix.
pub fn render_audit_markdown(scenarios: &[AuditScenario]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# Causal trace audit\n");
    let _ = writeln!(
        out,
        "Every recorded protocol run re-checked against the \
         happens-before invariants (span nesting, park/wake pairing, \
         per-flag-line protocol state machines, delivery windows, \
         acyclicity, commit/fault accounting). `checks` counts the \
         invariant instances examined; a healthy run has zero \
         violations. The mutation matrix seeds one corruption of each \
         class into the same streams and requires the auditor to catch \
         it *and* name the right violation class — proof the checks \
         are not vacuous."
    );
    let _ = writeln!(out, "\n## Audited scenarios\n");
    let _ = writeln!(out, "| scenario | cores | events | edges | checks | violations | classes |");
    let _ = writeln!(out, "|---|---:|---:|---:|---:|---:|---|");
    for s in scenarios {
        let _ = writeln!(
            out,
            "| `{}` ({}) | {} | {} | {} | {} | {} | {} |",
            s.id,
            s.label,
            s.cores,
            s.events,
            s.edges,
            s.checks,
            s.violations,
            if s.classes.is_empty() { "—".to_string() } else { s.classes.join(", ") },
        );
    }
    let with_muts: Vec<&AuditScenario> =
        scenarios.iter().filter(|s| !s.mutations.is_empty()).collect();
    if !with_muts.is_empty() {
        let _ = writeln!(out, "\n## Mutation-detection matrix\n");
        let _ = writeln!(out, "| scenario | mutation | seed | detected | classified |");
        let _ = writeln!(out, "|---|---|---:|---|---|");
        for s in with_muts {
            for m in &s.mutations {
                let _ = writeln!(
                    out,
                    "| `{}` | {} | {:#x} | {} | {} |",
                    s.id,
                    m.mutation,
                    m.seed,
                    if m.detected { "yes" } else { "**MISSED**" },
                    if m.classified { "yes" } else { "**WRONG CLASS**" },
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conformance::ARTIFACT_VERSION;
    use crate::report::validate_json;

    fn sample() -> Vec<AuditScenario> {
        vec![
            AuditScenario {
                id: "oc_k7_plain".into(),
                label: "k=7 48c 96cl".into(),
                cores: 48,
                events: 19_752,
                edges: 19_749,
                checks: 41_338,
                violations: 0,
                classes: vec![],
                mutations: vec![
                    MutationTrial {
                        mutation: "drop-wake".into(),
                        seed: 7,
                        detected: true,
                        classified: true,
                    },
                    MutationTrial {
                        mutation: "retag-epoch".into(),
                        seed: 8,
                        detected: true,
                        classified: false,
                    },
                ],
            },
            AuditScenario {
                id: "binomial_faulted".into(),
                label: "binomial 48c 96cl reliable+faults".into(),
                cores: 48,
                events: 30_001,
                edges: 29_980,
                checks: 60_002,
                violations: 2,
                classes: vec!["lost-wakeup".into()],
                mutations: vec![],
            },
        ]
    }

    #[test]
    fn artifact_round_trips_losslessly() {
        let scenarios = sample();
        let text = audit_artifact(&scenarios).render();
        validate_json(&text).unwrap();
        let doc = Json::parse(&text).unwrap();
        assert_eq!(parse_audit_artifact(&doc).unwrap(), scenarios);
    }

    #[test]
    fn parse_rejects_bad_version_and_junk() {
        let doc = Json::obj().set("version", Json::Int(ARTIFACT_VERSION + 1));
        assert!(parse_audit_artifact(&doc).unwrap_err().contains("!= supported"));
        let doc = Json::obj().set("version", Json::Int(ARTIFACT_VERSION));
        assert!(parse_audit_artifact(&doc).unwrap_err().contains("scenarios"));
        // Negative counts are parse errors, never silent wraps.
        let mut good = audit_artifact(&sample()).render();
        good = good.replace("\"violations\":2", "\"violations\":-2");
        let doc = Json::parse(&good).unwrap();
        let err = parse_audit_artifact(&doc).unwrap_err();
        assert!(err.contains("violations") && err.contains("-2"), "{err}");
    }

    #[test]
    fn mutations_all_caught_requires_detection_and_class() {
        let s = sample();
        // The second trial was detected but misclassified.
        assert!(!s[0].mutations_all_caught());
        assert!(s[1].mutations_all_caught(), "vacuously true with no trials");
    }

    #[test]
    fn markdown_digest_lists_scenarios_and_matrix() {
        let md = render_audit_markdown(&sample());
        assert!(md.contains("# Causal trace audit"));
        assert!(md.contains("| `oc_k7_plain` (k=7 48c 96cl) | 48 | 19752 |"));
        assert!(md.contains("| `binomial_faulted`"), "{md}");
        assert!(md.contains("lost-wakeup"));
        assert!(md.contains("## Mutation-detection matrix"));
        assert!(md.contains("| `oc_k7_plain` | drop-wake | 0x7 | yes | yes |"));
        assert!(md.contains("**WRONG CLASS**"));
    }
}
