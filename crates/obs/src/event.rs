//! The typed event model: everything the simulator knows about a run,
//! as a flat stream of timestamped facts.
//!
//! Events are recorded through the [`Recorder`] trait so the engine's
//! hot path pays exactly one `Option` branch when recording is off (see
//! the `obs_equivalence` test in `scc-sim`). Timestamps are virtual
//! picoseconds ([`Time`]); the stream is ordered by the engine's event
//! clock, which is nondecreasing, so consumers may rely on sortedness
//! of completion times per core but not on global total order of
//! `start` fields.

use scc_hal::{CoreId, LinkDir, MsgId, Span, Time};
use std::fmt;

/// Coarse classification of a timed RMA operation.
///
/// This lives here (rather than in `scc-sim`) so exporters and the
/// critical-path extractor can name operations without depending on
/// the simulator; `scc-sim` re-exports it from its `trace` module.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OpKind {
    PutFromMem,
    PutFromMpb,
    GetToMem,
    GetToMpb,
    FlagPut,
    FlagRead,
}

impl OpKind {
    /// Every kind, in rendering order. Keep glyph legends and exporter
    /// track palettes driven by this list so new kinds cannot fall out
    /// of sync silently.
    pub const ALL: [OpKind; 6] = [
        OpKind::PutFromMem,
        OpKind::PutFromMpb,
        OpKind::GetToMem,
        OpKind::GetToMpb,
        OpKind::FlagPut,
        OpKind::FlagRead,
    ];

    pub fn short(&self) -> &'static str {
        match self {
            OpKind::PutFromMem => "PUTm",
            OpKind::PutFromMpb => "PUTb",
            OpKind::GetToMem => "GETm",
            OpKind::GetToMpb => "GETb",
            OpKind::FlagPut => "FLAG",
            OpKind::FlagRead => "POLL",
        }
    }

    /// One-character glyph for text timelines. `FlagRead` maps to the
    /// idle glyph: polls are waiting, not work.
    pub fn glyph(&self) -> u8 {
        match self {
            OpKind::PutFromMem => b'P',
            OpKind::PutFromMpb => b'p',
            OpKind::GetToMem => b'G',
            OpKind::GetToMpb => b'g',
            OpKind::FlagPut => b'f',
            OpKind::FlagRead => b'.',
        }
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short())
    }
}

/// Identity of one contended hardware resource instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ResourceId {
    /// The MPB port of a tile (two cores share it), by tile index 0..24.
    Port(u8),
    /// A mesh router, by tile index 0..24.
    Router(u8),
    /// An off-chip memory controller, by controller index 0..4.
    Mc(u8),
}

impl ResourceId {
    pub fn class(&self) -> &'static str {
        match self {
            ResourceId::Port(_) => "port",
            ResourceId::Router(_) => "router",
            ResourceId::Mc(_) => "mc",
        }
    }

    pub fn instance(&self) -> usize {
        match self {
            ResourceId::Port(i) | ResourceId::Router(i) | ResourceId::Mc(i) => *i as usize,
        }
    }
}

impl fmt::Display for ResourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.class(), self.instance())
    }
}

/// Classification of an injected fault (see `scc_sim`'s `FaultPlan`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A remote doorbell/notification flag write was dropped in
    /// transit: the transfer's time was spent but the flag line never
    /// changed at the destination.
    LostNotification,
    /// A transfer's cache line was held inside the mesh for an extra
    /// delay before completing.
    LinkDelay,
    /// The issuing core was inside a slowdown window and paid extra
    /// per-op overhead.
    CoreSlow,
}

impl FaultKind {
    /// Every kind, in rendering order.
    pub const ALL: [FaultKind; 3] =
        [FaultKind::LostNotification, FaultKind::LinkDelay, FaultKind::CoreSlow];

    pub const fn name(&self) -> &'static str {
        match self {
            FaultKind::LostNotification => "lost-notification",
            FaultKind::LinkDelay => "link-delay",
            FaultKind::CoreSlow => "core-slow",
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One structured simulation event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ObsEvent {
    /// A timed RMA operation ran on `core` over `[start, end]`. `msg`
    /// names the logical message fragment the operation carried, when
    /// the issuing collective tagged it (see [`scc_hal::msg`]).
    Op { core: CoreId, kind: OpKind, lines: usize, start: Time, end: Time, msg: Option<MsgId> },
    /// One booking on a contended resource: issued by `core`, arrived
    /// at `arrival`, served over `[start, end]`. `start - arrival` is
    /// the queueing wait attributed to this packet. For router bookings
    /// `link` names the directed output link the packet leaves the
    /// router on ([`scc_hal::LinkDir::Eject`] at the destination tile);
    /// `None` for port and memory-controller bookings.
    Wait {
        core: CoreId,
        resource: ResourceId,
        arrival: Time,
        start: Time,
        end: Time,
        link: Option<LinkDir>,
    },
    /// `core` parked on its MPB flag `line` at `at` (poll found the
    /// flag unchanged and the core left the run queue).
    Park { core: CoreId, line: usize, at: Time },
    /// `core`, parked on `line`, was woken at `at` by an op issued by
    /// `writer` completing a write into the watched line.
    Wake { core: CoreId, line: usize, at: Time, writer: CoreId },
    /// The engine handed the baton from `from` to `to` — a real thread
    /// switch in the baton-passing engine.
    Handoff { from: CoreId, to: CoreId, at: Time },
    /// Pure local computation on `core` over `[start, end]`.
    Compute { core: CoreId, start: Time, end: Time },
    /// A protocol phase opened on `core` (see [`scc_hal::Phase`]).
    SpanBegin { core: CoreId, span: Span, at: Time },
    /// The matching close. Spans nest per core (LIFO).
    SpanEnd { core: CoreId, span: Span, at: Time },
    /// `core` entered collective invocation `epoch` — its delivery
    /// window opened (see [`scc_hal::msg::delivering`]).
    DeliveryBegin { core: CoreId, epoch: u32, at: Time },
    /// `core` holds the full payload of `epoch` — its delivery window
    /// closed. The last window close of a broadcast is its makespan.
    DeliveryEnd { core: CoreId, epoch: u32, at: Time },
    /// An operation issued by `writer` committed `lines` cache lines
    /// into `owner`'s MPB starting at `line`, at instant `at`. Recorded
    /// at the same instant as the committing [`ObsEvent::Op`] and
    /// *before* any [`ObsEvent::Wake`] it causes, so the per-instant
    /// order is op → commit → wake(s). `value` carries the deposited
    /// flag value for flag writes (`None` for payload transfers whose
    /// bytes the event model does not track).
    MpbWrite {
        owner: CoreId,
        line: usize,
        lines: usize,
        writer: CoreId,
        value: Option<u32>,
        at: Time,
    },
    /// `core` read its own MPB flag `line` and observed `value` — one
    /// poll of a flag-wait loop (or a recovery probe's local re-read).
    FlagSample { core: CoreId, line: usize, value: u32, at: Time },
    /// `core`'s SPMD closure returned at virtual time `at`.
    Finish { core: CoreId, at: Time },
    /// The fault plan injected a fault against an operation of `core`
    /// at `at`; `lost` is the extra virtual time the fault cost the op
    /// directly (zero for a dropped notification — its cost is the
    /// recovery traffic, which shows up as ordinary ops).
    Fault { core: CoreId, kind: FaultKind, at: Time, lost: Time },
}

impl ObsEvent {
    /// The instant this event is ordered by in the engine's stream.
    pub fn at(&self) -> Time {
        match *self {
            ObsEvent::Op { end, .. } => end,
            ObsEvent::Wait { arrival, .. } => arrival,
            ObsEvent::Park { at, .. }
            | ObsEvent::Wake { at, .. }
            | ObsEvent::Handoff { at, .. }
            | ObsEvent::SpanBegin { at, .. }
            | ObsEvent::SpanEnd { at, .. }
            | ObsEvent::DeliveryBegin { at, .. }
            | ObsEvent::DeliveryEnd { at, .. }
            | ObsEvent::MpbWrite { at, .. }
            | ObsEvent::FlagSample { at, .. }
            | ObsEvent::Finish { at, .. }
            | ObsEvent::Fault { at, .. } => at,
            ObsEvent::Compute { end, .. } => end,
        }
    }
}

/// The sink the engine feeds. `Send` because the recorder lives inside
/// the engine state, which migrates across pooled core threads.
pub trait Recorder: Send {
    fn record(&mut self, ev: ObsEvent);

    /// Take all recorded events out of the sink (called once, at the
    /// end of a run, to move the log into the report).
    fn drain(&mut self) -> Vec<ObsEvent>;
}

/// The standard in-memory recorder: an append-only event log.
#[derive(Debug, Default)]
pub struct EventLog {
    events: Vec<ObsEvent>,
}

impl EventLog {
    pub fn new() -> EventLog {
        EventLog { events: Vec::new() }
    }

    pub fn events(&self) -> &[ObsEvent] {
        &self.events
    }
}

impl Recorder for EventLog {
    #[inline]
    fn record(&mut self, ev: ObsEvent) {
        self.events.push(ev);
    }

    fn drain(&mut self) -> Vec<ObsEvent> {
        std::mem::take(&mut self.events)
    }
}

/// The flight recorder: a bounded ring that retains only the last
/// `capacity` events at fixed memory cost.
///
/// Always-on telemetry cannot afford [`EventLog`]'s growth — a soak
/// run emits millions of events — but forensics after an SLO breach
/// wants the raw stream for *the window that breached*. The ring gives
/// both: recording costs one store and two index updates per event,
/// memory is `capacity * size_of::<ObsEvent>()` forever, and
/// [`drain`](Recorder::drain) returns exactly the stream suffix a full
/// recording would have ended with (byte-identical over the window —
/// pinned by `obs_equivalence` in `scc-sim` and the proptests in
/// `tests/sketch_props.rs`).
#[derive(Debug)]
pub struct FlightRecorder {
    buf: Vec<ObsEvent>,
    /// Next slot to overwrite once the ring is full.
    head: usize,
    /// Total events ever offered (drives the window accounting).
    seen: u64,
    capacity: usize,
}

impl FlightRecorder {
    /// A ring holding the last `capacity` events. Capacity 0 is legal:
    /// the recorder accepts and forgets everything (`seen` still
    /// counts).
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder { buf: Vec::with_capacity(capacity), head: 0, seen: 0, capacity }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// How many events are currently retained (`min(seen, capacity)`).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total events offered over the recorder's lifetime, including
    /// those the ring has since evicted.
    pub fn seen(&self) -> u64 {
        self.seen
    }
}

impl Recorder for FlightRecorder {
    #[inline]
    fn record(&mut self, ev: ObsEvent) {
        self.seen += 1;
        if self.capacity == 0 {
            return;
        }
        if self.buf.len() < self.capacity {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    /// The retained window in recording order (oldest retained event
    /// first), leaving the ring empty.
    fn drain(&mut self) -> Vec<ObsEvent> {
        let mut out = std::mem::take(&mut self.buf);
        out.rotate_left(self.head);
        self.head = 0;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resource_display() {
        assert_eq!(format!("{}", ResourceId::Port(11)), "port[11]");
        assert_eq!(format!("{}", ResourceId::Router(0)), "router[0]");
        assert_eq!(format!("{}", ResourceId::Mc(3)), "mc[3]");
    }

    #[test]
    fn glyphs_cover_all_kinds() {
        for k in OpKind::ALL {
            let g = k.glyph();
            assert!(g.is_ascii(), "{k}");
            assert!(!k.short().is_empty());
        }
        // Work glyphs are distinct; only FlagRead shares the idle dot.
        let work: Vec<u8> =
            OpKind::ALL.iter().filter(|k| **k != OpKind::FlagRead).map(|k| k.glyph()).collect();
        let mut dedup = work.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), work.len());
    }

    fn finish(core: u8, at: u64) -> ObsEvent {
        ObsEvent::Finish { core: CoreId(core), at: Time::from_ns(at) }
    }

    #[test]
    fn flight_ring_keeps_the_tail_window() {
        let mut ring = FlightRecorder::new(3);
        for i in 0..7 {
            ring.record(finish(0, i));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.seen(), 7);
        let window = ring.drain();
        assert_eq!(window, vec![finish(0, 4), finish(0, 5), finish(0, 6)]);
        assert!(ring.is_empty());
    }

    #[test]
    fn flight_ring_below_capacity_matches_full_log() {
        let mut ring = FlightRecorder::new(10);
        let mut log = EventLog::new();
        for i in 0..4 {
            ring.record(finish(1, i));
            log.record(finish(1, i));
        }
        assert_eq!(ring.drain(), log.drain());
    }

    #[test]
    fn zero_capacity_ring_counts_but_retains_nothing() {
        let mut ring = FlightRecorder::new(0);
        ring.record(finish(0, 1));
        ring.record(finish(0, 2));
        assert_eq!(ring.seen(), 2);
        assert!(ring.drain().is_empty());
    }

    #[test]
    fn event_log_records_and_drains() {
        let mut log = EventLog::new();
        log.record(ObsEvent::Finish { core: CoreId(0), at: Time::from_ns(5) });
        assert_eq!(log.events().len(), 1);
        let drained = log.drain();
        assert_eq!(drained.len(), 1);
        assert!(log.events().is_empty());
        assert_eq!(drained[0].at(), Time::from_ns(5));
    }
}
