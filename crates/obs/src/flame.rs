//! Collapsed-stack flamegraph export.
//!
//! Folds a recorded run into the `semicolon;separated;stack count`
//! format consumed by inferno, speedscope and Brendan Gregg's
//! `flamegraph.pl`. The synthetic stack is `root ; core N ; phase …`
//! with one frame per open protocol span, so the rendered graph answers
//! "where did wall-clock go, per core, per phase nest" at a glance —
//! e.g. `bcast;core 0;disseminate;round` wide and `…;buffer-wait`
//! narrow means payload movement dominates the double-buffer gate.
//!
//! Counts are virtual **nanoseconds** of exclusive time (time while
//! exactly that stack was open). Zero-weight stacks are omitted, and
//! output lines are sorted so the export is byte-deterministic.

use crate::event::ObsEvent;
use scc_hal::Time;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Fold `events` into collapsed-stack lines with `root` as the common
/// bottom frame (conventionally the collective's name).
///
/// Each core's timeline is walked once; the span between consecutive
/// span-boundary instants is charged to the stack open during it. Time
/// before a core's first event or outside any span is charged to the
/// `root;core N` frame, so per-core totals equal each core's observed
/// lifetime and the graph never under-reports.
pub fn flamegraph_collapsed(events: &[ObsEvent], root: &str) -> String {
    // Per-core boundary instants: (time, open phase-name or None=close).
    #[derive(Clone, Copy)]
    enum Edge {
        Open(&'static str),
        Close(&'static str),
    }
    let mut edges: BTreeMap<usize, Vec<(Time, Edge)>> = BTreeMap::new();
    let mut last_seen: BTreeMap<usize, Time> = BTreeMap::new();
    for ev in events {
        match *ev {
            ObsEvent::SpanBegin { core, span, at } => {
                edges.entry(core.index()).or_default().push((at, Edge::Open(span.phase.name())));
            }
            ObsEvent::SpanEnd { core, span, at } => {
                edges.entry(core.index()).or_default().push((at, Edge::Close(span.phase.name())));
            }
            _ => {}
        }
        // Track each core's last observed instant so trailing tail time
        // (after the last span closes, up to Finish) is still charged.
        for c in cores_of(ev) {
            let t = ev.at();
            let e = last_seen.entry(c).or_insert(t);
            *e = (*e).max(t);
        }
    }

    let mut weights: BTreeMap<String, u64> = BTreeMap::new();
    for (core, core_edges) in &edges {
        let mut stack: Vec<&'static str> = Vec::new();
        let mut cursor = Time::ZERO;
        let mut charge = |stack: &[&'static str], from: Time, to: Time| {
            if to <= from {
                return;
            }
            let mut key = format!("{root};core {core}");
            for frame in stack {
                key.push(';');
                key.push_str(frame);
            }
            *weights.entry(key).or_insert(0) += (to - from).as_ps();
        };
        for &(at, edge) in core_edges {
            charge(&stack, cursor, at);
            cursor = cursor.max(at);
            match edge {
                Edge::Open(name) => stack.push(name),
                Edge::Close(name) => {
                    // Pop to the matching open; error-path unwinds may
                    // close an outer span with inner frames still open.
                    if let Some(pos) = stack.iter().rposition(|f| *f == name) {
                        stack.truncate(pos);
                    }
                }
            }
        }
        // Tail: time after the last span edge up to the core's last
        // observed instant (Finish, last op completion, …).
        if let Some(&end) = last_seen.get(core) {
            charge(&stack, cursor, end);
        }
    }
    // Cores with activity but no spans still get their lifetime charged
    // to the root frame, so a span-free trace is a flat (not empty)
    // graph.
    for (core, &end) in &last_seen {
        if !edges.contains_key(core) {
            let key = format!("{root};core {core}");
            *weights.entry(key).or_insert(0) += end.as_ps();
        }
    }

    let mut out = String::new();
    for (stack, ps) in &weights {
        // Nanosecond counts: ps-exact runs render identically across
        // tools that assume small sample counts; sub-ns slivers round
        // up so no open stack vanishes from the graph entirely.
        let ns = ps.div_ceil(1_000);
        if ns > 0 {
            let _ = writeln!(out, "{stack} {ns}");
        }
    }
    out
}

fn cores_of(ev: &ObsEvent) -> impl Iterator<Item = usize> {
    let (a, b) = match *ev {
        ObsEvent::Op { core, .. }
        | ObsEvent::Wait { core, .. }
        | ObsEvent::Park { core, .. }
        | ObsEvent::Compute { core, .. }
        | ObsEvent::SpanBegin { core, .. }
        | ObsEvent::SpanEnd { core, .. }
        | ObsEvent::DeliveryBegin { core, .. }
        | ObsEvent::DeliveryEnd { core, .. }
        | ObsEvent::Finish { core, .. }
        | ObsEvent::FlagSample { core, .. }
        | ObsEvent::Fault { core, .. } => (core.index(), None),
        ObsEvent::Wake { core, .. } => (core.index(), None),
        ObsEvent::MpbWrite { owner, writer, .. } => (owner.index(), Some(writer.index())),
        ObsEvent::Handoff { from, to, .. } => (from.index(), Some(to.index())),
    };
    std::iter::once(a).chain(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scc_hal::{CoreId, Phase, Span, Time};

    fn ns(v: u64) -> Time {
        Time::from_ns(v)
    }

    #[test]
    fn nested_spans_fold_exclusively() {
        let d = Span::of(Phase::Dissemination);
        let r = Span::of(Phase::Round);
        let events = vec![
            ObsEvent::SpanBegin { core: CoreId(0), span: d, at: ns(0) },
            ObsEvent::SpanBegin { core: CoreId(0), span: r, at: ns(10) },
            ObsEvent::SpanEnd { core: CoreId(0), span: r, at: ns(30) },
            ObsEvent::SpanEnd { core: CoreId(0), span: d, at: ns(100) },
            ObsEvent::Finish { core: CoreId(0), at: ns(120) },
        ];
        let folded = flamegraph_collapsed(&events, "bcast");
        let lines: Vec<&str> = folded.lines().collect();
        // Exclusive: disseminate has 100-20(inner)=80, inner round 20,
        // tail after spans 20.
        assert!(lines.contains(&"bcast;core 0;disseminate 80"), "{folded}");
        assert!(lines.contains(&"bcast;core 0;disseminate;round 20"), "{folded}");
        assert!(lines.contains(&"bcast;core 0 20"), "{folded}");
        // Total equals the core's observed lifetime.
        let total: u64 =
            lines.iter().map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap()).sum();
        assert_eq!(total, 120);
    }

    #[test]
    fn span_free_cores_fold_flat() {
        let events = vec![
            ObsEvent::Op {
                core: CoreId(1),
                kind: crate::OpKind::PutFromMem,
                lines: 1,
                start: ns(0),
                end: ns(50),
                msg: None,
            },
            ObsEvent::Finish { core: CoreId(1), at: ns(50) },
        ];
        let folded = flamegraph_collapsed(&events, "x");
        assert_eq!(folded.trim(), "x;core 1 50");
    }

    #[test]
    fn empty_stream_folds_to_nothing() {
        assert!(flamegraph_collapsed(&[], "x").is_empty());
    }

    #[test]
    fn output_is_deterministic_and_sorted() {
        let d = Span::of(Phase::Dissemination);
        let events = vec![
            ObsEvent::SpanBegin { core: CoreId(2), span: d, at: ns(0) },
            ObsEvent::SpanEnd { core: CoreId(2), span: d, at: ns(10) },
            ObsEvent::SpanBegin { core: CoreId(0), span: d, at: ns(0) },
            ObsEvent::SpanEnd { core: CoreId(0), span: d, at: ns(10) },
        ];
        let a = flamegraph_collapsed(&events, "x");
        let b = flamegraph_collapsed(&events, "x");
        assert_eq!(a, b);
        let lines: Vec<&str> = a.lines().collect();
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        assert_eq!(lines, sorted);
    }
}
