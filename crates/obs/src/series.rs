//! Per-resource utilization and queue-depth time series.
//!
//! Every [`crate::ObsEvent::Wait`] carries the full booking —
//! `arrival`, service `start`, service `end` — so a resource's busy
//! fraction and its average queue depth over any interval are exact
//! integrals, not samples. The series buckets the run's horizon into
//! `buckets` equal windows and reports, per resource instance and
//! bucket: the fraction of the window the resource was serving, the
//! time-averaged number of packets waiting, and the number of packets
//! that arrived in the window. This reproduces the measurement behind
//! the paper's Figure 6 (MPB-port contention as the limiting factor at
//! the root) for *any* resource, not just the root port.

use crate::event::{ObsEvent, ResourceId};
use scc_hal::Time;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One bucket of one resource's series.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct UtilBucket {
    /// Fraction of the bucket the resource spent serving (0..=1).
    pub busy_frac: f64,
    /// Time-averaged queue depth (packets waiting, not being served).
    pub avg_queue_depth: f64,
    /// Packets whose service request arrived in this bucket.
    pub arrivals: u64,
}

/// The bucketed series for every resource that appeared in the stream.
#[derive(Clone, Debug)]
pub struct UtilizationSeries {
    pub horizon: Time,
    pub buckets: usize,
    /// Per resource, `buckets` entries. `BTreeMap` so iteration order is
    /// stable (ports, then routers, then MCs, by index).
    pub rows: BTreeMap<ResourceId, Vec<UtilBucket>>,
}

impl UtilizationSeries {
    /// Build the series from an event stream. `horizon` is typically the
    /// run's makespan; events past it are clipped. `buckets >= 1`.
    pub fn build(events: &[ObsEvent], horizon: Time, buckets: usize) -> UtilizationSeries {
        assert!(buckets >= 1);
        let mut rows: BTreeMap<ResourceId, Vec<UtilBucket>> = BTreeMap::new();
        let hz = horizon.as_ps();
        if hz == 0 {
            return UtilizationSeries { horizon, buckets, rows };
        }
        let edge = |i: usize| -> u64 { (hz as u128 * i as u128 / buckets as u128) as u64 };

        for ev in events {
            let ObsEvent::Wait { resource, arrival, start, end, .. } = *ev else { continue };
            let row = rows.entry(resource).or_insert_with(|| vec![UtilBucket::default(); buckets]);
            // Arrival count.
            let ai = (arrival.as_ps().min(hz.saturating_sub(1)) as u128 * buckets as u128
                / hz as u128) as usize;
            row[ai].arrivals += 1;
            // Busy integral over [start, end); queue integral over
            // [arrival, start).
            for (a, b, busy) in
                [(start.as_ps(), end.as_ps(), true), (arrival.as_ps(), start.as_ps(), false)]
            {
                let (a, b) = (a.min(hz), b.min(hz));
                if b <= a {
                    continue;
                }
                let i0 = (a as u128 * buckets as u128 / hz as u128) as usize;
                for (i, bucket) in row.iter_mut().enumerate().skip(i0) {
                    let (e0, e1) = (edge(i), edge(i + 1));
                    if e0 >= b {
                        break;
                    }
                    let overlap = b.min(e1).saturating_sub(a.max(e0)) as f64;
                    let width = (e1 - e0) as f64;
                    if width > 0.0 {
                        if busy {
                            bucket.busy_frac += overlap / width;
                        } else {
                            bucket.avg_queue_depth += overlap / width;
                        }
                    }
                }
            }
        }
        UtilizationSeries { horizon, buckets, rows }
    }

    /// Render as CSV: one row per (resource, bucket).
    pub fn to_csv(&self) -> String {
        let mut out =
            String::from("resource,bucket,t0_us,t1_us,busy_frac,avg_queue_depth,arrivals\n");
        let hz = self.horizon.as_ps();
        for (r, row) in &self.rows {
            for (i, b) in row.iter().enumerate() {
                let t0 = hz as u128 * i as u128 / self.buckets as u128;
                let t1 = hz as u128 * (i + 1) as u128 / self.buckets as u128;
                let _ = writeln!(
                    out,
                    "{r},{i},{:.6},{:.6},{:.6},{:.6},{}",
                    t0 as f64 / 1e6,
                    t1 as f64 / 1e6,
                    b.busy_frac,
                    b.avg_queue_depth,
                    b.arrivals
                );
            }
        }
        out
    }

    /// Peak busy fraction per resource class, for quick summaries.
    pub fn peak_busy(&self) -> BTreeMap<&'static str, f64> {
        let mut peak: BTreeMap<&'static str, f64> = BTreeMap::new();
        for (r, row) in &self.rows {
            let m = row.iter().map(|b| b.busy_frac).fold(0.0, f64::max);
            let e = peak.entry(r.class()).or_insert(0.0);
            if m > *e {
                *e = m;
            }
        }
        peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scc_hal::CoreId;

    fn ns(v: u64) -> Time {
        Time::from_ns(v)
    }

    fn wait(res: ResourceId, arrival: u64, start: u64, end: u64) -> ObsEvent {
        ObsEvent::Wait {
            core: CoreId(0),
            resource: res,
            arrival: ns(arrival),
            start: ns(start),
            end: ns(end),
            link: None,
        }
    }

    #[test]
    fn busy_integral_is_exact() {
        // One port, horizon 100ns, 4 buckets of 25ns. Service [10,60]:
        // bucket 0 gets 15/25, bucket 1 full, bucket 2 gets 10/25.
        let events = vec![wait(ResourceId::Port(0), 10, 10, 60)];
        let s = UtilizationSeries::build(&events, ns(100), 4);
        let row = &s.rows[&ResourceId::Port(0)];
        assert!((row[0].busy_frac - 0.6).abs() < 1e-12);
        assert!((row[1].busy_frac - 1.0).abs() < 1e-12);
        assert!((row[2].busy_frac - 0.4).abs() < 1e-12);
        assert_eq!(row[3].busy_frac, 0.0);
        assert_eq!(row[0].arrivals, 1);
    }

    #[test]
    fn queue_depth_counts_overlapping_waiters() {
        // Two packets queue on the same router over [0,50): depth 2 in
        // bucket 0 ([0,50) of a 2x50ns split).
        let events =
            vec![wait(ResourceId::Router(7), 0, 50, 60), wait(ResourceId::Router(7), 0, 50, 70)];
        let s = UtilizationSeries::build(&events, ns(100), 2);
        let row = &s.rows[&ResourceId::Router(7)];
        assert!((row[0].avg_queue_depth - 2.0).abs() < 1e-12, "{row:?}");
        assert_eq!(row[1].avg_queue_depth, 0.0);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let events = vec![wait(ResourceId::Mc(1), 0, 0, 10)];
        let s = UtilizationSeries::build(&events, ns(100), 2);
        let csv = s.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "resource,bucket,t0_us,t1_us,busy_frac,avg_queue_depth,arrivals");
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with("mc[1],0,"));
    }

    #[test]
    fn zero_horizon_yields_empty() {
        let s = UtilizationSeries::build(&[], Time::ZERO, 4);
        assert!(s.rows.is_empty());
        assert_eq!(s.to_csv().lines().count(), 1);
    }
}
