//! Degradation curves under injected faults: the structured record
//! behind `BENCH_faults.json` and `results/FAULTS.md`.
//!
//! One [`FaultCurve`] per broadcast scenario, one [`FaultPoint`] per
//! injected fault rate: how the *reliable* collectives' delivered
//! latency (per-destination p50/p99/max and the makespan) degrades as
//! remote notifications are dropped and transfers delayed, plus the
//! recovery-layer counters (timeouts, probes, recoveries, re-notifies)
//! that explain the slowdown. Everything is integer picoseconds and
//! exact counts, so the artifact is byte-identical across hosts and
//! `--jobs` settings — the same determinism contract as the journey
//! book.

use crate::artifact::{count, ps, req_time, req_u64, scenario_envelope};
use crate::report::Json;
use scc_hal::Time;
use std::fmt::Write as _;

/// One operating point of one scenario: a fault rate and what the
/// reliable broadcast delivered there.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPoint {
    /// Injected drop probability for remote notification flags, ppm.
    pub drop_ppm: u64,
    /// Injected transfer-delay probability, ppm.
    pub delay_ppm: u64,
    /// Destinations that returned with a verified payload.
    pub delivered: u64,
    /// Per-destination delivered-latency percentiles (nearest-rank).
    pub p50: Time,
    pub p99: Time,
    /// Worst per-destination delivered latency.
    pub max: Time,
    /// Engine makespan of the run (includes the root's drain).
    pub makespan: Time,
    /// Faults the engine actually injected, and the virtual time they
    /// directly stole (drop detection lag is accounted by the recovery
    /// counters below, not here).
    pub faults: u64,
    pub lost: Time,
    /// Recovery-layer counters summed over every core.
    pub timeouts: u64,
    pub probes: u64,
    pub recoveries: u64,
    pub renotifies: u64,
}

/// One scenario's degradation curve, rate points in ascending order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultCurve {
    /// Stable id, e.g. `"oc_k7"` — names the row keys and CI diffs.
    pub id: String,
    /// Human label, e.g. `"k=7 48c 96cl"`.
    pub label: String,
    pub cores: u64,
    pub points: Vec<FaultPoint>,
}

/// The versioned `BENCH_faults.json` envelope, validated by
/// [`crate::validate_artifact_version`].
pub fn faults_artifact(curves: &[FaultCurve]) -> Json {
    let arr = curves
        .iter()
        .map(|c| {
            let points = c
                .points
                .iter()
                .map(|p| {
                    Json::obj()
                        .set("drop_ppm", count(p.drop_ppm))
                        .set("delay_ppm", count(p.delay_ppm))
                        .set("delivered", count(p.delivered))
                        .set("p50_ps", ps(p.p50))
                        .set("p99_ps", ps(p.p99))
                        .set("max_ps", ps(p.max))
                        .set("makespan_ps", ps(p.makespan))
                        .set("faults", count(p.faults))
                        .set("lost_ps", ps(p.lost))
                        .set("timeouts", count(p.timeouts))
                        .set("probes", count(p.probes))
                        .set("recoveries", count(p.recoveries))
                        .set("renotifies", count(p.renotifies))
                })
                .collect();
            Json::obj()
                .set("id", Json::Str(c.id.clone()))
                .set("label", Json::Str(c.label.clone()))
                .set("cores", count(c.cores))
                .set("points", Json::Arr(points))
        })
        .collect();
    scenario_envelope("faults", arr)
}

/// Strict inverse of [`faults_artifact`] (checks the version first).
pub fn parse_faults_artifact(doc: &Json) -> Result<Vec<FaultCurve>, String> {
    crate::artifact::open_scenarios(doc)?
        .iter()
        .map(|v| {
            let id = v
                .get("id")
                .and_then(Json::as_str)
                .ok_or_else(|| "scenario missing string 'id'".to_string())?
                .to_string();
            let label = v
                .get("label")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("scenario '{id}' missing string 'label'"))?
                .to_string();
            let cores = req_u64(v, "cores")?;
            let points = v
                .get("points")
                .and_then(Json::as_arr)
                .ok_or_else(|| format!("scenario '{id}' missing 'points' array"))?
                .iter()
                .map(|p| {
                    Ok(FaultPoint {
                        drop_ppm: req_u64(p, "drop_ppm")?,
                        delay_ppm: req_u64(p, "delay_ppm")?,
                        delivered: req_u64(p, "delivered")?,
                        p50: req_time(p, "p50_ps")?,
                        p99: req_time(p, "p99_ps")?,
                        max: req_time(p, "max_ps")?,
                        makespan: req_time(p, "makespan_ps")?,
                        faults: req_u64(p, "faults")?,
                        lost: req_time(p, "lost_ps")?,
                        timeouts: req_u64(p, "timeouts")?,
                        probes: req_u64(p, "probes")?,
                        recoveries: req_u64(p, "recoveries")?,
                        renotifies: req_u64(p, "renotifies")?,
                    })
                })
                .collect::<Result<Vec<_>, String>>()?;
            Ok(FaultCurve { id, label, cores, points })
        })
        .collect()
}

/// The human digest (`results/FAULTS.md`): one degradation table per
/// scenario, delivered latency and recovery work vs injected rate.
pub fn render_faults_markdown(curves: &[FaultCurve]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# Degradation under injected faults\n");
    let _ = writeln!(
        out,
        "Reliable broadcasts (timeout/retry/ack) under the deterministic \
         fault plan: remote notification flags dropped with probability \
         `drop`, transfers delayed with probability `delay`. Every point \
         delivers the verified payload to every destination; the table \
         shows what that guarantee costs as the fault rate rises. \
         Latencies are per-destination delivery times (virtual µs)."
    );
    for c in curves {
        let _ = writeln!(out, "\n## {} (`{}`, {} cores)\n", c.label, c.id, c.cores);
        let _ = writeln!(
            out,
            "| drop ppm | delay ppm | delivered | p50 µs | p99 µs | max µs | \
             makespan µs | faults | timeouts | probes | recoveries | re-notifies |"
        );
        let _ = writeln!(out, "|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|");
        for p in &c.points {
            let _ = writeln!(
                out,
                "| {} | {} | {} | {:.3} | {:.3} | {:.3} | {:.3} | {} | {} | {} | {} | {} |",
                p.drop_ppm,
                p.delay_ppm,
                p.delivered,
                p.p50.as_us_f64(),
                p.p99.as_us_f64(),
                p.max.as_us_f64(),
                p.makespan.as_us_f64(),
                p.faults,
                p.timeouts,
                p.probes,
                p.recoveries,
                p.renotifies,
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conformance::ARTIFACT_VERSION;
    use crate::report::validate_json;

    fn sample() -> Vec<FaultCurve> {
        vec![
            FaultCurve {
                id: "oc_k7".into(),
                label: "k=7 48c 96cl".into(),
                cores: 48,
                points: vec![
                    FaultPoint {
                        delivered: 47,
                        p50: Time::from_us_f64(60.5),
                        p99: Time::from_us_f64(81.25),
                        max: Time::from_us_f64(82.0),
                        makespan: Time::from_us_f64(90.125),
                        ..FaultPoint::default()
                    },
                    FaultPoint {
                        drop_ppm: 50_000,
                        delay_ppm: 25_000,
                        delivered: 47,
                        p50: Time::from_us_f64(75.0),
                        p99: Time::from_us_f64(140.5),
                        max: Time::from_us_f64(151.0),
                        makespan: Time::from_us_f64(170.75),
                        faults: 12,
                        lost: Time::from_us_f64(33.0),
                        timeouts: 9,
                        probes: 9,
                        recoveries: 7,
                        renotifies: 2,
                    },
                ],
            },
            FaultCurve {
                id: "binomial".into(),
                label: "binomial 48c 96cl".into(),
                cores: 48,
                points: vec![FaultPoint { delivered: 47, ..FaultPoint::default() }],
            },
        ]
    }

    #[test]
    fn artifact_round_trips_losslessly() {
        let curves = sample();
        let text = faults_artifact(&curves).render();
        validate_json(&text).unwrap();
        let doc = Json::parse(&text).unwrap();
        assert_eq!(parse_faults_artifact(&doc).unwrap(), curves);
    }

    #[test]
    fn parse_rejects_bad_version_and_junk() {
        let doc = Json::obj().set("version", Json::Int(ARTIFACT_VERSION + 1));
        assert!(parse_faults_artifact(&doc).unwrap_err().contains("!= supported"));
        let doc = Json::obj().set("version", Json::Int(ARTIFACT_VERSION));
        assert!(parse_faults_artifact(&doc).unwrap_err().contains("scenarios"));
        // Negative counts are parse errors, never silent wraps.
        let mut good = faults_artifact(&sample()).render();
        good = good.replace("\"faults\":12", "\"faults\":-12");
        let doc = Json::parse(&good).unwrap();
        let err = parse_faults_artifact(&doc).unwrap_err();
        assert!(err.contains("faults") && err.contains("-12"), "{err}");
    }

    #[test]
    fn markdown_digest_lists_every_point() {
        let md = render_faults_markdown(&sample());
        assert!(md.contains("# Degradation under injected faults"));
        assert!(md.contains("## k=7 48c 96cl (`oc_k7`, 48 cores)"));
        assert!(md.contains("| 50000 | 25000 | 47 |"));
        assert!(md.contains("binomial"));
    }
}
