//! Chrome `trace_event` JSON export (the format Perfetto and
//! `chrome://tracing` load natively).
//!
//! Layout: process 0 holds one track (tid) per simulated core, carrying
//! its timed ops, computes, protocol-phase spans and parked intervals;
//! process 1 holds one track per **contended** resource — an MPB port,
//! router or memory controller on which at least one packet queued —
//! carrying every service booking on that resource. Uncontended
//! resources are omitted to keep traces lean; the utilization CSV (see
//! [`crate::series`]) still covers them.
//!
//! Timestamps: the format's `ts`/`dur` are microseconds; we print six
//! decimal places, which is exactly the engine's picosecond resolution.

use crate::event::{ObsEvent, OpKind, ResourceId};
use scc_hal::Time;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// Track (tid) layout inside the resource process: stable, readable
/// ordering — ports first, then routers, then memory controllers.
fn resource_tid(r: ResourceId) -> usize {
    match r {
        ResourceId::Port(i) => i as usize,
        ResourceId::Router(i) => 100 + i as usize,
        ResourceId::Mc(i) => 200 + i as usize,
    }
}

fn us(t: Time) -> String {
    format!("{:.6}", t.as_us_f64())
}

struct Emitter {
    out: String,
    first: bool,
}

impl Emitter {
    fn new() -> Emitter {
        Emitter { out: String::from("{\"traceEvents\":["), first: true }
    }

    fn raw(&mut self, obj: &str) {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        self.out.push_str(obj);
    }

    /// A complete ("X") event. `args` is pre-rendered JSON object body
    /// (without braces), or empty.
    #[allow(clippy::too_many_arguments)]
    fn complete(
        &mut self,
        pid: u32,
        tid: usize,
        cat: &str,
        name: &str,
        start: Time,
        end: Time,
        args: &str,
    ) {
        let mut o = format!(
            "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"cat\":\"{cat}\",\"name\":\"{name}\",\"ts\":{},\"dur\":{}",
            us(start),
            us(end.saturating_sub(start)),
        );
        if !args.is_empty() {
            let _ = write!(o, ",\"args\":{{{args}}}");
        }
        o.push('}');
        self.raw(&o);
    }

    /// An instant ("i") thread-scoped event.
    fn instant(&mut self, pid: u32, tid: usize, cat: &str, name: &str, at: Time, args: &str) {
        let mut o = format!(
            "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":{pid},\"tid\":{tid},\"cat\":\"{cat}\",\"name\":\"{name}\",\"ts\":{}",
            us(at)
        );
        if !args.is_empty() {
            let _ = write!(o, ",\"args\":{{{args}}}");
        }
        o.push('}');
        self.raw(&o);
    }

    fn metadata(&mut self, pid: u32, tid: Option<usize>, what: &str, name: &str) {
        let tid_part = tid.map(|t| format!(",\"tid\":{t}")).unwrap_or_default();
        self.raw(&format!(
            "{{\"ph\":\"M\",\"pid\":{pid}{tid_part},\"name\":\"{what}\",\"args\":{{\"name\":\"{name}\"}}}}"
        ));
    }

    fn finish(mut self) -> String {
        self.out.push_str("],\"displayTimeUnit\":\"ns\"}");
        self.out
    }
}

/// Render a recorded event stream as Chrome `trace_event` JSON.
pub fn chrome_trace_json(events: &[ObsEvent]) -> String {
    let mut cores: BTreeSet<usize> = BTreeSet::new();
    let mut contended: BTreeSet<ResourceId> = BTreeSet::new();
    let mut seen_resources: BTreeSet<ResourceId> = BTreeSet::new();
    let mut horizon = Time::ZERO;
    for ev in events {
        horizon = horizon.max(ev.at());
        match *ev {
            ObsEvent::Op { core, .. }
            | ObsEvent::Compute { core, .. }
            | ObsEvent::Park { core, .. }
            | ObsEvent::Wake { core, .. }
            | ObsEvent::SpanBegin { core, .. }
            | ObsEvent::SpanEnd { core, .. }
            | ObsEvent::DeliveryBegin { core, .. }
            | ObsEvent::DeliveryEnd { core, .. }
            | ObsEvent::Finish { core, .. }
            | ObsEvent::FlagSample { core, .. }
            | ObsEvent::Fault { core, .. } => {
                cores.insert(core.index());
            }
            ObsEvent::Handoff { from, to, .. } => {
                cores.insert(from.index());
                cores.insert(to.index());
            }
            ObsEvent::MpbWrite { owner, writer, .. } => {
                cores.insert(owner.index());
                cores.insert(writer.index());
            }
            ObsEvent::Wait { resource, arrival, start, .. } => {
                seen_resources.insert(resource);
                if start > arrival {
                    contended.insert(resource);
                }
            }
        }
    }

    let mut em = Emitter::new();
    em.metadata(0, None, "process_name", "cores");
    em.metadata(1, None, "process_name", "resources");
    for &c in &cores {
        em.metadata(0, Some(c), "thread_name", &format!("core {c}"));
    }
    for &r in &contended {
        em.metadata(1, Some(resource_tid(r)), "thread_name", &format!("{r}"));
    }

    // Per-core open state for park intervals and phase spans.
    let mut parked_at: BTreeMap<usize, Time> = BTreeMap::new();
    let mut span_stack: BTreeMap<usize, Vec<(scc_hal::Span, Time)>> = BTreeMap::new();

    for ev in events {
        match *ev {
            ObsEvent::Op { core, kind, lines, start, end, .. } => {
                let args = format!("\"lines\":{lines}");
                em.complete(0, core.index(), "op", kind.short(), start, end, &args);
            }
            ObsEvent::Compute { core, start, end } => {
                em.complete(0, core.index(), "op", "compute", start, end, "");
            }
            ObsEvent::Park { core, at, .. } => {
                parked_at.insert(core.index(), at);
            }
            ObsEvent::Wake { core, at, writer, line } => {
                if let Some(p) = parked_at.remove(&core.index()) {
                    let args = format!("\"line\":{line},\"writer\":{}", writer.index());
                    em.complete(0, core.index(), "sched", "parked", p, at, &args);
                }
            }
            ObsEvent::Handoff { from, to, at } => {
                let args = format!("\"from\":{}", from.index());
                em.instant(0, to.index(), "sched", "handoff", at, &args);
            }
            ObsEvent::SpanBegin { core, span, at } => {
                span_stack.entry(core.index()).or_default().push((span, at));
            }
            ObsEvent::SpanEnd { core, at, .. } => {
                if let Some((span, begin)) = span_stack.entry(core.index()).or_default().pop() {
                    let name = format!("{} {}", span.phase.name(), span.arg);
                    em.complete(0, core.index(), "phase", &name, begin, at, "");
                }
            }
            ObsEvent::Wait { core, resource, arrival, start, end, .. } => {
                if contended.contains(&resource) {
                    let args = format!(
                        "\"core\":{},\"wait_us\":{}",
                        core.index(),
                        us(start.saturating_sub(arrival))
                    );
                    em.complete(
                        1,
                        resource_tid(resource),
                        "svc",
                        resource.class(),
                        start,
                        end,
                        &args,
                    );
                }
            }
            ObsEvent::Finish { core, at } => {
                em.instant(0, core.index(), "sched", "finish", at, "");
            }
            ObsEvent::Fault { core, kind, at, lost } => {
                let args = format!("\"lost_us\":{}", us(lost));
                em.instant(0, core.index(), "fault", kind.name(), at, &args);
            }
            // Delivery windows are a journey-level concept; the Chrome
            // export keeps its committed shape and leaves them to the
            // `journey`/`skew` reports. Commit/sample events duplicate
            // the ops that caused them — the audit layer's concern.
            ObsEvent::DeliveryBegin { .. }
            | ObsEvent::DeliveryEnd { .. }
            | ObsEvent::MpbWrite { .. }
            | ObsEvent::FlagSample { .. } => {}
        }
    }

    // Close anything left open (deadlocked parks, unbalanced spans) at
    // the horizon so the trace stays well-formed.
    for (core, p) in parked_at {
        em.complete(0, core, "sched", "parked", p, horizon, "");
    }
    for (core, stack) in span_stack {
        for (span, begin) in stack.into_iter().rev() {
            let name = format!("{} {}", span.phase.name(), span.arg);
            em.complete(0, core, "phase", &name, begin, horizon, "");
        }
    }

    em.finish()
}

/// Which op kinds appear in a stream — exporters and text renderers use
/// this to build legends that cannot drift from the data.
pub fn kinds_present(events: &[ObsEvent]) -> Vec<OpKind> {
    let mut present: Vec<OpKind> = Vec::new();
    for k in OpKind::ALL {
        if events.iter().any(|e| matches!(*e, ObsEvent::Op { kind, .. } if kind == k)) {
            present.push(k);
        }
    }
    present
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::validate_json;
    use scc_hal::{CoreId, Phase, Span};

    fn ns(v: u64) -> Time {
        Time::from_ns(v)
    }

    #[test]
    fn exports_valid_json_with_tracks() {
        let events = vec![
            ObsEvent::SpanBegin {
                core: CoreId(0),
                span: Span::new(Phase::Dissemination, 0),
                at: ns(0),
            },
            ObsEvent::Op {
                core: CoreId(0),
                kind: OpKind::PutFromMem,
                lines: 4,
                start: ns(0),
                end: ns(400),
                msg: None,
            },
            ObsEvent::Wait {
                core: CoreId(0),
                resource: ResourceId::Port(5),
                arrival: ns(50),
                start: ns(70),
                end: ns(80),
                link: None,
            },
            ObsEvent::SpanEnd {
                core: CoreId(0),
                span: Span::new(Phase::Dissemination, 0),
                at: ns(400),
            },
            ObsEvent::Park { core: CoreId(1), line: 0, at: ns(10) },
            ObsEvent::Wake { core: CoreId(1), line: 0, at: ns(400), writer: CoreId(0) },
            ObsEvent::Handoff { from: CoreId(0), to: CoreId(1), at: ns(400) },
            ObsEvent::Finish { core: CoreId(1), at: ns(450) },
        ];
        let json = chrome_trace_json(&events);
        validate_json(&json).expect("chrome trace must be valid JSON");
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("core 0"), "core track metadata missing");
        assert!(json.contains("port[5]"), "contended resource track missing");
        assert!(json.contains("disseminate 0"), "phase span missing");
        assert!(json.contains("\"parked\""), "park interval missing");
        assert!(json.contains("\"handoff\""));
    }

    #[test]
    fn uncontended_resources_are_omitted() {
        let events = vec![
            ObsEvent::Op {
                core: CoreId(0),
                kind: OpKind::FlagPut,
                lines: 1,
                start: ns(0),
                end: ns(30),
                msg: None,
            },
            ObsEvent::Wait {
                core: CoreId(0),
                resource: ResourceId::Router(2),
                arrival: ns(5),
                start: ns(5), // no queueing
                end: ns(6),
                link: None,
            },
        ];
        let json = chrome_trace_json(&events);
        validate_json(&json).unwrap();
        assert!(!json.contains("router[2]"), "{json}");
    }

    #[test]
    fn unclosed_spans_and_parks_are_closed_at_horizon() {
        let events = vec![
            ObsEvent::SpanBegin { core: CoreId(0), span: Span::of(Phase::Drain), at: ns(10) },
            ObsEvent::Park { core: CoreId(0), line: 3, at: ns(20) },
            ObsEvent::Finish { core: CoreId(1), at: ns(100) },
        ];
        let json = chrome_trace_json(&events);
        validate_json(&json).unwrap();
        assert!(json.contains("drain 0"));
        assert!(json.contains("parked"));
    }

    #[test]
    fn kinds_present_orders_by_all() {
        let events = vec![
            ObsEvent::Op {
                core: CoreId(0),
                kind: OpKind::FlagPut,
                lines: 1,
                start: ns(0),
                end: ns(1),
                msg: None,
            },
            ObsEvent::Op {
                core: CoreId(0),
                kind: OpKind::PutFromMem,
                lines: 1,
                start: ns(1),
                end: ns(2),
                msg: None,
            },
        ];
        assert_eq!(kinds_present(&events), vec![OpKind::PutFromMem, OpKind::FlagPut]);
    }
}
