//! Differential critical paths: explain a makespan change by phase and
//! resource.
//!
//! A [`PhaseProfile`] projects a run's critical path onto a
//! (protocol phase × resource dimension) grid: every segment's service
//! time lands in the dimension of its kind (op service / compute /
//! idle) and its recorded queue waits land in port/router/mc-wait, all
//! under the innermost protocol span open on the segment's core when
//! the segment starts. Because critical-path segments partition
//! `[0, makespan]` in exact integer picoseconds and every picosecond of
//! a segment goes to exactly one cell, **the cells partition the
//! makespan** — and therefore the cell-wise difference of two profiles
//! sums *exactly* to the makespan difference. That conservation law is
//! what makes the diff trustworthy: nothing is smoothed, dropped, or
//! double-counted, and `tests/observability.rs` asserts it on real
//! contended runs.

use crate::critpath::{critical_path, CritPathError, SegmentKind};
use crate::event::ObsEvent;
use crate::report::Json;
use scc_hal::Time;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Resource dimensions of the grid, in rendering order.
pub const DIMENSIONS: [&str; 6] =
    ["op-service", "port-wait", "router-wait", "mc-wait", "compute", "idle"];

/// Phase key used for critical-path time outside any protocol span
/// (setup before the first span, tails after the last).
pub const OUTSIDE_PHASE: &str = "(outside)";

/// A run's critical path projected onto (phase × resource) cells.
#[derive(Clone, Debug)]
pub struct PhaseProfile {
    /// `(phase name, dimension) → picoseconds`. Sparse: only non-zero
    /// cells are stored. Keys are the stable strings of
    /// [`scc_hal::Phase::name`] plus [`OUTSIDE_PHASE`], and
    /// [`DIMENSIONS`].
    pub cells: BTreeMap<(&'static str, &'static str), u64>,
    /// End-to-end latency; always the exact sum of `cells`.
    pub makespan: Time,
}

impl PhaseProfile {
    /// Build from a recorded event stream (extracts the critical path
    /// internally). Fails exactly when [`critical_path`] does.
    pub fn build(events: &[ObsEvent]) -> Result<PhaseProfile, CritPathError> {
        let cp = critical_path(events)?;

        // Per-core phase timelines: breakpoints (time, innermost phase)
        // from the span edges, in stream order (nondecreasing per core).
        let mut breakpoints: BTreeMap<usize, Vec<(Time, Option<&'static str>)>> = BTreeMap::new();
        let mut stacks: BTreeMap<usize, Vec<&'static str>> = BTreeMap::new();
        for ev in events {
            match *ev {
                ObsEvent::SpanBegin { core, span, at } => {
                    let stack = stacks.entry(core.index()).or_default();
                    stack.push(span.phase.name());
                    breakpoints.entry(core.index()).or_default().push((at, stack.last().copied()));
                }
                ObsEvent::SpanEnd { core, span, at } => {
                    let stack = stacks.entry(core.index()).or_default();
                    if let Some(pos) = stack.iter().rposition(|f| *f == span.phase.name()) {
                        stack.truncate(pos);
                    }
                    breakpoints.entry(core.index()).or_default().push((at, stack.last().copied()));
                }
                _ => {}
            }
        }

        let phase_at = |core: usize, t: Time| -> &'static str {
            let Some(bps) = breakpoints.get(&core) else { return OUTSIDE_PHASE };
            let i = bps.partition_point(|&(at, _)| at <= t);
            i.checked_sub(1).and_then(|i| bps[i].1).unwrap_or(OUTSIDE_PHASE)
        };

        let mut cells: BTreeMap<(&'static str, &'static str), u64> = BTreeMap::new();
        let mut add = |phase: &'static str, dim: &'static str, t: Time| {
            if t > Time::ZERO {
                *cells.entry((phase, dim)).or_insert(0) += t.as_ps();
            }
        };
        for s in &cp.segments {
            // The whole segment is attributed to the innermost phase
            // open at its start — segments are short (one op), and a
            // whole-segment attribution keeps the partition exact.
            let phase = phase_at(s.core.index(), s.start);
            let dim = match s.kind {
                SegmentKind::Op(_) => "op-service",
                SegmentKind::Compute => "compute",
                SegmentKind::Idle => "idle",
            };
            add(phase, dim, s.service());
            add(phase, "port-wait", s.port_wait);
            add(phase, "router-wait", s.router_wait);
            add(phase, "mc-wait", s.mc_wait);
        }
        Ok(PhaseProfile { cells, makespan: cp.total() })
    }

    /// Sum over all cells — by construction equal to `makespan`.
    pub fn cell_total(&self) -> Time {
        Time::from_ps(self.cells.values().sum())
    }

    /// Sum of one dimension across phases.
    pub fn dimension_total(&self, dim: &str) -> Time {
        Time::from_ps(self.cells.iter().filter(|((_, d), _)| *d == dim).map(|(_, v)| v).sum())
    }
}

/// One cell of the differential table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DiffCell {
    pub phase: &'static str,
    pub dimension: &'static str,
    pub base_ps: u64,
    pub cand_ps: u64,
}

impl DiffCell {
    pub fn delta_ps(&self) -> i64 {
        self.cand_ps as i64 - self.base_ps as i64
    }
}

/// The differential critical path between a base run and a candidate
/// run of the same experiment.
#[derive(Clone, Debug)]
pub struct DiffReport {
    /// Every cell present in either profile, sorted by descending
    /// `|delta|` (ties by key, so rendering is deterministic).
    pub cells: Vec<DiffCell>,
    pub base_makespan: Time,
    pub cand_makespan: Time,
}

impl DiffReport {
    pub fn between(base: &PhaseProfile, cand: &PhaseProfile) -> DiffReport {
        let keys: std::collections::BTreeSet<_> =
            base.cells.keys().chain(cand.cells.keys()).copied().collect();
        let mut cells: Vec<DiffCell> = keys
            .into_iter()
            .map(|(phase, dimension)| DiffCell {
                phase,
                dimension,
                base_ps: base.cells.get(&(phase, dimension)).copied().unwrap_or(0),
                cand_ps: cand.cells.get(&(phase, dimension)).copied().unwrap_or(0),
            })
            .collect();
        cells.sort_by_key(|c| {
            (std::cmp::Reverse(c.delta_ps().unsigned_abs()), c.phase, c.dimension)
        });
        DiffReport { cells, base_makespan: base.makespan, cand_makespan: cand.makespan }
    }

    /// Candidate minus base makespan, signed picoseconds.
    pub fn delta_makespan_ps(&self) -> i64 {
        self.cand_makespan.as_ps() as i64 - self.base_makespan.as_ps() as i64
    }

    /// Sum of all cell deltas. The conservation law: this equals
    /// [`DiffReport::delta_makespan_ps`] *exactly*, because each
    /// profile's cells partition its makespan.
    pub fn cell_delta_sum_ps(&self) -> i64 {
        self.cells.iter().map(|c| c.delta_ps()).sum()
    }

    /// The cell contributing the largest absolute delta, if any time
    /// moved at all.
    pub fn dominant(&self) -> Option<&DiffCell> {
        self.cells.first().filter(|c| c.delta_ps() != 0)
    }

    /// Markdown: header with the makespan movement, then the table of
    /// cells with non-zero delta (largest movers first), then the
    /// conservation line.
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        let d = self.delta_makespan_ps();
        let _ = writeln!(
            out,
            "makespan: {} -> {} ({}{:.3}us, {:+.2}%)",
            self.base_makespan,
            self.cand_makespan,
            if d >= 0 { "+" } else { "-" },
            d.unsigned_abs() as f64 / 1e6,
            if self.base_makespan == Time::ZERO {
                0.0
            } else {
                100.0 * d as f64 / self.base_makespan.as_ps() as f64
            },
        );
        let _ = writeln!(out);
        let _ = writeln!(out, "| phase | resource | base | candidate | delta | share |");
        let _ = writeln!(out, "|---|---|---:|---:|---:|---:|");
        for c in self.cells.iter().filter(|c| c.delta_ps() != 0) {
            let share = if d == 0 { 0.0 } else { 100.0 * c.delta_ps() as f64 / d as f64 };
            let _ = writeln!(
                out,
                "| {} | {} | {:.3}us | {:.3}us | {:+.3}us | {share:.1}% |",
                c.phase,
                c.dimension,
                c.base_ps as f64 / 1e6,
                c.cand_ps as f64 / 1e6,
                c.delta_ps() as f64 / 1e6,
            );
        }
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "cell deltas sum to {:+.3}us == makespan delta {:+.3}us (conservative attribution)",
            self.cell_delta_sum_ps() as f64 / 1e6,
            d as f64 / 1e6,
        );
        out
    }

    /// JSON form, for machine consumers of `DRIFT.md`'s sidecar.
    pub fn to_json(&self) -> Json {
        let cells = self
            .cells
            .iter()
            .map(|c| {
                Json::obj()
                    .set("phase", Json::Str(c.phase.into()))
                    .set("dimension", Json::Str(c.dimension.into()))
                    .set("base_ps", Json::Int(c.base_ps as i64))
                    .set("cand_ps", Json::Int(c.cand_ps as i64))
                    .set("delta_ps", Json::Int(c.delta_ps()))
            })
            .collect();
        Json::obj()
            .set("base_makespan_ps", Json::Int(self.base_makespan.as_ps() as i64))
            .set("cand_makespan_ps", Json::Int(self.cand_makespan.as_ps() as i64))
            .set("delta_makespan_ps", Json::Int(self.delta_makespan_ps()))
            .set("cells", Json::Arr(cells))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::OpKind;
    use scc_hal::{CoreId, Phase, Span};

    fn ns(v: u64) -> Time {
        Time::from_ns(v)
    }

    fn op(core: u8, kind: OpKind, start: u64, end: u64) -> ObsEvent {
        ObsEvent::Op {
            core: CoreId(core),
            kind,
            lines: 1,
            start: ns(start),
            end: ns(end),
            msg: None,
        }
    }

    /// One core, one span around the op: the op's service lands in the
    /// span's phase, pre-span idle lands outside.
    fn sample_events(op_end: u64) -> Vec<ObsEvent> {
        vec![
            ObsEvent::SpanBegin {
                core: CoreId(0),
                span: Span::of(Phase::Dissemination),
                at: ns(10),
            },
            op(0, OpKind::PutFromMem, 10, op_end),
            ObsEvent::SpanEnd {
                core: CoreId(0),
                span: Span::of(Phase::Dissemination),
                at: ns(op_end),
            },
            ObsEvent::Finish { core: CoreId(0), at: ns(op_end) },
        ]
    }

    #[test]
    fn cells_partition_the_makespan() {
        let p = PhaseProfile::build(&sample_events(100)).unwrap();
        assert_eq!(p.makespan, ns(100));
        assert_eq!(p.cell_total(), p.makespan);
        assert_eq!(p.cells[&("disseminate", "op-service")], ns(90).as_ps());
        assert_eq!(p.cells[&(OUTSIDE_PHASE, "idle")], ns(10).as_ps());
    }

    #[test]
    fn waits_split_out_of_service_under_the_same_phase() {
        let mut events = sample_events(100);
        events.push(ObsEvent::Wait {
            core: CoreId(0),
            resource: crate::ResourceId::Port(0),
            arrival: ns(20),
            start: ns(35),
            end: ns(40),
            link: None,
        });
        let p = PhaseProfile::build(&events).unwrap();
        assert_eq!(p.cells[&("disseminate", "op-service")], ns(75).as_ps());
        assert_eq!(p.cells[&("disseminate", "port-wait")], ns(15).as_ps());
        assert_eq!(p.cell_total(), p.makespan);
    }

    #[test]
    fn diff_conserves_the_makespan_delta() {
        let base = PhaseProfile::build(&sample_events(100)).unwrap();
        let cand = PhaseProfile::build(&sample_events(140)).unwrap();
        let diff = DiffReport::between(&base, &cand);
        assert_eq!(diff.delta_makespan_ps(), ns(40).as_ps() as i64);
        assert_eq!(diff.cell_delta_sum_ps(), diff.delta_makespan_ps());
        let dom = diff.dominant().unwrap();
        assert_eq!((dom.phase, dom.dimension), ("disseminate", "op-service"));
        let md = diff.render_markdown();
        assert!(md.contains("conservative attribution"), "{md}");
        assert!(md.contains("| disseminate | op-service |"), "{md}");
    }

    #[test]
    fn identical_runs_diff_to_zero() {
        let p = PhaseProfile::build(&sample_events(100)).unwrap();
        let diff = DiffReport::between(&p, &p);
        assert_eq!(diff.delta_makespan_ps(), 0);
        assert_eq!(diff.cell_delta_sum_ps(), 0);
        assert!(diff.dominant().is_none());
    }

    #[test]
    fn degenerate_streams_propagate_typed_errors() {
        assert_eq!(PhaseProfile::build(&[]).unwrap_err(), CritPathError::EmptyStream);
    }

    #[test]
    fn json_sidecar_is_valid() {
        let base = PhaseProfile::build(&sample_events(100)).unwrap();
        let cand = PhaseProfile::build(&sample_events(120)).unwrap();
        let diff = DiffReport::between(&base, &cand);
        assert_eq!(diff.delta_makespan_ps(), ns(20).as_ps() as i64);
        let j = diff.to_json().render();
        assert!(crate::validate_json(&j).is_ok(), "{j}");
        assert!(j.contains("delta_makespan_ps"), "{j}");
        assert!(j.contains("cells"), "{j}");
    }
}
