//! Latency distributions of a recorded run: per protocol phase and per
//! resource-wait class.
//!
//! The conformance gate compares *means*; when a mean moves, the first
//! question is whether the whole distribution shifted (a cost change)
//! or a tail appeared (new contention). [`RunHistograms`] answers it:
//! every matched `SpanBegin`/`SpanEnd` pair contributes one phase
//! sample, every [`crate::ObsEvent::Wait`] one queueing sample for its
//! resource class, and each series is summarized as exact quantiles
//! (nearest-rank over the stored samples — the simulator is
//! deterministic, so p50 == p99 on an uncontended run is a *testable*
//! statement, see `tests/observability.rs`) plus a log₂-bucketed shape
//! for rendering.

use crate::event::ObsEvent;
use scc_hal::Time;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One latency series: exact samples for quantiles, log₂ buckets for
/// shape. Sample unit is virtual picoseconds.
#[derive(Clone, Debug, Default)]
pub struct LatencyHistogram {
    samples: Vec<u64>,
    sorted: bool,
}

impl LatencyHistogram {
    pub fn new() -> LatencyHistogram {
        LatencyHistogram::default()
    }

    pub fn record(&mut self, v: Time) {
        self.samples.push(v.as_ps());
        self.sorted = false;
    }

    pub fn count(&self) -> usize {
        self.samples.len()
    }

    fn sort(&mut self) {
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
    }

    /// Nearest-rank quantile (`q` in 0..=1). Exact on the recorded
    /// samples: on a run where every sample is identical, every
    /// quantile equals that sample. `None` on an empty series.
    pub fn quantile(&mut self, q: f64) -> Option<Time> {
        if self.samples.is_empty() {
            return None;
        }
        self.sort();
        let n = self.samples.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        Some(Time::from_ps(self.samples[rank - 1]))
    }

    pub fn max(&mut self) -> Option<Time> {
        self.sort();
        self.samples.last().map(|&v| Time::from_ps(v))
    }

    pub fn total(&self) -> Time {
        Time::from_ps(self.samples.iter().sum())
    }

    /// Log₂ bucket counts: bucket `b` holds samples in
    /// `[2^(b-1), 2^b)` ps, with bucket 0 holding exact zeros. Sparse —
    /// only populated buckets appear.
    pub fn log2_buckets(&self) -> BTreeMap<u32, u64> {
        let mut out = BTreeMap::new();
        for &s in &self.samples {
            let b = if s == 0 { 0 } else { 64 - s.leading_zeros() };
            *out.entry(b).or_insert(0) += 1;
        }
        out
    }

    /// One-line ASCII shape of the log₂ buckets ("▁▃█…" scaled to the
    /// largest bucket), for compact table cells.
    pub fn sparkline(&self) -> String {
        const GLYPHS: [char; 5] = ['.', '▂', '▄', '▆', '█'];
        let buckets = self.log2_buckets();
        let (Some(&lo), Some(&hi)) = (buckets.keys().next(), buckets.keys().last()) else {
            return String::new();
        };
        let peak = buckets.values().copied().max().unwrap_or(1).max(1);
        (lo..=hi)
            .map(|b| {
                let n = buckets.get(&b).copied().unwrap_or(0);
                if n == 0 {
                    ' '
                } else {
                    GLYPHS[((n * (GLYPHS.len() as u64 - 1)).div_ceil(peak)) as usize]
                }
            })
            .collect()
    }
}

/// All latency series of one recorded run.
#[derive(Clone, Debug, Default)]
pub struct RunHistograms {
    /// Keyed by phase name (`Phase::name()` — span args are merged so
    /// "round 0..5" is one series).
    pub phases: BTreeMap<&'static str, LatencyHistogram>,
    /// Keyed by resource class ("port" / "router" / "mc"); samples are
    /// queueing waits `start - arrival`, zero included, so quantiles
    /// read as "how long did the p99 booking queue".
    pub waits: BTreeMap<&'static str, LatencyHistogram>,
}

impl RunHistograms {
    /// Build from an event stream. Spans nest per core (LIFO); an
    /// unmatched `SpanEnd` is ignored, an unmatched `SpanBegin` simply
    /// never yields a sample — partial streams degrade, they don't
    /// panic.
    pub fn build(events: &[ObsEvent]) -> RunHistograms {
        let mut hg = RunHistograms::default();
        // Per-core stack of (phase name, begin time).
        let mut stacks: BTreeMap<usize, Vec<(&'static str, Time)>> = BTreeMap::new();
        for ev in events {
            match *ev {
                ObsEvent::SpanBegin { core, span, at } => {
                    stacks.entry(core.index()).or_default().push((span.phase.name(), at));
                }
                ObsEvent::SpanEnd { core, span, at } => {
                    let stack = stacks.entry(core.index()).or_default();
                    // Pop to the matching begin; mismatches (error-path
                    // unwinds) discard the inner frames.
                    if let Some(pos) =
                        stack.iter().rposition(|(name, _)| *name == span.phase.name())
                    {
                        let (name, begin) = stack[pos];
                        stack.truncate(pos);
                        hg.phases.entry(name).or_default().record(at.saturating_sub(begin));
                    }
                }
                ObsEvent::Wait { resource, arrival, start, .. } => {
                    hg.waits
                        .entry(resource.class())
                        .or_default()
                        .record(start.saturating_sub(arrival));
                }
                _ => {}
            }
        }
        hg
    }

    /// Markdown table: one row per phase and per wait class with count,
    /// p50/p90/p99/max and the log₂ shape.
    pub fn render_markdown(&mut self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "| series | n | p50 | p90 | p99 | max | total | shape (log2 ps) |");
        let _ = writeln!(out, "|---|---:|---:|---:|---:|---:|---:|---|");
        let fmt = |t: Option<Time>| match t {
            Some(t) => format!("{:.3}us", t.as_us_f64()),
            None => "—".into(),
        };
        // Stable order: phases first (protocol order via BTreeMap on
        // name is alphabetical; fine for a report), then wait classes.
        let phase_keys: Vec<&'static str> = self.phases.keys().copied().collect();
        for k in phase_keys {
            let h = self.phases.get_mut(k).expect("key just listed");
            let (p50, p90, p99) = (h.quantile(0.50), h.quantile(0.90), h.quantile(0.99));
            let (mx, total, spark) = (h.max(), h.total(), h.sparkline());
            let _ = writeln!(
                out,
                "| phase {k} | {} | {} | {} | {} | {} | {:.3}us | `{spark}` |",
                h.count(),
                fmt(p50),
                fmt(p90),
                fmt(p99),
                fmt(mx),
                total.as_us_f64(),
            );
        }
        let wait_keys: Vec<&'static str> = self.waits.keys().copied().collect();
        for k in wait_keys {
            let h = self.waits.get_mut(k).expect("key just listed");
            let (p50, p90, p99) = (h.quantile(0.50), h.quantile(0.90), h.quantile(0.99));
            let (mx, total, spark) = (h.max(), h.total(), h.sparkline());
            let _ = writeln!(
                out,
                "| {k}-wait | {} | {} | {} | {} | {} | {:.3}us | `{spark}` |",
                h.count(),
                fmt(p50),
                fmt(p90),
                fmt(p99),
                fmt(mx),
                total.as_us_f64(),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ResourceId;
    use scc_hal::{CoreId, Phase, Span};

    fn ns(v: u64) -> Time {
        Time::from_ns(v)
    }

    #[test]
    fn quantiles_are_nearest_rank_exact() {
        let mut h = LatencyHistogram::new();
        for v in [10u64, 20, 30, 40, 50, 60, 70, 80, 90, 100] {
            h.record(ns(v));
        }
        assert_eq!(h.quantile(0.50), Some(ns(50)));
        assert_eq!(h.quantile(0.90), Some(ns(90)));
        assert_eq!(h.quantile(0.99), Some(ns(100)));
        assert_eq!(h.quantile(0.0), Some(ns(10)));
        assert_eq!(h.max(), Some(ns(100)));
        assert_eq!(h.total(), ns(550));
    }

    #[test]
    fn identical_samples_collapse_all_quantiles() {
        let mut h = LatencyHistogram::new();
        for _ in 0..7 {
            h.record(ns(123));
        }
        assert_eq!(h.quantile(0.50), h.quantile(0.99));
        assert_eq!(h.quantile(0.99), Some(ns(123)));
    }

    #[test]
    fn empty_series_yields_none() {
        let mut h = LatencyHistogram::new();
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.max(), None);
        assert!(h.sparkline().is_empty());
    }

    #[test]
    fn log2_buckets_split_by_magnitude() {
        let mut h = LatencyHistogram::new();
        h.record(Time::from_ps(0));
        h.record(Time::from_ps(1)); // bucket 1: [1,2)
        h.record(Time::from_ps(3)); // bucket 2: [2,4)
        h.record(Time::from_ps(1024)); // bucket 11: [1024, 2048)
        let b = h.log2_buckets();
        assert_eq!(b[&0], 1);
        assert_eq!(b[&1], 1);
        assert_eq!(b[&2], 1);
        assert_eq!(b[&11], 1);
        assert_eq!(b.values().sum::<u64>(), 4);
    }

    #[test]
    fn build_pairs_spans_and_classifies_waits() {
        let sp = Span::of(Phase::Dissemination);
        let rd = Span::of(Phase::Round);
        let events = vec![
            ObsEvent::SpanBegin { core: CoreId(0), span: sp, at: ns(0) },
            // Nested inner span on the same core.
            ObsEvent::SpanBegin { core: CoreId(0), span: rd, at: ns(10) },
            ObsEvent::SpanEnd { core: CoreId(0), span: rd, at: ns(30) },
            ObsEvent::SpanEnd { core: CoreId(0), span: sp, at: ns(100) },
            // Another core's same-phase span lands in the same series.
            ObsEvent::SpanBegin { core: CoreId(1), span: sp, at: ns(50) },
            ObsEvent::SpanEnd { core: CoreId(1), span: sp, at: ns(150) },
            ObsEvent::Wait {
                core: CoreId(0),
                resource: ResourceId::Port(3),
                arrival: ns(5),
                start: ns(9),
                end: ns(12),
                link: None,
            },
            ObsEvent::Wait {
                core: CoreId(1),
                resource: ResourceId::Mc(0),
                arrival: ns(7),
                start: ns(7),
                end: ns(8),
                link: None,
            },
        ];
        let mut hg = RunHistograms::build(&events);
        assert_eq!(hg.phases["disseminate"].count(), 2);
        assert_eq!(hg.phases.get_mut("disseminate").unwrap().quantile(0.5), Some(ns(100)));
        assert_eq!(hg.phases.get_mut("round").unwrap().quantile(0.5), Some(ns(20)));
        assert_eq!(hg.waits.get_mut("port").unwrap().quantile(0.99), Some(ns(4)));
        assert_eq!(hg.waits.get_mut("mc").unwrap().quantile(0.99), Some(ns(0)));
        let md = hg.render_markdown();
        assert!(md.contains("| phase disseminate | 2 |"), "{md}");
        assert!(md.contains("port-wait"), "{md}");
    }

    #[test]
    fn unmatched_span_ends_are_ignored() {
        let events =
            vec![ObsEvent::SpanEnd { core: CoreId(0), span: Span::of(Phase::Ack), at: ns(10) }];
        let hg = RunHistograms::build(&events);
        assert!(hg.phases.is_empty());
    }
}
