//! Causal what-if profiles: which simulator cost class does a
//! scenario's makespan actually depend on?
//!
//! In the style of causal profiling (Coz), the question "is OC-Bcast
//! port-bound?" is answered experimentally: rerun the same scenario
//! with one cost class virtually scaled (±N% on the MPB-port service
//! time, the per-hop router latency, …) and measure how much the
//! makespan moves. The *sensitivity* of a class is the observed
//! relative makespan change per relative cost change — ~1.0 means the
//! class sits on the critical path end-to-end, ~0.0 means it is fully
//! hidden by overlap. The paper's claims map directly: OC-Bcast at
//! large message sizes should be most sensitive to MPB-port service
//! (Section 5's port-contention model), the binomial baseline at one
//! cache line to per-hop latency among the mesh/memory classes.
//!
//! This module is the data model and arithmetic; actually *running*
//! the scaled scenarios lives in `scc-bench` (which owns the
//! simulator), via [`scc-sim`]'s `SimParams::scaled` hook keyed by
//! [`CostClass`]. `CostClass` is defined here so both the simulator
//! hook and report consumers share one taxonomy without a dependency
//! cycle.

use crate::report::Json;
use scc_hal::Time;
use std::fmt;
use std::fmt::Write as _;

/// One knob of the simulator's cost model that a what-if run can scale
/// uniformly.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CostClass {
    /// MPB port service time per cache line (read and write sides).
    PortService,
    /// Per-hop mesh router forwarding latency.
    RouterHop,
    /// Memory-controller service time per cache line.
    McService,
    /// Core-side software overhead: per-op issue costs and per-line
    /// instruction overheads (the LogP `o`).
    CoreOverhead,
    /// Mesh link occupancy per packet — the inverse of link bandwidth.
    LinkBandwidth,
}

impl CostClass {
    /// Every class, in rendering order. Sweeps iterate this list so a
    /// new class cannot silently fall out of the profile.
    pub const ALL: [CostClass; 5] = [
        CostClass::PortService,
        CostClass::RouterHop,
        CostClass::McService,
        CostClass::CoreOverhead,
        CostClass::LinkBandwidth,
    ];

    /// Hardware-side classes — the subset that distinguishes *where in
    /// the fabric* a protocol is bound, excluding the software overhead
    /// that every operation pays on the issuing core.
    pub const HARDWARE: [CostClass; 4] = [
        CostClass::PortService,
        CostClass::RouterHop,
        CostClass::McService,
        CostClass::LinkBandwidth,
    ];

    pub const fn name(self) -> &'static str {
        match self {
            CostClass::PortService => "mpb-port-service",
            CostClass::RouterHop => "router-hop",
            CostClass::McService => "mc-service",
            CostClass::CoreOverhead => "core-overhead",
            CostClass::LinkBandwidth => "link-bandwidth",
        }
    }

    pub fn from_name(name: &str) -> Option<CostClass> {
        CostClass::ALL.into_iter().find(|c| c.name() == name)
    }
}

impl fmt::Display for CostClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One measured point: the scenario rerun with `class` scaled by
/// `factor` (1.0 = nominal).
#[derive(Clone, Copy, Debug)]
pub struct WhatIfPoint {
    pub class: CostClass,
    pub factor: f64,
    pub makespan: Time,
}

impl WhatIfPoint {
    /// Observed sensitivity at this point: relative makespan change per
    /// relative cost change. 1.0 means the scaled class is fully on the
    /// critical path; 0.0 means scaling it changed nothing.
    pub fn sensitivity(&self, nominal: Time) -> f64 {
        let dc = self.factor - 1.0;
        if dc == 0.0 || nominal == Time::ZERO {
            return 0.0;
        }
        let dm = (self.makespan.as_ps() as f64 - nominal.as_ps() as f64) / nominal.as_ps() as f64;
        dm / dc
    }
}

/// The what-if profile of one scenario: its nominal makespan plus every
/// scaled rerun.
#[derive(Clone, Debug)]
pub struct WhatIfProfile {
    /// Scenario label, e.g. `"ocbcast k=47 48c 96CL"`.
    pub scenario: String,
    pub nominal: Time,
    pub points: Vec<WhatIfPoint>,
}

impl WhatIfProfile {
    /// Mean sensitivity of `class` over all its measured points
    /// (averaging a +N% and a −N% point cancels boundary effects).
    /// `None` if the class was not swept.
    pub fn sensitivity(&self, class: CostClass) -> Option<f64> {
        let s: Vec<f64> = self
            .points
            .iter()
            .filter(|p| p.class == class)
            .map(|p| p.sensitivity(self.nominal))
            .collect();
        if s.is_empty() {
            None
        } else {
            Some(s.iter().sum::<f64>() / s.len() as f64)
        }
    }

    fn dominant_among(&self, candidates: &[CostClass]) -> Option<CostClass> {
        candidates
            .iter()
            .copied()
            .filter_map(|c| self.sensitivity(c).map(|s| (c, s)))
            .max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).expect("sensitivities are finite"))
            .map(|(c, _)| c)
    }

    /// The class with the largest absolute sensitivity.
    pub fn dominant(&self) -> Option<CostClass> {
        self.dominant_among(&CostClass::ALL)
    }

    /// The dominant class among [`CostClass::HARDWARE`] — "where in the
    /// fabric is this protocol bound", ignoring the core-side software
    /// overhead every message pays.
    pub fn dominant_hardware(&self) -> Option<CostClass> {
        self.dominant_among(&CostClass::HARDWARE)
    }

    /// Markdown table: one row per swept class with its per-factor
    /// makespans and the mean sensitivity, dominant class flagged.
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "scenario `{}`: nominal makespan {}", self.scenario, self.nominal);
        let _ = writeln!(out);
        let _ = writeln!(out, "| cost class | scaled makespans | sensitivity |  |");
        let _ = writeln!(out, "|---|---|---:|---|");
        let dom = self.dominant();
        for class in CostClass::ALL {
            let pts: Vec<&WhatIfPoint> = self.points.iter().filter(|p| p.class == class).collect();
            if pts.is_empty() {
                continue;
            }
            let runs = pts
                .iter()
                .map(|p| format!("x{:.2} -> {}", p.factor, p.makespan))
                .collect::<Vec<_>>()
                .join(", ");
            let s = self.sensitivity(class).unwrap_or(0.0);
            let flag = if Some(class) == dom { "**dominant**" } else { "" };
            let _ = writeln!(out, "| {class} | {runs} | {s:.3} | {flag} |");
        }
        out
    }

    /// JSON form for `BENCH_whatif.json`; the caller wraps profiles in
    /// a versioned envelope (see `conformance::ARTIFACT_VERSION`).
    pub fn to_json(&self) -> Json {
        let points = self
            .points
            .iter()
            .map(|p| {
                Json::obj()
                    .set("class", Json::Str(p.class.name().into()))
                    .set("factor", Json::Num(p.factor))
                    .set("makespan_ps", Json::Int(p.makespan.as_ps() as i64))
                    .set("sensitivity", Json::Num(p.sensitivity(self.nominal)))
            })
            .collect();
        let sens = CostClass::ALL
            .into_iter()
            .filter_map(|c| self.sensitivity(c).map(|s| (c, s)))
            .fold(Json::obj(), |j, (c, s)| j.set(c.name(), Json::Num(s)));
        let mut j = Json::obj()
            .set("scenario", Json::Str(self.scenario.clone()))
            .set("nominal_ps", Json::Int(self.nominal.as_ps() as i64))
            .set("points", Json::Arr(points))
            .set("sensitivity", sens);
        if let Some(d) = self.dominant() {
            j = j.set("dominant", Json::Str(d.name().into()));
        }
        if let Some(d) = self.dominant_hardware() {
            j = j.set("dominant_hardware", Json::Str(d.name().into()));
        }
        j
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: f64) -> Time {
        Time::from_us_f64(v)
    }

    fn profile() -> WhatIfProfile {
        WhatIfProfile {
            scenario: "test".into(),
            nominal: us(100.0),
            points: vec![
                // Port fully on the path: +10% cost -> +10% makespan.
                WhatIfPoint { class: CostClass::PortService, factor: 1.1, makespan: us(110.0) },
                WhatIfPoint { class: CostClass::PortService, factor: 0.9, makespan: us(90.0) },
                // Router half-hidden by overlap.
                WhatIfPoint { class: CostClass::RouterHop, factor: 1.1, makespan: us(105.0) },
                WhatIfPoint { class: CostClass::RouterHop, factor: 0.9, makespan: us(95.0) },
                // Mc irrelevant.
                WhatIfPoint { class: CostClass::McService, factor: 1.1, makespan: us(100.0) },
                // Overhead dominates everything.
                WhatIfPoint { class: CostClass::CoreOverhead, factor: 1.1, makespan: us(112.0) },
            ],
        }
    }

    #[test]
    fn sensitivity_is_relative_slope() {
        let p = profile();
        assert!((p.sensitivity(CostClass::PortService).unwrap() - 1.0).abs() < 1e-9);
        assert!((p.sensitivity(CostClass::RouterHop).unwrap() - 0.5).abs() < 1e-9);
        assert!(p.sensitivity(CostClass::McService).unwrap().abs() < 1e-9);
        assert_eq!(p.sensitivity(CostClass::LinkBandwidth), None);
    }

    #[test]
    fn dominant_respects_the_hardware_filter() {
        let p = profile();
        // Overall, core overhead moves the makespan the most…
        assert_eq!(p.dominant(), Some(CostClass::CoreOverhead));
        // …but among fabric classes the port dominates.
        assert_eq!(p.dominant_hardware(), Some(CostClass::PortService));
    }

    #[test]
    fn names_round_trip() {
        for c in CostClass::ALL {
            assert_eq!(CostClass::from_name(c.name()), Some(c));
        }
        assert_eq!(CostClass::from_name("warp-drive"), None);
    }

    #[test]
    fn markdown_flags_the_dominant_class() {
        let md = profile().render_markdown();
        assert!(md.contains("| core-overhead |"), "{md}");
        assert!(
            md.lines().any(|l| l.contains("core-overhead") && l.contains("**dominant**")),
            "{md}"
        );
        assert!(!md.contains("link-bandwidth"), "unswept class should be omitted: {md}");
    }

    #[test]
    fn json_is_valid_and_carries_sensitivities() {
        let j = profile().to_json().render();
        assert!(crate::validate_json(&j).is_ok(), "{j}");
        for key in ["scenario", "nominal_ps", "points", "sensitivity", "dominant"] {
            assert!(j.contains(key), "missing {key}: {j}");
        }
    }

    #[test]
    fn zero_nominal_or_factor_yields_zero_sensitivity() {
        let pt = WhatIfPoint { class: CostClass::RouterHop, factor: 1.0, makespan: us(5.0) };
        assert_eq!(pt.sensitivity(us(5.0)), 0.0);
        assert_eq!(pt.sensitivity(Time::ZERO), 0.0);
    }
}
