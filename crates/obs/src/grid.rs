//! The one 6×4 mesh-grid renderer.
//!
//! Both the per-run link heatmap ([`crate::heatmap::LinkHeatmap`]) and
//! the time-sliced congestion movie ([`crate::movie`]) draw the same
//! picture: the 24-tile SCC mesh, row `y = 3` on top to match the
//! paper's chip diagrams, one cell per tile showing five per-direction
//! characters in `E W N S eject` order. This module is the single
//! source of truth for that layout *and* for the occupancy-digit
//! rounding, so the two views can never round a cell differently.

use scc_hal::{LinkDir, Tile, Time, TILE_COLS, TILE_ROWS};
use std::fmt::Write as _;

/// One occupancy digit: `'-'` for exactly zero, `'0'` when the
/// normalization maximum is zero (nothing to scale against), `1..=9`
/// for the interior of the scale, and `'+'` at saturation (the cell
/// that *is* the maximum, or anything past it) — previously the
/// double-digit bucket was silently clamped to `'9'`, making the
/// hottest cell indistinguishable from a merely-hot one.
pub fn occupancy_digit(t: Time, max: Time) -> char {
    if t == Time::ZERO {
        '-'
    } else if max == Time::ZERO {
        '0'
    } else {
        let d = 1 + (t.as_ps() as u128 * 9 / max.as_ps() as u128) as u32;
        if d >= 10 {
            '+'
        } else {
            char::from_digit(d, 10).unwrap()
        }
    }
}

/// Render the 6×4 tile grid. `cell` supplies the character for one
/// `(tile index, direction)` slot; the output covers the tile rows plus
/// the closing floor line (headers and legends are the caller's).
pub fn render_mesh(mut cell: impl FnMut(usize, LinkDir) -> char) -> String {
    let mut out = String::new();
    for y in (0..TILE_ROWS).rev() {
        let mut row1 = String::new();
        let mut row2 = String::new();
        for x in 0..TILE_COLS {
            let t = Tile::new(x, y).index();
            let _ = write!(row1, "+--({x},{y})--");
            let _ = write!(
                row2,
                "| {}{}{}{}{} ",
                cell(t, LinkDir::East),
                cell(t, LinkDir::West),
                cell(t, LinkDir::North),
                cell(t, LinkDir::South),
                cell(t, LinkDir::Eject),
            );
        }
        let _ = writeln!(out, "{row1}+");
        let _ = writeln!(out, "{row2}|");
    }
    let _ = writeln!(out, "{}+", "+---------".repeat(TILE_COLS as usize));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digit_rounding() {
        let ns = Time::from_ns;
        assert_eq!(occupancy_digit(Time::ZERO, ns(9)), '-');
        assert_eq!(occupancy_digit(ns(1), Time::ZERO), '0');
        // Saturation is its own glyph, not a clamped '9'.
        assert_eq!(occupancy_digit(ns(9), ns(9)), '+');
        assert_eq!(occupancy_digit(ns(10), ns(9)), '+');
        // Just under the maximum still reads as a digit.
        assert_eq!(occupancy_digit(ns(8), ns(9)), '9');
        // The faintest non-zero signal still shows as at least 1.
        assert_eq!(occupancy_digit(Time::from_ps(1), ns(100)), '1');
        assert_eq!(occupancy_digit(ns(5), ns(9)), '6');
    }

    #[test]
    fn mesh_layout_is_4_rows_of_6_cells() {
        let art = render_mesh(|_, _| 'x');
        // 4 tile rows * 2 lines + the floor.
        assert_eq!(art.lines().count(), 9, "{art}");
        // Row y=3 renders first.
        assert!(art.starts_with("+--(0,3)--"), "{art}");
        assert!(art.lines().nth(1).unwrap().starts_with("| xxxxx "), "{art}");
        assert!(art.ends_with(&format!("{}+\n", "+---------".repeat(6))), "{art}");
    }

    #[test]
    fn cell_callback_sees_every_tile_and_direction_once() {
        let mut seen = std::collections::HashSet::new();
        render_mesh(|t, d| {
            assert!(seen.insert((t, d.index())), "duplicate slot ({t}, {d:?})");
            '.'
        });
        assert_eq!(seen.len(), 24 * 5);
    }
}
