//! End-to-end checks of the topology-aware tree strategy: correctness
//! on the simulator and the distance-metric comparison against the
//! paper's id-based tree.

use oc_bcast::{OcBcast, OcConfig, TreeLayout, TreeStrategy};
use scc_hal::{CoreId, MemRange, Rma, RmaExt, RmaResult};
use scc_rcce::MpbAllocator;
use scc_sim::{run_spmd, SimConfig};

#[test]
fn topo_strategy_delivers_everywhere() {
    for (p, k, root, len) in
        [(48usize, 7usize, 0u8, 5000usize), (12, 2, 5, 97 * 32), (48, 24, 47, 640)]
    {
        let msg: Vec<u8> = (0..len).map(|i| (i % 241) as u8).collect();
        let expect = msg.clone();
        let cfg = SimConfig { num_cores: p, mem_bytes: 1 << 18, ..SimConfig::default() };
        let rep = run_spmd(&cfg, move |c| -> RmaResult<Vec<u8>> {
            let mut alloc = MpbAllocator::new();
            let mut bc = OcBcast::new(
                &mut alloc,
                OcConfig { k, strategy: TreeStrategy::TopologyAware, ..OcConfig::default() },
            )
            .unwrap();
            let r = MemRange::new(0, msg.len());
            if c.core() == CoreId(root) {
                c.mem_write(0, &msg)?;
            }
            bc.bcast(c, CoreId(root), r)?;
            c.mem_to_vec(r)
        })
        .unwrap_or_else(|e| panic!("p={p} k={k}: {e}"));
        for (i, r) in rep.results.iter().enumerate() {
            assert_eq!(r.as_ref().unwrap(), &expect, "core {i}");
        }
    }
}

#[test]
fn distance_metrics_documented_in_design() {
    // The concrete numbers the docs and EXPERIMENTS.md quote.
    let totals: Vec<(usize, u32, u32)> = [2usize, 7, 24, 47]
        .into_iter()
        .map(|k| {
            let id = TreeLayout::build(TreeStrategy::ById, 48, k, CoreId(0));
            let topo = TreeLayout::build(TreeStrategy::TopologyAware, 48, k, CoreId(0));
            assert_eq!(id.depth(), topo.depth(), "depth must not regress at k={k}");
            (k, id.total_parent_distance(), topo.total_parent_distance())
        })
        .collect();
    assert_eq!(totals[0], (2, 171, 100));
    assert_eq!(totals[1], (7, 198, 112));
    assert_eq!(totals[2], (24, 239, 143));
    assert_eq!(totals[3], (47, 239, 239));
}

/// The topology-aware tree translates into a small but real latency
/// win for small messages on deep trees (k = 2), where per-hop flag
/// latency dominates. For larger messages the per-line core overheads
/// dwarf the distance term — quantifying exactly why the paper could
/// ignore topology "for small to medium scale systems like the SCC".
#[test]
fn topo_tree_wins_on_the_simulator() {
    let lat = |strategy: TreeStrategy| -> f64 {
        let cfg = SimConfig { num_cores: 48, mem_bytes: 1 << 18, ..SimConfig::default() };
        let rep = run_spmd(&cfg, move |c| -> RmaResult<scc_hal::Time> {
            let mut alloc = MpbAllocator::new();
            let mut bc =
                OcBcast::new(&mut alloc, OcConfig { k: 2, strategy, ..OcConfig::default() })
                    .unwrap();
            let r = MemRange::new(0, 32);
            if c.core().index() == 0 {
                c.mem_write(0, &[3u8; 32])?;
            }
            bc.bcast(c, CoreId(0), r)?;
            Ok(c.now())
        })
        .unwrap();
        rep.results.into_iter().map(|r| r.unwrap().as_us_f64()).fold(0.0, f64::max)
    };
    let by_id = lat(TreeStrategy::ById);
    let topo = lat(TreeStrategy::TopologyAware);
    assert!(topo < by_id, "topology-aware tree should cut k=2 latency: {topo:.2} vs {by_id:.2} µs");
}
