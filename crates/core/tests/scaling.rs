//! Scaling behaviour of the algorithms on the simulator: the asymptotic
//! claims of Section 5 hold mechanically, not just in the formulas.

use oc_bcast::{Algorithm, Broadcaster};
use scc_hal::{CoreId, MemRange, Rma, RmaResult, Time};
use scc_rcce::MpbAllocator;
use scc_sim::{run_spmd, SimConfig};

/// Latency of one broadcast (call at root to last return), no warmup.
fn latency(p: usize, alg: Algorithm, bytes: usize) -> f64 {
    let cfg = SimConfig { num_cores: p, mem_bytes: 1 << 18, ..SimConfig::default() };
    let rep = run_spmd(&cfg, move |c| -> RmaResult<Time> {
        let mut alloc = MpbAllocator::new();
        let mut b = Broadcaster::new(&mut alloc, alg, c.num_cores()).expect("ctx");
        let r = MemRange::new(0, bytes);
        if c.core().index() == 0 {
            c.mem_write(0, &vec![1u8; bytes])?;
        }
        b.bcast(c, CoreId(0), r)?;
        Ok(c.now())
    })
    .expect("sim");
    rep.results.into_iter().map(|r| r.unwrap().as_us_f64()).fold(0.0, f64::max)
}

#[test]
fn oc_latency_grows_with_tree_depth_not_cores() {
    // k = 7: P = 8 and P = 48 both have depth ≤ 2; going from 8 to 48
    // cores costs far less than the 6× core count (notification only),
    // while k = 1 (a chain) scales linearly.
    let l8 = latency(8, Algorithm::oc_with_k(7), 32);
    let l48 = latency(48, Algorithm::oc_with_k(7), 32);
    assert!(l48 < 2.5 * l8, "depth-2 tree must not scale with P: {l8:.2} -> {l48:.2}");

    let c6 = latency(6, Algorithm::oc_with_k(1), 32);
    let c24 = latency(24, Algorithm::oc_with_k(1), 32);
    let per_hop_6 = c6 / 5.0;
    let per_hop_24 = c24 / 23.0;
    assert!(
        (per_hop_24 / per_hop_6 - 1.0).abs() < 0.25,
        "chain latency must be ~linear per hop: {per_hop_6:.2} vs {per_hop_24:.2}"
    );
}

#[test]
fn binomial_latency_is_logarithmic() {
    // Doubling P adds one tree level: constant increments.
    let l4 = latency(4, Algorithm::Binomial, 32);
    let l8 = latency(8, Algorithm::Binomial, 32);
    let l16 = latency(16, Algorithm::Binomial, 32);
    let l32 = latency(32, Algorithm::Binomial, 32);
    let d1 = l8 - l4;
    let d2 = l16 - l8;
    let d3 = l32 - l16;
    assert!(d1 > 0.0 && d2 > 0.0 && d3 > 0.0);
    let avg = (d1 + d2 + d3) / 3.0;
    for (i, d) in [d1, d2, d3].into_iter().enumerate() {
        assert!(
            (d / avg - 1.0).abs() < 0.35,
            "level increment {i} irregular: {d:.2} vs avg {avg:.2} ({l4:.1},{l8:.1},{l16:.1},{l32:.1})"
        );
    }
}

#[test]
fn oc_pipeline_throughput_is_size_monotone() {
    // Larger messages amortize the pipeline fill: MB/s must not drop
    // as messages grow (checked across an order of magnitude).
    let sizes = [96usize, 384, 1536, 6144];
    let mut last = 0.0;
    for &lines in &sizes {
        let us = latency(12, Algorithm::oc_with_k(7), lines * 32);
        let mbps = (lines * 32) as f64 / us;
        assert!(
            mbps >= last * 0.98,
            "throughput regressed at {lines} CL: {mbps:.2} after {last:.2}"
        );
        last = mbps;
    }
    assert!(last > 20.0, "pipeline must approach the Table-2 band, got {last:.2}");
}
