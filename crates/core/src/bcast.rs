//! Unified broadcast front-end: one enum selecting any of the three
//! algorithms the paper compares, with a common collective entry point.
//! This is what the benchmark harness and the examples drive.

use crate::binomial::binomial_bcast;
use crate::ocbcast::{OcBcast, OcConfig};
use crate::rma_sag::RmaSag;
use crate::scatter_allgather::scatter_allgather_bcast;
use scc_hal::{CoreId, MemRange, Rma, RmaResult};
use scc_rcce::{MpbAllocator, MpbExhausted, RcceComm};

/// Which broadcast algorithm to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Algorithm {
    /// OC-Bcast with the given tuning (the paper's contribution).
    OcBcast(OcConfig),
    /// RCCE_comm binomial tree over two-sided send/receive.
    Binomial,
    /// RCCE_comm scatter-allgather over two-sided send/receive.
    ScatterAllgather,
    /// Scatter-allgather re-expressed over one-sided RMA — the paper's
    /// Section 5.4 alternative design (extension).
    RmaScatterAllgather,
}

impl Algorithm {
    /// The paper's recommended default (OC-Bcast, k = 7).
    pub fn oc_default() -> Algorithm {
        Algorithm::OcBcast(OcConfig::default())
    }

    pub fn oc_with_k(k: usize) -> Algorithm {
        Algorithm::OcBcast(OcConfig::with_k(k))
    }

    /// Short label for reports ("k=7", "binomial", "s-ag").
    pub fn label(&self) -> String {
        match self {
            Algorithm::OcBcast(cfg) => format!("k={}", cfg.k),
            Algorithm::Binomial => "binomial".to_string(),
            Algorithm::ScatterAllgather => "s-ag".to_string(),
            Algorithm::RmaScatterAllgather => "rma-s-ag".to_string(),
        }
    }
}

/// A ready-to-use broadcaster holding whichever MPB context its
/// algorithm needs. Construct identically on every core.
pub enum Broadcaster {
    Oc(OcBcast),
    TwoSided { comm: RcceComm, alg: Algorithm },
    OneSidedSag(RmaSag),
}

impl Broadcaster {
    /// Reserve MPB resources for `alg` on a `num_cores` run.
    pub fn new(
        alloc: &mut MpbAllocator,
        alg: Algorithm,
        num_cores: usize,
    ) -> Result<Broadcaster, MpbExhausted> {
        match alg {
            Algorithm::OcBcast(cfg) => Ok(Broadcaster::Oc(OcBcast::new(alloc, cfg)?)),
            Algorithm::RmaScatterAllgather => {
                Ok(Broadcaster::OneSidedSag(RmaSag::with_defaults(alloc, num_cores)?))
            }
            other => {
                Ok(Broadcaster::TwoSided { comm: RcceComm::new(alloc, num_cores)?, alg: other })
            }
        }
    }

    /// Release the MPB resources.
    pub fn release(self, alloc: &mut MpbAllocator) {
        match self {
            Broadcaster::Oc(oc) => oc.release(alloc),
            Broadcaster::TwoSided { comm, .. } => comm.release(alloc),
            Broadcaster::OneSidedSag(sag) => sag.release(alloc),
        }
    }

    /// Collective broadcast of `msg` from `root`'s private memory to
    /// the same range on every core.
    pub fn bcast<R: Rma>(&mut self, c: &mut R, root: CoreId, msg: MemRange) -> RmaResult<()> {
        match self {
            Broadcaster::Oc(oc) => oc.bcast(c, root, msg),
            Broadcaster::TwoSided { comm, alg } => match alg {
                Algorithm::Binomial => binomial_bcast(c, comm, root, msg),
                Algorithm::ScatterAllgather => scatter_allgather_bcast(c, comm, root, msg),
                Algorithm::OcBcast(_) | Algorithm::RmaScatterAllgather => {
                    unreachable!("held by dedicated variants")
                }
            },
            Broadcaster::OneSidedSag(sag) => sag.bcast(c, root, msg),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scc_hal::RmaExt;
    use scc_sim::{run_spmd, SimConfig};

    #[test]
    fn all_algorithms_agree_on_the_result() {
        let len = 2 * 96 * 32 + 50;
        let msg: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
        for alg in [
            Algorithm::oc_default(),
            Algorithm::oc_with_k(2),
            Algorithm::Binomial,
            Algorithm::ScatterAllgather,
            Algorithm::RmaScatterAllgather,
        ] {
            let cfg = SimConfig { num_cores: 12, mem_bytes: 1 << 20, ..SimConfig::default() };
            let m = msg.clone();
            let rep = run_spmd(&cfg, move |c| -> RmaResult<Vec<u8>> {
                let mut alloc = MpbAllocator::new();
                let mut b = Broadcaster::new(&mut alloc, alg, c.num_cores()).unwrap();
                let r = MemRange::new(0, m.len());
                if c.core() == CoreId(3) {
                    c.mem_write(0, &m)?;
                }
                b.bcast(c, CoreId(3), r)?;
                c.mem_to_vec(r)
            })
            .unwrap_or_else(|e| panic!("{}: {e}", alg.label()));
            for r in rep.results {
                assert_eq!(r.unwrap(), msg, "{}", alg.label());
            }
        }
    }

    #[test]
    fn switching_algorithms_in_one_run_via_release() {
        // The kmeans example pattern: use OC-Bcast, release it, then use
        // scatter-allgather with the same MPB.
        let cfg = SimConfig { num_cores: 8, mem_bytes: 1 << 20, ..SimConfig::default() };
        let rep = run_spmd(&cfg, |c| -> RmaResult<bool> {
            let len = 5000;
            let msg: Vec<u8> = (0..len).map(|i| (i % 199) as u8).collect();
            let r = MemRange::new(0, len);
            let mut alloc = MpbAllocator::new();

            let mut oc = Broadcaster::new(&mut alloc, Algorithm::oc_default(), 8).unwrap();
            if c.core().index() == 0 {
                c.mem_write(0, &msg)?;
            }
            oc.bcast(c, CoreId(0), r)?;
            let first = c.mem_to_vec(r)? == msg;
            oc.release(&mut alloc);

            let mut sag = Broadcaster::new(&mut alloc, Algorithm::ScatterAllgather, 8).unwrap();
            // Overwrite and re-broadcast from another root.
            let msg2: Vec<u8> = msg.iter().map(|b| b.wrapping_add(1)).collect();
            if c.core().index() == 5 {
                c.mem_write(0, &msg2)?;
            }
            sag.bcast(c, CoreId(5), r)?;
            let second = c.mem_to_vec(r)? == msg2;
            sag.release(&mut alloc);

            Ok(first && second)
        })
        .unwrap();
        assert!(rep.results.into_iter().all(|r| r.unwrap()));
    }

    #[test]
    fn labels() {
        assert_eq!(Algorithm::oc_with_k(47).label(), "k=47");
        assert_eq!(Algorithm::Binomial.label(), "binomial");
        assert_eq!(Algorithm::ScatterAllgather.label(), "s-ag");
        assert_eq!(Algorithm::RmaScatterAllgather.label(), "rma-s-ag");
    }
}
