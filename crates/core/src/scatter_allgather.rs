//! The RCCE_comm **scatter-allgather** broadcast baseline
//! (Section 5.3.2): the message is cut into `P` slices; a binomial
//! (recursive-halving) scatter gives each core one slice, then `P − 1`
//! ring exchange rounds (the paper describes this allgather citing
//! Bruck et al.) circulate the slices until everyone holds the whole
//! message. Best for large messages among the two-sided algorithms;
//! OC-Bcast beats it ~3× because every slice still crosses off-chip
//! memory on both sides of every hop.

use scc_hal::{
    bytes_to_lines, delivering, spanned, tagged, CoreId, MemRange, MsgId, Phase, Rma, RmaResult,
    Span, CACHE_LINE_BYTES,
};
use scc_rcce::RcceComm;

/// The byte sub-range of slice `j` when `msg` is split into `p`
/// line-aligned slices (empty slices allowed when the message is
/// shorter than `p` cache lines).
pub fn slice_range(msg: MemRange, p: usize, j: usize) -> MemRange {
    assert!(j < p);
    let total_lines = bytes_to_lines(msg.len);
    let base = total_lines / p;
    let rem = total_lines % p;
    let start_line = j * base + j.min(rem);
    let lines = base + usize::from(j < rem);
    // Clamp to the message: trailing empty slices collapse to
    // zero-length ranges at the message end.
    let byte_start = (start_line * CACHE_LINE_BYTES).min(msg.len);
    let byte_len = (lines * CACHE_LINE_BYTES).min(msg.len - byte_start);
    msg.slice(byte_start, byte_len)
}

/// Collective scatter-allgather broadcast. All cores must call with
/// identical `root` and `msg`.
pub fn scatter_allgather_bcast<R: Rma>(
    c: &mut R,
    comm: &RcceComm,
    root: CoreId,
    msg: MemRange,
) -> RmaResult<()> {
    let p = c.num_cores();
    if p <= 1 {
        return Ok(());
    }
    let me = c.core();
    let rr = (me.index() + p - root.index()) % p;
    let abs = |rel: usize| CoreId(((root.index() + rel) % p) as u8);

    // Contiguous run of slices lo..hi as one byte range.
    let slices = |lo: usize, hi: usize| -> MemRange {
        debug_assert!(lo < hi);
        let first = slice_range(msg, p, lo);
        let last = slice_range(msg, p, hi - 1);
        msg.slice(first.offset - msg.offset, last.end() - first.offset)
    };
    // First cache line of a fragment within the whole message (journey
    // tags use epoch 0: the comm context carries no invocation counter).
    let first_line = |r: MemRange| ((r.offset - msg.offset) / CACHE_LINE_BYTES) as u32;

    // ---- scatter phase: recursive halving on the rank range ----------
    // The holder of a range [lo, hi) is rank `lo`; it hands the upper
    // half to rank `mid` and recurses into the lower half. Every core
    // tracks the range it belongs to until it is alone in it.
    delivering(c, 0, |c| {
        spanned(c, Span::of(Phase::Scatter), |c| {
            let mut lo = 0usize;
            let mut hi = p;
            while hi - lo > 1 {
                let mid = lo + (hi - lo).div_ceil(2);
                if rr == lo {
                    let part = slices(mid, hi);
                    tagged(c, MsgId::new(0, me, abs(mid), first_line(part)), |c| {
                        // Root sends cold (reads the user buffer from
                        // memory); intermediate holders forward what they
                        // just received.
                        if rr == 0 {
                            comm.send(c, abs(mid), part)
                        } else {
                            comm.send_cached(c, abs(mid), part)
                        }
                    })?;
                } else if rr == mid {
                    let part = slices(mid, hi);
                    tagged(c, MsgId::new(0, abs(lo), me, first_line(part)), |c| {
                        comm.recv(c, abs(lo), part)
                    })?;
                }
                if rr < mid {
                    hi = mid;
                } else {
                    lo = mid;
                }
            }
            Ok(())
        })?;

        // ---- allgather phase: P − 1 ring rounds ---------------------------
        // In round r, core `rr` sends slice (rr + r) mod p to rr − 1 and
        // receives slice (rr + r + 1) mod p from rr + 1 (the paper's "core
        // i sends to core i − 1 the slices it received in the previous
        // step"). With blocking rendezvous send/receive the op order
        // matters: odd ranks send first while even ranks receive first, so
        // all pair exchanges of a round proceed concurrently (a serial
        // schedule would turn every round into a P-deep match cascade and
        // cost ~P× the model's 2·(C_put + C_get) per round). With odd P the
        // wrap pair shares a parity and serializes once per round — the
        // standard, benign artifact of parity scheduling.
        let left = abs((rr + p - 1) % p);
        let right = abs((rr + 1) % p);
        spanned(c, Span::of(Phase::Allgather), |c| {
            for r in 0..p - 1 {
                let out = slice_range(msg, p, (rr + r) % p);
                let inc = slice_range(msg, p, (rr + r + 1) % p);
                spanned(c, Span::new(Phase::Round, r as u32), |c| {
                    if rr.is_multiple_of(2) {
                        tagged(c, MsgId::new(0, right, me, first_line(inc)), |c| {
                            comm.recv(c, right, inc)
                        })?;
                        tagged(c, MsgId::new(0, me, left, first_line(out)), |c| {
                            comm.send_cached(c, left, out)
                        })
                    } else {
                        tagged(c, MsgId::new(0, me, left, first_line(out)), |c| {
                            comm.send_cached(c, left, out)
                        })?;
                        tagged(c, MsgId::new(0, right, me, first_line(inc)), |c| {
                            comm.recv(c, right, inc)
                        })
                    }
                })?;
            }
            Ok(())
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use scc_hal::RmaExt;
    use scc_rcce::MpbAllocator;
    use scc_sim::{run_spmd, SimConfig};

    fn cfg(n: usize) -> SimConfig {
        SimConfig { num_cores: n, mem_bytes: 1 << 21, ..SimConfig::default() }
    }

    fn pattern(len: usize, seed: u8) -> Vec<u8> {
        (0..len).map(|i| (i as u8).wrapping_mul(73).wrapping_add(seed)).collect()
    }

    fn check(p: usize, root: u8, len: usize) {
        let msg = pattern(len, root);
        let expect = msg.clone();
        let rep = run_spmd(&cfg(p), move |c| -> RmaResult<Vec<u8>> {
            let mut alloc = MpbAllocator::new();
            let comm = RcceComm::new(&mut alloc, c.num_cores()).unwrap();
            let r = MemRange::new(0, msg.len());
            if c.core() == CoreId(root) {
                c.mem_write(0, &msg)?;
            }
            scatter_allgather_bcast(c, &comm, CoreId(root), r)?;
            c.mem_to_vec(r)
        })
        .unwrap_or_else(|e| panic!("p={p} root={root} len={len}: {e}"));
        for (i, r) in rep.results.iter().enumerate() {
            assert_eq!(r.as_ref().unwrap(), &expect, "core {i} (p={p}, len={len})");
        }
    }

    #[test]
    fn slice_partition_covers_message_exactly() {
        for (len, p) in [(1000usize, 7usize), (96 * 32 * 48, 48), (5, 4), (100, 48)] {
            let msg = MemRange::new(0, len);
            let mut covered = 0usize;
            for j in 0..p {
                let s = slice_range(msg, p, j);
                assert_eq!(s.offset, covered, "slice {j} not contiguous");
                covered = s.end();
                if s.len > 0 {
                    assert_eq!(s.offset % CACHE_LINE_BYTES, 0);
                }
            }
            assert_eq!(covered, len, "slices must cover len={len} p={p}");
        }
    }

    #[test]
    fn short_message_leaves_empty_slices() {
        // 100 bytes over 48 cores: 4 lines -> 4 one-line slices, 44 empty.
        let msg = MemRange::new(0, 100);
        let nonempty = (0..48).filter(|&j| slice_range(msg, 48, j).len > 0).count();
        assert_eq!(nonempty, 4);
    }

    #[test]
    fn small_p_various_lengths() {
        check(4, 0, 4 * 96 * 32);
        check(4, 0, 333);
        check(2, 0, 64);
    }

    #[test]
    fn all_48_cores_large_message() {
        check(48, 0, 48 * 96 * 32); // the paper's P·M_oc throughput message
    }

    #[test]
    fn message_shorter_than_p_lines() {
        check(48, 0, 100);
        check(12, 3, 31);
    }

    #[test]
    fn non_zero_root() {
        check(12, 11, 7000);
    }

    #[test]
    fn odd_core_counts() {
        check(3, 0, 1000);
        check(7, 2, 5000);
        check(47, 1, 47 * 32);
    }
}
