//! Personalized one-sided collectives: scatter, gather and all-to-all.
//!
//! These round out the collective family the paper's Section 7 aims at
//! (and that RCKMPI would need), built from the same ingredients as
//! OC-Bcast: pipelined `put`s into the consumer's double-buffered MPB
//! halves, sequence flags, and `get`s to off-chip memory.
//!
//! Communication structure:
//!
//! * [`OnesidedGroup::scatter`] — the root pushes slice `j` of its
//!   buffer directly to core `j`, pipelined per destination. The root
//!   moves each byte exactly once (the same aggregate as a tree
//!   scatter, without intermediate copies).
//! * [`OnesidedGroup::gather`] — the mirror image: every core pushes
//!   its slice to the root, which drains them in rank order.
//! * [`OnesidedGroup::alltoall`] — `P − 1` shift rounds; in round `r`
//!   core `i` pushes its slice for core `i + r` and pulls from core
//!   `i − r`. Rounds are barrier-separated: with changing partners,
//!   unsolicited one-sided writes would otherwise race ahead into
//!   buffers a slower core is still using (the same hazard the
//!   one-sided scatter-allgather's phase barrier handles; see
//!   `rma_sag`).
//!
//! Slices are the deterministic line-aligned partition of
//! [`crate::scatter_allgather::slice_range`]; `alltoall` interprets the
//! send buffer as `P` such slices and writes the receive buffer in the
//! same layout.

use crate::scatter_allgather::slice_range;
use scc_hal::{
    bytes_to_lines, CoreId, FlagValue, MemRange, MpbAddr, Rma, RmaResult, CACHE_LINE_BYTES,
};
use scc_rcce::{Barrier, MpbAllocator, MpbExhausted, MpbRegion};

/// Context for the personalized collectives (symmetric allocation).
#[derive(Clone, Debug)]
pub struct OnesidedGroup {
    notify: MpbRegion,
    done: MpbRegion,
    bufs: [MpbRegion; 2],
    barrier: Barrier,
    seq: u32,
}

impl OnesidedGroup {
    pub fn new(
        alloc: &mut MpbAllocator,
        num_cores: usize,
        half_lines: usize,
    ) -> Result<OnesidedGroup, MpbExhausted> {
        assert!(half_lines >= 1);
        let notify = alloc.alloc(2)?;
        let done = alloc.alloc(2)?;
        let b0 = alloc.alloc(half_lines)?;
        let b1 = alloc.alloc(half_lines)?;
        let barrier = Barrier::new(alloc, num_cores)?;
        Ok(OnesidedGroup { notify, done, bufs: [b0, b1], barrier, seq: 0 })
    }

    pub fn with_defaults(
        alloc: &mut MpbAllocator,
        num_cores: usize,
    ) -> Result<OnesidedGroup, MpbExhausted> {
        Self::new(alloc, num_cores, 96)
    }

    pub fn release(self, alloc: &mut MpbAllocator) {
        alloc.free(self.notify);
        alloc.free(self.done);
        alloc.free(self.bufs[0]);
        alloc.free(self.bufs[1]);
        self.barrier.release(alloc);
    }

    fn chunk_bytes(&self) -> usize {
        self.bufs[0].lines * CACHE_LINE_BYTES
    }

    fn chunks_of(&self, bytes: usize) -> usize {
        bytes_to_lines(bytes).div_ceil(self.bufs[0].lines).max(1)
    }

    /// Pipelined producer side of one transfer; drains before returning
    /// (partners change between transfers).
    fn push<R: Rma>(&self, c: &mut R, dst: CoreId, src: MemRange, seq_base: u32) -> RmaResult<()> {
        let n = self.chunks_of(src.len);
        let chunk_bytes = self.chunk_bytes();
        let mut off = 0usize;
        let mut last = [0u32; 2];
        for i in 0..n {
            let seq = seq_base + i as u32 + 1;
            let h = i % 2;
            if last[h] > 0 {
                c.flag_wait_local(self.done.line(h), &mut |v| v.0 >= last[h])?;
            }
            let len = (src.len - off).min(chunk_bytes);
            if len > 0 {
                c.put_from_mem(src.slice(off, len), MpbAddr::new(dst, self.bufs[h].first_line))?;
            }
            c.flag_put(MpbAddr::new(dst, self.notify.line(h)), FlagValue(seq))?;
            last[h] = seq;
            off += len;
        }
        for (h, &seq) in last.iter().enumerate() {
            if seq > 0 {
                c.flag_wait_local(self.done.line(h), &mut |v| v.0 >= seq)?;
            }
        }
        Ok(())
    }

    /// Consumer side of one transfer.
    fn pull<R: Rma>(&self, c: &mut R, src: CoreId, dst: MemRange, seq_base: u32) -> RmaResult<()> {
        let n = self.chunks_of(dst.len);
        let chunk_bytes = self.chunk_bytes();
        let me = c.core();
        let mut off = 0usize;
        for i in 0..n {
            let seq = seq_base + i as u32 + 1;
            let h = i % 2;
            c.flag_wait_local(self.notify.line(h), &mut |v| v.0 >= seq)?;
            let len = (dst.len - off).min(chunk_bytes);
            if len > 0 {
                c.get_to_mem(MpbAddr::new(me, self.bufs[h].first_line), dst.slice(off, len))?;
            }
            c.flag_put(MpbAddr::new(src, self.done.line(h)), FlagValue(seq))?;
            off += len;
        }
        Ok(())
    }

    /// Scatter: the `root`'s `msg` buffer is cut into `P` slices; core
    /// `j` receives slice `j` into the same sub-range of its own
    /// buffer. (Slice `root` stays in place.)
    pub fn scatter<R: Rma>(&mut self, c: &mut R, root: CoreId, msg: MemRange) -> RmaResult<()> {
        let p = c.num_cores();
        if msg.len == 0 || p <= 1 {
            return Ok(());
        }
        let me = c.core();
        let max_chunks = self.chunks_of(slice_range(msg, p, 0).len.max(1)) as u32;
        let base = self.seq;
        self.seq += p as u32 * max_chunks;

        if me == root {
            for j in 0..p {
                if j == root.index() {
                    continue;
                }
                let slice = slice_range(msg, p, j);
                if slice.len > 0 {
                    self.push(c, CoreId(j as u8), slice, base + j as u32 * max_chunks)?;
                }
            }
        } else {
            let slice = slice_range(msg, p, me.index());
            if slice.len > 0 {
                self.pull(c, root, slice, base + me.index() as u32 * max_chunks)?;
            }
        }
        // Collective boundary (next collective may have different pairs).
        self.barrier.wait(c)?;
        Ok(())
    }

    /// Gather: core `j`'s slice `j` lands in the root's buffer; the
    /// mirror image of [`OnesidedGroup::scatter`].
    pub fn gather<R: Rma>(&mut self, c: &mut R, root: CoreId, msg: MemRange) -> RmaResult<()> {
        let p = c.num_cores();
        if msg.len == 0 || p <= 1 {
            return Ok(());
        }
        let me = c.core();
        let max_chunks = self.chunks_of(slice_range(msg, p, 0).len.max(1)) as u32;
        let base = self.seq;
        self.seq += p as u32 * max_chunks;

        // The root's two MPB halves are the shared resource: producers
        // must take turns, or their chunks and sequence flags clobber
        // each other. The root grants turn `j` (a flag in producer j's
        // own MPB, unused during a gather) right before pulling from j.
        let turn_base = base + p as u32 * max_chunks;
        self.seq += p as u32;
        if me == root {
            for j in 0..p {
                if j == root.index() {
                    continue;
                }
                let slice = slice_range(msg, p, j);
                if slice.len > 0 {
                    c.flag_put(
                        MpbAddr::new(CoreId(j as u8), self.notify.line(0)),
                        FlagValue(turn_base + j as u32 + 1),
                    )?;
                    self.pull(c, CoreId(j as u8), slice, base + j as u32 * max_chunks)?;
                }
            }
        } else {
            let slice = slice_range(msg, p, me.index());
            if slice.len > 0 {
                let my_turn = turn_base + me.index() as u32 + 1;
                c.flag_wait_local(self.notify.line(0), &mut |v| v.0 >= my_turn)?;
                self.push(c, root, slice, base + me.index() as u32 * max_chunks)?;
            }
        }
        self.barrier.wait(c)?;
        Ok(())
    }

    /// Personalized all-to-all: `send` holds `P` slices (slice `j` is
    /// this core's message for core `j`); afterwards `recv` holds `P`
    /// slices where slice `j` is the message *from* core `j`. `send`
    /// and `recv` must not overlap. Own slice is copied locally.
    pub fn alltoall<R: Rma>(&mut self, c: &mut R, send: MemRange, recv: MemRange) -> RmaResult<()> {
        assert!(
            send.end() <= recv.offset || recv.end() <= send.offset,
            "send and recv buffers must not overlap"
        );
        assert_eq!(send.len, recv.len, "send and recv must have identical layout");
        let p = c.num_cores();
        if send.len == 0 {
            return Ok(());
        }
        let me = c.core().index();

        // Own slice: plain local copy (untimed host move would be
        // cheating; go through the MPB like everyone else? The SCC
        // would memcpy within private memory — model as a get-free
        // host copy).
        let mine_src = slice_range(send, p, me);
        let mine_dst = slice_range(recv, p, me);
        if mine_src.len > 0 {
            let mut buf = vec![0u8; mine_src.len];
            c.mem_read(mine_src.offset, &mut buf)?;
            c.mem_write(mine_dst.offset, &buf)?;
        }
        if p <= 1 {
            return Ok(());
        }

        let max_chunks = self.chunks_of(slice_range(send, p, 0).len.max(1)) as u32;
        for r in 1..p {
            let to = (me + r) % p;
            let from = (me + p - r) % p;
            let base = self.seq;
            self.seq += 2 * max_chunks;
            let out = slice_range(send, p, to);
            let inc = slice_range(recv, p, from);
            // Each round is a permutation (shift by r). The op order
            // must break the rendezvous cycle along each shift-cycle:
            // the minimum member of a cycle pulls first and everyone
            // else pushes first, so completions unwind around the
            // cycle (a parity rule deadlocks when the shift is even —
            // all members of a cycle share parity). The barrier
            // separates rounds because partners change.
            if pulls_first(me, r, p) {
                if inc.len > 0 {
                    self.pull(c, CoreId(from as u8), inc, base)?;
                }
                if out.len > 0 {
                    self.push(c, CoreId(to as u8), out, base)?;
                }
            } else {
                if out.len > 0 {
                    self.push(c, CoreId(to as u8), out, base)?;
                }
                if inc.len > 0 {
                    self.pull(c, CoreId(from as u8), inc, base)?;
                }
            }
            self.barrier.wait(c)?;
        }
        Ok(())
    }
}

/// True iff `me` is the minimum member of its cycle under the shift-by
/// `r` permutation of `0..p` — the designated pull-first member that
/// breaks the round's rendezvous cycle.
fn pulls_first(me: usize, r: usize, p: usize) -> bool {
    let mut m = (me + r) % p;
    while m != me {
        if m < me {
            return false;
        }
        m = (m + r) % p;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use scc_hal::RmaExt;
    use scc_sim::{run_spmd, SimConfig};

    fn cfg(n: usize) -> SimConfig {
        SimConfig { num_cores: n, mem_bytes: 1 << 21, ..SimConfig::default() }
    }

    #[test]
    fn scatter_distributes_slices() {
        let p = 8;
        let len = 4000;
        let msg: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
        let expect = msg.clone();
        let rep = run_spmd(&cfg(p), move |c| -> RmaResult<Vec<u8>> {
            let mut alloc = MpbAllocator::new();
            let mut g = OnesidedGroup::with_defaults(&mut alloc, p).unwrap();
            let r = MemRange::new(0, len);
            if c.core().index() == 2 {
                c.mem_write(0, &msg)?;
            }
            g.scatter(c, CoreId(2), r)?;
            let mine = slice_range(r, p, c.core().index());
            c.mem_to_vec(mine)
        })
        .unwrap();
        let r = MemRange::new(0, len);
        for (i, res) in rep.results.iter().enumerate() {
            let s = slice_range(r, p, i);
            assert_eq!(res.as_ref().unwrap(), &expect[s.offset..s.end()], "core {i}");
        }
    }

    #[test]
    fn gather_collects_slices() {
        let p = 8;
        let len = 6000;
        let rep = run_spmd(&cfg(p), move |c| -> RmaResult<Vec<u8>> {
            let mut alloc = MpbAllocator::new();
            let mut g = OnesidedGroup::with_defaults(&mut alloc, p).unwrap();
            let r = MemRange::new(0, len);
            let me = c.core().index();
            let mine = slice_range(r, p, me);
            let fill: Vec<u8> = (0..mine.len).map(|i| (i as u8) ^ (me as u8 * 11)).collect();
            c.mem_write(mine.offset, &fill)?;
            g.gather(c, CoreId(0), r)?;
            c.mem_to_vec(r)
        })
        .unwrap();
        let r = MemRange::new(0, len);
        let got = rep.results[0].as_ref().unwrap();
        for j in 0..p {
            let s = slice_range(r, p, j);
            for i in 0..s.len {
                assert_eq!(got[s.offset + i], (i as u8) ^ (j as u8 * 11), "slice {j}");
            }
        }
    }

    #[test]
    fn alltoall_transposes() {
        let p = 6;
        let len = 6 * 96; // one-and-a-half lines per slice
        let rep = run_spmd(&cfg(p), move |c| -> RmaResult<Vec<u8>> {
            let mut alloc = MpbAllocator::new();
            let mut g = OnesidedGroup::with_defaults(&mut alloc, p).unwrap();
            let send = MemRange::new(0, len);
            let recv = MemRange::new(8192, len);
            let me = c.core().index() as u8;
            // Slice j carries the pair (me, j) pattern.
            for j in 0..p {
                let s = slice_range(send, p, j);
                let fill: Vec<u8> =
                    (0..s.len).map(|i| me * 16 + j as u8 + (i as u8 & 0xC0)).collect();
                c.mem_write(s.offset, &fill)?;
            }
            g.alltoall(c, send, recv)?;
            c.mem_to_vec(recv)
        })
        .unwrap();
        let recv = MemRange::new(8192, len);
        for (i, res) in rep.results.iter().enumerate() {
            let got = res.as_ref().unwrap();
            for j in 0..p {
                // recv slice j at core i must be (from=j, to=i).
                let s = slice_range(MemRange::new(0, len), p, j);
                for b in 0..s.len {
                    let expect = (j as u8) * 16 + i as u8 + (b as u8 & 0xC0);
                    assert_eq!(got[s.offset + b], expect, "core {i} recv slice {j} byte {b}");
                }
            }
        }
        let _ = recv;
    }

    #[test]
    fn alltoall_large_slices_and_odd_p() {
        let p = 5;
        let len = p * 3 * 96 * 32; // 3 chunks per slice
        let rep = run_spmd(&cfg(p), move |c| -> RmaResult<bool> {
            let mut alloc = MpbAllocator::new();
            let mut g = OnesidedGroup::with_defaults(&mut alloc, p).unwrap();
            let send = MemRange::new(0, len);
            let recv = MemRange::new((len + 64).next_multiple_of(32), len);
            let me = c.core().index() as u8;
            for j in 0..p {
                let s = slice_range(send, p, j);
                let fill: Vec<u8> =
                    (0..s.len).map(|i| (i as u8).wrapping_mul(7) ^ (me * 13 + j as u8)).collect();
                c.mem_write(s.offset, &fill)?;
            }
            g.alltoall(c, send, recv)?;
            let mut ok = true;
            for j in 0..p {
                let s = slice_range(MemRange::new(0, len), p, j);
                let mut buf = vec![0u8; s.len];
                c.mem_read(recv.offset + s.offset, &mut buf)?;
                for (i, &b) in buf.iter().enumerate() {
                    ok &= b == (i as u8).wrapping_mul(7) ^ (j as u8 * 13 + me);
                }
            }
            Ok(ok)
        })
        .unwrap();
        assert!(rep.results.into_iter().all(|r| r.unwrap()));
    }

    #[test]
    fn repeated_collectives_share_the_context() {
        let p = 4;
        let rep = run_spmd(&cfg(p), move |c| -> RmaResult<bool> {
            let mut alloc = MpbAllocator::new();
            let mut g = OnesidedGroup::with_defaults(&mut alloc, p).unwrap();
            let len = 2000;
            let r = MemRange::new(0, len);
            let mut ok = true;
            for round in 0..3u8 {
                let msg: Vec<u8> = (0..len).map(|i| (i as u8) ^ round).collect();
                if c.core().index() == round as usize % p {
                    c.mem_write(0, &msg)?;
                }
                g.scatter(c, CoreId(round % p as u8), r)?;
                g.gather(c, CoreId(round % p as u8), r)?;
                if c.core().index() == round as usize % p {
                    ok &= c.mem_to_vec(r)? == msg;
                }
            }
            Ok(ok)
        })
        .unwrap();
        assert!(rep.results.into_iter().all(|r| r.unwrap()));
    }
}
