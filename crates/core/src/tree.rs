//! Tree structures of the broadcast algorithms.
//!
//! * [`KaryTree`] — the message-propagation tree of OC-Bcast
//!   (Section 4.1): ranks form a k-ary heap rooted at the broadcast
//!   source; children of core `i` are the cores `(s + ik + 1) mod P`
//!   through `(s + (i+1)k) mod P`.
//! * [`NotifyGroup`] — the binary notification tree *within* a parent's
//!   group of children (Figure 5): the parent sits at heap position 0,
//!   its k children at positions 1..=k, and each member forwards the
//!   notification to positions `2j+1` and `2j+2`.
//! * [`binomial_parent`] / [`binomial_children`] — the recursive-halving
//!   binomial tree used by the RCCE_comm baseline (Section 5.2.2).

use scc_hal::CoreId;

/// The k-ary message propagation tree for `p` cores rooted at `root`.
///
/// ```
/// use oc_bcast::KaryTree;
/// use scc_hal::CoreId;
/// // The paper's Figure 5: P = 12, k = 7, source core 0.
/// let tree = KaryTree::new(12, 7, CoreId(0));
/// assert_eq!(tree.children(CoreId(0)).len(), 7);
/// assert_eq!(tree.children(CoreId(1)), (8..=11).map(CoreId).collect::<Vec<_>>());
/// assert_eq!(tree.parent(CoreId(9)), Some(CoreId(1)));
/// assert_eq!(tree.depth(), 2);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KaryTree {
    p: usize,
    k: usize,
    root: CoreId,
}

impl KaryTree {
    pub fn new(p: usize, k: usize, root: CoreId) -> KaryTree {
        assert!(p >= 1, "tree needs at least one core");
        assert!(k >= 1, "tree degree must be at least 1");
        assert!(root.index() < p, "root {root} outside the {p}-core run");
        KaryTree { p, k, root }
    }

    pub fn degree(&self) -> usize {
        self.k
    }

    pub fn num_cores(&self) -> usize {
        self.p
    }

    pub fn root(&self) -> CoreId {
        self.root
    }

    /// Rank of a core: its BFS position in the tree (root has rank 0).
    pub fn rank_of(&self, core: CoreId) -> usize {
        assert!(core.index() < self.p);
        (core.index() + self.p - self.root.index()) % self.p
    }

    /// Core holding a given rank.
    pub fn core_of(&self, rank: usize) -> CoreId {
        assert!(rank < self.p, "rank {rank} outside the {}-core run", self.p);
        CoreId(((self.root.index() + rank) % self.p) as u8)
    }

    /// The parent of `core`, or `None` for the root.
    pub fn parent(&self, core: CoreId) -> Option<CoreId> {
        let r = self.rank_of(core);
        if r == 0 {
            None
        } else {
            Some(self.core_of((r - 1) / self.k))
        }
    }

    /// The children of `core`, in rank order (at most `k`).
    pub fn children(&self, core: CoreId) -> Vec<CoreId> {
        let r = self.rank_of(core);
        let first = r * self.k + 1;
        (first..first + self.k).take_while(|&c| c < self.p).map(|c| self.core_of(c)).collect()
    }

    /// The position of `core` among its parent's children (0-based);
    /// `None` for the root. This indexes the child's `done` flag slot
    /// in the parent's MPB.
    pub fn child_index(&self, core: CoreId) -> Option<usize> {
        let r = self.rank_of(core);
        if r == 0 {
            None
        } else {
            Some((r - 1) % self.k)
        }
    }

    /// Levels below the root (`O(log_k P)` in the paper's formulas).
    pub fn depth(&self) -> usize {
        if self.p <= 1 {
            return 0;
        }
        let mut covered = 1usize;
        let mut width = 1usize;
        let mut depth = 0usize;
        while covered < self.p {
            width = width.saturating_mul(self.k);
            covered = covered.saturating_add(width);
            depth += 1;
        }
        depth
    }

    /// Depth of one core (root is 0).
    pub fn depth_of(&self, core: CoreId) -> usize {
        let mut d = 0;
        let mut c = core;
        while let Some(p) = self.parent(c) {
            c = p;
            d += 1;
        }
        d
    }
}

/// The notification group of one parent: the parent plus its (at most
/// k) propagation children, arranged as an f-ary heap for notification
/// forwarding. The paper uses `f = 2` ("binary notification tree"); the
/// fan-out is kept configurable for the ablation benches (`f >= k`
/// degenerates to the parent notifying every child itself).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NotifyGroup {
    /// `members[0]` is the parent; `members[1..]` the children in rank
    /// order.
    members: Vec<CoreId>,
    fanout: usize,
}

impl NotifyGroup {
    /// Build the group for `parent` in `tree`. Returns `None` if the
    /// parent has no children (no notifications to send).
    pub fn of_parent(tree: &KaryTree, parent: CoreId, fanout: usize) -> Option<NotifyGroup> {
        Self::new(parent, &tree.children(parent), fanout)
    }

    /// Build the group from an explicit child list (any tree layout).
    pub fn new(parent: CoreId, children: &[CoreId], fanout: usize) -> Option<NotifyGroup> {
        assert!(fanout >= 1);
        if children.is_empty() {
            return None;
        }
        let mut members = Vec::with_capacity(children.len() + 1);
        members.push(parent);
        members.extend_from_slice(children);
        Some(NotifyGroup { members, fanout })
    }

    /// Heap position of `core` within the group (parent = 0).
    pub fn position(&self, core: CoreId) -> Option<usize> {
        self.members.iter().position(|&m| m == core)
    }

    /// The cores `core` must forward the notification to, in order.
    pub fn forwards(&self, core: CoreId) -> Vec<CoreId> {
        let Some(pos) = self.position(core) else {
            return Vec::new();
        };
        let first = pos * self.fanout + 1;
        (first..first + self.fanout)
            .take_while(|&i| i < self.members.len())
            .map(|i| self.members[i])
            .collect()
    }

    pub fn members(&self) -> &[CoreId] {
        &self.members
    }
}

/// Parent of relative rank `rr` (> 0) in the binomial broadcast tree of
/// `p` nodes: clear the lowest set bit.
pub fn binomial_parent(rr: usize, p: usize) -> usize {
    assert!(rr > 0 && rr < p, "relative rank {rr} has no parent (p = {p})");
    rr & (rr - 1)
}

/// Children of relative rank `rr` in the binomial tree of `p` nodes, in
/// send order (largest stride first, as MPICH sends them).
pub fn binomial_children(rr: usize, p: usize) -> Vec<usize> {
    assert!(rr < p);
    // The masks rr can send to are the powers of two above its lowest
    // set bit (or all of them for the root), descending from the
    // highest power of two below p.
    let mut mask = p.next_power_of_two();
    if mask > p {
        mask >>= 1;
    }
    let own_low = if rr == 0 { usize::MAX } else { rr & rr.wrapping_neg() };
    let mut out = Vec::new();
    while mask > 0 {
        if mask < own_low && rr + mask < p {
            out.push(rr + mask);
        }
        mask >>= 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure 5 of the paper: P = 12, k = 7, source core 0.
    #[test]
    fn figure5_propagation_tree() {
        let t = KaryTree::new(12, 7, CoreId(0));
        let c = |i: u8| CoreId(i);
        assert_eq!(t.children(c(0)), (1..=7).map(c).collect::<Vec<_>>());
        assert_eq!(t.children(c(1)), (8..=11).map(c).collect::<Vec<_>>());
        for i in 2..=11 {
            assert!(t.children(c(i)).is_empty(), "C{i} must be a leaf");
        }
        assert_eq!(t.parent(c(0)), None);
        for i in 1..=7 {
            assert_eq!(t.parent(c(i)), Some(c(0)));
        }
        for i in 8..=11 {
            assert_eq!(t.parent(c(i)), Some(c(1)));
        }
        assert_eq!(t.depth(), 2);
    }

    /// Figure 5's binary notification trees.
    #[test]
    fn figure5_notification_trees() {
        let t = KaryTree::new(12, 7, CoreId(0));
        let c = |i: u8| CoreId(i);
        let g0 = NotifyGroup::of_parent(&t, c(0), 2).unwrap();
        assert_eq!(g0.forwards(c(0)), vec![c(1), c(2)]);
        assert_eq!(g0.forwards(c(1)), vec![c(3), c(4)]);
        assert_eq!(g0.forwards(c(2)), vec![c(5), c(6)]);
        assert_eq!(g0.forwards(c(3)), vec![c(7)]);
        assert_eq!(g0.forwards(c(4)), Vec::<CoreId>::new());
        assert_eq!(g0.forwards(c(7)), Vec::<CoreId>::new());

        let g1 = NotifyGroup::of_parent(&t, c(1), 2).unwrap();
        assert_eq!(g1.forwards(c(1)), vec![c(8), c(9)]);
        assert_eq!(g1.forwards(c(8)), vec![c(10), c(11)]);
        assert_eq!(g1.forwards(c(9)), Vec::<CoreId>::new());

        // Leaves have no group of their own.
        assert!(NotifyGroup::of_parent(&t, c(5), 2).is_none());
    }

    #[test]
    fn rotated_root_keeps_shape() {
        // The tree with source s is the source-0 tree with all ids
        // shifted by s modulo P.
        let s = 5u8;
        let t0 = KaryTree::new(12, 7, CoreId(0));
        let ts = KaryTree::new(12, 7, CoreId(s));
        for r in 0..12usize {
            let c0 = t0.core_of(r);
            let cs = ts.core_of(r);
            assert_eq!((c0.index() + s as usize) % 12, cs.index());
            let ch0: Vec<_> =
                t0.children(c0).iter().map(|c| (c.index() + s as usize) % 12).collect();
            let chs: Vec<_> = ts.children(cs).iter().map(|c| c.index()).collect();
            assert_eq!(ch0, chs);
        }
    }

    #[test]
    fn every_core_appears_exactly_once() {
        for p in [1usize, 2, 3, 7, 12, 48] {
            for k in [1usize, 2, 3, 7, 24, 47] {
                for root in [0u8, 1, (p - 1) as u8] {
                    if root as usize >= p {
                        continue;
                    }
                    let t = KaryTree::new(p, k, CoreId(root));
                    let mut seen = vec![0u32; p];
                    seen[root as usize] += 1;
                    for c in (0..p).map(|i| CoreId(i as u8)) {
                        for ch in t.children(c) {
                            seen[ch.index()] += 1;
                        }
                    }
                    assert!(
                        seen.iter().all(|&s| s == 1),
                        "p={p} k={k} root={root}: coverage {seen:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn parent_child_consistency() {
        let t = KaryTree::new(48, 7, CoreId(13));
        for i in 0..48u8 {
            let c = CoreId(i);
            for (idx, ch) in t.children(c).into_iter().enumerate() {
                assert_eq!(t.parent(ch), Some(c));
                assert_eq!(t.child_index(ch), Some(idx));
            }
            if let Some(p) = t.parent(c) {
                assert!(t.children(p).contains(&c));
                assert_eq!(t.depth_of(c), t.depth_of(p) + 1);
            }
        }
        assert_eq!(t.depth(), 2);
        assert_eq!(t.depth_of(CoreId(13)), 0);
    }

    #[test]
    fn k47_star_and_k1_chain() {
        let star = KaryTree::new(48, 47, CoreId(0));
        assert_eq!(star.children(CoreId(0)).len(), 47);
        assert_eq!(star.depth(), 1);

        let chain = KaryTree::new(5, 1, CoreId(0));
        assert_eq!(chain.depth(), 4);
        assert_eq!(chain.children(CoreId(2)), vec![CoreId(3)]);
    }

    #[test]
    fn sequential_fanout_degenerates_to_parent_does_all() {
        let t = KaryTree::new(48, 7, CoreId(0));
        let g = NotifyGroup::of_parent(&t, CoreId(0), 64).unwrap();
        assert_eq!(g.forwards(CoreId(0)).len(), 7);
        assert!(g.forwards(CoreId(1)).is_empty());
    }

    #[test]
    fn binomial_tree_structure() {
        // p = 8: root 0 sends to 4, 2, 1; node 4 to 6, 5; node 2 to 3;
        // node 6 to 7.
        assert_eq!(binomial_children(0, 8), vec![4, 2, 1]);
        assert_eq!(binomial_children(4, 8), vec![6, 5]);
        assert_eq!(binomial_children(2, 8), vec![3]);
        assert_eq!(binomial_children(6, 8), vec![7]);
        assert_eq!(binomial_children(1, 8), Vec::<usize>::new());
        for rr in 1..8 {
            let p = binomial_parent(rr, 8);
            assert!(binomial_children(p, 8).contains(&rr), "rr={rr} parent={p}");
        }
    }

    #[test]
    fn binomial_tree_covers_non_power_of_two() {
        for p in [2usize, 3, 5, 12, 48] {
            let mut seen = vec![0u32; p];
            seen[0] += 1;
            for rr in 0..p {
                for ch in binomial_children(rr, p) {
                    assert!(ch < p);
                    seen[ch] += 1;
                }
            }
            assert!(seen.iter().all(|&s| s == 1), "p={p}: {seen:?}");
        }
    }

    #[test]
    fn binomial_depth_is_logarithmic() {
        // Longest root-to-leaf path: exactly log₂ p for powers of two
        // (the classic binomial tree), never more than ⌈log₂ p⌉.
        for p in [2usize, 3, 8, 12, 48, 64] {
            let depth_of = |mut rr: usize| {
                let mut d = 0;
                while rr != 0 {
                    rr = binomial_parent(rr, p);
                    d += 1;
                }
                d
            };
            let max_depth = (0..p).map(depth_of).max().unwrap();
            let ceil_log = (p as f64).log2().ceil() as usize;
            assert!(max_depth <= ceil_log, "p={p}: depth {max_depth} > {ceil_log}");
            if p.is_power_of_two() {
                assert_eq!(max_depth, ceil_log, "p={p}");
            }
        }
    }
}
