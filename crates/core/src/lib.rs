//! # oc-bcast — High-Performance RMA-Based Broadcast on the Intel SCC
//!
//! Reproduction of the SPAA 2012 paper by Petrović, Shahmirzadi, Ropars
//! and Schiper: **OC-Bcast**, a pipelined k-ary-tree broadcast that
//! drives the SCC's on-chip Message Passing Buffers directly with
//! one-sided `put`/`get`, plus the two RCCE_comm baselines it is
//! evaluated against.
//!
//! * [`tree`] — the k-ary propagation tree, the binary notification
//!   trees (Figure 5) and the binomial tree of the baseline;
//! * [`ocbcast`] — OC-Bcast itself: notification machinery, chunking,
//!   double buffering (Section 4);
//! * [`binomial`] / [`scatter_allgather`] — the baselines over
//!   two-sided send/receive (Section 5);
//! * [`rma_sag`] — the Section 5.4 alternative: scatter-allgather
//!   re-expressed over one-sided RMA (extension);
//! * [`alltoall`] — one-sided personalized scatter/gather/all-to-all
//!   (extension);
//! * [`topo`] — tree layouts incl. a topology-aware builder (extension);
//! * [`bcast`] — a unified front-end used by benches and examples;
//! * [`collectives`] — the paper's future-work extensions built from
//!   the same RMA machinery: reduce and allgather (Section 7).
//!
//! Everything is written against [`scc_hal::Rma`], so it runs both on
//! the deterministic SCC simulator (`scc-sim`) and on real threads
//! (`scc-rt`).
//!
//! ## Quickstart
//!
//! ```
//! use oc_bcast::{Algorithm, Broadcaster};
//! use scc_hal::{CoreId, MemRange, Rma, RmaExt, RmaResult};
//! use scc_rcce::MpbAllocator;
//! use scc_sim::{run_spmd, SimConfig};
//!
//! let cfg = SimConfig { num_cores: 12, mem_bytes: 1 << 16, ..SimConfig::default() };
//! let report = run_spmd(&cfg, |core| -> RmaResult<Vec<u8>> {
//!     let mut alloc = MpbAllocator::new();
//!     let mut bcast = Broadcaster::new(&mut alloc, Algorithm::oc_default(), 12).unwrap();
//!     let msg = MemRange::new(0, 13);
//!     if core.core() == CoreId(0) {
//!         core.mem_write(0, b"on-chip hello")?;
//!     }
//!     bcast.bcast(core, CoreId(0), msg)?;
//!     core.mem_to_vec(msg)
//! })
//! .unwrap();
//! for r in report.results {
//!     assert_eq!(r.unwrap(), b"on-chip hello");
//! }
//! ```

pub mod alltoall;
pub mod bcast;
pub mod binomial;
pub mod collectives;
pub mod ocbcast;
pub mod reliable;
pub mod rma_sag;
pub mod scatter_allgather;
pub mod topo;
pub mod tree;

pub use alltoall::OnesidedGroup;
pub use bcast::{Algorithm, Broadcaster};
pub use binomial::binomial_bcast;
pub use collectives::{oc_allgather, oc_allreduce, OcReduce, ReduceOp};
pub use ocbcast::{OcBcast, OcConfig};
pub use reliable::{RelStats, Reliability, ReliableBinomial};
pub use rma_sag::RmaSag;
pub use scatter_allgather::scatter_allgather_bcast;
pub use topo::{TreeLayout, TreeStrategy};
pub use tree::{binomial_children, binomial_parent, KaryTree, NotifyGroup};
