//! Tree layouts, including a topology-aware variant.
//!
//! The paper builds its k-ary tree from core ids and notes that
//! "finding an efficient k-ary tree taking into account the topology of
//! the NoC is a complex problem \[4\] and it is orthogonal to the design
//! of OC-Bcast". This module supplies that orthogonal piece as an
//! extension: [`TreeLayout::topology_aware`] lays the tree over the
//! mesh so children `get` from nearby MPBs (lower `d` in the model's
//! `C^mpb_r(d)` per-line cost), cutting aggregate child↔parent mesh
//! distance by ~40% on the full chip. The tree-building section of the
//! `ablation` bench binary quantifies the latency effect.

use crate::tree::KaryTree;
use scc_hal::CoreId;

/// Which propagation tree OC-Bcast builds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum TreeStrategy {
    /// The paper's id-based k-ary heap (Section 4.1).
    #[default]
    ById,
    /// Level-wise k-center hub selection plus minimum-distance
    /// matching (see [`TreeLayout::topology_aware`]).
    TopologyAware,
}

/// A fully materialized propagation tree (any shape, max degree `k`).
///
/// Computed identically on every core from `(P, k, root, strategy)` —
/// a pure function, so the symmetric-SPMD convention holds just as for
/// MPB allocation.
///
/// ```
/// use oc_bcast::{TreeLayout, TreeStrategy};
/// use scc_hal::CoreId;
/// let by_id = TreeLayout::build(TreeStrategy::ById, 48, 7, CoreId(0));
/// let topo = TreeLayout::build(TreeStrategy::TopologyAware, 48, 7, CoreId(0));
/// assert_eq!(by_id.depth(), topo.depth());
/// // The topology-aware layout cuts aggregate mesh distance ~40%.
/// assert!(topo.total_parent_distance() < by_id.total_parent_distance());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TreeLayout {
    root: CoreId,
    parent: Vec<Option<CoreId>>,
    children: Vec<Vec<CoreId>>,
    child_index: Vec<Option<usize>>,
}

impl TreeLayout {
    /// Materialize the paper's id-based k-ary tree.
    pub fn from_kary(p: usize, k: usize, root: CoreId) -> TreeLayout {
        let tree = KaryTree::new(p, k, root);
        let mut layout = TreeLayout::empty(p, root);
        for c in (0..p).map(|i| CoreId(i as u8)) {
            layout.parent[c.index()] = tree.parent(c);
            layout.children[c.index()] = tree.children(c);
            layout.child_index[c.index()] = tree.child_index(c);
        }
        layout
    }

    /// Topology-aware construction, level by level:
    ///
    /// * if the next level does **not** exhaust the remaining cores,
    ///   its members are chosen by farthest-point traversal ("k-center"
    ///   seeding) so the level's cores act as well-spread hubs for the
    ///   levels below (a purely nearest-first choice clusters the hubs
    ///   around the root and makes the *next* level expensive — the
    ///   classic greedy myopia);
    /// * the chosen members are then attached to the previous level's
    ///   parents by greedy minimum-distance matching under the
    ///   degree-`k` capacity.
    ///
    /// The level-by-level fill keeps the depth equal to the id-based
    /// tree's; the heuristic cuts the total child↔parent mesh distance
    /// by ~40% on the 48-core chip (see `treebuild` in the ablation
    /// bench). Deterministic: all ties break on core id.
    pub fn topology_aware(p: usize, k: usize, root: CoreId) -> TreeLayout {
        assert!(p >= 1 && k >= 1 && root.index() < p);
        let mut layout = TreeLayout::empty(p, root);
        let mut unassigned: Vec<CoreId> =
            (0..p).map(|i| CoreId(i as u8)).filter(|&c| c != root).collect();
        let mut frontier = vec![root];
        while !unassigned.is_empty() {
            let need = unassigned.len().min(k * frontier.len());
            // Hub spreading applies to the root's own children only:
            // they become the regional anchors every deeper level
            // attaches to by plain nearest matching (spreading deeper
            // levels too was measured to *increase* the total).
            let pool: Vec<CoreId> = if frontier.len() == 1 && unassigned.len() > need {
                // Deeper levels follow: pick spread-out hubs.
                let mut cands = unassigned.clone();
                let seed = *cands
                    .iter()
                    .min_by_key(|&&c| (frontier[0].mpb_distance(c), c.index()))
                    .expect("cands nonempty");
                let mut hubs = vec![seed];
                cands.retain(|&c| c != seed);
                while hubs.len() < need {
                    let best = *cands
                        .iter()
                        .max_by_key(|&&c| {
                            let d = hubs
                                .iter()
                                .chain(frontier.iter())
                                .map(|&h| h.mpb_distance(c))
                                .min()
                                .expect("hubs nonempty");
                            (d, std::cmp::Reverse(c.index()))
                        })
                        .expect("cands nonempty");
                    hubs.push(best);
                    cands.retain(|&c| c != best);
                }
                hubs
            } else {
                unassigned.clone()
            };

            // Greedy minimum-distance matching of pool members to
            // frontier parents with capacity k.
            let mut pairs: Vec<(u32, CoreId, CoreId)> = frontier
                .iter()
                .flat_map(|&par| pool.iter().map(move |&c| (par.mpb_distance(c), par, c)))
                .collect();
            pairs.sort_by_key(|&(d, par, c)| (d, par.index(), c.index()));
            let mut capacity: Vec<usize> = vec![k; p];
            let mut taken = vec![false; p];
            let mut assigned: Vec<(CoreId, CoreId)> = Vec::with_capacity(need);
            for (_, par, c) in pairs {
                if assigned.len() == need {
                    break;
                }
                if capacity[par.index()] > 0 && !taken[c.index()] {
                    capacity[par.index()] -= 1;
                    taken[c.index()] = true;
                    assigned.push((par, c));
                }
            }
            // Record assignments in deterministic (child id) order.
            assigned.sort_by_key(|&(_, c)| c.index());
            for (par, c) in &assigned {
                let idx = layout.children[par.index()].len();
                layout.parent[c.index()] = Some(*par);
                layout.child_index[c.index()] = Some(idx);
                layout.children[par.index()].push(*c);
            }
            unassigned.retain(|c| !taken[c.index()]);
            frontier = assigned.iter().map(|&(_, c)| c).collect();
        }
        layout
    }

    /// Build per the chosen strategy.
    pub fn build(strategy: TreeStrategy, p: usize, k: usize, root: CoreId) -> TreeLayout {
        match strategy {
            TreeStrategy::ById => TreeLayout::from_kary(p, k, root),
            TreeStrategy::TopologyAware => TreeLayout::topology_aware(p, k, root),
        }
    }

    fn empty(p: usize, root: CoreId) -> TreeLayout {
        TreeLayout {
            root,
            parent: vec![None; p],
            children: vec![Vec::new(); p],
            child_index: vec![None; p],
        }
    }

    pub fn root(&self) -> CoreId {
        self.root
    }

    pub fn num_cores(&self) -> usize {
        self.parent.len()
    }

    pub fn parent(&self, c: CoreId) -> Option<CoreId> {
        self.parent[c.index()]
    }

    pub fn children(&self, c: CoreId) -> &[CoreId] {
        &self.children[c.index()]
    }

    /// Slot of `c` among its parent's children (its done-flag index).
    pub fn child_index(&self, c: CoreId) -> Option<usize> {
        self.child_index[c.index()]
    }

    pub fn depth_of(&self, c: CoreId) -> usize {
        let mut d = 0;
        let mut cur = c;
        while let Some(p) = self.parent(cur) {
            cur = p;
            d += 1;
        }
        d
    }

    pub fn depth(&self) -> usize {
        (0..self.num_cores()).map(|i| self.depth_of(CoreId(i as u8))).max().unwrap_or(0)
    }

    /// Sum over non-root cores of the mesh distance to their parent —
    /// the quantity the topology-aware builder minimizes greedily.
    pub fn total_parent_distance(&self) -> u32 {
        (0..self.num_cores())
            .filter_map(|i| {
                let c = CoreId(i as u8);
                self.parent(c).map(|p| p.mpb_distance(c))
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scc_hal::NUM_CORES;

    fn check_well_formed(l: &TreeLayout, p: usize, k: usize) {
        let mut seen = vec![0u32; p];
        seen[l.root().index()] += 1;
        assert_eq!(l.parent(l.root()), None);
        for i in 0..p {
            let c = CoreId(i as u8);
            assert!(l.children(c).len() <= k, "degree bound violated at {c}");
            for (idx, &ch) in l.children(c).iter().enumerate() {
                seen[ch.index()] += 1;
                assert_eq!(l.parent(ch), Some(c));
                assert_eq!(l.child_index(ch), Some(idx));
            }
        }
        assert!(seen.iter().all(|&s| s == 1), "coverage: {seen:?}");
    }

    #[test]
    fn both_strategies_are_well_formed() {
        for p in [1usize, 2, 5, 12, 48] {
            for k in [1usize, 2, 7, 47] {
                for root in [0usize, p - 1] {
                    for s in [TreeStrategy::ById, TreeStrategy::TopologyAware] {
                        let l = TreeLayout::build(s, p, k, CoreId(root as u8));
                        check_well_formed(&l, p, k);
                    }
                }
            }
        }
    }

    #[test]
    fn kary_layout_matches_kary_tree() {
        let l = TreeLayout::from_kary(12, 7, CoreId(0));
        assert_eq!(l.children(CoreId(0)), (1..=7).map(CoreId).collect::<Vec<_>>().as_slice());
        assert_eq!(l.children(CoreId(1)), (8..=11).map(CoreId).collect::<Vec<_>>().as_slice());
        assert_eq!(l.depth(), 2);
    }

    #[test]
    fn topology_aware_reduces_parent_distance() {
        for k in [2usize, 7, 24] {
            let by_id = TreeLayout::from_kary(NUM_CORES, k, CoreId(0));
            let topo = TreeLayout::topology_aware(NUM_CORES, k, CoreId(0));
            // ~40% aggregate mesh-distance reduction on the full chip.
            assert!(
                (topo.total_parent_distance() as f64) < 0.8 * by_id.total_parent_distance() as f64,
                "k={k}: topo {} vs id {}",
                topo.total_parent_distance(),
                by_id.total_parent_distance()
            );
        }
        // The star cannot be improved: the root must reach everyone.
        let by_id = TreeLayout::from_kary(NUM_CORES, 47, CoreId(0));
        let topo = TreeLayout::topology_aware(NUM_CORES, 47, CoreId(0));
        assert_eq!(topo.total_parent_distance(), by_id.total_parent_distance());
    }

    #[test]
    fn topology_aware_keeps_logarithmic_depth() {
        // Greedy BFS fills each level completely before descending, so
        // the depth matches the id tree's.
        for k in [2usize, 7, 47] {
            let topo = TreeLayout::topology_aware(48, k, CoreId(0));
            let by_id = TreeLayout::from_kary(48, k, CoreId(0));
            assert_eq!(topo.depth(), by_id.depth(), "k={k}");
        }
    }

    #[test]
    fn root_keeps_its_tile_mate_as_a_child() {
        // The k-center seeding starts from the core nearest the root —
        // its tile mate (distance 1) — so that cheap hop is never lost.
        let topo = TreeLayout::topology_aware(48, 7, CoreId(0));
        assert!(topo.children(CoreId(0)).contains(&CoreId(1)));
        let topo5 = TreeLayout::topology_aware(48, 7, CoreId(5));
        assert!(topo5.children(CoreId(5)).contains(&CoreId(4)));
    }

    #[test]
    fn deterministic_across_calls() {
        let a = TreeLayout::topology_aware(48, 7, CoreId(13));
        let b = TreeLayout::topology_aware(48, 7, CoreId(13));
        assert_eq!(a, b);
    }
}
