//! Reliability layer: timeout + bounded-backoff retry and ack-verified
//! delivery for the collectives, tolerating the fault classes the
//! simulator can inject (`scc_sim::FaultPlan`): lost doorbell
//! notifications, delayed line transfers and slowed cores.
//!
//! # The recovery principle: local mirrors + remote probes
//!
//! The simulator's fault model (mirroring what can actually go wrong
//! on the SCC's doorbell-free MPB protocol) only ever *drops* remote
//! flag puts — payload transfers and local flag writes always land,
//! at worst late. The reliable protocols exploit this asymmetry:
//! every remote flag put that matters is mirrored by a **local**
//! progress publish into the writer's own MPB (which cannot be lost),
//! and every wait on a remote-writable flag carries a deadline. When
//! the deadline fires, the waiter **probes** the peer's progress
//! mirror with a one-line `get` (gets are never dropped): if the
//! mirror shows the awaited event already happened, only the
//! notification was lost and the waiter proceeds as if it had
//! arrived; otherwise the peer is merely slow, and the waiter backs
//! off exponentially and re-waits. Because both ends of every
//! handshake recover independently this way, a dropped flag in either
//! direction stalls neither side for longer than a few probe rounds.
//!
//! Everything is policy-gated by [`Reliability`]: with the default
//! (disabled) policy the reliable entry points delegate to the plain
//! protocols, keeping the failure-free fast path byte-identical.

use crate::tree::{binomial_children, binomial_parent};
use scc_hal::{
    bytes_to_lines, delivering, spanned, tagged, CoreId, FlagValue, MemRange, MpbAddr, MsgId,
    Phase, Rma, RmaError, RmaResult, Span, Time, CACHE_LINE_BYTES,
};
use scc_rcce::{MpbAllocator, MpbExhausted, MpbRegion};

/// Retry policy for the reliable collectives.
///
/// The default is **disabled**: reliable entry points behave exactly
/// like their plain counterparts (same ops in the same order), so
/// existing results stay byte-identical. [`Reliability::standard`]
/// enables recovery with parameters that sit well above the longest
/// legitimate wait of the shipped experiments, so failure-free runs
/// rarely probe spuriously (a spurious probe is harmless — it only
/// costs a one-line get).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Reliability {
    /// Master switch; `false` delegates to the plain protocols.
    pub enabled: bool,
    /// Patience of the first wait on any flag; later attempts multiply
    /// it by `backoff`.
    pub timeout: Time,
    /// Recovery attempts per wait before giving up with
    /// [`RmaError::Timeout`]. Total patience is roughly
    /// `timeout * (backoff^(max_retries+1) - 1)`.
    pub max_retries: u32,
    /// Patience multiplier per attempt (values `< 2` are clamped to
    /// keep total patience finite but growing).
    pub backoff: u32,
}

impl Default for Reliability {
    fn default() -> Self {
        Reliability {
            enabled: false,
            timeout: Time::from_us_f64(150.0),
            max_retries: 12,
            backoff: 2,
        }
    }
}

impl Reliability {
    /// The enabled policy used by the `faults` experiment.
    pub fn standard() -> Reliability {
        Reliability { enabled: true, ..Reliability::default() }
    }
}

/// Counters of what the recovery machinery actually did; useful to
/// assert that fault runs exercised it and failure-free runs (mostly)
/// did not.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RelStats {
    /// Deadline expiries on flag waits.
    pub timeouts: u64,
    /// One-line gets of a peer's progress mirror.
    pub probes: u64,
    /// Waits satisfied by a probe instead of the awaited flag.
    pub recoveries: u64,
    /// Notifications re-sent to children presumed to have missed one.
    pub renotifies: u64,
}

impl RelStats {
    pub fn accumulate(&mut self, o: RelStats) {
        self.timeouts += o.timeouts;
        self.probes += o.probes;
        self.recoveries += o.recoveries;
        self.renotifies += o.renotifies;
    }
}

/// One-line get of `target`'s MPB line into our `scratch` line,
/// decoded as a flag value: how a waiter inspects a peer's locally
/// published progress mirror. Gets are delayed at worst, never
/// dropped, so probes always terminate.
pub(crate) fn probe_remote_flag<R: Rma>(
    c: &mut R,
    stats: &mut RelStats,
    target: CoreId,
    line: usize,
    scratch: usize,
) -> RmaResult<u32> {
    stats.probes += 1;
    c.get_to_mpb(MpbAddr::new(target, line), scratch, 1)?;
    Ok(c.flag_read_local(scratch)?.0)
}

/// Wait until our copy of `line` reaches `want`, with the policy's
/// deadline/retry schedule. On each expiry, `recover` may declare the
/// condition effectively met (it probed a peer's progress mirror and
/// found the awaited event already happened — only the flag was
/// lost); otherwise the wait repeats with multiplied patience. With a
/// disabled policy this is exactly a plain `flag_wait_local`.
pub(crate) fn wait_ge_or_recover<R, F>(
    c: &mut R,
    policy: &Reliability,
    stats: &mut RelStats,
    line: usize,
    want: u32,
    mut recover: F,
) -> RmaResult<u32>
where
    R: Rma,
    F: FnMut(&mut R, &mut RelStats) -> RmaResult<bool>,
{
    if !policy.enabled {
        return Ok(c.flag_wait_local(line, &mut |v| v.0 >= want)?.0);
    }
    let mut patience = policy.timeout;
    for _ in 0..=policy.max_retries {
        let deadline = c.now() + patience;
        match c.flag_wait_local_until(line, &mut |v| v.0 >= want, deadline) {
            Ok(v) => return Ok(v.0),
            Err(RmaError::Timeout { .. }) => {
                stats.timeouts += 1;
                if recover(c, stats)? {
                    stats.recoveries += 1;
                    return Ok(want);
                }
                patience = patience * u64::from(policy.backoff.max(2));
            }
            Err(e) => return Err(e),
        }
    }
    Err(RmaError::Timeout { core: c.core(), line, deadline: c.now() })
}

/// Largest child count any core can have in a `p`-core binomial tree
/// (`⌈log2 p⌉`, the root's).
fn max_binomial_children(p: usize) -> usize {
    if p <= 1 {
        return 1; // allocator wants at least one line
    }
    (usize::BITS - (p - 1).leading_zeros()) as usize
}

fn enc(epoch: u32, x: u32) -> u32 {
    (epoch << 16) | x
}

/// Reliable binomial-tree broadcast context with ack-verified
/// delivery.
///
/// Unlike the [`crate::binomial_bcast`] baseline (which layers on the
/// generic RCCE send/receive), this context owns a purpose-built MPB
/// layout so every handshake flag has a loss-recovery path:
///
/// * `sent` — one line, written by the core's tree parent with
///   `enc(epoch, chunk+1)` after storing the chunk in our payload
///   buffer;
/// * `ready` — one line per child slot (`⌈log2 p⌉` of them, the
///   per-peer-line idea of [`scc_rcce::RcceComm`] at binomial-tree
///   cost instead of `p` lines), written by child `j` with
///   `enc(epoch, chunk+1)`; the value `enc(epoch, n_chunks+1)` — a
///   ready for a chunk that will never come — doubles as the **ack**
///   that the child consumed the whole message;
/// * `ready_prog` — local mirror of our own ready/ack puts, probed by
///   our parent;
/// * `send_prog` — local mirror of our sent puts across all children,
///   encoded with a global transfer counter
///   `enc(epoch, j·n_chunks + chunk + 1)` (our send schedule is
///   sequential in `(j, chunk)`, so one monotone line suffices and any
///   child can compute the value its transfer implies), probed by a
///   child whose sent flag was lost — the payload put always precedes
///   the sent put, so a probe at or past the transfer's counter
///   guarantees the data is already in the child's buffer;
/// * `scratch` — landing line for probes;
/// * `payload` — everything else.
///
/// All flag values are monotone per line across invocations (the
/// epoch in the high 16 bits advances identically on every core), so
/// back-to-back broadcasts need no flag resets.
#[derive(Clone, Debug)]
pub struct ReliableBinomial {
    policy: Reliability,
    sent: MpbRegion,
    ready: MpbRegion,
    ready_prog: MpbRegion,
    send_prog: MpbRegion,
    scratch: MpbRegion,
    payload: MpbRegion,
    epoch: u32,
    stats: RelStats,
    num_cores: usize,
}

impl ReliableBinomial {
    /// Reserve the context's MPB lines (identically on every core);
    /// grabs all remaining lines for the payload.
    pub fn new(
        alloc: &mut MpbAllocator,
        num_cores: usize,
        policy: Reliability,
    ) -> Result<ReliableBinomial, MpbExhausted> {
        let sent = alloc.alloc(1)?;
        let ready = alloc.alloc(max_binomial_children(num_cores))?;
        let ready_prog = alloc.alloc(1)?;
        let send_prog = alloc.alloc(1)?;
        let scratch = alloc.alloc(1)?;
        let payload = alloc.alloc(alloc.lines_free().max(1))?;
        Ok(ReliableBinomial {
            policy,
            sent,
            ready,
            ready_prog,
            send_prog,
            scratch,
            payload,
            epoch: 0,
            stats: RelStats::default(),
            num_cores,
        })
    }

    /// Release the context's lines.
    pub fn release(self, alloc: &mut MpbAllocator) {
        alloc.free(self.sent);
        alloc.free(self.ready);
        alloc.free(self.ready_prog);
        alloc.free(self.send_prog);
        alloc.free(self.scratch);
        alloc.free(self.payload);
    }

    /// What the recovery machinery did so far on this core.
    pub fn stats(&self) -> RelStats {
        self.stats
    }

    /// Payload lines per handshake chunk.
    pub fn chunk_lines(&self) -> usize {
        self.payload.lines
    }

    /// Collective reliable broadcast; all cores must call with
    /// identical `root` and `msg`. Returns only once every child of
    /// this core has acknowledged consuming the final chunk, so a
    /// clean collective return implies verified delivery to all
    /// destinations.
    pub fn bcast<R: Rma>(&mut self, c: &mut R, root: CoreId, msg: MemRange) -> RmaResult<()> {
        let p = c.num_cores();
        assert_eq!(p, self.num_cores, "context built for {} cores", self.num_cores);
        if p <= 1 {
            return Ok(());
        }
        let me = c.core();
        let rr = (me.index() + p - root.index()) % p;
        let abs = |rel: usize| CoreId(((root.index() + rel) % p) as u8);
        let chunk_bytes = self.payload.lines * CACHE_LINE_BYTES;
        let n_chunks = bytes_to_lines(msg.len).div_ceil(self.payload.lines).max(1);
        let e = self.epoch;
        self.epoch += 1;
        assert!(e < 1 << 16, "epoch counter exhausted");
        assert!(
            self.ready.lines * n_chunks + 1 < 1 << 16,
            "message too long for the 16-bit transfer counters"
        );

        let policy = self.policy;
        let mut stats = RelStats::default();
        let children = binomial_children(rr, p);

        let res = delivering(c, e, |c| {
            if rr != 0 {
                let par_rel = binomial_parent(rr, p);
                let par = abs(par_rel);
                let j = binomial_children(par_rel, p)
                    .iter()
                    .position(|&ch| ch == rr)
                    .expect("a non-root is one of its parent's children");
                spanned(c, Span::of(Phase::Dissemination), |c| {
                    tagged(c, MsgId::new(e, par, me, 0), |c| {
                        self.recv_from(
                            c,
                            par,
                            j,
                            msg,
                            n_chunks,
                            chunk_bytes,
                            e,
                            &policy,
                            &mut stats,
                        )
                    })
                })?;
            }
            for (j, child_rel) in children.iter().enumerate() {
                let dst = abs(*child_rel);
                spanned(c, Span::new(Phase::Round, j as u32), |c| {
                    tagged(c, MsgId::new(e, me, dst, 0), |c| {
                        self.send_to(
                            c,
                            dst,
                            j,
                            msg,
                            n_chunks,
                            chunk_bytes,
                            rr == 0,
                            e,
                            &policy,
                            &mut stats,
                        )
                    })
                })?;
            }
            // Ack-verified delivery: collect every child's final ack
            // (its "ready for chunk n_chunks+1"), probing its local
            // mirror if the ack flag itself was lost.
            if !children.is_empty() {
                let want = enc(e, n_chunks as u32 + 1);
                let rp_line = self.ready_prog.first_line;
                let scratch = self.scratch.first_line;
                spanned(c, Span::of(Phase::Ack), |c| {
                    for (j, child_rel) in children.iter().enumerate() {
                        let child = abs(*child_rel);
                        wait_ge_or_recover(
                            c,
                            &policy,
                            &mut stats,
                            self.ready.line(j),
                            want,
                            |c, stats| {
                                Ok(probe_remote_flag(c, stats, child, rp_line, scratch)? >= want)
                            },
                        )?;
                    }
                    Ok(())
                })?;
            }
            Ok(())
        });
        self.stats.accumulate(stats);
        res
    }

    #[allow(clippy::too_many_arguments)]
    fn recv_from<R: Rma>(
        &self,
        c: &mut R,
        par: CoreId,
        j: usize,
        msg: MemRange,
        n_chunks: usize,
        chunk_bytes: usize,
        e: u32,
        policy: &Reliability,
        stats: &mut RelStats,
    ) -> RmaResult<()> {
        let me = c.core();
        let sp_line = self.send_prog.first_line;
        let scratch = self.scratch.first_line;
        let mut off = 0usize;
        for ck in 0..n_chunks {
            let v = enc(e, ck as u32 + 1);
            // Pre-post readiness (remote, may be lost) and mirror it
            // locally (cannot be lost) for the parent's recovery probe.
            c.flag_put(MpbAddr::new(par, self.ready.line(j)), FlagValue(v))?;
            c.flag_put(MpbAddr::new(me, self.ready_prog.first_line), FlagValue(v))?;
            // If the sent flag is lost, the parent's send-progress
            // mirror at or past our transfer's counter proves the
            // payload already sits in our buffer.
            let want_prog = enc(e, (j * n_chunks + ck) as u32 + 1);
            wait_ge_or_recover(c, policy, stats, self.sent.first_line, v, |c, stats| {
                Ok(probe_remote_flag(c, stats, par, sp_line, scratch)? >= want_prog)
            })?;
            let len = (msg.len - off).min(chunk_bytes);
            if len > 0 {
                c.get_to_mem(MpbAddr::new(me, self.payload.first_line), msg.slice(off, len))?;
            }
            off += len;
        }
        // The ack: a ready for a chunk that will never come.
        let ack = enc(e, n_chunks as u32 + 1);
        c.flag_put(MpbAddr::new(par, self.ready.line(j)), FlagValue(ack))?;
        c.flag_put(MpbAddr::new(me, self.ready_prog.first_line), FlagValue(ack))?;
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn send_to<R: Rma>(
        &self,
        c: &mut R,
        dst: CoreId,
        j: usize,
        msg: MemRange,
        n_chunks: usize,
        chunk_bytes: usize,
        from_root: bool,
        e: u32,
        policy: &Reliability,
        stats: &mut RelStats,
    ) -> RmaResult<()> {
        let me = c.core();
        let rp_line = self.ready_prog.first_line;
        let scratch = self.scratch.first_line;
        let mut off = 0usize;
        for ck in 0..n_chunks {
            let v = enc(e, ck as u32 + 1);
            // If the child's ready flag is lost, its local mirror
            // proves it posted readiness; its buffer is free.
            wait_ge_or_recover(c, policy, stats, self.ready.line(j), v, |c, stats| {
                Ok(probe_remote_flag(c, stats, dst, rp_line, scratch)? >= v)
            })?;
            let len = (msg.len - off).min(chunk_bytes);
            if len > 0 {
                let part = msg.slice(off, len);
                let to = MpbAddr::new(dst, self.payload.first_line);
                if from_root {
                    c.put_from_mem(part, to)?;
                } else {
                    // Forwarding a just-received message: hot in L1.
                    c.put_from_mem_cached(part, to)?;
                }
            }
            c.flag_put(MpbAddr::new(dst, self.sent.first_line), FlagValue(v))?;
            let prog = enc(e, (j * n_chunks + ck) as u32 + 1);
            c.flag_put(MpbAddr::new(me, self.send_prog.first_line), FlagValue(prog))?;
            off += len;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scc_hal::RmaExt;
    use scc_sim::{run_spmd, FaultPlan, SimConfig};

    fn cfg(n: usize) -> SimConfig {
        SimConfig { num_cores: n, mem_bytes: 1 << 20, ..SimConfig::default() }
    }

    fn pattern(len: usize, seed: u8) -> Vec<u8> {
        (0..len).map(|i| (i as u8).wrapping_mul(73).wrapping_add(seed)).collect()
    }

    fn check(sim: &SimConfig, policy: Reliability, root: u8, len: usize) -> RelStats {
        let p = sim.num_cores;
        let msg = pattern(len, root);
        let expect = msg.clone();
        let rep = run_spmd(sim, move |c| -> RmaResult<(Vec<u8>, RelStats)> {
            let mut alloc = MpbAllocator::new();
            let mut bc = ReliableBinomial::new(&mut alloc, c.num_cores(), policy).unwrap();
            let r = MemRange::new(0, msg.len());
            if c.core() == CoreId(root) {
                c.mem_write(0, &msg)?;
            }
            bc.bcast(c, CoreId(root), r)?;
            Ok((c.mem_to_vec(r)?, bc.stats()))
        })
        .unwrap_or_else(|e| panic!("p={p} root={root} len={len}: {e}"));
        let mut total = RelStats::default();
        for (i, r) in rep.results.iter().enumerate() {
            let (got, stats) = r.as_ref().unwrap();
            assert_eq!(got, &expect, "core {i} (p={p}, root={root}, len={len})");
            total.accumulate(*stats);
        }
        total
    }

    #[test]
    fn failure_free_delivery() {
        check(&cfg(8), Reliability::standard(), 0, 1000);
        check(&cfg(48), Reliability::standard(), 0, 300 * 32);
        check(&cfg(12), Reliability::standard(), 7, 500);
        check(&cfg(2), Reliability::standard(), 1, 100);
    }

    #[test]
    fn disabled_policy_uses_plain_waits() {
        let stats = check(&cfg(16), Reliability::default(), 0, 2000);
        assert_eq!(stats, RelStats::default());
    }

    #[test]
    fn survives_lost_notifications() {
        let sim = SimConfig {
            faults: FaultPlan { drop_notification_ppm: 60_000, ..FaultPlan::default() },
            ..cfg(24)
        };
        let stats = check(&sim, Reliability::standard(), 0, 5 * 32 * 200);
        assert!(stats.recoveries > 0, "fault run must exercise recovery: {stats:?}");
    }

    #[test]
    fn survives_delays_and_slow_cores() {
        use scc_sim::SlowWindow;
        let sim = SimConfig {
            faults: FaultPlan {
                delay_ppm: 100_000,
                delay: Time::from_us_f64(40.0),
                slow: vec![SlowWindow {
                    core: CoreId(3),
                    from: Time::ZERO,
                    until: Time::from_us_f64(10_000.0),
                    extra: Time::from_us_f64(5.0),
                }],
                ..FaultPlan::default()
            },
            ..cfg(16)
        };
        check(&sim, Reliability::standard(), 0, 4000);
    }

    #[test]
    fn repeated_broadcasts_share_the_context() {
        let sim = SimConfig {
            faults: FaultPlan { drop_notification_ppm: 40_000, ..FaultPlan::default() },
            ..cfg(8)
        };
        let rep = run_spmd(&sim, |c| -> RmaResult<bool> {
            let mut alloc = MpbAllocator::new();
            let mut bc =
                ReliableBinomial::new(&mut alloc, c.num_cores(), Reliability::standard()).unwrap();
            let mut ok = true;
            for round in 0..5u8 {
                let len = 100 + round as usize * 700;
                let r = MemRange::new(0, len);
                let root = CoreId(round % 8);
                if c.core() == root {
                    c.mem_write(0, &pattern(len, round))?;
                }
                bc.bcast(c, root, r)?;
                ok &= c.mem_to_vec(r)? == pattern(len, round);
            }
            Ok(ok)
        })
        .unwrap();
        assert!(rep.results.into_iter().all(|r| r.unwrap()));
    }

    #[test]
    fn max_children_bound() {
        assert_eq!(max_binomial_children(1), 1);
        assert_eq!(max_binomial_children(2), 1);
        assert_eq!(max_binomial_children(3), 2);
        assert_eq!(max_binomial_children(48), 6);
        for p in 2..=64usize {
            let d = max_binomial_children(p);
            for rel in 0..p {
                assert!(binomial_children(rel, p).len() <= d, "p={p} rel={rel}");
            }
        }
    }
}
